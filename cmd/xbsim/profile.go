package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"xbsim"
	"xbsim/internal/experiment"
	"xbsim/internal/obs"
)

// cmdProfile has two modes, selected by -bench:
//
//   - with -bench it is the original per-binary call/branch profile
//     (procedures, loop pieces, entry counts);
//   - without -bench it is the pipeline cost profiler: it runs the quick
//     suite serially with the obs.Attribution profiler enabled and
//     reports where the evaluate stage's wall time, allocation, and
//     simulated instructions go, per (benchmark, binary, walk, point),
//     plus the redundancy analyzer's duplicate-evaluation summary and,
//     with -flame-out, a speedscope-compatible flamegraph JSON.
func cmdProfile(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("profile")
	bench := fs.String("bench", "", "benchmark name (per-binary call/branch profile mode)")
	target := fs.String("target", "32u", "binary configuration (with -bench)")
	benchList := fs.String("benchmarks", "", "comma-separated benchmark subset (cost-profiler mode; default = quick suite)")
	top := fs.Int("top", 15, "cost table rows (cost-profiler mode)")
	flameOut := fs.String("flame-out", "", "write a speedscope-compatible flamegraph JSON here (cost-profiler mode)")
	asJSON := fs.Bool("json", false, "emit the raw attribution snapshot as JSON (cost-profiler mode)")
	ops, interval, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *bench != "" {
		return cmdProfileBinary(ctx, w, *bench, *target, *ops, *seed)
	}
	return cmdProfileCost(ctx, w, *benchList, *top, *flameOut, *asJSON, *ops, *interval)
}

// cmdProfileBinary is the original profile mode: one binary's call and
// loop profile.
func cmdProfileBinary(ctx context.Context, w io.Writer, bench, target string, ops, seed uint64) error {
	b, err := buildBenchmark(bench, ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, target)
	if err != nil {
		return err
	}
	p, err := xbsim.CollectProfileCtx(ctx, bin, xbsim.Input{Name: "ref", Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d instructions, %d symbols, %d loop pieces\n",
		bin.Name, p.TotalInstructions, len(p.Procs), len(p.Loops))
	fmt.Fprintln(w, "procedures:")
	for _, pp := range p.Procs {
		fmt.Fprintf(w, "  %-12s line %-4d calls %d\n", pp.Symbol, pp.Line, pp.Count)
	}
	fmt.Fprintln(w, "loops (line 0 = debug info destroyed by optimization):")
	for _, lp := range p.Loops {
		fmt.Fprintf(w, "  line %-4d piece %d in %-12s entries %-8d iterations %d\n",
			lp.Line, lp.Piece, lp.EnclosingSymbol, lp.EntryCount, lp.BodyCount)
	}
	return nil
}

// cmdProfileCost runs the suite with cost attribution on and renders the
// breakdown. The run is forced serial (Workers=1, Parallelism=1) so the
// process-wide allocation counters attribute exactly, same as `xbsim
// bench`.
func cmdProfileCost(ctx context.Context, w io.Writer, benchList string, top int,
	flameOut string, asJSON bool, ops, interval uint64) error {

	cfg := experiment.QuickConfig()
	if benchList != "" {
		cfg.Benchmarks = strings.Split(benchList, ",")
	}
	if ops != 0 {
		cfg.TargetOps = ops
	}
	if interval != 0 {
		cfg.IntervalSize = interval
	}
	cfg.Workers = 1
	cfg.Parallelism = 1

	// Reuse the global observer when one is attached (-v, -trace-out, ...)
	// so its progress/trace sinks keep working; otherwise build a private
	// one. Either way the run needs a metrics registry (for the
	// stage.evaluate wall-coverage line) and the attribution profiler.
	o := obs.From(ctx)
	if o == nil {
		o = &obs.Observer{}
		ctx = obs.With(ctx, o)
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	att := obs.NewAttribution()
	o.Attrib = att

	start := time.Now()
	if _, err := experiment.RunCtx(ctx, cfg); err != nil {
		return err
	}
	wall := time.Since(start)
	snap := att.Snapshot()

	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(snap)
	}
	if flameOut != "" {
		f, err := os.Create(flameOut)
		if err != nil {
			return err
		}
		if err := obs.WriteSpeedscope(f, snap); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote flamegraph to %s (open at https://www.speedscope.app)\n", flameOut)
	}
	return writeCostProfile(w, snap, o.Metrics.Snapshot(), wall, top)
}

// writeCostProfile renders the attribution snapshot: the top-N cost
// table over walk-level nodes, the evaluate-stage coverage line, and the
// redundancy summary.
func writeCostProfile(w io.Writer, snap obs.AttribSnapshot, ms obs.Snapshot,
	wall time.Duration, top int) error {

	walks := snap.Walks()
	sort.SliceStable(walks, func(i, j int) bool {
		return walks[i].Value.WallNS > walks[j].Value.WallNS
	})
	attributed := snap.TotalWallNS()
	fmt.Fprintf(w, "profile: %.1fms suite wall, %d walk nodes, %.1fms attributed\n",
		float64(wall.Microseconds())/1000, len(walks), float64(attributed)/1e6)

	fmt.Fprintf(w, "  %-10s %-10s %-5s %10s %12s %14s %8s\n",
		"benchmark", "binary", "walk", "wall", "alloc", "instructions", "share")
	shown := walks
	if len(shown) > top {
		shown = shown[:top]
	}
	for _, n := range shown {
		share := 0.0
		if attributed > 0 {
			share = float64(n.Value.WallNS) / float64(attributed)
		}
		fmt.Fprintf(w, "  %-10s %-10s %-5s %8.1fms %12s %14d %7.1f%%\n",
			n.Benchmark, n.Binary, n.Walk, float64(n.Value.WallNS)/1e6,
			formatAllocBytes(n.Value.AllocBytes), n.Value.Instructions, share*100)
	}
	if len(walks) > len(shown) {
		fmt.Fprintf(w, "  ... %d more walk nodes (-top to widen)\n", len(walks)-len(shown))
	}

	// Coverage: the attributed walk wall time against the evaluate
	// stage's own resource accounting. The walks are the stage's hot
	// loops, so the two should agree closely; a gap means unattributed
	// work inside the stage.
	if h, ok := ms.Histograms["stage.evaluate.duration_us"]; ok && h.Sum > 0 {
		stageNS := h.Sum * 1000
		fmt.Fprintf(w, "  coverage: %.1fms attributed of %.1fms evaluate-stage wall (%.1f%%)\n",
			float64(attributed)/1e6, float64(stageNS)/1e6,
			float64(attributed)/float64(stageNS)*100)
	}

	r := snap.Redundancy
	fmt.Fprintf(w, "redundancy: %d point evaluations, %d unique, %d duplicate (%.0f%%)\n",
		r.Evaluations, r.Unique, r.Duplicates, r.DuplicateFraction()*100)
	fmt.Fprintf(w, "  %d of %d simulated instructions re-simulated identical content\n",
		r.DuplicateInstructions, r.TotalInstructions)
	if r.Duplicates > 0 {
		fmt.Fprintln(w, "  (a content-addressed memoization layer would skip these; see ROADMAP.md)")
	}
	fmt.Fprintf(w, "memo: %d hits, %d misses (%.0f%% hit rate), %d instructions not re-simulated\n",
		r.MemoHits, r.MemoMisses, r.MemoHitRate()*100, r.MemoSavedInstructions)
	return nil
}

// formatAllocBytes renders a byte count with a binary unit.
func formatAllocBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
