package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/program"
)

// cmdChaos is the fault-tolerance acceptance harness: it pushes the
// selfcheck population of randomized programs through the benchmark
// pipeline twice — once clean, once under a randomized fault schedule
// with retries enabled — and asserts that every faulted run that
// recovers is bit-identical (by result fingerprint) to its fault-free
// baseline. Runs whose fault schedule outlasts the retry budget are
// tolerated and reported; a fingerprint mismatch fails the command,
// because it means fault handling changed the numbers.
func cmdChaos(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("chaos")
	n := fs.Int("programs", 10, "number of randomized programs to run")
	seed := fs.Uint64("seed", 1, "spec distribution and fault-plan seed (same seed = same schedules)")
	nFaults := fs.Int("faults", 3, "faults injected per faulted run")
	retries := fs.Int("retries", 3, "retry budget per pipeline stage")
	stageTimeout := fs.Duration("stage-timeout", 10*time.Second, "per-stage deadline (bounds hang faults)")
	ops := fs.Uint64("ops", 0, "override every program's operation count (0 = keep each spec's own scale)")
	interval := fs.Uint64("interval", 8000, "interval size in instructions")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial; never changes the numbers)")
	inject := fs.String("inject", "", "fixed fault rules stage@index:kind[:duration] instead of random plans")
	sampler, samplerBudget := samplerFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *n <= 0 {
		return usagef("-programs must be positive")
	}
	if *nFaults < 0 {
		return usagef("-faults must be non-negative")
	}
	fixed := []faults.Rule(nil)
	if *inject != "" {
		var err error
		if fixed, err = faults.ParseRules(*inject); err != nil {
			return usageError{err}
		}
	}

	cfg := experiment.QuickConfig()
	cfg.IntervalSize = *interval
	cfg.Workers = *workers
	cfg.Seed = fmt.Sprintf("chaos/%d", *seed)
	cfg.Retry = experiment.RetryPolicy{MaxRetries: *retries, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	cfg.StageTimeout = *stageTimeout
	cfg.Sampler = *sampler
	cfg.SamplerBudget = *samplerBudget

	fmt.Fprintf(w, "chaos: %d programs, seed %d, %d faults per run, %d retries\n",
		*n, *seed, *nFaults, *retries)
	var identical, exhausted, mismatched int
	for i := 0; i < *n; i++ {
		spec := program.RandomSpec(*seed, i)
		if *ops != 0 {
			spec.TargetOps = *ops
		}
		spec = spec.Normalize()

		baseline, err := experiment.RunSpecCtx(ctx, spec, cfg)
		if err != nil {
			return fmt.Errorf("chaos: fault-free baseline of %s failed: %w", spec.Name(), err)
		}

		plan := fixed
		if plan == nil {
			plan = faults.RandomPlan(fmt.Sprintf("chaos/%d/%d", *seed, i), experiment.PipelineStages, *nFaults)
		}
		inj := faults.NewInjector(plan...)
		o := obs.New()
		res, err := experiment.RunSpecCtx(obs.With(faults.With(ctx, inj), o), spec, cfg)
		retried := o.Counter("pipeline.retries").Value()
		switch {
		case err != nil && ctx.Err() != nil:
			return err
		case err != nil && (faults.Injected(err) || errors.Is(err, context.DeadlineExceeded)):
			// The schedule outlasted the retry budget; that is a
			// legitimate outcome, not a correctness failure.
			exhausted++
			fmt.Fprintf(w, "  tol  %-22s retries exhausted after %d retries (%d faults hit)\n",
				spec.Name(), retried, inj.Injected())
		case err != nil:
			return fmt.Errorf("chaos: %s failed with a non-injected error: %w", spec.Name(), err)
		case res.Fingerprint() != baseline.Fingerprint():
			mismatched++
			fmt.Fprintf(w, "  FAIL %-22s fingerprint %s != baseline %s (%d faults, %d retries)\n",
				spec.Name(), res.Fingerprint(), baseline.Fingerprint(), inj.Injected(), retried)
		default:
			identical++
			fmt.Fprintf(w, "  ok   %-22s bit-identical after %d faults, %d retries\n",
				spec.Name(), inj.Injected(), retried)
		}
	}
	fmt.Fprintf(w, "chaos: %d bit-identical, %d exhausted retries, %d mismatched\n",
		identical, exhausted, mismatched)
	if mismatched > 0 {
		return fmt.Errorf("chaos: %d recovered run(s) diverged from the fault-free baseline", mismatched)
	}
	return nil
}
