package main

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"xbsim/internal/bench"
	"xbsim/internal/obs"
	"xbsim/internal/pinpoints"
)

// small shared flags keep the CLI tests fast.
var smallFlags = []string{"-ops", "400000", "-interval", "8000"}

func runCmd(t *testing.T, command string, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(context.Background(), command, args, &sb); err != nil {
		t.Fatalf("%s %v: %v", command, args, err)
	}
	return sb.String()
}

func TestCmdBenchmarks(t *testing.T) {
	out := runCmd(t, "benchmarks")
	lines := strings.Fields(out)
	if len(lines) != 21 {
		t.Fatalf("%d benchmarks listed", len(lines))
	}
	if !strings.Contains(out, "gcc") || !strings.Contains(out, "applu") {
		t.Fatal("expected benchmarks missing")
	}
}

func TestCmdUnknown(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), "bogus", nil, &sb); err != errUnknownCommand {
		t.Fatalf("err = %v", err)
	}
}

// Command-line mistakes must surface as usageError (exit status 2),
// distinct from runtime failures (exit status 1).
func TestUsageErrors(t *testing.T) {
	var sb strings.Builder
	var ue usageError
	if err := run(context.Background(), "profile", []string{"-nope"}, &sb); !errors.As(err, &ue) {
		t.Errorf("undefined flag: err = %v (%T), want usageError", err, err)
	}
	// (profile without -bench is no longer a usage error — it selects
	// the cost-profiler mode; see profile_test.go.)
	if err := run(context.Background(), "map", []string{"-bench", ""}, &sb); !errors.As(err, &ue) {
		t.Errorf("missing -bench: err = %v (%T), want usageError", err, err)
	}
	if err := run(context.Background(), "points", append([]string{"-bench", "art", "-flavor", "zzz"}, smallFlags...), &sb); !errors.As(err, &ue) {
		t.Errorf("bad flavor: err = %v (%T), want usageError", err, err)
	}
	// Runtime failures (here: an unknown benchmark name) must NOT be
	// usage errors.
	if err := run(context.Background(), "profile", append([]string{"-bench", "nope"}, smallFlags...), &sb); err == nil || errors.As(err, &ue) {
		t.Errorf("unknown benchmark: err = %v (%T), want non-usage error", err, err)
	}
}

// An observer threaded through run() must pick up simulator metrics and
// stage spans from a subcommand.
func TestCmdSimulateObservability(t *testing.T) {
	o := obs.New()
	ctx := obs.With(context.Background(), o)
	var sb strings.Builder
	args := append([]string{"-bench", "swim", "-target", "32o"}, smallFlags...)
	if err := run(ctx, "simulate", args, &sb); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["sim.instructions"] == 0 {
		t.Error("sim.instructions not recorded")
	}
	if snap.Counters["exec.runs"] == 0 {
		t.Error("exec.runs not recorded")
	}
	names := o.Tracer.StageNames()
	for _, want := range []string{"stage.full_sim", "exec.run"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("span %q missing from %v", want, names)
		}
	}
}

func TestCmdProfile(t *testing.T) {
	out := runCmd(t, "profile", append([]string{"-bench", "gzip", "-target", "64o"}, smallFlags...)...)
	for _, want := range []string{"gzip.64o", "procedures:", "main", "loops"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q", want)
		}
	}
}

func TestCmdProfileErrors(t *testing.T) {
	var sb strings.Builder
	// Without -bench profile is the cost profiler (see profile_test.go);
	// an unknown benchmark there still fails.
	if err := run(context.Background(), "profile", append([]string{"-benchmarks", "nope"}, smallFlags...), &sb); err == nil {
		t.Error("unknown benchmark subset accepted")
	}
	if err := run(context.Background(), "profile", append([]string{"-bench", "gzip", "-target", "99"}, smallFlags...), &sb); err == nil {
		t.Error("bad target accepted")
	}
	if err := run(context.Background(), "profile", append([]string{"-bench", "nope"}, smallFlags...), &sb); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCmdMap(t *testing.T) {
	out := runCmd(t, "map", append([]string{"-bench", "crafty"}, smallFlags...)...)
	for _, want := range []string{"mappable points", "proc", "loop-entry", "heuristic-matched"} {
		if !strings.Contains(out, want) {
			t.Errorf("map output missing %q", want)
		}
	}
}

func TestCmdPointsStdoutAndFile(t *testing.T) {
	out := runCmd(t, "points", append([]string{"-bench", "art", "-flavor", "fli", "-target", "32u"}, smallFlags...)...)
	if !strings.Contains(out, `"flavor": "fli"`) {
		t.Fatalf("points stdout not a region file:\n%s", out)
	}
	path := filepath.Join(t.TempDir(), "points.json")
	runCmd(t, "points", append([]string{"-bench", "art", "-flavor", "vli", "-target", "64u", "-o", path}, smallFlags...)...)
	f, err := pinpoints.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Flavor != pinpoints.FlavorVLI || f.Binary != "art.64u" {
		t.Fatalf("file %+v", f)
	}
}

func TestCmdPointsBadFlavor(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), "points", append([]string{"-bench", "art", "-flavor", "zzz"}, smallFlags...), &sb); err == nil {
		t.Fatal("bad flavor accepted")
	}
}

func TestCmdSimulate(t *testing.T) {
	out := runCmd(t, "simulate", append([]string{"-bench", "swim", "-target", "32o"}, smallFlags...)...)
	for _, want := range []string{"swim.32o", "CPI", "L1D", "DRAM accesses"} {
		if !strings.Contains(out, want) {
			t.Errorf("simulate output missing %q", want)
		}
	}
}

func TestCmdEstimate(t *testing.T) {
	out := runCmd(t, "estimate", append([]string{"-bench", "swim", "-flavor", "vli"}, smallFlags...)...)
	for _, want := range []string{"swim.32u", "swim.64o", "true CPI", "est CPI"} {
		if !strings.Contains(out, want) {
			t.Errorf("estimate output missing %q", want)
		}
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 5 {
		t.Fatalf("estimate printed %d lines, want header + 4 binaries", len(lines))
	}
}

func TestCmdFiguresOnlyTable1(t *testing.T) {
	out := runCmd(t, "figures", "-only", "table1")
	if !strings.Contains(out, "TABLE 1") || !strings.Contains(out, "512KB") {
		t.Fatalf("table1 output wrong:\n%s", out)
	}
}

func TestCmdFiguresQuickSubset(t *testing.T) {
	out := runCmd(t, "figures", "-quick", "-benchmarks", "swim", "-only", "fig4")
	if !strings.Contains(out, "FIG4") || !strings.Contains(out, "swim") {
		t.Fatalf("fig4 output wrong:\n%s", out)
	}
	var sb strings.Builder
	if err := run(context.Background(), "figures", []string{"-quick", "-benchmarks", "swim", "-only", "fig9"}, &sb); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}

func TestCmdAblationsSingle(t *testing.T) {
	out := runCmd(t, "ablations", "-benchmarks", "swim", "-only", "inline")
	if !strings.Contains(out, "Inlined-loop heuristic ablation") {
		t.Fatalf("ablation output wrong:\n%s", out)
	}
	var sb strings.Builder
	if err := run(context.Background(), "ablations", []string{"-only", "zzz"}, &sb); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestCmdMarkers(t *testing.T) {
	out := runCmd(t, "markers", append([]string{"-bench", "gzip", "-target", "32u", "-top", "5"}, smallFlags...)...)
	if !strings.Contains(out, "best interval-boundary candidates") || !strings.Contains(out, "mean gap") {
		t.Fatalf("markers output wrong:\n%s", out)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 7 {
		t.Fatalf("markers printed %d lines, want 2 header + 5 rows", len(lines))
	}
}

func TestCmdTraceRecordAndInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.xbtr")
	out := runCmd(t, "trace", append([]string{"-bench", "art", "-target", "64o", "-o", path}, smallFlags...)...)
	if !strings.Contains(out, "recorded art.64o") {
		t.Fatalf("trace record output wrong:\n%s", out)
	}
	info := runCmd(t, "trace", "-info", path)
	if !strings.Contains(info, "trace of art.64o") {
		t.Fatalf("trace info output wrong:\n%s", info)
	}
	var sb strings.Builder
	if err := run(context.Background(), "trace", smallFlags, &sb); err == nil {
		t.Fatal("trace without -o/-info accepted")
	}
}

func TestCmdFiguresJSON(t *testing.T) {
	out := runCmd(t, "figures", "-quick", "-benchmarks", "swim", "-json")
	if !strings.Contains(out, `"benchmarks"`) || !strings.Contains(out, `"figures"`) {
		t.Fatalf("json output wrong:\n%.200s", out)
	}
	var sb strings.Builder
	if err := run(context.Background(), "figures", []string{"-quick", "-benchmarks", "swim", "-json", "-only", "fig1"}, &sb); err == nil {
		t.Fatal("-json with -only accepted")
	}
}

func TestCmdVerify(t *testing.T) {
	out := runCmd(t, "verify", append([]string{"-bench", "gzip"}, smallFlags...)...)
	if !strings.Contains(out, "all cross-binary invariants hold") || strings.Contains(out, "FAIL") {
		t.Fatalf("verify output wrong:\n%s", out)
	}
}

func TestCmdCallgraph(t *testing.T) {
	out := runCmd(t, "callgraph", append([]string{"-bench", "gzip", "-hot", "3"}, smallFlags...)...)
	if !strings.Contains(out, "proc main") || !strings.Contains(out, "hottest loops:") {
		t.Fatalf("callgraph output wrong:\n%.300s", out)
	}
}

func TestCmdPhases(t *testing.T) {
	out := runCmd(t, "phases", append([]string{"-bench", "swim", "-flavor", "vli", "-width", "40"}, smallFlags...)...)
	if !strings.Contains(out, "phases over execution") || !strings.Contains(out, "= phase 0") {
		t.Fatalf("phases output wrong:\n%s", out)
	}
	var sb strings.Builder
	if err := run(context.Background(), "phases", append([]string{"-bench", "swim", "-flavor", "zzz"}, smallFlags...), &sb); err == nil {
		t.Fatal("bad flavor accepted")
	}
}

func TestCmdSimilarity(t *testing.T) {
	// A size larger than the interval count renders cell-exact, so the
	// zero diagonal must appear as the darkest shade.
	out := runCmd(t, "similarity", append([]string{"-bench", "swim", "-size", "4096"}, smallFlags...)...)
	if !strings.Contains(out, "interval similarity") || !strings.Contains(out, "@") {
		t.Fatalf("similarity output wrong:\n%.400s", out)
	}
}

func TestCmdFiguresDetail(t *testing.T) {
	out := runCmd(t, "figures", "-quick", "-benchmarks", "swim", "-detail")
	for _, want := range []string{"== swim", "phases over execution", "pair"} {
		if !strings.Contains(out, want) {
			t.Fatalf("detail output missing %q", want)
		}
	}
}

func TestCmdSelfcheck(t *testing.T) {
	out := runCmd(t, "selfcheck", "-n", "2", "-seed", "1", "-ops", "90000", "-programs")
	for _, want := range []string{
		"selfcheck: 2 randomized programs, seed 1",
		"marker-counts", "boundary-translate", "weight-sum",
		"order-invariance", "worker-invariance", "cpi-sanity",
		"spec-", "all invariants hold across 2 programs",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("selfcheck output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("selfcheck reported a failure:\n%s", out)
	}
}

func TestCmdSelfcheckUsageErrors(t *testing.T) {
	var sb strings.Builder
	var ue usageError
	if err := run(context.Background(), "selfcheck", []string{"-n", "0"}, &sb); !errors.As(err, &ue) {
		t.Errorf("-n 0: err = %v (%T), want usageError", err, err)
	}
	if err := run(context.Background(), "selfcheck", []string{"-nope"}, &sb); !errors.As(err, &ue) {
		t.Errorf("undefined flag: err = %v (%T), want usageError", err, err)
	}
}

// chaos must recover every randomized fault schedule (or tolerate an
// exhausted retry budget) and report zero fingerprint mismatches.
func TestCmdChaos(t *testing.T) {
	out := runCmd(t, "chaos", "-programs", "2", "-seed", "1", "-faults", "2", "-ops", "90000")
	if !strings.Contains(out, "chaos: 2 programs, seed 1") {
		t.Fatalf("chaos header missing:\n%s", out)
	}
	if !strings.Contains(out, "0 mismatched") || strings.Contains(out, "FAIL") {
		t.Fatalf("chaos reported a divergence:\n%s", out)
	}
}

func TestCmdChaosFixedRules(t *testing.T) {
	out := runCmd(t, "chaos", "-programs", "1", "-seed", "1", "-ops", "90000",
		"-inject", "profile.task@1:panic,mapping@0:error")
	if !strings.Contains(out, "bit-identical after 2 faults") {
		t.Fatalf("fixed fault rules not recovered:\n%s", out)
	}
}

func TestCmdChaosUsageErrors(t *testing.T) {
	var sb strings.Builder
	var ue usageError
	if err := run(context.Background(), "chaos", []string{"-programs", "0"}, &sb); !errors.As(err, &ue) {
		t.Errorf("-programs 0: err = %v (%T), want usageError", err, err)
	}
	if err := run(context.Background(), "chaos", []string{"-inject", "bogus"}, &sb); !errors.As(err, &ue) {
		t.Errorf("bad -inject: err = %v (%T), want usageError", err, err)
	}
}

// Injected transient faults plus a retry budget must leave the report
// byte-identical to an undisturbed run.
func TestCmdFiguresInjectRecovers(t *testing.T) {
	plain := runCmd(t, "figures", "-quick", "-benchmarks", "swim", "-only", "fig4")
	faulted := runCmd(t, "figures", "-quick", "-benchmarks", "swim", "-only", "fig4",
		"-retries", "2", "-inject", "profile@0:error,clustering.task@1:panic")
	if faulted != plain {
		t.Fatalf("faulted report diverged:\n--- plain ---\n%s\n--- faulted ---\n%s", plain, faulted)
	}
}

// A failing benchmark must still render the completed ones, with the
// explicit failure appendix, and exit non-zero.
func TestCmdFiguresPartialSuite(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), "figures", []string{"-quick", "-benchmarks", "swim,nosuch"}, &sb)
	if err == nil {
		t.Fatal("suite with unknown benchmark reported success")
	}
	out := sb.String()
	if !strings.Contains(out, "FAILED BENCHMARKS (1)") || !strings.Contains(out, "nosuch") {
		t.Fatalf("failure appendix missing:\n%s", out)
	}
	if !strings.Contains(out, "swim") {
		t.Fatalf("completed benchmark missing from partial report:\n%s", out)
	}
}

// -checkpoint-dir must make a rerun resume from checkpoints and emit
// byte-identical JSON.
func TestCmdFiguresCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-quick", "-benchmarks", "swim", "-json", "-checkpoint-dir", dir}
	first := runCmd(t, "figures", args...)
	// Checkpoints live in per-config-fingerprint subdirectories.
	matches, err := filepath.Glob(filepath.Join(dir, "cfg-*", "swim.ckpt.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("checkpoint not written: %v %v", matches, err)
	}
	resumed := runCmd(t, "figures", args...)
	if resumed != first {
		t.Fatalf("resumed JSON diverged:\n--- first ---\n%.400s\n--- resumed ---\n%.400s", first, resumed)
	}
}

// selfcheck must record per-invariant counters through an observer.
func TestCmdSelfcheckObservability(t *testing.T) {
	o := obs.New()
	ctx := obs.With(context.Background(), o)
	var sb strings.Builder
	if err := run(ctx, "selfcheck", []string{"-n", "1", "-ops", "90000"}, &sb); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["selfcheck.pipeline.pass"] != 1 {
		t.Errorf("selfcheck.pipeline.pass = %d, want 1", snap.Counters["selfcheck.pipeline.pass"])
	}
	if snap.Counters["selfcheck.weight-sum.pass"] != 1 {
		t.Errorf("selfcheck.weight-sum.pass = %d, want 1", snap.Counters["selfcheck.weight-sum.pass"])
	}
}

// `serve -loadtest` must run the mixed-stream harness end to end and
// save an additive bench-schema record with the serve section.
func TestCmdServeLoadtest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serve.json")
	text := runCmd(t, "serve", "-loadtest", "-jobs", "3", "-unique", "1", "-clients", "2", "-o", out)
	if !strings.Contains(text, "serve loadtest:") || !strings.Contains(text, "cache hits") {
		t.Fatalf("loadtest output: %q", text)
	}
	res, err := bench.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != bench.SchemaVersion || res.Serve == nil {
		t.Fatalf("saved record: schema %d, serve %+v", res.Schema, res.Serve)
	}
	if res.Serve.Completed != 3 || res.Serve.CacheHits == 0 {
		t.Fatalf("serve record: %+v", res.Serve)
	}
}

// `serve` without a spool is a usage error, and unknown presets from
// the HTTP surface never reach the scheduler (covered in internal/serve);
// here we only pin the CLI-level validation.
func TestCmdServeUsage(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), "serve", []string{}, &sb)
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("serve without -spool: %v", err)
	}
}
