package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"xbsim/internal/bench"
	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/serve"
)

// cmdServe runs the durable analysis service (or its load-test harness
// under -loadtest). The service drains gracefully on SIGINT/SIGTERM:
// admission closes, running suites checkpoint and re-spool, and the
// process exits 0 with every accepted job journaled in the spool for
// the next start to resume.
func cmdServe(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	spool := fs.String("spool", "", "durable job spool directory (required unless -loadtest)")
	concurrency := fs.Int("concurrency", 2, "jobs executed in parallel")
	maxPending := fs.Int("max-pending", 64, "pending-queue depth cap; beyond it submissions get 429")
	workers := fs.Int("workers", 0, "worker pool shared by all jobs (0 = GOMAXPROCS)")
	inject := fs.String("inject", "", "fault rules to inject, comma-separated stage@index:kind (testing; serve.crash simulates process death)")
	loadtest := fs.Bool("loadtest", false, "run the load-test harness against an in-process server instead of serving")
	ltJobs := fs.Int("jobs", 12, "loadtest: total submissions")
	ltUnique := fs.Int("unique", 4, "loadtest: distinct work items (the rest are duplicates)")
	ltClients := fs.Int("clients", 4, "loadtest: concurrent submitters")
	ltSeed := fs.Uint64("seed", 11, "loadtest: program-spec seed")
	ltOut := fs.String("o", "", "loadtest: write a bench-schema JSON record here")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *inject != "" {
		rules, err := faults.ParseRules(*inject)
		if err != nil {
			return usageError{err}
		}
		ctx = faults.With(ctx, faults.NewInjector(rules...))
	}
	if *loadtest {
		return runLoadTest(ctx, w, *spool, *concurrency, *workers, *ltJobs, *ltUnique, *ltClients, *ltSeed, *ltOut)
	}
	if *spool == "" {
		return usagef("-spool is required")
	}

	o := obs.From(ctx)
	if o == nil {
		o = obs.New()
		o.Events = obs.NewRecorder(obs.DefaultRecorderCapacity)
		ctx = obs.With(ctx, o)
	} else if o.Events == nil {
		o.Events = obs.NewRecorder(obs.DefaultRecorderCapacity)
	}
	s, err := serve.Start(ctx, serve.Options{
		Addr:        *addr,
		Spool:       *spool,
		Concurrency: *concurrency,
		MaxPending:  *maxPending,
		Workers:     *workers,
		Observer:    o,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xbsim: serving on http://%s (spool %s, %d slot(s), %d worker(s))\n",
		s.Addr(), *spool, *concurrency, poolSize(*workers))

	// Block until SIGINT/SIGTERM cancels the context, then drain. The
	// shutdown gets its own deadline — the triggering context is already
	// canceled.
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "xbsim: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "xbsim: drained, all accepted jobs journaled")
	return nil
}

func poolSize(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// runLoadTest boots an in-process server (temp spool unless one is
// given), drives the mixed fresh/duplicate stream at it, renders the
// record, and optionally saves it in the additive bench schema.
func runLoadTest(ctx context.Context, w io.Writer, spool string, concurrency, workers, jobs, unique, clients int, seed uint64, out string) error {
	if spool == "" {
		dir, err := os.MkdirTemp("", "xbsim-loadtest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		spool = dir
	}
	s, err := serve.Start(ctx, serve.Options{
		Addr:        "127.0.0.1:0",
		Spool:       spool,
		Concurrency: concurrency,
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Fprintf(os.Stderr, "xbsim: loadtest against http://%s: %d jobs (%d unique), %d client(s)\n",
		s.Addr(), jobs, unique, clients)

	rec, err := serve.LoadTest(ctx, serve.LoadTestOptions{
		BaseURL:  "http://" + s.Addr(),
		Jobs:     jobs,
		Unique:   unique,
		Clients:  clients,
		Seed:     seed,
		Progress: os.Stderr,
	})
	if err != nil {
		return err
	}
	if err := rec.Write(w); err != nil {
		return err
	}
	if out != "" {
		res := &bench.Result{
			Schema:    bench.SchemaVersion,
			Label:     "serve-loadtest",
			GoVersion: runtime.Version(),
			Serve:     rec,
		}
		if err := res.Save(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", out)
	}
	return nil
}
