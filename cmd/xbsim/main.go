// Command xbsim drives the Cross Binary Simulation Points toolchain from
// the shell: profile binaries, inspect mappable points, emit PinPoints-
// style region files, simulate, and regenerate the paper's figures and
// tables.
//
// Usage:
//
//	xbsim benchmarks
//	xbsim profile   -bench gcc -target 32u
//	xbsim map       -bench gcc
//	xbsim points    -bench gcc -flavor vli -target 64o -o points.json
//	xbsim simulate  -bench gcc -target 32u
//	xbsim estimate  -bench gcc -flavor vli
//	xbsim figures   [-quick] [-benchmarks gcc,apsi] [-only fig4]
//	xbsim -v -trace-out trace.json figures -quick
//
// Global flags (before the command) enable observability: -v streams
// per-stage progress to stderr, -trace-out writes a Chrome trace_event
// JSON of every pipeline stage, -metrics-out dumps the metrics
// registry, -telemetry-addr serves live metrics/progress/events/pprof
// over HTTP, -events-out journals structured pipeline events as JSONL,
// and -profile-dir captures CPU and heap profiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"xbsim"
	"xbsim/internal/bbv"
	"xbsim/internal/callloop"
	"xbsim/internal/experiment"
	"xbsim/internal/faults"
	"xbsim/internal/invariant"
	"xbsim/internal/markerstats"
	"xbsim/internal/obs"
	"xbsim/internal/report"
	"xbsim/internal/telemetry"
	"xbsim/internal/trace"
	"xbsim/internal/validate"
	"xbsim/internal/xrand"
)

func main() {
	gfs := flag.NewFlagSet("xbsim", flag.ContinueOnError)
	gfs.SetOutput(os.Stderr)
	gfs.Usage = usage
	verbose := gfs.Bool("v", false, "stream per-stage progress to stderr")
	traceOut := gfs.String("trace-out", "", "write a Chrome trace_event JSON file of the run")
	metricsOut := gfs.String("metrics-out", "", "write a metrics snapshot to this file ('-' = stderr)")
	telemetryAddr := gfs.String("telemetry-addr", "", "serve live /metrics, /progress, /events, /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	profileDir := gfs.String("profile-dir", "", "capture cpu.pprof and heap.pprof of the run into this directory")
	eventsOut := gfs.String("events-out", "", "journal structured pipeline events to this file as JSONL")
	if err := gfs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	args := gfs.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	// Interrupts cancel the context instead of killing the process, so
	// the pipeline unwinds cleanly and every sink below still flushes —
	// the trace, events journal, and profiles survive a ^C mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var o *obs.Observer
	if *verbose || *traceOut != "" || *metricsOut != "" ||
		*telemetryAddr != "" || *profileDir != "" || *eventsOut != "" {
		o = obs.New()
		if *verbose {
			o.Progress = obs.NewProgress(os.Stderr)
		}
		if *telemetryAddr != "" || *eventsOut != "" {
			o.Events = obs.NewRecorder(obs.DefaultRecorderCapacity)
		}
		ctx = obs.With(ctx, o)
	}

	sinks, err := startSinks(ctx, o, *traceOut, *telemetryAddr, *profileDir, *eventsOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbsim:", err)
		os.Exit(1)
	}

	err = run(ctx, args[0], args[1:], os.Stdout)
	if serr := sinks.close(); err == nil {
		err = serr
	}
	if ferr := finishObservability(o, *verbose, *metricsOut); err == nil {
		err = ferr
	}
	exit(err, args[0])
}

// sinks holds the observability outputs that need an explicit flush or
// shutdown on the exit path.
type sinks struct {
	o          *obs.Observer
	traceFile  *os.File
	flushTrace func() error
	eventsFile *os.File
	server     *telemetry.Server
	profiles   *telemetry.Profiles
}

// startSinks opens the file- and network-backed observability outputs.
// The trace file is created up front and auto-flushed on context
// cancellation, so even an interrupted run leaves complete, loadable
// JSON.
func startSinks(ctx context.Context, o *obs.Observer, traceOut, telemetryAddr, profileDir, eventsOut string) (*sinks, error) {
	s := &sinks{o: o}
	if eventsOut != "" {
		f, err := os.Create(eventsOut)
		if err != nil {
			return nil, err
		}
		o.Events.SetOutput(f)
		s.eventsFile = f
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		s.traceFile = f
		s.flushTrace = o.Tracer.AutoFlush(ctx, f)
	}
	if telemetryAddr != "" {
		srv, err := telemetry.Start(telemetryAddr, o)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "xbsim: telemetry on http://%s\n", srv.Addr())
		s.server = srv
	}
	p, err := telemetry.StartProfiles(profileDir)
	if err != nil {
		return nil, err
	}
	s.profiles = p
	return s, nil
}

// close flushes and shuts down every sink, keeping the first error.
func (s *sinks) close() error {
	var first error
	keep := func(err error) {
		if first == nil {
			first = err
		}
	}
	keep(s.profiles.Stop())
	keep(s.server.Close())
	if s.flushTrace != nil {
		keep(s.flushTrace())
		keep(s.traceFile.Close())
	}
	if s.eventsFile != nil {
		keep(s.o.Events.Flush())
		keep(s.eventsFile.Close())
	}
	return first
}

// exit maps an error to the process exit status: nil → 0, -h/--help → 0,
// command-line mistakes (unknown command, bad flags or arguments) → 2,
// runtime failures → 1.
func exit(err error, command string) {
	var ue usageError
	switch {
	case err == nil:
		return
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errUnknownCommand):
		fmt.Fprintf(os.Stderr, "xbsim: unknown command %q\n", command)
		usage()
		os.Exit(2)
	case errors.As(err, &ue):
		fmt.Fprintln(os.Stderr, "xbsim:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "xbsim:", err)
		os.Exit(1)
	}
}

// finishObservability renders the end-of-run views: the stage-timing
// tree under -v and the metrics dump under -metrics-out. (The trace
// file is handled by sinks, so it also survives interrupts.)
func finishObservability(o *obs.Observer, verbose bool, metricsOut string) error {
	if o == nil {
		return nil
	}
	if verbose {
		if err := o.Tracer.WriteTree(os.Stderr); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if metricsOut == "-" {
			return o.Metrics.WriteText(os.Stderr)
		}
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := o.Metrics.WriteText(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// errUnknownCommand reports an unrecognized subcommand.
var errUnknownCommand = fmt.Errorf("unknown command")

// usageError marks a command-line mistake (bad flag or argument), which
// exits with status 2, distinct from runtime failures (status 1).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usageError from a format string.
func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// newFlagSet returns a subcommand flag set that reports parse errors
// instead of exiting, so run() callers (main, tests) control the exit.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// parseFlags parses args, translating failures into usage errors and
// making -h/--help print the flag defaults and surface flag.ErrHelp.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fs.Usage()
			return flag.ErrHelp
		}
		return usageError{err}
	}
	return nil
}

// run dispatches a subcommand, writing its output to w. The context may
// carry an obs.Observer to record metrics, spans, and progress.
func run(ctx context.Context, command string, args []string, w io.Writer) error {
	switch command {
	case "benchmarks":
		return cmdBenchmarks(w)
	case "profile":
		return cmdProfile(ctx, args, w)
	case "map":
		return cmdMap(ctx, args, w)
	case "points":
		return cmdPoints(ctx, args, w)
	case "simulate":
		return cmdSimulate(ctx, args, w)
	case "estimate":
		return cmdEstimate(ctx, args, w)
	case "figures", "experiment":
		return cmdFigures(ctx, args, w)
	case "ablations":
		return cmdAblations(args, w)
	case "markers":
		return cmdMarkers(args, w)
	case "trace":
		return cmdTrace(args, w)
	case "verify":
		return cmdVerify(args, w)
	case "selfcheck":
		return cmdSelfcheck(ctx, args, w)
	case "chaos":
		return cmdChaos(ctx, args, w)
	case "bench":
		return cmdBench(ctx, args, w)
	case "samplers":
		return cmdSamplers(ctx, args, w)
	case "serve":
		return cmdServe(ctx, args, w)
	case "callgraph":
		return cmdCallgraph(args, w)
	case "phases":
		return cmdPhases(ctx, args, w)
	case "similarity":
		return cmdSimilarity(args, w)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		return errUnknownCommand
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `xbsim — Cross Binary Simulation Points (ISPASS 2007 reproduction)

commands:
  benchmarks                         list synthesizable benchmarks
  profile  -bench B -target T       call/branch profile of one binary
  profile  [-top N] [-flame-out F] [-benchmarks L] [-json]
                                     (no -bench) run the quick suite with
                                     cost attribution on: per-walk cost
                                     table, redundancy summary, optional
                                     speedscope flamegraph
  map      -bench B                  cross-binary mappable point summary
  points   -bench B -flavor F -target T [-o FILE]
                                     pick simulation points, emit regions
  simulate -bench B -target T       full-run CMP$im-style simulation
  estimate -bench B -flavor F       estimated vs true CPI, all binaries
  figures  [-quick] [-benchmarks L] [-only ID]
                                     regenerate the paper's figures/tables
  ablations [-benchmarks L] [-only S]
                                     design-choice ablation studies
  markers  -bench B -target T       rank phase-marker candidates by
                                     firing-gap regularity
  trace    -bench B -target T -o F   record an execution trace
  trace    -info F                   inspect a recorded trace
  trace    [-url U | -spool D] [-json] JOB-OR-TRACE-ID
                                     reconstruct a served job's timeline:
                                     phases (queue-wait, run, resume,
                                     cache) + merged events and spans
  verify   -bench B                  check the cross-binary invariants
                                     hold for this workload
  selfcheck [-n N] [-seed S] [-workers W]
                                     metamorphic self-check: N randomized
                                     programs through the full pipeline
  chaos    [-programs N] [-seed S] [-faults F] [-retries R]
                                     run randomized programs under injected
                                     fault schedules; recovered runs must be
                                     bit-identical to the fault-free baseline
  bench    [-quick] [-n N] [-o F] [-against F] [-tolerance T]
                                     run the suite N times, record wall
                                     time/allocation/per-stage resources,
                                     compare against a baseline JSON
                                     (-samplers adds the cross-backend
                                     sampler comparison to the record)
  samplers [-benchmarks L] [-budgets 8,16] [-json]
                                     compare sampler backends: CPI error
                                     vs simulated-instruction budget
  serve    -spool DIR [-addr A] [-concurrency N] [-max-pending N]
                                     run the durable analysis service:
                                     POST /jobs, crash-safe job journal,
                                     graceful drain on SIGTERM
                                     (-loadtest [-jobs N] [-unique K]
                                     [-clients C] [-o F] measures
                                     throughput/latency/cache hits)
  callgraph -bench B [-target T]     annotated call-loop graph
  phases   -bench B [-flavor F]      phase timeline of the execution
  similarity -bench B [-target T]    interval similarity heat map

common flags: -ops N (program scale), -interval N (interval size),
-seed S (input seed), -workers N (pool size for clustering/pipeline
work; 0 = GOMAXPROCS, 1 = serial — parallelism never changes results),
-sampler B / -sampler-budget N (point-selection backend: simpoint
(default) or stratified, and the stratified point budget)

global flags (before the command): -v (progress + timing tree),
-trace-out F (Chrome trace), -metrics-out F (metrics dump),
-telemetry-addr A (live /metrics /progress /events /debug/pprof),
-events-out F (JSONL event journal), -profile-dir D (cpu/heap pprof)`)
}

// commonFlags adds the scale/input flags shared by the data commands.
func commonFlags(fs *flag.FlagSet) (ops *uint64, interval *uint64, seed *uint64) {
	ops = fs.Uint64("ops", 2_000_000, "approximate abstract operations per run")
	interval = fs.Uint64("interval", 25_000, "interval size in instructions")
	seed = fs.Uint64("seed", 0x5EED, "input seed")
	return
}

// workersFlag adds the worker-pool knob shared by the point-picking
// commands. Parallelism never changes the chosen points, only wall clock.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "clustering worker pool size (0 = GOMAXPROCS, 1 = serial; never changes the numbers)")
}

// samplerFlags adds the point-selection backend knobs shared by the
// commands that pick simulation points.
func samplerFlags(fs *flag.FlagSet) (backend *string, budget *int) {
	backend = fs.String("sampler", "", "point-selection backend: simpoint (default) or stratified")
	budget = fs.Int("sampler-budget", 0, "stratified point budget (0 = backend default)")
	return
}

func cmdBenchmarks(w io.Writer) error {
	for _, n := range xbsim.Benchmarks() {
		fmt.Fprintln(w, n)
	}
	return nil
}

func buildBenchmark(name string, ops uint64) (*xbsim.Benchmark, error) {
	if name == "" {
		return nil, usagef("-bench is required")
	}
	return xbsim.NewBenchmark(name, ops)
}

func pickBinary(b *xbsim.Benchmark, target string) (*xbsim.Binary, error) {
	bin := b.Binary(target)
	if bin == nil {
		return nil, usagef("unknown target %q (want 32u, 32o, 64u, 64o)", target)
	}
	return bin, nil
}

func cmdMap(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("map")
	bench := fs.String("bench", "", "benchmark name")
	ops, _, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	m, err := xbsim.FindMappablePointsCtx(ctx, b.Binaries, xbsim.Input{Name: "ref", Seed: *seed}, xbsim.MappingOptions{})
	if err != nil {
		return err
	}
	byKind := map[string]int{}
	for _, pt := range m.Points {
		byKind[pt.Kind.String()]++
	}
	var kinds []string
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "%s: %d mappable points across %d binaries\n", *bench, len(m.Points), len(m.Binaries))
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-12s %d\n", k, byKind[k])
	}
	fmt.Fprintf(w, "  heuristic-matched inlined loops: %d (ambiguous: %d)\n",
		m.Diag.HeuristicMatched, m.Diag.HeuristicAmbiguous)
	for bi, bin := range m.Binaries {
		fmt.Fprintf(w, "  %-10s loops: %d total, %d without a mappable entry\n",
			bin.Name, m.Diag.LoopsPerBinary[bi], m.Diag.UnmappedLoopsPerBinary[bi])
	}
	return nil
}

func cmdPoints(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("points")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration")
	flavor := fs.String("flavor", "vli", "fli (per-binary) or vli (cross-binary)")
	out := fs.String("o", "", "write PinPoints-style JSON here (default stdout)")
	ops, interval, seed := commonFlags(fs)
	workers := workersFlag(fs)
	sampler, samplerBudget := samplerFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, *target)
	if err != nil {
		return err
	}
	in := xbsim.Input{Name: "ref", Seed: *seed}
	cfg := xbsim.PointsConfig{IntervalSize: *interval, Workers: *workers,
		Sampler: *sampler, SamplerBudget: *samplerBudget}

	var ps *xbsim.PointSet
	switch *flavor {
	case "fli":
		ps, err = xbsim.PerBinaryPointsCtx(ctx, bin, in, cfg)
	case "vli":
		var cross *xbsim.CrossPoints
		cross, err = xbsim.CrossBinaryPointsCtx(ctx, b.Binaries, in, cfg)
		if err == nil {
			for bi, bb := range b.Binaries {
				if bb == bin {
					ps, err = cross.ForBinary(bi)
				}
			}
		}
	default:
		return usagef("unknown flavor %q", *flavor)
	}
	if err != nil {
		return err
	}
	f, err := ps.RegionFile(in)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := f.Save(*out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d regions to %s\n", len(f.Regions), *out)
		return nil
	}
	return f.Write(w)
}

func cmdSimulate(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("simulate")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration")
	ops, _, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, *target)
	if err != nil {
		return err
	}
	st, err := xbsim.SimulateFullCtx(ctx, bin, xbsim.Input{Name: "ref", Seed: *seed}, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d instructions, %d cycles, CPI %.3f\n",
		bin.Name, st.Instructions, st.Cycles, st.CPI())
	names := []string{"L1D", "L2D", "L3D"}
	for i := range st.LevelHits {
		fmt.Fprintf(w, "  %s: %d hits, %d misses (miss rate %.2f%%)\n",
			names[i], st.LevelHits[i], st.LevelMisses[i], st.MissRate(i)*100)
	}
	fmt.Fprintf(w, "  DRAM accesses: %d\n", st.MemoryAccesses)
	return nil
}

func cmdEstimate(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("estimate")
	bench := fs.String("bench", "", "benchmark name")
	flavor := fs.String("flavor", "vli", "fli or vli")
	ops, interval, seed := commonFlags(fs)
	workers := workersFlag(fs)
	sampler, samplerBudget := samplerFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	in := xbsim.Input{Name: "ref", Seed: *seed}
	cfg := xbsim.PointsConfig{IntervalSize: *interval, Workers: *workers,
		Sampler: *sampler, SamplerBudget: *samplerBudget}

	var cross *xbsim.CrossPoints
	if *flavor == "vli" {
		cross, err = xbsim.CrossBinaryPointsCtx(ctx, b.Binaries, in, cfg)
		if err != nil {
			return err
		}
	} else if *flavor != "fli" {
		return usagef("unknown flavor %q", *flavor)
	}
	fmt.Fprintf(w, "%-10s %12s %10s %10s %8s\n", "binary", "instructions", "true CPI", "est CPI", "error")
	for bi, bin := range b.Binaries {
		var ps *xbsim.PointSet
		if cross != nil {
			ps, err = cross.ForBinary(bi)
		} else {
			ps, err = xbsim.PerBinaryPointsCtx(ctx, bin, in, cfg)
		}
		if err != nil {
			return err
		}
		est, err := xbsim.EstimateCPICtx(ctx, bin, in, ps, nil)
		if err != nil {
			return err
		}
		full, err := xbsim.SimulateFullCtx(ctx, bin, in, nil)
		if err != nil {
			return err
		}
		e := (est - full.CPI()) / full.CPI()
		fmt.Fprintf(w, "%-10s %12d %10.3f %10.3f %+7.2f%%\n",
			bin.Name, full.Instructions, full.CPI(), est, e*100)
	}
	return nil
}

func cmdFigures(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("figures")
	quick := fs.Bool("quick", false, "use the reduced five-benchmark configuration")
	benchList := fs.String("benchmarks", "", "comma-separated benchmark subset")
	only := fs.String("only", "", "emit a single artifact: table1, fig1..fig5, table2, table3")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of the ASCII report")
	detail := fs.Bool("detail", false, "emit per-benchmark detail (per-binary tables, speedups, phase timeline)")
	workers := fs.Int("workers", 0, "intra-benchmark worker pool size (0 = GOMAXPROCS, 1 = serial; never changes the numbers)")
	retries := fs.Int("retries", 0, "retry budget per pipeline stage for transient failures (0 = fail fast)")
	stageTimeout := fs.Duration("stage-timeout", 0, "per-stage deadline; expiries are retried under -retries (0 = none)")
	ckptDir := fs.String("checkpoint-dir", "", "persist per-benchmark checkpoints here and resume from validating ones")
	inject := fs.String("inject", "", "fault rules to inject, comma-separated stage@index:kind[:duration] (testing)")
	sampler, samplerBudget := samplerFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg := xbsim.FullExperimentConfig()
	if *quick {
		cfg = xbsim.QuickExperimentConfig()
	}
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}
	cfg.Workers = *workers
	cfg.Sampler = *sampler
	cfg.SamplerBudget = *samplerBudget
	cfg.Retry = xbsim.RetryPolicy{MaxRetries: *retries}
	cfg.StageTimeout = *stageTimeout
	cfg.CheckpointDir = *ckptDir
	if *inject != "" {
		rules, err := faults.ParseRules(*inject)
		if err != nil {
			return usageError{err}
		}
		ctx = faults.With(ctx, faults.NewInjector(rules...))
	}
	if *only == "table1" {
		return report.Table1(w, cfg.Hierarchy)
	}
	suite, err := xbsim.RunExperimentsCtx(ctx, cfg)
	if err != nil {
		// Degrade gracefully: when some benchmarks completed, render the
		// partial suite — its report carries an explicit failure
		// appendix — and still exit non-zero.
		if suite == nil || len(suite.Results) == 0 {
			return err
		}
		fmt.Fprintf(os.Stderr, "xbsim: %d benchmark(s) failed, reporting partial results\n", len(suite.Failures))
		if rerr := renderSuite(ctx, w, suite, *asJSON, *detail, *only); rerr != nil {
			return rerr
		}
		return err
	}
	return renderSuite(ctx, w, suite, *asJSON, *detail, *only)
}

// renderSuite writes the suite in the format the figures flags selected.
func renderSuite(ctx context.Context, w io.Writer, suite *xbsim.Suite, asJSON, detail bool, only string) error {
	if asJSON {
		if only != "" {
			return usagef("-json emits the whole suite; drop -only")
		}
		return suite.WriteJSON(w)
	}
	if detail {
		return report.SuiteDetail(w, suite)
	}
	switch only {
	case "":
		return xbsim.WriteReportCtx(ctx, w, suite)
	case "fig1", "fig2", "fig3", "fig4", "fig5":
		for _, f := range suite.Figures() {
			if f.ID == only {
				return report.Figure(w, f)
			}
		}
		return fmt.Errorf("figure %q not produced", only)
	case "table2":
		tables, err := suite.PhaseBiasTables("gcc", experiment.Pair{Name: "32u64u", A: 0, B: 2}, 3)
		if err != nil {
			return err
		}
		return report.PhaseBias(w, tables)
	case "table3":
		tables, err := suite.PhaseBiasTables("apsi", experiment.Pair{Name: "32o64o", A: 1, B: 3}, 3)
		if err != nil {
			return err
		}
		return report.PhaseBias(w, tables)
	default:
		return usagef("unknown artifact %q", only)
	}
}

// cmdAblations runs the design-choice ablation studies (DESIGN.md §5).
func cmdAblations(args []string, w io.Writer) error {
	fs := newFlagSet("ablations")
	benchList := fs.String("benchmarks", "swim,crafty,applu", "comma-separated benchmark subset")
	only := fs.String("only", "", "run one study: bic, dim, markers, inline, primary, warming, early")
	workers := fs.Int("workers", 0, "intra-benchmark worker pool size (0 = GOMAXPROCS, 1 = serial; never changes the numbers)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg := xbsim.QuickExperimentConfig()
	cfg.Benchmarks = strings.Split(*benchList, ",")
	cfg.Workers = *workers

	studies := []struct {
		key string
		run func() (*experiment.AblationTable, error)
	}{
		{"bic", func() (*experiment.AblationTable, error) {
			return experiment.AblationBICThreshold(cfg, []float64{0.7, 0.9, 1.0})
		}},
		{"dim", func() (*experiment.AblationTable, error) {
			return experiment.AblationProjectionDim(cfg, []int{4, 15, 64})
		}},
		{"markers", func() (*experiment.AblationTable, error) {
			return experiment.AblationMarkerGranularity(cfg)
		}},
		{"inline", func() (*experiment.AblationTable, error) {
			return experiment.AblationInlineHeuristic(cfg)
		}},
		{"primary", func() (*experiment.AblationTable, error) {
			return experiment.AblationPrimaryBinary(cfg)
		}},
		{"warming", func() (*experiment.AblationTable, error) {
			return experiment.AblationWarming(cfg)
		}},
		{"early", func() (*experiment.AblationTable, error) {
			return experiment.AblationEarlyPoints(cfg, []float64{0, 0.25, 1.0})
		}},
	}
	ran := false
	for _, s := range studies {
		if *only != "" && s.key != *only {
			continue
		}
		ran = true
		tab, err := s.run()
		if err != nil {
			return err
		}
		if err := report.Ablation(w, tab); err != nil {
			return err
		}
	}
	if !ran {
		return usagef("unknown ablation %q", *only)
	}
	return nil
}

// cmdMarkers ranks the binary's markers as phase-marker candidates by
// firing-gap regularity (Lau et al. CGO 2006 style analysis).
func cmdMarkers(args []string, w io.Writer) error {
	fs := newFlagSet("markers")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration")
	top := fs.Int("top", 15, "show the N best candidates")
	ops, interval, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, *target)
	if err != nil {
		return err
	}
	stats, err := markerstats.Collect(bin, xbsim.Input{Name: "ref", Seed: *seed})
	if err != nil {
		return err
	}
	ranked := markerstats.RankForInterval(stats, *interval)
	if len(ranked) > *top {
		ranked = ranked[:*top]
	}
	fmt.Fprintf(w, "%s: best interval-boundary candidates for target size %d\n", bin.Name, *interval)
	fmt.Fprintf(w, "  %-12s %-12s %6s %10s %12s %8s\n", "kind", "symbol", "line", "fires", "mean gap", "CV")
	for _, s := range ranked {
		cv := "n/a"
		if !math.IsNaN(s.CV) {
			cv = fmt.Sprintf("%.3f", s.CV)
		}
		fmt.Fprintf(w, "  %-12s %-12s %6d %10d %12.0f %8s\n",
			s.Kind, s.Symbol, s.Line, s.Count, s.MeanGap, cv)
	}
	return nil
}

// cmdTrace records an execution trace to a file, inspects one, or —
// given a positional job/trace ID — reconstructs a served job's
// end-to-end timeline (live via -url, offline via -spool).
func cmdTrace(args []string, w io.Writer) error {
	fs := newFlagSet("trace")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration")
	out := fs.String("o", "", "output trace file")
	info := fs.String("info", "", "inspect an existing trace file instead of recording")
	url := fs.String("url", "", "timeline mode: base URL of a running xbsim serve (e.g. http://127.0.0.1:8080)")
	spool := fs.String("spool", "", "timeline mode: spool directory, read offline")
	jsonOut := fs.Bool("json", false, "timeline mode: emit JSON instead of the table")
	ops, _, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() >= 1 {
		return traceTimeline(fs.Arg(0), *url, *spool, *jsonOut, w)
	}
	if *info != "" {
		f, err := os.Open(*info)
		if err != nil {
			return err
		}
		defer f.Close()
		hdr, err := trace.ReadHeader(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: trace of %s (%d static blocks, %d markers)\n",
			*info, hdr.BinaryName, hdr.NumBlocks, hdr.NumMarkers)
		return nil
	}
	if *out == "" {
		return usagef("-o or -info is required")
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, *target)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, bin, xbsim.Input{Name: "ref", Seed: *seed}); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recorded %s to %s (%d bytes)\n", bin.Name, *out, st.Size())
	return nil
}

// cmdVerify checks the cross-binary invariants for a benchmark.
func cmdVerify(args []string, w io.Writer) error {
	fs := newFlagSet("verify")
	bench := fs.String("bench", "", "benchmark name")
	ops, interval, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	rep, err := validate.CrossBinary(b.Binaries, xbsim.Input{Name: "ref", Seed: *seed}, *interval)
	if err != nil {
		return err
	}
	for _, c := range rep.Checks {
		status := "ok  "
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %s %-28s %s\n", status, c.Name, c.Detail)
	}
	if !rep.OK() {
		return fmt.Errorf("%s: cross-binary invariants violated", rep.Program)
	}
	fmt.Fprintf(w, "%s: all cross-binary invariants hold\n", rep.Program)
	return nil
}

// cmdSelfcheck runs the metamorphic self-check harness: randomized
// programs from a seeded distribution, every paper-level invariant
// checked on each.
func cmdSelfcheck(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("selfcheck")
	n := fs.Int("n", 10, "number of randomized programs to check")
	seed := fs.Uint64("seed", 1, "spec distribution seed (same seed = same programs)")
	workers := fs.Int("workers", 0, "harness worker pool size (0 = GOMAXPROCS, 1 = serial; never changes the report)")
	ops := fs.Uint64("ops", 0, "override every program's operation count (0 = keep each spec's own scale)")
	interval := fs.Uint64("interval", 0, "VLI minimum size in instructions (0 = 8000)")
	cpiBound := fs.Float64("cpi-bound", 0, "cpi-sanity relative error bound (0 = 2.0, a loose sanity net)")
	listPrograms := fs.Bool("programs", false, "also list every checked program with its outcome")
	sampler, samplerBudget := samplerFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *n <= 0 {
		return usagef("-n must be positive")
	}
	rep, err := invariant.Run(ctx, invariant.Config{
		Programs: *n, Seed: *seed, Workers: *workers,
		TargetOps: *ops, IntervalSize: *interval, CPIBound: *cpiBound,
		Sampler: *sampler, SamplerBudget: *samplerBudget,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "selfcheck: %d randomized programs, seed %d\n", *n, *seed)
	for _, tl := range rep.Tallies() {
		status := "ok  "
		if tl.Fail > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %s %-20s %d/%d programs", status, tl.Name, tl.Pass, tl.Pass+tl.Fail)
		if tl.FirstFailure != "" {
			fmt.Fprintf(w, "  first: %s", tl.FirstFailure)
		}
		fmt.Fprintln(w)
	}
	if *listPrograms {
		for _, pr := range rep.Programs {
			status := "ok  "
			if !pr.OK() {
				status = "FAIL"
			}
			fmt.Fprintf(w, "  %s [%3d] %s (ops %d, behaviors %d, segments %d)\n",
				status, pr.Index, pr.Name, pr.Spec.TargetOps, pr.Spec.Behaviors, pr.Spec.Segments)
		}
	}
	if !rep.OK() {
		return fmt.Errorf("selfcheck: invariants violated")
	}
	fmt.Fprintf(w, "all invariants hold across %d programs\n", *n)
	return nil
}

// cmdCallgraph prints the annotated call-loop graph of one binary.
func cmdCallgraph(args []string, w io.Writer) error {
	fs := newFlagSet("callgraph")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration")
	hot := fs.Int("hot", 5, "also list the N hottest loops")
	ops, _, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, *target)
	if err != nil {
		return err
	}
	g, err := callloop.Build(bin, xbsim.Input{Name: "ref", Seed: *seed})
	if err != nil {
		return err
	}
	if err := g.Write(w); err != nil {
		return err
	}
	hotLoops := g.HottestLoops()
	if len(hotLoops) > *hot {
		hotLoops = hotLoops[:*hot]
	}
	fmt.Fprintln(w, "hottest loops:")
	for _, n := range hotLoops {
		fmt.Fprintf(w, "  %-8s line=%-5d entries=%-8d iterations=%-10d instructions=%d\n",
			n.Name, n.Line, n.Count, n.Iterations, n.TotalInstructions)
	}
	return nil
}

// cmdPhases prints a phase timeline (the classic SimPoint strip).
func cmdPhases(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("phases")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration (fli flavor)")
	flavor := fs.String("flavor", "vli", "fli or vli")
	width := fs.Int("width", 72, "strip width in characters")
	ops, interval, seed := commonFlags(fs)
	workers := workersFlag(fs)
	sampler, samplerBudget := samplerFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	in := xbsim.Input{Name: "ref", Seed: *seed}
	cfg := xbsim.PointsConfig{IntervalSize: *interval, Workers: *workers,
		Sampler: *sampler, SamplerBudget: *samplerBudget}
	var ps *xbsim.PointSet
	switch *flavor {
	case "fli":
		bin, err := pickBinary(b, *target)
		if err != nil {
			return err
		}
		ps, err = xbsim.PerBinaryPointsCtx(ctx, bin, in, cfg)
		if err != nil {
			return err
		}
	case "vli":
		cross, err := xbsim.CrossBinaryPointsCtx(ctx, b.Binaries, in, cfg)
		if err != nil {
			return err
		}
		ps, err = cross.ForBinary(0)
		if err != nil {
			return err
		}
	default:
		return usagef("unknown flavor %q", *flavor)
	}
	fmt.Fprintf(w, "%s (%s):\n", *bench, *flavor)
	return report.PhaseTimeline(w, ps.PhaseOf, *width)
}

// cmdSimilarity prints the interval similarity matrix heat map (the
// Sherwood et al. PACT 2001 visualization that motivated SimPoint).
func cmdSimilarity(args []string, w io.Writer) error {
	fs := newFlagSet("similarity")
	bench := fs.String("bench", "", "benchmark name")
	target := fs.String("target", "32u", "binary configuration")
	size := fs.Int("size", 48, "rendered matrix size in characters")
	ops, interval, seed := commonFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := buildBenchmark(*bench, *ops)
	if err != nil {
		return err
	}
	bin, err := pickBinary(b, *target)
	if err != nil {
		return err
	}
	ds, err := xbsim.CollectIntervalBBVs(bin, xbsim.Input{Name: "ref", Seed: *seed}, *interval)
	if err != nil {
		return err
	}
	m, err := ds.SimilarityMatrix(15, xrand.New("similarity/"+bin.Name))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s:\n", bin.Name)
	return bbv.WriteSimilarityMatrix(w, m, *size)
}
