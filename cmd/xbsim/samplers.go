package main

import (
	"context"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"xbsim/internal/experiment"
	"xbsim/internal/report"
)

// cmdSamplers runs the cross-backend sampler comparison: the same suite
// under the simpoint backend and under the stratified backend at each
// requested budget, reduced to CPI error vs simulated-instruction cost
// per configuration.
func cmdSamplers(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("samplers")
	full := fs.Bool("full", false, "use the full benchmark configuration (default: quick five-benchmark suite)")
	benchList := fs.String("benchmarks", "", "comma-separated benchmark subset")
	budgets := fs.String("budgets", "8,16", "comma-separated stratified point budgets")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of the ASCII table")
	ops := fs.Uint64("ops", 0, "override abstract operations per run (0 = configuration default)")
	interval := fs.Uint64("interval", 0, "override interval size (0 = configuration default)")
	workers := fs.Int("workers", 0, "intra-benchmark worker pool size (0 = GOMAXPROCS, 1 = serial; never changes the numbers)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	budgetList, err := parseBudgets(*budgets)
	if err != nil {
		return err
	}
	cfg := experiment.QuickConfig()
	if *full {
		cfg = experiment.FullConfig()
	}
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}
	if *ops != 0 {
		cfg.TargetOps = *ops
	}
	if *interval != 0 {
		cfg.IntervalSize = *interval
	}
	cfg.Workers = *workers

	cmp, err := experiment.CompareSamplers(ctx, cfg, budgetList)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cmp)
	}
	return report.SamplerComparison(w, cmp)
}

// parseBudgets parses the -budgets list into positive integers.
func parseBudgets(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b, err := strconv.Atoi(part)
		if err != nil || b <= 0 {
			return nil, usagef("-budgets wants positive integers, got %q", part)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, usagef("-budgets is empty")
	}
	return out, nil
}
