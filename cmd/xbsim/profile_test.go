package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbsim/internal/obs"
)

// profileArgs keeps the cost-profiler tests fast: one benchmark, small
// program scale.
var profileArgs = []string{"-benchmarks", "swim", "-ops", "400000", "-interval", "8000"}

// TestCmdProfileCostMode is the CI profile-smoke check in library form:
// `xbsim profile` (no -bench) must report a per-(binary, walk) cost
// table, a coverage line, and a non-empty redundancy summary.
func TestCmdProfileCostMode(t *testing.T) {
	out := runCmd(t, "profile", append([]string{"-top", "50"}, profileArgs...)...)

	// One row per (binary, walk): 4 binaries × 3 walks.
	for _, walk := range []string{"full", "fli", "vli"} {
		if n := strings.Count(out, " "+walk+" "); n < 4 {
			t.Errorf("cost table has %d %q rows, want 4:\n%s", n, walk, out)
		}
	}
	for _, bin := range []string{"swim.32u", "swim.32o", "swim.64u", "swim.64o"} {
		if !strings.Contains(out, bin) {
			t.Errorf("cost table missing binary %s:\n%s", bin, out)
		}
	}
	if !strings.Contains(out, "coverage:") {
		t.Errorf("no coverage line:\n%s", out)
	}
	// With the evaluation memo on (the default), the gated walks are
	// answered from walk 3's table: the redundancy analyzer, which
	// counts *executed* evaluations, must see none, and the memo line
	// must report a 100% hit rate.
	if !strings.Contains(out, "redundancy:") {
		t.Fatalf("no redundancy summary:\n%s", out)
	}
	if !strings.Contains(out, "redundancy: 0 point evaluations") {
		t.Errorf("memoized run still executed point evaluations:\n%s", out)
	}
	if !strings.Contains(out, "memo:") || !strings.Contains(out, "(100% hit rate)") {
		t.Errorf("memo summary missing or below full hit rate:\n%s", out)
	}
	if strings.Contains(out, "memo: 0 hits") {
		t.Errorf("memo summary shows no traffic:\n%s", out)
	}
}

// TestCmdProfileFlameOut pins the flamegraph path: -flame-out must write
// a file that passes the speedscope structural validator.
func TestCmdProfileFlameOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flame.json")
	out := runCmd(t, "profile", append([]string{"-flame-out", path}, profileArgs...)...)
	if !strings.Contains(out, "wrote flamegraph") {
		t.Errorf("no flamegraph confirmation:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSpeedscope(data); err != nil {
		t.Fatalf("flamegraph fails speedscope validation: %v", err)
	}
	if !strings.Contains(string(data), "walk:full") || !strings.Contains(string(data), "point:") {
		t.Errorf("flamegraph missing walk/point frames")
	}
}

// TestCmdProfileJSON pins -json: the raw attribution snapshot.
func TestCmdProfileJSON(t *testing.T) {
	out := runCmd(t, "profile", append([]string{"-json"}, profileArgs...)...)
	for _, want := range []string{`"nodes"`, `"redundancy"`, `"walk": "vli"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON snapshot missing %s:\n%.400s", want, out)
		}
	}
}

// TestCmdProfileLegacyMode pins that -bench still selects the original
// call/branch profile, byte-compatible with the old command.
func TestCmdProfileLegacyMode(t *testing.T) {
	out := runCmd(t, "profile", "-bench", "swim", "-target", "32u", "-ops", "400000")
	for _, want := range []string{"instructions,", "procedures:", "loops"} {
		if !strings.Contains(out, want) {
			t.Errorf("legacy profile missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "redundancy:") {
		t.Errorf("legacy mode leaked cost-profiler output:\n%s", out)
	}
}

// TestCmdProfileReusesObserver pins that the cost profiler composes with
// the global observability flags: an observer on the context gets the
// attribution profiler attached rather than replaced.
func TestCmdProfileReusesObserver(t *testing.T) {
	o := obs.New()
	ctx := obs.With(context.Background(), o)
	var sb strings.Builder
	if err := run(ctx, "profile", profileArgs, &sb); err != nil {
		t.Fatal(err)
	}
	if o.Attrib == nil {
		t.Fatal("global observer did not get the attribution profiler")
	}
	if len(o.Attrib.Snapshot().Nodes) == 0 {
		t.Error("attribution empty after profiled run")
	}
	if o.Metrics.Snapshot().Counters["sim.full.instructions"] == 0 {
		t.Error("per-walk metrics missing from the global registry")
	}
}
