package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"xbsim/internal/experiment"
	"xbsim/internal/jobqueue"
	"xbsim/internal/obs"
)

// `xbsim trace <id>` with -spool must reconstruct a finished job's
// timeline offline — by job ID or trace ID — and -json must round-trip
// through the timeline schema.
func TestCmdTraceTimelineFromSpool(t *testing.T) {
	// Run one tiny job to completion so the spool holds a journal.
	dir := t.TempDir()
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"mcf"}
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	q, err := jobqueue.Open(context.Background(), jobqueue.Options{Dir: dir, Concurrency: 1, Workers: 2, Observer: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := q.SubmitTraced(jobqueue.Request{Benchmarks: []string{"mcf"}, Config: cfg},
		jobqueue.Submission{TraceID: "t-cli-test"})
	if err != nil {
		t.Fatal(err)
	}
	for {
		got, err := q.Get(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == jobqueue.StateDone {
			break
		}
		if got.State == jobqueue.StateFailed {
			t.Fatalf("job failed: %s", got.Error)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{j.ID, "t-cli-test"} {
		table := runCmd(t, "trace", "-spool", dir, key)
		for _, want := range []string{"trace t-cli-test", "job " + j.ID, "queue-wait", "run", "job.done"} {
			if !strings.Contains(table, want) {
				t.Fatalf("trace %s table missing %q:\n%s", key, want, table)
			}
		}
	}

	jsonOut := runCmd(t, "trace", "-spool", dir, "-json", j.ID)
	var tl obs.Timeline
	if err := json.Unmarshal([]byte(jsonOut), &tl); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, jsonOut)
	}
	if tl.TraceID != "t-cli-test" || tl.JobID != j.ID || len(tl.Entries) == 0 {
		t.Fatalf("timeline JSON = trace %q job %q %d entries", tl.TraceID, tl.JobID, len(tl.Entries))
	}
	// Round-trip: re-marshaling the parsed timeline reproduces the bytes.
	again, err := json.MarshalIndent(&tl, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(again)) != strings.TrimSpace(jsonOut) {
		t.Fatal("-json output does not round-trip through obs.Timeline")
	}

	var sb strings.Builder
	if err := run(context.Background(), "trace", []string{"t-cli-test"}, &sb); err == nil {
		t.Fatal("timeline mode without -url/-spool accepted")
	}
	if err := run(context.Background(), "trace", []string{"-spool", dir, "t-unknown"}, &sb); err == nil {
		t.Fatal("unknown key accepted")
	}
}
