package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"xbsim/internal/jobqueue"
	"xbsim/internal/obs"
)

// traceTimeline implements `xbsim trace <job-id|trace-id>`: reconstruct
// one served job's end-to-end timeline, either live from a running
// service (-url, the normal path — includes this process's stage spans)
// or offline from a spool directory (-spool — journal events only, for
// post-mortem inspection of a stopped service).
func traceTimeline(key, url, spool string, jsonOut bool, w io.Writer) error {
	switch {
	case url != "":
		return timelineFromURL(key, url, jsonOut, w)
	case spool != "":
		return timelineFromSpool(key, spool, jsonOut, w)
	default:
		return usagef("timeline mode needs -url (running service) or -spool (offline)")
	}
}

// timelineFromURL fetches /jobs/{key}/timeline from a running service.
// With -json the server's response body is written verbatim, so the
// output round-trips bit-exactly through the timeline JSON schema.
func timelineFromURL(key, url string, jsonOut bool, w io.Writer) error {
	resp, err := http.Get(strings.TrimSuffix(url, "/") + "/jobs/" + key + "/timeline")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("timeline %s: %s: %s", key, resp.Status, strings.TrimSpace(string(body)))
	}
	if jsonOut {
		_, err := w.Write(body)
		return err
	}
	var tl obs.Timeline
	if err := json.Unmarshal(body, &tl); err != nil {
		return fmt.Errorf("timeline %s: bad response JSON: %w", key, err)
	}
	return tl.WriteTable(w)
}

// timelineFromSpool reconstructs the timeline from a spool directory
// without a running service: the job is resolved from the journaled
// state files (by job ID, canonical trace, or coalesced trace), and its
// durable event journal is merged and phase-annotated. No process is
// attached, so there are no live stage spans.
func timelineFromSpool(key, dir string, jsonOut bool, w io.Writer) error {
	sp, err := jobqueue.OpenSpool(dir)
	if err != nil {
		return err
	}
	jobs, _ := sp.Load() // a corrupt record costs itself, not the lookup
	var job *jobqueue.Job
	for _, j := range jobs {
		if j.ID == key || j.TraceID == key {
			job = j
			break
		}
		for _, tr := range j.CoalescedTraces {
			if tr == key {
				job = j
				break
			}
		}
		if job != nil {
			break
		}
	}
	if job == nil {
		return fmt.Errorf("timeline %s: no such job or trace in %s", key, dir)
	}
	evs, err := obs.ReadJournal(sp.JournalPath(job.ID))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	tl := obs.BuildTimeline(obs.TimelineInput{
		TraceID: job.TraceID,
		JobID:   job.ID,
		Tenant:  job.Tenant,
		State:   string(job.State),
		Links:   job.CoalescedTraces,
		Events:  evs,
	})
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(tl)
	}
	return tl.WriteTable(w)
}
