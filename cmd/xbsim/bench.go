package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"xbsim/internal/bench"
	"xbsim/internal/experiment"
	"xbsim/internal/report"
)

// cmdBench is the performance-regression harness: it runs the suite N
// times serially, records wall time, allocation, and the per-stage
// resource breakdown into a schema-versioned JSON result, and — with
// -against — compares the run to a committed baseline and fails on
// regressions beyond the tolerances. Wall clock varies across machines,
// so its default tolerance is generous; allocation is nearly
// deterministic, so its tolerance is tight.
func cmdBench(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("bench")
	quick := fs.Bool("quick", false, "use the reduced five-benchmark configuration")
	n := fs.Int("n", 3, "suite iterations (min wall time is the headline statistic)")
	benchList := fs.String("benchmarks", "", "comma-separated benchmark subset")
	ops := fs.Uint64("ops", 0, "override abstract operations per run (0 = configuration default)")
	interval := fs.Uint64("interval", 0, "override interval size (0 = configuration default)")
	out := fs.String("o", "", "write the result JSON here")
	against := fs.String("against", "", "baseline result JSON; regressions beyond the tolerances fail the command")
	wallTol := fs.Float64("tolerance", 0.50, "allowed relative wall-time regression vs the baseline")
	allocTol := fs.Float64("alloc-tolerance", 0.10, "allowed relative allocation regression vs the baseline")
	label := fs.String("label", "", "free-form tag recorded into the result")
	samplers := fs.Bool("samplers", false, "also run the cross-backend sampler comparison and record it into the result")
	budgets := fs.String("budgets", "8,16", "stratified point budgets for -samplers")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *n <= 0 {
		return usagef("-n must be positive")
	}
	if *wallTol < 0 || *allocTol < 0 {
		return usagef("tolerances must be non-negative")
	}
	cfg := experiment.FullConfig()
	if *quick {
		cfg = experiment.QuickConfig()
	}
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}
	if *ops != 0 {
		cfg.TargetOps = *ops
	}
	if *interval != 0 {
		cfg.IntervalSize = *interval
	}

	res, err := bench.Run(ctx, bench.Options{
		Config: cfg, Iterations: *n, Label: *label, Progress: os.Stderr,
	})
	if err != nil {
		return err
	}
	if *samplers {
		budgetList, err := parseBudgets(*budgets)
		if err != nil {
			return err
		}
		// The comparison runs outside the timed iterations, so recording
		// it never perturbs the wall/alloc numbers Compare gates on.
		cmp, err := experiment.CompareSamplers(ctx, cfg, budgetList)
		if err != nil {
			return err
		}
		res.Samplers = cmp
		if err := report.SamplerComparison(w, cmp); err != nil {
			return err
		}
	}
	if err := res.Write(w); err != nil {
		return err
	}
	if *out != "" {
		if err := res.Save(*out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}
	if *against != "" {
		base, err := bench.Load(*against)
		if err != nil {
			return err
		}
		cmp := bench.Compare(res, base, *wallTol, *allocTol)
		if err := cmp.Write(w); err != nil {
			return err
		}
		return cmp.Err()
	}
	return nil
}
