package invariant

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"xbsim/internal/obs"
	"xbsim/internal/program"
)

// small keeps harness tests fast: few programs, small ops.
var small = Config{Programs: 3, Seed: 1, TargetOps: 120_000}

func TestRunAllInvariantsGreen(t *testing.T) {
	rep, err := Run(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Programs) != small.Programs {
		t.Fatalf("checked %d programs, want %d", len(rep.Programs), small.Programs)
	}
	for _, pr := range rep.Programs {
		if pr.Err != "" {
			t.Fatalf("program %d (%s): pipeline failed: %s", pr.Index, pr.Name, pr.Err)
		}
		if len(pr.Checks) != len(Invariants) {
			t.Fatalf("program %d: %d checks, want %d", pr.Index, len(pr.Checks), len(Invariants))
		}
		for i, c := range pr.Checks {
			if c.Name != Invariants[i] {
				t.Fatalf("program %d check %d named %q, want %q", pr.Index, i, c.Name, Invariants[i])
			}
			if !c.OK {
				t.Errorf("program %d (%s): %s failed: %s", pr.Index, pr.Name, c.Name, c.Detail)
			}
		}
	}
	if !rep.OK() {
		t.Fatal("report not OK")
	}
}

// TestRunStratifiedInvariantsGreen runs the same population under the
// stratified backend: every invariant must hold there too, and the
// budget-monotonicity check must actually engage (not report the
// simpoint trivial case).
func TestRunStratifiedInvariantsGreen(t *testing.T) {
	cfg := small
	cfg.Programs = 2
	cfg.Sampler = "stratified"
	cfg.SamplerBudget = 5
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Programs {
		if pr.Err != "" {
			t.Fatalf("program %d (%s): pipeline failed: %s", pr.Index, pr.Name, pr.Err)
		}
		for _, c := range pr.Checks {
			if !c.OK {
				t.Errorf("program %d (%s): %s failed: %s", pr.Index, pr.Name, c.Name, c.Detail)
			}
			if c.Name == "budget-monotonicity" && strings.Contains(c.Detail, "trivial") {
				t.Errorf("program %d: budget-monotonicity did not engage under stratified: %s",
					pr.Index, c.Detail)
			}
		}
	}
}

// TestCheckProgramEdgeSpecStratified pushes the smallest legal program
// through the stratified backend: degenerate strata (a handful of
// intervals, budget larger than the interval count) must still satisfy
// every invariant.
func TestCheckProgramEdgeSpecStratified(t *testing.T) {
	edge := program.Spec{
		TargetOps: 1,
		Behaviors: 1,
		Segments:  1,
		WSLadder:  []uint64{1 << 10},
	}
	cfg := Config{IntervalSize: 2000, MaxK: 2, Sampler: "stratified", SamplerBudget: 64}
	pr := CheckProgram(context.Background(), edge, cfg)
	if pr.Err != "" {
		t.Fatalf("edge spec broke the stratified pipeline: %s", pr.Err)
	}
	for _, c := range pr.Checks {
		if !c.OK {
			t.Errorf("edge spec (stratified): %s failed: %s", c.Name, c.Detail)
		}
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	cfg1, cfg4 := small, small
	cfg1.Workers = 1
	cfg4.Workers = 4
	r1, err := Run(context.Background(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(context.Background(), cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Programs, r4.Programs) {
		t.Fatal("report differs between 1 and 4 harness workers")
	}
}

func TestRunRecordsObservability(t *testing.T) {
	o := obs.New()
	cfg := small
	cfg.Programs = 2
	rep, err := Run(obs.With(context.Background(), o), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("report not OK")
	}
	if got := o.Metrics.Counter("selfcheck.pipeline.pass").Value(); got != 2 {
		t.Fatalf("pipeline pass counter = %d, want 2", got)
	}
	for _, name := range Invariants {
		if got := o.Metrics.Counter("selfcheck." + name + ".pass").Value(); got != 2 {
			t.Fatalf("%s pass counter = %d, want 2", name, got)
		}
	}
}

func TestTallies(t *testing.T) {
	rep := &Report{Programs: []ProgramResult{
		{Name: "a", Checks: []Check{{Name: "marker-counts", OK: true}, {Name: "weight-sum", OK: false, Detail: "boom"}}},
		{Name: "b", Err: "compile exploded"},
	}}
	if rep.OK() {
		t.Fatal("report with failures reports OK")
	}
	byName := map[string]Tally{}
	for _, tl := range rep.Tallies() {
		byName[tl.Name] = tl
	}
	if tl := byName["marker-counts"]; tl.Pass != 1 || tl.Fail != 0 {
		t.Fatalf("marker-counts tally %+v", tl)
	}
	if tl := byName["weight-sum"]; tl.Fail != 1 || !strings.Contains(tl.FirstFailure, "boom") {
		t.Fatalf("weight-sum tally %+v", tl)
	}
	if tl := byName["pipeline"]; tl.Pass != 1 || tl.Fail != 1 || !strings.Contains(tl.FirstFailure, "compile exploded") {
		t.Fatalf("pipeline tally %+v", tl)
	}
}

// TestCheckProgramEdgeSpec pushes the smallest program the spec space
// admits — one behavior, one segment, minimum operation count, a single
// tiny working set — through the full pipeline. This is the edge the
// zero-instruction weight guards (xbsim.CrossPoints.ForBinary and the
// experiment pipeline's recalcWeights) defend: a binary whose
// recalculation pass executes nothing used to divide 0/0 into NaN VLI
// weights that flowed silently into EstCPI. The weight-sum invariant
// rejects NaN and non-distribution weights, so a regression of either
// guard — or any generator change that lets a degenerate program reach
// the division — fails here rather than corrupting estimates.
func TestCheckProgramEdgeSpec(t *testing.T) {
	edge := program.Spec{
		TargetOps: 1, // wraps to minSpecOps, the smallest legal run
		Behaviors: 1,
		Segments:  1,
		WSLadder:  []uint64{1 << 10},
	}
	cfg := Config{IntervalSize: 2000, MaxK: 2}
	pr := CheckProgram(context.Background(), edge, cfg)
	if pr.Err != "" {
		t.Fatalf("edge spec broke the pipeline: %s", pr.Err)
	}
	for _, c := range pr.Checks {
		if !c.OK {
			t.Errorf("edge spec: %s failed: %s", c.Name, c.Detail)
		}
	}
}

func TestCheckProgramOpsOverride(t *testing.T) {
	s := program.RandomSpec(9, 0)
	cfg := small
	cfg.TargetOps = 90_000
	pr := CheckProgram(context.Background(), s, cfg)
	if pr.Err != "" {
		t.Fatalf("pipeline failed: %s", pr.Err)
	}
	if pr.Spec.TargetOps != 90_000 {
		t.Fatalf("spec ops %d, want override 90000", pr.Spec.TargetOps)
	}
}
