package invariant

import (
	"testing"

	"xbsim"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

// fuzzSpec decodes arbitrary fuzz bytes into a canonical spec with the
// operation count wrapped into a fast range, so each fuzz execution
// stays well under a second while still varying scale.
func fuzzSpec(data []byte) program.Spec {
	s := program.SpecFromBytes(data)
	s.TargetOps = 60_000 + s.TargetOps%120_001
	return s.Normalize()
}

func fuzzInput(s program.Spec) xbsim.Input {
	return xbsim.Input{Name: "selfcheck", Seed: 0x5EED ^ s.Variant}
}

// FuzzMapping feeds arbitrary spec encodings through program synthesis,
// compilation, and mappable-point discovery, then checks the §3.2
// guarantees: every mappable point fires exactly its recorded count in
// every binary, and the point set (per binary) is bit-identical when
// the non-primary binaries are permuted.
func FuzzMapping(f *testing.F) {
	for i := 0; i < 6; i++ {
		f.Add(program.RandomSpec(1, i).Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzSpec(data)
		bench, err := xbsim.NewBenchmarkFromSpec(s)
		if err != nil {
			t.Fatalf("spec %+v: %v", s, err)
		}
		in := fuzzInput(s)
		mapped, err := xbsim.FindMappablePoints(bench.Binaries, in, xbsim.MappingOptions{})
		if err != nil {
			t.Fatalf("spec %s: mapping: %v", s.Name(), err)
		}
		for bi, bin := range bench.Binaries {
			mc := exec.NewMarkerCounter(bin)
			if err := exec.Run(bin, in, mc); err != nil {
				t.Fatal(err)
			}
			for _, pt := range mapped.Points {
				if got := mc.Counts[pt.Markers[bi]]; got != pt.Count {
					t.Fatalf("spec %s: point %q fired %d times in %s, recorded %d",
						s.Name(), pt.Name, got, bin.Name, pt.Count)
				}
			}
		}

		// Permute the non-primary binaries; per-binary views must agree.
		perm := []*xbsim.Binary{bench.Binaries[0]}
		for i := len(bench.Binaries) - 1; i >= 1; i-- {
			perm = append(perm, bench.Binaries[i])
		}
		mapped2, err := xbsim.FindMappablePoints(perm, in, xbsim.MappingOptions{})
		if err != nil {
			t.Fatalf("spec %s: permuted mapping: %v", s.Name(), err)
		}
		if len(mapped2.Points) != len(mapped.Points) {
			t.Fatalf("spec %s: %d points under permuted order, baseline %d",
				s.Name(), len(mapped2.Points), len(mapped.Points))
		}
		for b2, bin := range perm {
			b := 0
			for i, orig := range bench.Binaries {
				if orig == bin {
					b = i
					break
				}
			}
			if got, want := mapped2.FingerprintFor(b2), mapped.FingerprintFor(b); got != want {
				t.Fatalf("spec %s: %s mapping fingerprint %s under permuted order, baseline %s",
					s.Name(), bin.Name, got, want)
			}
		}
	})
}

// FuzzStratifiedSampler runs the full cross-binary pipeline under the
// stratified sampler backend on arbitrary spec encodings, with the
// point budget derived from the spec, and checks the invariants the
// backend must uphold: boundary translation, weight distribution, and
// rerun determinism (bit-identical fingerprint for the same inputs).
func FuzzStratifiedSampler(f *testing.F) {
	for i := 0; i < 6; i++ {
		f.Add(program.RandomSpec(3, i).Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzSpec(data)
		bench, err := xbsim.NewBenchmarkFromSpec(s)
		if err != nil {
			t.Fatalf("spec %+v: %v", s, err)
		}
		in := fuzzInput(s)
		pcfg := xbsim.PointsConfig{
			IntervalSize: 8000, MaxK: 6, Workers: 1,
			Sampler:       "stratified",
			SamplerBudget: 1 + int(s.Variant%9),
		}
		cp, err := xbsim.CrossBinaryPoints(bench.Binaries, in, pcfg)
		if err != nil {
			t.Fatalf("spec %s: stratified pipeline: %v", s.Name(), err)
		}
		if c := checkBoundaryTranslate(cp); !c.OK {
			t.Fatalf("spec %s: %s: %s", s.Name(), c.Name, c.Detail)
		}
		if _, c := checkWeightSum(cp); !c.OK {
			t.Fatalf("spec %s: %s: %s", s.Name(), c.Name, c.Detail)
		}
		cp2, err := xbsim.CrossBinaryPoints(bench.Binaries, in, pcfg)
		if err != nil {
			t.Fatalf("spec %s: rerun: %v", s.Name(), err)
		}
		if got, want := cp2.Fingerprint(), cp.Fingerprint(); got != want {
			t.Fatalf("spec %s: rerun fingerprint %s, first run %s", s.Name(), got, want)
		}
	})
}

// FuzzCrossBinaryPoints runs the full cross-binary pipeline on
// arbitrary spec encodings and checks the boundary-translation and
// weight-distribution invariants on the result.
func FuzzCrossBinaryPoints(f *testing.F) {
	for i := 0; i < 6; i++ {
		f.Add(program.RandomSpec(2, i).Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := fuzzSpec(data)
		bench, err := xbsim.NewBenchmarkFromSpec(s)
		if err != nil {
			t.Fatalf("spec %+v: %v", s, err)
		}
		in := fuzzInput(s)
		cp, err := xbsim.CrossBinaryPoints(bench.Binaries, in, xbsim.PointsConfig{
			IntervalSize: 8000, MaxK: 6, Workers: 1,
		})
		if err != nil {
			t.Fatalf("spec %s: pipeline: %v", s.Name(), err)
		}
		if c := checkBoundaryTranslate(cp); !c.OK {
			t.Fatalf("spec %s: %s: %s", s.Name(), c.Name, c.Detail)
		}
		if _, c := checkWeightSum(cp); !c.OK {
			t.Fatalf("spec %s: %s: %s", s.Name(), c.Name, c.Detail)
		}
	})
}
