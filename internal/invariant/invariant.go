// Package invariant is the metamorphic self-check subsystem: it samples
// randomized generator configurations (program.RandomSpec) from a seeded
// deterministic distribution, runs the full cross-binary pipeline on
// each synthesized program, and mechanically checks the paper-level
// invariants the method rests on:
//
//   - marker-counts: every mappable point fires exactly its recorded
//     count in every compiled target;
//   - boundary-translate: every variable-length-interval boundary
//     resolves to the same (mappable point, execution count) in every
//     binary, and translation round-trips exactly;
//   - weight-sum: recalculated per-binary phase weights form a
//     probability distribution;
//   - order-invariance: permuting the non-primary binaries leaves every
//     binary's simulation points bit-identical (compared by
//     fingerprint);
//   - worker-invariance: the analysis fingerprint is bit-identical for
//     every worker-pool size;
//   - cpi-sanity: sampled CPI estimates are finite, positive, and within
//     a configured relative bound of full simulation;
//   - budget-monotonicity: for budgeted sampler backends (stratified),
//     doubling the point budget never makes the mean CPI error
//     substantially worse (trivially satisfied by simpoint, which has no
//     budget knob).
//
// Every invariant is checked under whichever sampler backend
// Config.Sampler selects, so the same metamorphic relations gate both
// the simpoint and the stratified point-selection paths.
//
// Where package validate checks one known benchmark the user hands it,
// this package generates an open-ended population of programs beyond the
// fixed benchmark table and checks the whole population — the test
// oracle is the set of metamorphic relations, not golden outputs. The
// same spec encoding drives the native fuzz targets (FuzzMapping,
// FuzzCrossBinaryPoints) in this package's tests.
package invariant

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"xbsim"
	"xbsim/internal/exec"
	"xbsim/internal/obs"
	"xbsim/internal/pool"
	"xbsim/internal/program"
	"xbsim/internal/sampler"
)

// Invariants lists every checked invariant in report order.
var Invariants = []string{
	"marker-counts",
	"boundary-translate",
	"weight-sum",
	"order-invariance",
	"worker-invariance",
	"cpi-sanity",
	"budget-monotonicity",
}

// Config parameterizes a self-check run. The zero value is usable.
type Config struct {
	// Programs is the number of randomized programs to check (0 = 10).
	Programs int
	// Seed seeds the spec distribution (0 = 1); the same seed always
	// checks the same programs.
	Seed uint64
	// Workers bounds harness-level parallelism across programs; the
	// report is bit-identical for every value. 0 = GOMAXPROCS.
	Workers int
	// TargetOps, when nonzero, overrides every spec's operation count —
	// the knob for trading coverage depth against wall clock.
	TargetOps uint64
	// IntervalSize is the VLI minimum size in instructions (0 = 8000;
	// small, because the generated programs are small).
	IntervalSize uint64
	// MaxK caps the number of phases (0 = 6).
	MaxK int
	// CPIBound is the cpi-sanity relative error bound (0 = 2.0). The
	// default is deliberately loose: cpi-sanity is a net for NaNs and
	// order-of-magnitude breakage, not an accuracy claim. The generated
	// programs are tiny (8000-instruction intervals, k <= MaxK), so an
	// unlucky clustering — e.g. heavy pointer-chasing the BBVs cannot
	// see — can legitimately miss by ~1.4x on every binary at once,
	// because all binaries share the same simulation points. Accuracy
	// on paper-scale workloads is the experiment harness's job.
	CPIBound float64
	// Sampler selects the point-selection backend every invariant is
	// checked under ("" = simpoint). With "stratified" the
	// budget-monotonicity invariant becomes non-trivial.
	Sampler string
	// SamplerBudget is the stratified point budget (0 = backend
	// default); budget-monotonicity compares it against twice itself.
	SamplerBudget int
}

func (c Config) withDefaults() Config {
	if c.Programs == 0 {
		c.Programs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.IntervalSize == 0 {
		c.IntervalSize = 8000
	}
	if c.MaxK == 0 {
		c.MaxK = 6
	}
	if c.CPIBound == 0 {
		c.CPIBound = 2.0
	}
	return c
}

// Check is one invariant's outcome for one program.
type Check struct {
	// Name is the invariant (one of Invariants).
	Name string
	// OK reports whether it held.
	OK bool
	// Detail explains the outcome (what was compared, first violation).
	Detail string
}

// ProgramResult is the outcome for one synthesized program.
type ProgramResult struct {
	// Index is the program's index in the spec distribution.
	Index int
	// Name is the generated program's deterministic name.
	Name string
	// Spec is the generator configuration that was checked.
	Spec program.Spec
	// Err is a pipeline failure that prevented checking ("" when the
	// pipeline ran; a non-empty Err fails the program).
	Err string
	// Checks holds one entry per invariant, in Invariants order.
	Checks []Check
}

// OK reports whether the pipeline ran and every invariant held.
func (pr *ProgramResult) OK() bool {
	if pr.Err != "" {
		return false
	}
	for _, c := range pr.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Tally is one invariant's pass/fail count across the population.
type Tally struct {
	// Name is the invariant.
	Name string
	// Pass and Fail count programs.
	Pass, Fail int
	// FirstFailure is the first failing program's detail ("" when none).
	FirstFailure string
}

// Report is a completed self-check run.
type Report struct {
	// Config is the effective (defaulted) configuration.
	Config Config
	// Programs holds one result per checked program, in index order.
	Programs []ProgramResult
}

// OK reports whether every program passed every invariant.
func (r *Report) OK() bool {
	for i := range r.Programs {
		if !r.Programs[i].OK() {
			return false
		}
	}
	return true
}

// Tallies aggregates per-invariant pass/fail counts in Invariants
// order. Programs whose pipeline failed outright are tallied under a
// trailing synthetic "pipeline" entry.
func (r *Report) Tallies() []Tally {
	byName := map[string]*Tally{}
	order := append([]string(nil), Invariants...)
	order = append(order, "pipeline")
	for _, name := range order {
		byName[name] = &Tally{Name: name}
	}
	for i := range r.Programs {
		pr := &r.Programs[i]
		if pr.Err != "" {
			t := byName["pipeline"]
			t.Fail++
			if t.FirstFailure == "" {
				t.FirstFailure = fmt.Sprintf("%s: %s", pr.Name, pr.Err)
			}
			continue
		}
		byName["pipeline"].Pass++
		for _, c := range pr.Checks {
			t, ok := byName[c.Name]
			if !ok {
				t = &Tally{Name: c.Name}
				byName[c.Name] = t
				order = append(order, c.Name)
			}
			if c.OK {
				t.Pass++
			} else {
				t.Fail++
				if t.FirstFailure == "" {
					t.FirstFailure = fmt.Sprintf("%s: %s", pr.Name, c.Detail)
				}
			}
		}
	}
	out := make([]Tally, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// Run samples cfg.Programs specs from the seeded distribution and
// checks every invariant on each. Programs are checked in parallel
// (cfg.Workers) with index-addressed results, so the report is
// bit-identical for every worker count. With an observer on the
// context, the run records a "stage.selfcheck" span, per-invariant
// "selfcheck.<invariant>.pass|fail" counters, and per-program progress
// events.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ctx, span := obs.StartSpan(ctx, "stage.selfcheck")
	defer span.End()
	span.Annotate(fmt.Sprintf("%d programs, seed %d", cfg.Programs, cfg.Seed))

	o := obs.From(ctx)
	var done atomic.Int64
	results, err := pool.Map(pool.New(cfg.Workers), cfg.Programs, func(i int) (ProgramResult, error) {
		pr := CheckProgram(ctx, program.RandomSpec(cfg.Seed, i), cfg)
		pr.Index = i
		o.Report(obs.Event{
			Benchmark: pr.Name, Stage: "self-check",
			Done: int(done.Add(1)), Total: cfg.Programs,
		})
		return pr, nil
	})
	if err != nil {
		return nil, err
	}
	if o != nil {
		for _, r := range results {
			if r.Err != "" {
				o.Counter("selfcheck.pipeline.fail").Inc()
				continue
			}
			o.Counter("selfcheck.pipeline.pass").Inc()
			for _, c := range r.Checks {
				if c.OK {
					o.Counter("selfcheck." + c.Name + ".pass").Inc()
				} else {
					o.Counter("selfcheck." + c.Name + ".fail").Inc()
				}
			}
		}
	}
	return &Report{Config: cfg, Programs: results}, nil
}

// CheckProgram synthesizes the spec's program, compiles all targets,
// runs the cross-binary pipeline, and checks every invariant. Failures
// are recorded in the result, never returned: a spec that breaks the
// pipeline is a finding, not a harness error.
func CheckProgram(ctx context.Context, s program.Spec, cfg Config) ProgramResult {
	cfg = cfg.withDefaults()
	s = s.Normalize()
	if cfg.TargetOps != 0 {
		s.TargetOps = cfg.TargetOps
		s = s.Normalize()
	}
	pr := ProgramResult{Name: s.Name(), Spec: s}

	_, span := obs.StartSpan(ctx, "selfcheck.program")
	defer span.End()
	span.Annotate(pr.Name)

	bench, err := xbsim.NewBenchmarkFromSpec(s)
	if err != nil {
		pr.Err = err.Error()
		return pr
	}
	in := xbsim.Input{Name: "selfcheck", Seed: 0x5EED ^ s.Variant}
	pcfg := xbsim.PointsConfig{
		IntervalSize: cfg.IntervalSize,
		MaxK:         cfg.MaxK,
		// The baseline analysis is serial; worker-invariance reruns it
		// with a pool and demands a bit-identical fingerprint.
		Workers:       1,
		Sampler:       cfg.Sampler,
		SamplerBudget: cfg.SamplerBudget,
	}
	cp, err := xbsim.CrossBinaryPoints(bench.Binaries, in, pcfg)
	if err != nil {
		pr.Err = err.Error()
		return pr
	}

	pr.Checks = append(pr.Checks, checkMarkerCounts(bench.Binaries, in, cp))
	pr.Checks = append(pr.Checks, checkBoundaryTranslate(cp))
	sets, wcheck := checkWeightSum(cp)
	pr.Checks = append(pr.Checks, wcheck)
	pr.Checks = append(pr.Checks, checkOrderInvariance(bench.Binaries, in, pcfg, cp, sets))
	pr.Checks = append(pr.Checks, checkWorkerInvariance(bench.Binaries, in, pcfg, cp))
	pr.Checks = append(pr.Checks, checkCPISanity(bench.Binaries, in, sets, cfg.CPIBound))
	pr.Checks = append(pr.Checks, checkBudgetMonotonicity(bench.Binaries, in, pcfg, cfg))
	return pr
}

// checkMarkerCounts re-executes every binary with a raw marker counter
// and verifies each mappable point fires exactly its recorded count —
// the (marker, count) region-delimiter guarantee of §3.2.
func checkMarkerCounts(bins []*xbsim.Binary, in xbsim.Input, cp *xbsim.CrossPoints) Check {
	bad := 0
	detail := ""
	for bi, bin := range bins {
		mc := exec.NewMarkerCounter(bin)
		if err := exec.Run(bin, in, mc); err != nil {
			return Check{Name: "marker-counts", Detail: err.Error()}
		}
		for _, pt := range cp.Mapping.Points {
			if got := mc.Counts[pt.Markers[bi]]; got != pt.Count {
				bad++
				if detail == "" {
					detail = fmt.Sprintf("point %q fired %d times in %s, recorded %d",
						pt.Name, got, bin.Name, pt.Count)
				}
			}
		}
	}
	if bad > 0 {
		return Check{Name: "marker-counts", Detail: fmt.Sprintf("%d violations; first: %s", bad, detail)}
	}
	return Check{Name: "marker-counts", OK: true, Detail: fmt.Sprintf(
		"%d mappable points fired their recorded counts in all %d binaries", len(cp.Mapping.Points), len(bins))}
}

// checkBoundaryTranslate verifies every VLI boundary resolves to the
// same (mappable point, count) in every binary: translation into each
// binary succeeds, round-trips exactly, and the cut count never exceeds
// the point's total count.
func checkBoundaryTranslate(cp *xbsim.CrossPoints) Check {
	ends := cp.Ends()
	for b := range cp.Mapping.Binaries {
		there, err := cp.Mapping.TranslateEnds(cp.Primary, b, ends)
		if err != nil {
			return Check{Name: "boundary-translate", Detail: fmt.Sprintf("to binary %d: %v", b, err)}
		}
		back, err := cp.Mapping.TranslateEnds(b, cp.Primary, there)
		if err != nil {
			return Check{Name: "boundary-translate", Detail: fmt.Sprintf("back from binary %d: %v", b, err)}
		}
		for i := range ends {
			if back[i] != ends[i] {
				return Check{Name: "boundary-translate", Detail: fmt.Sprintf(
					"boundary %d round-trips through binary %d as (%d,%d), was (%d,%d)",
					i, b, back[i].Marker, back[i].Count, ends[i].Marker, ends[i].Count)}
			}
			if ends[i].Marker < 0 {
				continue // sentinel (end of execution)
			}
			pi, ok := cp.Mapping.PointOfMarker(b, there[i].Marker)
			if !ok {
				return Check{Name: "boundary-translate", Detail: fmt.Sprintf(
					"boundary %d marker %d is not a mappable point in binary %d", i, there[i].Marker, b)}
			}
			pt := cp.Mapping.Points[pi]
			if there[i].Count == 0 || there[i].Count > pt.Count {
				return Check{Name: "boundary-translate", Detail: fmt.Sprintf(
					"boundary %d cuts point %q at count %d, outside [1,%d]", i, pt.Name, there[i].Count, pt.Count)}
			}
		}
	}
	return Check{Name: "boundary-translate", OK: true, Detail: fmt.Sprintf(
		"%d boundaries resolve identically in all %d binaries", len(ends), len(cp.Mapping.Binaries))}
}

// checkWeightSum maps the points into every binary and verifies the
// recalculated phase weights form a probability distribution. The
// per-binary point sets are returned for reuse by the order-invariance
// and cpi-sanity checks.
func checkWeightSum(cp *xbsim.CrossPoints) ([]*xbsim.PointSet, Check) {
	const tol = 1e-9
	sets := make([]*xbsim.PointSet, len(cp.Mapping.Binaries))
	for b := range cp.Mapping.Binaries {
		ps, err := cp.ForBinary(b)
		if err != nil {
			return nil, Check{Name: "weight-sum", Detail: fmt.Sprintf("binary %d: %v", b, err)}
		}
		sets[b] = ps
		sum := 0.0
		for p, w := range ps.Weights {
			if w < 0 || w > 1+tol || math.IsNaN(w) {
				return nil, Check{Name: "weight-sum", Detail: fmt.Sprintf(
					"%s phase %d weight %v outside [0,1]", ps.Binary.Name, p, w)}
			}
			sum += w
		}
		if math.Abs(sum-1) > tol {
			return nil, Check{Name: "weight-sum", Detail: fmt.Sprintf(
				"%s weights sum to %v, want 1", ps.Binary.Name, sum)}
		}
		if len(ps.PhaseOf) != cp.NumIntervals() {
			return nil, Check{Name: "weight-sum", Detail: fmt.Sprintf(
				"%s labels %d intervals, want %d", ps.Binary.Name, len(ps.PhaseOf), cp.NumIntervals())}
		}
	}
	return sets, Check{Name: "weight-sum", OK: true, Detail: fmt.Sprintf(
		"phase weights sum to 1 in all %d binaries", len(sets))}
}

// checkOrderInvariance reruns the pipeline with the non-primary
// binaries reversed and demands every binary's point set comes out
// bit-identical (by fingerprint). The clustering runs only on the
// primary and point discovery orders points canonically, so the binary
// list order must be immaterial.
func checkOrderInvariance(bins []*xbsim.Binary, in xbsim.Input, pcfg xbsim.PointsConfig,
	cp *xbsim.CrossPoints, sets []*xbsim.PointSet) Check {
	if sets == nil {
		return Check{Name: "order-invariance", Detail: "skipped: weight-sum failed"}
	}
	if len(bins) < 3 {
		return Check{Name: "order-invariance", OK: true, Detail: "trivial with fewer than 3 binaries"}
	}
	perm := make([]*xbsim.Binary, 0, len(bins))
	perm = append(perm, bins[0])
	for i := len(bins) - 1; i >= 1; i-- {
		perm = append(perm, bins[i])
	}
	cp2, err := xbsim.CrossBinaryPoints(perm, in, pcfg)
	if err != nil {
		return Check{Name: "order-invariance", Detail: fmt.Sprintf("permuted pipeline: %v", err)}
	}
	if cp2.K() != cp.K() || cp2.NumIntervals() != cp.NumIntervals() {
		return Check{Name: "order-invariance", Detail: fmt.Sprintf(
			"permuted run chose k=%d over %d intervals, baseline k=%d over %d",
			cp2.K(), cp2.NumIntervals(), cp.K(), cp.NumIntervals())}
	}
	for b2, bin := range perm {
		ps2, err := cp2.ForBinary(b2)
		if err != nil {
			return Check{Name: "order-invariance", Detail: fmt.Sprintf("permuted ForBinary(%d): %v", b2, err)}
		}
		var base *xbsim.PointSet
		for _, ps := range sets {
			if ps.Binary == bin {
				base = ps
				break
			}
		}
		if base == nil {
			return Check{Name: "order-invariance", Detail: fmt.Sprintf("binary %s missing from baseline", bin.Name)}
		}
		if got, want := ps2.Fingerprint(), base.Fingerprint(); got != want {
			return Check{Name: "order-invariance", Detail: fmt.Sprintf(
				"%s point set fingerprint %s under permuted order, baseline %s", bin.Name, got, want)}
		}
	}
	return Check{Name: "order-invariance", OK: true, Detail: fmt.Sprintf(
		"point sets bit-identical for all %d binaries under reversed order", len(bins))}
}

// checkWorkerInvariance reruns the analysis with a worker pool and
// demands a bit-identical fingerprint against the serial baseline —
// the pool's index-addressed determinism guarantee, end to end.
func checkWorkerInvariance(bins []*xbsim.Binary, in xbsim.Input, pcfg xbsim.PointsConfig, cp *xbsim.CrossPoints) Check {
	pcfg.Workers = 3
	cp2, err := xbsim.CrossBinaryPoints(bins, in, pcfg)
	if err != nil {
		return Check{Name: "worker-invariance", Detail: fmt.Sprintf("parallel pipeline: %v", err)}
	}
	if got, want := cp2.Fingerprint(), cp.Fingerprint(); got != want {
		return Check{Name: "worker-invariance", Detail: fmt.Sprintf(
			"fingerprint %s with 3 workers, %s serial", got, want)}
	}
	return Check{Name: "worker-invariance", OK: true,
		Detail: "analysis fingerprint bit-identical for 1 and 3 workers"}
}

// checkCPISanity estimates CPI from the sampled regions in every binary
// and verifies the estimate is finite, positive, and within the
// configured relative bound of full simulation.
func checkCPISanity(bins []*xbsim.Binary, in xbsim.Input, sets []*xbsim.PointSet, bound float64) Check {
	if sets == nil {
		return Check{Name: "cpi-sanity", Detail: "skipped: weight-sum failed"}
	}
	worst := 0.0
	for b, bin := range bins {
		full, err := xbsim.SimulateFull(bin, in, nil)
		if err != nil {
			return Check{Name: "cpi-sanity", Detail: fmt.Sprintf("%s full simulation: %v", bin.Name, err)}
		}
		est, err := xbsim.EstimateStats(bin, in, sets[b], nil)
		if err != nil {
			return Check{Name: "cpi-sanity", Detail: fmt.Sprintf("%s estimate: %v", bin.Name, err)}
		}
		if !isFinite(est.CPI) || est.CPI <= 0 || !isFinite(est.L1MissRate) || !isFinite(est.DRAMPerKI) {
			return Check{Name: "cpi-sanity", Detail: fmt.Sprintf(
				"%s estimate not finite: cpi=%v l1=%v dram/ki=%v", bin.Name, est.CPI, est.L1MissRate, est.DRAMPerKI)}
		}
		rel := math.Abs(est.CPI-full.CPI()) / full.CPI()
		if rel > bound {
			return Check{Name: "cpi-sanity", Detail: fmt.Sprintf(
				"%s estimated CPI %.4f vs full %.4f: relative error %.3f exceeds %.3f",
				bin.Name, est.CPI, full.CPI(), rel, bound)}
		}
		if rel > worst {
			worst = rel
		}
	}
	return Check{Name: "cpi-sanity", OK: true, Detail: fmt.Sprintf(
		"CPI estimates within %.3f of full simulation in all %d binaries (bound %.3f)", worst, len(bins), bound)}
}

// checkBudgetMonotonicity verifies the budget knob of a budgeted
// backend behaves like a budget: doubling the stratified point budget
// must not make the mean CPI error substantially worse. "Substantially"
// allows a fixed slack — more strata can re-draw every representative,
// so small per-program wobble is legitimate; what the invariant rules
// out is a backend whose extra simulation spend systematically buys
// worse estimates. The simpoint backend has no budget knob, so it
// satisfies the invariant trivially.
func checkBudgetMonotonicity(bins []*xbsim.Binary, in xbsim.Input, pcfg xbsim.PointsConfig, cfg Config) Check {
	if cfg.Sampler == "" || cfg.Sampler == sampler.BackendSimPoint {
		return Check{Name: "budget-monotonicity", OK: true,
			Detail: "trivial: the simpoint backend has no budget knob"}
	}
	lo := cfg.SamplerBudget
	if lo <= 0 {
		lo = 6
	}
	hi := 2 * lo
	// Generous: the generated programs are tiny, so a single re-drawn
	// representative can move one binary's estimate by a few percent.
	const slack = 0.25
	errLo, err := meanCPIError(bins, in, pcfg, lo)
	if err != nil {
		return Check{Name: "budget-monotonicity", Detail: fmt.Sprintf("budget %d: %v", lo, err)}
	}
	errHi, err := meanCPIError(bins, in, pcfg, hi)
	if err != nil {
		return Check{Name: "budget-monotonicity", Detail: fmt.Sprintf("budget %d: %v", hi, err)}
	}
	if errHi > errLo+slack {
		return Check{Name: "budget-monotonicity", Detail: fmt.Sprintf(
			"mean CPI error %.4f at budget %d vs %.4f at budget %d exceeds slack %.2f",
			errHi, hi, errLo, lo, slack)}
	}
	return Check{Name: "budget-monotonicity", OK: true, Detail: fmt.Sprintf(
		"mean CPI error %.4f at budget %d, %.4f at budget %d (slack %.2f)",
		errLo, lo, errHi, hi, slack)}
}

// meanCPIError runs the cross-binary pipeline at the given sampler
// budget and returns the mean relative CPI error across binaries.
func meanCPIError(bins []*xbsim.Binary, in xbsim.Input, pcfg xbsim.PointsConfig, budget int) (float64, error) {
	pcfg.SamplerBudget = budget
	cp, err := xbsim.CrossBinaryPoints(bins, in, pcfg)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for b, bin := range bins {
		ps, err := cp.ForBinary(b)
		if err != nil {
			return 0, err
		}
		full, err := xbsim.SimulateFull(bin, in, nil)
		if err != nil {
			return 0, err
		}
		est, err := xbsim.EstimateStats(bin, in, ps, nil)
		if err != nil {
			return 0, err
		}
		sum += math.Abs(est.CPI-full.CPI()) / full.CPI()
	}
	return sum / float64(len(bins)), nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
