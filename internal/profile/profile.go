// Package profile provides the Pin-substitute instrumentation layer: the
// call/branch profiler the mapping step consumes (paper §3.2.1) and the
// interval BBV collectors that feed SimPoint — fixed length intervals
// (FLIs) for the per-binary baseline and variable length intervals (VLIs)
// cut at mappable markers for cross-binary SimPoint (§3.2.3).
//
// All collectors are exec.Visitors, so one execution can feed several of
// them through exec.Multi.
package profile

import (
	"context"
	"fmt"

	"xbsim/internal/bbv"
	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

// ProcProfile is the execution profile of one symbolled procedure.
type ProcProfile struct {
	// Symbol is the procedure name.
	Symbol string
	// Line is the procedure's source line from debug info.
	Line int
	// Marker is the binary-local proc-entry marker ID.
	Marker int
	// Count is how many times the procedure was entered.
	Count uint64
}

// LoopProfile is the execution profile of one lowered loop piece: its entry
// point and its body (back edge), the two structures the paper profiles
// separately ("loop entry" vs "loop body", §3.2.1).
type LoopProfile struct {
	// EntryMarker and BodyMarker are binary-local marker IDs.
	EntryMarker, BodyMarker int
	// Line is the debug line of the loop branch, 0 when the optimizer
	// destroyed line info (inlined clones, restructured loops).
	Line int
	// EnclosingSymbol is the symbol of the innermost symbolled procedure
	// containing the loop after inlining.
	EnclosingSymbol string
	// Piece distinguishes distributed-loop pieces.
	Piece int
	// SourceLoopID is ground truth for tests; the mapping algorithm does
	// not use it.
	SourceLoopID int
	// EntryCount is how many times the loop was entered; BodyCount how
	// many times the back edge executed (iterations / unroll groups).
	EntryCount, BodyCount uint64
}

// Profile is the complete call-and-branch profile of one binary on one
// input.
type Profile struct {
	// Binary is the profiled binary.
	Binary *compiler.Binary
	// Input is the profiled input.
	Input program.Input
	// TotalInstructions is the full dynamic instruction count.
	TotalInstructions uint64
	// Procs holds one entry per symbol, in symbol-table order.
	Procs []ProcProfile
	// Loops holds one entry per loop piece, in marker order.
	Loops []LoopProfile
}

// ProcBySymbol returns the profile of the named procedure, or nil.
func (p *Profile) ProcBySymbol(symbol string) *ProcProfile {
	for i := range p.Procs {
		if p.Procs[i].Symbol == symbol {
			return &p.Procs[i]
		}
	}
	return nil
}

// Collect runs the binary once and gathers its call-and-branch profile.
func Collect(bin *compiler.Binary, in program.Input) (*Profile, error) {
	return CollectCtx(context.Background(), bin, in)
}

// CollectCtx is Collect with observability: the profiling execution is
// recorded through the context's observer, if any (see package obs).
func CollectCtx(ctx context.Context, bin *compiler.Binary, in program.Input) (*Profile, error) {
	ic := exec.NewInstructionCounter(bin)
	mc := exec.NewMarkerCounter(bin)
	if err := exec.RunCtx(ctx, bin, in, exec.Multi{ic, mc}); err != nil {
		return nil, err
	}
	return BuildProfile(bin, in, ic.Instructions, mc.Counts)
}

// BuildProfile assembles a Profile from already-collected marker counts,
// letting callers fold profiling into a shared execution pass.
func BuildProfile(bin *compiler.Binary, in program.Input, totalInstrs uint64, markerCounts []uint64) (*Profile, error) {
	if len(markerCounts) != len(bin.Markers) {
		return nil, fmt.Errorf("profile: %d counts for %d markers", len(markerCounts), len(bin.Markers))
	}
	p := &Profile{Binary: bin, Input: in, TotalInstructions: totalInstrs}
	// Loop entry/body markers are emitted adjacently per piece by the
	// compiler; pair them by scanning in order.
	for i := 0; i < len(bin.Markers); i++ {
		m := bin.Markers[i]
		switch m.Kind {
		case compiler.MarkerProcEntry:
			p.Procs = append(p.Procs, ProcProfile{
				Symbol: m.Symbol,
				Line:   m.Line,
				Marker: m.ID,
				Count:  markerCounts[m.ID],
			})
		case compiler.MarkerLoopEntry:
			if i+1 >= len(bin.Markers) || bin.Markers[i+1].Kind != compiler.MarkerLoopBody {
				return nil, fmt.Errorf("profile: loop-entry marker %d not followed by loop-body marker", m.ID)
			}
			body := bin.Markers[i+1]
			if body.SourceLoopID != m.SourceLoopID || body.Piece != m.Piece {
				return nil, fmt.Errorf("profile: mismatched loop marker pair %d/%d", m.ID, body.ID)
			}
			p.Loops = append(p.Loops, LoopProfile{
				EntryMarker:     m.ID,
				BodyMarker:      body.ID,
				Line:            m.Line,
				EnclosingSymbol: m.EnclosingSymbol,
				Piece:           m.Piece,
				SourceLoopID:    m.SourceLoopID,
				EntryCount:      markerCounts[m.ID],
				BodyCount:       markerCounts[body.ID],
			})
			i++ // consume the body marker
		case compiler.MarkerLoopBody:
			return nil, fmt.Errorf("profile: orphan loop-body marker %d", m.ID)
		}
	}
	return p, nil
}

// FLIResult is the output of fixed-length-interval BBV collection.
type FLIResult struct {
	// Dataset holds one BBV per interval, in execution order.
	Dataset *bbv.Dataset
	// Ends[i] is the dynamic instruction offset just past interval i; the
	// interval spans [Ends[i-1], Ends[i]) (with Ends[-1] == 0).
	Ends []uint64
}

// FLICollector is an exec.Visitor that cuts intervals every Size
// instructions (at the next block boundary) and records each interval's
// basic block vector. This is per-binary SimPoint's front end (§2.1).
type FLICollector struct {
	bin  *compiler.Binary
	size uint64

	cur    *bbv.Vector
	total  uint64
	result FLIResult
}

// NewFLICollector creates a collector with the given interval size in
// instructions.
func NewFLICollector(bin *compiler.Binary, size uint64) (*FLICollector, error) {
	if size == 0 {
		return nil, fmt.Errorf("profile: zero FLI size")
	}
	return &FLICollector{
		bin:    bin,
		size:   size,
		cur:    bbv.NewVector(),
		result: FLIResult{Dataset: bbv.NewDataset()},
	}, nil
}

// OnBlock implements exec.Visitor.
func (c *FLICollector) OnBlock(block int) {
	b := &c.bin.Blocks[block]
	c.cur.Add(block, 1, b.Instrs)
	c.total += uint64(b.Instrs)
	if c.cur.Instructions() >= c.size {
		c.cut()
	}
}

// OnMarker implements exec.Visitor.
func (c *FLICollector) OnMarker(int) {}

func (c *FLICollector) cut() {
	c.result.Dataset.Append(c.cur)
	c.result.Ends = append(c.result.Ends, c.total)
	c.cur.Reset()
}

// Finish closes the trailing partial interval (if any) and returns the
// result. Call exactly once, after the run.
func (c *FLICollector) Finish() *FLIResult {
	if c.cur.Instructions() > 0 {
		c.cut()
	}
	return &c.result
}

// Boundary is a point in execution expressed as the count-th firing of a
// binary-local marker: the (marker ID, execution count) pair of §3.2.3.
// Marker == -1 with Count == 0 denotes the start of execution; Marker == -1
// with Count == 1 denotes the end.
type Boundary struct {
	Marker int
	Count  uint64
}

// BoundaryStart and BoundaryEnd are the sentinel boundaries.
var (
	BoundaryStart = Boundary{Marker: -1, Count: 0}
	BoundaryEnd   = Boundary{Marker: -1, Count: 1}
)

// VLIResult is the output of variable-length-interval collection on the
// primary binary.
type VLIResult struct {
	// Dataset holds one BBV per interval.
	Dataset *bbv.Dataset
	// Ends[i] is the boundary closing interval i. The final entry may be
	// BoundaryEnd when execution finished mid-interval. Interval i spans
	// (Ends[i-1], Ends[i]], with the block firing the closing boundary
	// included in the closing interval.
	Ends []Boundary
}

// VLICollector cuts intervals at mappable markers: an interval ends at the
// first mappable-marker firing at or after Size instructions.
type VLICollector struct {
	bin      *compiler.Binary
	size     uint64
	mappable []bool // per marker ID

	cur     *bbv.Vector
	fireCnt []uint64 // per marker ID
	result  VLIResult
}

// NewVLICollector creates a collector. mappableMarkers lists the
// binary-local marker IDs usable as interval boundaries.
func NewVLICollector(bin *compiler.Binary, size uint64, mappableMarkers []int) (*VLICollector, error) {
	if size == 0 {
		return nil, fmt.Errorf("profile: zero VLI size")
	}
	c := &VLICollector{
		bin:      bin,
		size:     size,
		mappable: make([]bool, len(bin.Markers)),
		cur:      bbv.NewVector(),
		fireCnt:  make([]uint64, len(bin.Markers)),
		result:   VLIResult{Dataset: bbv.NewDataset()},
	}
	for _, m := range mappableMarkers {
		if m < 0 || m >= len(bin.Markers) {
			return nil, fmt.Errorf("profile: mappable marker %d out of range", m)
		}
		c.mappable[m] = true
	}
	return c, nil
}

// OnBlock implements exec.Visitor.
func (c *VLICollector) OnBlock(block int) {
	b := &c.bin.Blocks[block]
	c.cur.Add(block, 1, b.Instrs)
}

// OnMarker implements exec.Visitor.
func (c *VLICollector) OnMarker(marker int) {
	c.fireCnt[marker]++
	if !c.mappable[marker] {
		return
	}
	if c.cur.Instructions() >= c.size {
		c.result.Dataset.Append(c.cur)
		c.result.Ends = append(c.result.Ends, Boundary{Marker: marker, Count: c.fireCnt[marker]})
		c.cur.Reset()
	}
}

// Finish closes the trailing partial interval with the end-of-program
// boundary and returns the result. Call exactly once, after the run.
func (c *VLICollector) Finish() *VLIResult {
	if c.cur.Instructions() > 0 {
		c.result.Dataset.Append(c.cur)
		c.result.Ends = append(c.result.Ends, BoundaryEnd)
		c.cur.Reset()
	}
	return &c.result
}

// IntervalSink receives interval-tracking callbacks from a tracker during
// a run: Transition(i) fires when interval i begins (i == 0 fires on the
// first block).
type IntervalSink interface {
	Transition(interval int)
}

// SinkFunc adapts a function to IntervalSink.
type SinkFunc func(interval int)

// Transition implements IntervalSink.
func (f SinkFunc) Transition(interval int) { f(interval) }

// VLITracker follows a boundary list during a run of ANY binary of the
// program (boundaries must be expressed in that binary's marker IDs) and
// reports interval transitions plus per-interval instruction counts. It is
// how mapped simulation points are located (§3.2.5) and how weights are
// recalculated per binary (§3.2.6).
type VLITracker struct {
	bin  *compiler.Binary
	ends []Boundary
	sink IntervalSink

	fireCnt  []uint64
	interval int
	started  bool
	// Instructions[i] accumulates dynamic instructions of interval i.
	Instructions []uint64
}

// NewVLITracker builds a tracker. ends is the boundary list closing each
// interval, already translated to this binary's marker IDs. sink may be
// nil.
func NewVLITracker(bin *compiler.Binary, ends []Boundary, sink IntervalSink) *VLITracker {
	return &VLITracker{
		bin:          bin,
		ends:         ends,
		sink:         sink,
		fireCnt:      make([]uint64, len(bin.Markers)),
		Instructions: make([]uint64, len(ends)),
	}
}

// Interval returns the current interval index (== len(ends) once past the
// last boundary).
func (t *VLITracker) Interval() int { return t.interval }

// OnBlock implements exec.Visitor.
func (t *VLITracker) OnBlock(block int) {
	if !t.started {
		t.started = true
		if t.sink != nil {
			t.sink.Transition(0)
		}
	}
	if t.interval < len(t.Instructions) {
		t.Instructions[t.interval] += uint64(t.bin.Blocks[block].Instrs)
	}
}

// OnMarker implements exec.Visitor.
func (t *VLITracker) OnMarker(marker int) {
	t.fireCnt[marker]++
	for t.interval < len(t.ends) {
		end := t.ends[t.interval]
		if end.Marker != marker || t.fireCnt[marker] != end.Count {
			break
		}
		t.interval++
		if t.sink != nil {
			t.sink.Transition(t.interval)
		}
	}
}

// FLITracker reports interval transitions for fixed-length intervals in
// the binary's own instruction counting, given the interval end offsets
// from an FLIResult.
type FLITracker struct {
	bin  *compiler.Binary
	ends []uint64
	sink IntervalSink

	total    uint64
	interval int
	started  bool
	// Instructions[i] accumulates dynamic instructions of interval i.
	Instructions []uint64
}

// NewFLITracker builds a tracker over the given interval end offsets.
func NewFLITracker(bin *compiler.Binary, ends []uint64, sink IntervalSink) *FLITracker {
	return &FLITracker{
		bin:          bin,
		ends:         ends,
		sink:         sink,
		Instructions: make([]uint64, len(ends)),
	}
}

// Interval returns the current interval index.
func (t *FLITracker) Interval() int { return t.interval }

// OnBlock implements exec.Visitor.
func (t *FLITracker) OnBlock(block int) {
	if !t.started {
		t.started = true
		if t.sink != nil {
			t.sink.Transition(0)
		}
	}
	n := uint64(t.bin.Blocks[block].Instrs)
	if t.interval < len(t.Instructions) {
		t.Instructions[t.interval] += n
	}
	t.total += n
	for t.interval < len(t.ends) && t.total >= t.ends[t.interval] {
		t.interval++
		if t.sink != nil {
			t.sink.Transition(t.interval)
		}
	}
}

// OnMarker implements exec.Visitor.
func (t *FLITracker) OnMarker(int) {}
