package profile

import (
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
)

func TestFLITrackerEmptyEnds(t *testing.T) {
	// No boundaries: everything lands past the last interval and the
	// tracker must not panic or attribute anything.
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	tr := NewFLITracker(bin, nil, nil)
	if err := exec.Run(bin, refInput, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Interval() != 0 || len(tr.Instructions) != 0 {
		t.Fatalf("empty-ends tracker state: interval=%d", tr.Interval())
	}
}

func TestVLITrackerEmptyEnds(t *testing.T) {
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	tr := NewVLITracker(bin, nil, nil)
	if err := exec.Run(bin, refInput, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Interval() != 0 {
		t.Fatalf("interval = %d", tr.Interval())
	}
}

func TestVLITrackerBoundaryNeverFires(t *testing.T) {
	// A boundary whose count exceeds the marker's total firings: the run
	// stays in interval 0 and all instructions attribute there.
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	ends := []Boundary{{Marker: 0, Count: 1 << 60}}
	tr := NewVLITracker(bin, ends, nil)
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, exec.Multi{tr, ic}); err != nil {
		t.Fatal(err)
	}
	if tr.Interval() != 0 {
		t.Fatalf("crossed a boundary that never fired (interval %d)", tr.Interval())
	}
	if tr.Instructions[0] != ic.Instructions {
		t.Fatalf("interval 0 holds %d of %d instructions", tr.Instructions[0], ic.Instructions)
	}
}

func TestFLITrackerZeroOffsetBoundary(t *testing.T) {
	// An end offset of 0 is crossed by the very first block; interval 0
	// gets that block's instructions (attribution is block-granular) and
	// everything after goes to interval 1.
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, ic); err != nil {
		t.Fatal(err)
	}
	tr := NewFLITracker(bin, []uint64{0, ic.Instructions}, nil)
	if err := exec.Run(bin, refInput, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Interval() != 2 {
		t.Fatalf("final interval %d, want 2", tr.Interval())
	}
	if tr.Instructions[0]+tr.Instructions[1] != ic.Instructions {
		t.Fatal("intervals do not partition the run")
	}
}

func TestVLICollectorHugeSizeYieldsOneInterval(t *testing.T) {
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	c, err := NewVLICollector(bin, 1<<50, allMarkers(bin))
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, c); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()
	if res.Dataset.Len() != 1 {
		t.Fatalf("%d intervals for huge target", res.Dataset.Len())
	}
	if res.Ends[0] != BoundaryEnd {
		t.Fatalf("single interval ends at %+v, want end sentinel", res.Ends[0])
	}
}

func TestFLICollectorHugeSizeYieldsOneInterval(t *testing.T) {
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	c, err := NewFLICollector(bin, 1<<50)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, c); err != nil {
		t.Fatal(err)
	}
	if res := c.Finish(); res.Dataset.Len() != 1 {
		t.Fatalf("%d intervals for huge size", res.Dataset.Len())
	}
}
