package profile

import (
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 99}

func binFor(t testing.TB, name string, tg compiler.Target) *compiler.Binary {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	return compiler.MustCompile(p, tg)
}

func allMarkers(bin *compiler.Binary) []int {
	ids := make([]int, len(bin.Markers))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestCollectProfileBasics(t *testing.T) {
	bin := binFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	p, err := Collect(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalInstructions == 0 {
		t.Fatal("no instructions profiled")
	}
	if len(p.Procs) != len(bin.Symbols) {
		t.Fatalf("%d proc profiles for %d symbols", len(p.Procs), len(bin.Symbols))
	}
	main := p.ProcBySymbol("main")
	if main == nil || main.Count != 1 {
		t.Fatalf("main profile %+v", main)
	}
	if p.ProcBySymbol("no-such-proc") != nil {
		t.Fatal("found nonexistent proc")
	}
	for _, l := range p.Loops {
		if l.EntryCount == 0 {
			t.Fatalf("loop (line %d) never entered; generator should produce live code", l.Line)
		}
		if l.BodyCount < l.EntryCount {
			t.Fatalf("loop body count %d < entry count %d", l.BodyCount, l.EntryCount)
		}
	}
}

func TestProfileLoopPairing(t *testing.T) {
	// Every loop-entry/body marker in the binary must be represented in
	// exactly one LoopProfile.
	bin := binFor(t, "applu", compiler.Target{Arch: compiler.Arch64, Opt: compiler.O2})
	p, err := Collect(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range p.Loops {
		if seen[l.EntryMarker] || seen[l.BodyMarker] {
			t.Fatal("marker in two loop profiles")
		}
		seen[l.EntryMarker] = true
		seen[l.BodyMarker] = true
		if bin.Markers[l.EntryMarker].Kind != compiler.MarkerLoopEntry {
			t.Fatal("entry marker wrong kind")
		}
		if bin.Markers[l.BodyMarker].Kind != compiler.MarkerLoopBody {
			t.Fatal("body marker wrong kind")
		}
	}
	loopMarkers := 0
	for _, m := range bin.Markers {
		if m.Kind != compiler.MarkerProcEntry {
			loopMarkers++
		}
	}
	if len(seen) != loopMarkers {
		t.Fatalf("paired %d loop markers of %d", len(seen), loopMarkers)
	}
}

func TestBuildProfileRejectsBadCounts(t *testing.T) {
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	if _, err := BuildProfile(bin, refInput, 0, make([]uint64, 3)); err == nil {
		t.Fatal("wrong-length counts accepted")
	}
}

func TestFLICollectorCoversExecution(t *testing.T) {
	bin := binFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	const size = 20_000
	c, err := NewFLICollector(bin, size)
	if err != nil {
		t.Fatal(err)
	}
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, exec.Multi{c, ic}); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()
	if res.Dataset.Len() < 2 {
		t.Fatalf("only %d intervals", res.Dataset.Len())
	}
	if res.Dataset.TotalInstructions() != ic.Instructions {
		t.Fatalf("intervals cover %d of %d instructions",
			res.Dataset.TotalInstructions(), ic.Instructions)
	}
	// All intervals except the last must be >= size and < size + max
	// block; ends must be strictly increasing.
	var prev uint64
	for i, end := range res.Ends {
		if end <= prev {
			t.Fatalf("interval %d end %d not increasing", i, end)
		}
		length := end - prev
		if i < len(res.Ends)-1 && length < size {
			t.Fatalf("interval %d has %d < size instructions", i, length)
		}
		if length != res.Dataset.Lengths()[i] {
			t.Fatalf("interval %d length mismatch: %d vs %d", i, length, res.Dataset.Lengths()[i])
		}
		prev = end
	}
	if res.Ends[len(res.Ends)-1] != ic.Instructions {
		t.Fatal("last interval does not end at program end")
	}
}

func TestNewFLICollectorRejectsZeroSize(t *testing.T) {
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	if _, err := NewFLICollector(bin, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestVLICollectorCutsAtMarkers(t *testing.T) {
	bin := binFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	const size = 20_000
	c, err := NewVLICollector(bin, size, allMarkers(bin))
	if err != nil {
		t.Fatal(err)
	}
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, exec.Multi{c, ic}); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()
	if res.Dataset.Len() < 2 {
		t.Fatalf("only %d intervals", res.Dataset.Len())
	}
	if res.Dataset.TotalInstructions() != ic.Instructions {
		t.Fatalf("VLIs cover %d of %d instructions",
			res.Dataset.TotalInstructions(), ic.Instructions)
	}
	for i, l := range res.Dataset.Lengths() {
		if i < res.Dataset.Len()-1 && l < size {
			t.Fatalf("interval %d has %d < size instructions", i, l)
		}
	}
	for i, b := range res.Ends {
		last := i == len(res.Ends)-1
		if b.Marker == -1 && !last {
			t.Fatal("interior end-of-program boundary")
		}
		if b.Marker >= 0 && b.Count == 0 {
			t.Fatal("zero-count boundary")
		}
	}
}

func TestVLICollectorRestrictedMarkersGiveBiggerIntervals(t *testing.T) {
	bin := binFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	const size = 10_000
	// Only proc-entry markers allowed: intervals must be at least as large
	// as with all markers, typically larger.
	var procOnly []int
	for _, m := range bin.Markers {
		if m.Kind == compiler.MarkerProcEntry {
			procOnly = append(procOnly, m.ID)
		}
	}
	run := func(markers []int) float64 {
		c, err := NewVLICollector(bin, size, markers)
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(bin, refInput, c); err != nil {
			t.Fatal(err)
		}
		res := c.Finish()
		return float64(res.Dataset.TotalInstructions()) / float64(res.Dataset.Len())
	}
	avgAll := run(allMarkers(bin))
	avgProc := run(procOnly)
	if avgProc < avgAll {
		t.Fatalf("restricting markers shrank intervals: %v vs %v", avgProc, avgAll)
	}
}

func TestNewVLICollectorValidation(t *testing.T) {
	bin := binFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	if _, err := NewVLICollector(bin, 0, nil); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewVLICollector(bin, 10, []int{len(bin.Markers)}); err == nil {
		t.Fatal("out-of-range marker accepted")
	}
}

// TestVLITrackerReplaysCollectorIntervals is the round-trip invariant: the
// boundaries recorded by the collector, replayed through a tracker on the
// SAME binary, must reproduce the interval instruction counts exactly.
func TestVLITrackerReplaysCollectorIntervals(t *testing.T) {
	bin := binFor(t, "vortex", compiler.Target{Arch: compiler.Arch64, Opt: compiler.O2})
	c, err := NewVLICollector(bin, 15_000, allMarkers(bin))
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, c); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()

	var transitions []int
	tr := NewVLITracker(bin, res.Ends, SinkFunc(func(i int) { transitions = append(transitions, i) }))
	if err := exec.Run(bin, refInput, tr); err != nil {
		t.Fatal(err)
	}
	for i, want := range res.Dataset.Lengths() {
		if tr.Instructions[i] != want {
			t.Fatalf("interval %d: tracker saw %d instrs, collector %d",
				i, tr.Instructions[i], want)
		}
	}
	// Transitions: 0 at start, then one per boundary crossed.
	if len(transitions) == 0 || transitions[0] != 0 {
		t.Fatalf("transitions %v missing start", transitions)
	}
	for i := 1; i < len(transitions); i++ {
		if transitions[i] != transitions[i-1]+1 {
			t.Fatalf("non-sequential transitions %v", transitions)
		}
	}
	wantTrans := len(res.Ends)
	if res.Ends[len(res.Ends)-1] == BoundaryEnd {
		wantTrans-- // end-of-program boundary never fires as a marker
	}
	if len(transitions) != wantTrans+1 {
		t.Fatalf("%d transitions, want %d", len(transitions), wantTrans+1)
	}
}

// TestVLITrackerCrossBinaryInstructionAttribution checks that replaying
// the primary binary's boundaries on another binary (after translating
// markers via ground-truth source loop IDs) accounts for that binary's
// full execution across intervals.
func TestVLITrackerCrossBinaryInstructionAttribution(t *testing.T) {
	p, err := program.Generate("gzip", program.GenConfig{TargetOps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	a := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	b := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch64, Opt: compiler.O0})
	// O0/O0 across arch: marker tables align index-for-index (verified in
	// compiler tests), so translation is the identity.
	c, err := NewVLICollector(a, 15_000, allMarkers(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(a, refInput, c); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()

	tr := NewVLITracker(b, res.Ends, nil)
	ic := exec.NewInstructionCounter(b)
	if err := exec.Run(b, refInput, exec.Multi{tr, ic}); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, n := range tr.Instructions {
		sum += n
	}
	if sum != ic.Instructions {
		t.Fatalf("intervals account for %d of %d instructions in the other binary",
			sum, ic.Instructions)
	}
	// The mapped intervals must all be non-empty: the same semantic region
	// executes work in every binary.
	for i, n := range tr.Instructions {
		if n == 0 {
			t.Fatalf("interval %d empty in mapped binary", i)
		}
	}
}

func TestFLITrackerMatchesCollector(t *testing.T) {
	bin := binFor(t, "twolf", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	c, err := NewFLICollector(bin, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, c); err != nil {
		t.Fatal(err)
	}
	res := c.Finish()

	var transitions []int
	tr := NewFLITracker(bin, res.Ends, SinkFunc(func(i int) { transitions = append(transitions, i) }))
	if err := exec.Run(bin, refInput, tr); err != nil {
		t.Fatal(err)
	}
	for i, want := range res.Dataset.Lengths() {
		if tr.Instructions[i] != want {
			t.Fatalf("interval %d: tracker %d vs collector %d", i, tr.Instructions[i], want)
		}
	}
	if transitions[0] != 0 || len(transitions) != len(res.Ends)+1 {
		t.Fatalf("transitions %v for %d intervals", transitions, len(res.Ends))
	}
}

func BenchmarkFLICollection(b *testing.B) {
	bin := binFor(b, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewFLICollector(bin, 25_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := exec.Run(bin, refInput, c); err != nil {
			b.Fatal(err)
		}
		c.Finish()
	}
}
