// Package callloop builds the hierarchical call-loop graph of a program:
// procedures and loops as nodes, nesting and calls as edges, annotated
// with execution counts and dynamic instruction attribution.
//
// This is the program representation behind Lau, Perelman & Calder's
// phase-marker selection (CGO 2006), which the paper cites as the
// foundation for choosing code constructs that align with phase behavior.
// Cross Binary SimPoint needs the same structural vocabulary (procedure
// entries, loop entries, loop bodies); the graph makes the structure and
// its execution weights inspectable — e.g. "which loops dominate
// execution and how regular is each one?".
package callloop

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

// Kind classifies a node.
type Kind int

const (
	// KindProc is a procedure node.
	KindProc Kind = iota
	// KindLoop is a loop node.
	KindLoop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindLoop {
		return "loop"
	}
	return "proc"
}

// Node is one procedure or loop.
type Node struct {
	// ID indexes Graph.Nodes.
	ID int
	// Kind is proc or loop.
	Kind Kind
	// Name is the procedure name or "L<line>" for loops.
	Name string
	// Line is the source line.
	Line int
	// ProcIndex is the source procedure for proc nodes, -1 for loops.
	ProcIndex int
	// LoopID is the source loop ID for loop nodes, -1 for procs.
	LoopID int
	// Children are nested loops (for both kinds) in source order.
	Children []int
	// Calls are the procedure nodes invoked directly from this node's
	// immediate body (not through nested loops).
	Calls []int

	// Count is the number of entries (calls / loop entries).
	Count uint64
	// Iterations is the total loop iterations (loop nodes only).
	Iterations uint64
	// SelfInstructions are dynamic instructions executed in this node's
	// immediate body (excluding nested loops and callees).
	SelfInstructions uint64
	// TotalInstructions include all nested loops and callees.
	TotalInstructions uint64
}

// Graph is a program's call-loop graph with execution annotations.
type Graph struct {
	// Program is the analyzed program.
	Program *program.Program
	// Nodes holds all nodes; Nodes[Roots[i]] are procedure roots.
	Nodes []Node
	// ProcNode maps source procedure index to its node.
	ProcNode []int
}

// Build constructs the graph from the program structure and annotates it
// by executing the given binary (use an unoptimized binary: its structure
// is complete). The binary must be a compilation of the same program.
func Build(bin *compiler.Binary, in program.Input) (*Graph, error) {
	if bin == nil {
		return nil, fmt.Errorf("callloop: nil binary")
	}
	p := bin.Program
	g := &Graph{Program: p, ProcNode: make([]int, len(p.Procs))}

	// Structure pass: one proc node per procedure, loop nodes nested.
	// lineOwner maps a source line to the node whose immediate body
	// contains it (for instruction attribution).
	lineOwner := map[int]int{}
	loopNode := map[int]int{}
	for i, proc := range p.Procs {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{
			ID: id, Kind: KindProc, Name: proc.Name, Line: proc.Line,
			ProcIndex: i, LoopID: -1,
		})
		g.ProcNode[i] = id
		lineOwner[proc.Line] = id
	}
	var buildStmts func(owner int, stmts []program.Stmt)
	buildStmts = func(owner int, stmts []program.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *program.Compute:
				lineOwner[s.Line] = owner
			case *program.Loop:
				id := len(g.Nodes)
				g.Nodes = append(g.Nodes, Node{
					ID: id, Kind: KindLoop, Name: fmt.Sprintf("L%d", s.Line),
					Line: s.Line, ProcIndex: -1, LoopID: s.ID,
				})
				loopNode[s.ID] = id
				lineOwner[s.Line] = id
				g.Nodes[owner].Children = append(g.Nodes[owner].Children, id)
				buildStmts(id, s.Body)
			case *program.Call:
				lineOwner[s.Line] = owner
				g.Nodes[owner].Calls = append(g.Nodes[owner].Calls, g.ProcNode[s.Callee])
			}
		}
	}
	for i, proc := range p.Procs {
		buildStmts(g.ProcNode[i], proc.Body)
	}

	// Annotation pass: execute the binary, attributing counts and
	// instructions through block source lines and markers.
	symNode := map[string]int{}
	for i := range g.Nodes {
		if g.Nodes[i].Kind == KindProc {
			symNode[g.Nodes[i].Name] = i
		}
	}
	ann := &annotator{g: g, bin: bin, lineOwner: lineOwner, loopNode: loopNode, symNode: symNode}
	if err := exec.Run(bin, in, ann); err != nil {
		return nil, err
	}

	// Totals: each node's subtree instructions (self plus nested loops).
	// Callee weight stays with the callee's own subtree — attributing it
	// to call sites would need per-site counts, which profiling does not
	// distinguish.
	var total func(id int) uint64
	total = func(id int) uint64 {
		n := &g.Nodes[id]
		sum := n.SelfInstructions
		for _, c := range n.Children {
			sum += total(c)
		}
		return sum
	}
	for id := range g.Nodes {
		g.Nodes[id].TotalInstructions = total(id)
	}
	return g, nil
}

// annotator attributes dynamic execution to graph nodes.
type annotator struct {
	g         *Graph
	bin       *compiler.Binary
	lineOwner map[int]int
	loopNode  map[int]int
	symNode   map[string]int
}

// OnBlock implements exec.Visitor.
func (a *annotator) OnBlock(block int) {
	b := &a.bin.Blocks[block]
	if owner, ok := a.lineOwner[b.SrcLine]; ok {
		a.g.Nodes[owner].SelfInstructions += uint64(b.Instrs)
		return
	}
	// Blocks with synthetic lines (entry/latch of transformed loops)
	// attribute to their source procedure's node.
	a.g.Nodes[a.g.ProcNode[b.SrcProc]].SelfInstructions += uint64(b.Instrs)
}

// OnMarker implements exec.Visitor.
func (a *annotator) OnMarker(marker int) {
	m := &a.bin.Markers[marker]
	switch m.Kind {
	case compiler.MarkerProcEntry:
		if id, ok := a.symNode[m.Symbol]; ok {
			a.g.Nodes[id].Count++
		}
	case compiler.MarkerLoopEntry:
		if m.Piece == 0 {
			if id, ok := a.loopNode[m.SourceLoopID]; ok {
				a.g.Nodes[id].Count++
			}
		}
	case compiler.MarkerLoopBody:
		if m.Piece == 0 {
			if id, ok := a.loopNode[m.SourceLoopID]; ok {
				a.g.Nodes[id].Iterations++
			}
		}
	}
}

// HottestLoops returns loop nodes ordered by total subtree instructions,
// descending.
func (g *Graph) HottestLoops() []*Node {
	var loops []*Node
	for i := range g.Nodes {
		if g.Nodes[i].Kind == KindLoop {
			loops = append(loops, &g.Nodes[i])
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		return loops[i].TotalInstructions > loops[j].TotalInstructions
	})
	return loops
}

// Write renders the graph as an indented tree with execution annotations.
func (g *Graph) Write(w io.Writer) error {
	var emit func(id, depth int) error
	emit = func(id, depth int) error {
		n := &g.Nodes[id]
		indent := strings.Repeat("  ", depth)
		extra := ""
		if n.Kind == KindLoop {
			extra = fmt.Sprintf(" iterations=%d", n.Iterations)
		}
		calls := ""
		if len(n.Calls) > 0 {
			var names []string
			for _, c := range n.Calls {
				names = append(names, g.Nodes[c].Name)
			}
			calls = " calls=[" + strings.Join(names, ",") + "]"
		}
		if _, err := fmt.Fprintf(w, "%s%s %s line=%d count=%d self=%d total=%d%s%s\n",
			indent, n.Kind, n.Name, n.Line, n.Count,
			n.SelfInstructions, n.TotalInstructions, extra, calls); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := emit(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range g.Program.Procs {
		if err := emit(g.ProcNode[i], 0); err != nil {
			return err
		}
	}
	return nil
}
