package callloop

import (
	"strings"
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 12}

func buildFor(t *testing.T, name string) *Graph {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	g, err := Build(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphStructure(t *testing.T) {
	g := buildFor(t, "gzip")
	// One proc node per source procedure, one loop node per source loop.
	procs, loops := 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindProc:
			procs++
		case KindLoop:
			loops++
		}
	}
	if procs != len(g.Program.Procs) {
		t.Fatalf("%d proc nodes for %d procs", procs, len(g.Program.Procs))
	}
	if loops != len(g.Program.Loops()) {
		t.Fatalf("%d loop nodes for %d loops", loops, len(g.Program.Loops()))
	}
	// main's node exists and was entered once.
	main := &g.Nodes[g.ProcNode[0]]
	if main.Name != "main" || main.Count != 1 {
		t.Fatalf("main node %+v", main)
	}
}

func TestCountsMatchProfile(t *testing.T) {
	p, err := program.Generate("crafty", program.GenConfig{TargetOps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	g, err := Build(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	mc := exec.NewMarkerCounter(bin)
	if err := exec.Run(bin, refInput, mc); err != nil {
		t.Fatal(err)
	}
	for _, m := range bin.Markers {
		switch m.Kind {
		case compiler.MarkerProcEntry:
			for _, n := range g.Nodes {
				if n.Kind == KindProc && n.Name == m.Symbol && n.Count != mc.Counts[m.ID] {
					t.Fatalf("proc %s: graph count %d vs marker %d", m.Symbol, n.Count, mc.Counts[m.ID])
				}
			}
		case compiler.MarkerLoopEntry:
			for _, n := range g.Nodes {
				if n.Kind == KindLoop && n.LoopID == m.SourceLoopID && n.Count != mc.Counts[m.ID] {
					t.Fatalf("loop %d: graph count %d vs marker %d", m.SourceLoopID, n.Count, mc.Counts[m.ID])
				}
			}
		}
	}
}

func TestInstructionConservation(t *testing.T) {
	p, err := program.Generate("art", program.GenConfig{TargetOps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	g, err := Build(bin, refInput)
	if err != nil {
		t.Fatal(err)
	}
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, ic); err != nil {
		t.Fatal(err)
	}
	// Sum of proc-node subtree totals equals the whole execution: every
	// block is attributed to exactly one node, and proc subtrees
	// partition the nodes.
	var sum uint64
	for i := range g.Program.Procs {
		sum += g.Nodes[g.ProcNode[i]].TotalInstructions
	}
	if sum != ic.Instructions {
		t.Fatalf("graph attributes %d of %d instructions", sum, ic.Instructions)
	}
	// Totals dominate self everywhere.
	for _, n := range g.Nodes {
		if n.TotalInstructions < n.SelfInstructions {
			t.Fatalf("node %s: total %d < self %d", n.Name, n.TotalInstructions, n.SelfInstructions)
		}
	}
}

func TestIterationsAtLeastEntries(t *testing.T) {
	g := buildFor(t, "swim")
	for _, n := range g.Nodes {
		if n.Kind == KindLoop && n.Count > 0 && n.Iterations < n.Count {
			t.Fatalf("loop %s: %d iterations < %d entries", n.Name, n.Iterations, n.Count)
		}
	}
}

func TestHottestLoops(t *testing.T) {
	g := buildFor(t, "swim")
	hot := g.HottestLoops()
	if len(hot) == 0 {
		t.Fatal("no loops ranked")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i-1].TotalInstructions < hot[i].TotalInstructions {
			t.Fatal("HottestLoops not sorted")
		}
	}
	// The hottest loop must carry a meaningful share of the execution.
	ic := g.Nodes[g.ProcNode[0]].TotalInstructions
	var all uint64
	for i := range g.Program.Procs {
		all += g.Nodes[g.ProcNode[i]].TotalInstructions
	}
	_ = ic
	if frac := float64(hot[0].TotalInstructions) / float64(all); frac < 0.05 {
		t.Fatalf("hottest loop carries only %.1f%% of execution", frac*100)
	}
}

func TestWriteRendering(t *testing.T) {
	g := buildFor(t, "gzip")
	var sb strings.Builder
	if err := g.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"proc main", "loop L", "count=", "calls=[work_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestBuildNilBinary(t *testing.T) {
	if _, err := Build(nil, refInput); err == nil {
		t.Fatal("nil binary accepted")
	}
}

func TestKindString(t *testing.T) {
	if KindProc.String() != "proc" || KindLoop.String() != "loop" {
		t.Fatal("kind strings wrong")
	}
}
