package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"xbsim/internal/bench"
	"xbsim/internal/experiment"
	"xbsim/internal/jobqueue"
	"xbsim/internal/program"
)

// LoadTestOptions configures LoadTest.
type LoadTestOptions struct {
	// BaseURL targets a running server ("http://127.0.0.1:8080").
	BaseURL string
	// Jobs is the total number of submissions (default 12).
	Jobs int
	// Unique is how many distinct work items the stream draws from
	// (default Jobs/3, min 1): submission i carries spec Unique*i/Jobs —
	// the rest are duplicates exercising the result cache and
	// in-flight coalescing.
	Unique int
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// Seed feeds the synthesized program specs.
	Seed uint64
	// Config runs every job (zero = a small quick-derived config).
	Config experiment.Config
	// Timeout bounds one submission's submit-to-result wait (default
	// 120s).
	Timeout time.Duration
	// Progress, when non-nil, receives one line per completed job.
	Progress io.Writer
}

// LoadTest drives a mixed fresh/duplicate submission stream against a
// running server over real HTTP and measures what a client sees:
// submit-to-result latency per job (p50/p99), end-to-end throughput,
// and the cache-hit rate on duplicate work. The result lands in the
// bench schema's additive "serve" section.
func LoadTest(ctx context.Context, opt LoadTestOptions) (*bench.ServeRecord, error) {
	if opt.Jobs <= 0 {
		opt.Jobs = 12
	}
	if opt.Unique <= 0 {
		opt.Unique = opt.Jobs / 3
	}
	if opt.Unique < 1 {
		opt.Unique = 1
	}
	if opt.Unique > opt.Jobs {
		opt.Unique = opt.Jobs
	}
	if opt.Clients <= 0 {
		opt.Clients = 4
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 120 * time.Second
	}
	if opt.Config.TargetOps == 0 {
		opt.Config = loadTestConfig()
	}

	rec := &bench.ServeRecord{
		Jobs:       opt.Jobs,
		Clients:    opt.Clients,
		Unique:     opt.Unique,
		Duplicates: opt.Jobs - opt.Unique,
	}

	outcomes := make([]submitOutcome, opt.Jobs)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Spread the unique specs over the stream so duplicates
				// interleave with fresh work instead of trailing it.
				spec := program.RandomSpec(opt.Seed, opt.Unique*i/opt.Jobs)
				o, err := submitAndWait(ctx, opt, spec)
				if err != nil {
					o.failed = true
					if opt.Progress != nil {
						fmt.Fprintf(opt.Progress, "loadtest: job %d: %v\n", i, err)
					}
				} else if opt.Progress != nil {
					tag := "ran"
					if o.cached {
						tag = "cache hit"
					}
					fmt.Fprintf(opt.Progress, "loadtest: job %d: %s in %.1fms\n",
						i, tag, float64(o.latency.Microseconds())/1000)
				}
				outcomes[i] = o
			}
		}()
	}
	for i := 0; i < opt.Jobs; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	rec.WallUS = uint64(time.Since(start).Microseconds())

	var all, hits []time.Duration
	for _, o := range outcomes {
		switch {
		case o.reject:
			rec.Rejected++
		case o.failed:
			rec.Failed++
		default:
			rec.Completed++
			all = append(all, o.latency)
			if o.cached {
				rec.CacheHits++
				hits = append(hits, o.latency)
			}
		}
	}
	if rec.WallUS > 0 {
		rec.ThroughputJobsPerSec = float64(rec.Completed) / (float64(rec.WallUS) / 1e6)
	}
	rec.P50US = quantileUS(all, 0.50)
	rec.P99US = quantileUS(all, 0.99)
	rec.CacheHitP50US = quantileUS(hits, 0.50)
	return rec, nil
}

// submitOutcome is one submission's client-observed outcome.
type submitOutcome struct {
	latency time.Duration
	cached  bool
	failed  bool
	reject  bool
}

// submitAndWait POSTs one spec job and polls until its result is
// servable, returning the client-observed latency.
func submitAndWait(ctx context.Context, opt LoadTestOptions, spec program.Spec) (submitOutcome, error) {
	ctx, cancel := context.WithTimeout(ctx, opt.Timeout)
	defer cancel()
	start := time.Now()

	body, err := json.Marshal(SubmitRequest{Request: jobqueue.Request{
		Specs:  []program.Spec{spec},
		Config: opt.Config,
	}})
	if err != nil {
		return submitOutcome{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opt.BaseURL+"/jobs", bytes.NewReader(body))
	if err != nil {
		return submitOutcome{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return submitOutcome{}, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return submitOutcome{}, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return submitOutcome{reject: true}, fmt.Errorf("rejected: queue full")
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return submitOutcome{}, fmt.Errorf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		return submitOutcome{}, fmt.Errorf("submit response: %w", err)
	}
	if sub.Cached {
		return submitOutcome{latency: time.Since(start), cached: true}, nil
	}

	// Poll the result endpoint: 409 means "still running", 200 means the
	// bytes are servable. A duplicate that coalesced onto an in-flight
	// job (202 + !cached) is counted as a plain completion.
	for {
		rreq, err := http.NewRequestWithContext(ctx, http.MethodGet, opt.BaseURL+sub.ResultURL, nil)
		if err != nil {
			return submitOutcome{}, err
		}
		rresp, err := http.DefaultClient.Do(rreq)
		if err != nil {
			return submitOutcome{}, err
		}
		io.Copy(io.Discard, rresp.Body)
		rresp.Body.Close()
		switch rresp.StatusCode {
		case http.StatusOK:
			return submitOutcome{latency: time.Since(start)}, nil
		case http.StatusConflict:
			// Fall through to a job-state check: a failed job stays 409
			// forever, so distinguish "running" from "failed".
			if state, err := jobState(ctx, opt.BaseURL, sub.Job.ID); err == nil && state == jobqueue.StateFailed {
				return submitOutcome{}, fmt.Errorf("job %s failed", sub.Job.ID)
			}
		default:
			return submitOutcome{}, fmt.Errorf("result: status %d", rresp.StatusCode)
		}
		select {
		case <-ctx.Done():
			return submitOutcome{}, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// jobState fetches one job's lifecycle state.
func jobState(ctx context.Context, baseURL, id string) (jobqueue.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/jobs/"+id, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var v struct {
		State jobqueue.State `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", err
	}
	return v.State, nil
}

// loadTestConfig is the default per-job workload: one quick-suite-style
// configuration small enough that a load test finishes in seconds.
func loadTestConfig() experiment.Config {
	cfg := experiment.QuickConfig()
	cfg.TargetOps = 400_000
	cfg.IntervalSize = 8_000
	return cfg
}

// quantileUS returns the q-quantile of ds in microseconds (0 when
// empty), using the nearest-rank method.
func quantileUS(ds []time.Duration, q float64) uint64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return uint64(sorted[idx].Microseconds())
}
