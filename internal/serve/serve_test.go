package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/jobqueue"
	"xbsim/internal/program"
)

// testConfig is a small, fast experiment configuration.
func testConfig() experiment.Config {
	cfg := experiment.QuickConfig()
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	cfg.Parallelism = 2
	cfg.Workers = 2
	return cfg
}

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Spool == "" {
		opts.Spool = t.TempDir()
	}
	if opts.Concurrency == 0 {
		opts.Concurrency = 1
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := Start(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitResult polls /jobs/{id}/result until 200 or the deadline.
func waitResult(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := get(t, base+"/jobs/"+id+"/result")
		switch resp.StatusCode {
		case http.StatusOK:
			return data
		case http.StatusConflict:
			time.Sleep(25 * time.Millisecond)
		default:
			t.Fatalf("result: status %d: %s", resp.StatusCode, data)
		}
	}
	t.Fatalf("job %s result never became available", id)
	return nil
}

// The full client flow: submit over HTTP, poll the result, get bytes
// identical to a direct pipeline run, and have a duplicate submission
// answered from the cache with 200 instead of 202.
func TestSubmitPollResultAndCacheHit(t *testing.T) {
	s := startTestServer(t, Options{})
	base := "http://" + s.Addr()
	sub := SubmitRequest{Request: jobqueue.Request{Benchmarks: []string{"mcf"}, Config: testConfig()}}

	resp, data := postJSON(t, base+"/jobs", sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached || sr.Job.ID == "" {
		t.Fatalf("submit response: %+v", sr)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+sr.Job.ID {
		t.Errorf("Location = %q", loc)
	}

	got := waitResult(t, base, sr.Job.ID)
	cfg := testConfig()
	cfg.Benchmarks = []string{"mcf"}
	suite, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := suite.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served result differs from direct run:\n--- served ---\n%.300s\n--- direct ---\n%.300s", got, want.Bytes())
	}

	// Duplicate: 200 + cached, same content-addressed ID.
	resp, data = postJSON(t, base+"/jobs", sub)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: status %d: %s", resp.StatusCode, data)
	}
	var dup SubmitResponse
	if err := json.Unmarshal(data, &dup); err != nil {
		t.Fatal(err)
	}
	if !dup.Cached || dup.Job.ID != sr.Job.ID {
		t.Fatalf("duplicate response: cached=%v id=%s want %s", dup.Cached, dup.Job.ID, sr.Job.ID)
	}

	// The events endpoint reports the job's lifecycle.
	resp, data = get(t, base+"/jobs/"+sr.Job.ID+"/events")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "done:") {
		t.Errorf("events: status %d body %.200s", resp.StatusCode, data)
	}
	// List and health views know the job.
	if _, data = get(t, base+"/jobs"); !strings.Contains(string(data), sr.Job.ID) {
		t.Errorf("list missing job: %.200s", data)
	}
	resp, _ = get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	resp, _ = get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics: status %d", resp.StatusCode)
	}
}

// A full pending queue must be rejected with 429 and a Retry-After
// hint, not silently dropped or queued unbounded.
func TestAdmissionControl429(t *testing.T) {
	s := startTestServer(t, Options{MaxPending: 1})
	base := "http://" + s.Addr()

	// Fill the single scheduler slot with a deliberately long job, then
	// the single pending slot; the third distinct submission must bounce.
	submit := func(bench string, ops uint64) (*http.Response, []byte) {
		cfg := testConfig()
		cfg.TargetOps = ops
		return postJSON(t, base+"/jobs", SubmitRequest{Request: jobqueue.Request{
			Benchmarks: []string{bench}, Config: cfg}})
	}
	resp, data := submit("gcc", 60_000_000)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 0: status %d: %s", resp.StatusCode, data)
	}
	var first SubmitResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, base, first.Job.ID)
	if resp, data = submit("mcf", 600_000); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: status %d: %s", resp.StatusCode, data)
	}
	resp, data = submit("swim", 600_000)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 2: status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// waitRunning polls until the job is claimed by a scheduler slot.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, data := get(t, base+"/jobs/"+id)
		if strings.Contains(string(data), `"state": "running"`) {
			return
		}
		if strings.Contains(string(data), `"state": "failed"`) {
			t.Fatalf("job failed while waiting: %.300s", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// Graceful shutdown: readiness flips to 503, in-flight submissions are
// rejected as draining, the interrupted job is durably re-spooled, and
// a new server on the same spool finishes it.
func TestGracefulShutdownAndResume(t *testing.T) {
	spool := t.TempDir()
	s := startTestServer(t, Options{Spool: spool})
	base := "http://" + s.Addr()

	// A longer-than-instant job keeps the drain window open; the restart
	// re-runs it in full, so it stays small enough to finish quickly.
	cfg := testConfig()
	cfg.TargetOps = 4_000_000
	resp, data := postJSON(t, base+"/jobs", SubmitRequest{Request: jobqueue.Request{
		Benchmarks: []string{"swim"}, Config: cfg}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, base+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz before drain: status %d", resp.StatusCode)
	}
	waitRunning(t, base, sr.Job.ID)

	// Begin the drain concurrently and observe the draining posture
	// through the still-serving HTTP listener. The server may finish
	// shutting down between checks, so a refused connection is also a
	// valid "no longer ready" observation.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if resp, err := http.Get(base + "/readyz"); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The job survived shutdown in the journal; a new server resumes it
	// to completion.
	s2 := startTestServer(t, Options{Spool: spool})
	base2 := "http://" + s2.Addr()
	got := waitResult(t, base2, sr.Job.ID)
	if len(got) == 0 {
		t.Fatal("resumed job served empty result")
	}
}

// resolve must honor query parameters, presets, and the random-spec
// shorthand, and strip the queue-owned config knobs.
func TestResolveSubmission(t *testing.T) {
	req := func(target string, body SubmitRequest) SubmitRequest {
		r := httptest.NewRequest(http.MethodPost, target, nil)
		if err := resolve(r, &body); err != nil {
			t.Fatalf("resolve(%s): %v", target, err)
		}
		return body
	}

	// Bare submission: quick preset, whole suite.
	got := req("/jobs", SubmitRequest{})
	if got.Config.TargetOps != experiment.QuickConfig().TargetOps || len(got.Benchmarks) == 0 {
		t.Errorf("bare submission resolved to %+v", got.Request)
	}
	// Preset + benchmark narrowing via query.
	got = req("/jobs?preset=quick&benchmarks=swim", SubmitRequest{})
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != "swim" {
		t.Errorf("benchmarks = %v", got.Benchmarks)
	}
	// Random specs: content-derived work, no benchmarks.
	got = req("/jobs?random=7&n=2", SubmitRequest{})
	if len(got.Specs) != 2 || len(got.Benchmarks) != 0 {
		t.Errorf("random resolved to %d specs, %d benchmarks", len(got.Specs), len(got.Benchmarks))
	}
	if got.Specs[0].Name() != program.RandomSpec(7, 0).Normalize().Name() {
		t.Errorf("spec 0 = %s", got.Specs[0].Name())
	}
	// Queue-owned knobs are stripped even if the client sets them.
	body := SubmitRequest{Request: jobqueue.Request{Config: experiment.Config{CheckpointDir: "/tmp/evil", TargetOps: 1}}}
	if got = req("/jobs", body); got.Config.CheckpointDir != "" || got.Config.SharedPool != nil {
		t.Errorf("wall-clock knobs survived: %+v", got.Config)
	}
	// Unknown preset is a client error.
	r := httptest.NewRequest(http.MethodPost, "/jobs?preset=nope", nil)
	var sr SubmitRequest
	if err := resolve(r, &sr); err == nil {
		t.Error("unknown preset accepted")
	}
}

// The load-test harness against a live server: every submission
// completes, duplicates hit the cache, and the record's accounting adds
// up.
func TestLoadTestSmoke(t *testing.T) {
	s := startTestServer(t, Options{Concurrency: 2})
	cfg := testConfig()
	cfg.TargetOps = 400_000

	rec, err := LoadTest(context.Background(), LoadTestOptions{
		BaseURL: "http://" + s.Addr(),
		Jobs:    6,
		Unique:  2,
		Clients: 2,
		Seed:    11,
		Config:  cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed != 6 || rec.Failed != 0 || rec.Rejected != 0 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.CacheHits == 0 {
		t.Fatalf("no cache hits across %d duplicates: %+v", rec.Duplicates, rec)
	}
	if rec.P50US == 0 || rec.P99US < rec.P50US {
		t.Errorf("latency quantiles: p50=%d p99=%d", rec.P50US, rec.P99US)
	}
	if rec.ThroughputJobsPerSec <= 0 {
		t.Errorf("throughput = %f", rec.ThroughputJobsPerSec)
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil || !strings.Contains(buf.String(), "cache hits") {
		t.Errorf("record rendering: %v %q", err, buf.String())
	}
}
