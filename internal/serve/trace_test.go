package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/bits"
	"net/http"
	"strings"
	"testing"

	"xbsim/internal/jobqueue"
	"xbsim/internal/obs"
)

// A client-supplied trace must ride the submission end to end: echoed
// in the response header and body, resolvable at /jobs/{id}/timeline by
// job ID or trace ID, and visible as per-tenant series on /metrics.
func TestTraceHeaderAndTimelineEndpoint(t *testing.T) {
	s := startTestServer(t, Options{})
	base := "http://" + s.Addr()

	body, _ := json.Marshal(SubmitRequest{Request: jobqueue.Request{
		Benchmarks: []string{"mcf"}, Config: testConfig(),
	}})
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Xbsim-Trace", "t-e2e-test")
	req.Header.Set("X-Xbsim-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Xbsim-Trace"); got != "t-e2e-test" {
		t.Fatalf("X-Xbsim-Trace response header = %q", got)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.TraceID != "t-e2e-test" || sub.Job.TraceID != "t-e2e-test" || sub.Job.Tenant != "acme" {
		t.Fatalf("submit response trace=%q job trace=%q tenant=%q",
			sub.TraceID, sub.Job.TraceID, sub.Job.Tenant)
	}
	if sub.TimelineURL != "/jobs/"+sub.Job.ID+"/timeline" {
		t.Fatalf("timeline URL = %q", sub.TimelineURL)
	}
	waitResult(t, base, sub.Job.ID)

	// Timeline by job ID and by trace ID resolve to the same view.
	for _, key := range []string{sub.Job.ID, "t-e2e-test"} {
		tresp, tdata := get(t, base+"/jobs/"+key+"/timeline")
		if tresp.StatusCode != http.StatusOK {
			t.Fatalf("timeline(%s) status %d: %s", key, tresp.StatusCode, tdata)
		}
		var tl obs.Timeline
		if err := json.Unmarshal(tdata, &tl); err != nil {
			t.Fatal(err)
		}
		if tl.JobID != sub.Job.ID || tl.TraceID != "t-e2e-test" {
			t.Fatalf("timeline(%s) job=%q trace=%q", key, tl.JobID, tl.TraceID)
		}
		if tl.Phase("queue-wait") == nil || tl.Phase("run") == nil {
			t.Fatalf("timeline(%s) phases = %+v", key, tl.Phases)
		}
	}
	if nf, _ := get(t, base+"/jobs/t-nonexistent/timeline"); nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown timeline status %d, want 404", nf.StatusCode)
	}

	// The SLO histograms and per-tenant counters reach the Prometheus
	// exposition.
	mresp, mdata := get(t, base+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	for _, want := range []string{
		"xbsim_serve_submit_to_result_ms_bucket",
		"xbsim_serve_run_ms_count",
		"xbsim_serve_queue_wait_ms_count",
		`xbsim_serve_tenant_submissions_total{tenant="acme"} 1`,
		`xbsim_serve_tenant_completed_total{tenant="acme"} 1`,
		"xbsim_serve_queue_retry_after_sec",
		"xbsim_serve_journal_rotations_total",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// ?trace=/?tenant= are the curl-friendly fallback for the headers;
	// the same work resubmitted under a new trace is a cache hit whose
	// trace links onto the canonical job.
	resp2, data2 := postJSON(t, base+"/jobs?trace=t-via-query&tenant=beta", SubmitRequest{Request: jobqueue.Request{
		Benchmarks: []string{"mcf"}, Config: testConfig(),
	}})
	if resp2.StatusCode != http.StatusOK { // duplicate work: cache hit
		t.Fatalf("query submit status %d: %s", resp2.StatusCode, data2)
	}
	var sub2 SubmitResponse
	if err := json.Unmarshal(data2, &sub2); err != nil {
		t.Fatal(err)
	}
	if !sub2.Cached || sub2.TraceID != "t-e2e-test" {
		t.Fatalf("cached submit: cached=%v canonical trace=%q", sub2.Cached, sub2.TraceID)
	}
	tresp, tdata := get(t, base+"/jobs/t-via-query/timeline")
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("timeline by coalesced trace: status %d: %s", tresp.StatusCode, tdata)
	}
}

// The load test's client-observed quantiles and the server's live
// serve.submit_to_result_ms histogram measure the same latencies from
// the two ends of the HTTP pipe; they must agree within one
// power-of-two bucket.
func TestLoadTestQuantilesMatchHistogram(t *testing.T) {
	o := obs.New()
	s := startTestServer(t, Options{Concurrency: 2, Observer: o})
	rec, err := LoadTest(context.Background(), LoadTestOptions{
		BaseURL: "http://" + s.Addr(),
		Jobs:    6,
		Unique:  6, // all fresh: every submission lands in the histogram
		Clients: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed != 6 || rec.Failed != 0 || rec.Rejected != 0 {
		t.Fatalf("loadtest record: %+v", rec)
	}

	h := o.Metrics.Snapshot().Histograms["serve.submit_to_result_ms"]
	if h.Count != 6 {
		t.Fatalf("histogram count = %d, want 6", h.Count)
	}
	check := func(name string, clientUS uint64, q float64) {
		clientBucket := bits.Len64(clientUS / 1000) // µs → ms, then the log2 bucket
		serverBucket := h.QuantileBucket(q)
		diff := clientBucket - serverBucket
		if diff < 0 {
			diff = -diff
		}
		// The client side adds submit overhead and up to one 50ms poll
		// interval; one power-of-two bucket absorbs that.
		if diff > 1 {
			t.Errorf("%s: client bucket %d (%.1fms) vs server bucket %d (<=%dms) — disagree by %d",
				name, clientBucket, float64(clientUS)/1000, serverBucket, h.QuantileBound(q), diff)
		}
	}
	check("p50", rec.P50US, 0.50)
	check("p99", rec.P99US, 0.99)
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
