// Package serve is the xbsim analysis service: an HTTP front end over
// the durable internal/jobqueue scheduler. Clients POST experiment
// requests to /jobs and get back content-addressed job IDs; results,
// per-job event streams, and queue telemetry are served from the same
// process; SIGTERM drains gracefully — admission closes, in-flight
// suites checkpoint and re-spool, and the process exits cleanly with
// every accepted job durably journaled for the next start.
//
// Endpoints:
//
//	POST /jobs               submit work (JSON body and/or query params)
//	GET  /jobs               list known jobs + queue stats
//	GET  /jobs/{id}          one job's state
//	GET  /jobs/{id}/result   the completed suite's report JSON, verbatim
//	GET  /jobs/{id}/events   the job's flight recorder (?stream=1 JSONL)
//	GET  /jobs/{id}/timeline the job's reconstructed trace timeline
//	GET  /healthz            liveness + queue stats (always 200)
//	GET  /readyz             readiness (503 while draining)
//	GET  /metrics ...        the shared telemetry surface (internal/telemetry)
//
// Tracing: every submission carries an end-to-end correlation ID —
// client-supplied via the X-Xbsim-Trace header (or ?trace=), minted
// otherwise — echoed back in the response's X-Xbsim-Trace header and
// threaded through the queue into the pipeline's events and spans. The
// X-Xbsim-Tenant header (or ?tenant=) labels per-tenant metrics.
// /jobs/{id}/timeline accepts a job ID or any linked trace ID.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/jobqueue"
	"xbsim/internal/obs"
	"xbsim/internal/program"
	"xbsim/internal/telemetry"
)

// Options configures Start.
type Options struct {
	// Addr is the listen address (":0" picks a free port).
	Addr string
	// Spool is the durable job-spool directory (required).
	Spool string
	// Concurrency, MaxPending, Workers, and EventsCapacity feed the
	// queue's jobqueue.Options (zero = that layer's default).
	Concurrency    int
	MaxPending     int
	Workers        int
	EventsCapacity int
	// JournalMaxBytes caps each job's durable event journal before
	// rotation (zero = the obs default).
	JournalMaxBytes int64
	// Observer receives service and pipeline metrics; nil means a fresh
	// observer with a metrics registry and flight recorder.
	Observer *obs.Observer
}

// Server is one running analysis service.
type Server struct {
	o    *obs.Observer
	q    *jobqueue.Queue
	th   *telemetry.Handlers
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	mu       sync.Mutex
	draining bool
}

// Start opens (or recovers) the spool, starts the scheduler, and begins
// serving. ctx is the base context every job runs under — cancel it to
// abort all work; attach a faults.Injector to exercise serve.crash.
func Start(ctx context.Context, opts Options) (*Server, error) {
	o := opts.Observer
	if o == nil {
		o = obs.New()
		o.Events = obs.NewRecorder(obs.DefaultRecorderCapacity)
	}
	q, err := jobqueue.Open(ctx, jobqueue.Options{
		Dir:             opts.Spool,
		Concurrency:     opts.Concurrency,
		MaxPending:      opts.MaxPending,
		Workers:         opts.Workers,
		EventsCapacity:  opts.EventsCapacity,
		JournalMaxBytes: opts.JournalMaxBytes,
		Observer:        o,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		q.Close()
		return nil, err
	}
	s := &Server{o: o, q: q, th: telemetry.NewHandlers(o), ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	s.th.Register(mux)

	// Same timeout posture as the telemetry server: bounded read side,
	// no write deadline (event streams run until drain or disconnect).
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Queue exposes the underlying scheduler (tests, the chaos harness).
func (s *Server) Queue() *jobqueue.Queue { return s.q }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains gracefully: readiness flips to 503 and admission
// closes immediately, running jobs are canceled and re-spooled (their
// completed benchmarks are checkpointed), event streams terminate, and
// the HTTP server drains in-flight requests. Every accepted job is
// durably journaled when Shutdown returns; a new Start on the same
// spool resumes them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	err := s.q.Drain(ctx)
	s.th.Close()
	if serr := s.srv.Shutdown(ctx); err == nil {
		err = serr
	}
	<-s.done
	return err
}

// Close is Shutdown with a 30-second deadline — the normal exit path.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// SubmitRequest is the POST /jobs body: a jobqueue.Request plus the
// service-level conveniences resolved before admission.
type SubmitRequest struct {
	jobqueue.Request
	// Preset names a base configuration: "quick" (the five-benchmark
	// reduced suite) or "full" (the paper-shaped suite). The request's
	// explicit Benchmarks narrow it. An omitted preset with a zero-valued
	// Config defaults to "quick" — a bare POST must not schedule the
	// full-scale suite by accident.
	Preset string `json:"preset,omitempty"`
}

// SubmitResponse is the POST /jobs response body.
type SubmitResponse struct {
	// Job is the admitted (or cached) job's state snapshot.
	Job *jobqueue.Job `json:"job"`
	// Cached is true when the submission hit the content-addressed
	// result cache — the result is already available, nothing ran.
	Cached bool `json:"cached"`
	// TraceID is the job's canonical trace. A coalesced or cached
	// submission sees the canonical job's trace here; its own submitted
	// trace is linked in Job.CoalescedTraces.
	TraceID string `json:"traceId"`
	// ResultURL, EventsURL, and TimelineURL are the job's follow-up
	// endpoints.
	ResultURL   string `json:"resultUrl"`
	EventsURL   string `json:"eventsUrl"`
	TimelineURL string `json:"timelineUrl"`
}

// resolve canonicalizes a submission: query parameters override body
// fields, presets materialize configs, ?random=seed synthesizes specs,
// and the wall-clock knobs the queue owns are stripped.
func resolve(r *http.Request, req *SubmitRequest) error {
	qv := r.URL.Query()
	if v := qv.Get("preset"); v != "" {
		req.Preset = v
	}
	if v := qv.Get("benchmarks"); v != "" {
		req.Benchmarks = strings.Split(v, ",")
	}
	if v := qv.Get("timeout"); v != "" {
		sec, err := strconv.Atoi(v)
		if err != nil || sec < 0 {
			return fmt.Errorf("bad timeout %q", v)
		}
		req.TimeoutSec = sec
	}
	if v := qv.Get("random"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad random seed %q", v)
		}
		n := 1
		if nv := qv.Get("n"); nv != "" {
			if n, err = strconv.Atoi(nv); err != nil || n < 1 || n > 64 {
				return fmt.Errorf("bad n %q (want 1..64)", nv)
			}
		}
		req.Specs = req.Specs[:0]
		for i := 0; i < n; i++ {
			req.Specs = append(req.Specs, program.RandomSpec(seed, i))
		}
	}

	// A submission that names no configuration at all runs quick-scale.
	if req.Preset == "" && reflect.DeepEqual(req.Config, experiment.Config{}) {
		req.Preset = "quick"
	}
	switch req.Preset {
	case "":
	case "quick":
		req.Config = presetConfig(experiment.QuickConfig(), req.Config)
	case "full":
		req.Config = presetConfig(experiment.FullConfig(), req.Config)
	default:
		return fmt.Errorf("unknown preset %q (want quick or full)", req.Preset)
	}
	if len(req.Benchmarks) == 0 && len(req.Specs) == 0 {
		req.Benchmarks = req.Config.Benchmarks
	}
	// The queue owns the wall-clock execution knobs: per-job checkpoint
	// dirs and the process-wide shared worker pool.
	req.Config.CheckpointDir = ""
	req.Config.SharedPool = nil
	return nil
}

// presetConfig lays the client's sparse overrides over a preset base:
// only the scale and selection knobs a service client may reasonably
// tune are honored; everything else comes from the preset.
func presetConfig(base, over experiment.Config) experiment.Config {
	if over.TargetOps != 0 {
		base.TargetOps = over.TargetOps
	}
	if over.IntervalSize != 0 {
		base.IntervalSize = over.IntervalSize
	}
	if over.Sampler != "" {
		base.Sampler = over.Sampler
	}
	if over.SamplerBudget != 0 {
		base.SamplerBudget = over.SamplerBudget
	}
	if over.Seed != "" {
		base.Seed = over.Seed
	}
	return base
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request JSON: "+err.Error())
			return
		}
	}
	if err := resolve(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Benchmarks != nil {
		req.Config.Benchmarks = req.Benchmarks
	}

	// Correlation metadata rides headers (query params as a curl-friendly
	// fallback); neither participates in the job's identity.
	sub := jobqueue.Submission{
		TraceID: firstNonEmpty(r.Header.Get("X-Xbsim-Trace"), r.URL.Query().Get("trace")),
		Tenant:  firstNonEmpty(r.Header.Get("X-Xbsim-Tenant"), r.URL.Query().Get("tenant")),
	}
	job, cached, err := s.q.SubmitTraced(req.Request, sub)
	switch {
	case errors.Is(err, jobqueue.ErrQueueFull):
		// Admission control: the backlog is at its cap. Tell the client
		// when the queue should have drained enough to try again.
		w.Header().Set("Retry-After", strconv.Itoa(s.q.RetryAfter()))
		httpError(w, http.StatusTooManyRequests, "queue full")
		return
	case errors.Is(err, jobqueue.ErrDraining):
		w.Header().Set("Retry-After", "10")
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	w.Header().Set("Location", "/jobs/"+job.ID)
	w.Header().Set("X-Xbsim-Trace", job.TraceID)
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{
		Job:         job,
		Cached:      cached,
		TraceID:     job.TraceID,
		ResultURL:   "/jobs/" + job.ID + "/result",
		EventsURL:   "/jobs/" + job.ID + "/events",
		TimelineURL: "/jobs/" + job.ID + "/timeline",
	})
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// ListResponse is the GET /jobs response body.
type ListResponse struct {
	Jobs  []*jobqueue.Job `json:"jobs"`
	Stats jobqueue.Stats  `json:"stats"`
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Jobs: s.q.List(), Stats: s.q.Stats()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.q.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	// State is json:"-" on the journal payload; report it explicitly.
	writeJSON(w, http.StatusOK, struct {
		*jobqueue.Job
		State jobqueue.State `json:"state"`
	}{job, job.State})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := s.q.Result(id)
	switch {
	case errors.Is(err, jobqueue.ErrNotFound):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, jobqueue.ErrNoResult):
		// Known but unfinished: 409 tells pollers "valid job, come back".
		httpError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if job, jerr := s.q.Get(id); jerr == nil && job.SuiteFingerprint != "" {
		w.Header().Set("X-Suite-Fingerprint", job.SuiteFingerprint)
	}
	// The stored bytes are the exact Suite.WriteJSON output — served
	// verbatim so they diff cleanly against `xbsim figures -json`.
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec, err := s.q.Events(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if r.URL.Query().Get("stream") != "" {
		telemetry.StreamEvents(w, r, rec, s.th.Stop())
		return
	}
	writeJSON(w, http.StatusOK, telemetry.EventsView{Dropped: rec.Dropped(), Events: rec.Events()})
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	// The path {id} accepts a job ID or any linked trace ID — operators
	// usually hold the trace from a submission response or a log line.
	tl, err := s.q.Timeline(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

// HealthResponse is the GET /healthz response body.
type HealthResponse struct {
	Status string         `json:"status"`
	Stats  jobqueue.Stats `json:"stats"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Stats: s.q.Stats()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ready\n"))
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("xbsim analysis service\n\n" +
		"POST /jobs               submit work (?preset=quick&benchmarks=swim, ?random=SEED&n=K, or JSON body)\n" +
		"                         trace/tenant via X-Xbsim-Trace / X-Xbsim-Tenant headers (?trace=, ?tenant=)\n" +
		"GET  /jobs               list jobs + queue stats\n" +
		"GET  /jobs/{id}          job state\n" +
		"GET  /jobs/{id}/result   completed suite report JSON (verbatim)\n" +
		"GET  /jobs/{id}/events   per-job pipeline events (?stream=1 JSONL)\n" +
		"GET  /jobs/{id}/timeline reconstructed trace timeline (id or trace ID)\n" +
		"GET  /healthz /readyz    liveness / readiness\n" +
		"GET  /metrics /progress /events /attribution /profile /debug/pprof\n"))
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
