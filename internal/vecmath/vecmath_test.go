package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"xbsim/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSquaredDistance(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := SquaredDistance(a, b); got != 9 {
		t.Fatalf("SquaredDistance = %v, want 9", got)
	}
	if got := Distance(a, b); got != 3 {
		t.Fatalf("Distance = %v, want 3", got)
	}
}

func TestDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	SquaredDistance([]float64{1}, []float64{1, 2})
}

func TestManhattanDistance(t *testing.T) {
	if got := ManhattanDistance([]float64{1, -2}, []float64{-1, 1}); got != 5 {
		t.Fatalf("ManhattanDistance = %v, want 5", got)
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := xrand.New("dist-prop")
	randVec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	f := func(dimRaw uint8) bool {
		dim := int(dimRaw%16) + 1
		a, b, c := randVec(dim), randVec(dim), randVec(dim)
		// Symmetry.
		if !almostEqual(Distance(a, b), Distance(b, a), 1e-12) {
			return false
		}
		// Identity.
		if Distance(a, a) != 0 {
			return false
		}
		// Triangle inequality.
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeL1(t *testing.T) {
	v := []float64{1, 3, -4}
	if ok := NormalizeL1(v); !ok {
		t.Fatal("NormalizeL1 reported zero norm")
	}
	if !almostEqual(L1Norm(v), 1, 1e-12) {
		t.Fatalf("L1 norm after normalize = %v", L1Norm(v))
	}
	z := []float64{0, 0}
	if ok := NormalizeL1(z); ok {
		t.Fatal("NormalizeL1 succeeded on zero vector")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	dst := []float64{1, 2}
	AddScaled(dst, []float64{10, 20}, 0.5)
	if dst[0] != 6 || dst[1] != 12 {
		t.Fatalf("AddScaled result %v", dst)
	}
	Scale(dst, 2)
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("Scale result %v", dst)
	}
	Zero(dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("Zero result %v", dst)
	}
}

func TestMeanUnweighted(t *testing.T) {
	m := Mean([][]float64{{0, 2}, {4, 6}}, nil)
	if m[0] != 2 || m[1] != 4 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestMeanWeighted(t *testing.T) {
	m := Mean([][]float64{{0, 0}, {10, 20}}, []float64{3, 1})
	if !almostEqual(m[0], 2.5, 1e-12) || !almostEqual(m[1], 5, 1e-12) {
		t.Fatalf("weighted Mean = %v", m)
	}
}

func TestProjectionShape(t *testing.T) {
	p := NewProjection(100, 15, xrand.New("proj"))
	if p.InDim() != 100 || p.OutDim() != 15 {
		t.Fatalf("projection dims %dx%d", p.InDim(), p.OutDim())
	}
	v := make([]float64, 100)
	v[3] = 1
	out := p.Apply(v)
	if len(out) != 15 {
		t.Fatalf("projected length %d", len(out))
	}
}

func TestProjectionLinearity(t *testing.T) {
	rng := xrand.New("proj-lin")
	p := NewProjection(40, 8, rng)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	sum := make([]float64, 40)
	for i := range sum {
		sum[i] = 2*a[i] + 3*b[i]
	}
	pa, pb, psum := p.Apply(a), p.Apply(b), p.Apply(sum)
	for j := range psum {
		want := 2*pa[j] + 3*pb[j]
		if !almostEqual(psum[j], want, 1e-9) {
			t.Fatalf("projection not linear at dim %d: %v vs %v", j, psum[j], want)
		}
	}
}

func TestProjectionSparseMatchesDense(t *testing.T) {
	rng := xrand.New("proj-sparse")
	p := NewProjection(50, 6, rng)
	dense := make([]float64, 50)
	var idx []int
	var vals []float64
	for _, i := range []int{2, 17, 49} {
		dense[i] = rng.NormFloat64()
		idx = append(idx, i)
		vals = append(vals, dense[i])
	}
	d := p.Apply(dense)
	s := p.ApplySparse(idx, vals)
	for j := range d {
		if !almostEqual(d[j], s[j], 1e-12) {
			t.Fatalf("sparse projection mismatch at %d: %v vs %v", j, d[j], s[j])
		}
	}
}

func TestProjectionPreservesRelativeDistances(t *testing.T) {
	// Johnson–Lindenstrauss sanity check: a far pair should remain farther
	// than a near pair after projecting from 2000 to 15 dims.
	rng := xrand.New("jl")
	p := NewProjection(2000, 15, rng.Split("matrix"))
	base := make([]float64, 2000)
	near := make([]float64, 2000)
	far := make([]float64, 2000)
	for i := range base {
		base[i] = rng.NormFloat64()
		near[i] = base[i] + 0.01*rng.NormFloat64()
		far[i] = base[i] + 1.0*rng.NormFloat64()
	}
	pb, pn, pf := p.Apply(base), p.Apply(near), p.Apply(far)
	if Distance(pb, pn) >= Distance(pb, pf) {
		t.Fatalf("projection scrambled distances: near %v far %v",
			Distance(pb, pn), Distance(pb, pf))
	}
}

func TestProjectionDeterministic(t *testing.T) {
	p1 := NewProjection(10, 4, xrand.New("same"))
	p2 := NewProjection(10, 4, xrand.New("same"))
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	a, b := p1.Apply(v), p2.Apply(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("projection not deterministic at dim %d", i)
		}
	}
}

func TestProjectionSparseIndexOutOfRangePanics(t *testing.T) {
	p := NewProjection(5, 2, xrand.New("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range sparse index")
		}
	}()
	p.ApplySparse([]int{5}, []float64{1})
}

func BenchmarkProjectSparse(b *testing.B) {
	rng := xrand.New("bench-proj")
	p := NewProjection(10000, 15, rng)
	idx := make([]int, 200)
	vals := make([]float64, 200)
	for i := range idx {
		idx[i] = rng.Intn(10000)
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ApplySparse(idx, vals)
	}
}
