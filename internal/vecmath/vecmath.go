// Package vecmath provides the small amount of dense linear algebra the
// SimPoint pipeline needs: Euclidean distances, centroid accumulation, and
// random linear projection matrices.
//
// SimPoint reduces high-dimensional basic-block vectors (one dimension per
// static basic block, often tens of thousands) to a handful of dimensions
// (15 in SimPoint 3.0) with a random projection before clustering; by the
// Johnson–Lindenstrauss lemma this approximately preserves pairwise
// distances, which is all k-means cares about.
package vecmath

import (
	"fmt"
	"math"

	"xbsim/internal/xrand"
)

// SquaredDistance returns the squared Euclidean distance between a and b.
// It panics if the lengths differ.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// ManhattanDistance returns the L1 distance between a and b. SimPoint's
// original formulation compares BBVs with Manhattan distance; we expose it
// for diagnostics even though clustering uses Euclidean distance after
// projection.
func ManhattanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// AddScaled adds scale*src into dst element-wise.
func AddScaled(dst, src []float64, scale float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += scale * src[i]
	}
}

// Scale multiplies v by scale in place.
func Scale(v []float64, scale float64) {
	for i := range v {
		v[i] *= scale
	}
}

// Zero clears v in place.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// L1Norm returns the sum of absolute values of v.
func L1Norm(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	return sum
}

// NormalizeL1 scales v in place so its L1 norm is 1. Vectors with zero norm
// are left unchanged and reported with ok == false.
func NormalizeL1(v []float64) (ok bool) {
	n := L1Norm(v)
	if n == 0 {
		return false
	}
	Scale(v, 1/n)
	return true
}

// Projection is a dense inDim x outDim random projection matrix. Rows are
// indexed by input dimension so sparse inputs can be projected by walking
// only their non-zero entries.
type Projection struct {
	inDim  int
	outDim int
	// rows[i] is the outDim-length row for input dimension i.
	rows [][]float64
}

// NewProjection builds a random projection from inDim to outDim dimensions.
// Entries are drawn i.i.d. uniform in [-1, 1), matching the SimPoint 3.0
// implementation, from the given stream.
func NewProjection(inDim, outDim int, rng *xrand.Stream) *Projection {
	if inDim <= 0 || outDim <= 0 {
		panic(fmt.Sprintf("vecmath: invalid projection dims %dx%d", inDim, outDim))
	}
	rows := make([][]float64, inDim)
	flat := make([]float64, inDim*outDim)
	for i := range rows {
		row := flat[i*outDim : (i+1)*outDim]
		for j := range row {
			row[j] = 2*rng.Float64() - 1
		}
		rows[i] = row
	}
	return &Projection{inDim: inDim, outDim: outDim, rows: rows}
}

// InDim returns the input dimensionality.
func (p *Projection) InDim() int { return p.inDim }

// OutDim returns the output dimensionality.
func (p *Projection) OutDim() int { return p.outDim }

// Apply projects the dense vector v (length InDim) into a new vector of
// length OutDim.
func (p *Projection) Apply(v []float64) []float64 {
	if len(v) != p.inDim {
		panic(fmt.Sprintf("vecmath: projection input dim %d, want %d", len(v), p.inDim))
	}
	out := make([]float64, p.outDim)
	for i, x := range v {
		if x == 0 {
			continue
		}
		AddScaled(out, p.rows[i], x)
	}
	return out
}

// ApplySparse projects a sparse vector given as parallel index/value slices.
// Indices must be in [0, InDim).
func (p *Projection) ApplySparse(indices []int, values []float64) []float64 {
	if len(indices) != len(values) {
		panic("vecmath: sparse index/value length mismatch")
	}
	out := make([]float64, p.outDim)
	for k, i := range indices {
		if i < 0 || i >= p.inDim {
			panic(fmt.Sprintf("vecmath: sparse index %d out of range [0,%d)", i, p.inDim))
		}
		AddScaled(out, p.rows[i], values[k])
	}
	return out
}

// Mean returns the (optionally weighted) mean of the given vectors. All
// vectors must share a dimension. With nil weights every vector has weight
// 1. It panics on an empty input or non-positive total weight.
func Mean(vectors [][]float64, weights []float64) []float64 {
	if len(vectors) == 0 {
		panic("vecmath: Mean of no vectors")
	}
	dim := len(vectors[0])
	out := make([]float64, dim)
	var total float64
	for i, v := range vectors {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		AddScaled(out, v, w)
		total += w
	}
	if total <= 0 {
		panic("vecmath: Mean with non-positive total weight")
	}
	Scale(out, 1/total)
	return out
}
