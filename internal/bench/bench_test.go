package bench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"xbsim/internal/experiment"
	"xbsim/internal/obs"
)

// tinyOptions is a one-benchmark, small-scale harness configuration so
// the tests stay fast.
func tinyOptions(iters int) Options {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"mcf"}
	cfg.TargetOps = 200_000
	cfg.IntervalSize = 5_000
	return Options{Config: cfg, Iterations: iters, Label: "test"}
}

// Run must produce one iteration per request, with wall time,
// allocation, and a per-stage breakdown scanned from the resource
// metrics.
func TestRunCollectsIterationsAndStages(t *testing.T) {
	res, err := Run(context.Background(), tinyOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != SchemaVersion || res.Label != "test" {
		t.Errorf("result header = %+v", res)
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d, want 2", len(res.Iterations))
	}
	for i, it := range res.Iterations {
		if it.WallUS == 0 || it.AllocBytes == 0 {
			t.Errorf("iteration %d: wall %d, alloc %d — want both non-zero", i, it.WallUS, it.AllocBytes)
		}
		for _, stage := range []string{"compile", "profile", "vli", "mapping", "clustering", "evaluate"} {
			st, ok := it.Stages[stage]
			if !ok || st.Attempts == 0 {
				t.Errorf("iteration %d: stage %q = %+v", i, stage, st)
			}
		}
	}
	if res.MinWallUS() == 0 || res.MeanAllocBytes() == 0 {
		t.Error("aggregates are zero")
	}

	var b strings.Builder
	if err := res.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "clustering") {
		t.Errorf("table missing stage rows:\n%s", b.String())
	}
}

// Save/Load must round-trip, and Load must reject a result written by
// a different schema version.
func TestSaveLoadAndSchemaCheck(t *testing.T) {
	res, err := Run(context.Background(), tinyOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := res.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinWallUS() != res.MinWallUS() || len(got.Iterations) != len(res.Iterations) {
		t.Errorf("round-trip changed the result: %+v vs %+v", got, res)
	}

	res.Schema = SchemaVersion + 1
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := res.Save(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("Load accepted a foreign schema: %v", err)
	}
}

// synthetic builds a result by hand for comparison tests.
func synthetic(wallUS, allocBytes uint64) *Result {
	return &Result{
		Schema: SchemaVersion,
		Iterations: []Iteration{{
			WallUS: wallUS, AllocBytes: allocBytes,
			Stages: map[string]StageStats{"clustering": {Attempts: 1, WallUS: wallUS / 2}},
		}},
	}
}

// Compare must pass within tolerance and fail beyond it, separately
// for wall time and allocation.
func TestCompareTolerances(t *testing.T) {
	base := synthetic(1000, 1_000_000)

	if err := Compare(synthetic(1100, 1_000_000), base, 0.20, 0.05).Err(); err != nil {
		t.Errorf("10%% wall inside 20%% tolerance failed: %v", err)
	}
	if err := Compare(synthetic(1300, 1_000_000), base, 0.20, 0.05).Err(); err == nil {
		t.Error("30% wall regression passed a 20% tolerance")
	}
	if err := Compare(synthetic(1000, 1_200_000), base, 0.20, 0.05).Err(); err == nil {
		t.Error("20% alloc regression passed a 5% tolerance")
	}
	// Improvements never fail.
	if err := Compare(synthetic(500, 500_000), base, 0.20, 0.05).Err(); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}

	c := Compare(synthetic(1300, 1_300_000), base, 0.20, 0.05)
	if len(c.Regressions) != 2 {
		t.Errorf("regressions = %v, want wall and alloc", c.Regressions)
	}
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "REGRESSION") || !strings.Contains(b.String(), "clustering") {
		t.Errorf("comparison table:\n%s", b.String())
	}
}

// A stage present only in the current result renders as "new" and an
// empty baseline never divides by zero.
func TestCompareHandlesNewStagesAndEmptyBase(t *testing.T) {
	base := &Result{Schema: SchemaVersion, Iterations: []Iteration{{WallUS: 0}}}
	cur := synthetic(1000, 1_000_000)
	c := Compare(cur, base, 0.20, 0.05)
	if c.WallRatio != 0 || c.AllocRatio != 0 {
		t.Errorf("ratios vs empty base = %v/%v, want 0/0", c.WallRatio, c.AllocRatio)
	}
	if err := c.Err(); err != nil {
		t.Errorf("empty baseline produced a regression: %v", err)
	}
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "new") {
		t.Errorf("new stage not marked:\n%s", b.String())
	}
}

// Run must append the attribution section from one extra profiled run:
// walk-level nodes only, a redundancy summary, and a profiled wall time
// usable for overhead measurement.
func TestRunCollectsAttribution(t *testing.T) {
	res, err := Run(context.Background(), tinyOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Attribution
	if a == nil {
		t.Fatal("no attribution section")
	}
	if a.WallUS == 0 || a.AttributedWallUS == 0 {
		t.Errorf("attribution wall = %d/%d, want both non-zero", a.WallUS, a.AttributedWallUS)
	}
	// 4 binaries × 3 walks for the single benchmark, walk-level only.
	if len(a.Walks) != 12 {
		t.Errorf("walk nodes = %d, want 12", len(a.Walks))
	}
	for _, n := range a.Walks {
		if n.Point != obs.WholeWalk {
			t.Errorf("point-level node %+v leaked into the baseline", n)
		}
	}
	// With the evaluation memo on (the default), the gated walks are
	// answered from the table: no executed evaluations reach the
	// redundancy analyzer, and the memo counters carry the traffic.
	if a.Redundancy.Evaluations != 0 || a.Redundancy.Duplicates != 0 {
		t.Errorf("redundancy = %+v, want no executed evaluations under the memo", a.Redundancy)
	}
	if a.Redundancy.MemoHits == 0 || a.Redundancy.MemoHitRate() != 1 {
		t.Errorf("memo accounting = %+v, want full hit rate", a.Redundancy)
	}

	// The human rendering carries the attribution, redundancy, and memo
	// lines.
	var b strings.Builder
	if err := res.Write(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attribution:", "redundancy:", "memo:"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("table missing %q:\n%s", want, b.String())
		}
	}
}

// Load must accept a schema-1 baseline (no attribution section) so new
// binaries still compare against old committed baselines, and Compare
// over such a pair exercises only wall/alloc/stages.
func TestLoadAcceptsOlderSchema(t *testing.T) {
	old := synthetic(1000, 1_000_000)
	old.Schema = 1
	path := filepath.Join(t.TempDir(), "old.json")
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}
	base, err := Load(path)
	if err != nil {
		t.Fatalf("schema-1 baseline rejected: %v", err)
	}
	if base.Attribution != nil {
		t.Errorf("schema-1 baseline grew an attribution section: %+v", base.Attribution)
	}
	cur := synthetic(1050, 1_000_000)
	cur.Attribution = &AttributionRecord{WallUS: 1200}
	if err := Compare(cur, base, 0.20, 0.05).Err(); err != nil {
		t.Errorf("comparison against schema-1 baseline failed: %v", err)
	}

	tooOld := synthetic(1000, 1)
	tooOld.Schema = 0
	bad := filepath.Join(t.TempDir(), "tooold.json")
	if err := tooOld.Save(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("Load accepted schema 0: %v", err)
	}
}
