// Package bench is the performance-regression harness behind `xbsim
// bench`: it runs the experiment suite N times under a fresh metrics
// registry, records wall time, allocation, and the per-stage resource
// breakdown into a schema-versioned JSON result, and compares two
// results with separate wall-clock and allocation tolerances so CI can
// fail on real regressions without tripping over machine noise.
//
// Runs are forced serial (Workers=1, Parallelism=1): the pipeline's
// results are bit-identical at any width, so serial execution costs
// only wall clock and buys exact per-stage attribution of the
// process-wide allocation counters (see obs.StageSample).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/obs"
)

// SchemaVersion identifies the Result JSON layout. Load accepts any
// version in [MinSchemaVersion, SchemaVersion] so newer binaries can
// still compare against older baselines; versions outside the range are
// rejected so a comparison never silently mixes incompatible layouts.
//
// Version history:
//
//	1 — iterations with wall/alloc/GC and per-stage breakdown.
//	2 — adds the optional "attribution" section (evaluate-walk cost
//	    breakdown + redundancy summary from one extra profiled run).
//	    Purely additive: schema-1 files load fine and compare on
//	    wall/alloc only.
//	3 — adds the optional "samplers" section (cross-backend sampler
//	    comparison: CPI error vs simulated-instruction budget per
//	    backend, from `xbsim bench -samplers`). Purely additive:
//	    schema-1/2 baselines load and compare unchanged.
//	4 — adds the optional "serve" section (service load-test record
//	    from `xbsim serve -loadtest`: throughput, latency quantiles,
//	    cache-hit rate). Purely additive: older baselines load and
//	    compare unchanged, and Compare ignores the section.
const SchemaVersion = 4

// MinSchemaVersion is the oldest Result layout Load still accepts.
const MinSchemaVersion = 1

// StageStats is one pipeline stage's resource use in one iteration,
// scanned from the stage.<name>.* metric family.
type StageStats struct {
	// Attempts counts stage attempts (retries included).
	Attempts uint64 `json:"attempts"`
	// WallUS is the total stage wall time in microseconds.
	WallUS uint64 `json:"wall_us"`
	// AllocBytes is the total bytes allocated during the stage.
	AllocBytes uint64 `json:"alloc_bytes"`
}

// Iteration is one full-suite run.
type Iteration struct {
	// WallUS is the end-to-end suite wall time in microseconds.
	WallUS uint64 `json:"wall_us"`
	// AllocBytes is the process allocation delta across the run.
	AllocBytes uint64 `json:"alloc_bytes"`
	// GCCycles is the GC cycle delta across the run.
	GCCycles uint64 `json:"gc_cycles"`
	// Stages maps stage name to its resource breakdown.
	Stages map[string]StageStats `json:"stages"`
}

// Result is a schema-versioned benchmark record, comparable across
// commits via Compare.
type Result struct {
	// Schema is the Result layout version (SchemaVersion).
	Schema int `json:"schema_version"`
	// Label is a free-form tag for the run (e.g. a commit id).
	Label string `json:"label,omitempty"`
	// GoVersion records the toolchain the numbers came from.
	GoVersion string `json:"go_version"`
	// Benchmarks, TargetOps, and IntervalSize pin the workload shape.
	Benchmarks   []string `json:"benchmarks"`
	TargetOps    uint64   `json:"target_ops"`
	IntervalSize uint64   `json:"interval_size"`
	// Iterations holds one entry per suite run.
	Iterations []Iteration `json:"iterations"`
	// Attribution, when present (schema >= 2), is the evaluate-walk cost
	// breakdown from one extra profiled run; nil in older baselines.
	Attribution *AttributionRecord `json:"attribution,omitempty"`
	// Samplers, when present (schema >= 3), is the cross-backend sampler
	// comparison recorded by `xbsim bench -samplers`; nil otherwise.
	// Compare ignores it — accuracy tracking is a human/CI-artifact
	// concern, not a pass/fail gate.
	Samplers *experiment.SamplerComparison `json:"samplers,omitempty"`
	// Serve, when present (schema >= 4), is the analysis-service
	// load-test record from `xbsim serve -loadtest`; nil otherwise.
	// Compare ignores it for the same reason as Samplers.
	Serve *ServeRecord `json:"serve,omitempty"`
}

// ServeRecord captures one `xbsim serve -loadtest` run: a mixed
// fresh/duplicate submission stream against an in-process service,
// measured end to end over HTTP (submit → result available).
type ServeRecord struct {
	// Jobs is the number of submissions issued; Clients the number of
	// concurrent submitters.
	Jobs    int `json:"jobs"`
	Clients int `json:"clients"`
	// Unique and Duplicates split the stream: duplicates resubmit
	// already-issued work and should be served from the result cache.
	Unique     int `json:"unique"`
	Duplicates int `json:"duplicates"`
	// Completed counts submissions whose result became available;
	// Failed counts terminal failures; Rejected counts 429s.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	// CacheHits counts submissions answered from the content-addressed
	// result cache without running the pipeline.
	CacheHits int `json:"cache_hits"`
	// WallUS is the whole load test's wall time in microseconds.
	WallUS uint64 `json:"wall_us"`
	// ThroughputJobsPerSec is Completed / wall seconds.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// P50US / P99US are submit-to-result latency quantiles in
	// microseconds across completed submissions.
	P50US uint64 `json:"p50_us"`
	P99US uint64 `json:"p99_us"`
	// CacheHitP50US is the latency median over cache-hit submissions
	// alone — the "duplicate work is free" number.
	CacheHitP50US uint64 `json:"cache_hit_p50_us"`
}

// Write renders the record as a human-readable summary.
func (s *ServeRecord) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"serve loadtest: %d jobs (%d unique + %d duplicate) over %d client(s) in %.1fms\n"+
			"  completed %d, failed %d, rejected %d, cache hits %d (%.0f%% of duplicates)\n"+
			"  throughput %.1f jobs/s, latency p50 %.1fms p99 %.1fms, cache-hit p50 %.2fms\n",
		s.Jobs, s.Unique, s.Duplicates, s.Clients, float64(s.WallUS)/1000,
		s.Completed, s.Failed, s.Rejected, s.CacheHits, s.cacheHitRate()*100,
		s.ThroughputJobsPerSec, float64(s.P50US)/1000, float64(s.P99US)/1000,
		float64(s.CacheHitP50US)/1000)
	return err
}

func (s *ServeRecord) cacheHitRate() float64 {
	if s.Duplicates == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Duplicates)
}

// AttributionRecord captures the evaluate-stage cost attribution of one
// extra suite run executed with the obs.Attribution profiler enabled.
// The timed iterations run with profiling off, so this run's wall time
// is recorded separately: WallUS / the fastest timed iteration bounds
// the profiler's enabled overhead.
type AttributionRecord struct {
	// WallUS is the profiled run's end-to-end wall time in microseconds.
	WallUS uint64 `json:"wall_us"`
	// AttributedWallUS is the wall time charged to walk-level nodes —
	// the slice of WallUS the profiler can explain.
	AttributedWallUS uint64 `json:"attributed_wall_us"`
	// Walks holds the walk-level attribution nodes (points are omitted
	// to keep baselines small; run `xbsim profile` for the full tree).
	Walks []obs.AttribNode `json:"walks"`
	// Redundancy is the duplicate-evaluation summary.
	Redundancy obs.RedundancySummary `json:"redundancy"`
}

// MinWallUS returns the fastest iteration's wall time — the standard
// noise-robust statistic for "how fast can this code go".
func (r *Result) MinWallUS() uint64 {
	var min uint64
	for i, it := range r.Iterations {
		if i == 0 || it.WallUS < min {
			min = it.WallUS
		}
	}
	return min
}

// MeanAllocBytes returns the mean allocation across iterations.
// Allocation is nearly deterministic run-to-run, so the mean is a
// tight statistic.
func (r *Result) MeanAllocBytes() uint64 {
	if len(r.Iterations) == 0 {
		return 0
	}
	var sum uint64
	for _, it := range r.Iterations {
		sum += it.AllocBytes
	}
	return sum / uint64(len(r.Iterations))
}

// StageNames returns the union of stage names across iterations,
// sorted.
func (r *Result) StageNames() []string {
	seen := map[string]bool{}
	for _, it := range r.Iterations {
		for name := range it.Stages {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// minStageWallUS returns the fastest iteration's wall time for one
// stage (0 when the stage never ran).
func (r *Result) minStageWallUS(stage string) uint64 {
	var min uint64
	first := true
	for _, it := range r.Iterations {
		st, ok := it.Stages[stage]
		if !ok {
			continue
		}
		if first || st.WallUS < min {
			min = st.WallUS
			first = false
		}
	}
	return min
}

// Options configures Run.
type Options struct {
	// Config is the suite configuration; Workers and Parallelism are
	// forced to 1 for exact resource attribution.
	Config experiment.Config
	// Iterations is the number of suite runs (default 3).
	Iterations int
	// Label tags the result.
	Label string
	// Progress, when non-nil, receives one line per iteration.
	Progress io.Writer
}

// Run executes the suite Options.Iterations times and collects a
// Result. Each iteration gets a fresh metrics registry (no tracer, no
// recorder — the harness measures the pipeline, not the telemetry),
// and the per-stage breakdown is scanned from the
// stage.<name>.duration_us / .alloc_bytes metric family that
// experiment.runStage publishes.
func Run(ctx context.Context, opt Options) (*Result, error) {
	cfg := opt.Config
	cfg.Workers = 1
	cfg.Parallelism = 1
	n := opt.Iterations
	if n <= 0 {
		n = 3
	}
	res := &Result{
		Schema:       SchemaVersion,
		Label:        opt.Label,
		GoVersion:    runtime.Version(),
		Benchmarks:   cfg.Benchmarks,
		TargetOps:    cfg.TargetOps,
		IntervalSize: cfg.IntervalSize,
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := &obs.Observer{Metrics: obs.NewRegistry()}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := experiment.RunCtx(obs.With(ctx, o), cfg); err != nil {
			return nil, fmt.Errorf("bench: iteration %d: %w", i, err)
		}
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)

		it := Iteration{
			WallUS:     uint64(wall.Microseconds()),
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			GCCycles:   uint64(after.NumGC - before.NumGC),
			Stages:     stageBreakdown(o.Metrics.Snapshot()),
		}
		res.Iterations = append(res.Iterations, it)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "bench: iteration %d/%d: %.1fms, %s allocated, %d GC cycles\n",
				i+1, n, float64(it.WallUS)/1000, formatBytes(it.AllocBytes), it.GCCycles)
		}
	}

	// One extra run with the attribution profiler on. Kept out of the
	// timed iterations so the recorded wall/alloc numbers always measure
	// the profiler-off pipeline; the ratio of this run's wall time to the
	// fastest timed iteration is the profiler's enabled overhead.
	att := obs.NewAttribution()
	o := &obs.Observer{Metrics: obs.NewRegistry(), Attrib: att}
	start := time.Now()
	if _, err := experiment.RunCtx(obs.With(ctx, o), cfg); err != nil {
		return nil, fmt.Errorf("bench: attribution run: %w", err)
	}
	wall := time.Since(start)
	snap := att.Snapshot()
	res.Attribution = &AttributionRecord{
		WallUS:           uint64(wall.Microseconds()),
		AttributedWallUS: snap.TotalWallNS() / 1000,
		Walks:            snap.Walks(),
		Redundancy:       snap.Redundancy,
	}
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, "bench: attribution run: %.1fms wall, %.1fms attributed, %.0f%% duplicate evaluations, %.0f%% memo hit rate\n",
			float64(res.Attribution.WallUS)/1000, float64(res.Attribution.AttributedWallUS)/1000,
			snap.Redundancy.DuplicateFraction()*100, snap.Redundancy.MemoHitRate()*100)
	}
	return res, nil
}

// stageBreakdown scans a snapshot for the per-stage resource metrics.
func stageBreakdown(snap obs.Snapshot) map[string]StageStats {
	stages := map[string]StageStats{}
	for _, name := range snap.HistogramNames() {
		rest, ok := strings.CutPrefix(name, "stage.")
		if !ok {
			continue
		}
		stage, ok := strings.CutSuffix(rest, ".duration_us")
		if !ok {
			continue
		}
		h := snap.Histograms[name]
		stages[stage] = StageStats{
			Attempts:   h.Count,
			WallUS:     h.Sum,
			AllocBytes: snap.Counters["stage."+stage+".alloc_bytes"],
		}
	}
	return stages
}

// Save writes the result as indented JSON.
func (r *Result) Save(path string) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a result and validates its schema version.
func Load(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema < MinSchemaVersion || r.Schema > SchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema version %d, this binary speaks %d..%d",
			path, r.Schema, MinSchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Write renders the result as a human-readable table.
func (r *Result) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "bench: %d iteration(s), %d benchmark(s), min wall %.1fms, mean alloc %s\n",
		len(r.Iterations), len(r.Benchmarks),
		float64(r.MinWallUS())/1000, formatBytes(r.MeanAllocBytes())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-14s %10s %12s %12s\n", "stage", "attempts", "min wall", "alloc"); err != nil {
		return err
	}
	for _, name := range r.StageNames() {
		var attempts, alloc uint64
		for _, it := range r.Iterations {
			attempts += it.Stages[name].Attempts
			alloc += it.Stages[name].AllocBytes
		}
		if len(r.Iterations) > 0 {
			alloc /= uint64(len(r.Iterations))
		}
		if _, err := fmt.Fprintf(w, "  %-14s %10d %10.1fms %12s\n",
			name, attempts, float64(r.minStageWallUS(name))/1000, formatBytes(alloc)); err != nil {
			return err
		}
	}
	if a := r.Attribution; a != nil {
		overhead := ""
		if min := r.MinWallUS(); min > 0 {
			overhead = fmt.Sprintf(", %+.1f%% vs fastest timed iteration",
				(float64(a.WallUS)/float64(min)-1)*100)
		}
		if _, err := fmt.Fprintf(w, "  attribution: %d walk nodes, %.1fms attributed of %.1fms profiled wall%s\n",
			len(a.Walks), float64(a.AttributedWallUS)/1000, float64(a.WallUS)/1000, overhead); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  redundancy: %d evaluations, %d unique, %d duplicate (%.0f%%), %d of %d instructions re-simulated\n",
			a.Redundancy.Evaluations, a.Redundancy.Unique, a.Redundancy.Duplicates,
			a.Redundancy.DuplicateFraction()*100,
			a.Redundancy.DuplicateInstructions, a.Redundancy.TotalInstructions); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  memo: %d hits, %d misses (%.0f%% hit rate), %d instructions not re-simulated\n",
			a.Redundancy.MemoHits, a.Redundancy.MemoMisses,
			a.Redundancy.MemoHitRate()*100, a.Redundancy.MemoSavedInstructions); err != nil {
			return err
		}
	}
	if s := r.Samplers; s != nil {
		if _, err := fmt.Fprintf(w, "  samplers: %d backend configuration(s) compared over %d benchmark(s)\n",
			len(s.Rows), len(s.Benchmarks)); err != nil {
			return err
		}
	}
	if s := r.Serve; s != nil {
		if err := s.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
