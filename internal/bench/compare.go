package bench

import (
	"fmt"
	"io"
)

// StageDelta is one stage's wall-time movement between two results.
type StageDelta struct {
	// Stage is the pipeline stage name.
	Stage string
	// BaseUS and CurUS are the min wall times in each result.
	BaseUS, CurUS uint64
	// Ratio is CurUS/BaseUS (1 = unchanged; 0 when the base is empty).
	Ratio float64
}

// Comparison is the outcome of Compare: total movements, the per-stage
// breakdown, and the regressions that exceeded their tolerance.
type Comparison struct {
	// WallRatio and AllocRatio are current/baseline for min wall time
	// and mean allocation (1 = unchanged).
	WallRatio, AllocRatio float64
	// Stages is the per-stage wall-time breakdown, sorted by name.
	Stages []StageDelta
	// Regressions describes every tolerance the current result blew.
	Regressions []string
}

// Compare measures cur against base. Wall time regresses when cur's
// fastest iteration is more than wallTol (relative) slower than base's;
// allocation regresses when cur's mean allocation is more than allocTol
// above base's. Wall clock is machine- and load-dependent, so wallTol
// should be generous in CI; allocation is nearly deterministic, so
// allocTol can be tight. Per-stage deltas are informational only —
// stages can trade time against each other without the total moving.
func Compare(cur, base *Result, wallTol, allocTol float64) *Comparison {
	c := &Comparison{WallRatio: ratio(cur.MinWallUS(), base.MinWallUS()),
		AllocRatio: ratio(cur.MeanAllocBytes(), base.MeanAllocBytes())}
	if c.WallRatio > 1+wallTol {
		c.Regressions = append(c.Regressions,
			fmt.Sprintf("wall time %.1fms -> %.1fms (%+.1f%%, tolerance %.0f%%)",
				float64(base.MinWallUS())/1000, float64(cur.MinWallUS())/1000,
				(c.WallRatio-1)*100, wallTol*100))
	}
	if c.AllocRatio > 1+allocTol {
		c.Regressions = append(c.Regressions,
			fmt.Sprintf("allocation %s -> %s (%+.1f%%, tolerance %.0f%%)",
				formatBytes(base.MeanAllocBytes()), formatBytes(cur.MeanAllocBytes()),
				(c.AllocRatio-1)*100, allocTol*100))
	}
	seen := map[string]bool{}
	for _, name := range append(base.StageNames(), cur.StageNames()...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		d := StageDelta{Stage: name, BaseUS: base.minStageWallUS(name), CurUS: cur.minStageWallUS(name)}
		d.Ratio = ratio(d.CurUS, d.BaseUS)
		c.Stages = append(c.Stages, d)
	}
	return c
}

// ratio returns cur/base as a float, or 0 when base is 0.
func ratio(cur, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(cur) / float64(base)
}

// Err returns an error naming every regression, or nil when the
// comparison passed.
func (c *Comparison) Err() error {
	if len(c.Regressions) == 0 {
		return nil
	}
	msg := "bench: regression vs baseline:"
	for _, r := range c.Regressions {
		msg += "\n  " + r
	}
	return fmt.Errorf("%s", msg)
}

// Write renders the comparison as a table.
func (c *Comparison) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "bench: vs baseline: wall %+.1f%%, alloc %+.1f%%\n",
		(c.WallRatio-1)*100, (c.AllocRatio-1)*100); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-14s %12s %12s %8s\n", "stage", "base", "current", "delta"); err != nil {
		return err
	}
	for _, d := range c.Stages {
		delta := "new"
		if d.BaseUS > 0 {
			delta = fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100)
		}
		if _, err := fmt.Fprintf(w, "  %-14s %10.1fms %10.1fms %8s\n",
			d.Stage, float64(d.BaseUS)/1000, float64(d.CurUS)/1000, delta); err != nil {
			return err
		}
	}
	for _, r := range c.Regressions {
		if _, err := fmt.Fprintf(w, "  REGRESSION %s\n", r); err != nil {
			return err
		}
	}
	return nil
}
