package simpoint

import (
	"math"
	"reflect"
	"testing"

	"xbsim/internal/pool"
)

// A pooled sweep must choose the identical clustering, points, weights,
// and BIC trace as the serial sweep.
func TestParallelSweepMatchesSerial(t *testing.T) {
	ds, _ := phasedDataset(3, 4, 3, 0.05, "parallel-sweep")
	serial, err := Pick(ds, Config{MaxK: 8, Seed: "psweep"})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Pick(ds, Config{MaxK: 8, Seed: "psweep", Pool: pool.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("pooled sweep differs from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// Non-finite BIC scores must be excluded from the min-max normalization
// instead of poisoning it into silently choosing the maximum k.
func TestChooseKSkipsNonFiniteScores(t *testing.T) {
	nan, negInf := math.NaN(), math.Inf(-1)

	// A NaN (or -Inf) among otherwise plateauing scores: the plateau
	// still wins and the poisoned k is never chosen.
	if got := chooseK([]float64{nan, -100, -5, -4, -3}, 0.9); got != 3 {
		t.Fatalf("chooseK with NaN = %d, want 3", got)
	}
	if got := chooseK([]float64{negInf, -100, -5, -4, -3}, 0.9); got != 3 {
		t.Fatalf("chooseK with -Inf = %d, want 3", got)
	}
	// Before the fix, -Inf stretched the range so no norm reached the
	// threshold and the maximum k was chosen; the degenerate k itself
	// must also never be returned.
	if got := chooseK([]float64{-5, -4, nan}, 0.9); got == 3 {
		t.Fatal("chooseK returned the non-finite k")
	}

	// Only one finite score: that k is the only defensible choice.
	if got := chooseK([]float64{nan, negInf, -7, nan}, 0.9); got != 3 {
		t.Fatalf("chooseK single finite = %d, want 3", got)
	}
	// Equal finite scores around non-finite holes: smallest finite k.
	if got := chooseK([]float64{nan, -7, -7}, 0.9); got != 2 {
		t.Fatalf("chooseK flat finite = %d, want 2", got)
	}
	// Nothing finite at all: fall back to k = 1.
	if got := chooseK([]float64{nan, negInf, math.Inf(1)}, 0.9); got != 1 {
		t.Fatalf("chooseK all non-finite = %d, want 1", got)
	}
}
