package simpoint

import (
	"math"
	"testing"

	"xbsim/internal/bbv"
	"xbsim/internal/xrand"
)

// phasedDataset builds a dataset with `phases` distinct code signatures,
// cycling phase-by-phase, `perPhase` intervals each visit, `visits` visits.
// Each phase touches a disjoint set of basic blocks, so clustering should
// recover the phases exactly.
func phasedDataset(phases, perPhase, visits int, jitter float64, seed string) (*bbv.Dataset, []int) {
	rng := xrand.New(seed)
	ds := bbv.NewDataset()
	var truth []int
	v := bbv.NewVector()
	for visit := 0; visit < visits; visit++ {
		for ph := 0; ph < phases; ph++ {
			for i := 0; i < perPhase; i++ {
				v.Reset()
				base := ph * 10
				for b := 0; b < 8; b++ {
					execs := uint64(100 + float64(50*b)*(1+jitter*rng.NormFloat64()))
					v.Add(base+b, execs, b%4+1)
				}
				ds.Append(v)
				truth = append(truth, ph)
			}
		}
	}
	return ds, truth
}

func TestPickRecoversPhases(t *testing.T) {
	ds, truth := phasedDataset(3, 4, 3, 0.02, "recover")
	res, err := Pick(ds, Config{MaxK: 10, Seed: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("chose K=%d, want 3 (BICs %v)", res.K, res.BICByK)
	}
	// All intervals of a true phase must land in one cluster.
	seen := map[int]int{}
	for i, ph := range truth {
		c := res.PhaseOf[i]
		if prev, ok := seen[ph]; ok && prev != c {
			t.Fatalf("true phase %d split across clusters", ph)
		}
		seen[ph] = c
	}
}

func TestPickWeightsSumToOne(t *testing.T) {
	ds, _ := phasedDataset(4, 3, 2, 0.05, "weights")
	res, err := Pick(ds, Config{Seed: "t2"})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Points {
		if p.Weight < 0 || p.Weight > 1 {
			t.Fatalf("point weight %v out of range", p.Weight)
		}
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestPickRepresentativeIsMemberOfPhase(t *testing.T) {
	ds, _ := phasedDataset(3, 5, 2, 0.05, "member")
	res, err := Pick(ds, Config{Seed: "t3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if res.PhaseOf[p.Interval] != p.Phase {
			t.Fatalf("representative interval %d not in its phase %d", p.Interval, p.Phase)
		}
		if p.Instructions != ds.Lengths()[p.Interval] {
			t.Fatalf("point instruction count mismatch")
		}
	}
}

func TestPickRespectsMaxK(t *testing.T) {
	ds, _ := phasedDataset(6, 2, 2, 0.02, "maxk")
	res, err := Pick(ds, Config{MaxK: 3, Seed: "t4"})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Fatalf("K=%d exceeds MaxK=3", res.K)
	}
	if len(res.BICByK) != 3 {
		t.Fatalf("BICByK has %d entries", len(res.BICByK))
	}
}

func TestPickSingleBehaviorChoosesOnePhase(t *testing.T) {
	// Perfectly homogeneous execution (identical interval signatures) must
	// collapse to a single phase carrying all the weight.
	ds, _ := phasedDataset(1, 10, 1, 0, "single")
	res, err := Pick(ds, Config{Seed: "t5"})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("homogeneous execution clustered into K=%d", res.K)
	}
	if len(res.Points) != 1 || math.Abs(res.Points[0].Weight-1) > 1e-9 {
		t.Fatalf("single phase should carry all weight: %+v", res.Points)
	}
}

func TestPickNoisySingleBehaviorStaysAccurate(t *testing.T) {
	// With measurement-level jitter on one behavior, SimPoint may split
	// the blob into a few phases — which is harmless as long as every
	// representative has the same signature and weights sum to one.
	ds, _ := phasedDataset(1, 12, 1, 0.01, "noisy-single")
	res, err := Pick(ds, Config{Seed: "t5b"})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Points {
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestPickDeterministicForSeed(t *testing.T) {
	ds, _ := phasedDataset(3, 4, 2, 0.05, "det")
	a, err := Pick(ds, Config{Seed: "same"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pick(ds, Config{Seed: "same"})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || len(a.Points) != len(b.Points) {
		t.Fatal("runs with same seed differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across identical runs", i)
		}
	}
}

func TestPickDifferentSeedsMayDiffer(t *testing.T) {
	// Not a strict requirement, but the plumbing must at least feed the
	// seed through: the projections must differ.
	ds, _ := phasedDataset(3, 4, 2, 0.3, "seeds")
	a, _ := Pick(ds, Config{Seed: "alpha"})
	b, _ := Pick(ds, Config{Seed: "beta"})
	if a == nil || b == nil {
		t.Fatal("nil result")
	}
	// BIC traces are computed on differently projected data, so exact
	// equality across all k would indicate the seed is ignored.
	same := true
	for i := range a.BICByK {
		if i < len(b.BICByK) && a.BICByK[i] != b.BICByK[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical BIC traces; seed ignored?")
	}
}

func TestPickErrors(t *testing.T) {
	if _, err := Pick(nil, Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Pick(bbv.NewDataset(), Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := bbv.NewDataset()
	ds.Append(bbv.NewVector()) // empty interval
	if _, err := Pick(ds, Config{}); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestChooseK(t *testing.T) {
	// Scores rise to a plateau; rule should pick the first k at >= 90% of
	// the normalized range.
	bics := []float64{-100, -20, -5, -4, -3}
	if got := chooseK(bics, 0.9); got != 3 {
		t.Fatalf("chooseK = %d, want 3", got)
	}
	if got := chooseK(bics, 1.0); got != 5 {
		t.Fatalf("chooseK(threshold=1) = %d, want 5", got)
	}
	if got := chooseK([]float64{7, 7, 7}, 0.9); got != 1 {
		t.Fatalf("chooseK flat = %d, want 1", got)
	}
}

func TestVLIWeightingInfluencesPhaseWeights(t *testing.T) {
	// Two behaviors; behavior A intervals are 10x longer. Phase weights
	// must reflect instructions, not interval counts.
	ds := bbv.NewDataset()
	v := bbv.NewVector()
	for i := 0; i < 4; i++ {
		v.Reset()
		v.Add(0, 1000, 10) // behavior A: 10000 instructions
		ds.Append(v)
		v.Reset()
		v.Add(50, 100, 10) // behavior B: 1000 instructions
		ds.Append(v)
	}
	res, err := Pick(ds, Config{Seed: "vli"})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K=%d, want 2", res.K)
	}
	weights := []float64{res.Points[0].Weight, res.Points[1].Weight}
	hi, lo := math.Max(weights[0], weights[1]), math.Min(weights[0], weights[1])
	if math.Abs(hi-10.0/11.0) > 1e-9 || math.Abs(lo-1.0/11.0) > 1e-9 {
		t.Fatalf("phase weights %v, want 10/11 and 1/11", weights)
	}
}

func TestWeightedEstimate(t *testing.T) {
	pts := []Point{{Weight: 0.6}, {Weight: 0.4}}
	got, err := WeightedEstimate(pts, []float64{2.0, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.4) > 1e-12 {
		t.Fatalf("estimate = %v, want 2.4", got)
	}
	if _, err := WeightedEstimate(pts, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedEstimate(nil, nil); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := WeightedEstimate([]Point{{Weight: 0}}, []float64{1}); err == nil {
		t.Error("zero total weight accepted")
	}
}
