package simpoint

import (
	"testing"

	"xbsim/internal/bbv"
)

func TestEarlyToleranceMovesPointsEarlier(t *testing.T) {
	ds, _ := phasedDataset(3, 6, 3, 0.05, "early")
	classic, err := Pick(ds, Config{Seed: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Pick(ds, Config{Seed: "e1", EarlyTolerance: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if classic.K != early.K {
		t.Fatalf("K changed: %d vs %d", classic.K, early.K)
	}
	movedEarlier := false
	for p := range classic.Points {
		c, e := classic.Points[p], early.Points[p]
		if e.Interval > c.Interval {
			t.Fatalf("phase %d: early point at %d AFTER classic %d", p, e.Interval, c.Interval)
		}
		if e.Interval < c.Interval {
			movedEarlier = true
		}
		// Weights and phase labels must be untouched.
		if e.Weight != c.Weight || e.Phase != c.Phase {
			t.Fatalf("phase %d: early selection changed weight/phase", p)
		}
	}
	if !movedEarlier {
		t.Fatal("generous tolerance moved no point earlier (phases repeat, so earlier near-equivalents exist)")
	}
	// The early representative must stay within its own phase.
	for _, pt := range early.Points {
		if early.PhaseOf[pt.Interval] != pt.Phase {
			t.Fatalf("early representative %d left its phase", pt.Interval)
		}
	}
}

func TestEarlyToleranceZeroIsClassic(t *testing.T) {
	ds, _ := phasedDataset(3, 5, 2, 0.05, "early-zero")
	a, err := Pick(ds, Config{Seed: "e2"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pick(ds, Config{Seed: "e2", EarlyTolerance: 0})
	if err != nil {
		t.Fatal(err)
	}
	for p := range a.Points {
		if a.Points[p] != b.Points[p] {
			t.Fatalf("tolerance 0 changed point %d", p)
		}
	}
}

func TestEarlyToleranceIdenticalVectors(t *testing.T) {
	// All intervals identical: the earliest (index 0) must be chosen.
	ds := bbv.NewDataset()
	v := bbv.NewVector()
	for i := 0; i < 8; i++ {
		v.Reset()
		v.Add(0, 100, 4)
		ds.Append(v)
	}
	res, err := Pick(ds, Config{Seed: "e3", EarlyTolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || res.Points[0].Interval != 0 {
		t.Fatalf("identical intervals: got K=%d, point at %d", res.K, res.Points[0].Interval)
	}
}

func TestFixedKClustersExactly(t *testing.T) {
	ds, _ := phasedDataset(4, 6, 2, 0.05, "fixedk")
	for _, k := range []int{2, 3, 5} {
		res, err := Pick(ds, Config{Seed: "fk", FixedK: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.K != k {
			t.Fatalf("FixedK=%d produced K=%d", k, res.K)
		}
		if len(res.BICByK) != 1 {
			t.Fatalf("fixed-k run scored %d clusterings", len(res.BICByK))
		}
	}
}

func TestFixedKCappedOnTinyDatasets(t *testing.T) {
	ds, _ := phasedDataset(1, 3, 2, 0.05, "fixedk-tiny") // 6 intervals
	res, err := Pick(ds, Config{Seed: "fk2", FixedK: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Fatalf("FixedK not capped: K=%d for 6 intervals", res.K)
	}
}
