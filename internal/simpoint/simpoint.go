// Package simpoint implements the SimPoint 3.0 simulation-point picker
// (Hamerly, Perelman, Lau, Calder — "SimPoint 3.0: Faster and more flexible
// program phase analysis", JILP 2005), the off-the-shelf tool the paper
// feeds with both fixed length intervals (FLIs) and the variable length
// intervals (VLIs) produced by cross-binary mappable points.
//
// Given a dataset of per-interval basic block vectors the pipeline is:
//
//  1. Normalize each BBV to L1 norm 1 and randomly project it to Dim
//     dimensions.
//  2. Run weighted k-means for every k in 1..MaxK, where an interval's
//     weight is its dynamic instruction count (this is the VLI support:
//     for FLIs all weights are equal and the weighting is a no-op).
//  3. Score each clustering with the BIC and choose the smallest k whose
//     score is within BICThreshold of the best, after min-max normalizing
//     the scores — SimPoint 3.0's "good enough, small k" rule.
//  4. In each chosen cluster, pick as the simulation point the interval
//     whose projected vector is closest to the cluster centroid, and weight
//     it by the fraction of dynamic instructions its cluster covers.
package simpoint

import (
	"context"
	"fmt"
	"math"
	"sort"

	"xbsim/internal/bbv"
	"xbsim/internal/fingerprint"
	"xbsim/internal/kmeans"
	"xbsim/internal/obs"
	"xbsim/internal/pool"
	"xbsim/internal/vecmath"
	"xbsim/internal/xrand"
)

// Config controls a SimPoint run.
type Config struct {
	// MaxK is the maximum number of clusters (phases). The paper's
	// evaluation uses 10. <= 0 means 10.
	MaxK int
	// Dim is the random-projection dimensionality. SimPoint 3.0 uses 15.
	// <= 0 means 15.
	Dim int
	// BICThreshold in (0, 1]: the smallest k is chosen whose min-max
	// normalized BIC score is >= this value. SimPoint's default is 0.9.
	// <= 0 means 0.9.
	BICThreshold float64
	// Restarts per k for k-means. <= 0 means 5.
	Restarts int
	// Seed names the random stream used for projection and clustering.
	// Different seeds model independently configured SimPoint runs.
	Seed string
	// FixedK, when > 0, skips BIC model selection and clusters into
	// exactly FixedK phases (capped at half the interval count), the
	// SimPoint -fixedK mode used when an architect wants an exact
	// simulation budget.
	FixedK int
	// EarlyTolerance, when > 0, enables early simulation points
	// (Perelman, Hamerly, Calder — PACT 2003): instead of the interval
	// closest to the centroid, each phase picks the EARLIEST interval
	// whose distance is within (1 + EarlyTolerance) of the closest.
	// Earlier points need less fast-forwarding before detailed
	// simulation starts. 0 keeps the classic closest-point rule.
	EarlyTolerance float64
	// Pool, when non-nil, runs the k = 1..MaxK sweep (and each run's
	// k-means restarts) concurrently. Every k draws from its own indexed
	// random stream and lands in an index-addressed slot, so the chosen
	// clustering is identical to a serial sweep.
	Pool *pool.Pool
}

func (c Config) withDefaults() Config {
	if c.MaxK <= 0 {
		c.MaxK = 10
	}
	if c.Dim <= 0 {
		c.Dim = 15
	}
	if c.BICThreshold <= 0 {
		c.BICThreshold = 0.9
	}
	if c.Restarts <= 0 {
		c.Restarts = 5
	}
	return c
}

// Point is one chosen simulation point.
type Point struct {
	// Interval is the index of the representative interval in the dataset.
	Interval int
	// Phase is the cluster this point represents, in [0, K).
	Phase int
	// Weight is the fraction of total dynamic instructions executed in
	// this phase; weights over all points sum to 1.
	Weight float64
	// Instructions is the representative interval's own length.
	Instructions uint64
}

// Result is a completed SimPoint analysis.
type Result struct {
	// K is the chosen number of phases.
	K int
	// Points holds one simulation point per phase, ordered by phase ID.
	Points []Point
	// PhaseOf maps every interval index to its phase.
	PhaseOf []int
	// PhaseWeights[p] is the fraction of dynamic instructions in phase p.
	PhaseWeights []float64
	// BICByK records the raw BIC score for each k examined (index k-1),
	// for diagnostics and ablation studies.
	BICByK []float64
}

// Fingerprint returns a digest of the complete analysis — chosen k,
// every point (interval, phase, weight bits, length), the per-interval
// phase labels, phase weights, and the BIC curve. Two runs are
// bit-identical exactly when their fingerprints match; the self-check
// harness uses this to pin the determinism guarantees (same result for
// any worker-pool size, any binary-list permutation).
func (r *Result) Fingerprint() string {
	h := fingerprint.New()
	h.Int(r.K)
	h.Int(len(r.Points))
	for _, p := range r.Points {
		h.Int(p.Interval)
		h.Int(p.Phase)
		h.Float64(p.Weight)
		h.Uint64(p.Instructions)
	}
	h.Ints(r.PhaseOf)
	h.Float64s(r.PhaseWeights)
	h.Float64s(r.BICByK)
	return h.Sum()
}

// Pick runs the SimPoint pipeline over the dataset.
func Pick(ds *bbv.Dataset, cfg Config) (*Result, error) {
	return PickCtx(context.Background(), ds, cfg)
}

// PickCtx is Pick with observability: when the context carries an
// observer, the random projection and the per-k clustering sweep are
// recorded as "stage.projection" and "stage.clustering" spans, and the
// registry receives BIC scores per k (simpoint.bic.k<N> gauges, last run
// wins), the chosen k, and k-means iteration counters.
func PickCtx(ctx context.Context, ds *bbv.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("simpoint: empty dataset")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simpoint: %w", err)
	}
	o := obs.From(ctx)
	rng := xrand.New("simpoint/" + cfg.Seed)
	_, pspan := obs.StartSpan(ctx, "stage.projection")
	pspan.Annotate(cfg.Seed)
	points, err := ds.Project(cfg.Dim, rng.Split("projection"))
	pspan.End()
	if err != nil {
		return nil, fmt.Errorf("simpoint: %w", err)
	}
	o.Counter("simpoint.runs").Inc()
	o.Counter("simpoint.intervals_clustered").Add(uint64(ds.Len()))
	weights := ds.Weights()

	// Clustering needs substantially more intervals than clusters; with
	// k approaching n the spherical-Gaussian BIC degenerates (singleton
	// clusters drive the variance estimate to zero and the likelihood to
	// +inf). Cap k at half the interval count; real runs have hundreds of
	// intervals and MaxK ~ 10, so the cap only bites on tiny datasets.
	capK := func(k int) int {
		if half := ds.Len() / 2; k > half {
			k = half
		}
		if k < 1 {
			k = 1
		}
		return k
	}

	if cfg.FixedK > 0 {
		k := capK(cfg.FixedK)
		_, cspan := obs.StartSpan(ctx, "stage.clustering")
		cspan.Annotate(cfg.Seed)
		res, err := kmeans.Run(points, weights, k, kmeans.Config{
			Restarts: cfg.Restarts,
			Rng:      rng.SplitIndexed("kmeans", k),
			Obs:      o,
			Pool:     cfg.Pool,
		})
		cspan.End()
		if err != nil {
			return nil, fmt.Errorf("simpoint: fixed k=%d: %w", k, err)
		}
		o.Gauge("simpoint.chosen_k").Set(float64(res.K))
		return buildResult(ds, points, res,
			[]float64{kmeans.BIC(points, weights, res)}, cfg.EarlyTolerance)
	}

	// The sweep over k is embarrassingly parallel: each k has its own
	// indexed random stream and writes into its own slot, so a pooled
	// sweep picks exactly the clustering a serial sweep would.
	maxK := capK(cfg.MaxK)
	runs := make([]*kmeans.Result, maxK)
	bics := make([]float64, maxK)
	_, cspan := obs.StartSpan(ctx, "stage.clustering")
	cspan.Annotate(cfg.Seed)
	err = cfg.Pool.Run(maxK, func(i int) error {
		// The sweep is the long pole of the analysis; check for
		// cancellation once per k so an abandoned pick returns promptly
		// instead of clustering to completion.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("simpoint: %w", err)
		}
		k := i + 1
		res, err := kmeans.Run(points, weights, k, kmeans.Config{
			Restarts: cfg.Restarts,
			Rng:      rng.SplitIndexed("kmeans", k),
			Obs:      o,
			Pool:     cfg.Pool,
		})
		if err != nil {
			return fmt.Errorf("simpoint: k=%d: %w", k, err)
		}
		runs[i] = res
		bics[i] = kmeans.BIC(points, weights, res)
		o.Gauge(fmt.Sprintf("simpoint.bic.k%02d", k)).Set(bics[i])
		return nil
	})
	cspan.End()
	if err != nil {
		return nil, err
	}

	chosen := chooseK(bics, cfg.BICThreshold)
	o.Gauge("simpoint.chosen_k").Set(float64(chosen))
	best := runs[chosen-1]
	return buildResult(ds, points, best, bics, cfg.EarlyTolerance)
}

// chooseK applies SimPoint 3.0's selection rule: min-max normalize the BIC
// scores and return the smallest k whose normalized score is >= threshold.
// Non-finite scores (NaN or ±Inf from degenerate clusterings) are excluded
// from the normalization and can never be chosen — a single poisoned score
// must not drag the min-max range and silently force the maximum k. When
// no score is finite the sweep degenerates entirely and k = 1 is the only
// defensible answer.
func chooseK(bics []float64, threshold float64) int {
	finite := func(b float64) bool { return !math.IsNaN(b) && !math.IsInf(b, 0) }
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	for _, b := range bics {
		if !finite(b) {
			continue
		}
		any = true
		lo = math.Min(lo, b)
		hi = math.Max(hi, b)
	}
	if !any {
		return 1
	}
	for k := 1; k <= len(bics); k++ {
		b := bics[k-1]
		if !finite(b) {
			continue
		}
		if hi == lo {
			// All finite scores equal: the smallest finite k wins.
			return k
		}
		if (b-lo)/(hi-lo) >= threshold {
			return k
		}
	}
	// Unreachable: the maximum finite score normalizes to 1 >= threshold.
	return len(bics)
}

func buildResult(ds *bbv.Dataset, projected [][]float64, clus *kmeans.Result, bics []float64, earlyTol float64) (*Result, error) {
	k := clus.K
	total := float64(ds.TotalInstructions())
	if total <= 0 {
		return nil, fmt.Errorf("simpoint: dataset has no instructions")
	}

	phaseWeights := make([]float64, k)
	lengths := ds.Lengths()
	for i, p := range clus.Assignments {
		phaseWeights[p] += float64(lengths[i]) / total
	}

	// Representative per phase: interval closest to the centroid, or —
	// with a positive early tolerance — the earliest interval within the
	// tolerance of the closest (early simulation points).
	repr := make([]int, k)
	best := make([]float64, k)
	for p := range repr {
		repr[p] = -1
		best[p] = math.Inf(1)
	}
	for i, p := range clus.Assignments {
		d := vecmath.SquaredDistance(projected[i], clus.Centroids[p])
		if d < best[p] {
			best[p], repr[p] = d, i
		}
	}
	if earlyTol > 0 {
		// Squared-distance tolerance: (1+tol)^2 on the radius.
		factor := (1 + earlyTol) * (1 + earlyTol)
		for i, p := range clus.Assignments {
			if i >= repr[p] {
				continue // not earlier than the current pick
			}
			d := vecmath.SquaredDistance(projected[i], clus.Centroids[p])
			if d <= best[p]*factor {
				repr[p] = i
			}
		}
	}

	var pts []Point
	for p := 0; p < k; p++ {
		if repr[p] < 0 {
			// Empty phase (possible only if k-means produced an empty
			// cluster that was never refilled); skip it.
			continue
		}
		pts = append(pts, Point{
			Interval:     repr[p],
			Phase:        p,
			Weight:       phaseWeights[p],
			Instructions: lengths[repr[p]],
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Phase < pts[j].Phase })

	return &Result{
		K:            k,
		Points:       pts,
		PhaseOf:      append([]int(nil), clus.Assignments...),
		PhaseWeights: phaseWeights,
		BICByK:       bics,
	}, nil
}

// WeightedEstimate combines per-point measurements into a whole-program
// estimate: the weighted average of value[i] with the points' weights. It
// is the paper's step 6 for a metric like CPI. Points and values must have
// equal length.
func WeightedEstimate(points []Point, values []float64) (float64, error) {
	if len(points) != len(values) {
		return 0, fmt.Errorf("simpoint: %d points but %d values", len(points), len(values))
	}
	if len(points) == 0 {
		return 0, fmt.Errorf("simpoint: no points")
	}
	var sum, wsum float64
	for i, p := range points {
		sum += p.Weight * values[i]
		wsum += p.Weight
	}
	if wsum <= 0 {
		return 0, fmt.Errorf("simpoint: zero total weight")
	}
	return sum / wsum, nil
}
