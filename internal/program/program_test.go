package program

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestAllBenchmarksGenerateAndValidate(t *testing.T) {
	for _, name := range Benchmarks() {
		p, err := Generate(name, GenConfig{TargetOps: 1_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
		if p.Procs[0].Name != "main" {
			t.Errorf("%s: proc 0 is %q, want main", name, p.Procs[0].Name)
		}
	}
}

func TestGenerateUnknownBenchmark(t *testing.T) {
	if _, err := Generate("nonexistent", GenConfig{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("gcc", GenConfig{TargetOps: 500_000})
	b := MustGenerate("gcc", GenConfig{TargetOps: 500_000})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (name, config) generated different programs")
	}
}

func TestGenerateScalesWithTargetOps(t *testing.T) {
	small := EstimateDynamicOps(MustGenerate("swim", GenConfig{TargetOps: 1_000_000}))
	large := EstimateDynamicOps(MustGenerate("swim", GenConfig{TargetOps: 8_000_000}))
	ratio := float64(large) / float64(small)
	if ratio < 4 || ratio > 16 {
		t.Fatalf("8x target gave %.1fx ops (small=%d large=%d)", ratio, small, large)
	}
}

func TestEstimateNearTarget(t *testing.T) {
	for _, name := range []string{"gcc", "swim", "mcf", "applu"} {
		const target = 2_000_000
		p := MustGenerate(name, GenConfig{TargetOps: target})
		est := EstimateDynamicOps(p)
		ratio := float64(est) / target
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: estimated ops %d vs target %d (ratio %.2f)", name, est, target, ratio)
		}
	}
}

func TestBehaviorCountMatchesTraits(t *testing.T) {
	p := MustGenerate("gcc", GenConfig{TargetOps: 500_000})
	workProcs := 0
	for _, proc := range p.Procs {
		if strings.HasPrefix(proc.Name, "work_") {
			workProcs++
		}
	}
	if workProcs != benchTraits["gcc"].behaviors {
		t.Fatalf("gcc has %d work procs, traits say %d", workProcs, benchTraits["gcc"].behaviors)
	}
}

func TestAppluHasSolverStructure(t *testing.T) {
	p := MustGenerate("applu", GenConfig{TargetOps: 500_000})
	solvers := 0
	for _, proc := range p.Procs {
		if strings.HasPrefix(proc.Name, "solve_") {
			solvers++
			// Each solver: one loop whose body has exactly 3 computes —
			// the structure that triggers loop distribution at O2.
			if len(proc.Body) != 1 {
				t.Fatalf("%s body has %d stmts", proc.Name, len(proc.Body))
			}
			loop, ok := proc.Body[0].(*Loop)
			if !ok {
				t.Fatalf("%s body is not a loop", proc.Name)
			}
			if len(loop.Body) != 3 {
				t.Fatalf("%s loop body has %d stmts, want 3", proc.Name, len(loop.Body))
			}
		}
	}
	if solvers != 5 {
		t.Fatalf("applu has %d solvers, want 5", solvers)
	}
}

func TestAmbiguousHelperPair(t *testing.T) {
	p := MustGenerate("gcc", GenConfig{TargetOps: 500_000})
	h0, h1 := p.ProcByName("helper_0"), p.ProcByName("helper_1")
	if h0 == nil || h1 == nil {
		t.Fatal("gcc lacks helper_0/helper_1")
	}
	l0 := h0.Body[0].(*Loop)
	l1 := h1.Body[0].(*Loop)
	if l0.Trip.Base != l1.Trip.Base {
		t.Fatalf("ambiguous pair trips differ: %d vs %d", l0.Trip.Base, l1.Trip.Base)
	}
}

func TestLoopIDsUniqueAndLinesMonotonic(t *testing.T) {
	p := MustGenerate("vortex", GenConfig{TargetOps: 500_000})
	seen := map[int]bool{}
	for _, l := range p.Loops() {
		if seen[l.ID] {
			t.Fatalf("duplicate loop ID %d", l.ID)
		}
		seen[l.ID] = true
		if l.Line <= 0 {
			t.Fatalf("loop %d has line %d", l.ID, l.Line)
		}
	}
}

func TestEveryBehaviorScheduled(t *testing.T) {
	// main's segments must cover every behavior at least once; otherwise a
	// source phase would never execute.
	for _, name := range []string{"gcc", "apsi", "perlbmk"} {
		p := MustGenerate(name, GenConfig{TargetOps: 500_000})
		called := map[int]bool{}
		for _, s := range p.Procs[0].Body {
			loop, ok := s.(*Loop)
			if !ok {
				continue
			}
			for _, inner := range loop.Body {
				if c, ok := inner.(*Call); ok {
					called[c.Callee] = true
				}
			}
		}
		for _, proc := range p.Procs {
			if strings.HasPrefix(proc.Name, "work_") && !called[proc.Index] {
				t.Errorf("%s: behavior %s never scheduled", name, proc.Name)
			}
		}
	}
}

func TestValidateCatchesRecursion(t *testing.T) {
	p := &Program{Name: "rec", Procs: []*Proc{
		{Index: 0, Name: "a", Line: 1, Body: []Stmt{&Call{Line: 2, Callee: 1}}},
		{Index: 1, Name: "b", Line: 3, Body: []Stmt{&Call{Line: 4, Callee: 0}}},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("recursion not caught: %v", err)
	}
}

func TestValidateCatchesBadStructures(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"empty name", &Program{Procs: []*Proc{{Index: 0, Name: "main", Line: 1}}}},
		{"no procs", &Program{Name: "x"}},
		{"bad index", &Program{Name: "x", Procs: []*Proc{{Index: 5, Name: "main", Line: 1}}}},
		{"dup names", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1}, {Index: 1, Name: "main", Line: 2}}}},
		{"oob call", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1, Body: []Stmt{&Call{Line: 2, Callee: 9}}}}}},
		{"empty mix", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1, Body: []Stmt{&Compute{Line: 2}}}}}},
		{"zero ws", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1, Body: []Stmt{
				&Compute{Line: 2, Ops: OpMix{Loads: 1}}}}}}},
		{"bad trip", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1, Body: []Stmt{
				&Loop{ID: 0, Line: 2, Trip: TripSpec{Base: 0},
					Body: []Stmt{&Compute{Line: 3, Ops: OpMix{IntOps: 1}}}}}}}}},
		{"empty loop", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1, Body: []Stmt{
				&Loop{ID: 0, Line: 2, Trip: TripSpec{Base: 1}}}}}}},
		{"dup loop id", &Program{Name: "x", Procs: []*Proc{
			{Index: 0, Name: "main", Line: 1, Body: []Stmt{
				&Loop{ID: 0, Line: 2, Trip: TripSpec{Base: 1},
					Body: []Stmt{&Compute{Line: 3, Ops: OpMix{IntOps: 1}}}},
				&Loop{ID: 0, Line: 4, Trip: TripSpec{Base: 1},
					Body: []Stmt{&Compute{Line: 5, Ops: OpMix{IntOps: 1}}}}}}}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestOpMixTotal(t *testing.T) {
	m := OpMix{IntOps: 1, FPOps: 2, Loads: 3, Stores: 4}
	if m.Total() != 10 {
		t.Fatalf("Total = %d", m.Total())
	}
}

func TestMemClassString(t *testing.T) {
	if MemStride.String() != "stride" || MemRandom.String() != "random" {
		t.Fatal("MemClass strings wrong")
	}
	if !strings.Contains(MemClass(9).String(), "9") {
		t.Fatal("unknown MemClass string")
	}
}

func TestStaticOps(t *testing.T) {
	stmts := []Stmt{
		&Compute{Line: 1, Ops: OpMix{IntOps: 5}},
		&Loop{ID: 0, Line: 2, Trip: TripSpec{Base: 100},
			Body: []Stmt{&Compute{Line: 3, Ops: OpMix{IntOps: 7}}}},
		&Call{Line: 4, Callee: 0},
	}
	// 5 + (7+1) + 1 = 14; static size ignores trip counts.
	if got := StaticOps(stmts); got != 14 {
		t.Fatalf("StaticOps = %d, want 14", got)
	}
}

func TestWsLadderWithinBenchmarksSpansCaches(t *testing.T) {
	// At least one benchmark must stress DRAM and one must fit in L1, or
	// the CPI spread the paper's figures rely on cannot appear.
	var sawTiny, sawHuge bool
	for _, tr := range benchTraits {
		for _, ws := range tr.wsLadder {
			if ws <= 32<<10 {
				sawTiny = true
			}
			if ws > 1<<20 {
				sawHuge = true
			}
		}
	}
	if !sawTiny || !sawHuge {
		t.Fatalf("ws ladders do not span cache hierarchy: tiny=%v huge=%v", sawTiny, sawHuge)
	}
}

func TestTripJitterBounds(t *testing.T) {
	for _, name := range Benchmarks() {
		p := MustGenerate(name, GenConfig{TargetOps: 300_000})
		for _, l := range p.Loops() {
			if l.Trip.Jitter >= l.Trip.Base {
				t.Fatalf("%s loop %d: jitter %d >= base %d", name, l.ID, l.Trip.Jitter, l.Trip.Base)
			}
		}
	}
}

func TestEstimateDynamicOpsAdditive(t *testing.T) {
	p := &Program{Name: "t", Procs: []*Proc{
		{Index: 0, Name: "main", Line: 1, Body: []Stmt{
			&Loop{ID: 0, Line: 2, Trip: TripSpec{Base: 10}, Body: []Stmt{
				&Compute{Line: 3, Ops: OpMix{IntOps: 3}},
				&Call{Line: 4, Callee: 1},
			}},
		}},
		{Index: 1, Name: "leaf", Line: 5, Body: []Stmt{
			&Compute{Line: 6, Ops: OpMix{IntOps: 2}},
		}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 * (3 + 8 + 2) = 130
	if got := EstimateDynamicOps(p); got != 130 {
		t.Fatalf("EstimateDynamicOps = %d, want 130", got)
	}
}

func TestSortedProcNames(t *testing.T) {
	p := MustGenerate("art", GenConfig{TargetOps: 300_000})
	names := SortedProcNames(p)
	if len(names) != len(p.Procs) {
		t.Fatal("name count mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestGenerateDefaultTargetOps(t *testing.T) {
	p := MustGenerate("gzip", GenConfig{})
	est := EstimateDynamicOps(p)
	if ratio := float64(est) / 10_000_000; math.Abs(math.Log2(ratio)) > 1.5 {
		t.Fatalf("default TargetOps estimate %d far from 10M", est)
	}
}
