// Package program defines the source-level intermediate representation
// shared by every binary of a benchmark, plus a deterministic generator
// that synthesizes SPEC2000-like benchmark programs.
//
// The paper compiles each SPEC2000 source program into four binaries
// (32/64-bit × unoptimized/optimized) and relies on one property: all four
// binaries execute the *same semantics*, so procedure call counts and loop
// trip counts are identical across binaries even though instruction counts
// differ. This package is the "source code": a tree of procedures, loops,
// calls, and straight-line compute blocks, annotated with source line
// numbers (the -g debug information the paper's mapping depends on).
// Lowering to binaries lives in internal/compiler; deterministic execution
// in internal/exec.
package program

import (
	"fmt"
)

// Program is a complete source program. Procs[0] is the entry procedure.
type Program struct {
	// Name identifies the benchmark (e.g. "gcc").
	Name string
	// Procs holds every procedure; Call statements refer to them by index.
	Procs []*Proc
}

// Proc is a procedure definition.
type Proc struct {
	// Index is this procedure's position in Program.Procs.
	Index int
	// Name is the source-level symbol name (survives into unoptimized
	// binaries' symbol tables).
	Name string
	// Line is the source line of the procedure definition.
	Line int
	// Body is the statement list executed on each call.
	Body []Stmt
}

// Stmt is a node in a procedure body: Compute, Loop, or Call.
type Stmt interface {
	// SourceLine returns the statement's source line number.
	SourceLine() int
	stmt()
}

// MemClass describes the locality pattern of a compute block's memory
// accesses.
type MemClass int

const (
	// MemStride walks the working set with a fixed stride (unit-stride
	// array sweeps and similar; high spatial locality when the stride is
	// small).
	MemStride MemClass = iota
	// MemRandom touches uniformly random lines within the working set
	// (pointer chasing, hash tables; no spatial locality).
	MemRandom
)

// String implements fmt.Stringer.
func (m MemClass) String() string {
	switch m {
	case MemStride:
		return "stride"
	case MemRandom:
		return "random"
	default:
		return fmt.Sprintf("MemClass(%d)", int(m))
	}
}

// MemPattern describes where and how a compute block touches memory.
type MemPattern struct {
	// Region is an abstract data-region identifier; distinct regions never
	// alias. Address generation places each region in its own segment.
	Region int
	// WorkingSet is the number of bytes the block's accesses sweep over.
	// Its relation to the cache capacities (32KB L1 / 512KB L2 / 1MB L3)
	// determines the block's memory behavior.
	WorkingSet uint64
	// Stride is the byte distance between consecutive accesses when Class
	// is MemStride; ignored for MemRandom.
	Stride uint64
	// Class selects the access pattern.
	Class MemClass
}

// OpMix is the abstract operation mix of one execution of a compute block.
// The compiler expands these into target instruction counts.
type OpMix struct {
	// IntOps is the number of integer ALU operations.
	IntOps int
	// FPOps is the number of floating-point operations.
	FPOps int
	// Loads is the number of memory reads.
	Loads int
	// Stores is the number of memory writes.
	Stores int
}

// Total returns the total abstract operation count.
func (m OpMix) Total() int { return m.IntOps + m.FPOps + m.Loads + m.Stores }

// Compute is a straight-line block of work.
type Compute struct {
	// Line is the source line.
	Line int
	// Ops is the operation mix per execution.
	Ops OpMix
	// Mem describes the memory behavior of Ops.Loads/Ops.Stores.
	Mem MemPattern
}

// SourceLine implements Stmt.
func (c *Compute) SourceLine() int { return c.Line }
func (c *Compute) stmt()           {}

// Loop executes Body a deterministic, input-dependent number of times.
type Loop struct {
	// ID is unique among all loops in the program; trip counts and debug
	// matching key off it.
	ID int
	// Line is the source line of the loop branch (the back edge carries
	// this line in debug info).
	Line int
	// Trip determines the iteration count; see exec.TripCount.
	Trip TripSpec
	// Body is executed once per iteration.
	Body []Stmt
}

// SourceLine implements Stmt.
func (l *Loop) SourceLine() int { return l.Line }
func (l *Loop) stmt()           {}

// TripSpec describes a loop's iteration count: Base iterations plus a
// deterministic input-dependent jitter in [-Jitter, +Jitter]. The realized
// count is a pure function of (input seed, loop ID, entry ordinal), so it
// is identical in every binary of the program — the invariant cross-binary
// mapping relies on.
type TripSpec struct {
	Base   int
	Jitter int
}

// Call invokes another procedure.
type Call struct {
	// Line is the source line of the call site.
	Line int
	// Callee is the callee's index in Program.Procs.
	Callee int
}

// SourceLine implements Stmt.
func (c *Call) SourceLine() int { return c.Line }
func (c *Call) stmt()           {}

// Input names a program input (the paper uses SPEC reference inputs). The
// seed drives all input-dependent trip-count jitter.
type Input struct {
	Name string
	Seed uint64
}

// Validate checks structural invariants: procedure indices consistent,
// callee indices in range, the call graph acyclic (the executor walks
// calls recursively and relies on termination), loop IDs unique, and all
// trip specs sane. It returns the first violation found.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("program: empty name")
	}
	if len(p.Procs) == 0 {
		return fmt.Errorf("program %s: no procedures", p.Name)
	}
	names := map[string]int{}
	for i, proc := range p.Procs {
		if proc == nil {
			return fmt.Errorf("program %s: nil proc %d", p.Name, i)
		}
		if proc.Index != i {
			return fmt.Errorf("program %s: proc %q has index %d at position %d", p.Name, proc.Name, proc.Index, i)
		}
		if proc.Name == "" {
			return fmt.Errorf("program %s: proc %d has empty name", p.Name, i)
		}
		if j, dup := names[proc.Name]; dup {
			return fmt.Errorf("program %s: duplicate proc name %q (procs %d and %d)", p.Name, proc.Name, j, i)
		}
		names[proc.Name] = i
	}
	loopIDs := map[int]bool{}
	for _, proc := range p.Procs {
		if err := p.validateStmts(proc.Body, loopIDs); err != nil {
			return fmt.Errorf("program %s: proc %q: %w", p.Name, proc.Name, err)
		}
	}
	return p.checkAcyclic()
}

func (p *Program) validateStmts(stmts []Stmt, loopIDs map[int]bool) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *Compute:
			if s.Ops.Total() <= 0 {
				return fmt.Errorf("compute at line %d has empty op mix", s.Line)
			}
			if s.Ops.IntOps < 0 || s.Ops.FPOps < 0 || s.Ops.Loads < 0 || s.Ops.Stores < 0 {
				return fmt.Errorf("compute at line %d has negative ops", s.Line)
			}
			if (s.Ops.Loads > 0 || s.Ops.Stores > 0) && s.Mem.WorkingSet == 0 {
				return fmt.Errorf("compute at line %d accesses memory with zero working set", s.Line)
			}
		case *Loop:
			if loopIDs[s.ID] {
				return fmt.Errorf("duplicate loop ID %d at line %d", s.ID, s.Line)
			}
			loopIDs[s.ID] = true
			if s.Trip.Base <= 0 {
				return fmt.Errorf("loop %d has non-positive base trip %d", s.ID, s.Trip.Base)
			}
			if s.Trip.Jitter < 0 || s.Trip.Jitter >= s.Trip.Base {
				return fmt.Errorf("loop %d jitter %d out of range for base %d", s.ID, s.Trip.Jitter, s.Trip.Base)
			}
			if len(s.Body) == 0 {
				return fmt.Errorf("loop %d has empty body", s.ID)
			}
			if err := p.validateStmts(s.Body, loopIDs); err != nil {
				return err
			}
		case *Call:
			if s.Callee < 0 || s.Callee >= len(p.Procs) {
				return fmt.Errorf("call at line %d to out-of-range proc %d", s.Line, s.Callee)
			}
		default:
			return fmt.Errorf("unknown statement type %T", s)
		}
	}
	return nil
}

// checkAcyclic verifies the call graph has no cycles.
func (p *Program) checkAcyclic() error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, len(p.Procs))
	var visit func(i int) error
	var visitStmts func(stmts []Stmt) error
	visitStmts = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Loop:
				if err := visitStmts(s.Body); err != nil {
					return err
				}
			case *Call:
				if err := visit(s.Callee); err != nil {
					return err
				}
			}
		}
		return nil
	}
	visit = func(i int) error {
		switch state[i] {
		case inStack:
			return fmt.Errorf("program %s: recursive call cycle through proc %q", p.Name, p.Procs[i].Name)
		case done:
			return nil
		}
		state[i] = inStack
		if err := visitStmts(p.Procs[i].Body); err != nil {
			return err
		}
		state[i] = done
		return nil
	}
	for i := range p.Procs {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// Loops returns every loop in the program in a deterministic order
// (procedure order, then pre-order within bodies).
func (p *Program) Loops() []*Loop {
	var out []*Loop
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			if l, ok := s.(*Loop); ok {
				out = append(out, l)
				walk(l.Body)
			}
		}
	}
	for _, proc := range p.Procs {
		walk(proc.Body)
	}
	return out
}

// ProcByName returns the procedure with the given name, or nil.
func (p *Program) ProcByName(name string) *Proc {
	for _, proc := range p.Procs {
		if proc.Name == name {
			return proc
		}
	}
	return nil
}

// StaticOps returns the total abstract op count of a single execution of
// the statement list, counting loop bodies once (a static size metric used
// by the compiler's inlining heuristic).
func StaticOps(stmts []Stmt) int {
	total := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *Compute:
			total += s.Ops.Total()
		case *Loop:
			total += StaticOps(s.Body) + 1
		case *Call:
			total += 1
		}
	}
	return total
}
