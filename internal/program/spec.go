package program

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"xbsim/internal/xrand"
)

// Spec is a fully-explicit generator configuration: the trait set the
// fixed benchmark table hard-codes, in exported and serializable form,
// plus scale. Specs are the substrate of the metamorphic self-check
// harness (internal/invariant): they are drawn from a seeded
// distribution (RandomSpec), round-tripped through a compact byte
// encoding (Encode / SpecFromBytes) that doubles as the fuzz-corpus
// format, and synthesized into programs (GenerateSpec) whose
// cross-binary invariants are then checked mechanically.
//
// A Spec is only meaningful in canonical form; Normalize maps every
// field into the generator's supported ranges. All constructors here
// (RandomSpec, SpecFromBytes) return canonical specs.
type Spec struct {
	// Variant salts the generated program, so otherwise-identical trait
	// sets still produce structurally distinct programs.
	Variant uint64
	// TargetOps is the approximate abstract operation count of a full
	// run, as in GenConfig.
	TargetOps uint64
	// Behaviors is the number of distinct behavior procedures.
	Behaviors int
	// Segments is the number of top-level time segments in main.
	Segments int
	// FPFrac is the fraction of non-memory ops that are floating point,
	// quantized to percents.
	FPFrac float64
	// MemFrac is the fraction of ops that access memory, quantized to
	// percents.
	MemFrac float64
	// RandomMem is the probability a behavior uses pointer-chasing
	// accesses, quantized to percents.
	RandomMem float64
	// WSLadder are candidate working-set sizes in bytes, each a power of
	// two in [1KiB, 32MiB].
	WSLadder []uint64
	// Inlinees is the number of small O2-inlinable helper procedures.
	Inlinees int
	// AmbiguousPair makes two inlinee helpers share a trip count (the
	// paper's N == M ambiguity); it requires Inlinees >= 2.
	AmbiguousPair bool
	// PDEStyle builds the applu-like solver structure that destroys
	// mappability over large regions at O2.
	PDEStyle bool
}

// Spec field ranges. Behaviors beyond maxSpecBehaviors add generation
// and profiling cost without new structure; ops outside the window are
// either too small to form intervals or needlessly slow for a harness
// that runs dozens of programs.
const (
	minSpecOps       = 60_000
	maxSpecOps       = 4_000_000
	defaultSpecOps   = 250_000
	maxSpecBehaviors = 16
	maxSpecSegments  = 48
	maxSpecInlinees  = 5
	maxSpecLadder    = 5
	minSpecWSLog2    = 10 // 1 KiB
	maxSpecWSLog2    = 25 // 32 MiB
)

// Normalize returns the spec with every field wrapped into its valid
// range (out-of-range values wrap around rather than saturate, so
// arbitrary fuzz bytes still explore the whole space) and fractions
// quantized to percents. Normalize is idempotent.
func (s Spec) Normalize() Spec {
	if s.TargetOps == 0 {
		s.TargetOps = defaultSpecOps
	}
	s.TargetOps %= maxSpecOps + 1
	if s.TargetOps < minSpecOps {
		s.TargetOps += minSpecOps
	}
	s.Behaviors = wrapRange(s.Behaviors, 1, maxSpecBehaviors)
	s.Segments = wrapRange(s.Segments, 1, maxSpecSegments)
	s.FPFrac = wrapPct(s.FPFrac)
	s.MemFrac = wrapPct(s.MemFrac)
	s.RandomMem = wrapPct(s.RandomMem)
	s.Inlinees = wrapRange(s.Inlinees, 0, maxSpecInlinees)
	if len(s.WSLadder) == 0 {
		s.WSLadder = []uint64{64 << 10}
	}
	if len(s.WSLadder) > maxSpecLadder {
		s.WSLadder = s.WSLadder[:maxSpecLadder]
	}
	ladder := make([]uint64, len(s.WSLadder))
	for i, ws := range s.WSLadder {
		ladder[i] = uint64(1) << wrapRange(log2Floor(ws), minSpecWSLog2, maxSpecWSLog2)
	}
	s.WSLadder = ladder
	if s.Inlinees < 2 {
		s.AmbiguousPair = false
	}
	return s
}

// wrapRange maps v into [lo, hi] by wrapping (identity when already in
// range).
func wrapRange(v, lo, hi int) int {
	span := hi - lo + 1
	v = (v - lo) % span
	if v < 0 {
		v += span
	}
	return lo + v
}

// wrapPct quantizes a fraction to percents and wraps it into [0, 1].
func wrapPct(f float64) float64 {
	pct := int(f*100 + 0.5)
	return float64(wrapRange(pct, 0, 100)) / 100
}

// log2Floor returns floor(log2(v)), with 0 for v == 0.
func log2Floor(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Validate reports the first field outside the generator's supported
// ranges. Canonical specs (from Normalize) always validate.
func (s Spec) Validate() error {
	switch {
	case s.TargetOps < minSpecOps || s.TargetOps > maxSpecOps:
		return fmt.Errorf("program: spec ops %d outside [%d, %d]", s.TargetOps, minSpecOps, maxSpecOps)
	case s.Behaviors < 1 || s.Behaviors > maxSpecBehaviors:
		return fmt.Errorf("program: spec behaviors %d outside [1, %d]", s.Behaviors, maxSpecBehaviors)
	case s.Segments < 1 || s.Segments > maxSpecSegments:
		return fmt.Errorf("program: spec segments %d outside [1, %d]", s.Segments, maxSpecSegments)
	case s.FPFrac < 0 || s.FPFrac > 1:
		return fmt.Errorf("program: spec fp fraction %v outside [0, 1]", s.FPFrac)
	case s.MemFrac < 0 || s.MemFrac > 1:
		return fmt.Errorf("program: spec mem fraction %v outside [0, 1]", s.MemFrac)
	case s.RandomMem < 0 || s.RandomMem > 1:
		return fmt.Errorf("program: spec random-mem probability %v outside [0, 1]", s.RandomMem)
	case len(s.WSLadder) == 0 || len(s.WSLadder) > maxSpecLadder:
		return fmt.Errorf("program: spec working-set ladder has %d entries, want 1..%d", len(s.WSLadder), maxSpecLadder)
	case s.Inlinees < 0 || s.Inlinees > maxSpecInlinees:
		return fmt.Errorf("program: spec inlinees %d outside [0, %d]", s.Inlinees, maxSpecInlinees)
	case s.AmbiguousPair && s.Inlinees < 2:
		return fmt.Errorf("program: spec ambiguous pair needs >= 2 inlinees, have %d", s.Inlinees)
	}
	for i, ws := range s.WSLadder {
		l := log2Floor(ws)
		if ws != uint64(1)<<l || l < minSpecWSLog2 || l > maxSpecWSLog2 {
			return fmt.Errorf("program: spec working set %d (%d bytes) not a power of two in [1KiB, 32MiB]", i, ws)
		}
	}
	return nil
}

// RandomSpec draws the index-th spec of the seed's deterministic
// distribution. The same (seed, index) always yields the same spec, and
// every spec is canonical. The distribution deliberately covers the
// structural corners of the fixed benchmark table: single-behavior
// programs, behavior counts beyond the phase cap, ambiguous inlinee
// pairs, and the applu-style PDE structure.
func RandomSpec(seed uint64, index int) Spec {
	rng := xrand.NewFromUint64(seed).SplitIndexed("program/spec", index)
	s := Spec{
		Variant:   rng.Uint64(),
		TargetOps: minSpecOps + uint64(rng.Intn(10))*60_000,
		Behaviors: rng.IntRange(1, maxSpecBehaviors),
		Segments:  rng.IntRange(4, 40),
		FPFrac:    float64(rng.IntRange(0, 90)) / 100,
		MemFrac:   float64(rng.IntRange(5, 50)) / 100,
		RandomMem: float64(rng.IntRange(0, 100)) / 100,
		Inlinees:  rng.IntRange(0, maxSpecInlinees),
		PDEStyle:  rng.Bool(0.15),
	}
	s.WSLadder = make([]uint64, rng.IntRange(1, maxSpecLadder))
	for i := range s.WSLadder {
		s.WSLadder[i] = uint64(1) << rng.IntRange(minSpecWSLog2, maxSpecWSLog2)
	}
	if s.Inlinees >= 2 {
		s.AmbiguousPair = rng.Bool(0.4)
	}
	return s.Normalize()
}

// specMagic marks the first byte of an encoded spec; decoding tolerates
// its absence so arbitrary fuzz inputs remain decodable.
const (
	specMagic   = 0x78 // 'x'
	specVersion = 1
)

// Encode serializes the spec in the compact fixed-layout byte format
// shared by the fuzz corpus. SpecFromBytes(s.Encode()) == s.Normalize().
func (s Spec) Encode() []byte {
	s = s.Normalize()
	buf := make([]byte, 0, 26+len(s.WSLadder))
	buf = append(buf, specMagic, specVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.Variant)
	buf = binary.LittleEndian.AppendUint64(buf, s.TargetOps)
	var flags byte
	if s.AmbiguousPair {
		flags |= 1
	}
	if s.PDEStyle {
		flags |= 2
	}
	buf = append(buf,
		byte(s.Behaviors),
		byte(s.Segments),
		byte(int(s.FPFrac*100+0.5)),
		byte(int(s.MemFrac*100+0.5)),
		byte(int(s.RandomMem*100+0.5)),
		byte(s.Inlinees),
		flags,
		byte(len(s.WSLadder)),
	)
	for _, ws := range s.WSLadder {
		buf = append(buf, byte(log2Floor(ws)))
	}
	return buf
}

// byteReader consumes an encoded spec, yielding zeros once exhausted so
// every byte string — in particular fuzz-mutated ones — decodes.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *byteReader) uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.byte()) << (8 * i)
	}
	return v
}

// SpecFromBytes decodes an encoded spec. It is a total function: any
// byte string yields a canonical spec (missing fields default, wild
// values wrap into range), which is what makes it usable as the decoder
// in native fuzz targets. It inverts Encode on canonical specs.
func SpecFromBytes(data []byte) Spec {
	r := &byteReader{data: data}
	if len(data) >= 2 && data[0] == specMagic {
		r.pos = 2 // skip magic + version
	}
	s := Spec{
		Variant:   r.uint64(),
		TargetOps: r.uint64(),
		Behaviors: int(r.byte()),
		Segments:  int(r.byte()),
		FPFrac:    float64(r.byte()) / 100,
		MemFrac:   float64(r.byte()) / 100,
		RandomMem: float64(r.byte()) / 100,
		Inlinees:  int(r.byte()),
	}
	flags := r.byte()
	s.AmbiguousPair = flags&1 != 0
	s.PDEStyle = flags&2 != 0
	n := wrapRange(int(r.byte()), 1, maxSpecLadder)
	s.WSLadder = make([]uint64, n)
	for i := range s.WSLadder {
		s.WSLadder[i] = uint64(1) << wrapRange(int(r.byte()), minSpecWSLog2, maxSpecWSLog2)
	}
	return s.Normalize()
}

// Name returns the spec's deterministic program name, derived from its
// canonical encoding.
func (s Spec) Name() string {
	h := fnv.New64a()
	_, _ = h.Write(s.Encode())
	return fmt.Sprintf("spec-%016x", h.Sum64())
}

// GenerateSpec synthesizes the program a spec describes. The same spec
// always produces the identical program. Non-canonical specs are
// normalized first.
func GenerateSpec(s Spec) (*Program, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tr := traits{
		behaviors:     s.Behaviors,
		segments:      s.Segments,
		fpFrac:        s.FPFrac,
		memFrac:       s.MemFrac,
		randomMem:     s.RandomMem,
		wsLadder:      append([]uint64(nil), s.WSLadder...),
		inlinees:      s.Inlinees,
		ambiguousPair: s.AmbiguousPair,
		pdeStyle:      s.PDEStyle,
	}
	return generate(s.Name(), tr, GenConfig{TargetOps: s.TargetOps}.withDefaults())
}
