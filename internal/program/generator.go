package program

import (
	"fmt"
	"sort"

	"xbsim/internal/xrand"
)

// benchmarkNames is the SPEC2000 subset the paper evaluates (Figures 1-5).
var benchmarkNames = []string{
	"ammp", "applu", "apsi", "art", "bzip2", "crafty", "eon", "equake",
	"fma3d", "gcc", "gzip", "lucas", "mcf", "mesa", "perlbmk", "sixtrack",
	"swim", "twolf", "vortex", "vpr", "wupwise",
}

// Benchmarks returns the names of all synthesizable benchmarks, in the
// paper's order.
func Benchmarks() []string {
	return append([]string(nil), benchmarkNames...)
}

// traits captures the behavioral profile a synthesized benchmark imitates.
// Values are chosen per benchmark to echo the broad character of the real
// SPEC program: floating-point vs integer, streaming vs pointer-chasing
// memory, few large phases vs many irregular ones.
type traits struct {
	// behaviors is the number of distinct behavior procedures (phases at
	// the source level). Benchmarks with behaviors > the SimPoint cluster
	// cap (10) exercise the paper's "more behaviors than allowed phases"
	// grouping problem.
	behaviors int
	// segments is the number of top-level time segments in main.
	segments int
	// fpFrac is the fraction of non-memory ops that are floating point.
	fpFrac float64
	// memFrac is the fraction of ops that access memory.
	memFrac float64
	// randomMem is the probability a behavior uses pointer-chasing
	// (random) rather than strided accesses.
	randomMem float64
	// wsLadder are candidate working-set sizes in bytes; behaviors draw
	// from these, which positions them against the 32KB/512KB/1MB caches.
	wsLadder []uint64
	// inlinees is the number of small helper procedures that are inlining
	// candidates at O2 (their loops exercise the inlined-loop mapping
	// heuristic).
	inlinees int
	// ambiguousPair, when true, makes two inlinee helpers share identical
	// trip counts — the paper's N == M case where the heuristic must give
	// up.
	ambiguousPair bool
	// pdeStyle, when true, builds applu's failure structure: a main loop
	// calling five similar small solver procedures whose 3-statement loop
	// bodies trigger inlining plus loop distribution at O2, destroying
	// mappability over large regions.
	pdeStyle bool
}

var (
	// kb returns bytes for KiB.
	kb = func(n uint64) uint64 { return n << 10 }
	mb = func(n uint64) uint64 { return n << 20 }
)

// benchTraits assigns traits per benchmark. The table is deliberately
// explicit so the synthetic suite is reviewable at a glance.
var benchTraits = map[string]traits{
	"ammp":     {behaviors: 5, segments: 22, fpFrac: 0.7, memFrac: 0.30, randomMem: 0.4, wsLadder: []uint64{kb(24), kb(192), mb(4)}, inlinees: 1},
	"applu":    {behaviors: 5, segments: 18, fpFrac: 0.8, memFrac: 0.32, randomMem: 0.0, wsLadder: []uint64{kb(96), kb(700), mb(8)}, pdeStyle: true},
	"apsi":     {behaviors: 8, segments: 26, fpFrac: 0.75, memFrac: 0.28, randomMem: 0.1, wsLadder: []uint64{kb(16), kb(256), mb(2), mb(12)}, inlinees: 2},
	"art":      {behaviors: 3, segments: 16, fpFrac: 0.65, memFrac: 0.40, randomMem: 0.2, wsLadder: []uint64{mb(2), mb(4)}, inlinees: 1},
	"bzip2":    {behaviors: 6, segments: 24, fpFrac: 0.02, memFrac: 0.35, randomMem: 0.5, wsLadder: []uint64{kb(24), kb(384), mb(6)}, inlinees: 2},
	"crafty":   {behaviors: 7, segments: 28, fpFrac: 0.01, memFrac: 0.30, randomMem: 0.6, wsLadder: []uint64{kb(8), kb(48), kb(192)}, inlinees: 3},
	"eon":      {behaviors: 6, segments: 20, fpFrac: 0.5, memFrac: 0.26, randomMem: 0.3, wsLadder: []uint64{kb(16), kb(96)}, inlinees: 3},
	"equake":   {behaviors: 4, segments: 18, fpFrac: 0.7, memFrac: 0.38, randomMem: 0.3, wsLadder: []uint64{kb(512), mb(8)}, inlinees: 1},
	"fma3d":    {behaviors: 9, segments: 26, fpFrac: 0.72, memFrac: 0.30, randomMem: 0.2, wsLadder: []uint64{kb(32), kb(512), mb(4)}, inlinees: 2},
	"gcc":      {behaviors: 14, segments: 40, fpFrac: 0.03, memFrac: 0.33, randomMem: 0.55, wsLadder: []uint64{kb(8), kb(64), kb(384), mb(2), mb(10)}, inlinees: 4, ambiguousPair: true},
	"gzip":     {behaviors: 4, segments: 20, fpFrac: 0.01, memFrac: 0.34, randomMem: 0.3, wsLadder: []uint64{kb(64), kb(256)}, inlinees: 1},
	"lucas":    {behaviors: 3, segments: 14, fpFrac: 0.85, memFrac: 0.30, randomMem: 0.0, wsLadder: []uint64{mb(2), mb(16)}},
	"mcf":      {behaviors: 3, segments: 16, fpFrac: 0.02, memFrac: 0.45, randomMem: 0.9, wsLadder: []uint64{mb(8), mb(24)}, inlinees: 1},
	"mesa":     {behaviors: 7, segments: 24, fpFrac: 0.6, memFrac: 0.28, randomMem: 0.2, wsLadder: []uint64{kb(16), kb(128), kb(700)}, inlinees: 2},
	"perlbmk":  {behaviors: 11, segments: 34, fpFrac: 0.03, memFrac: 0.33, randomMem: 0.5, wsLadder: []uint64{kb(16), kb(96), kb(512), mb(3)}, inlinees: 3, ambiguousPair: true},
	"sixtrack": {behaviors: 6, segments: 20, fpFrac: 0.8, memFrac: 0.25, randomMem: 0.05, wsLadder: []uint64{kb(24), kb(256)}, inlinees: 1},
	"swim":     {behaviors: 3, segments: 14, fpFrac: 0.82, memFrac: 0.36, randomMem: 0.0, wsLadder: []uint64{mb(4), mb(16)}},
	"twolf":    {behaviors: 6, segments: 24, fpFrac: 0.05, memFrac: 0.34, randomMem: 0.7, wsLadder: []uint64{kb(32), kb(256), mb(1)}, inlinees: 2},
	"vortex":   {behaviors: 8, segments: 28, fpFrac: 0.02, memFrac: 0.36, randomMem: 0.6, wsLadder: []uint64{kb(48), kb(384), mb(4)}, inlinees: 3},
	"vpr":      {behaviors: 5, segments: 22, fpFrac: 0.15, memFrac: 0.33, randomMem: 0.5, wsLadder: []uint64{kb(24), kb(192), mb(2)}, inlinees: 2},
	"wupwise":  {behaviors: 4, segments: 16, fpFrac: 0.8, memFrac: 0.28, randomMem: 0.1, wsLadder: []uint64{kb(128), mb(2)}, inlinees: 1},
}

// GenConfig scales a generated benchmark.
type GenConfig struct {
	// TargetOps is the approximate total abstract operation count of a
	// full run (before the compiler's target-specific instruction
	// expansion). <= 0 means 10 million.
	TargetOps uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.TargetOps == 0 {
		c.TargetOps = 10_000_000
	}
	return c
}

// Generate synthesizes the named benchmark. The same (name, config) always
// produces the identical program. It returns an error for unknown names.
func Generate(name string, cfg GenConfig) (*Program, error) {
	tr, ok := benchTraits[name]
	if !ok {
		return nil, fmt.Errorf("program: unknown benchmark %q (see Benchmarks())", name)
	}
	return generate(name, tr, cfg.withDefaults())
}

// generate runs the generator for an arbitrary trait set — the shared
// core of the fixed benchmark table (Generate) and randomized specs
// (GenerateSpec).
func generate(name string, tr traits, cfg GenConfig) (*Program, error) {
	g := &generator{
		name: name,
		tr:   tr,
		cfg:  cfg,
		rng:  xrand.New("program/" + name),
		prog: &Program{Name: name},
	}
	g.build()
	if err := g.prog.Validate(); err != nil {
		return nil, fmt.Errorf("program: generated %s is invalid: %w", name, err)
	}
	return g.prog, nil
}

// MustGenerate is Generate that panics on error, for tests and examples
// using known benchmark names.
func MustGenerate(name string, cfg GenConfig) *Program {
	p, err := Generate(name, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

type generator struct {
	name string
	tr   traits
	cfg  GenConfig
	rng  *xrand.Stream
	prog *Program

	nextLine   int
	nextLoopID int
	nextRegion int
}

func (g *generator) line() int {
	g.nextLine += g.rng.IntRange(1, 4)
	return g.nextLine
}

func (g *generator) loopID() int {
	id := g.nextLoopID
	g.nextLoopID++
	return id
}

func (g *generator) region() int {
	r := g.nextRegion
	g.nextRegion++
	return r
}

func (g *generator) addProc(name string, body []Stmt) *Proc {
	p := &Proc{Index: len(g.prog.Procs), Name: name, Line: g.line(), Body: body}
	g.prog.Procs = append(g.prog.Procs, p)
	return p
}

// build assembles: main (proc 0, body filled last), behavior procedures,
// inlinee helpers, and — for pdeStyle — the solver procedures.
func (g *generator) build() {
	main := g.addProc("main", nil)

	// Inlinee helpers: small procedures whose bodies fall under the O2
	// inlining threshold. Their loops get distinct trip counts so the
	// inlined-loop heuristic can map them by count; the ambiguous pair
	// shares a count (N == M).
	var helpers []*Proc
	for i := 0; i < g.tr.inlinees; i++ {
		trip := 5 + 3*i // distinct per helper
		if g.tr.ambiguousPair && i == 1 {
			trip = 5 // same as helper 0: ambiguous
		}
		body := []Stmt{
			&Loop{
				ID:   g.loopID(),
				Line: g.line(),
				Trip: TripSpec{Base: trip},
				Body: []Stmt{g.compute(g.smallMix(6), g.memPattern(kb(8), false))},
			},
		}
		helpers = append(helpers, g.addProc(fmt.Sprintf("helper_%d", i), body))
	}

	// pdeStyle solver procedures (the applu case): five similar small
	// procedures, each a loop over THREE compute statements. At O2 the
	// compiler inlines them (small bodies) and distributes the loop
	// (>= 3 statements), destroying the call/loop structure.
	var solvers []*Proc
	if g.tr.pdeStyle {
		for i := 0; i < 5; i++ {
			mem := g.memPattern(g.tr.wsLadder[i%len(g.tr.wsLadder)], false)
			body := []Stmt{
				&Loop{
					ID:   g.loopID(),
					Line: g.line(),
					Trip: TripSpec{Base: 10 + i, Jitter: 1},
					Body: []Stmt{
						g.compute(g.smallMix(4), mem),
						g.compute(g.smallMix(4), mem),
						g.compute(g.smallMix(4), mem),
					},
				},
			}
			solvers = append(solvers, g.addProc(fmt.Sprintf("solve_%d", i), body))
		}
	}

	// Assign each helper to exactly ONE behavior (single call site): the
	// paper's count-based inlined-loop heuristic identifies an inlined
	// loop by its call count, which requires one inlined clone carrying
	// the full count. The ambiguous pair both land in behavior 0, so
	// their clones have identical counts (the N == M case).
	helperOf := make(map[int][]*Proc) // behavior index -> helpers it calls
	for h, helper := range helpers {
		b := h % g.tr.behaviors
		if g.tr.ambiguousPair && h == 1 {
			b = 0
		}
		helperOf[b] = append(helperOf[b], helper)
	}

	// Behavior procedures: each is a distinct phase at the source level,
	// with its own data region, working set, access pattern, and op mix.
	var behaviors []*Proc
	for i := 0; i < g.tr.behaviors; i++ {
		behaviors = append(behaviors, g.behaviorProc(i, helperOf[i], solvers))
	}

	// main: a sequence of time segments. Each segment repeatedly calls one
	// behavior; the schedule revisits behaviors (periodic phase behavior)
	// so SimPoint sees recurring signatures.
	schedule := g.schedule(len(behaviors))
	perSegmentOps := float64(g.cfg.TargetOps) / float64(len(schedule))
	var mainBody []Stmt
	for _, b := range schedule {
		callOps := float64(g.dynOps(behaviors[b].Body))
		trips := int(perSegmentOps/callOps + 0.5)
		if trips < 1 {
			trips = 1
		}
		jitter := trips / 12
		mainBody = append(mainBody, &Loop{
			ID:   g.loopID(),
			Line: g.line(),
			Trip: TripSpec{Base: trips, Jitter: jitter},
			Body: []Stmt{&Call{Line: g.line(), Callee: behaviors[b].Index}},
		})
	}
	main.Body = mainBody
}

// schedule produces the per-segment behavior assignment: a repeating
// pattern over all behaviors with occasional random substitutions, so every
// behavior appears and phases recur over time.
func (g *generator) schedule(behaviors int) []int {
	rng := g.rng.Split("schedule")
	out := make([]int, g.tr.segments)
	for i := range out {
		if rng.Bool(0.2) {
			out[i] = rng.Intn(behaviors)
		} else {
			out[i] = i % behaviors
		}
	}
	// Guarantee every behavior appears at least once.
	seen := make([]bool, behaviors)
	for _, b := range out {
		seen[b] = true
	}
	next := 0
	for b, ok := range seen {
		if !ok {
			// Overwrite a slot that duplicates its predecessor's behavior
			// if possible, otherwise a round-robin slot.
			idx := next % len(out)
			next++
			out[idx] = b
		}
	}
	return out
}

// behaviorProc builds behavior procedure i: an outer loop over {pre-work,
// inner hot loop, post-work}, plus calls to assigned helpers/solvers.
func (g *generator) behaviorProc(i int, helpers, solvers []*Proc) *Proc {
	rng := g.rng.SplitIndexed("behavior", i)
	ws := g.tr.wsLadder[i%len(g.tr.wsLadder)]
	random := rng.Bool(g.tr.randomMem)
	mem := g.memPattern(ws, random)

	if g.tr.pdeStyle && len(solvers) > 0 {
		return g.pdeBehaviorProc(i, rng, mem, solvers)
	}

	innerTrips := rng.IntRange(12, 48)
	outerTrips := rng.IntRange(4, 10)

	hot := g.compute(g.mix(rng, 24, 64), mem)
	inner := &Loop{
		ID:   g.loopID(),
		Line: g.line(),
		Trip: TripSpec{Base: innerTrips, Jitter: innerTrips / 10},
		Body: []Stmt{hot},
	}

	body := []Stmt{g.compute(g.mix(rng, 6, 18), g.memPattern(kb(8), false)), inner}
	// Calls to this behavior's assigned inlinee helpers (exactly one call
	// site per helper).
	for _, h := range helpers {
		body = append(body, &Call{Line: g.line(), Callee: h.Index})
	}
	body = append(body, g.compute(g.mix(rng, 4, 12), g.memPattern(kb(8), false)))

	outer := &Loop{
		ID:   g.loopID(),
		Line: g.line(),
		Trip: TripSpec{Base: outerTrips, Jitter: outerTrips / 8},
		Body: body,
	}
	// A fat once-per-call prologue keeps every behavior procedure above
	// the O2 inline threshold (work procedures must keep their symbols;
	// only the small helpers/solvers are inlining fodder). It is executed
	// once per call, so it is dynamically negligible.
	prologue := g.compute(g.mix(rng, 70, 90), g.memPattern(kb(8), false))
	return g.addProc(fmt.Sprintf("work_%d", i), []Stmt{prologue, outer})
}

// pdeBehaviorProc builds the applu-style behavior: a single big loop whose
// body is solver calls bracketed by computes — no inner loop structure.
// At O2 the solvers are inlined (and their loops distributed) and the big
// loop itself, containing >= 2 inlined calls, is restructured, so the
// entire region between behavior calls has no mappable markers. Combined
// with a large trip count this makes cross-binary intervals in applu far
// larger than the target size (the Figure 2 outlier).
func (g *generator) pdeBehaviorProc(i int, rng *xrand.Stream, mem MemPattern, solvers []*Proc) *Proc {
	// The behavior's own compute work must carry enough BBV weight for
	// SimPoint to tell behaviors apart; the solver calls execute shared
	// code that looks identical across behaviors in the unoptimized
	// (primary) binary.
	body := []Stmt{g.compute(g.mix(rng, 40, 70), mem)}
	for _, s := range solvers {
		body = append(body, &Call{Line: g.line(), Callee: s.Index})
	}
	body = append(body, g.compute(g.mix(rng, 40, 70), mem))

	// Size one behavior call to span several target-size intervals: aim
	// for ~1/(4*segments) of the whole run per call.
	iterOps := g.dynOps(body)
	targetCall := g.cfg.TargetOps / uint64(4*g.tr.segments)
	outerTrips := int(targetCall / iterOps)
	if outerTrips < 8 {
		outerTrips = 8
	}
	outer := &Loop{
		ID:   g.loopID(),
		Line: g.line(),
		Trip: TripSpec{Base: outerTrips, Jitter: outerTrips / 10},
		Body: body,
	}
	// Same rationale as in behaviorProc: keep the symbol at O2.
	prologue := g.compute(g.mix(rng, 70, 90), g.memPattern(kb(8), false))
	return g.addProc(fmt.Sprintf("work_%d", i), []Stmt{prologue, outer})
}

// mix draws an op mix of total size in [lo, hi] following the benchmark's
// fp/memory fractions.
func (g *generator) mix(rng *xrand.Stream, lo, hi int) OpMix {
	total := rng.IntRange(lo, hi)
	memOps := int(float64(total) * g.tr.memFrac)
	loads := memOps * 2 / 3
	stores := memOps - loads
	rest := total - memOps
	fp := int(float64(rest) * g.tr.fpFrac)
	return OpMix{IntOps: rest - fp, FPOps: fp, Loads: loads, Stores: stores}
}

// smallMix is a fixed-shape tiny mix used by helpers and solvers.
func (g *generator) smallMix(total int) OpMix {
	mem := total / 3
	if mem < 1 {
		mem = 1
	}
	fp := int(float64(total-mem) * g.tr.fpFrac)
	return OpMix{IntOps: total - mem - fp, FPOps: fp, Loads: mem, Stores: 0}
}

func (g *generator) memPattern(ws uint64, random bool) MemPattern {
	class := MemStride
	var stride uint64 = 8
	if random {
		class = MemRandom
		stride = 0
	}
	return MemPattern{Region: g.region(), WorkingSet: ws, Stride: stride, Class: class}
}

func (g *generator) compute(ops OpMix, mem MemPattern) *Compute {
	if ops.Loads == 0 && ops.Stores == 0 {
		mem = MemPattern{}
	}
	return &Compute{Line: g.line(), Ops: ops, Mem: mem}
}

// dynOps estimates the abstract ops executed by one run of the statement
// list using base trip counts, resolving calls through already-constructed
// procedures. The generator uses it to size main's segment loops.
func (g *generator) dynOps(stmts []Stmt) uint64 {
	var total uint64
	for _, s := range stmts {
		switch s := s.(type) {
		case *Compute:
			total += uint64(s.Ops.Total())
		case *Loop:
			total += uint64(s.Trip.Base) * g.dynOps(s.Body)
		case *Call:
			total += 8 + g.dynOps(g.prog.Procs[s.Callee].Body)
		}
	}
	return total
}

// EstimateDynamicOps estimates total abstract ops for a full run of the
// program, resolving calls through the program. Exposed for sizing checks.
func EstimateDynamicOps(p *Program) uint64 {
	memo := make([]uint64, len(p.Procs))
	done := make([]bool, len(p.Procs))
	var procOps func(i int) uint64
	var stmtsOps func(stmts []Stmt) uint64
	stmtsOps = func(stmts []Stmt) uint64 {
		var total uint64
		for _, s := range stmts {
			switch s := s.(type) {
			case *Compute:
				total += uint64(s.Ops.Total())
			case *Loop:
				total += uint64(s.Trip.Base) * stmtsOps(s.Body)
			case *Call:
				total += 8 + procOps(s.Callee)
			}
		}
		return total
	}
	procOps = func(i int) uint64 {
		if done[i] {
			return memo[i]
		}
		done[i] = true // call graph is acyclic (validated)
		memo[i] = stmtsOps(p.Procs[i].Body)
		return memo[i]
	}
	return procOps(0)
}

// SortedProcNames returns the program's procedure names sorted, a
// convenience for diagnostics and tests.
func SortedProcNames(p *Program) []string {
	names := make([]string, len(p.Procs))
	for i, proc := range p.Procs {
		names[i] = proc.Name
	}
	sort.Strings(names)
	return names
}
