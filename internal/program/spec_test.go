package program

import (
	"reflect"
	"testing"
)

func TestRandomSpecDeterministicAndCanonical(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := RandomSpec(7, i)
		b := RandomSpec(7, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %d not deterministic:\n%+v\n%+v", i, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		if !reflect.DeepEqual(a, a.Normalize()) {
			t.Fatalf("spec %d not canonical: %+v vs %+v", i, a, a.Normalize())
		}
	}
	if reflect.DeepEqual(RandomSpec(7, 0), RandomSpec(8, 0)) {
		t.Fatal("different seeds produced identical specs")
	}
	if reflect.DeepEqual(RandomSpec(7, 0), RandomSpec(7, 1)) {
		t.Fatal("different indices produced identical specs")
	}
}

func TestSpecEncodeRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		s := RandomSpec(3, i)
		got := SpecFromBytes(s.Encode())
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("spec %d round trip:\nwant %+v\ngot  %+v", i, s, got)
		}
	}
}

func TestSpecFromBytesTotal(t *testing.T) {
	// Any byte string — empty, short, garbage — must decode to a valid
	// canonical spec: this is the property the fuzz targets rely on.
	inputs := [][]byte{
		nil,
		{},
		{0},
		{0xFF},
		{0x78, 0x01},
		{0x78, 0x01, 0xFF, 0xFF, 0xFF},
		make([]byte, 3),
		make([]byte, 200),
	}
	for i := 0; i < 30; i++ {
		b := RandomSpec(11, i).Encode()
		b[len(b)-1] ^= 0xA5 // corrupt the tail
		inputs = append(inputs, b)
	}
	for i, in := range inputs {
		s := SpecFromBytes(in)
		if err := s.Validate(); err != nil {
			t.Fatalf("input %d: decoded spec invalid: %v (%+v)", i, err, s)
		}
		if !reflect.DeepEqual(s, s.Normalize()) {
			t.Fatalf("input %d: decoded spec not canonical", i)
		}
	}
}

func TestSpecNormalizeWraps(t *testing.T) {
	s := Spec{
		TargetOps: maxSpecOps + 123,
		Behaviors: -3,
		Segments:  1000,
		FPFrac:    2.5,
		MemFrac:   -0.2,
		RandomMem: 1.7,
		WSLadder:  []uint64{0, 3, 1 << 40, 777},
		Inlinees:  99,
	}
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		t.Fatalf("normalized spec invalid: %v (%+v)", err, n)
	}
	if !reflect.DeepEqual(n, n.Normalize()) {
		t.Fatal("Normalize not idempotent")
	}
	if n.AmbiguousPair && n.Inlinees < 2 {
		t.Fatal("ambiguous pair kept without enough inlinees")
	}
}

func TestGenerateSpecDeterministicAndValid(t *testing.T) {
	for i := 0; i < 8; i++ {
		s := RandomSpec(1, i)
		p1, err := GenerateSpec(s)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		p2, err := GenerateSpec(s)
		if err != nil {
			t.Fatalf("spec %d second generation: %v", i, err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("spec %d: generation not deterministic", i)
		}
		if err := p1.Validate(); err != nil {
			t.Fatalf("spec %d: generated program invalid: %v", i, err)
		}
		if p1.Name != s.Name() {
			t.Fatalf("spec %d: program name %q, want %q", i, p1.Name, s.Name())
		}
	}
}

func TestGenerateSpecDistinctPrograms(t *testing.T) {
	names := map[string]bool{}
	for i := 0; i < 20; i++ {
		names[RandomSpec(5, i).Name()] = true
	}
	if len(names) < 19 {
		t.Fatalf("only %d distinct names over 20 random specs", len(names))
	}
}

func TestGenerateSpecStructuralCorners(t *testing.T) {
	base := RandomSpec(2, 0)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"single-behavior", func(s *Spec) { s.Behaviors = 1; s.Segments = 1 }},
		{"many-behaviors", func(s *Spec) { s.Behaviors = maxSpecBehaviors; s.Segments = 4 }},
		{"ambiguous-pair", func(s *Spec) { s.Inlinees = 2; s.AmbiguousPair = true }},
		{"pde-style", func(s *Spec) { s.PDEStyle = true }},
		{"no-memory", func(s *Spec) { s.MemFrac = 0 }},
		{"all-fp", func(s *Spec) { s.FPFrac = 1.0 }},
		{"min-ops", func(s *Spec) { s.TargetOps = minSpecOps }},
	}
	for _, tc := range cases {
		s := base
		s.WSLadder = append([]uint64(nil), base.WSLadder...)
		tc.mutate(&s)
		s = s.Normalize()
		p, err := GenerateSpec(s)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: program invalid: %v", tc.name, err)
		}
	}
}
