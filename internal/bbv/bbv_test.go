package bbv

import (
	"math"
	"testing"
	"testing/quick"

	"xbsim/internal/xrand"
)

func TestVectorAdd(t *testing.T) {
	v := NewVector()
	v.Add(3, 10, 5) // block 3, 10 executions, 5 instructions each
	v.Add(7, 2, 4)
	v.Add(3, 1, 5)
	if got := v.Instructions(); got != 10*5+2*4+1*5 {
		t.Fatalf("Instructions = %d", got)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	idx, vals := v.Sparse()
	if len(idx) != 2 || idx[0] != 3 || idx[1] != 7 {
		t.Fatalf("Sparse indices %v", idx)
	}
	if vals[0] != 55 || vals[1] != 8 {
		t.Fatalf("Sparse values %v", vals)
	}
}

func TestVectorAddZeroExecutions(t *testing.T) {
	v := NewVector()
	v.Add(1, 0, 100)
	if v.Len() != 0 || v.Instructions() != 0 {
		t.Fatal("zero executions should not record anything")
	}
}

func TestVectorResetAndClone(t *testing.T) {
	v := NewVector()
	v.Add(1, 1, 1)
	c := v.Clone()
	v.Reset()
	if v.Len() != 0 || v.Instructions() != 0 {
		t.Fatal("Reset did not clear vector")
	}
	if c.Len() != 1 || c.Instructions() != 1 {
		t.Fatal("Clone affected by Reset")
	}
}

func TestVectorSumEqualsInstructions(t *testing.T) {
	rng := xrand.New("bbv-sum")
	f := func(nRaw uint8) bool {
		v := NewVector()
		n := int(nRaw%50) + 1
		for i := 0; i < n; i++ {
			v.Add(rng.Intn(100), uint64(rng.Intn(20)), rng.Intn(10)+1)
		}
		_, vals := v.Sparse()
		var sum float64
		for _, x := range vals {
			sum += x
		}
		return math.Abs(sum-float64(v.Instructions())) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func buildDataset(t *testing.T, intervals int) *Dataset {
	t.Helper()
	rng := xrand.New("bbv-dataset")
	d := NewDataset()
	v := NewVector()
	for i := 0; i < intervals; i++ {
		v.Reset()
		for j := 0; j < 20; j++ {
			v.Add(rng.Intn(500), uint64(rng.Intn(50)+1), rng.Intn(8)+1)
		}
		d.Append(v)
	}
	return d
}

func TestDatasetAppendClones(t *testing.T) {
	d := NewDataset()
	v := NewVector()
	v.Add(0, 1, 1)
	d.Append(v)
	v.Reset()
	v.Add(5, 9, 9)
	if d.Vector(0).Len() != 1 || d.Vector(0).Instructions() != 1 {
		t.Fatal("Append did not clone; later mutation leaked in")
	}
}

func TestDatasetLengths(t *testing.T) {
	d := buildDataset(t, 10)
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	var total uint64
	for i, l := range d.Lengths() {
		if l != d.Vector(i).Instructions() {
			t.Fatalf("length %d mismatch", i)
		}
		total += l
	}
	if total != d.TotalInstructions() {
		t.Fatal("TotalInstructions mismatch")
	}
	w := d.Weights()
	for i := range w {
		if w[i] != float64(d.Lengths()[i]) {
			t.Fatalf("weight %d mismatch", i)
		}
	}
}

func TestProjectShapes(t *testing.T) {
	d := buildDataset(t, 12)
	rows, err := d.Project(15, xrand.New("proj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 15 {
			t.Fatalf("row dim = %d", len(r))
		}
	}
}

func TestProjectEmptyDataset(t *testing.T) {
	d := NewDataset()
	if _, err := d.Project(15, xrand.New("x")); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestProjectEmptyIntervalRejected(t *testing.T) {
	d := NewDataset()
	d.Append(NewVector()) // empty interval
	if _, err := d.Project(15, xrand.New("x")); err == nil {
		t.Fatal("expected error for empty interval")
	}
}

func TestProjectDeterministic(t *testing.T) {
	d := buildDataset(t, 6)
	a, err := d.Project(15, xrand.New("same-seed"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Project(15, xrand.New("same-seed"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("projection not deterministic at [%d][%d]", i, j)
			}
		}
	}
}

func TestProjectScaleInvariance(t *testing.T) {
	// Two intervals executing the same code mix at different lengths must
	// project to (almost) the same point: that is the purpose of L1
	// normalization for variable length intervals.
	d := NewDataset()
	a := NewVector()
	a.Add(1, 10, 4)
	a.Add(2, 30, 2)
	d.Append(a)
	b := NewVector()
	b.Add(1, 1000, 4)
	b.Add(2, 3000, 2)
	d.Append(b)
	rows, err := d.Project(8, xrand.New("scale"))
	if err != nil {
		t.Fatal(err)
	}
	for j := range rows[0] {
		if math.Abs(rows[0][j]-rows[1][j]) > 1e-9 {
			t.Fatalf("scaled intervals project differently at dim %d: %v vs %v",
				j, rows[0][j], rows[1][j])
		}
	}
}

func TestProjectSmallDimensionality(t *testing.T) {
	// When there are fewer static blocks than the projection dimension the
	// dataset clamps outDim instead of projecting up.
	d := NewDataset()
	v := NewVector()
	v.Add(0, 1, 1)
	v.Add(1, 2, 1)
	d.Append(v)
	rows, err := d.Project(15, xrand.New("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 2 {
		t.Fatalf("expected clamped dim 2, got %d", len(rows[0]))
	}
}

func TestMaxBlockID(t *testing.T) {
	d := NewDataset()
	if d.MaxBlockID() != -1 {
		t.Fatal("empty dataset MaxBlockID should be -1")
	}
	v := NewVector()
	v.Add(41, 1, 1)
	d.Append(v)
	if d.MaxBlockID() != 41 {
		t.Fatalf("MaxBlockID = %d", d.MaxBlockID())
	}
}
