package bbv

import (
	"fmt"
	"io"
	"math"

	"xbsim/internal/vecmath"
	"xbsim/internal/xrand"
)

// SimilarityMatrix computes the pairwise Euclidean distance matrix of the
// dataset's intervals after L1 normalization and random projection to dim
// dimensions — the data behind the similarity-matrix plots of Sherwood et
// al. (PACT 2001) that first motivated SimPoint: dark off-diagonal bands
// reveal recurring program phases.
//
// The result is symmetric with a zero diagonal, normalized to [0, 1] by
// the maximum observed distance (all-zero when every interval is
// identical).
func (d *Dataset) SimilarityMatrix(dim int, rng *xrand.Stream) ([][]float64, error) {
	rows, err := d.Project(dim, rng)
	if err != nil {
		return nil, err
	}
	n := len(rows)
	m := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n]
	}
	maxDist := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := vecmath.Distance(rows[i], rows[j])
			m[i][j], m[j][i] = dist, dist
			if dist > maxDist {
				maxDist = dist
			}
		}
	}
	if maxDist > 0 {
		for i := range flat {
			flat[i] /= maxDist
		}
	}
	return m, nil
}

// shades maps normalized distance to a character: similar intervals are
// dark, dissimilar light — matching the convention of the original plots.
var shades = []byte("@#*+:-. ")

// WriteSimilarityMatrix renders a (normalized) distance matrix as an
// ASCII heat map, downsampled to at most maxDim rows/columns. Execution
// runs top-to-bottom and left-to-right, so phase structure shows up as
// dark square blocks on the diagonal and dark off-diagonal bands where
// behavior recurs.
func WriteSimilarityMatrix(w io.Writer, m [][]float64, maxDim int) error {
	n := len(m)
	if n == 0 {
		return fmt.Errorf("bbv: empty similarity matrix")
	}
	if maxDim <= 0 {
		maxDim = 64
	}
	size := n
	if size > maxDim {
		size = maxDim
	}
	if _, err := fmt.Fprintf(w, "interval similarity (%dx%d, dark = similar):\n", n, n); err != nil {
		return err
	}
	for r := 0; r < size; r++ {
		line := make([]byte, size)
		for c := 0; c < size; c++ {
			// Average the cell's source region.
			rLo, rHi := r*n/size, (r+1)*n/size
			cLo, cHi := c*n/size, (c+1)*n/size
			var sum float64
			cnt := 0
			for i := rLo; i < rHi; i++ {
				for j := cLo; j < cHi; j++ {
					sum += m[i][j]
					cnt++
				}
			}
			v := sum / float64(cnt)
			idx := int(v * float64(len(shades)))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[c] = shades[idx]
		}
		if _, err := fmt.Fprintf(w, "  %s\n", line); err != nil {
			return err
		}
	}
	if math.IsNaN(m[0][0]) {
		return fmt.Errorf("bbv: NaN in similarity matrix")
	}
	return nil
}
