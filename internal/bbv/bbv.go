// Package bbv implements basic block vectors (BBVs), the interval
// signatures SimPoint clusters.
//
// A BBV is a frequency vector with one dimension per static basic block of
// a binary. While an interval of execution is profiled, each dynamic entry
// into basic block b adds size(b) — the block's instruction count — to
// dimension b (Sherwood et al., "Basic block distribution analysis", PACT
// 2001). Before clustering, each vector is normalized to L1 norm 1 so that
// intervals of different lengths (variable length intervals) remain
// comparable, and then randomly projected to a low dimension.
package bbv

import (
	"fmt"
	"sort"

	"xbsim/internal/fingerprint"
	"xbsim/internal/vecmath"
	"xbsim/internal/xrand"
)

// Vector is a sparse basic block vector under construction. Keys are static
// basic block IDs, values are instruction-weighted execution counts.
type Vector struct {
	counts map[int]float64
	// instructions is the total dynamic instruction count accumulated into
	// this vector; for BBVs built with Add(block, executions, blockSize)
	// this equals the sum of the values in counts.
	instructions uint64
}

// NewVector returns an empty vector.
func NewVector() *Vector {
	return &Vector{counts: make(map[int]float64)}
}

// Add records that basic block `block` (containing blockSize instructions)
// executed `executions` times in this interval.
func (v *Vector) Add(block int, executions uint64, blockSize int) {
	if executions == 0 {
		return
	}
	v.counts[block] += float64(executions) * float64(blockSize)
	v.instructions += executions * uint64(blockSize)
}

// Instructions returns the total dynamic instructions accumulated.
func (v *Vector) Instructions() uint64 { return v.instructions }

// Len returns the number of distinct basic blocks touched.
func (v *Vector) Len() int { return len(v.counts) }

// Reset clears the vector for reuse.
func (v *Vector) Reset() {
	clear(v.counts)
	v.instructions = 0
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := &Vector{counts: make(map[int]float64, len(v.counts)), instructions: v.instructions}
	for k, val := range v.counts {
		c.counts[k] = val
	}
	return c
}

// Sparse returns the vector's non-zero entries as parallel index/value
// slices sorted by index.
func (v *Vector) Sparse() (indices []int, values []float64) {
	indices = make([]int, 0, len(v.counts))
	for k := range v.counts {
		indices = append(indices, k)
	}
	sort.Ints(indices)
	values = make([]float64, len(indices))
	for i, k := range indices {
		values[i] = v.counts[k]
	}
	return indices, values
}

// Fingerprint returns a short deterministic content digest of the
// vector: the sparse (block, weight) pairs in index order plus the
// accumulated instruction count, hashed bit-exactly. Two intervals share
// a fingerprint exactly when they executed an identical instruction-
// weighted block mix — the interval half of the redundancy analyzer's
// (interval, cache-config) evaluation key.
func (v *Vector) Fingerprint() string {
	indices, values := v.Sparse()
	h := fingerprint.New()
	h.Uint64(v.instructions)
	h.Ints(indices)
	h.Float64s(values)
	return h.Sum()
}

// Dataset is an ordered collection of interval BBVs plus the interval
// lengths (dynamic instruction counts), ready to be normalized, projected,
// and clustered. For fixed length intervals the lengths are all (about)
// equal; for variable length intervals they differ and are used as
// clustering weights, as in SimPoint 3.0.
type Dataset struct {
	vectors []*Vector
	lengths []uint64
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{}
}

// Append adds an interval's vector to the dataset. The vector is cloned, so
// the caller may Reset and reuse it.
func (d *Dataset) Append(v *Vector) {
	d.vectors = append(d.vectors, v.Clone())
	d.lengths = append(d.lengths, v.Instructions())
}

// Len returns the number of intervals.
func (d *Dataset) Len() int { return len(d.vectors) }

// Lengths returns the per-interval dynamic instruction counts. The returned
// slice is owned by the dataset; callers must not modify it.
func (d *Dataset) Lengths() []uint64 { return d.lengths }

// TotalInstructions returns the sum of all interval lengths.
func (d *Dataset) TotalInstructions() uint64 {
	var total uint64
	for _, l := range d.lengths {
		total += l
	}
	return total
}

// Vector returns interval i's raw (unnormalized) vector.
func (d *Dataset) Vector(i int) *Vector { return d.vectors[i] }

// MaxBlockID returns the largest basic block ID present across all
// intervals, or -1 for an empty dataset.
func (d *Dataset) MaxBlockID() int {
	maxID := -1
	for _, v := range d.vectors {
		for k := range v.counts {
			if k > maxID {
				maxID = k
			}
		}
	}
	return maxID
}

// Project normalizes every interval vector to L1 norm 1 and projects it to
// outDim dimensions with a random projection drawn from rng. It returns one
// dense row per interval. Empty intervals (no instructions) are rejected
// with an error because they cannot be normalized.
func (d *Dataset) Project(outDim int, rng *xrand.Stream) ([][]float64, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("bbv: empty dataset")
	}
	for i, v := range d.vectors {
		if v.instructions == 0 {
			return nil, fmt.Errorf("bbv: interval %d is empty", i)
		}
	}
	inDim := d.MaxBlockID() + 1
	if inDim < outDim {
		// Projecting up is pointless; keep native dimensionality by using
		// an identity-like embedding via a square projection. Still random
		// so tests exercise the same code path.
		outDim = inDim
	}
	proj := vecmath.NewProjection(inDim, outDim, rng)
	rows := make([][]float64, d.Len())
	for i, v := range d.vectors {
		if v.instructions == 0 {
			return nil, fmt.Errorf("bbv: interval %d is empty", i)
		}
		idx, vals := v.Sparse()
		// L1-normalize the sparse values before projecting; projection is
		// linear so this equals projecting then scaling, but normalizing
		// first keeps magnitudes uniform.
		var norm float64
		for _, x := range vals {
			norm += x
		}
		for j := range vals {
			vals[j] /= norm
		}
		rows[i] = proj.ApplySparse(idx, vals)
	}
	return rows, nil
}

// Weights returns the interval lengths as float64 clustering weights.
func (d *Dataset) Weights() []float64 {
	w := make([]float64, len(d.lengths))
	for i, l := range d.lengths {
		w[i] = float64(l)
	}
	return w
}
