package bbv

import (
	"math"
	"strings"
	"testing"

	"xbsim/internal/xrand"
)

// phasedDatasetForSim alternates two disjoint code signatures A and B.
func phasedDatasetForSim(n int) *Dataset {
	ds := NewDataset()
	v := NewVector()
	for i := 0; i < n; i++ {
		v.Reset()
		base := (i / 4 % 2) * 100 // blocks 0.. or 100.. in alternating groups of 4
		for b := 0; b < 6; b++ {
			v.Add(base+b, uint64(50+10*b), 2)
		}
		ds.Append(v)
	}
	return ds
}

func TestSimilarityMatrixProperties(t *testing.T) {
	ds := phasedDatasetForSim(16)
	m, err := ds.SimilarityMatrix(8, xrand.New("sim"))
	if err != nil {
		t.Fatal(err)
	}
	n := len(m)
	if n != 16 {
		t.Fatalf("matrix size %d", n)
	}
	maxSeen := 0.0
	for i := 0; i < n; i++ {
		if m[i][i] != 0 {
			t.Fatalf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
		for j := 0; j < n; j++ {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetric at [%d][%d]", i, j)
			}
			if m[i][j] < 0 || m[i][j] > 1 || math.IsNaN(m[i][j]) {
				t.Fatalf("value out of [0,1]: %v", m[i][j])
			}
			if m[i][j] > maxSeen {
				maxSeen = m[i][j]
			}
		}
	}
	if maxSeen != 1 {
		t.Fatalf("max normalized distance %v, want 1", maxSeen)
	}
	// Same-phase intervals (0 and 1) must be far more similar than
	// cross-phase intervals (0 and 4).
	if m[0][1] >= m[0][4] {
		t.Fatalf("same-phase distance %v not below cross-phase %v", m[0][1], m[0][4])
	}
}

func TestSimilarityMatrixIdenticalIntervals(t *testing.T) {
	ds := NewDataset()
	v := NewVector()
	for i := 0; i < 4; i++ {
		v.Reset()
		v.Add(0, 10, 3)
		ds.Append(v)
	}
	m, err := ds.SimilarityMatrix(4, xrand.New("flat"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != 0 {
				t.Fatalf("identical intervals differ at [%d][%d]", i, j)
			}
		}
	}
}

func TestWriteSimilarityMatrix(t *testing.T) {
	ds := phasedDatasetForSim(32)
	m, err := ds.SimilarityMatrix(8, xrand.New("render"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSimilarityMatrix(&sb, m, 16); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 17 { // header + 16 rows
		t.Fatalf("%d lines rendered", len(lines))
	}
	// The diagonal must render as the darkest shade.
	if !strings.Contains(lines[1], "@") {
		t.Fatalf("first row lacks a dark diagonal cell: %q", lines[1])
	}
	if err := WriteSimilarityMatrix(&sb, nil, 16); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestWriteSimilarityMatrixDownsamples(t *testing.T) {
	ds := phasedDatasetForSim(64)
	m, err := ds.SimilarityMatrix(8, xrand.New("down"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSimilarityMatrix(&sb, m, 8); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("%d lines for downsampled render", len(lines))
	}
	if got := len(strings.TrimPrefix(lines[1], "  ")); got != 8 {
		t.Fatalf("row width %d, want 8", got)
	}
}
