// Package report renders the experiment's figures and tables as aligned
// ASCII, mirroring the artifacts in the paper: bar-chart figures become
// labeled rows with proportional bars, and the phase-bias tables become
// the side-by-side layout of Tables 2 and 3.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"xbsim/internal/cmpsim"
	"xbsim/internal/experiment"
	"xbsim/internal/obs"
)

// barWidth is the maximum bar length in characters.
const barWidth = 40

// Figure renders a figure as rows of labeled, scaled bars plus the
// numeric value.
func Figure(w io.Writer, f *experiment.Figure) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	maxVal := 0.0
	for _, s := range f.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	nameWidth := 0
	for _, s := range f.Series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	for i, label := range f.RowLabels {
		if _, err := fmt.Fprintf(w, "%s\n", label); err != nil {
			return err
		}
		for _, s := range f.Series {
			v := s.Values[i]
			bar := ""
			if maxVal > 0 && !math.IsNaN(v) {
				bar = strings.Repeat("#", int(v/maxVal*barWidth+0.5))
			}
			if _, err := fmt.Fprintf(w, "  %-*s %12s |%s\n",
				nameWidth, s.Name, formatValue(v, f.YLabel), bar); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// formatValue renders values per axis type: errors as percentages,
// instruction counts with thousands grouping, counts plainly.
func formatValue(v float64, yLabel string) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case strings.Contains(yLabel, "error"):
		return fmt.Sprintf("%.2f%%", v*100)
	case strings.Contains(yLabel, "instructions"):
		return groupThousands(uint64(v + 0.5))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// groupThousands formats 1234567 as "1,234,567".
func groupThousands(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

// PhaseBias renders a Table 2/3-style comparison: the two methods stacked,
// each with the two binaries' largest phases side by side.
func PhaseBias(w io.Writer, tables []experiment.PhaseBias) error {
	if len(tables) == 0 {
		return fmt.Errorf("report: no phase tables")
	}
	head := tables[0]
	if _, err := fmt.Fprintf(w, "Phase comparison for %s: %s vs %s\n",
		head.Benchmark, head.BinaryA, head.BinaryB); err != nil {
		return err
	}
	const rowFmt = "  %-4s %-6s | %6s %9s %8s %8s | %6s %9s %8s %8s\n"
	if _, err := fmt.Fprintf(w, rowFmt, "", "Phase",
		"Weight", "True CPI", "SP CPI", "CPI Err",
		"Weight", "True CPI", "SP CPI", "CPI Err"); err != nil {
		return err
	}
	for _, tb := range tables {
		n := len(tb.RowsA)
		if len(tb.RowsB) > n {
			n = len(tb.RowsB)
		}
		for i := 0; i < n; i++ {
			method := ""
			if i == 0 {
				method = tb.Method
			}
			a := cells(tb.RowsA, i)
			b := cells(tb.RowsB, i)
			label := "-"
			if i < len(tb.RowsA) {
				label = fmt.Sprintf("%d", tb.RowsA[i].Phase+1)
			} else if i < len(tb.RowsB) {
				label = fmt.Sprintf("%d", tb.RowsB[i].Phase+1)
			}
			if _, err := fmt.Fprintf(w, rowFmt, method, label,
				a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// cells formats one phase row's four columns, or dashes when absent.
func cells(rows []experiment.PhaseRow, i int) [4]string {
	if i >= len(rows) {
		return [4]string{"-", "-", "-", "-"}
	}
	r := rows[i]
	sp := "-"
	if !math.IsNaN(r.SPCPI) {
		sp = fmt.Sprintf("%.2f", r.SPCPI)
	}
	return [4]string{
		fmt.Sprintf("%.2f", r.Weight),
		fmt.Sprintf("%.2f", r.TrueCPI),
		sp,
		fmt.Sprintf("%+.1f%%", r.Error*100),
	}
}

// Table1 renders the memory system configuration table.
func Table1(w io.Writer, cfg cmpsim.HierarchyConfig) error {
	if _, err := fmt.Fprintln(w, "TABLE 1 — Memory System Configuration"); err != nil {
		return err
	}
	const rowFmt = "  %-10s %9s %14s %10s %12s %10s\n"
	if _, err := fmt.Fprintf(w, rowFmt,
		"Cache", "Capacity", "Associativity", "Line Size", "Hit Latency", "Type"); err != nil {
		return err
	}
	for _, l := range cfg.Levels {
		if _, err := fmt.Fprintf(w, rowFmt, l.Name,
			byteSize(l.CapacityBytes),
			fmt.Sprintf("%d-way", l.Associativity),
			fmt.Sprintf("%d bytes", l.LineSize),
			fmt.Sprintf("%d cycles", l.HitLatency),
			"WriteBack"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, rowFmt, "DRAM", "", "", "",
		fmt.Sprintf("%d cycles", cfg.MemoryLatency), "")
	return err
}

// byteSize renders capacities in KB as the paper does.
func byteSize(b uint64) string {
	return fmt.Sprintf("%dKB", b>>10)
}

// PhaseTimeline renders a phase-per-interval sequence as a fixed-width
// strip (the classic SimPoint phase visualization): execution runs left
// to right, each column shows the dominant phase letter of that slice of
// intervals. A legend with per-phase interval counts follows.
func PhaseTimeline(w io.Writer, phaseOf []int, width int) error {
	if len(phaseOf) == 0 {
		return fmt.Errorf("report: empty phase sequence")
	}
	if width <= 0 {
		width = 64
	}
	if width > len(phaseOf) {
		width = len(phaseOf)
	}
	letter := func(p int) byte {
		if p < 26 {
			return byte('A' + p)
		}
		return '?'
	}
	var strip []byte
	counts := map[int]int{}
	for _, p := range phaseOf {
		counts[p]++
	}
	for col := 0; col < width; col++ {
		lo := col * len(phaseOf) / width
		hi := (col + 1) * len(phaseOf) / width
		if hi <= lo {
			hi = lo + 1
		}
		// Dominant phase in this slice.
		local := map[int]int{}
		best, bestN := phaseOf[lo], 0
		for _, p := range phaseOf[lo:hi] {
			local[p]++
			if local[p] > bestN {
				best, bestN = p, local[p]
			}
		}
		strip = append(strip, letter(best))
	}
	if _, err := fmt.Fprintf(w, "phases over execution (%d intervals):\n  |%s|\n",
		len(phaseOf), strip); err != nil {
		return err
	}
	var phases []int
	for p := range counts {
		phases = append(phases, p)
	}
	sort.Ints(phases)
	for _, p := range phases {
		if _, err := fmt.Fprintf(w, "  %c = phase %d (%d intervals, %.1f%%)\n",
			letter(p), p, counts[p], float64(counts[p])/float64(len(phaseOf))*100); err != nil {
			return err
		}
	}
	return nil
}

// Ablation renders an ablation study as an aligned table.
func Ablation(w io.Writer, t *experiment.AblationTable) error {
	if _, err := fmt.Fprintln(w, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-18s", ""); err != nil {
		return err
	}
	for _, c := range t.Columns {
		if _, err := fmt.Fprintf(w, " %22s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "  %-18s", r.Label); err != nil {
			return err
		}
		for _, v := range r.Values {
			if _, err := fmt.Fprintf(w, " %22.4f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// SamplerComparison renders the cross-backend comparison table: one row
// per (backend, budget) configuration, CPI error against the simulated
// instruction budget each method paid for it.
func SamplerComparison(w io.Writer, cmp *experiment.SamplerComparison) error {
	if cmp == nil || len(cmp.Rows) == 0 {
		return fmt.Errorf("report: empty sampler comparison")
	}
	if _, err := fmt.Fprintf(w, "SAMPLER COMPARISON — CPI error vs simulated-instruction budget (%d benchmark(s))\n",
		len(cmp.Benchmarks)); err != nil {
		return err
	}
	const rowFmt = "  %-12s %6s %7s | %8s %13s %9s | %8s %13s %9s%s\n"
	if _, err := fmt.Fprintf(w, rowFmt, "backend", "budget", "points",
		"FLI err", "FLI sim", "FLI cost",
		"VLI err", "VLI sim", "VLI cost", ""); err != nil {
		return err
	}
	for _, r := range cmp.Rows {
		budget := "-"
		if r.Budget > 0 {
			budget = fmt.Sprintf("%d", r.Budget)
		}
		note := ""
		if r.Failures > 0 {
			note = fmt.Sprintf("  (%d failed)", r.Failures)
		}
		if _, err := fmt.Fprintf(w, rowFmt, r.Backend, budget,
			fmt.Sprintf("%d/%d", r.FLIPoints, r.VLIPoints),
			fmt.Sprintf("%.2f%%", r.FLIMeanCPIError*100),
			groupThousands(r.FLISimulatedInstructions),
			fmt.Sprintf("%.2f%%", r.FLISimulatedFraction*100),
			fmt.Sprintf("%.2f%%", r.VLIMeanCPIError*100),
			groupThousands(r.VLISimulatedInstructions),
			fmt.Sprintf("%.2f%%", r.VLISimulatedFraction*100),
			note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "  (points are FLI/VLI totals across binaries; cost is simulated instructions over total)")
	return err
}

// BenchmarkDetail renders one benchmark's complete results: the
// per-binary CPI table with both methods, the four speedup pairs, and the
// cross-binary phase timeline.
func BenchmarkDetail(w io.Writer, r *experiment.BenchmarkResult) error {
	if _, err := fmt.Fprintf(w, "== %s (%d mappable points, primary %s)\n",
		r.Name, len(r.Mapping.Points), r.Runs[r.Primary].Binary.Name); err != nil {
		return err
	}
	const rowFmt = "  %-12s %13s %10s %10s %8s %10s %8s\n"
	if _, err := fmt.Fprintf(w, rowFmt, "binary", "instructions",
		"true CPI", "FLI est", "err", "VLI est", "err"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, rowFmt,
			run.Binary.Name,
			groupThousands(run.TotalInstructions),
			fmt.Sprintf("%.3f", run.TrueCPI),
			fmt.Sprintf("%.3f", run.FLI.EstCPI),
			fmt.Sprintf("%.1f%%", run.FLI.CPIError*100),
			fmt.Sprintf("%.3f", run.VLI.EstCPI),
			fmt.Sprintf("%.1f%%", run.VLI.CPIError*100)); err != nil {
			return err
		}
	}
	pairs := append(append([]experiment.Pair{}, experiment.SamePlatformPairs...),
		experiment.CrossPlatformPairs...)
	const pairFmt = "  %-8s %10s %12s %8s %12s %8s\n"
	if _, err := fmt.Fprintf(w, pairFmt, "pair", "true",
		"FLI est", "err", "VLI est", "err"); err != nil {
		return err
	}
	for _, p := range pairs {
		if _, err := fmt.Fprintf(w, pairFmt, p.Name,
			fmt.Sprintf("%.3f", r.TrueSpeedup(p)),
			fmt.Sprintf("%.3f", r.EstimatedSpeedup(p, false)),
			fmt.Sprintf("%.1f%%", r.SpeedupError(p, false)*100),
			fmt.Sprintf("%.3f", r.EstimatedSpeedup(p, true)),
			fmt.Sprintf("%.1f%%", r.SpeedupError(p, true)*100)); err != nil {
			return err
		}
	}
	// Cross-binary phase timeline (phases are shared across binaries).
	if err := PhaseTimeline(w, phaseSequence(&r.Runs[r.Primary].VLI), 72); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// phaseSequence extracts the interval-to-phase labels from a method's
// stats. MethodStats does not retain PhaseOf directly, so it is rebuilt
// from the representative structure when available; falls back to a
// weight-proportional synthetic strip.
func phaseSequence(ms *experiment.MethodStats) []int {
	if len(ms.PhaseOf) > 0 {
		return ms.PhaseOf
	}
	// Synthetic fallback: contiguous runs proportional to weights.
	var seq []int
	for p, w := range ms.PhaseWeights {
		n := int(w*float64(ms.NumIntervals) + 0.5)
		for i := 0; i < n; i++ {
			seq = append(seq, p)
		}
	}
	return seq
}

// SuiteDetail renders BenchmarkDetail for every benchmark in the suite.
func SuiteDetail(w io.Writer, s *experiment.Suite) error {
	for _, r := range s.Results {
		if err := BenchmarkDetail(w, r); err != nil {
			return err
		}
	}
	return nil
}

// Suite renders the whole evaluation: Table 1, all five figures, and the
// Table 2/3 phase comparisons (when their benchmarks are in the suite).
func Suite(w io.Writer, s *experiment.Suite) error {
	if err := Table1(w, s.Config.Hierarchy); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, f := range s.Figures() {
		if err := Figure(w, f); err != nil {
			return err
		}
	}
	// Table 2: gcc 32u vs 64u; Table 3: apsi 32o vs 64o.
	for _, spec := range []struct {
		bench string
		pair  experiment.Pair
	}{
		{"gcc", experiment.Pair{Name: "32u64u", A: 0, B: 2}},
		{"apsi", experiment.Pair{Name: "32o64o", A: 1, B: 3}},
	} {
		if s.ByName(spec.bench) == nil {
			continue
		}
		tables, err := s.PhaseBiasTables(spec.bench, spec.pair, 3)
		if err != nil {
			return err
		}
		if err := PhaseBias(w, tables); err != nil {
			return err
		}
	}
	return Failures(w, s.Failures)
}

// Failures renders the failure appendix of a partial suite: the
// benchmarks that did not complete, listed explicitly so a degraded run
// is never mistaken for a full one. An empty list writes nothing, so
// reports of complete suites are unchanged.
func Failures(w io.Writer, failures []experiment.BenchmarkFailure) error {
	if len(failures) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "FAILED BENCHMARKS (%d) — the results above are partial\n", len(failures)); err != nil {
		return err
	}
	for _, f := range failures {
		if _, err := fmt.Fprintf(w, "  %-10s %s\n", f.Name, f.Err); err != nil {
			return err
		}
	}
	return nil
}

// Appendix renders the observability appendix — the stage-timing tree and
// the metrics snapshot recorded while the suite ran. A nil observer writes
// nothing, so reports are byte-identical when observability is off.
func Appendix(w io.Writer, o *obs.Observer) error {
	if o == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "APPENDIX — pipeline observability"); err != nil {
		return err
	}
	if o.Tracer != nil {
		if err := o.Tracer.WriteTree(w); err != nil {
			return err
		}
	}
	if o.Metrics != nil {
		snap := o.Metrics.Snapshot()
		if err := StageResources(w, snap); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, "metrics:"); err != nil {
			return err
		}
		if err := snap.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// StageResources renders the per-stage resource-accounting table from a
// metrics snapshot: attempts, total wall time, bytes allocated, GC
// cycles, and the peak goroutine count observed, one row per pipeline
// stage (the stage.<name>.* metric family recorded by runStage). A
// snapshot without stage metrics writes nothing.
func StageResources(w io.Writer, snap obs.Snapshot) error {
	var stages []string
	for _, name := range snap.HistogramNames() {
		if s, ok := strings.CutPrefix(name, "stage."); ok {
			if s, ok := strings.CutSuffix(s, ".duration_us"); ok {
				stages = append(stages, s)
			}
		}
	}
	if len(stages) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "stage resources:"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-18s %8s %12s %14s %6s %10s\n",
		"stage", "attempts", "wall", "alloc", "gc", "peak goros"); err != nil {
		return err
	}
	for _, s := range stages {
		h := snap.Histograms["stage."+s+".duration_us"]
		if _, err := fmt.Fprintf(w, "  %-18s %8d %11.1fms %14s %6d %10.0f\n",
			s, h.Count, float64(h.Sum)/1000,
			formatBytes(snap.Counters["stage."+s+".alloc_bytes"]),
			snap.Counters["stage."+s+".gc_cycles"],
			snap.Gauges["stage."+s+".goroutines_peak"]); err != nil {
			return err
		}
	}
	// alloc/gc are process-wide runtime deltas: exact under serial runs,
	// best-effort attribution when stages overlap (DESIGN.md §13).
	_, err := fmt.Fprintln(w, "  (alloc/gc are process-wide deltas; exact for serial runs)")
	return err
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
