package report

import (
	"math"
	"strings"
	"testing"

	"xbsim/internal/cmpsim"
	"xbsim/internal/experiment"
	"xbsim/internal/obs"
)

func TestFigureRendering(t *testing.T) {
	f := &experiment.Figure{
		ID: "fig3", Title: "CPI error", YLabel: "relative error",
		RowLabels: []string{"gcc", "Avg"},
		Series: []experiment.FigureSeries{
			{Name: "FLI", Values: []float64{0.10, 0.10}},
			{Name: "VLI", Values: []float64{0.05, 0.05}},
		},
	}
	var sb strings.Builder
	if err := Figure(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIG3", "gcc", "Avg", "FLI", "VLI", "10.00%", "5.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The FLI bar must be about twice the VLI bar.
	lines := strings.Split(out, "\n")
	var fliBar, vliBar int
	for _, l := range lines {
		if strings.Contains(l, "FLI") && strings.Contains(l, "#") {
			fliBar = strings.Count(l, "#")
		}
		if strings.Contains(l, "VLI") && strings.Contains(l, "#") {
			vliBar = strings.Count(l, "#")
		}
	}
	if fliBar == 0 || vliBar == 0 || fliBar < 2*vliBar-1 || fliBar > 2*vliBar+1 {
		t.Errorf("bar proportions wrong: FLI=%d VLI=%d", fliBar, vliBar)
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(0.123, "relative error"); got != "12.30%" {
		t.Errorf("error format: %q", got)
	}
	if got := formatValue(1234567, "instructions"); got != "1,234,567" {
		t.Errorf("instruction format: %q", got)
	}
	if got := formatValue(8.5, "simulation points"); got != "8.50" {
		t.Errorf("plain format: %q", got)
	}
	if got := formatValue(math.NaN(), "x"); got != "n/a" {
		t.Errorf("NaN format: %q", got)
	}
}

func TestGroupThousands(t *testing.T) {
	cases := map[uint64]string{
		0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567",
	}
	for in, want := range cases {
		if got := groupThousands(in); got != want {
			t.Errorf("groupThousands(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, cmpsim.DefaultHierarchyConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"32KB", "512KB", "1024KB", "2-way", "8-way", "16-way",
		"3 cycles", "14 cycles", "35 cycles", "250 cycles", "WriteBack"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseBiasRendering(t *testing.T) {
	tables := []experiment.PhaseBias{
		{
			Benchmark: "gcc", Method: "VLI", BinaryA: "gcc.32u", BinaryB: "gcc.64u",
			RowsA: []experiment.PhaseRow{{Phase: 0, Weight: 0.35, TrueCPI: 3.16, SPCPI: 3.15, Error: -0.002}},
			RowsB: []experiment.PhaseRow{{Phase: 0, Weight: 0.28, TrueCPI: 2.97, SPCPI: 2.97, Error: 0.001}},
		},
		{
			Benchmark: "gcc", Method: "FLI", BinaryA: "gcc.32u", BinaryB: "gcc.64u",
			RowsA: []experiment.PhaseRow{{Phase: 2, Weight: 0.31, TrueCPI: 6.54, SPCPI: 2.90, Error: -0.56}},
			RowsB: []experiment.PhaseRow{
				{Phase: 1, Weight: 0.22, TrueCPI: 2.98, SPCPI: 2.97, Error: 0.005},
				{Phase: 4, Weight: 0.18, TrueCPI: 6.04, SPCPI: 7.04, Error: 0.17},
			},
		},
	}
	var sb strings.Builder
	if err := PhaseBias(&sb, tables); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"gcc.32u", "gcc.64u", "VLI", "FLI", "0.35", "3.16", "-56.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if err := PhaseBias(&sb, nil); err == nil {
		t.Error("empty tables accepted")
	}
}

func TestSuiteRendering(t *testing.T) {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"gcc", "apsi"}
	cfg.TargetOps = 500_000
	cfg.IntervalSize = 8_000
	suite, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Suite(&sb, suite); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TABLE 1", "FIG1", "FIG2", "FIG3", "FIG4", "FIG5",
		"Phase comparison for gcc", "Phase comparison for apsi"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

func TestPhaseTimeline(t *testing.T) {
	phaseOf := make([]int, 100)
	for i := range phaseOf {
		if i >= 50 {
			phaseOf[i] = 1
		}
	}
	var sb strings.Builder
	if err := PhaseTimeline(&sb, phaseOf, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "|AAAAABBBBB|") {
		t.Fatalf("timeline strip wrong:\n%s", out)
	}
	if !strings.Contains(out, "A = phase 0 (50 intervals, 50.0%)") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if err := PhaseTimeline(&sb, nil, 10); err == nil {
		t.Fatal("empty sequence accepted")
	}
	// Width clamps to the sequence length.
	sb.Reset()
	if err := PhaseTimeline(&sb, []int{0, 1}, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "|AB|") {
		t.Fatalf("clamped strip wrong:\n%s", sb.String())
	}
}

func TestAblationRendering(t *testing.T) {
	tab := &experiment.AblationTable{
		Title:   "Test ablation",
		Columns: []string{"metric_a", "metric_b"},
		Rows: []experiment.AblationRow{
			{Label: "variant-1", Values: []float64{1.5, 0.25}},
			{Label: "variant-2", Values: []float64{2.5, 0.50}},
		},
	}
	var sb strings.Builder
	if err := Ablation(&sb, tab); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Test ablation", "metric_a", "variant-2", "2.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation rendering missing %q:\n%s", want, out)
		}
	}
}

func TestBenchmarkDetailRendering(t *testing.T) {
	cfg := experiment.QuickConfig()
	cfg.Benchmarks = []string{"swim"}
	cfg.TargetOps = 500_000
	cfg.IntervalSize = 8_000
	suite, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SuiteDetail(&sb, suite); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== swim", "swim.32u", "swim.64o",
		"32u32o", "32o64o", "phases over execution", "= phase 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("detail missing %q", want)
		}
	}
}

// The resource appendix must render one row per stage with the
// formatted wall/alloc/gc/goroutine columns, and stay silent when the
// snapshot has no stage metrics.
func TestStageResourcesTable(t *testing.T) {
	r := obs.NewRegistry()
	r.Histogram("stage.clustering.duration_us").Observe(2500)
	r.Counter("stage.clustering.alloc_bytes").Add(3 << 20)
	r.Counter("stage.clustering.gc_cycles").Add(2)
	r.Gauge("stage.clustering.goroutines_peak").Set(7)
	r.Histogram("kmeans.iterations_per_restart").Observe(4) // not a stage metric

	var b strings.Builder
	if err := StageResources(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"stage resources:", "clustering", "2.5ms", "3.00MiB", "process-wide"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "kmeans") {
		t.Errorf("non-stage metric leaked into the table:\n%s", out)
	}

	var empty strings.Builder
	if err := StageResources(&empty, obs.NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", empty.String())
	}
}
