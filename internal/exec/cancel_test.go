package exec

import (
	"context"
	"errors"
	"testing"

	"xbsim/internal/compiler"
)

// cancelAfter cancels its context after n dynamic blocks — a test
// visitor that cancels mid-walk, deterministically.
type cancelAfter struct {
	cancel context.CancelFunc
	n      int
}

func (c *cancelAfter) OnBlock(int) {
	c.n--
	if c.n == 0 {
		c.cancel()
	}
}

func (c *cancelAfter) OnMarker(int) {}

// Cancelling mid-walk must abort the execution promptly with a wrapped
// context.Canceled instead of walking the remaining billions of blocks.
func TestRunCtxCancelMidWalk(t *testing.T) {
	prog := smallProgram(t, "gcc")
	bins, err := compiler.CompileAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	bin := bins[0]

	full := NewInstructionCounter(bin)
	if err := Run(bin, refInput, full); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ic := NewInstructionCounter(bin)
	err = RunCtx(ctx, bin, refInput, Multi{&cancelAfter{cancel: cancel, n: 100}, ic})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx after mid-walk cancel = %v, want wrapped context.Canceled", err)
	}
	// Prompt abort: the checker polls every 4096 blocks, so the walk
	// must have stopped far short of the full run.
	if full.BlockExecs < 3*4096 {
		t.Skipf("program too small to observe an early abort (%d blocks)", full.BlockExecs)
	}
	if ic.BlockExecs > full.BlockExecs/2 {
		t.Fatalf("walk ran %d of %d blocks after cancellation", ic.BlockExecs, full.BlockExecs)
	}
}

// A context that is already done must fail before the walk starts.
func TestRunCtxPreCancelled(t *testing.T) {
	prog := smallProgram(t, "mcf")
	bins, err := compiler.CompileAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ic := NewInstructionCounter(bins[0])
	if err := RunCtx(ctx, bins[0], refInput, ic); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on cancelled context = %v, want wrapped context.Canceled", err)
	}
	if ic.BlockExecs != 0 {
		t.Fatalf("walk executed %d blocks on a cancelled context", ic.BlockExecs)
	}
}

// A cancelable-but-live context must not change the execution.
func TestRunCtxCancelableMatchesPlainRun(t *testing.T) {
	prog := smallProgram(t, "swim")
	bins, err := compiler.CompileAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	bin := bins[0]
	plain := NewInstructionCounter(bin)
	if err := Run(bin, refInput, plain); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx := NewInstructionCounter(bin)
	if err := RunCtx(ctx, bin, refInput, withCtx); err != nil {
		t.Fatal(err)
	}
	if plain.Instructions != withCtx.Instructions || plain.BlockExecs != withCtx.BlockExecs {
		t.Fatalf("cancelable run diverged: %d/%d vs %d/%d instructions/blocks",
			withCtx.Instructions, withCtx.BlockExecs, plain.Instructions, plain.BlockExecs)
	}
}
