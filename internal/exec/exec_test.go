package exec

import (
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 0xC0FFEE}

func smallProgram(t *testing.T, name string) *program.Program {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runCounters(t *testing.T, bin *compiler.Binary) (*InstructionCounter, *MarkerCounter) {
	t.Helper()
	ic := NewInstructionCounter(bin)
	mc := NewMarkerCounter(bin)
	if err := Run(bin, refInput, Multi{ic, mc}); err != nil {
		t.Fatal(err)
	}
	return ic, mc
}

func TestTripCountBoundsAndDeterminism(t *testing.T) {
	spec := program.TripSpec{Base: 100, Jitter: 7}
	for ord := uint64(0); ord < 200; ord++ {
		v := TripCount(spec, 42, 3, ord)
		if v < 93 || v > 107 {
			t.Fatalf("trip %d out of [93,107]", v)
		}
		if v != TripCount(spec, 42, 3, ord) {
			t.Fatal("TripCount not deterministic")
		}
	}
	if TripCount(program.TripSpec{Base: 5}, 1, 1, 1) != 5 {
		t.Fatal("zero-jitter trip should equal base")
	}
}

func TestTripCountVariesWithOrdinalAndSeed(t *testing.T) {
	spec := program.TripSpec{Base: 100, Jitter: 10}
	varied := false
	for ord := uint64(1); ord < 50; ord++ {
		if TripCount(spec, 42, 3, ord) != TripCount(spec, 42, 3, 0) {
			varied = true
		}
	}
	if !varied {
		t.Fatal("trip count constant across ordinals despite jitter")
	}
	if TripCount(spec, 1, 3, 0) == TripCount(spec, 2, 3, 0) &&
		TripCount(spec, 1, 3, 1) == TripCount(spec, 2, 3, 1) &&
		TripCount(spec, 1, 3, 2) == TripCount(spec, 2, 3, 2) {
		t.Fatal("trip counts identical across seeds")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := smallProgram(t, "gzip")
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	ic1, mc1 := runCounters(t, bin)
	ic2, mc2 := runCounters(t, bin)
	if ic1.Instructions != ic2.Instructions || ic1.BlockExecs != ic2.BlockExecs {
		t.Fatal("instruction counts differ across identical runs")
	}
	for i := range mc1.Counts {
		if mc1.Counts[i] != mc2.Counts[i] {
			t.Fatalf("marker %d count differs across identical runs", i)
		}
	}
}

func TestDifferentInputsDiffer(t *testing.T) {
	p := smallProgram(t, "gzip")
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	ic1 := NewInstructionCounter(bin)
	if err := Run(bin, program.Input{Name: "a", Seed: 1}, ic1); err != nil {
		t.Fatal(err)
	}
	ic2 := NewInstructionCounter(bin)
	if err := Run(bin, program.Input{Name: "b", Seed: 2}, ic2); err != nil {
		t.Fatal(err)
	}
	if ic1.Instructions == ic2.Instructions {
		t.Fatal("different input seeds produced identical instruction counts (suspicious)")
	}
}

// TestSemanticInvarianceAcrossBinaries is the load-bearing test of the
// whole reproduction: procedure call counts and loop execution counts must
// be identical across all four binaries of a program.
func TestSemanticInvarianceAcrossBinaries(t *testing.T) {
	for _, name := range []string{"gzip", "gcc", "applu", "mcf"} {
		p := smallProgram(t, name)
		bins, err := compiler.CompileAll(p)
		if err != nil {
			t.Fatal(err)
		}
		// Collect per-binary: symbol -> proc entry count, and per source
		// loop: entry count (summed over pieces must NOT be used — each
		// piece fires once per entry, so piece 0's count equals the
		// semantic entry count) and total latch-at-unroll-1 iteration
		// counts where comparable.
		type loopCounts struct {
			entryPiece0 uint64
			bodyTotal   uint64 // only comparable for unroll==1, single piece
			unroll      int
			pieces      int
		}
		procCounts := make([]map[string]uint64, len(bins))
		loopEntry := make([]map[int]uint64, len(bins))
		for bi, bin := range bins {
			mc := NewMarkerCounter(bin)
			if err := Run(bin, refInput, mc); err != nil {
				t.Fatal(err)
			}
			procCounts[bi] = map[string]uint64{}
			loopEntry[bi] = map[int]uint64{}
			for _, m := range bin.Markers {
				switch m.Kind {
				case compiler.MarkerProcEntry:
					procCounts[bi][m.Symbol] = mc.Counts[m.ID]
				case compiler.MarkerLoopEntry:
					// Sum over inline clones (one clone per call site),
					// counting only piece 0 so distributed loops are not
					// double-counted.
					if m.Piece == 0 {
						loopEntry[bi][m.SourceLoopID] += mc.Counts[m.ID]
					}
				}
			}
		}
		// Symbols present in all binaries must agree on call counts.
		for sym, want := range procCounts[0] {
			for bi := 1; bi < len(bins); bi++ {
				got, ok := procCounts[bi][sym]
				if !ok {
					continue // inlined away in this binary
				}
				if got != want {
					t.Fatalf("%s: proc %s count %d in %s vs %d in %s",
						name, sym, want, bins[0].Target, got, bins[bi].Target)
				}
			}
		}
		// Loop entries (piece 0) must agree everywhere the loop exists.
		for id, want := range loopEntry[0] {
			for bi := 1; bi < len(bins); bi++ {
				if got, ok := loopEntry[bi][id]; ok && got != want {
					t.Fatalf("%s: loop %d entry count %d in %s vs %d in %s",
						name, id, want, bins[0].Target, got, bins[bi].Target)
				}
			}
		}
	}
}

func TestDistributedPiecesFireEqually(t *testing.T) {
	p := smallProgram(t, "applu")
	o2 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	mc := NewMarkerCounter(o2)
	if err := Run(o2, refInput, mc); err != nil {
		t.Fatal(err)
	}
	// For every distributed loop, both pieces' entry markers fire the same
	// number of times, and both latch markers fire the same number too.
	byLoop := map[int]map[int]map[compiler.MarkerKind]uint64{} // loopID -> piece -> kind -> count
	for _, m := range o2.Markers {
		if m.SourceLoopID < 0 {
			continue
		}
		if byLoop[m.SourceLoopID] == nil {
			byLoop[m.SourceLoopID] = map[int]map[compiler.MarkerKind]uint64{}
		}
		if byLoop[m.SourceLoopID][m.Piece] == nil {
			byLoop[m.SourceLoopID][m.Piece] = map[compiler.MarkerKind]uint64{}
		}
		byLoop[m.SourceLoopID][m.Piece][m.Kind] += mc.Counts[m.ID]
	}
	checked := false
	for id, pieces := range byLoop {
		if len(pieces) < 2 {
			continue
		}
		checked = true
		e0 := pieces[0][compiler.MarkerLoopEntry]
		e1 := pieces[1][compiler.MarkerLoopEntry]
		if e0 != e1 {
			t.Fatalf("loop %d pieces entered unequally: %d vs %d", id, e0, e1)
		}
		b0 := pieces[0][compiler.MarkerLoopBody]
		b1 := pieces[1][compiler.MarkerLoopBody]
		if b0 != b1 {
			t.Fatalf("loop %d piece latches fired unequally: %d vs %d", id, b0, b1)
		}
	}
	if !checked {
		t.Fatal("no distributed loops found in applu O2")
	}
}

func TestUnrolledLatchCountsShrink(t *testing.T) {
	p := smallProgram(t, "swim")
	o0 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	o2 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	mc0 := NewMarkerCounter(o0)
	if err := Run(o0, refInput, mc0); err != nil {
		t.Fatal(err)
	}
	mc2 := NewMarkerCounter(o2)
	if err := Run(o2, refInput, mc2); err != nil {
		t.Fatal(err)
	}
	latchBySource := func(b *compiler.Binary, mc *MarkerCounter) map[int]uint64 {
		out := map[int]uint64{}
		for _, m := range b.Markers {
			if m.Kind == compiler.MarkerLoopBody {
				out[m.SourceLoopID] += mc.Counts[m.ID]
			}
		}
		return out
	}
	l0 := latchBySource(o0, mc0)
	l2 := latchBySource(o2, mc2)
	// Find an unrolled loop and verify its latch count dropped ~4x.
	found := false
	var walk func(stmts []compiler.LStmt)
	walk = func(stmts []compiler.LStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *compiler.LLoop:
				if s.Unroll == compiler.UnrollFactor {
					a, b := l0[s.SourceID], l2[s.SourceID]
					if a == 0 || b == 0 {
						continue
					}
					ratio := float64(a) / float64(b)
					if ratio < 3 || ratio > 5 {
						t.Fatalf("loop %d latch ratio %.2f, want ~4", s.SourceID, ratio)
					}
					found = true
				}
				for _, p := range s.Pieces {
					walk(p.Body)
				}
			case *compiler.LCall:
				if s.Inlined != nil {
					walk(s.Inlined.Stmts)
				}
			}
		}
	}
	for _, proc := range o2.Procs {
		if proc != nil {
			walk(proc.Stmts)
		}
	}
	if !found {
		t.Fatal("no unrolled loop with comparable counts")
	}
}

func TestO0ExecutesMoreInstructions(t *testing.T) {
	p := smallProgram(t, "crafty")
	o0 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	o2 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	ic0, _ := runCounters(t, o0)
	ic2, _ := runCounters(t, o2)
	if ic0.Instructions <= ic2.Instructions {
		t.Fatalf("O0 executed %d instrs, O2 %d", ic0.Instructions, ic2.Instructions)
	}
	ratio := float64(ic0.Instructions) / float64(ic2.Instructions)
	if ratio < 1.5 || ratio > 5 {
		t.Fatalf("O0/O2 dynamic ratio %.2f outside plausible [1.5,5]", ratio)
	}
}

func Test32BitExecutesMoreThan64Bit(t *testing.T) {
	p := smallProgram(t, "apsi")
	b32 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	b64 := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch64, Opt: compiler.O2})
	ic32, _ := runCounters(t, b32)
	ic64, _ := runCounters(t, b64)
	if ic32.Instructions <= ic64.Instructions {
		t.Fatalf("32-bit executed %d, 64-bit %d; expected 32-bit larger",
			ic32.Instructions, ic64.Instructions)
	}
}

func TestRunnerRejectsNil(t *testing.T) {
	if _, err := NewRunner(nil, refInput); err == nil {
		t.Fatal("nil binary accepted")
	}
}

func TestMultiVisitorFansOut(t *testing.T) {
	p := smallProgram(t, "art")
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	a := NewInstructionCounter(bin)
	b := NewInstructionCounter(bin)
	if err := Run(bin, refInput, Multi{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.Instructions != b.Instructions || a.Instructions == 0 {
		t.Fatalf("multi visitor mismatch: %d vs %d", a.Instructions, b.Instructions)
	}
}

func BenchmarkRun(b *testing.B) {
	p, err := program.Generate("gzip", program.GenConfig{TargetOps: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	ic := NewInstructionCounter(bin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(bin, refInput, ic); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(0)
	b.ReportMetric(float64(ic.Instructions)/float64(b.N), "instrs/run")
}
