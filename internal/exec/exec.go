// Package exec deterministically executes a compiled binary, emitting the
// dynamic basic-block stream to visitors. It is the "hardware" all four
// binaries of a program run on, and the substrate the Pin-like profilers
// (internal/profile) and the CMP$im-like simulator (internal/cmpsim)
// observe.
//
// The central invariant — everything in the paper depends on it — is that
// all binaries of a program execute the same semantics on the same input:
// every loop's trip count for its i-th entry is a pure function of (input
// seed, source loop ID, i), so procedure call counts and loop iteration
// counts are identical across binaries, while the emitted block stream and
// its instruction counts are target-specific.
package exec

import (
	"context"
	"fmt"

	"xbsim/internal/compiler"
	"xbsim/internal/obs"
	"xbsim/internal/program"
	"xbsim/internal/xrand"
)

// Visitor observes a binary's dynamic execution. OnBlock is called once
// per dynamic basic-block execution, OnMarker once per marker firing
// (immediately after the OnBlock call for the marker's block).
type Visitor interface {
	OnBlock(block int)
	OnMarker(marker int)
}

// Multi fans one execution out to several visitors in order.
type Multi []Visitor

// OnBlock implements Visitor.
func (m Multi) OnBlock(block int) {
	for _, v := range m {
		v.OnBlock(block)
	}
}

// OnMarker implements Visitor.
func (m Multi) OnMarker(marker int) {
	for _, v := range m {
		v.OnMarker(marker)
	}
}

// TripCount returns the number of iterations loop `spec` executes on its
// ordinal-th entry (0-based) under the given input seed. It is exported so
// tests and analyses can predict execution without running it.
func TripCount(spec program.TripSpec, seed uint64, loopID int, ordinal uint64) int {
	if spec.Jitter == 0 {
		return spec.Base
	}
	span := uint64(2*spec.Jitter + 1)
	off := int(xrand.Hash3(seed, uint64(loopID), ordinal) % span)
	return spec.Base + off - spec.Jitter
}

// Runner executes a binary. A Runner is single-use state (loop entry
// ordinals advance as it runs); create one per run.
type Runner struct {
	bin  *compiler.Binary
	seed uint64

	// trips holds each source loop's spec, indexed by loop ID (loop IDs
	// are small integers); hasTrip guards against gaps.
	trips   []program.TripSpec
	hasTrip []bool
	// ordinals counts entries per source loop ID.
	ordinals []uint64
	// markerOf maps block ID to attached marker ID, -1 if none.
	markerOf []int
}

// NewRunner prepares execution of the binary on the given input.
func NewRunner(bin *compiler.Binary, in program.Input) (*Runner, error) {
	if bin == nil {
		return nil, fmt.Errorf("exec: nil binary")
	}
	loops := bin.Program.Loops()
	maxID := -1
	for _, l := range loops {
		if l.ID > maxID {
			maxID = l.ID
		}
	}
	r := &Runner{
		bin:      bin,
		seed:     in.Seed,
		trips:    make([]program.TripSpec, maxID+1),
		hasTrip:  make([]bool, maxID+1),
		ordinals: make([]uint64, maxID+1),
		markerOf: make([]int, len(bin.Blocks)),
	}
	for _, l := range loops {
		r.trips[l.ID] = l.Trip
		r.hasTrip[l.ID] = true
	}
	for i := range r.markerOf {
		r.markerOf[i] = -1
	}
	for _, m := range bin.Markers {
		if r.markerOf[m.Block] != -1 {
			return nil, fmt.Errorf("exec: block %d carries two markers", m.Block)
		}
		r.markerOf[m.Block] = m.ID
	}
	return r, nil
}

// Run executes the whole program, streaming events to v.
func (r *Runner) Run(v Visitor) error {
	entry := r.bin.Entry()
	if entry == nil {
		return fmt.Errorf("exec: binary %s has no entry procedure", r.bin.Name)
	}
	r.runBody(entry, v)
	return nil
}

// Run is a convenience wrapper: build a Runner and execute the binary once.
func Run(bin *compiler.Binary, in program.Input, v Visitor) error {
	r, err := NewRunner(bin, in)
	if err != nil {
		return err
	}
	return r.Run(v)
}

// RunCtx is Run with observability and cancellation: when the context
// carries an observer it wraps the execution in an "exec.run" span and
// flushes aggregate instruction/block/marker tallies into the metrics
// registry afterwards, and when the context is cancelable the walk is
// aborted promptly — within a few thousand blocks — once the context is
// done, returning the wrapped context error. With a Background-derived
// context and no observer it is exactly Run — the hot loop is never
// instrumented per event, so the default path costs nothing.
func RunCtx(ctx context.Context, bin *compiler.Binary, in program.Input, v Visitor) (err error) {
	o := obs.From(ctx)
	if o != nil {
		var span *obs.Span
		_, span = obs.StartSpan(ctx, "exec.run")
		span.Annotate(bin.Name)
		defer span.End()
	}
	if ctx.Done() != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("exec %s: %w", bin.Name, cerr)
		}
		// Visitors cannot return errors, so the checker aborts the walk
		// with a sentinel panic recovered here — cancellation never
		// unwinds past this frame.
		defer func() {
			if r := recover(); r != nil {
				stop, ok := r.(execStop)
				if !ok {
					panic(r)
				}
				err = fmt.Errorf("exec %s: %w", bin.Name, stop.err)
			}
		}()
		v = Multi{&cancelChecker{ctx: ctx}, v}
	}
	if o == nil || o.Metrics == nil {
		return Run(bin, in, v)
	}
	ic := NewInstructionCounter(bin)
	var markers markerTally
	err = Run(bin, in, Multi{v, ic, &markers})
	o.Counter("exec.runs").Inc()
	o.Counter("exec.instructions").Add(ic.Instructions)
	o.Counter("exec.blocks").Add(ic.BlockExecs)
	o.Counter("exec.markers").Add(uint64(markers))
	return err
}

// execStop is the sentinel the cancellation checker panics with.
type execStop struct{ err error }

// cancelChecker polls the context every few thousand dynamic blocks and
// aborts the walk when it is done. The power-of-two stride keeps the
// per-block cost to an increment and a mask.
type cancelChecker struct {
	ctx context.Context
	n   uint
}

// OnBlock implements Visitor.
func (c *cancelChecker) OnBlock(int) {
	c.n++
	if c.n&0xFFF == 0 {
		if err := c.ctx.Err(); err != nil {
			panic(execStop{err})
		}
	}
}

// OnMarker implements Visitor.
func (c *cancelChecker) OnMarker(int) {}

// markerTally counts marker firings with no per-block work.
type markerTally uint64

// OnBlock implements Visitor.
func (t *markerTally) OnBlock(int) {}

// OnMarker implements Visitor.
func (t *markerTally) OnMarker(int) { *t++ }

func (r *Runner) runBody(b *compiler.LBody, v Visitor) {
	if b.EntryBlock >= 0 {
		r.emit(b.EntryBlock, v)
	}
	r.runStmts(b.Stmts, v)
}

func (r *Runner) runStmts(stmts []compiler.LStmt, v Visitor) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *compiler.LBlock:
			r.emit(s.Block, v)
		case *compiler.LLoop:
			r.runLoop(s, v)
		case *compiler.LCall:
			if s.Inlined != nil {
				r.runBody(s.Inlined, v)
				continue
			}
			r.emit(s.SiteBlock, v)
			callee := r.bin.Procs[s.Callee]
			if callee == nil {
				panic(fmt.Sprintf("exec: call to missing proc %d in %s", s.Callee, r.bin.Name))
			}
			r.runBody(callee, v)
		}
	}
}

func (r *Runner) runLoop(l *compiler.LLoop, v Visitor) {
	if l.SourceID >= len(r.hasTrip) || !r.hasTrip[l.SourceID] {
		panic(fmt.Sprintf("exec: loop %d has no trip spec", l.SourceID))
	}
	ordinal := r.ordinals[l.SourceID]
	r.ordinals[l.SourceID] = ordinal + 1
	trips := TripCount(r.trips[l.SourceID], r.seed, l.SourceID, ordinal)

	unroll := l.Unroll
	if unroll < 1 {
		unroll = 1
	}
	for pi := range l.Pieces {
		p := &l.Pieces[pi]
		r.emit(p.EntryBlock, v)
		for i := 0; i < trips; i++ {
			r.runStmts(p.Body, v)
			if (i+1)%unroll == 0 || i == trips-1 {
				r.emit(p.LatchBlock, v)
			}
		}
	}
}

func (r *Runner) emit(block int, v Visitor) {
	v.OnBlock(block)
	if m := r.markerOf[block]; m >= 0 {
		v.OnMarker(m)
	}
}

// InstructionCounter is a Visitor that tallies dynamic instructions and
// block executions.
type InstructionCounter struct {
	bin *compiler.Binary
	// Instructions is the running dynamic instruction count.
	Instructions uint64
	// BlockExecs is the number of dynamic block executions.
	BlockExecs uint64
}

// NewInstructionCounter returns a counter for the binary.
func NewInstructionCounter(bin *compiler.Binary) *InstructionCounter {
	return &InstructionCounter{bin: bin}
}

// OnBlock implements Visitor.
func (c *InstructionCounter) OnBlock(block int) {
	c.Instructions += uint64(c.bin.Blocks[block].Instrs)
	c.BlockExecs++
}

// OnMarker implements Visitor.
func (c *InstructionCounter) OnMarker(int) {}

// MarkerCounter is a Visitor that tallies per-marker firing counts.
type MarkerCounter struct {
	// Counts[m] is the number of times marker m fired.
	Counts []uint64
}

// NewMarkerCounter returns a counter sized for the binary.
func NewMarkerCounter(bin *compiler.Binary) *MarkerCounter {
	return &MarkerCounter{Counts: make([]uint64, len(bin.Markers))}
}

// OnBlock implements Visitor.
func (c *MarkerCounter) OnBlock(int) {}

// OnMarker implements Visitor.
func (c *MarkerCounter) OnMarker(marker int) { c.Counts[marker]++ }
