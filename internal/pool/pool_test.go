package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"xbsim/internal/obs"
)

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		counts := make([]atomic.Int64, 100)
		if err := p.Run(len(counts), func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d", p.Workers())
	}
	order := []int{}
	if err := p.Run(5, func(i int) error {
		order = append(order, i) // safe: serial execution, no goroutines
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
}

func TestErrorsJoinedInIndexOrder(t *testing.T) {
	p := New(4)
	err := p.Run(10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	want := "task 3 failed\ntask 7 failed"
	if err.Error() != want {
		t.Fatalf("joined error = %q, want %q", err.Error(), want)
	}
}

func TestMapIsIndexAddressed(t *testing.T) {
	p := New(8)
	out, err := Map(p, 50, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapKeepsSuccessesOnError(t *testing.T) {
	p := New(2)
	out, err := Map(p, 4, func(i int) (string, error) {
		if i == 2 {
			return "", errors.New("boom")
		}
		return fmt.Sprint(i), nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out[0] != "0" || out[1] != "1" || out[3] != "3" {
		t.Fatalf("successful slots lost: %v", out)
	}
}

// Nested Run calls share the pool's budget and must not deadlock even
// when the nesting depth exceeds the worker count.
func TestNestedRunsDoNotDeadlock(t *testing.T) {
	p := New(2)
	var leaves atomic.Int64
	err := p.Run(4, func(int) error {
		return p.Run(4, func(int) error {
			return p.Run(4, func(int) error {
				leaves.Add(1)
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := leaves.Load(); got != 64 {
		t.Fatalf("%d leaf tasks ran, want 64", got)
	}
}

// The helper-token scheme bounds concurrency: at most Workers tasks of
// one flat Run execute simultaneously.
func TestConcurrencyBounded(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	if err := p.Run(64, func(int) error {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		for i := 0; i < 1000; i++ { // widen the overlap window
			_ = i
		}
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, workers)
	}
}

// Index-addressed collection makes parallel output identical to serial
// output — the determinism contract every call site relies on.
func TestParallelMatchesSerial(t *testing.T) {
	serial, err := Map[int](nil, 200, func(i int) (int, error) { return i * 7 % 13, nil })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(New(8), 200, func(i int) (int, error) { return i * 7 % 13, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

// An instrumented pool must account every task (count, queue wait,
// busy high-water mark) without changing results; an uninstrumented or
// nil pool must not touch the sinks.
func TestRunInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	m := Metrics{
		Tasks:     reg.Counter("pool.tasks"),
		Busy:      reg.Gauge("pool.busy_workers"),
		BusyPeak:  reg.Gauge("pool.busy_peak"),
		QueueWait: reg.Histogram("pool.queue_wait_us"),
	}
	p := New(4)
	p.Instrument(m)
	var ran atomic.Int64
	if err := p.Run(32, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d tasks", ran.Load())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pool.tasks"]; got != 32 {
		t.Fatalf("pool.tasks = %d, want 32", got)
	}
	if got := snap.Histograms["pool.queue_wait_us"]; got.Count != 32 {
		t.Fatalf("queue_wait observations = %d, want 32", got.Count)
	}
	if got := snap.Gauges["pool.busy_workers"]; got != 0 {
		t.Fatalf("busy_workers settled at %v, want 0", got)
	}
	peak := snap.Gauges["pool.busy_peak"]
	if peak < 1 || peak > 4 {
		t.Fatalf("busy_peak = %v, want within [1, workers]", peak)
	}

	// Nested Run calls reuse the same instrumented pool without
	// double-counting the busy bookkeeping.
	if err := p.Run(2, func(i int) error {
		return p.Run(2, func(j int) error { return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["pool.busy_workers"]; got != 0 {
		t.Fatalf("busy_workers after nested runs = %v, want 0", got)
	}

	// A panicking task must still release its busy slot.
	err := p.Run(1, func(i int) error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not isolated: %v", err)
	}
	if got := reg.Snapshot().Gauges["pool.busy_workers"]; got != 0 {
		t.Fatalf("busy_workers leaked after panic: %v", got)
	}

	var nilPool *Pool
	nilPool.Instrument(m) // must not panic
	if err := nilPool.Run(4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
