package pool

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// A panicking task must surface as a *PanicError in its index slot, not
// crash the process, and must not leak its worker token: after a run
// where half the tasks panic, the pool's full helper budget is still
// available. Run under -race, this also pins that recovery introduces no
// data race.
func TestPanicIsolationDoesNotLeakTokens(t *testing.T) {
	const workers = 4
	p := New(workers)
	for round := 0; round < 3; round++ {
		var ran atomic.Int64
		err := p.Run(32, func(i int) error {
			ran.Add(1)
			if i%2 == 1 {
				panic(fmt.Sprintf("task %d exploded", i))
			}
			return nil
		})
		if got := ran.Load(); got != 32 {
			t.Fatalf("round %d: %d tasks ran, want 32", round, got)
		}
		if err == nil {
			t.Fatalf("round %d: expected joined panic errors", round)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: error %T does not contain *PanicError", round, err)
		}
		// Every token must be back: a leaked token would strand a helper
		// slot for all later rounds.
		if held := len(p.tokens); held != 0 {
			t.Fatalf("round %d: %d worker tokens leaked", round, held)
		}
	}
}

// The PanicError is attributed to the panicking task's slot and carries
// the stack; non-panicking failures keep their position in the join.
func TestPanicErrorAttribution(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.Run(6, func(i int) error {
			switch i {
			case 2:
				panic("boom at two")
			case 4:
				return errors.New("plain failure at four")
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		var joined []error
		if u, ok := err.(interface{ Unwrap() []error }); ok {
			joined = u.Unwrap()
		} else {
			joined = []error{err}
		}
		if len(joined) != 2 {
			t.Fatalf("workers=%d: joined %d errors, want 2: %v", workers, len(joined), err)
		}
		pe, ok := joined[0].(*PanicError)
		if !ok {
			t.Fatalf("workers=%d: first joined error is %T, want *PanicError", workers, joined[0])
		}
		if pe.Index != 2 || pe.Value != "boom at two" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: bad attribution: index %d value %v stack %d bytes",
				workers, pe.Index, pe.Value, len(pe.Stack))
		}
		if !strings.Contains(pe.Error(), "task 2 panicked") {
			t.Fatalf("workers=%d: PanicError.Error() = %q", workers, pe.Error())
		}
		if joined[1].Error() != "plain failure at four" {
			t.Fatalf("workers=%d: second joined error = %v", workers, joined[1])
		}
	}
}

// errors.As must see through a PanicError whose value was itself an
// error — the path injected panic faults take back to the retry policy.
func TestPanicErrorUnwrapsErrorValues(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := New(2).Run(3, func(i int) error {
		if i == 1 {
			panic(fmt.Errorf("wrapped: %w", sentinel))
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through PanicError failed: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("PanicError lost: %v", err)
	}
}

// Protect is the single-call form used at stage level.
func TestProtect(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("Protect of clean fn: %v", err)
	}
	err := Protect(func() error { panic("stage blew up") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != -1 || pe.Value != "stage blew up" {
		t.Fatalf("Protect returned %v", err)
	}
}
