// Package pool provides the bounded worker pool that parallelizes the
// inside of one benchmark pipeline: per-binary profile walks, the
// SimPoint k-sweep, k-means restarts, and per-binary evaluation.
//
// The pool is built for deterministic fan-out. Tasks are identified by
// index, every task derives its randomness from a per-index seeded
// stream (xrand.SplitIndexed), and callers collect results into
// index-addressed slices — so the output of a parallel run is
// bit-for-bit identical to the serial run, regardless of scheduling.
// The pool itself only guarantees the part it can: every index runs
// exactly once, and errors are joined in index order.
//
// Concurrency is bounded with a caller-participates token scheme: a
// Pool with N workers holds N-1 helper tokens, and Run always executes
// tasks on the calling goroutine while spawning at most as many helper
// goroutines as there are free tokens. Because the caller never blocks
// waiting for a token, nested Run calls (the k-sweep calling k-means
// restarts, several benchmarks sharing one pool) cannot deadlock and
// cannot multiply the worker budget: the whole tree of nested calls is
// limited to N-1 extra goroutines beyond its callers.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"xbsim/internal/obs"
)

// PanicError is a panic recovered from one task, attributed to its index
// slot. Isolating panics this way keeps one broken task from killing the
// process (and, with helper goroutines, from leaking the worker token the
// panicking goroutine held): the panic becomes an ordinary error joined
// in index order like any other task failure.
type PanicError struct {
	// Index is the task slot that panicked (-1 for Protect).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error implements error, including the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was an error, so errors.Is/As
// see through recovered panics (e.g. an injected fault that panicked).
func (e *PanicError) Unwrap() error {
	err, _ := e.Value.(error)
	return err
}

// protect runs fn(i), converting a panic into a *PanicError. The recover
// lives here — below the pool's token bookkeeping — so a panicking task
// unwinds no further than its own call frame: helper goroutines keep
// their deferred token release on the normal path and the process stays
// alive.
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Protect runs fn, converting a panic into a *PanicError with index -1.
// It is the single-call form of the pool's panic isolation, for callers
// running one protected region outside a task fan-out.
func Protect(fn func() error) error {
	return protect(-1, func(int) error { return fn() })
}

// Metrics is the pool's optional resource-accounting wiring. Every
// field is nil-safe (the obs handles discard updates when nil), so an
// uninstrumented pool — the zero Metrics — pays only a monotonic clock
// read guarded by the enabled flag. Instrumentation never changes
// results: the pool's output is index-addressed and bit-identical for
// any schedule.
type Metrics struct {
	// Tasks counts tasks executed.
	Tasks *obs.Counter
	// Busy tracks the number of tasks currently executing (a high-water
	// mark survives in BusyPeak).
	Busy *obs.Gauge
	// BusyPeak records the highest concurrent task count seen.
	BusyPeak *obs.Gauge
	// QueueWait observes, per task, the microseconds between its Run
	// call starting and the task being claimed by a worker — the time
	// work spent waiting for pool capacity.
	QueueWait *obs.Histogram
}

// enabled reports whether any sink is attached.
func (m Metrics) enabled() bool {
	return m.Tasks != nil || m.Busy != nil || m.BusyPeak != nil || m.QueueWait != nil
}

// Pool is a bounded worker pool. A nil *Pool is valid and runs
// everything serially on the calling goroutine, so call sites never
// branch on "is parallelism enabled".
type Pool struct {
	// tokens grants the right to run one helper goroutine; capacity is
	// workers-1 because the calling goroutine always works too.
	tokens  chan struct{}
	workers int

	// m is the optional metrics wiring; busy backs the Busy gauge.
	m    Metrics
	busy atomic.Int64
}

// New returns a pool that runs at most workers tasks concurrently.
// workers <= 0 means runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers returns the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Instrument attaches metric sinks to the pool. Call before sharing the
// pool across goroutines; a nil pool ignores the call.
func (p *Pool) Instrument(m Metrics) {
	if p == nil {
		return
	}
	p.m = m
}

// runTask executes one claimed task through the metrics envelope.
func (p *Pool) runTask(i int, fn func(i int) error, queued time.Time) error {
	if p != nil && p.m.enabled() {
		if !queued.IsZero() {
			p.m.QueueWait.Observe(uint64(time.Since(queued).Microseconds()))
		}
		p.m.Tasks.Inc()
		p.m.Busy.Add(1)
		p.m.BusyPeak.SetMax(float64(p.busy.Add(1)))
		defer func() {
			p.busy.Add(-1)
			p.m.Busy.Add(-1)
		}()
	}
	return protect(i, fn)
}

// Run executes fn(i) for every i in [0, n). Indices are claimed by an
// atomic counter, so which goroutine runs which index is scheduling-
// dependent — deterministic output therefore requires fn to write its
// result into an index-addressed slot, which every call site in this
// repository does. Run returns after all n calls finished, with the
// non-nil errors joined in index order (errors.Join). A task that
// panics does not crash the process or leak its worker token: the panic
// is recovered and joined as a *PanicError carrying the task index and
// the captured stack.
func (p *Pool) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// queued anchors the queue-wait measurement; zero when the pool is
	// uninstrumented so the serial fast path stays clock-free.
	var queued time.Time
	if p != nil && p.m.enabled() {
		queued = time.Now()
	}
	errs := make([]error, n)
	if p == nil || p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			errs[i] = p.runTask(i, fn, queued)
		}
		return errors.Join(errs...)
	}

	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = p.runTask(i, fn, queued)
		}
	}

	// Spawn helpers only while tokens are free; never block on one. The
	// select's default arm is what makes nested Run calls safe: with no
	// token available the caller just does all the work itself.
	var wg sync.WaitGroup
spawn:
	for i := 0; i < n-1; i++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	return errors.Join(errs...)
}

// Map runs fn for every index in [0, n) through the pool and returns
// the results as an index-addressed slice: out[i] is fn(i)'s value no
// matter which worker produced it. On error the slice is still
// returned with every successful index filled in.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Run(n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
