package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSuiteExportAndJSON(t *testing.T) {
	cfg := testConfig("swim", "art")
	suite, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp := suite.Export()
	if len(exp.Benchmarks) != 2 || len(exp.Figures) != 5 {
		t.Fatalf("export shape: %d benchmarks, %d figures", len(exp.Benchmarks), len(exp.Figures))
	}
	for _, be := range exp.Benchmarks {
		if len(be.Runs) != 4 || len(be.Pairs) != 4 {
			t.Fatalf("%s: %d runs, %d pairs", be.Name, len(be.Runs), len(be.Pairs))
		}
		if be.MappablePoints == 0 {
			t.Fatalf("%s: no mappable points exported", be.Name)
		}
		for _, run := range be.Runs {
			if run.TrueCPI <= 0 || run.FLI.EstCPI <= 0 || run.VLI.EstCPI <= 0 {
				t.Fatalf("%s/%s: non-positive CPIs in export", be.Name, run.Binary)
			}
		}
	}

	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The document must round-trip through encoding/json (no NaN/Inf).
	var back SuiteExport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if len(back.Benchmarks) != 2 {
		t.Fatal("round trip lost benchmarks")
	}
	if back.Benchmarks[0].Runs[0].Binary != exp.Benchmarks[0].Runs[0].Binary {
		t.Fatal("round trip changed data")
	}
}
