package experiment

import (
	"context"
	"fmt"

	"xbsim/internal/obs"
	"xbsim/internal/sampler"
)

// This file is the cross-backend sampler comparison harness: it runs the
// same suite under every sampler backend (and, for budgeted backends,
// several budgets) and reduces each run to the two numbers the backends
// compete on — CPI estimation error and detailed-simulation cost. The
// JSON tags make the comparison embeddable in bench results (schema 3)
// so CI tracks both backends over time.

// SamplerRow is one (backend, budget) configuration's aggregate outcome
// over the whole suite.
type SamplerRow struct {
	// Backend is the sampler backend name (sampler.Backends()).
	Backend string `json:"backend"`
	// Budget is the point budget the backend ran with; 0 for backends
	// without a budget knob (simpoint chooses K by BIC).
	Budget int `json:"budget,omitempty"`
	// Benchmarks and Binaries count the completed benchmarks and the
	// binary runs aggregated below.
	Benchmarks int `json:"benchmarks"`
	Binaries   int `json:"binaries"`
	// FLIPoints and VLIPoints are the total simulation points chosen
	// across all binary runs, per method.
	FLIPoints int `json:"fliPoints"`
	VLIPoints int `json:"vliPoints"`
	// TotalInstructions is the summed dynamic instruction count of every
	// binary run — the denominator of the simulated fractions.
	TotalInstructions uint64 `json:"totalInstructions"`
	// FLISimulatedInstructions / VLISimulatedInstructions are the summed
	// detailed-simulation costs per method.
	FLISimulatedInstructions uint64 `json:"fliSimulatedInstructions"`
	VLISimulatedInstructions uint64 `json:"vliSimulatedInstructions"`
	// FLISimulatedFraction / VLISimulatedFraction are the costs as
	// fractions of TotalInstructions.
	FLISimulatedFraction float64 `json:"fliSimulatedFraction"`
	VLISimulatedFraction float64 `json:"vliSimulatedFraction"`
	// FLIMeanCPIError / VLIMeanCPIError are the mean per-binary CPI
	// error magnitudes per method.
	FLIMeanCPIError float64 `json:"fliMeanCPIError"`
	VLIMeanCPIError float64 `json:"vliMeanCPIError"`
	// Failures counts benchmarks that did not complete under this
	// configuration.
	Failures int `json:"failures"`
}

// SamplerComparison is a full backend-comparison run.
type SamplerComparison struct {
	// Benchmarks is the suite the rows were measured on.
	Benchmarks []string `json:"benchmarks"`
	// Rows holds one entry per (backend, budget) configuration, in the
	// order they ran: simpoint first, then stratified per budget.
	Rows []SamplerRow `json:"rows"`
}

// CompareSamplers runs cfg's suite once per sampler configuration —
// the simpoint backend, then the stratified backend at each budget in
// budgets (default {8, 16}) — and aggregates each run into one
// SamplerRow. Backends share everything but point selection: same
// programs, same profiles, same hierarchy, same seeds. A benchmark
// failure degrades the row (counted in Failures, aggregates cover the
// completed benchmarks); only a configuration with zero completed
// benchmarks aborts the comparison.
func CompareSamplers(ctx context.Context, cfg Config, budgets []int) (*SamplerComparison, error) {
	if len(budgets) == 0 {
		budgets = []int{8, 16}
	}
	type variant struct {
		backend string
		budget  int
	}
	variants := []variant{{sampler.BackendSimPoint, 0}}
	for _, b := range budgets {
		if b <= 0 {
			return nil, fmt.Errorf("experiment: sampler budget %d must be positive", b)
		}
		variants = append(variants, variant{sampler.BackendStratified, b})
	}
	o := obs.From(ctx)
	cmp := &SamplerComparison{Benchmarks: cfg.Benchmarks}
	for _, v := range variants {
		c := cfg
		c.Sampler = v.backend
		c.SamplerBudget = v.budget
		o.Report(obs.Event{Stage: fmt.Sprintf("sampler %s%s", v.backend, budgetSuffix(v.budget))})
		suite, err := RunCtx(ctx, c)
		if suite == nil || len(suite.Results) == 0 {
			return nil, fmt.Errorf("experiment: sampler %s%s: %w", v.backend, budgetSuffix(v.budget), err)
		}
		cmp.Rows = append(cmp.Rows, reduceSuite(suite, v.backend, v.budget))
	}
	return cmp, nil
}

// budgetSuffix renders "/<budget>" for budgeted configurations.
func budgetSuffix(budget int) string {
	if budget <= 0 {
		return ""
	}
	return fmt.Sprintf("/%d", budget)
}

// reduceSuite folds one suite run into its comparison row.
func reduceSuite(s *Suite, backend string, budget int) SamplerRow {
	row := SamplerRow{
		Backend:    backend,
		Budget:     budget,
		Benchmarks: len(s.Results),
		Failures:   len(s.Failures),
	}
	var fliErr, vliErr float64
	for _, r := range s.Results {
		for _, run := range r.Runs {
			row.Binaries++
			row.FLIPoints += run.FLI.NumPoints
			row.VLIPoints += run.VLI.NumPoints
			row.TotalInstructions += run.TotalInstructions
			row.FLISimulatedInstructions += run.FLI.SimulatedInstructions
			row.VLISimulatedInstructions += run.VLI.SimulatedInstructions
			fliErr += run.FLI.CPIError
			vliErr += run.VLI.CPIError
		}
	}
	if row.Binaries > 0 {
		row.FLIMeanCPIError = fliErr / float64(row.Binaries)
		row.VLIMeanCPIError = vliErr / float64(row.Binaries)
	}
	if row.TotalInstructions > 0 {
		row.FLISimulatedFraction = float64(row.FLISimulatedInstructions) / float64(row.TotalInstructions)
		row.VLISimulatedFraction = float64(row.VLISimulatedInstructions) / float64(row.TotalInstructions)
	}
	return row
}
