// Package experiment orchestrates the paper's evaluation: for each
// benchmark it builds the four binaries, profiles them, runs per-binary
// SimPoint (FLI) and cross-binary mappable SimPoint (VLI), simulates the
// chosen regions on the CMP$im substitute, and compares both estimates
// against full-run simulation. The outputs feed Figures 1-5 and Tables
// 2-3 (internal/report renders them).
package experiment

import (
	"fmt"
	"runtime"
	"time"

	"xbsim/internal/cmpsim"
	"xbsim/internal/compiler"
	"xbsim/internal/mapping"
	"xbsim/internal/pool"
	"xbsim/internal/program"
	"xbsim/internal/sampler"
)

// Config parameterizes a full evaluation sweep.
type Config struct {
	// Benchmarks are the benchmark names to run (program.Benchmarks()
	// subset). Empty means all.
	Benchmarks []string
	// TargetOps scales each benchmark's total abstract operation count.
	TargetOps uint64
	// IntervalSize is the interval size in dynamic instructions: the FLI
	// size for every binary and the minimum VLI size on the primary. The
	// paper uses 100M; the synthetic runs are ~1000x smaller.
	IntervalSize uint64
	// MaxK caps SimPoint clusters; the paper uses 10.
	MaxK int
	// Dim is SimPoint's projection dimensionality (paper/SimPoint: 15).
	Dim int
	// BICThreshold is SimPoint's model-selection threshold (default 0.9).
	BICThreshold float64
	// Restarts is the per-k k-means restart count.
	Restarts int
	// Seed names the top-level random stream.
	Seed string
	// Input is the program input (the "ref" input).
	Input program.Input
	// Hierarchy is the simulated memory system (defaults to Table 1).
	Hierarchy cmpsim.HierarchyConfig
	// Mapping tunes the mappable-point matchers.
	Mapping mapping.Options
	// Primary selects the primary binary by index into
	// compiler.AllTargets (default 0 = 32-bit unoptimized).
	Primary int
	// DisableWarming turns off functional cache warming during
	// fast-forwarding in region simulations. The warming ablation shows
	// the cold-start bias this introduces for small regions.
	DisableWarming bool
	// EarlyTolerance > 0 enables early simulation points: each phase
	// picks the earliest interval within (1 + tolerance) of the
	// centroid-closest one, trading a little representativeness for less
	// fast-forwarding (Perelman et al., PACT 2003).
	EarlyTolerance float64
	// Sampler selects the point-selection backend: "simpoint" (default,
	// empty means simpoint) runs the SimPoint k-means picker unchanged;
	// "stratified" runs two-phase stratified sampling (see
	// internal/sampler). The choice flows into the evaluation memo keys
	// and — for non-default backends — the checkpoint fingerprint, so
	// results from different backends never cross-contaminate.
	Sampler string
	// SamplerBudget is the stratified backend's deep-simulation budget
	// (total simulation points per clustering run). <= 0 means the
	// backend default (12). Ignored by the simpoint backend.
	SamplerBudget int
	// SamplerStrata caps the stratified backend's stratum count. <= 0
	// means the backend default (8). Ignored by the simpoint backend.
	SamplerStrata int
	// Parallelism caps concurrent benchmark pipelines (default NumCPU).
	Parallelism int
	// Workers bounds the intra-benchmark worker pool: per-binary profile
	// walks, the SimPoint k sweep and its k-means restarts, and
	// per-binary evaluation all draw from one shared pool of this size.
	// Results are bit-identical for every value — all randomness is
	// per-index seeded and results are collected by index — so Workers
	// trades only wall clock, never output. Default GOMAXPROCS; 1 runs
	// the pipeline serially.
	Workers int
	// Retry retries transient pipeline-stage failures (injected faults,
	// stage deadline expiries) with capped exponential backoff and
	// deterministic jitter. The zero value disables retries. Because
	// every stage is deterministic and idempotent, a successful retry
	// produces results bit-identical to an undisturbed run.
	Retry RetryPolicy
	// StageTimeout bounds each pipeline-stage attempt; a stage that
	// exceeds it fails with context.DeadlineExceeded (transient, so it
	// is retried under Retry). 0 = no per-stage deadline.
	StageTimeout time.Duration
	// CheckpointDir, when set, persists each completed benchmark's
	// result as an atomically written JSON checkpoint carrying a
	// fingerprint, and makes RunCtx skip benchmarks whose checkpoints
	// validate against the current configuration — so a killed suite
	// resumes where it stopped. Invalid or corrupt checkpoints are
	// detected by fingerprint mismatch and recomputed.
	CheckpointDir string
	// SharedPool, when non-nil, is used as the suite's intra-benchmark
	// worker pool instead of a fresh pool of Workers goroutines. The
	// serve scheduler installs one pool shared by every concurrent job so
	// the whole process, not each suite, is bounded by one worker budget
	// (the pool's caller-participates token scheme makes cross-suite
	// sharing deadlock-free). Like Workers, this is a wall-clock knob:
	// results are bit-identical with or without it.
	SharedPool *pool.Pool
	// DisableMemo turns off the content-addressed evaluation memo table
	// (see internal/experiment/memo.go). Memoization is on by default and
	// never changes results — a memoized suite is fingerprint-identical
	// to an unmemoized one — so this knob exists for A/B measurement
	// (the bench harness, the memo-determinism tests) and as an escape
	// hatch. It is deliberately excluded from the checkpoint
	// configuration fingerprint.
	DisableMemo bool

	// workerPool is the shared bounded pool threaded through the
	// pipeline. RunCtx installs one pool for the whole suite so
	// concurrent benchmarks share a single Workers budget;
	// RunBenchmarkCtx creates its own when none is installed.
	workerPool *pool.Pool
	// memo is the suite-wide content-addressed evaluation memo table,
	// installed alongside workerPool (nil when DisableMemo).
	memo *evalMemo
	// simPool recycles cmpsim cache-hierarchy state across evaluation
	// walks, installed alongside workerPool.
	simPool *cmpsim.StatePool
}

// QuickConfig is a reduced configuration for tests and go-test benches:
// five representative benchmarks at small scale.
func QuickConfig() Config {
	cfg := FullConfig()
	cfg.Benchmarks = []string{"gcc", "apsi", "applu", "mcf", "swim"}
	cfg.TargetOps = 1_200_000
	cfg.IntervalSize = 12_000
	return cfg
}

// FullConfig is the paper-shaped configuration: all 21 benchmarks, four
// binaries each, ~100+ intervals per run.
func FullConfig() Config {
	return Config{
		Benchmarks:   program.Benchmarks(),
		TargetOps:    8_000_000,
		IntervalSize: 60_000,
		MaxK:         10,
		Dim:          15,
		BICThreshold: 0.9,
		Restarts:     5,
		Seed:         "xbsim",
		Input:        program.Input{Name: "ref", Seed: 0x5EED},
		Hierarchy:    cmpsim.DefaultHierarchyConfig(),
	}
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = program.Benchmarks()
	}
	if c.TargetOps == 0 {
		c.TargetOps = 8_000_000
	}
	if c.IntervalSize == 0 {
		c.IntervalSize = 60_000
	}
	if c.MaxK <= 0 {
		c.MaxK = 10
	}
	if c.Dim <= 0 {
		c.Dim = 15
	}
	if c.BICThreshold <= 0 {
		c.BICThreshold = 0.9
	}
	if c.Restarts <= 0 {
		c.Restarts = 5
	}
	if c.Seed == "" {
		c.Seed = "xbsim"
	}
	if c.Input == (program.Input{}) {
		c.Input = program.Input{Name: "ref", Seed: 0x5EED}
	}
	if len(c.Hierarchy.Levels) == 0 {
		c.Hierarchy = cmpsim.DefaultHierarchyConfig()
	}
	if c.Primary < 0 || c.Primary >= len(compiler.AllTargets) {
		return c, fmt.Errorf("experiment: primary binary index %d out of range", c.Primary)
	}
	if c.Sampler == "" {
		c.Sampler = sampler.BackendSimPoint
	}
	if _, err := sampler.New(c.Sampler); err != nil {
		return c, fmt.Errorf("experiment: %w", err)
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}
