package experiment

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/program"
)

// programSpecForTest is a small deterministic spec for pipeline tests.
func programSpecForTest(t *testing.T) program.Spec {
	t.Helper()
	return program.RandomSpec(42, 0)
}

// retryConfig is testConfig plus a fast retry policy for fault tests.
func retryConfig(benchmarks ...string) Config {
	cfg := testConfig(benchmarks...)
	cfg.Retry = RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	return cfg
}

// Transient faults across every layer of the pipeline — stage-level
// errors, worker panics, delays — must be retried away, and the
// recovered run must be bit-identical to an undisturbed one.
func TestRetryRecoversInjectedFaults(t *testing.T) {
	baseline, err := RunBenchmark("gzip", testConfig("gzip"))
	if err != nil {
		t.Fatal(err)
	}

	inj := faults.NewInjector(
		faults.Rule{Stage: "compile", Index: 0, Kind: faults.KindError},
		faults.Rule{Stage: "profile.task", Index: 1, Kind: faults.KindPanic},
		faults.Rule{Stage: "mapping", Index: 0, Kind: faults.KindError},
		faults.Rule{Stage: "clustering.task", Index: 0, Kind: faults.KindDelay, Delay: 2 * time.Millisecond},
		faults.Rule{Stage: "evaluate.task", Index: 2, Kind: faults.KindPanic},
	)
	o := obs.New()
	ctx := obs.With(faults.With(context.Background(), inj), o)
	res, err := RunBenchmarkCtx(ctx, "gzip", retryConfig("gzip"))
	if err != nil {
		t.Fatalf("faulted run failed despite retries: %v", err)
	}
	if got, want := res.Fingerprint(), baseline.Fingerprint(); got != want {
		t.Fatalf("faulted run diverged: %s != %s", got, want)
	}
	if n := o.Counter("pipeline.faults_injected").Value(); n != 5 {
		t.Fatalf("faults_injected = %d, want 5", n)
	}
	// Four faults are errors/panics (one per stage envelope); the delay
	// succeeds in place and must not trigger a retry.
	if n := o.Counter("pipeline.retries").Value(); n != 4 {
		t.Fatalf("retries = %d, want 4", n)
	}
	// Fired faults are attributed to their stage hook, retries to the
	// enclosing stage envelope — the per-stage observability chaos runs
	// rely on.
	for _, hook := range []string{"compile", "profile.task", "mapping", "clustering.task", "evaluate.task"} {
		if n := o.Counter("pipeline.faults_injected." + hook).Value(); n != 1 {
			t.Errorf("faults_injected.%s = %d, want 1", hook, n)
		}
	}
	for stage, want := range map[string]uint64{
		"compile": 1, "profile": 1, "mapping": 1, "evaluate": 1,
		"clustering": 0, // the delay fault succeeds in place
	} {
		if n := o.Counter("pipeline.retries." + stage).Value(); n != want {
			t.Errorf("retries.%s = %d, want %d", stage, n, want)
		}
	}
}

// A hang fault blocks until the stage deadline expires; the expiry is
// transient, so the next attempt must succeed bit-identically.
func TestHangFaultTimesOutAndRetries(t *testing.T) {
	baseline, err := RunBenchmark("mcf", testConfig("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(
		faults.Rule{Stage: "mapping", Index: 0, Kind: faults.KindHang},
	)
	o := obs.New()
	ctx := obs.With(faults.With(context.Background(), inj), o)
	cfg := retryConfig("mcf")
	// The deadline only needs to be far above an honest stage's duration
	// so that exactly the hung attempt expires. Under -race with the full
	// package's heap mapped, a real evaluate attempt can cross 2s, which
	// would burn the retry budget on legitimate work — keep headroom.
	cfg.StageTimeout = 5 * time.Second
	res, err := RunBenchmarkCtx(ctx, "mcf", cfg)
	if err != nil {
		t.Fatalf("hang was not retried away: %v", err)
	}
	if got, want := res.Fingerprint(), baseline.Fingerprint(); got != want {
		t.Fatalf("post-hang run diverged: %s != %s", got, want)
	}
	if n := o.Counter("pipeline.retries").Value(); n == 0 {
		t.Fatal("hang recovered without a retry")
	}
}

// Faults on more consecutive invocations than the retry budget must
// surface as a failure that still identifies the injected fault.
func TestExhaustedRetriesFailBenchmark(t *testing.T) {
	inj := faults.NewInjector(
		faults.Rule{Stage: "profile", Index: 0, Kind: faults.KindError},
		faults.Rule{Stage: "profile", Index: 1, Kind: faults.KindError},
		faults.Rule{Stage: "profile", Index: 2, Kind: faults.KindError},
	)
	cfg := testConfig("mcf")
	cfg.Retry = RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond}
	_, err := RunBenchmarkCtx(faults.With(context.Background(), inj), "mcf", cfg)
	if err == nil {
		t.Fatal("benchmark succeeded with faults on every attempt")
	}
	if !faults.Injected(err) {
		t.Fatalf("exhausted-retries error lost the injected fault: %v", err)
	}
}

// A deterministic failure (unknown benchmark) must not be retried, and
// the rest of the suite must complete: partial results plus an explicit
// failure record, returned alongside the joined error.
func TestSuiteSurvivesFailingBenchmark(t *testing.T) {
	o := obs.New()
	ctx := obs.With(context.Background(), o)
	cfg := retryConfig("gzip", "nosuch")
	suite, err := RunCtx(ctx, cfg)
	if err == nil {
		t.Fatal("suite with an unknown benchmark reported success")
	}
	if !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("joined error does not name the failed benchmark: %v", err)
	}
	if suite == nil {
		t.Fatal("failure discarded the partial suite")
	}
	if len(suite.Results) != 1 || suite.Results[0].Name != "gzip" {
		t.Fatalf("partial results = %+v, want [gzip]", suite.Results)
	}
	if len(suite.Failures) != 1 || suite.Failures[0].Name != "nosuch" {
		t.Fatalf("failures = %+v, want [nosuch]", suite.Failures)
	}
	if suite.ByName("gzip") == nil || suite.ByName("nosuch") != nil {
		t.Fatal("ByName inconsistent with partial results")
	}
	if n := o.Counter("pipeline.benchmarks_failed").Value(); n != 1 {
		t.Fatalf("benchmarks_failed = %d, want 1", n)
	}
	// A deterministic failure must fail fast, not burn the retry budget.
	if n := o.Counter("pipeline.retries").Value(); n != 0 {
		t.Fatalf("retries = %d on a deterministic failure, want 0", n)
	}
}

// Cancelling the suite context mid-run must abort promptly with a
// wrapped context.Canceled and leak no goroutines.
func TestSuiteCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	cfg := testConfig("gcc", "apsi", "applu", "mcf")
	cfg.Retry = RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond}
	_, err := RunCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite returned %v, want wrapped context.Canceled", err)
	}
	// All pipeline goroutines (benchmark runners, pool helpers) must
	// wind down once cancellation propagates.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A hang fault with no stage deadline must be interruptible by the
// parent context, and the cancellation must not be retried.
func TestHangFaultYieldsToParentCancellation(t *testing.T) {
	inj := faults.NewInjector(
		faults.Rule{Stage: "vli", Index: 0, Kind: faults.KindHang},
	)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	o := obs.New()
	start := time.Now()
	_, err := RunBenchmarkCtx(obs.With(faults.With(ctx, inj), o), "mcf", retryConfig("mcf"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("hung benchmark returned %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if n := o.Counter("pipeline.retries").Value(); n != 0 {
		t.Fatalf("retries = %d after parent cancellation, want 0", n)
	}
}

// RunSpecCtx must push a synthesized spec through the same pipeline and
// produce the spec-named result deterministically.
func TestRunSpecDeterministic(t *testing.T) {
	spec := programSpecForTest(t)
	cfg := testConfig()
	cfg.Benchmarks = nil // unused by RunSpecCtx
	a, err := RunSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != spec.Name() {
		t.Fatalf("result name %q, want %q", a.Name, spec.Name())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("spec runs diverged: %s != %s", a.Fingerprint(), b.Fingerprint())
	}
}

// A faulted run with a flight recorder attached must journal the stage
// lifecycle, the fired fault, and the retry as structured events.
func TestFlightRecorderJournalsFaultsAndRetries(t *testing.T) {
	inj := faults.NewInjector(
		faults.Rule{Stage: "mapping", Index: 0, Kind: faults.KindError},
	)
	o := obs.New()
	o.Events = obs.NewRecorder(256)
	ctx := obs.With(faults.With(context.Background(), inj), o)
	if _, err := RunBenchmarkCtx(ctx, "gzip", retryConfig("gzip")); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range o.Events.Events() {
		kinds[ev.Kind]++
		switch ev.Kind {
		case "fault":
			if ev.Stage != "mapping" || !strings.Contains(ev.Detail, "error fault") {
				t.Errorf("fault event = %+v", ev)
			}
		case "stage.retry":
			if ev.Stage != "mapping" || ev.Benchmark != "gzip" {
				t.Errorf("retry event = %+v", ev)
			}
		}
	}
	// Six stages start and finish; the faulted mapping attempt adds one
	// extra start. The fault and the retry each appear exactly once, and
	// nothing failed terminally.
	if kinds["stage.start"] != 7 || kinds["stage.finish"] != 6 {
		t.Errorf("stage lifecycle events = %v, want 7 starts / 6 finishes", kinds)
	}
	if kinds["fault"] != 1 || kinds["stage.retry"] != 1 || kinds["stage.fail"] != 0 {
		t.Errorf("event kinds = %v", kinds)
	}
}
