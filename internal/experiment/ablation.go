package experiment

import (
	"fmt"

	"xbsim/internal/compiler"
	"xbsim/internal/mapping"
)

// AblationRow is one configuration's summary in an ablation study.
type AblationRow struct {
	// Label names the configuration ("threshold=0.7", "procs-only", ...).
	Label string
	// Values holds the metrics, parallel to the table's Columns.
	Values []float64
}

// AblationTable is an ablation study's results.
type AblationTable struct {
	// Title describes the study.
	Title string
	// Columns names the metrics.
	Columns []string
	// Rows holds one entry per configuration.
	Rows []AblationRow
}

// suiteSummary condenses a suite into the ablation metrics: average
// simulation point count, average VLI interval size (x target), average
// CPI error, and average speedup error per method across all pair
// configurations.
func suiteSummary(s *Suite) (points, intervalX, cpiErrVLI, speedupErrFLI, speedupErrVLI float64) {
	n := 0
	for _, r := range s.Results {
		for _, run := range r.Runs {
			points += float64(run.VLI.NumPoints)
			intervalX += run.VLI.AvgIntervalInstrs / float64(s.Config.IntervalSize)
			cpiErrVLI += run.VLI.CPIError
			n++
		}
		for _, p := range append(append([]Pair{}, SamePlatformPairs...), CrossPlatformPairs...) {
			speedupErrFLI += r.SpeedupError(p, false)
			speedupErrVLI += r.SpeedupError(p, true)
		}
	}
	pairs := float64(4 * len(s.Results))
	return points / float64(n), intervalX / float64(n), cpiErrVLI / float64(n),
		speedupErrFLI / pairs, speedupErrVLI / pairs
}

var ablationColumns = []string{
	"vli_points", "vli_interval_x_target", "vli_cpi_err", "fli_speedup_err", "vli_speedup_err",
}

func summaryRow(label string, s *Suite) AblationRow {
	p, ix, ce, sf, sv := suiteSummary(s)
	return AblationRow{Label: label, Values: []float64{p, ix, ce, sf, sv}}
}

// AblationBICThreshold sweeps SimPoint's BIC model-selection threshold.
// Lower thresholds accept smaller k (fewer points, coarser phases).
func AblationBICThreshold(cfg Config, thresholds []float64) (*AblationTable, error) {
	t := &AblationTable{Title: "BIC threshold ablation", Columns: ablationColumns}
	for _, th := range thresholds {
		c := cfg
		c.BICThreshold = th
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, summaryRow(fmt.Sprintf("threshold=%.2f", th), s))
	}
	return t, nil
}

// AblationProjectionDim sweeps the random projection dimensionality.
// SimPoint's default is 15; too few dimensions blur distinct behaviors.
func AblationProjectionDim(cfg Config, dims []int) (*AblationTable, error) {
	t := &AblationTable{Title: "Projection dimension ablation", Columns: ablationColumns}
	for _, d := range dims {
		c := cfg
		c.Dim = d
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, summaryRow(fmt.Sprintf("dim=%d", d), s))
	}
	return t, nil
}

// AblationMarkerGranularity compares mappable-point vocabularies:
// procedure entries only, plus loop entries, plus loop bodies (the paper's
// full set). Richer vocabularies cut intervals closer to the target size.
func AblationMarkerGranularity(cfg Config) (*AblationTable, error) {
	t := &AblationTable{Title: "Marker granularity ablation", Columns: ablationColumns}
	variants := []struct {
		label string
		opts  mapping.Options
	}{
		{"procs-only", mapping.Options{DisableLoopEntries: true, DisableLoopBodies: true, DisableInlineHeuristic: true}},
		{"+loop-entries", mapping.Options{DisableLoopBodies: true}},
		{"+loop-bodies", mapping.Options{}},
	}
	for _, v := range variants {
		c := cfg
		c.Mapping = v.opts
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, summaryRow(v.label, s))
	}
	return t, nil
}

// AblationInlineHeuristic toggles the §3.3 inlined-loop matcher.
func AblationInlineHeuristic(cfg Config) (*AblationTable, error) {
	t := &AblationTable{Title: "Inlined-loop heuristic ablation", Columns: ablationColumns}
	for _, v := range []struct {
		label   string
		disable bool
	}{{"heuristic-on", false}, {"heuristic-off", true}} {
		c := cfg
		c.Mapping.DisableInlineHeuristic = v.disable
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, summaryRow(v.label, s))
	}
	return t, nil
}

// AblationEarlyPoints sweeps the early-simulation-point tolerance,
// reporting how far into execution the average chosen point sits (the
// fast-forward cost) against the accuracy metrics.
func AblationEarlyPoints(cfg Config, tolerances []float64) (*AblationTable, error) {
	t := &AblationTable{
		Title:   "Early simulation points ablation",
		Columns: []string{"avg_point_position", "vli_cpi_err", "fli_speedup_err", "vli_speedup_err"},
	}
	for _, tol := range tolerances {
		c := cfg
		c.EarlyTolerance = tol
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		// Average normalized position of the chosen VLI points: 0 = start
		// of execution, 1 = end.
		var pos float64
		n := 0
		for _, r := range s.Results {
			run := r.Runs[r.Primary]
			for _, iv := range run.VLI.PointInterval {
				if iv >= 0 && run.VLI.NumIntervals > 1 {
					pos += float64(iv) / float64(run.VLI.NumIntervals-1)
					n++
				}
			}
		}
		if n > 0 {
			pos /= float64(n)
		}
		_, _, ce, sf, sv := suiteSummary(s)
		t.Rows = append(t.Rows, AblationRow{
			Label:  fmt.Sprintf("tolerance=%.2f", tol),
			Values: []float64{pos, ce, sf, sv},
		})
	}
	return t, nil
}

// AblationWarming toggles functional cache warming during fast-forward in
// region simulations. Without warming, small simulation regions start on
// stale cache state and the CPI estimates acquire cold-start bias — the
// reason CMP$im-style functional simulators warm during fast-forward.
func AblationWarming(cfg Config) (*AblationTable, error) {
	t := &AblationTable{Title: "Functional warming ablation", Columns: ablationColumns}
	for _, v := range []struct {
		label   string
		disable bool
	}{{"warming-on", false}, {"warming-off", true}} {
		c := cfg
		c.DisableWarming = v.disable
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, summaryRow(v.label, s))
	}
	return t, nil
}

// AblationPrimaryBinary varies which binary the VLIs are constructed from.
// The paper notes mapped intervals expand or shrink with this choice.
func AblationPrimaryBinary(cfg Config) (*AblationTable, error) {
	t := &AblationTable{Title: "Primary binary ablation", Columns: ablationColumns}
	for primary := range compiler.AllTargets {
		c := cfg
		c.Primary = primary
		s, err := Run(c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, summaryRow("primary="+compiler.AllTargets[primary].String(), s))
	}
	return t, nil
}
