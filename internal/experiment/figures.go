package experiment

import (
	"fmt"
	"math"
	"sort"
)

// Figure is chart-shaped data: one row per benchmark (plus an "Avg" row)
// and one or more named series, mirroring the paper's bar charts.
type Figure struct {
	// ID is the paper artifact ID ("fig1" ... "fig5").
	ID string
	// Title and YLabel describe the chart.
	Title, YLabel string
	// RowLabels names the rows (benchmark names plus "Avg").
	RowLabels []string
	// Series holds the per-row values for each method/configuration.
	Series []FigureSeries
}

// FigureSeries is one named value series of a Figure.
type FigureSeries struct {
	Name   string
	Values []float64
}

// appendAvg adds the cross-benchmark average row to every series.
func (f *Figure) appendAvg() {
	f.RowLabels = append(f.RowLabels, "Avg")
	for i := range f.Series {
		var sum float64
		n := 0
		for _, v := range f.Series[i].Values {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		avg := math.NaN()
		if n > 0 {
			avg = sum / float64(n)
		}
		f.Series[i].Values = append(f.Series[i].Values, avg)
	}
}

// meanOverRuns averages a per-binary metric across a benchmark's binaries.
func meanOverRuns(r *BenchmarkResult, metric func(*BinaryRun) float64) float64 {
	var sum float64
	for _, run := range r.Runs {
		sum += metric(run)
	}
	return sum / float64(len(r.Runs))
}

// Figure1 reproduces "Number of SimPoints for per-binary SimPoint (FLI)
// and mappable SimPoint (VLI)", averaged across the four binaries.
func (s *Suite) Figure1() *Figure {
	f := &Figure{
		ID:     "fig1",
		Title:  "Number of SimPoints (avg across 4 binaries)",
		YLabel: "simulation points",
		Series: []FigureSeries{{Name: "FLI"}, {Name: "VLI"}},
	}
	for _, r := range s.Results {
		f.RowLabels = append(f.RowLabels, r.Name)
		f.Series[0].Values = append(f.Series[0].Values,
			meanOverRuns(r, func(b *BinaryRun) float64 { return float64(b.FLI.NumPoints) }))
		f.Series[1].Values = append(f.Series[1].Values,
			meanOverRuns(r, func(b *BinaryRun) float64 { return float64(b.VLI.NumPoints) }))
	}
	f.appendAvg()
	return f
}

// Figure2 reproduces "Interval Size for mappable SimPoint (VLI)", the
// average interval size across the four binaries. Per-binary FLI size is
// fixed at Config.IntervalSize by construction.
func (s *Suite) Figure2() *Figure {
	f := &Figure{
		ID:     "fig2",
		Title:  "Average VLI interval size (avg across 4 binaries)",
		YLabel: "instructions",
		Series: []FigureSeries{{Name: "VLI"}},
	}
	for _, r := range s.Results {
		f.RowLabels = append(f.RowLabels, r.Name)
		f.Series[0].Values = append(f.Series[0].Values,
			meanOverRuns(r, func(b *BinaryRun) float64 { return b.VLI.AvgIntervalInstrs }))
	}
	f.appendAvg()
	return f
}

// Figure3 reproduces "CPI Error for per-binary SimPoint (FLI) and mappable
// SimPoint (VLI)", averaged across the four binaries.
func (s *Suite) Figure3() *Figure {
	f := &Figure{
		ID:     "fig3",
		Title:  "CPI error vs full simulation (avg across 4 binaries)",
		YLabel: "relative error",
		Series: []FigureSeries{{Name: "FLI"}, {Name: "VLI"}},
	}
	for _, r := range s.Results {
		f.RowLabels = append(f.RowLabels, r.Name)
		f.Series[0].Values = append(f.Series[0].Values,
			meanOverRuns(r, func(b *BinaryRun) float64 { return b.FLI.CPIError }))
		f.Series[1].Values = append(f.Series[1].Values,
			meanOverRuns(r, func(b *BinaryRun) float64 { return b.VLI.CPIError }))
	}
	f.appendAvg()
	return f
}

// Pair names a binary-pair speedup configuration by indices into
// compiler.AllTargets order (32u, 32o, 64u, 64o).
type Pair struct {
	Name string
	A, B int
}

// SamePlatformPairs are Figure 4's configurations: speedup from
// unoptimized to optimized on one platform.
var SamePlatformPairs = []Pair{
	{Name: "32u32o", A: 0, B: 1},
	{Name: "64u64o", A: 2, B: 3},
}

// CrossPlatformPairs are Figure 5's configurations: speedup across
// platforms at fixed optimization level.
var CrossPlatformPairs = []Pair{
	{Name: "32u64u", A: 0, B: 2},
	{Name: "32o64o", A: 1, B: 3},
}

// TrueSpeedup is the ratio of true cycle counts for the pair.
func (r *BenchmarkResult) TrueSpeedup(p Pair) float64 {
	return float64(r.Runs[p.A].TrueCycles) / float64(r.Runs[p.B].TrueCycles)
}

// EstimatedSpeedup is the pair's speedup from sampled simulation under the
// given method's estimated cycles.
func (r *BenchmarkResult) EstimatedSpeedup(p Pair, vli bool) float64 {
	pick := func(run *BinaryRun) float64 {
		if vli {
			return run.VLI.EstCycles
		}
		return run.FLI.EstCycles
	}
	return pick(r.Runs[p.A]) / pick(r.Runs[p.B])
}

// SpeedupError is |true - estimated| / true, the paper's §5.2 metric.
func (r *BenchmarkResult) SpeedupError(p Pair, vli bool) float64 {
	ts := r.TrueSpeedup(p)
	return math.Abs(ts-r.EstimatedSpeedup(p, vli)) / ts
}

// speedupFigure assembles Figure 4 or 5 from a pair list.
func (s *Suite) speedupFigure(id, title string, pairs []Pair) *Figure {
	f := &Figure{ID: id, Title: title, YLabel: "speedup error"}
	for _, p := range pairs {
		f.Series = append(f.Series,
			FigureSeries{Name: "fli_" + p.Name}, FigureSeries{Name: "vli_" + p.Name})
	}
	for _, r := range s.Results {
		f.RowLabels = append(f.RowLabels, r.Name)
		for pi, p := range pairs {
			f.Series[2*pi].Values = append(f.Series[2*pi].Values, r.SpeedupError(p, false))
			f.Series[2*pi+1].Values = append(f.Series[2*pi+1].Values, r.SpeedupError(p, true))
		}
	}
	f.appendAvg()
	return f
}

// Figure4 reproduces speedup error across optimization levels on the same
// platform (32u->32o, 64u->64o), FLI vs VLI.
func (s *Suite) Figure4() *Figure {
	return s.speedupFigure("fig4",
		"Speedup error, same platform (across optimization levels)", SamePlatformPairs)
}

// Figure5 reproduces speedup error across platforms at fixed optimization
// level (32u->64u, 32o->64o), FLI vs VLI.
func (s *Suite) Figure5() *Figure {
	return s.speedupFigure("fig5",
		"Speedup error, cross platform (same optimization level)", CrossPlatformPairs)
}

// PhaseRow is one row of a Table 2/3-style phase comparison.
type PhaseRow struct {
	// Phase is the phase ID (per-binary for FLI, shared for VLI).
	Phase int
	// Weight is the fraction of executed instructions in the phase.
	Weight float64
	// TrueCPI is the phase's average CPI over all its intervals in the
	// full run; SPCPI the CPI of its simulation point.
	TrueCPI, SPCPI float64
	// Error is (SPCPI - TrueCPI) / TrueCPI, signed like the paper's
	// tables.
	Error float64
}

// PhaseBias is one method's half of a Table 2/3: the largest phases of
// two binaries side by side.
type PhaseBias struct {
	// Benchmark and Method identify the comparison.
	Benchmark, Method string
	// BinaryA/B name the two compared binaries.
	BinaryA, BinaryB string
	// RowsA/RowsB are the top phases (by weight) in each binary. For VLI
	// row i refers to the same phase in both binaries; for FLI the phases
	// are unrelated across binaries (that inconsistency is the point).
	RowsA, RowsB []PhaseRow
}

// topPhases returns the method's phases sorted by descending weight.
func topPhases(ms *MethodStats, n int) []PhaseRow {
	var rows []PhaseRow
	for p := 0; p < ms.K; p++ {
		if ms.PhaseWeights[p] <= 0 {
			continue
		}
		spcpi := math.NaN()
		if p < len(ms.PointCPI) {
			spcpi = ms.PointCPI[p]
		}
		r := PhaseRow{
			Phase:   p,
			Weight:  ms.PhaseWeights[p],
			TrueCPI: ms.PhaseTrueCPI[p],
			SPCPI:   spcpi,
		}
		if r.TrueCPI > 0 && !math.IsNaN(spcpi) {
			r.Error = (r.SPCPI - r.TrueCPI) / r.TrueCPI
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Weight > rows[j].Weight })
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// PhaseBiasTables builds the paper's Table 2/3 content for one benchmark
// and binary pair: the VLI comparison (consistent bias) followed by the
// FLI comparison (shifting bias). n is the number of phases to show (the
// paper shows 3).
func (s *Suite) PhaseBiasTables(bench string, pair Pair, n int) ([]PhaseBias, error) {
	r := s.ByName(bench)
	if r == nil {
		return nil, fmt.Errorf("experiment: benchmark %q not in suite", bench)
	}
	a, b := r.Runs[pair.A], r.Runs[pair.B]
	vli := PhaseBias{
		Benchmark: bench, Method: "VLI",
		BinaryA: a.Binary.Name, BinaryB: b.Binary.Name,
		RowsA: topPhases(&a.VLI, n),
	}
	// For VLI, show binary B's rows for the SAME phases as A's top list.
	for _, ra := range vli.RowsA {
		p := ra.Phase
		spcpi := math.NaN()
		if p < len(b.VLI.PointCPI) {
			spcpi = b.VLI.PointCPI[p]
		}
		rb := PhaseRow{
			Phase:   p,
			Weight:  b.VLI.PhaseWeights[p],
			TrueCPI: b.VLI.PhaseTrueCPI[p],
			SPCPI:   spcpi,
		}
		if rb.TrueCPI > 0 && !math.IsNaN(spcpi) {
			rb.Error = (rb.SPCPI - rb.TrueCPI) / rb.TrueCPI
		}
		vli.RowsB = append(vli.RowsB, rb)
	}
	fli := PhaseBias{
		Benchmark: bench, Method: "FLI",
		BinaryA: a.Binary.Name, BinaryB: b.Binary.Name,
		RowsA: topPhases(&a.FLI, n),
		RowsB: topPhases(&b.FLI, n),
	}
	return []PhaseBias{vli, fli}, nil
}

// Figures returns all five figures in paper order.
func (s *Suite) Figures() []*Figure {
	return []*Figure{s.Figure1(), s.Figure2(), s.Figure3(), s.Figure4(), s.Figure5()}
}
