package experiment

import (
	"encoding/json"
	"io"
)

// Export schema: a stable, NaN-free JSON projection of a Suite for
// plotting and downstream analysis (`xbsim figures -json`).

// MethodExport is one estimation method's summary for one binary.
type MethodExport struct {
	K                 int     `json:"k"`
	NumPoints         int     `json:"numPoints"`
	NumIntervals      int     `json:"numIntervals"`
	AvgIntervalInstrs float64 `json:"avgIntervalInstrs"`
	EstCPI            float64 `json:"estCPI"`
	CPIError          float64 `json:"cpiError"`
	SimulatedInstrs   uint64  `json:"simulatedInstructions"`
}

// RunExport is one binary's results.
type RunExport struct {
	Binary       string       `json:"binary"`
	Instructions uint64       `json:"instructions"`
	TrueCycles   uint64       `json:"trueCycles"`
	TrueCPI      float64      `json:"trueCPI"`
	FLI          MethodExport `json:"fli"`
	VLI          MethodExport `json:"vli"`
}

// PairExport is one speedup configuration's outcome.
type PairExport struct {
	Pair         string  `json:"pair"`
	TrueSpeedup  float64 `json:"trueSpeedup"`
	FLIEstimated float64 `json:"fliEstimated"`
	VLIEstimated float64 `json:"vliEstimated"`
	FLIError     float64 `json:"fliError"`
	VLIError     float64 `json:"vliError"`
}

// BenchmarkExport is one benchmark's results.
type BenchmarkExport struct {
	Name           string       `json:"name"`
	MappablePoints int          `json:"mappablePoints"`
	Runs           []RunExport  `json:"runs"`
	Pairs          []PairExport `json:"pairs"`
}

// FailureExport is one benchmark the suite could not complete.
type FailureExport struct {
	Name  string `json:"name"`
	Error string `json:"error"`
}

// SuiteExport is the whole evaluation. Failures is non-empty exactly
// when the suite is partial; consumers must treat the benchmark list as
// incomplete then.
type SuiteExport struct {
	IntervalSize uint64            `json:"intervalSize"`
	TargetOps    uint64            `json:"targetOps"`
	MaxK         int               `json:"maxK"`
	Sampler      string            `json:"sampler"`
	Benchmarks   []BenchmarkExport `json:"benchmarks"`
	Failures     []FailureExport   `json:"failures,omitempty"`
	Figures      []*Figure         `json:"figures"`
}

func methodExport(ms *MethodStats) MethodExport {
	return MethodExport{
		K:                 ms.K,
		NumPoints:         ms.NumPoints,
		NumIntervals:      ms.NumIntervals,
		AvgIntervalInstrs: ms.AvgIntervalInstrs,
		EstCPI:            ms.EstCPI,
		CPIError:          ms.CPIError,
		SimulatedInstrs:   ms.SimulatedInstructions,
	}
}

// Export builds the JSON projection of the suite.
func (s *Suite) Export() *SuiteExport {
	out := &SuiteExport{
		IntervalSize: s.Config.IntervalSize,
		TargetOps:    s.Config.TargetOps,
		MaxK:         s.Config.MaxK,
		Sampler:      s.Config.Sampler,
		Figures:      s.Figures(),
	}
	allPairs := append(append([]Pair{}, SamePlatformPairs...), CrossPlatformPairs...)
	for _, r := range s.Results {
		be := BenchmarkExport{
			Name:           r.Name,
			MappablePoints: len(r.Mapping.Points),
		}
		for _, run := range r.Runs {
			be.Runs = append(be.Runs, RunExport{
				Binary:       run.Binary.Name,
				Instructions: run.TotalInstructions,
				TrueCycles:   run.TrueCycles,
				TrueCPI:      run.TrueCPI,
				FLI:          methodExport(&run.FLI),
				VLI:          methodExport(&run.VLI),
			})
		}
		for _, p := range allPairs {
			be.Pairs = append(be.Pairs, PairExport{
				Pair:         p.Name,
				TrueSpeedup:  r.TrueSpeedup(p),
				FLIEstimated: r.EstimatedSpeedup(p, false),
				VLIEstimated: r.EstimatedSpeedup(p, true),
				FLIError:     r.SpeedupError(p, false),
				VLIError:     r.SpeedupError(p, true),
			})
		}
		out.Benchmarks = append(out.Benchmarks, be)
	}
	for _, f := range s.Failures {
		out.Failures = append(out.Failures, FailureExport{Name: f.Name, Error: f.Err})
	}
	return out
}

// WriteJSON writes the suite's JSON projection, indented.
func (s *Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}
