package experiment

import (
	"context"
	"runtime"
	"testing"

	"xbsim/internal/obs"
)

// Tracing is observation, and observation must change nothing: the same
// configuration run with a trace ID and a full observer on the context
// must fingerprint identically to a bare run — serially and at
// GOMAXPROCS parallelism.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		cfg := testConfig("gzip", "art")
		cfg.Workers = workers

		bare, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		o := obs.New()
		o.Events = obs.NewRecorder(obs.DefaultRecorderCapacity)
		o.Events.SetTrace("t-determinism")
		ctx := obs.WithTraceID(obs.With(context.Background(), o), "t-determinism")
		traced, err := RunCtx(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}

		if bf, tf := bare.Fingerprint(), traced.Fingerprint(); bf != tf {
			t.Fatalf("workers=%d: traced fingerprint %s != bare %s — tracing perturbed the pipeline",
				workers, tf, bf)
		}

		// And the observation actually happened: stage events exist and
		// every one carries the trace.
		evs := o.Events.Events()
		if len(evs) == 0 {
			t.Fatalf("workers=%d: traced run recorded no events", workers)
		}
		for _, ev := range evs {
			if ev.Trace != "t-determinism" {
				t.Fatalf("workers=%d: event %q carries trace %q", workers, ev.Kind, ev.Trace)
			}
		}
	}
}
