package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xbsim/internal/obs"
	"xbsim/internal/program"
)

// A checkpoint must round-trip a result so that the reload fingerprints
// identically — including NaN point CPIs, which plain JSON cannot carry.
func TestCheckpointRoundTrip(t *testing.T) {
	res, err := RunBenchmark("mcf", testConfig("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfgFP := testConfig("mcf").fingerprint()
	if err := saveCheckpoint(dir, res, cfgFP); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadCheckpoint(dir, "mcf", cfgFP)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Fingerprint(), res.Fingerprint(); got != want {
		t.Fatalf("reloaded fingerprint %s != saved %s", got, want)
	}
	if loaded.Runs[0].Binary.Name != res.Runs[0].Binary.Name {
		t.Fatalf("binary name lost: %q", loaded.Runs[0].Binary.Name)
	}

	// Absent checkpoint: the sentinel, so callers can tell "never ran"
	// from "ran but invalid".
	if _, err := loadCheckpoint(dir, "gzip", cfgFP); !errors.Is(err, errNoCheckpoint) {
		t.Fatalf("missing checkpoint: %v, want errNoCheckpoint", err)
	}
	// A different configuration looks in its own scope subdirectory and
	// finds nothing — scoping is what makes shared checkpoint dirs safe.
	other := testConfig("mcf")
	other.Seed = "other"
	if _, err := loadCheckpoint(dir, "mcf", other.fingerprint()); !errors.Is(err, errNoCheckpoint) {
		t.Fatalf("config mismatch: %v, want errNoCheckpoint (disjoint scope)", err)
	}
	// A file smuggled across scopes (copied by hand into the other
	// config's subdirectory) must still fail the in-file ConfigFP check.
	data, err := os.ReadFile(checkpointPath(dir, cfgFP, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	smuggled := checkpointPath(dir, other.fingerprint(), "mcf")
	if err := os.MkdirAll(filepath.Dir(smuggled), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(smuggled, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(dir, "mcf", other.fingerprint()); err == nil || errors.Is(err, errNoCheckpoint) {
		t.Fatalf("smuggled checkpoint: %v, want validation error", err)
	}
}

// An interrupted suite must resume: already-checkpointed benchmarks are
// loaded, the rest computed, and the combined suite is bit-identical to
// an uninterrupted run.
func TestSuiteResumeIsBitIdentical(t *testing.T) {
	fresh, err := Run(testConfig("gzip", "mcf"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// "Interrupted" run: only the first benchmark completed.
	cfg1 := testConfig("gzip")
	cfg1.CheckpointDir = dir
	if _, err := Run(cfg1); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	cfg2 := testConfig("gzip", "mcf")
	cfg2.CheckpointDir = dir
	resumed, err := RunCtx(obs.With(context.Background(), o), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if n := o.Counter("pipeline.checkpoints_loaded").Value(); n != 1 {
		t.Fatalf("checkpoints_loaded = %d, want 1", n)
	}
	if got, want := resumed.Fingerprint(), fresh.Fingerprint(); got != want {
		t.Fatalf("resumed suite diverged: %s != %s", got, want)
	}

	// A third run finds both checkpoints and computes nothing.
	o2 := obs.New()
	again, err := RunCtx(obs.With(context.Background(), o2), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if n := o2.Counter("pipeline.checkpoints_loaded").Value(); n != 2 {
		t.Fatalf("checkpoints_loaded on full resume = %d, want 2", n)
	}
	if n := o2.Counter("pipeline.benchmarks_completed").Value(); n != 0 {
		t.Fatalf("benchmarks recomputed on full resume: %d", n)
	}
	if got, want := again.Fingerprint(), fresh.Fingerprint(); got != want {
		t.Fatalf("fully resumed suite diverged: %s != %s", got, want)
	}
}

// Golden guard: a corrupted checkpoint — payload edited, recorded
// fingerprint left alone — must be detected by the fingerprint check
// and recomputed, not trusted.
func TestCorruptCheckpointDetectedAndRecomputed(t *testing.T) {
	fresh, err := Run(testConfig("mcf"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := testConfig("mcf")
	cfg.CheckpointDir = dir
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	// Corrupt the payload: nudge one measured number.
	path := checkpointPath(dir, cfg.fingerprint(), "mcf")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	ck.Benchmark.Runs[0].TrueCycles++
	tampered, err := json.Marshal(&ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	suite, err := RunCtx(obs.With(context.Background(), o), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := o.Counter("pipeline.checkpoints_invalid").Value(); n != 1 {
		t.Fatalf("checkpoints_invalid = %d, want 1", n)
	}
	if n := o.Counter("pipeline.checkpoints_loaded").Value(); n != 0 {
		t.Fatalf("corrupt checkpoint was loaded (%d)", n)
	}
	if got, want := suite.Fingerprint(), fresh.Fingerprint(); got != want {
		t.Fatalf("recomputed suite diverged: %s != %s", got, want)
	}
	// The recomputation must also repair the checkpoint on disk.
	if _, err := loadCheckpoint(dir, "mcf", cfg.fingerprint()); err != nil {
		t.Fatalf("checkpoint not repaired after recomputation: %v", err)
	}
}

// Two suites under different configurations sharing one CheckpointDir
// must not clobber each other: config-fingerprint scoping gives each a
// disjoint subdirectory, so both resume from their own checkpoints
// afterward. (Before scoping, each suite's save replaced the other's
// file for the same benchmark with one failing the other's config
// validation — a shared dir destroyed resumability for both.)
func TestSharedCheckpointDirConcurrentConfigs(t *testing.T) {
	dir := t.TempDir()
	cfgA := testConfig("mcf", "gzip")
	cfgA.CheckpointDir = dir
	cfgB := testConfig("mcf", "gzip")
	cfgB.Seed = "other"
	cfgB.CheckpointDir = dir
	if cfgA.fingerprint() == cfgB.fingerprint() {
		t.Fatal("test configs must differ")
	}

	var wg sync.WaitGroup
	var errA, errB error
	var suiteA, suiteB *Suite
	wg.Add(2)
	go func() { defer wg.Done(); suiteA, errA = Run(cfgA) }()
	go func() { defer wg.Done(); suiteB, errB = Run(cfgB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}

	// Both suites must now fully resume from their own scoped
	// checkpoints: two loads, zero recomputations, identical results.
	for _, tc := range []struct {
		cfg   Config
		suite *Suite
	}{{cfgA, suiteA}, {cfgB, suiteB}} {
		o := obs.New()
		resumed, err := RunCtx(obs.With(context.Background(), o), tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n := o.Counter("pipeline.checkpoints_loaded").Value(); n != 2 {
			t.Fatalf("seed %q: checkpoints_loaded = %d, want 2", tc.cfg.Seed, n)
		}
		if n := o.Counter("pipeline.checkpoints_invalid").Value(); n != 0 {
			t.Fatalf("seed %q: checkpoints_invalid = %d, want 0 (cross-config clobbering)", tc.cfg.Seed, n)
		}
		if got, want := resumed.Fingerprint(), tc.suite.Fingerprint(); got != want {
			t.Fatalf("seed %q: resumed suite diverged: %s != %s", tc.cfg.Seed, got, want)
		}
	}
}

// Spec suites get the same checkpoint/resume behavior benchmarks do:
// spec names are content-derived and stable, so an interrupted
// RunSpecsCtx resumes per spec and finishes bit-identical.
func TestSpecSuiteCheckpointResume(t *testing.T) {
	specs := []program.Spec{program.RandomSpec(7, 0), program.RandomSpec(7, 1)}
	cfg := testConfig()
	fresh, err := RunSpecs(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(fresh.Results))
	}

	dir := t.TempDir()
	cfg1 := cfg
	cfg1.CheckpointDir = dir
	if _, err := RunSpecs(specs[:1], cfg1); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	resumed, err := RunSpecsCtx(obs.With(context.Background(), o), specs, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if n := o.Counter("pipeline.checkpoints_loaded").Value(); n != 1 {
		t.Fatalf("checkpoints_loaded = %d, want 1", n)
	}
	if got, want := resumed.Fingerprint(), fresh.Fingerprint(); got != want {
		t.Fatalf("resumed spec suite diverged: %s != %s", got, want)
	}
}

// Failed benchmarks must not leave checkpoints behind.
func TestFailedBenchmarkWritesNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig("nosuch")
	cfg.CheckpointDir = dir
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown benchmark succeeded")
	}
	if _, err := os.Stat(checkpointPath(dir, cfg.fingerprint(), "nosuch")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint exists for failed benchmark: %v", err)
	}
}
