package experiment

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/simpoint"
)

// TestMemoDeterminism pins the memo's core contract: a memoized suite is
// fingerprint-identical to an unmemoized one, at Workers=1 and at
// Workers=GOMAXPROCS. Run under -race this also exercises the memo
// table's concurrency (suite-wide table, parallel benchmarks, parallel
// per-binary evaluation).
func TestMemoDeterminism(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		on := testConfig("gzip", "mcf")
		on.Workers = workers
		off := on
		off.DisableMemo = true

		memoized, err := RunCtx(context.Background(), on)
		if err != nil {
			t.Fatalf("workers=%d memo on: %v", workers, err)
		}
		plain, err := RunCtx(context.Background(), off)
		if err != nil {
			t.Fatalf("workers=%d memo off: %v", workers, err)
		}
		if got, want := memoized.Fingerprint(), plain.Fingerprint(); got != want {
			t.Fatalf("workers=%d: memoized suite %s != unmemoized %s", workers, got, want)
		}
	}
}

// TestMemoMetricParity pins the synthesized metric families: every sim.*
// counter a memoized run publishes — per-walk stats, the legacy gated
// family, per-level hit/miss and cache event counters — must equal the
// executed run's, because the memo replays walk 3's per-interval deltas
// and full-stream event counters bit for bit.
func TestMemoMetricParity(t *testing.T) {
	run := func(disable bool) map[string]uint64 {
		o := &obs.Observer{Metrics: obs.NewRegistry()}
		cfg := testConfig("gzip")
		cfg.DisableMemo = disable
		if _, err := RunBenchmarkCtx(obs.With(context.Background(), o), "gzip", cfg); err != nil {
			t.Fatal(err)
		}
		sim := map[string]uint64{}
		for name, v := range o.Metrics.Snapshot().Counters {
			if strings.HasPrefix(name, "sim.") {
				sim[name] = v
			}
		}
		return sim
	}
	memoized, executed := run(false), run(true)
	if len(memoized) != len(executed) {
		t.Errorf("memoized run published %d sim.* counters, executed %d", len(memoized), len(executed))
	}
	for name, want := range executed {
		if got, ok := memoized[name]; !ok {
			t.Errorf("%s missing from memoized run", name)
		} else if got != want {
			t.Errorf("%s = %d memoized, %d executed", name, got, want)
		}
	}
}

// TestMemoRedundancyEliminated pins the headline effect: with the memo
// on (the default), the gated walks are answered from walk 3's table, so
// the redundancy analyzer — which counts *executed* point evaluations —
// sees none, and the duplicate fraction PR 6 measured at ~36% drops to
// zero. The memo counters take over the accounting.
func TestMemoRedundancyEliminated(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry(), Attrib: obs.NewAttribution()}
	res, err := RunBenchmarkCtx(obs.With(context.Background(), o), "gzip", testConfig("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	var wantPoints uint64
	for _, run := range res.Runs {
		wantPoints += uint64(run.FLI.NumPoints + run.VLI.NumPoints)
	}

	r := o.Attrib.Snapshot().Redundancy
	if r.Evaluations != 0 || r.Duplicates != 0 {
		t.Errorf("executed evaluations = %d (%d duplicates), want 0 with memo on",
			r.Evaluations, r.Duplicates)
	}
	if r.MemoHits != wantPoints {
		t.Errorf("memo hits = %d, want %d (every gated point answered from the table)",
			r.MemoHits, wantPoints)
	}
	if r.MemoMisses != 0 {
		t.Errorf("memo misses = %d, want 0 (walk 3 populates before walks 4/5 look up)", r.MemoMisses)
	}
	if rate := r.MemoHitRate(); rate != 1 {
		t.Errorf("memo hit rate = %v, want 1", rate)
	}
	if r.MemoSavedInstructions == 0 {
		t.Error("memo saved no instructions")
	}

	snap := o.Metrics.Snapshot()
	if got := snap.Counters["pipeline.memo.hits"]; got != wantPoints {
		t.Errorf("pipeline.memo.hits = %d, want %d", got, wantPoints)
	}
	if got := snap.Counters["pipeline.memo.misses"]; got != 0 {
		t.Errorf("pipeline.memo.misses = %d, want 0", got)
	}
	if snap.Counters["pipeline.memo.instructions_saved"] == 0 {
		t.Error("pipeline.memo.instructions_saved not recorded")
	}
	if snap.Counters["pipeline.memo.bytes_saved"] == 0 {
		t.Error("pipeline.memo.bytes_saved not recorded")
	}

	// The memoized walks still attribute: walk nodes for fli/vli exist
	// with the synthesized totals folded in.
	for _, n := range o.Attrib.Snapshot().Walks() {
		if (n.Walk == "fli" || n.Walk == "vli") && n.Value.Instructions == 0 {
			t.Errorf("memoized walk %s/%s attributed no instructions", n.Binary, n.Walk)
		}
	}
}

// TestMemoBypassedWhenWarmingDisabled: without functional warming the
// stream-identity argument does not hold, so the memo must stay out of
// the way entirely — no hits, no misses, walks execute as before.
func TestMemoBypassedWhenWarmingDisabled(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry(), Attrib: obs.NewAttribution()}
	cfg := testConfig("mcf")
	cfg.DisableWarming = true
	if _, err := RunBenchmarkCtx(obs.With(context.Background(), o), "mcf", cfg); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	if h, m := snap.Counters["pipeline.memo.hits"], snap.Counters["pipeline.memo.misses"]; h != 0 || m != 0 {
		t.Errorf("memo traffic with warming off: %d hits, %d misses, want 0/0", h, m)
	}
	if r := o.Attrib.Snapshot().Redundancy; r.Evaluations == 0 {
		t.Error("cold run executed no point evaluations — memo must not engage without warming")
	}
}

// TestEvaluateWalkAbortClosesSamples is the regression test for the
// walk-sample leak: a fault injected after StartWalk (the "evaluate.walk"
// hook) used to leave the sample open forever. The deferred Abort must
// close it on the faulted attempt, the retry must recover bit-identically,
// and no walk samples may remain open after the run.
func TestEvaluateWalkAbortClosesSamples(t *testing.T) {
	baseline, err := RunBenchmark("gzip", testConfig("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(
		faults.Rule{Stage: "evaluate.walk", Index: 0, Kind: faults.KindError},
	)
	o := &obs.Observer{Metrics: obs.NewRegistry(), Attrib: obs.NewAttribution()}
	ctx := obs.With(faults.With(context.Background(), inj), o)
	res, err := RunBenchmarkCtx(ctx, "gzip", retryConfig("gzip"))
	if err != nil {
		t.Fatalf("faulted walk was not retried away: %v", err)
	}
	if got, want := res.Fingerprint(), baseline.Fingerprint(); got != want {
		t.Fatalf("post-fault run diverged: %s != %s", got, want)
	}
	if n := o.Attrib.OpenWalks(); n != 0 {
		t.Fatalf("%d walk samples left open after a faulted-then-retried run", n)
	}
	if n := o.Metrics.Counter("pipeline.retries").Value(); n == 0 {
		t.Fatal("evaluate.walk fault recovered without a retry")
	}
}

// TestRecalcWeightsZeroTotal pins the division guard: a binary that
// executes no instructions under the shared VLI boundaries must surface
// a real error, not NaN weights.
func TestRecalcWeightsZeroTotal(t *testing.T) {
	pick := &simpoint.Result{K: 2, PhaseOf: []int{0, 1, 0}}
	snap := &snapshotter{instr: []uint64{0, 0, 0}}
	if _, err := recalcWeights(pick, snap, 0); err == nil {
		t.Fatal("zero-total recalcWeights returned no error")
	} else if !strings.Contains(err.Error(), "no instructions") {
		t.Fatalf("error does not name the cause: %v", err)
	}

	snap.instr = []uint64{10, 30, 10}
	w, err := recalcWeights(pick, snap, 50)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.4 || w[1] != 0.6 {
		t.Fatalf("weights = %v, want [0.4 0.6]", w)
	}
}
