package experiment

import (
	"context"
	"testing"

	"xbsim/internal/obs"
)

// TestPipelineAttribution runs one benchmark with the cost-attribution
// profiler attached and checks the tentpole invariants: every (binary,
// walk) pair gets a walk-level node whose simulated totals match the
// pipeline's exact numbers, every simulation point gets a point node,
// and the redundancy analyzer sees the VLI points' cross-binary sharing
// (the same translated phase content evaluated once per binary).
func TestPipelineAttribution(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry(), Attrib: obs.NewAttribution()}
	ctx := obs.With(context.Background(), o)

	// This test pins the *executed-walk* invariants the redundancy
	// analyzer measures — per-walk wall times and the cross-binary
	// duplicate fraction — so it runs with the evaluation memo off.
	// (With the memo on, the gated walks are answered from the table and
	// never reach RecordEval; TestMemoRedundancyEliminated covers that.)
	cfg := testConfig("gzip")
	cfg.DisableMemo = true
	res, err := RunBenchmarkCtx(ctx, "gzip", cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Attrib.Snapshot()

	// One walk-level node per (binary, walk): 4 binaries × 3 walks.
	walks := map[obs.AttribKey]obs.AttribValue{}
	for _, n := range snap.Walks() {
		walks[obs.AttribKey{Benchmark: n.Benchmark, Binary: n.Binary, Walk: n.Walk, Point: n.Point}] = n.Value
	}
	if len(walks) != 3*len(res.Runs) {
		t.Fatalf("walk nodes = %d, want %d", len(walks), 3*len(res.Runs))
	}
	for _, run := range res.Runs {
		for _, walk := range []string{"full", "fli", "vli"} {
			key := obs.AttribKey{Benchmark: "gzip", Binary: run.Binary.Name, Walk: walk, Point: obs.WholeWalk}
			v, ok := walks[key]
			if !ok {
				t.Fatalf("no walk node for %+v", key)
			}
			if v.WallNS == 0 {
				t.Errorf("%s/%s: no wall time attributed", run.Binary.Name, walk)
			}
			if v.Instructions == 0 || v.Cycles == 0 {
				t.Errorf("%s/%s: no simulated totals attributed", run.Binary.Name, walk)
			}
		}
		// The full walk's totals are exact.
		full := walks[obs.AttribKey{Benchmark: "gzip", Binary: run.Binary.Name, Walk: "full", Point: obs.WholeWalk}]
		if full.Instructions != run.TotalInstructions || full.Cycles != run.TrueCycles {
			t.Errorf("%s/full: %d instr %d cycles, want %d/%d",
				run.Binary.Name, full.Instructions, full.Cycles,
				run.TotalInstructions, run.TrueCycles)
		}
	}

	// Point nodes: one per chosen simulation point per gated walk, with
	// the evaluation folded in.
	var fliPoints, vliPoints, wantFLI, wantVLI int
	for _, n := range snap.Nodes {
		if n.Point == obs.WholeWalk {
			continue
		}
		if n.Value.Evals != 1 || n.Value.Instructions == 0 {
			t.Errorf("point node %+v: evals %d instr %d", n, n.Value.Evals, n.Value.Instructions)
		}
		switch n.Walk {
		case "fli":
			fliPoints++
		case "vli":
			vliPoints++
		default:
			t.Errorf("point node on walk %q", n.Walk)
		}
	}
	for _, run := range res.Runs {
		wantFLI += run.FLI.NumPoints
		wantVLI += run.VLI.NumPoints
	}
	if fliPoints != wantFLI || vliPoints != wantVLI {
		t.Errorf("point nodes fli/vli = %d/%d, want %d/%d", fliPoints, vliPoints, wantFLI, wantVLI)
	}

	// Redundancy: every point evaluation was recorded, and the VLI
	// walk's shared points — same interval content, same cache config,
	// evaluated in all 4 binaries — make at least 3×numVLIPoints of them
	// duplicates. (FLI points can add more.)
	r := snap.Redundancy
	if r.Evaluations != uint64(wantFLI+wantVLI) {
		t.Errorf("redundancy evaluations = %d, want %d", r.Evaluations, wantFLI+wantVLI)
	}
	minDup := uint64((len(res.Runs) - 1) * res.Runs[0].VLI.NumPoints)
	if r.Duplicates < minDup {
		t.Errorf("duplicates = %d, want >= %d (VLI points shared across binaries)",
			r.Duplicates, minDup)
	}
	if r.Unique+r.Duplicates != r.Evaluations {
		t.Errorf("unique %d + duplicates %d != evaluations %d", r.Unique, r.Duplicates, r.Evaluations)
	}
	if r.DuplicateInstructions == 0 || r.DuplicateInstructions >= r.TotalInstructions {
		t.Errorf("duplicate instructions = %d of %d", r.DuplicateInstructions, r.TotalInstructions)
	}

	// Wall coverage: the attributed walk time must explain the bulk of
	// the evaluate stage. The CLI reports the exact figure; here the
	// bound is loose (80%) so scheduler noise cannot flake CI.
	stage := o.Metrics.Snapshot().Histograms["stage.evaluate.duration_us"]
	if stage.Sum == 0 {
		t.Fatal("stage.evaluate.duration_us not recorded")
	}
	attributed := snap.TotalWallNS() / 1000
	if attributed > stage.Sum {
		t.Errorf("attributed %dus exceeds evaluate stage %dus", attributed, stage.Sum)
	}
	if float64(attributed) < 0.8*float64(stage.Sum) {
		t.Errorf("attributed %dus is under 80%% of evaluate stage %dus", attributed, stage.Sum)
	}
}

// TestPerWalkMetricFamilies pins satellite fix #1: the per-walk families
// sim.full.*, sim.fli.*, sim.vli.* are published alongside the legacy
// "sim"/"sim.gated" names, and the legacy totals are exactly the
// aggregates of the new families.
func TestPerWalkMetricFamilies(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	ctx := obs.With(context.Background(), o)
	if _, err := RunBenchmarkCtx(ctx, "gzip", testConfig("gzip")); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()

	for _, walk := range []string{"full", "fli", "vli"} {
		for _, m := range []string{".instructions", ".cycles", ".loads"} {
			if snap.Counters["sim."+walk+m] == 0 {
				t.Errorf("sim.%s%s not published", walk, m)
			}
		}
		if snap.Counters["sim."+walk+".cache.l1.hits"] == 0 {
			t.Errorf("sim.%s.cache.l1.hits not published", walk)
		}
	}
	// Legacy names stay (stable interface) and equal the per-walk sums.
	if got, want := snap.Counters["sim.instructions"], snap.Counters["sim.full.instructions"]; got != want {
		t.Errorf("sim.instructions = %d, sim.full.instructions = %d; legacy must equal full walk", got, want)
	}
	gated := snap.Counters["sim.fli.instructions"] + snap.Counters["sim.vli.instructions"]
	if got := snap.Counters["sim.gated.instructions"]; got != gated {
		t.Errorf("sim.gated.instructions = %d, want fli+vli = %d", got, gated)
	}
	// The cache event counters ride along on every family.
	if _, ok := snap.Counters["sim.full.cache.l1.evictions"]; !ok {
		t.Error("sim.full.cache.l1.evictions not published")
	}
	if _, ok := snap.Counters["sim.gated.cache.l1.writebacks"]; !ok {
		t.Error("sim.gated.cache.l1.writebacks not published")
	}
}

// Attribution must not change the numbers: a run with the profiler
// attached produces bit-identical results to a run without.
func TestAttributionDoesNotPerturbResults(t *testing.T) {
	plain, err := RunBenchmark("art", testConfig("art"))
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{Attrib: obs.NewAttribution()}
	profiled, err := RunBenchmarkCtx(obs.With(context.Background(), o), "art", testConfig("art"))
	if err != nil {
		t.Fatal(err)
	}
	for bi := range plain.Runs {
		p, q := plain.Runs[bi], profiled.Runs[bi]
		if p.TotalInstructions != q.TotalInstructions || p.TrueCycles != q.TrueCycles {
			t.Fatalf("%s: totals differ under attribution: %d/%d vs %d/%d",
				p.Binary.Name, p.TotalInstructions, p.TrueCycles, q.TotalInstructions, q.TrueCycles)
		}
		if p.FLI.EstCPI != q.FLI.EstCPI || p.VLI.EstCPI != q.VLI.EstCPI {
			t.Fatalf("%s: estimates differ under attribution", p.Binary.Name)
		}
	}
}
