package experiment

import (
	"context"
	"math"
	"strings"
	"testing"

	"xbsim/internal/obs"
)

// TestPipelineMetrics runs one benchmark end to end with an observer
// attached and checks the observability invariants the subsystem
// guarantees: the simulator's instruction counter equals the pipeline's
// exact instruction totals, the span tree covers every pipeline stage,
// and the published VLI phase weights sum to 1.
func TestPipelineMetrics(t *testing.T) {
	o := obs.New()
	var progress strings.Builder
	o.Progress = obs.NewProgress(&progress)
	ctx := obs.With(context.Background(), o)

	res, err := RunBenchmarkCtx(ctx, "gzip", testConfig("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()

	// The full-simulation walk publishes under "sim": its instruction
	// counter must equal the sum of the exact per-binary totals.
	var wantInstr uint64
	for _, run := range res.Runs {
		wantInstr += run.TotalInstructions
	}
	if got := snap.Counters["sim.instructions"]; got != wantInstr {
		t.Errorf("sim.instructions = %d, want %d", got, wantInstr)
	}
	if snap.Counters["sim.cycles"] == 0 {
		t.Error("sim.cycles not recorded")
	}
	// Gated walks publish separately and simulate strictly less.
	if g := snap.Counters["sim.gated.instructions"]; g == 0 || g >= wantInstr {
		t.Errorf("sim.gated.instructions = %d, want in (0, %d)", g, wantInstr)
	}
	// Cache levels: three levels, hits+misses > 0 at L1.
	if snap.Counters["sim.cache.l1.hits"]+snap.Counters["sim.cache.l1.misses"] == 0 {
		t.Error("no L1 accesses recorded")
	}

	// The span tree must cover every pipeline stage.
	stages := o.Tracer.StageNames()
	have := map[string]bool{}
	for _, s := range stages {
		have[s] = true
	}
	for _, want := range []string{
		"benchmark",
		"stage.compile",
		"stage.profile",
		"stage.mapping",
		"stage.vli_slicing",
		"stage.projection",
		"stage.clustering",
		"stage.full_sim",
		"stage.gated_sim",
		"stage.weighting",
		"exec.run",
	} {
		if !have[want] {
			t.Errorf("span %q missing; recorded: %v", want, stages)
		}
	}
	// Every span must be ended after a clean run.
	for _, v := range o.Tracer.Spans() {
		if !v.Ended {
			t.Errorf("span %d (%s) left open", v.ID, v.Name)
		}
	}

	// The published per-binary VLI phase weights (last binary wins) must
	// sum to ~1.
	if wsum := snap.SumGaugePrefix("pipeline.vli.phase_weight."); math.Abs(wsum-1) > 0.02 {
		t.Errorf("VLI phase weights sum to %v", wsum)
	}

	// Interval production counters: FLIs for 4 binaries, VLIs once.
	fli := 0
	for _, run := range res.Runs {
		fli += run.FLI.NumIntervals
	}
	if got := snap.Counters["pipeline.intervals.fli"]; got != uint64(fli) {
		t.Errorf("pipeline.intervals.fli = %d, want %d", got, fli)
	}
	if got := snap.Counters["pipeline.intervals.vli"]; got != uint64(res.Runs[0].VLI.NumIntervals) {
		t.Errorf("pipeline.intervals.vli = %d, want %d", got, res.Runs[0].VLI.NumIntervals)
	}

	// Clustering and mapping activity must be visible.
	for _, name := range []string{
		"kmeans.runs", "kmeans.restarts", "kmeans.iterations",
		"simpoint.runs", "simpoint.intervals_clustered",
		"mapping.points", "exec.runs", "exec.instructions",
		"pipeline.benchmarks_completed", "pipeline.binaries_evaluated",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q not recorded", name)
		}
	}
	if snap.Gauges["simpoint.chosen_k"] <= 0 {
		t.Error("simpoint.chosen_k not recorded")
	}
	if snap.Histograms["kmeans.iterations_per_restart"].Count == 0 {
		t.Error("kmeans iteration histogram empty")
	}

	// Progress events were streamed.
	for _, want := range []string{"compile", "profile", "mapping", "full simulation"} {
		if !strings.Contains(progress.String(), want) {
			t.Errorf("progress output missing %q:\n%s", want, progress.String())
		}
	}
}

// RunCtx must report suite-level completion progress and produce the same
// results as Run.
func TestRunCtxProgress(t *testing.T) {
	o := &obs.Observer{}
	var progress strings.Builder
	o.Progress = obs.NewProgress(&progress)
	ctx := obs.With(context.Background(), o)

	suite, err := RunCtx(ctx, testConfig("art", "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Results) != 2 {
		t.Fatalf("%d results", len(suite.Results))
	}
	out := progress.String()
	if !strings.Contains(out, "[1/2]") || !strings.Contains(out, "[2/2]") {
		t.Fatalf("suite progress missing completion counts:\n%s", out)
	}
}

// Observability must not change the numbers: a run with an observer
// attached produces bit-identical results to a run without.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	plain, err := RunBenchmark("art", testConfig("art"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.With(context.Background(), obs.New())
	observed, err := RunBenchmarkCtx(ctx, "art", testConfig("art"))
	if err != nil {
		t.Fatal(err)
	}
	for bi := range plain.Runs {
		p, o := plain.Runs[bi], observed.Runs[bi]
		if p.TotalInstructions != o.TotalInstructions || p.TrueCycles != o.TrueCycles {
			t.Fatalf("%s: totals differ with observer: %d/%d vs %d/%d",
				p.Binary.Name, p.TotalInstructions, p.TrueCycles, o.TotalInstructions, o.TrueCycles)
		}
		if p.FLI.EstCPI != o.FLI.EstCPI || p.VLI.EstCPI != o.VLI.EstCPI {
			t.Fatalf("%s: estimates differ with observer", p.Binary.Name)
		}
	}
}
