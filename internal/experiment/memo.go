package experiment

import (
	"fmt"
	"sync"

	"xbsim/internal/cmpsim"
	"xbsim/internal/compiler"
	"xbsim/internal/fingerprint"
	"xbsim/internal/obs"
	"xbsim/internal/profile"
	"xbsim/internal/simpoint"
)

// This file is the content-addressed evaluation memo table: the reuse
// layer PR 6's redundancy analyzer was built to feed.
//
// Soundness (the full argument is DESIGN.md §15). The analyzer's
// redundancy key — interval BBV fingerprint × hierarchy digest — counts
// content-identical *work*, but equal keys do NOT imply equal results:
// the measured duplicates are VLI points shared across binaries, and
// each binary executes a different instruction stream (different
// codegen, different spill traffic) through differently warmed caches,
// so their (instructions, cycles) differ. Probing confirmed every
// cross-binary duplicate group disagrees. A result-reuse key must
// therefore bind the *binary content* and the *warm-state stream
// context*, not just the interval's BBV.
//
// What IS reusable — and is strictly more than the 36% the analyzer
// counted — follows from a stream-identity property of the simulator:
// with functional warming on (the default), gating only suppresses
// statistics recording; every cache access, every address-generator
// advance, and every cycle computation happens identically whether the
// simulator is enabled or not. So walk 3 (full simulation) and walks 4/5
// (gated simulations) of the same binary replay byte-identical access
// streams over identical cache state, and a chosen region's gated
// measurement equals the full walk's per-interval statistics delta over
// the same boundaries, bit for bit. Walk 3 therefore *populates* the
// memo with every interval's delta under both boundary sets, and walks
// 4/5 are answered entirely from the table — the whole gated execution
// walk is skipped, not just the duplicate points.
//
// The memo key binds: binary content digest (compiler.Binary.Digest —
// blocks, markers, lowered bodies, trip specs, program name seeding
// address generation), input name+seed, hierarchy config digest, warming
// mode, and the boundary-set digest (FLI instruction offsets or
// translated VLI marker boundaries). With warming disabled the
// stream-identity property does not hold — the gated walk skips accesses
// while fast-forwarding — so the memo is bypassed entirely and cold runs
// simulate exactly as before.

// intervalStats is one interval's (or one synthesized window's) complete
// statistics delta — everything Simulator.Stats accumulates, so a
// memoized walk can reproduce the gated walk's metric families exactly.
type intervalStats struct {
	instr, cycles, loads, stores, dram uint64
	// levelHits/levelMisses are indexed by cache level.
	levelHits, levelMisses []uint64
}

// addScaled accumulates other into s (allocating the level slices on
// first use).
func (s *intervalStats) add(other *intervalStats) {
	s.instr += other.instr
	s.cycles += other.cycles
	s.loads += other.loads
	s.stores += other.stores
	s.dram += other.dram
	if s.levelHits == nil {
		s.levelHits = make([]uint64, len(other.levelHits))
		s.levelMisses = make([]uint64, len(other.levelMisses))
	}
	for i := range other.levelHits {
		s.levelHits[i] += other.levelHits[i]
		s.levelMisses[i] += other.levelMisses[i]
	}
}

// levelEvents is one cache level's full-stream event counters after a
// walk. With warming on these are identical for the full and gated walks
// of one binary (every access runs either way), so the full walk's
// counters stand in for the skipped gated walk's.
type levelEvents struct {
	evictions, writebacks, prefetchFills, prefetchEvictions uint64
}

// captureEvents snapshots a hierarchy's per-level event counters.
func captureEvents(h *cmpsim.Hierarchy) []levelEvents {
	levels := h.Levels()
	out := make([]levelEvents, len(levels))
	for i, c := range levels {
		out[i] = levelEvents{
			evictions:         c.Evictions,
			writebacks:        c.Writebacks,
			prefetchFills:     c.PrefetchFills,
			prefetchEvictions: c.PrefetchEvictions,
		}
	}
	return out
}

// memoEntry is one (binary, input, hierarchy, warming, boundary-set)
// walk's memoized results: every interval's statistics delta plus the
// walk's full-stream cache event counters.
type memoEntry struct {
	intervals []intervalStats
	events    []levelEvents
}

// covers reports whether every point's interval is present.
func (e *memoEntry) covers(points []simpoint.Point) bool {
	for _, p := range points {
		if p.Interval < 0 || p.Interval >= len(e.intervals) {
			return false
		}
	}
	return true
}

// evalMemo is the concurrency-safe memo table. Entries are immutable
// once stored; concurrent stores under the same key (two identical
// binaries evaluated in parallel) carry identical payloads, and the
// first one wins, so lookups are deterministic in content at any worker
// count even though hit/miss *counts* may vary with scheduling.
type evalMemo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

func newEvalMemo() *evalMemo {
	return &evalMemo{entries: map[string]*memoEntry{}}
}

// lookup returns the entry for key, or nil. Nil-safe.
func (m *evalMemo) lookup(key string) *memoEntry {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries[key]
}

// store files entry under key unless one is already present (first
// wins; duplicate stores are bit-identical by construction). Nil-safe.
func (m *evalMemo) store(key string, entry *memoEntry) {
	if m == nil || entry == nil {
		return
	}
	m.mu.Lock()
	if _, ok := m.entries[key]; !ok {
		m.entries[key] = entry
	}
	m.mu.Unlock()
}

// memoKeyBase builds the binary/input/config/warming prefix shared by
// both boundary-set keys of one evaluateBinary call. The sampler backend
// is part of the key: the per-interval deltas themselves are
// backend-independent, but keeping each backend's entries separate means
// a mixed-backend process (the sampler-comparison harness) can never
// serve one backend's walk from state reasoning done for another —
// isolation is worth more than the marginal extra sharing.
func memoKeyBase(bin *compiler.Binary, cfg *Config) string {
	h := fingerprint.New()
	h.String(bin.Digest())
	h.String(cfg.Sampler)
	h.String(cfg.Input.Name)
	h.Uint64(cfg.Input.Seed)
	h.String(cfg.Hierarchy.Digest())
	if cfg.DisableWarming {
		h.String("cold")
	} else {
		h.String("warm")
	}
	return h.Sum()
}

// digestFLIEnds folds a fixed-length-interval boundary set (cumulative
// instruction offsets) into a key component.
func digestFLIEnds(ends []uint64) string {
	h := fingerprint.New()
	h.String("fli")
	h.Int(len(ends))
	for _, e := range ends {
		h.Uint64(e)
	}
	return h.Sum()
}

// digestVLIEnds folds a variable-length-interval boundary set (marker
// firing counts, already translated into this binary's marker space)
// into a key component.
func digestVLIEnds(ends []profile.Boundary) string {
	h := fingerprint.New()
	h.String("vli")
	h.Int(len(ends))
	for _, b := range ends {
		h.Int(b.Marker)
		h.Uint64(b.Count)
	}
	return h.Sum()
}

// publishMemoMetrics mirrors cmpsim.Simulator.PublishMetrics for a
// memoized (skipped) walk: win is the synthesized statistics window (the
// sum of the chosen intervals' deltas) and events the walk's full-stream
// cache event counters, so the sim.gated / sim.<walk> families come out
// identical to what the executed walk would have published.
func publishMemoMetrics(reg *obs.Registry, prefix string, win *intervalStats, events []levelEvents) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".instructions").Add(win.instr)
	reg.Counter(prefix + ".cycles").Add(win.cycles)
	reg.Counter(prefix + ".loads").Add(win.loads)
	reg.Counter(prefix + ".stores").Add(win.stores)
	reg.Counter(prefix + ".dram_accesses").Add(win.dram)
	for i := range win.levelHits {
		reg.Counter(levelMetricName(prefix, i, "hits")).Add(win.levelHits[i])
		reg.Counter(levelMetricName(prefix, i, "misses")).Add(win.levelMisses[i])
	}
	for i, ev := range events {
		reg.Counter(levelMetricName(prefix, i, "evictions")).Add(ev.evictions)
		reg.Counter(levelMetricName(prefix, i, "writebacks")).Add(ev.writebacks)
		reg.Counter(levelMetricName(prefix, i, "prefetch_fills")).Add(ev.prefetchFills)
		reg.Counter(levelMetricName(prefix, i, "prefetch_evictions")).Add(ev.prefetchEvictions)
	}
}

// levelMetricName matches PublishMetrics' per-level naming scheme.
func levelMetricName(prefix string, level int, name string) string {
	return fmt.Sprintf("%s.cache.l%d.%s", prefix, level+1, name)
}
