package experiment

import (
	"context"
	"math"
	"strings"
	"testing"

	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/sampler"
)

// TestStratifiedWorkersDeterminism extends the parallelism contract to
// the stratified backend: a Workers=1 suite and a Workers=8 suite must
// produce bit-identical MethodStats. The stratified sampler is serial
// arithmetic on deterministic streams, so worker count must never leak
// into its picks. Run under -race in CI.
func TestStratifiedWorkersDeterminism(t *testing.T) {
	mk := func(workers int) Config {
		cfg := testConfig("gzip", "art")
		cfg.Sampler = sampler.BackendStratified
		cfg.SamplerBudget = 7
		cfg.Workers = workers
		return cfg
	}
	serial, err := Run(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i, sr := range serial.Results {
		pr := parallel.Results[i]
		for bi, srun := range sr.Runs {
			prun := pr.Runs[bi]
			label := sr.Name + "/" + srun.Binary.Name
			sameMethodStats(t, label+"/FLI", srun.FLI, prun.FLI)
			sameMethodStats(t, label+"/VLI", srun.VLI, prun.VLI)
			if srun.FLI.SimulatedInstructions != prun.FLI.SimulatedInstructions ||
				srun.VLI.SimulatedInstructions != prun.VLI.SimulatedInstructions {
				t.Errorf("%s: simulated-instruction counts differ: FLI %d/%d VLI %d/%d", label,
					srun.FLI.SimulatedInstructions, prun.FLI.SimulatedInstructions,
					srun.VLI.SimulatedInstructions, prun.VLI.SimulatedInstructions)
			}
		}
	}
}

// TestSimulatedInstructionsAccounting checks the cost metric the
// backend comparison is built on: every method reports a positive
// detailed-simulation cost no larger than the full run.
func TestSimulatedInstructionsAccounting(t *testing.T) {
	suite, err := Run(testConfig("swim"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range suite.Results {
		for _, run := range r.Runs {
			for label, ms := range map[string]*MethodStats{"FLI": &run.FLI, "VLI": &run.VLI} {
				if ms.SimulatedInstructions == 0 {
					t.Errorf("%s/%s/%s: zero simulated instructions", r.Name, run.Binary.Name, label)
				}
				if ms.SimulatedInstructions > run.TotalInstructions {
					t.Errorf("%s/%s/%s: simulated %d exceeds total %d",
						r.Name, run.Binary.Name, label, ms.SimulatedInstructions, run.TotalInstructions)
				}
			}
		}
	}
}

func TestCompareSamplers(t *testing.T) {
	cfg := testConfig("swim", "gzip")
	cmp, err := CompareSamplers(context.Background(), cfg, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (simpoint + 2 stratified budgets)", len(cmp.Rows))
	}
	if cmp.Rows[0].Backend != sampler.BackendSimPoint || cmp.Rows[0].Budget != 0 {
		t.Fatalf("first row %+v, want simpoint without budget", cmp.Rows[0])
	}
	for i, budget := range []int{4, 8} {
		row := cmp.Rows[i+1]
		if row.Backend != sampler.BackendStratified || row.Budget != budget {
			t.Fatalf("row %d = %s/%d, want stratified/%d", i+1, row.Backend, row.Budget, budget)
		}
	}
	for _, row := range cmp.Rows {
		if row.Benchmarks != 2 || row.Binaries != 8 || row.Failures != 0 {
			t.Fatalf("row %s/%d aggregates %d benchmarks %d binaries %d failures",
				row.Backend, row.Budget, row.Benchmarks, row.Binaries, row.Failures)
		}
		if row.TotalInstructions == 0 ||
			row.FLISimulatedInstructions == 0 || row.VLISimulatedInstructions == 0 {
			t.Fatalf("row %s/%d has zero instruction accounting: %+v", row.Backend, row.Budget, row)
		}
		for _, frac := range []float64{row.FLISimulatedFraction, row.VLISimulatedFraction} {
			if frac <= 0 || frac > 1 {
				t.Fatalf("row %s/%d simulated fraction %v outside (0,1]", row.Backend, row.Budget, frac)
			}
		}
		for _, e := range []float64{row.FLIMeanCPIError, row.VLIMeanCPIError} {
			if math.IsNaN(e) || e < 0 {
				t.Fatalf("row %s/%d mean CPI error %v", row.Backend, row.Budget, e)
			}
		}
	}
	// The stratified budget knob must show up as monotone cost: budget 8
	// simulates at least as many instructions as budget 4.
	if cmp.Rows[2].VLISimulatedInstructions < cmp.Rows[1].VLISimulatedInstructions {
		t.Errorf("budget 8 simulated %d VLI instructions, budget 4 %d — budget knob not driving cost",
			cmp.Rows[2].VLISimulatedInstructions, cmp.Rows[1].VLISimulatedInstructions)
	}
}

func TestCompareSamplersRejectsBadBudget(t *testing.T) {
	_, err := CompareSamplers(context.Background(), testConfig("swim"), []int{0})
	if err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("err = %v, want budget validation failure", err)
	}
}

// TestStratifiedFaultRecovery checks the stratified phases as fault
// stages: faults injected at sampler.stratify and sampler.allocate are
// retried by the enclosing stage envelope, and the recovered run is
// bit-identical to the fault-free baseline.
func TestStratifiedFaultRecovery(t *testing.T) {
	mk := func() Config {
		cfg := retryConfig("gzip")
		cfg.Sampler = sampler.BackendStratified
		cfg.SamplerBudget = 6
		return cfg
	}
	baseline, err := RunBenchmark("gzip", mk())
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(
		faults.Rule{Stage: "sampler.stratify", Index: 0, Kind: faults.KindError},
		faults.Rule{Stage: "sampler.allocate", Index: 1, Kind: faults.KindError},
	)
	o := obs.New()
	ctx := obs.With(faults.With(context.Background(), inj), o)
	res, err := RunBenchmarkCtx(ctx, "gzip", mk())
	if err != nil {
		t.Fatalf("faulted run failed despite retries: %v", err)
	}
	if got, want := res.Fingerprint(), baseline.Fingerprint(); got != want {
		t.Fatalf("faulted run diverged: %s != %s", got, want)
	}
	if n := o.Counter("pipeline.faults_injected").Value(); n != 2 {
		t.Fatalf("faults_injected = %d, want 2", n)
	}
}

// TestUnknownSamplerRejected pins config validation: a typo'd backend
// fails fast at defaulting time, not deep inside the pipeline.
func TestUnknownSamplerRejected(t *testing.T) {
	cfg := testConfig("swim")
	cfg.Sampler = "quantum"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown backend", err)
	}
}
