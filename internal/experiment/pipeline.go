package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"xbsim/internal/cmpsim"
	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/faults"
	"xbsim/internal/mapping"
	"xbsim/internal/obs"
	"xbsim/internal/pool"
	"xbsim/internal/profile"
	"xbsim/internal/program"
	"xbsim/internal/sampler"
	"xbsim/internal/simpoint"
)

// MethodStats holds one estimation method's results for one binary.
type MethodStats struct {
	// K is the number of phases the clustering chose.
	K int
	// NumPoints is the number of simulation points (phases with a
	// representative).
	NumPoints int
	// NumIntervals is the interval count for this binary (FLI: its own
	// intervals; VLI: the shared cross-binary interval count).
	NumIntervals int
	// AvgIntervalInstrs is this binary's mean interval size in
	// instructions (VLIs expand/shrink when mapped across binaries).
	AvgIntervalInstrs float64
	// PhaseWeights[p] is the fraction of this binary's dynamic
	// instructions in phase p (VLI: recalculated per binary, §3.2.6).
	PhaseWeights []float64
	// PhaseTrueCPI[p] is the phase's true CPI measured during full
	// simulation of this binary.
	PhaseTrueCPI []float64
	// PointCPI[p] is the CPI of the phase's simulation point measured by
	// region-gated simulation of this binary (NaN when the phase has no
	// point).
	PointCPI []float64
	// PointInterval[p] is the representative interval index (-1 if none).
	PointInterval []int
	// PhaseOf labels every interval with its phase (FLI: this binary's
	// own intervals; VLI: the shared cross-binary intervals).
	PhaseOf []int
	// EstCPI is the weighted whole-program CPI estimate.
	EstCPI float64
	// CPIError is |EstCPI - TrueCPI| / TrueCPI.
	CPIError float64
	// EstCycles is EstCPI times the binary's exact instruction count.
	EstCycles float64
	// SimulatedInstructions is the number of instructions simulated in
	// detail across this method's simulation points — the cost side of
	// the accuracy-vs-budget tradeoff the sampler backends compete on.
	SimulatedInstructions uint64
}

// BinaryRun is everything measured for one binary of a benchmark.
type BinaryRun struct {
	// Binary is the compiled binary.
	Binary *compiler.Binary
	// TotalInstructions is the exact dynamic instruction count.
	TotalInstructions uint64
	// TrueCycles and TrueCPI come from full-run simulation.
	TrueCycles uint64
	TrueCPI    float64
	// FLI is the per-binary SimPoint baseline; VLI the cross-binary
	// mappable SimPoint method.
	FLI, VLI MethodStats
}

// BenchmarkResult is the complete evaluation of one benchmark.
type BenchmarkResult struct {
	// Name is the benchmark name.
	Name string
	// Runs holds one entry per binary in compiler.AllTargets order.
	Runs []*BinaryRun
	// Mapping is the cross-binary point set (diagnostics included).
	Mapping *mapping.Result
	// Primary is the primary binary index used for VLI selection.
	Primary int
}

// PipelineStages lists every fault-injection hook the per-benchmark
// pipeline passes through, in execution order. Plain names fire once per
// stage attempt (inside the stage's retry envelope); ".task" names fire
// once per pool-fanned work unit inside that stage, so faults planted
// there exercise the worker pool's panic isolation as well. The chaos
// subcommand draws its random fault plans from this list.
var PipelineStages = []string{
	"compile", "profile", "profile.task", "mapping", "vli",
	"clustering", "clustering.task", "sampler.stratify", "sampler.allocate",
	"evaluate", "evaluate.task", "evaluate.walk",
}

// RunBenchmark executes the full pipeline for one benchmark.
func RunBenchmark(name string, cfg Config) (*BenchmarkResult, error) {
	return RunBenchmarkCtx(context.Background(), name, cfg)
}

// RunBenchmarkCtx is RunBenchmark with observability and fault
// tolerance. When the context carries an obs.Observer, every pipeline
// stage is recorded as a span under a per-benchmark root (compile →
// profile → mapping → VLI slicing → projection → clustering → full/gated
// simulation → weighting), stage progress is reported per binary, and
// the metrics registry accumulates interval, marker, clustering, and
// simulator counters. Without an observer it behaves — and costs —
// exactly like RunBenchmark.
//
// Every stage runs inside a fault-tolerance envelope (see runStage):
// panics are isolated into *pool.PanicError, Config.StageTimeout bounds
// each attempt, and transient failures — injected faults from a
// faults.Injector on the context, or stage deadline expiries — are
// retried under Config.Retry. Stages are idempotent and deterministic,
// so a run that succeeds after retries is bit-identical to an
// undisturbed one.
//
// Within the benchmark, the per-binary profile walks, the SimPoint
// sweeps, and the per-binary evaluations run concurrently on a bounded
// pool of Config.Workers goroutines. The parallel schedule never changes
// the numbers: every unit of work owns an index-addressed result slot
// and an independently seeded random stream, so the output is
// bit-identical to a Workers=1 run. Spans started by pool workers carry
// the stage span as parent through the context, so concurrent work still
// nests correctly under the benchmark root in the trace.
func RunBenchmarkCtx(ctx context.Context, name string, cfg Config) (*BenchmarkResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return runPipeline(ctx, name, func() (*program.Program, error) {
		return program.Generate(name, program.GenConfig{TargetOps: cfg.TargetOps})
	}, cfg)
}

// RunSpec runs the full benchmark pipeline on a synthesized program
// spec instead of a named benchmark — the same population the selfcheck
// and chaos harnesses draw from.
func RunSpec(spec program.Spec, cfg Config) (*BenchmarkResult, error) {
	return RunSpecCtx(context.Background(), spec, cfg)
}

// RunSpecCtx is RunSpec with observability and fault tolerance (see
// RunBenchmarkCtx).
func RunSpecCtx(ctx context.Context, spec program.Spec, cfg Config) (*BenchmarkResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	return runPipeline(ctx, spec.Name(), func() (*program.Program, error) {
		return program.GenerateSpec(spec)
	}, cfg)
}

// runPipeline is the staged pipeline body shared by RunBenchmarkCtx and
// RunSpecCtx. gen produces the program (stage "compile" covers both
// generation and compilation). Each stage closure is idempotent — it
// allocates its result slots fresh on every attempt — so runStage can
// re-run it after a transient failure without residue from the failed
// attempt.
func runPipeline(ctx context.Context, name string, gen func() (*program.Program, error), cfg Config) (*BenchmarkResult, error) {
	o := obs.From(ctx)
	if cfg.workerPool == nil {
		cfg.workerPool = pool.New(cfg.Workers)
		instrumentPool(cfg.workerPool, o)
	}
	// Suite-level runs (RunCtx) install one memo table and one simulator
	// state pool for all benchmarks; a standalone benchmark run gets its
	// own here.
	if cfg.memo == nil && !cfg.DisableMemo {
		cfg.memo = newEvalMemo()
	}
	if cfg.simPool == nil {
		cfg.simPool = cmpsim.NewStatePool()
	}
	ctx, bspan := obs.StartSpan(ctx, "benchmark")
	bspan.Annotate(name)
	defer bspan.End()

	var prog *program.Program
	var bins []*compiler.Binary
	err := runStage(ctx, cfg, name, "compile", func(sctx context.Context) error {
		o.Report(obs.Event{Benchmark: name, Stage: "compile"})
		_, cspan := obs.StartSpan(sctx, "stage.compile")
		cspan.Annotate(name)
		defer cspan.End()
		var err error
		if prog, err = gen(); err != nil {
			return err
		}
		bins, err = compiler.CompileAll(prog)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Walk 1 per binary: call/branch profile + FLI BBVs + totals. The
	// walks are independent per binary, so they fan out on the pool;
	// each writes its own profiles[bi]/fliRes[bi] slot.
	var profiles []*profile.Profile
	var fliRes []*profile.FLIResult
	err = runStage(ctx, cfg, name, "profile", func(sctx context.Context) error {
		profiles = make([]*profile.Profile, len(bins))
		fliRes = make([]*profile.FLIResult, len(bins))
		pctx, pspan := obs.StartSpan(sctx, "stage.profile")
		defer pspan.End()
		return cfg.workerPool.Run(len(bins), func(bi int) error {
			if err := faults.Hit(pctx, "profile.task"); err != nil {
				return err
			}
			bin := bins[bi]
			o.Report(obs.Event{Benchmark: name, Binary: bin.Name, Stage: "profile"})
			ic := exec.NewInstructionCounter(bin)
			mc := exec.NewMarkerCounter(bin)
			fc, err := profile.NewFLICollector(bin, cfg.IntervalSize)
			if err != nil {
				return err
			}
			if err := exec.RunCtx(pctx, bin, cfg.Input, exec.Multi{ic, mc, fc}); err != nil {
				return err
			}
			fliRes[bi] = fc.Finish()
			o.Counter("pipeline.intervals.fli").Add(uint64(len(fliRes[bi].Ends)))
			profiles[bi], err = profile.BuildProfile(bin, cfg.Input, ic.Instructions, mc.Counts)
			return err
		})
	})
	if err != nil {
		return nil, err
	}

	// Mappable points across all binaries.
	var mapped *mapping.Result
	err = runStage(ctx, cfg, name, "mapping", func(sctx context.Context) error {
		o.Report(obs.Event{Benchmark: name, Stage: "mapping"})
		var err error
		mapped, err = mapping.FindCtx(sctx, profiles, cfg.Mapping)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Walk 2 (primary only): VLI BBV collection at mappable markers.
	primary := cfg.Primary
	var vliRes *profile.VLIResult
	err = runStage(ctx, cfg, name, "vli", func(sctx context.Context) error {
		o.Report(obs.Event{Benchmark: name, Stage: "vli slicing"})
		vctx, vspan := obs.StartSpan(sctx, "stage.vli_slicing")
		vspan.Annotate(bins[primary].Name)
		defer vspan.End()
		vc, err := profile.NewVLICollector(bins[primary], cfg.IntervalSize, mapped.MarkersFor(primary))
		if err != nil {
			return err
		}
		if err := exec.RunCtx(vctx, bins[primary], cfg.Input, vc); err != nil {
			return err
		}
		vliRes = vc.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	o.Counter("pipeline.intervals.vli").Add(uint64(len(vliRes.Ends)))

	// Point selection: per-binary FLI (independent runs, independently
	// seeded — exactly what an engineer running the picker per binary
	// would do), and one VLI run on the primary. All len(bins)+1 runs are
	// independent and fan out together; the SimPoint backend additionally
	// parallelizes its own k sweep and k-means restarts on the same
	// shared pool, while the stratified backend is serial arithmetic. The
	// seed strings are backend-independent, so switching backends changes
	// the algorithm, never the stream naming.
	smp, err := sampler.New(cfg.Sampler)
	if err != nil {
		return nil, err
	}
	var fliPicks []*simpoint.Result
	var vliPick *simpoint.Result
	err = runStage(ctx, cfg, name, "clustering", func(sctx context.Context) error {
		o.Report(obs.Event{Benchmark: name, Stage: "clustering"})
		spCfg := sampler.Config{
			MaxK: cfg.MaxK, Dim: cfg.Dim, BICThreshold: cfg.BICThreshold,
			Restarts: cfg.Restarts, EarlyTolerance: cfg.EarlyTolerance,
			Pool:   cfg.workerPool,
			Budget: cfg.SamplerBudget, Strata: cfg.SamplerStrata,
		}
		fliPicks = make([]*simpoint.Result, len(bins))
		vliPick = nil
		return cfg.workerPool.Run(len(bins)+1, func(i int) error {
			if err := faults.Hit(sctx, "clustering.task"); err != nil {
				return err
			}
			pickCfg := spCfg
			if i == len(bins) {
				pickCfg.Seed = fmt.Sprintf("%s/vli/%s", cfg.Seed, prog.Name)
				var err error
				vliPick, err = smp.Pick(sctx, vliRes.Dataset, pickCfg)
				if err != nil {
					return fmt.Errorf("%s vli %s: %w", prog.Name, smp.Name(), err)
				}
				return nil
			}
			pickCfg.Seed = fmt.Sprintf("%s/fli/%s", cfg.Seed, bins[i].Name)
			var err error
			fliPicks[i], err = smp.Pick(sctx, fliRes[i].Dataset, pickCfg)
			if err != nil {
				return fmt.Errorf("%s fli %s: %w", bins[i].Name, smp.Name(), err)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	// Walks 3-5 per binary: full + gated simulation and the method
	// statistics. Each binary owns its simulators and its Runs[bi] slot.
	var res *BenchmarkResult
	err = runStage(ctx, cfg, name, "evaluate", func(sctx context.Context) error {
		res = &BenchmarkResult{Name: name, Mapping: mapped, Primary: primary,
			Runs: make([]*BinaryRun, len(bins))}
		return cfg.workerPool.Run(len(bins), func(bi int) error {
			if err := faults.Hit(sctx, "evaluate.task"); err != nil {
				return err
			}
			run, err := evaluateBinary(sctx, cfg, bins, bi, profiles[bi], fliRes[bi], fliPicks[bi], vliRes, vliPick, mapped)
			if err != nil {
				return fmt.Errorf("%s: %w", bins[bi].Name, err)
			}
			res.Runs[bi] = run
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	o.Counter("pipeline.benchmarks_completed").Inc()
	return res, nil
}

// evaluateBinary performs walks 3-5 for one binary and assembles its
// BinaryRun.
func evaluateBinary(ctx context.Context, cfg Config, bins []*compiler.Binary, bi int,
	prof *profile.Profile, fli *profile.FLIResult, fliPick *simpoint.Result,
	vli *profile.VLIResult, vliPick *simpoint.Result, mapped *mapping.Result) (*BinaryRun, error) {

	o := obs.From(ctx)
	att := o.Attribution()
	bin := bins[bi]
	vliEnds, err := mapped.TranslateEnds(cfg.Primary, bi, vli.Ends)
	if err != nil {
		return nil, fmt.Errorf("translating VLI boundaries: %w", err)
	}
	// Redundancy keys: interval-content fingerprint + hierarchy digest.
	// Two point evaluations with equal keys simulate identical work — the
	// duplicate count is the direct measurement of what content-addressed
	// memoization would save. Built only when attribution is on; key
	// construction costs a hash per point, never per block.
	var fliKey, vliKey func(interval int) string
	if att.Enabled() {
		digest := "/" + cfg.Hierarchy.Digest()
		fliKey = func(iv int) string { return fli.Dataset.Vector(iv).Fingerprint() + digest }
		vliKey = func(iv int) string { return vli.Dataset.Vector(iv).Fingerprint() + digest }
	}
	// Memo keys: binary content digest × input × hierarchy digest ×
	// warming mode × boundary-set digest. Only built with functional
	// warming on — that is what makes the full walk's per-interval deltas
	// bit-identical to the gated walks' region measurements (memo.go).
	var fliMemoKey, vliMemoKey string
	if cfg.memo != nil && !cfg.DisableWarming {
		base := memoKeyBase(bin, &cfg)
		fliMemoKey = base + "/" + digestFLIEnds(fli.Ends)
		vliMemoKey = base + "/" + digestVLIEnds(vliEnds)
	}

	// Walk 3: full simulation with both interval attributions.
	o.Report(obs.Event{Benchmark: bin.Program.Name, Binary: bin.Name, Stage: "full simulation"})
	fctx, fspan := obs.StartSpan(ctx, "stage.full_sim")
	fspan.Annotate(bin.Name)
	defer fspan.End()
	fws := att.StartWalk(bin.Program.Name, bin.Name, "full")
	defer fws.Abort() // close the sample on every error path; Done wins
	fullSim, err := cmpsim.NewSimulatorPooled(bin, cfg.Hierarchy, cfg.simPool)
	if err != nil {
		return nil, err
	}
	defer fullSim.Release()
	fliSnap := newSnapshotter(fullSim, len(fli.Ends))
	vliSnap := newSnapshotter(fullSim, len(vliEnds))
	fliTr := profile.NewFLITracker(bin, fli.Ends, fliSnap)
	vliTr := profile.NewVLITracker(bin, vliEnds, vliSnap)
	if err := exec.RunCtx(fctx, bin, cfg.Input, exec.Multi{fullSim, fliTr, vliTr}); err != nil {
		return nil, err
	}
	fliSnap.close()
	vliSnap.close()
	fspan.End()
	trueStats := fullSim.Stats()
	fws.Done(trueStats.Instructions, trueStats.Cycles)
	if o != nil {
		// "sim" is the legacy walk-3 family; "sim.full" the per-walk one.
		fullSim.PublishMetrics(o.Metrics, "sim")
		fullSim.PublishMetrics(o.Metrics, "sim.full")
	}
	// Populate the memo with walk 3's per-interval deltas under both
	// boundary sets, then recycle the cache state — walks 4/5 below are
	// answered from the table and never build a simulator on a hit.
	if fliMemoKey != "" {
		events := captureEvents(fullSim.Hierarchy())
		cfg.memo.store(fliMemoKey, fliSnap.entry(events))
		cfg.memo.store(vliMemoKey, vliSnap.entry(events))
	}
	fullSim.Release()

	run := &BinaryRun{
		Binary:            bin,
		TotalInstructions: trueStats.Instructions,
		TrueCycles:        trueStats.Cycles,
		TrueCPI:           trueStats.CPI(),
	}
	if run.TotalInstructions != prof.TotalInstructions {
		return nil, fmt.Errorf("instruction count mismatch between walks: %d vs %d",
			run.TotalInstructions, prof.TotalInstructions)
	}

	// Walk 4: FLI region simulation (this binary's own points).
	o.Report(obs.Event{Benchmark: bin.Program.Name, Binary: bin.Name, Stage: "gated simulation"})
	fliPointCPI, fliPointIv, fliSimInstr, err := simulatePoints(ctx, cfg, bin, fliPick, "fli", fliKey, fliMemoKey,
		func(sink profile.IntervalSink) exec.Visitor {
			return profile.NewFLITracker(bin, fli.Ends, sink)
		})
	if err != nil {
		return nil, err
	}
	_, wspan := obs.StartSpan(ctx, "stage.weighting")
	wspan.Annotate(bin.Name)
	run.FLI, err = buildMethodStats(fliPick, fliSnap, fliPointCPI, fliPointIv,
		len(fli.Ends), run, nil, fliSimInstr)
	wspan.End()
	if err != nil {
		return nil, err
	}

	// Walk 5: VLI region simulation (the shared cross-binary points
	// located in this binary via translated boundaries).
	vliPointCPI, vliPointIv, vliSimInstr, err := simulatePoints(ctx, cfg, bin, vliPick, "vli", vliKey, vliMemoKey,
		func(sink profile.IntervalSink) exec.Visitor {
			return profile.NewVLITracker(bin, vliEnds, sink)
		})
	if err != nil {
		return nil, err
	}
	// VLI weights are recalculated from THIS binary's per-phase
	// instruction counts (§3.2.6).
	_, wspan = obs.StartSpan(ctx, "stage.weighting")
	wspan.Annotate(bin.Name)
	vliWeights, err := recalcWeights(vliPick, vliSnap, run.TotalInstructions)
	if err != nil {
		wspan.End()
		return nil, fmt.Errorf("%s VLI weights: %w", bin.Name, err)
	}
	run.VLI, err = buildMethodStats(vliPick, vliSnap, vliPointCPI, vliPointIv,
		len(vliEnds), run, vliWeights, vliSimInstr)
	wspan.End()
	if err != nil {
		return nil, err
	}
	// The recalculated per-binary VLI weights are a reportable invariant:
	// they must sum to ~1. Gauges hold the most recent binary's weights;
	// the mutex keeps one binary's complete weight set as the final state
	// when binaries are evaluated concurrently — an interleaved mix of
	// two binaries' weights would not sum to 1.
	vliGaugeMu.Lock()
	for p, w := range run.VLI.PhaseWeights {
		o.Gauge(fmt.Sprintf("pipeline.vli.phase_weight.p%02d", p)).Set(w)
	}
	vliGaugeMu.Unlock()
	o.Counter("pipeline.binaries_evaluated").Inc()
	return run, nil
}

// vliGaugeMu serializes publication of the per-phase VLI weight gauges
// across concurrently evaluated binaries.
var vliGaugeMu sync.Mutex

// instrumentPool attaches the worker pool's resource metrics — task
// counts, busy/peak occupancy, and per-task queue wait — to the
// observer's registry. A nil observer leaves the pool uninstrumented,
// preserving the observability-off zero-cost contract.
func instrumentPool(p *pool.Pool, o *obs.Observer) {
	if o == nil {
		return
	}
	p.Instrument(pool.Metrics{
		Tasks:     o.Counter("pool.tasks"),
		Busy:      o.Gauge("pool.busy_workers"),
		BusyPeak:  o.Gauge("pool.busy_peak"),
		QueueWait: o.Histogram("pool.queue_wait_us"),
	})
}

// simulatePoints measures one region-gated simulation walk and returns,
// per phase, the measured CPI of its simulation point and the
// representative interval index. walk names the walk for attribution and
// the per-walk metric family ("fli" or "vli"); evalKey, when non-nil,
// maps a chosen interval to its redundancy-analysis evaluation key.
//
// When memoKey is non-empty and walk 3 has already filed this
// (binary, input, config, warming, boundary-set) combination in the memo
// table, the walk is answered entirely from the table: no simulator is
// built, no execution happens, and the synthesized results — point CPIs,
// attribution, and the sim.gated / sim.<walk> metric families — are
// bit-identical to what the executed walk would have produced (see
// memo.go for the argument). Otherwise the walk simulates as before.
func simulatePoints(ctx context.Context, cfg Config, bin *compiler.Binary, pick *simpoint.Result,
	walk string, evalKey func(interval int) string, memoKey string,
	makeTracker func(profile.IntervalSink) exec.Visitor) (cpi []float64, intervals []int, simInstr uint64, err error) {

	gctx, gspan := obs.StartSpan(ctx, "stage.gated_sim")
	gspan.Annotate(bin.Name)
	defer gspan.End()

	o := obs.From(ctx)
	att := o.Attribution()
	ws := att.StartWalk(bin.Program.Name, bin.Name, walk)
	defer ws.Abort() // close the sample on every error path; Done wins
	if err := faults.Hit(gctx, "evaluate.walk"); err != nil {
		return nil, nil, 0, err
	}

	cpi = make([]float64, pick.K)
	intervals = make([]int, pick.K)
	for p := range cpi {
		cpi[p] = math.NaN()
		intervals[p] = -1
	}

	if entry := cfg.memo.lookup(memoKey); memoKey != "" && entry != nil && entry.covers(pick.Points) {
		var win intervalStats // the gated walk's Stats window, synthesized
		for _, p := range pick.Points {
			st := &entry.intervals[p.Interval]
			if st.instr == 0 {
				return nil, nil, 0, fmt.Errorf("simulation point interval %d executed nothing in %s",
					p.Interval, bin.Name)
			}
			win.add(st)
			cpi[p.Phase] = float64(st.cycles) / float64(st.instr)
			intervals[p.Phase] = p.Interval
			att.AddPoint(bin.Program.Name, bin.Name, walk, p.Interval, st.instr, st.cycles)
		}
		ws.Done(win.instr, win.cycles)
		if o != nil {
			publishMemoMetrics(o.Metrics, "sim.gated", &win, entry.events)
			publishMemoMetrics(o.Metrics, "sim."+walk, &win, entry.events)
		}
		o.Counter("pipeline.memo.hits").Add(uint64(len(pick.Points)))
		o.Counter("pipeline.memo.instructions_saved").Add(win.instr)
		o.Counter("pipeline.memo.bytes_saved").Add(cfg.Hierarchy.StateBytes())
		att.RecordMemo(uint64(len(pick.Points)), 0, win.instr)
		// win.instr is exactly the sum of the chosen intervals' detailed
		// instruction counts — the same total the executed walk reports.
		return cpi, intervals, win.instr, nil
	}
	if memoKey != "" {
		// Memo enabled but no usable entry (shouldn't happen with warming
		// on — walk 3 always populates first — but counted honestly).
		o.Counter("pipeline.memo.misses").Add(uint64(len(pick.Points)))
		att.RecordMemo(0, uint64(len(pick.Points)), 0)
	}

	sim, err := cmpsim.NewSimulatorPooled(bin, cfg.Hierarchy, cfg.simPool)
	if err != nil {
		return nil, nil, 0, err
	}
	defer sim.Release()
	sim.SetFunctionalWarming(!cfg.DisableWarming)
	chosen := make(map[int]bool, len(pick.Points))
	for _, p := range pick.Points {
		chosen[p.Interval] = true
	}
	gate := newGatedSnapshotter(sim, chosen)
	tracker := makeTracker(gate)
	if err := exec.RunCtx(gctx, bin, cfg.Input, exec.Multi{sim, tracker}); err != nil {
		return nil, nil, 0, err
	}
	gate.close()
	simStats := sim.Stats()
	ws.Done(simStats.Instructions, simStats.Cycles)
	if o != nil {
		// "sim.gated" is the legacy family covering walks 4 and 5 together;
		// "sim.fli"/"sim.vli" split it per walk.
		sim.PublishMetrics(o.Metrics, "sim.gated")
		sim.PublishMetrics(o.Metrics, "sim."+walk)
	}

	for _, p := range pick.Points {
		st := gate.regions[p.Interval]
		if st.instr == 0 {
			return nil, nil, 0, fmt.Errorf("simulation point interval %d executed nothing in %s",
				p.Interval, bin.Name)
		}
		simInstr += st.instr
		cpi[p.Phase] = float64(st.cycles) / float64(st.instr)
		intervals[p.Phase] = p.Interval
		att.AddPoint(bin.Program.Name, bin.Name, walk, p.Interval, st.instr, st.cycles)
		if att.Enabled() && evalKey != nil {
			att.RecordEval(evalKey(p.Interval), st.instr)
		}
	}
	return cpi, intervals, simInstr, nil
}

// recalcWeights computes per-phase weights from this binary's per-interval
// instruction counts under the shared VLI boundaries. A zero total would
// otherwise divide every weight into NaN and let the NaNs flow silently
// through buildMethodStats' weights[p] <= 0 filter into EstCPI, so it is
// rejected explicitly.
func recalcWeights(pick *simpoint.Result, snap *snapshotter, total uint64) ([]float64, error) {
	if total == 0 {
		return nil, fmt.Errorf("no usable simulation points: binary executed no instructions")
	}
	w := make([]float64, pick.K)
	for iv, phase := range pick.PhaseOf {
		if iv < len(snap.instr) {
			w[phase] += float64(snap.instr[iv])
		}
	}
	for p := range w {
		w[p] /= float64(total)
	}
	return w, nil
}

// buildMethodStats assembles a MethodStats from the pieces. weights == nil
// uses the clustering's own weights (FLI); otherwise the recalculated
// per-binary weights (VLI).
func buildMethodStats(pick *simpoint.Result, snap *snapshotter,
	pointCPI []float64, pointIv []int, numIntervals int, run *BinaryRun,
	weights []float64, simInstr uint64) (MethodStats, error) {

	ms := MethodStats{
		K:                     pick.K,
		NumPoints:             len(pick.Points),
		NumIntervals:          numIntervals,
		PointCPI:              pointCPI,
		PointInterval:         pointIv,
		PhaseOf:               append([]int(nil), pick.PhaseOf...),
		SimulatedInstructions: simInstr,
	}
	if numIntervals > 0 {
		ms.AvgIntervalInstrs = float64(run.TotalInstructions) / float64(numIntervals)
	}
	if weights == nil {
		weights = append([]float64(nil), pick.PhaseWeights...)
	}
	ms.PhaseWeights = weights

	// Per-phase true CPI from the full-run attribution.
	ms.PhaseTrueCPI = make([]float64, pick.K)
	phaseInstr := make([]uint64, pick.K)
	phaseCycles := make([]uint64, pick.K)
	for iv, phase := range pick.PhaseOf {
		if iv < len(snap.instr) {
			phaseInstr[phase] += snap.instr[iv]
			phaseCycles[phase] += snap.cycles[iv]
		}
	}
	for p := range ms.PhaseTrueCPI {
		if phaseInstr[p] > 0 {
			ms.PhaseTrueCPI[p] = float64(phaseCycles[p]) / float64(phaseInstr[p])
		}
	}

	// Whole-program estimate: weighted average of point CPIs.
	var est, wsum float64
	for p := 0; p < pick.K; p++ {
		if math.IsNaN(pointCPI[p]) || weights[p] <= 0 {
			continue
		}
		est += weights[p] * pointCPI[p]
		wsum += weights[p]
	}
	if wsum <= 0 {
		return ms, fmt.Errorf("no usable simulation points")
	}
	ms.EstCPI = est / wsum
	ms.EstCycles = ms.EstCPI * float64(run.TotalInstructions)
	if run.TrueCPI > 0 {
		ms.CPIError = math.Abs(ms.EstCPI-run.TrueCPI) / run.TrueCPI
	}
	return ms, nil
}

// snapshotter attributes a simulator's cumulative statistics to
// intervals as an IntervalSink: on each transition the delta since the
// previous snapshot is charged to the interval just left. It captures
// the complete Stats delta — instructions, cycles, loads, stores, DRAM
// accesses, and per-level hits/misses — because the full walk's
// per-interval deltas are exactly what the memo table replays in place
// of the gated walks (see memo.go); the per-level arrays are flat
// ([interval*levels + level]) so the capture costs two allocations, not
// two per interval.
type snapshotter struct {
	sim            *cmpsim.Simulator
	cur            int
	nlev           int
	lastI          uint64
	lastC          uint64
	lastL          uint64
	lastS          uint64
	lastD          uint64
	lastLH, lastLM []uint64

	instr, cycles, loads, stores, dram []uint64
	levelHits, levelMisses             []uint64 // flat [interval*nlev + level]
}

func newSnapshotter(sim *cmpsim.Simulator, numIntervals int) *snapshotter {
	nlev := len(sim.Stats().LevelHits)
	return &snapshotter{
		sim:         sim,
		nlev:        nlev,
		lastLH:      make([]uint64, nlev),
		lastLM:      make([]uint64, nlev),
		instr:       make([]uint64, numIntervals),
		cycles:      make([]uint64, numIntervals),
		loads:       make([]uint64, numIntervals),
		stores:      make([]uint64, numIntervals),
		dram:        make([]uint64, numIntervals),
		levelHits:   make([]uint64, numIntervals*nlev),
		levelMisses: make([]uint64, numIntervals*nlev),
	}
}

// Transition implements profile.IntervalSink.
func (s *snapshotter) Transition(i int) {
	if i == s.cur {
		return
	}
	s.flush()
	s.cur = i
}

func (s *snapshotter) flush() {
	st := s.sim.Stats()
	if s.cur < len(s.instr) {
		s.instr[s.cur] += st.Instructions - s.lastI
		s.cycles[s.cur] += st.Cycles - s.lastC
		s.loads[s.cur] += st.Loads - s.lastL
		s.stores[s.cur] += st.Stores - s.lastS
		s.dram[s.cur] += st.MemoryAccesses - s.lastD
		base := s.cur * s.nlev
		for li := 0; li < s.nlev; li++ {
			s.levelHits[base+li] += st.LevelHits[li] - s.lastLH[li]
			s.levelMisses[base+li] += st.LevelMisses[li] - s.lastLM[li]
		}
	}
	s.lastI, s.lastC = st.Instructions, st.Cycles
	s.lastL, s.lastS, s.lastD = st.Loads, st.Stores, st.MemoryAccesses
	copy(s.lastLH, st.LevelHits)
	copy(s.lastLM, st.LevelMisses)
}

// close flushes the final interval; call after the run.
func (s *snapshotter) close() { s.flush() }

// entry packages the captured per-interval deltas as a memo entry;
// events carries the walk's full-stream cache event counters (see
// captureEvents). The level slices are three-index subslices of the flat
// backings, so the entry shares the snapshotter's storage without
// copying.
func (s *snapshotter) entry(events []levelEvents) *memoEntry {
	e := &memoEntry{intervals: make([]intervalStats, len(s.instr)), events: events}
	for i := range e.intervals {
		base := i * s.nlev
		e.intervals[i] = intervalStats{
			instr:       s.instr[i],
			cycles:      s.cycles[i],
			loads:       s.loads[i],
			stores:      s.stores[i],
			dram:        s.dram[i],
			levelHits:   s.levelHits[base : base+s.nlev : base+s.nlev],
			levelMisses: s.levelMisses[base : base+s.nlev : base+s.nlev],
		}
	}
	return e
}

// regionStat is one simulated region's accumulation.
type regionStat struct {
	instr, cycles uint64
}

// gatedSnapshotter gates a simulator to a chosen set of intervals and
// accumulates per-chosen-interval statistics.
type gatedSnapshotter struct {
	sim     *cmpsim.Simulator
	chosen  map[int]bool
	cur     int
	lastI   uint64
	lastC   uint64
	regions map[int]regionStat
}

func newGatedSnapshotter(sim *cmpsim.Simulator, chosen map[int]bool) *gatedSnapshotter {
	sim.SetEnabled(chosen[0])
	return &gatedSnapshotter{
		sim:     sim,
		chosen:  chosen,
		regions: map[int]regionStat{},
	}
}

// Transition implements profile.IntervalSink.
func (g *gatedSnapshotter) Transition(i int) {
	if i == g.cur {
		return
	}
	g.flush()
	g.cur = i
	g.sim.SetEnabled(g.chosen[i])
}

func (g *gatedSnapshotter) flush() {
	st := g.sim.Stats()
	if g.chosen[g.cur] {
		r := g.regions[g.cur]
		r.instr += st.Instructions - g.lastI
		r.cycles += st.Cycles - g.lastC
		g.regions[g.cur] = r
	}
	g.lastI, g.lastC = st.Instructions, st.Cycles
}

func (g *gatedSnapshotter) close() { g.flush() }

// BenchmarkFailure records one benchmark the suite could not complete.
type BenchmarkFailure struct {
	// Name is the benchmark that failed.
	Name string
	// Err is the rendered failure (the joined error chain's message).
	Err string
}

// Suite is a completed multi-benchmark evaluation, possibly partial.
type Suite struct {
	// Config is the configuration the suite ran with (defaults applied).
	Config Config
	// Results holds the completed benchmarks in Config.Benchmarks order.
	// When every benchmark succeeds it has one entry per configured
	// benchmark; failed benchmarks are absent here and listed in
	// Failures instead.
	Results []*BenchmarkResult
	// Failures lists the benchmarks that failed, in Config.Benchmarks
	// order. Reports render these as an explicit appendix so a partial
	// suite is never mistaken for a complete one.
	Failures []BenchmarkFailure
}

// Run evaluates every configured benchmark, in parallel up to
// Config.Parallelism.
func Run(cfg Config) (*Suite, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with observability: benchmark completion progress is
// reported through the context's observer, and every per-benchmark stage
// is traced (see RunBenchmarkCtx). Concurrent benchmarks land in separate
// trace lanes keyed by their root spans. All benchmarks share one
// intra-benchmark worker pool, so the whole suite never runs more than
// Parallelism benchmark goroutines plus Workers-1 pool helpers.
//
// The suite degrades gracefully: a benchmark that fails (after
// exhausting its retries) is recorded in Suite.Failures and the rest of
// the suite keeps running. On failure RunCtx returns the partial Suite
// alongside the joined error, so callers can report the completed
// benchmarks with an explicit failure appendix.
//
// When Config.CheckpointDir is set, each completed benchmark's result is
// persisted as a fingerprinted checkpoint, and benchmarks whose existing
// checkpoints validate against this configuration are loaded instead of
// recomputed — so an interrupted suite resumes where it stopped and
// finishes with results bit-identical to an uninterrupted run.
func RunCtx(ctx context.Context, cfg Config) (*Suite, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	items := make([]suiteItem, len(cfg.Benchmarks))
	for i, name := range cfg.Benchmarks {
		name := name
		items[i] = suiteItem{name: name, run: func(ctx context.Context, cfg Config) (*BenchmarkResult, error) {
			return RunBenchmarkCtx(ctx, name, cfg)
		}}
	}
	return runSuite(ctx, cfg, items)
}

// RunSpecs evaluates a suite of synthesized program specs — the same
// work RunSpec does one at a time, with RunCtx's suite machinery.
func RunSpecs(specs []program.Spec, cfg Config) (*Suite, error) {
	return RunSpecsCtx(context.Background(), specs, cfg)
}

// RunSpecsCtx runs the full pipeline over a suite of synthesized program
// specs with all of RunCtx's suite machinery: bounded parallelism over
// one shared worker pool, graceful degradation into Suite.Failures, and
// — because spec names are content-derived and filename-safe — the same
// checkpoint/resume behavior named benchmarks get, so an interrupted
// spec suite (a killed serve job, say) resumes per spec. The suite's
// Config.Benchmarks is rewritten to the normalized spec names so
// reports, exports, and failures identify specs the way benchmarks are
// identified.
func RunSpecsCtx(ctx context.Context, specs []program.Spec, cfg Config) (*Suite, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	items := make([]suiteItem, len(specs))
	names := make([]string, len(specs))
	for i, spec := range specs {
		spec := spec.Normalize()
		names[i] = spec.Name()
		items[i] = suiteItem{name: spec.Name(), run: func(ctx context.Context, cfg Config) (*BenchmarkResult, error) {
			return RunSpecCtx(ctx, spec, cfg)
		}}
	}
	cfg.Benchmarks = names
	return runSuite(ctx, cfg, items)
}

// suiteItem is one unit of suite work: a stable name (a benchmark name
// or a spec's content-derived name — used for checkpoints, progress,
// and failure reporting) plus the pipeline invocation that computes it.
type suiteItem struct {
	name string
	run  func(ctx context.Context, cfg Config) (*BenchmarkResult, error)
}

// runSuite is the suite body shared by RunCtx and RunSpecsCtx. cfg must
// already have defaults applied.
func runSuite(ctx context.Context, cfg Config, items []suiteItem) (*Suite, error) {
	o := obs.From(ctx)
	if cfg.SharedPool != nil {
		// An injected pool is owned (and instrumented) by its installer.
		cfg.workerPool = cfg.SharedPool
	} else {
		cfg.workerPool = pool.New(cfg.Workers)
		instrumentPool(cfg.workerPool, o)
	}
	// One memo table and one simulator state pool serve the whole suite,
	// so identical evaluation work recurring across benchmarks (duplicate
	// program specs, repeated configs) is reused and cache-hierarchy
	// state is recycled across all benchmarks' walks.
	if !cfg.DisableMemo {
		cfg.memo = newEvalMemo()
	}
	cfg.simPool = cmpsim.NewStatePool()
	cfgFP := cfg.fingerprint()
	results := make([]*BenchmarkResult, len(items))
	errs := make([]error, len(items))
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	var done atomic.Int64
	for i, it := range items {
		wg.Add(1)
		go func(i int, it suiteItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			name := it.name
			if cfg.CheckpointDir != "" {
				r, err := loadCheckpoint(cfg.CheckpointDir, name, cfgFP)
				switch {
				case err == nil:
					results[i] = r
					o.Counter("pipeline.checkpoints_loaded").Inc()
					o.Emit(obs.PipelineEvent{Kind: "checkpoint", Benchmark: name, Detail: "loaded"})
					o.Report(obs.Event{Benchmark: name, Stage: "resumed from checkpoint",
						Done: int(done.Add(1)), Total: len(items)})
					return
				case !errors.Is(err, errNoCheckpoint):
					// Corrupt or stale checkpoint: recompute from scratch.
					o.Counter("pipeline.checkpoints_invalid").Inc()
					o.Emit(obs.PipelineEvent{Kind: "checkpoint", Benchmark: name, Detail: "invalid: " + err.Error()})
					o.Report(obs.Event{Benchmark: name, Stage: "checkpoint invalid, recomputing"})
				}
			}
			r, err := it.run(ctx, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				o.Counter("pipeline.benchmarks_failed").Inc()
				o.Report(obs.Event{Benchmark: name, Stage: "failed",
					Done: int(done.Add(1)), Total: len(items)})
				return
			}
			results[i] = r
			if cfg.CheckpointDir != "" {
				if err := saveCheckpoint(cfg.CheckpointDir, r, cfgFP); err != nil {
					// A checkpoint write failure costs resumability, not
					// correctness: report it and keep the result.
					o.Emit(obs.PipelineEvent{Kind: "checkpoint", Benchmark: name, Detail: "write failed: " + err.Error()})
					o.Report(obs.Event{Benchmark: name, Stage: "checkpoint write failed: " + err.Error()})
				} else {
					o.Emit(obs.PipelineEvent{Kind: "checkpoint", Benchmark: name, Detail: "saved"})
				}
			}
			o.Report(obs.Event{Benchmark: name, Stage: "done",
				Done: int(done.Add(1)), Total: len(items)})
		}(i, it)
	}
	wg.Wait()
	suite := &Suite{Config: cfg}
	for _, r := range results {
		if r != nil {
			suite.Results = append(suite.Results, r)
		}
	}
	for i, e := range errs {
		if e != nil {
			suite.Failures = append(suite.Failures, BenchmarkFailure{
				Name: items[i].name, Err: e.Error()})
		}
	}
	// Join every failure (in benchmark order) instead of surfacing only
	// the first: a multi-failure run stays debuggable in one pass. The
	// partial suite is returned alongside the error so completed work
	// survives.
	return suite, errors.Join(errs...)
}

// ByName returns the named benchmark's result, or nil.
func (s *Suite) ByName(name string) *BenchmarkResult {
	for _, r := range s.Results {
		if r.Name == name {
			return r
		}
	}
	return nil
}
