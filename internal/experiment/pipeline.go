package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"xbsim/internal/cmpsim"
	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/mapping"
	"xbsim/internal/obs"
	"xbsim/internal/pool"
	"xbsim/internal/profile"
	"xbsim/internal/program"
	"xbsim/internal/simpoint"
)

// MethodStats holds one estimation method's results for one binary.
type MethodStats struct {
	// K is the number of phases the clustering chose.
	K int
	// NumPoints is the number of simulation points (phases with a
	// representative).
	NumPoints int
	// NumIntervals is the interval count for this binary (FLI: its own
	// intervals; VLI: the shared cross-binary interval count).
	NumIntervals int
	// AvgIntervalInstrs is this binary's mean interval size in
	// instructions (VLIs expand/shrink when mapped across binaries).
	AvgIntervalInstrs float64
	// PhaseWeights[p] is the fraction of this binary's dynamic
	// instructions in phase p (VLI: recalculated per binary, §3.2.6).
	PhaseWeights []float64
	// PhaseTrueCPI[p] is the phase's true CPI measured during full
	// simulation of this binary.
	PhaseTrueCPI []float64
	// PointCPI[p] is the CPI of the phase's simulation point measured by
	// region-gated simulation of this binary (NaN when the phase has no
	// point).
	PointCPI []float64
	// PointInterval[p] is the representative interval index (-1 if none).
	PointInterval []int
	// PhaseOf labels every interval with its phase (FLI: this binary's
	// own intervals; VLI: the shared cross-binary intervals).
	PhaseOf []int
	// EstCPI is the weighted whole-program CPI estimate.
	EstCPI float64
	// CPIError is |EstCPI - TrueCPI| / TrueCPI.
	CPIError float64
	// EstCycles is EstCPI times the binary's exact instruction count.
	EstCycles float64
}

// BinaryRun is everything measured for one binary of a benchmark.
type BinaryRun struct {
	// Binary is the compiled binary.
	Binary *compiler.Binary
	// TotalInstructions is the exact dynamic instruction count.
	TotalInstructions uint64
	// TrueCycles and TrueCPI come from full-run simulation.
	TrueCycles uint64
	TrueCPI    float64
	// FLI is the per-binary SimPoint baseline; VLI the cross-binary
	// mappable SimPoint method.
	FLI, VLI MethodStats
}

// BenchmarkResult is the complete evaluation of one benchmark.
type BenchmarkResult struct {
	// Name is the benchmark name.
	Name string
	// Runs holds one entry per binary in compiler.AllTargets order.
	Runs []*BinaryRun
	// Mapping is the cross-binary point set (diagnostics included).
	Mapping *mapping.Result
	// Primary is the primary binary index used for VLI selection.
	Primary int
}

// RunBenchmark executes the full pipeline for one benchmark.
func RunBenchmark(name string, cfg Config) (*BenchmarkResult, error) {
	return RunBenchmarkCtx(context.Background(), name, cfg)
}

// RunBenchmarkCtx is RunBenchmark with observability. When the context
// carries an obs.Observer, every pipeline stage is recorded as a span
// under a per-benchmark root (compile → profile → mapping → VLI slicing →
// projection → clustering → full/gated simulation → weighting), stage
// progress is reported per binary, and the metrics registry accumulates
// interval, marker, clustering, and simulator counters. Without an
// observer it behaves — and costs — exactly like RunBenchmark.
//
// Within the benchmark, the per-binary profile walks, the SimPoint
// sweeps, and the per-binary evaluations run concurrently on a bounded
// pool of Config.Workers goroutines. The parallel schedule never changes
// the numbers: every unit of work owns an index-addressed result slot
// and an independently seeded random stream, so the output is
// bit-identical to a Workers=1 run. Spans started by pool workers carry
// the stage span as parent through the context, so concurrent work still
// nests correctly under the benchmark root in the trace.
func RunBenchmarkCtx(ctx context.Context, name string, cfg Config) (*BenchmarkResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.workerPool == nil {
		cfg.workerPool = pool.New(cfg.Workers)
	}
	o := obs.From(ctx)
	ctx, bspan := obs.StartSpan(ctx, "benchmark")
	bspan.Annotate(name)
	defer bspan.End()

	o.Report(obs.Event{Benchmark: name, Stage: "compile"})
	_, cspan := obs.StartSpan(ctx, "stage.compile")
	cspan.Annotate(name)
	prog, err := program.Generate(name, program.GenConfig{TargetOps: cfg.TargetOps})
	if err != nil {
		return nil, err
	}
	bins, err := compiler.CompileAll(prog)
	cspan.End()
	if err != nil {
		return nil, err
	}

	// Walk 1 per binary: call/branch profile + FLI BBVs + totals. The
	// walks are independent per binary, so they fan out on the pool;
	// each writes its own profiles[bi]/fliRes[bi] slot.
	profiles := make([]*profile.Profile, len(bins))
	fliRes := make([]*profile.FLIResult, len(bins))
	pctx, pspan := obs.StartSpan(ctx, "stage.profile")
	err = cfg.workerPool.Run(len(bins), func(bi int) error {
		bin := bins[bi]
		o.Report(obs.Event{Benchmark: name, Binary: bin.Name, Stage: "profile"})
		ic := exec.NewInstructionCounter(bin)
		mc := exec.NewMarkerCounter(bin)
		fc, err := profile.NewFLICollector(bin, cfg.IntervalSize)
		if err != nil {
			return err
		}
		if err := exec.RunCtx(pctx, bin, cfg.Input, exec.Multi{ic, mc, fc}); err != nil {
			return err
		}
		fliRes[bi] = fc.Finish()
		o.Counter("pipeline.intervals.fli").Add(uint64(len(fliRes[bi].Ends)))
		profiles[bi], err = profile.BuildProfile(bin, cfg.Input, ic.Instructions, mc.Counts)
		return err
	})
	pspan.End()
	if err != nil {
		return nil, err
	}

	// Mappable points across all binaries.
	o.Report(obs.Event{Benchmark: name, Stage: "mapping"})
	mapped, err := mapping.FindCtx(ctx, profiles, cfg.Mapping)
	if err != nil {
		return nil, err
	}

	// Walk 2 (primary only): VLI BBV collection at mappable markers.
	o.Report(obs.Event{Benchmark: name, Stage: "vli slicing"})
	primary := cfg.Primary
	vctx, vspan := obs.StartSpan(ctx, "stage.vli_slicing")
	vspan.Annotate(bins[primary].Name)
	vc, err := profile.NewVLICollector(bins[primary], cfg.IntervalSize, mapped.MarkersFor(primary))
	if err != nil {
		return nil, err
	}
	if err := exec.RunCtx(vctx, bins[primary], cfg.Input, vc); err != nil {
		return nil, err
	}
	vliRes := vc.Finish()
	vspan.End()
	o.Counter("pipeline.intervals.vli").Add(uint64(len(vliRes.Ends)))

	// SimPoint: per-binary FLI (independent runs, independently seeded —
	// exactly what an engineer running SimPoint per binary would do), and
	// one VLI run on the primary. All len(bins)+1 runs are independent
	// and fan out together; each PickCtx additionally parallelizes its
	// own k sweep and k-means restarts on the same shared pool.
	o.Report(obs.Event{Benchmark: name, Stage: "clustering"})
	spCfg := simpoint.Config{
		MaxK: cfg.MaxK, Dim: cfg.Dim, BICThreshold: cfg.BICThreshold,
		Restarts: cfg.Restarts, EarlyTolerance: cfg.EarlyTolerance,
		Pool: cfg.workerPool,
	}
	fliPicks := make([]*simpoint.Result, len(bins))
	var vliPick *simpoint.Result
	err = cfg.workerPool.Run(len(bins)+1, func(i int) error {
		pickCfg := spCfg
		if i == len(bins) {
			pickCfg.Seed = fmt.Sprintf("%s/vli/%s", cfg.Seed, prog.Name)
			var err error
			vliPick, err = simpoint.PickCtx(ctx, vliRes.Dataset, pickCfg)
			if err != nil {
				return fmt.Errorf("%s vli simpoint: %w", prog.Name, err)
			}
			return nil
		}
		pickCfg.Seed = fmt.Sprintf("%s/fli/%s", cfg.Seed, bins[i].Name)
		var err error
		fliPicks[i], err = simpoint.PickCtx(ctx, fliRes[i].Dataset, pickCfg)
		if err != nil {
			return fmt.Errorf("%s fli simpoint: %w", bins[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Walks 3-5 per binary: full + gated simulation and the method
	// statistics. Each binary owns its simulators and its Runs[bi] slot.
	res := &BenchmarkResult{Name: name, Mapping: mapped, Primary: primary,
		Runs: make([]*BinaryRun, len(bins))}
	err = cfg.workerPool.Run(len(bins), func(bi int) error {
		run, err := evaluateBinary(ctx, cfg, bins, bi, profiles[bi], fliRes[bi], fliPicks[bi], vliRes, vliPick, mapped)
		if err != nil {
			return fmt.Errorf("%s: %w", bins[bi].Name, err)
		}
		res.Runs[bi] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	o.Counter("pipeline.benchmarks_completed").Inc()
	return res, nil
}

// evaluateBinary performs walks 3-5 for one binary and assembles its
// BinaryRun.
func evaluateBinary(ctx context.Context, cfg Config, bins []*compiler.Binary, bi int,
	prof *profile.Profile, fli *profile.FLIResult, fliPick *simpoint.Result,
	vli *profile.VLIResult, vliPick *simpoint.Result, mapped *mapping.Result) (*BinaryRun, error) {

	o := obs.From(ctx)
	bin := bins[bi]
	vliEnds, err := mapped.TranslateEnds(cfg.Primary, bi, vli.Ends)
	if err != nil {
		return nil, fmt.Errorf("translating VLI boundaries: %w", err)
	}

	// Walk 3: full simulation with both interval attributions.
	o.Report(obs.Event{Benchmark: bin.Program.Name, Binary: bin.Name, Stage: "full simulation"})
	fctx, fspan := obs.StartSpan(ctx, "stage.full_sim")
	fspan.Annotate(bin.Name)
	fullSim, err := cmpsim.NewSimulator(bin, cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	fliSnap := newSnapshotter(fullSim, len(fli.Ends))
	vliSnap := newSnapshotter(fullSim, len(vliEnds))
	fliTr := profile.NewFLITracker(bin, fli.Ends, fliSnap)
	vliTr := profile.NewVLITracker(bin, vliEnds, vliSnap)
	if err := exec.RunCtx(fctx, bin, cfg.Input, exec.Multi{fullSim, fliTr, vliTr}); err != nil {
		return nil, err
	}
	fliSnap.close()
	vliSnap.close()
	fspan.End()
	trueStats := fullSim.Stats()
	if o != nil {
		fullSim.PublishMetrics(o.Metrics, "sim")
	}

	run := &BinaryRun{
		Binary:            bin,
		TotalInstructions: trueStats.Instructions,
		TrueCycles:        trueStats.Cycles,
		TrueCPI:           trueStats.CPI(),
	}
	if run.TotalInstructions != prof.TotalInstructions {
		return nil, fmt.Errorf("instruction count mismatch between walks: %d vs %d",
			run.TotalInstructions, prof.TotalInstructions)
	}

	// Walk 4: FLI region simulation (this binary's own points).
	o.Report(obs.Event{Benchmark: bin.Program.Name, Binary: bin.Name, Stage: "gated simulation"})
	fliPointCPI, fliPointIv, err := simulatePoints(ctx, cfg, bin, fliPick,
		func(sink profile.IntervalSink) exec.Visitor {
			return profile.NewFLITracker(bin, fli.Ends, sink)
		})
	if err != nil {
		return nil, err
	}
	_, wspan := obs.StartSpan(ctx, "stage.weighting")
	wspan.Annotate(bin.Name)
	run.FLI, err = buildMethodStats(fliPick, fliSnap, fliPointCPI, fliPointIv,
		len(fli.Ends), run, nil)
	wspan.End()
	if err != nil {
		return nil, err
	}

	// Walk 5: VLI region simulation (the shared cross-binary points
	// located in this binary via translated boundaries).
	vliPointCPI, vliPointIv, err := simulatePoints(ctx, cfg, bin, vliPick,
		func(sink profile.IntervalSink) exec.Visitor {
			return profile.NewVLITracker(bin, vliEnds, sink)
		})
	if err != nil {
		return nil, err
	}
	// VLI weights are recalculated from THIS binary's per-phase
	// instruction counts (§3.2.6).
	_, wspan = obs.StartSpan(ctx, "stage.weighting")
	wspan.Annotate(bin.Name)
	vliWeights := recalcWeights(vliPick, vliSnap, run.TotalInstructions)
	run.VLI, err = buildMethodStats(vliPick, vliSnap, vliPointCPI, vliPointIv,
		len(vliEnds), run, vliWeights)
	wspan.End()
	if err != nil {
		return nil, err
	}
	// The recalculated per-binary VLI weights are a reportable invariant:
	// they must sum to ~1. Gauges hold the most recent binary's weights;
	// the mutex keeps one binary's complete weight set as the final state
	// when binaries are evaluated concurrently — an interleaved mix of
	// two binaries' weights would not sum to 1.
	vliGaugeMu.Lock()
	for p, w := range run.VLI.PhaseWeights {
		o.Gauge(fmt.Sprintf("pipeline.vli.phase_weight.p%02d", p)).Set(w)
	}
	vliGaugeMu.Unlock()
	o.Counter("pipeline.binaries_evaluated").Inc()
	return run, nil
}

// vliGaugeMu serializes publication of the per-phase VLI weight gauges
// across concurrently evaluated binaries.
var vliGaugeMu sync.Mutex

// simulatePoints runs one region-gated simulation walk and returns, per
// phase, the measured CPI of its simulation point and the representative
// interval index.
func simulatePoints(ctx context.Context, cfg Config, bin *compiler.Binary, pick *simpoint.Result,
	makeTracker func(profile.IntervalSink) exec.Visitor) (cpi []float64, intervals []int, err error) {

	gctx, gspan := obs.StartSpan(ctx, "stage.gated_sim")
	gspan.Annotate(bin.Name)
	defer gspan.End()

	sim, err := cmpsim.NewSimulator(bin, cfg.Hierarchy)
	if err != nil {
		return nil, nil, err
	}
	sim.SetFunctionalWarming(!cfg.DisableWarming)
	chosen := make(map[int]bool, len(pick.Points))
	for _, p := range pick.Points {
		chosen[p.Interval] = true
	}
	gate := newGatedSnapshotter(sim, chosen)
	tracker := makeTracker(gate)
	if err := exec.RunCtx(gctx, bin, cfg.Input, exec.Multi{sim, tracker}); err != nil {
		return nil, nil, err
	}
	gate.close()
	if o := obs.From(ctx); o != nil {
		sim.PublishMetrics(o.Metrics, "sim.gated")
	}

	cpi = make([]float64, pick.K)
	intervals = make([]int, pick.K)
	for p := range cpi {
		cpi[p] = math.NaN()
		intervals[p] = -1
	}
	for _, p := range pick.Points {
		st := gate.regions[p.Interval]
		if st.instr == 0 {
			return nil, nil, fmt.Errorf("simulation point interval %d executed nothing in %s",
				p.Interval, bin.Name)
		}
		cpi[p.Phase] = float64(st.cycles) / float64(st.instr)
		intervals[p.Phase] = p.Interval
	}
	return cpi, intervals, nil
}

// recalcWeights computes per-phase weights from this binary's per-interval
// instruction counts under the shared VLI boundaries.
func recalcWeights(pick *simpoint.Result, snap *snapshotter, total uint64) []float64 {
	w := make([]float64, pick.K)
	for iv, phase := range pick.PhaseOf {
		if iv < len(snap.instr) {
			w[phase] += float64(snap.instr[iv])
		}
	}
	for p := range w {
		w[p] /= float64(total)
	}
	return w
}

// buildMethodStats assembles a MethodStats from the pieces. weights == nil
// uses the clustering's own weights (FLI); otherwise the recalculated
// per-binary weights (VLI).
func buildMethodStats(pick *simpoint.Result, snap *snapshotter,
	pointCPI []float64, pointIv []int, numIntervals int, run *BinaryRun,
	weights []float64) (MethodStats, error) {

	ms := MethodStats{
		K:             pick.K,
		NumPoints:     len(pick.Points),
		NumIntervals:  numIntervals,
		PointCPI:      pointCPI,
		PointInterval: pointIv,
		PhaseOf:       append([]int(nil), pick.PhaseOf...),
	}
	if numIntervals > 0 {
		ms.AvgIntervalInstrs = float64(run.TotalInstructions) / float64(numIntervals)
	}
	if weights == nil {
		weights = append([]float64(nil), pick.PhaseWeights...)
	}
	ms.PhaseWeights = weights

	// Per-phase true CPI from the full-run attribution.
	ms.PhaseTrueCPI = make([]float64, pick.K)
	phaseInstr := make([]uint64, pick.K)
	phaseCycles := make([]uint64, pick.K)
	for iv, phase := range pick.PhaseOf {
		if iv < len(snap.instr) {
			phaseInstr[phase] += snap.instr[iv]
			phaseCycles[phase] += snap.cycles[iv]
		}
	}
	for p := range ms.PhaseTrueCPI {
		if phaseInstr[p] > 0 {
			ms.PhaseTrueCPI[p] = float64(phaseCycles[p]) / float64(phaseInstr[p])
		}
	}

	// Whole-program estimate: weighted average of point CPIs.
	var est, wsum float64
	for p := 0; p < pick.K; p++ {
		if math.IsNaN(pointCPI[p]) || weights[p] <= 0 {
			continue
		}
		est += weights[p] * pointCPI[p]
		wsum += weights[p]
	}
	if wsum <= 0 {
		return ms, fmt.Errorf("no usable simulation points")
	}
	ms.EstCPI = est / wsum
	ms.EstCycles = ms.EstCPI * float64(run.TotalInstructions)
	if run.TrueCPI > 0 {
		ms.CPIError = math.Abs(ms.EstCPI-run.TrueCPI) / run.TrueCPI
	}
	return ms, nil
}

// snapshotter attributes a simulator's cumulative instruction/cycle
// counters to intervals as an IntervalSink: on each transition the delta
// since the previous snapshot is charged to the interval just left.
type snapshotter struct {
	sim    *cmpsim.Simulator
	cur    int
	lastI  uint64
	lastC  uint64
	instr  []uint64
	cycles []uint64
}

func newSnapshotter(sim *cmpsim.Simulator, numIntervals int) *snapshotter {
	return &snapshotter{
		sim:    sim,
		instr:  make([]uint64, numIntervals),
		cycles: make([]uint64, numIntervals),
	}
}

// Transition implements profile.IntervalSink.
func (s *snapshotter) Transition(i int) {
	if i == s.cur {
		return
	}
	s.flush()
	s.cur = i
}

func (s *snapshotter) flush() {
	st := s.sim.Stats()
	if s.cur < len(s.instr) {
		s.instr[s.cur] += st.Instructions - s.lastI
		s.cycles[s.cur] += st.Cycles - s.lastC
	}
	s.lastI, s.lastC = st.Instructions, st.Cycles
}

// close flushes the final interval; call after the run.
func (s *snapshotter) close() { s.flush() }

// regionStat is one simulated region's accumulation.
type regionStat struct {
	instr, cycles uint64
}

// gatedSnapshotter gates a simulator to a chosen set of intervals and
// accumulates per-chosen-interval statistics.
type gatedSnapshotter struct {
	sim     *cmpsim.Simulator
	chosen  map[int]bool
	cur     int
	lastI   uint64
	lastC   uint64
	regions map[int]regionStat
}

func newGatedSnapshotter(sim *cmpsim.Simulator, chosen map[int]bool) *gatedSnapshotter {
	sim.SetEnabled(chosen[0])
	return &gatedSnapshotter{
		sim:     sim,
		chosen:  chosen,
		regions: map[int]regionStat{},
	}
}

// Transition implements profile.IntervalSink.
func (g *gatedSnapshotter) Transition(i int) {
	if i == g.cur {
		return
	}
	g.flush()
	g.cur = i
	g.sim.SetEnabled(g.chosen[i])
}

func (g *gatedSnapshotter) flush() {
	st := g.sim.Stats()
	if g.chosen[g.cur] {
		r := g.regions[g.cur]
		r.instr += st.Instructions - g.lastI
		r.cycles += st.Cycles - g.lastC
		g.regions[g.cur] = r
	}
	g.lastI, g.lastC = st.Instructions, st.Cycles
}

func (g *gatedSnapshotter) close() { g.flush() }

// Suite is a completed multi-benchmark evaluation.
type Suite struct {
	// Config is the configuration the suite ran with (defaults applied).
	Config Config
	// Results holds one entry per benchmark, in Config.Benchmarks order.
	Results []*BenchmarkResult
}

// Run evaluates every configured benchmark, in parallel up to
// Config.Parallelism.
func Run(cfg Config) (*Suite, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with observability: benchmark completion progress is
// reported through the context's observer, and every per-benchmark stage
// is traced (see RunBenchmarkCtx). Concurrent benchmarks land in separate
// trace lanes keyed by their root spans. All benchmarks share one
// intra-benchmark worker pool, so the whole suite never runs more than
// Parallelism benchmark goroutines plus Workers-1 pool helpers.
func RunCtx(ctx context.Context, cfg Config) (*Suite, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.workerPool = pool.New(cfg.Workers)
	o := obs.From(ctx)
	suite := &Suite{Config: cfg, Results: make([]*BenchmarkResult, len(cfg.Benchmarks))}
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	var done atomic.Int64
	errs := make([]error, len(cfg.Benchmarks))
	for i, name := range cfg.Benchmarks {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := RunBenchmarkCtx(ctx, name, cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", name, err)
				o.Report(obs.Event{Benchmark: name, Stage: "failed",
					Done: int(done.Add(1)), Total: len(cfg.Benchmarks)})
				return
			}
			suite.Results[i] = r
			o.Report(obs.Event{Benchmark: name, Stage: "done",
				Done: int(done.Add(1)), Total: len(cfg.Benchmarks)})
		}(i, name)
	}
	wg.Wait()
	// Join every failure (in benchmark order) instead of surfacing only
	// the first: a multi-failure run stays debuggable in one pass.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return suite, nil
}

// ByName returns the named benchmark's result, or nil.
func (s *Suite) ByName(name string) *BenchmarkResult {
	for _, r := range s.Results {
		if r.Name == name {
			return r
		}
	}
	return nil
}
