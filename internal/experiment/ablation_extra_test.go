package experiment

import "testing"

func TestAblationWarming(t *testing.T) {
	cfg := ablationConfig()
	cfg.Benchmarks = []string{"crafty", "mcf"}
	tab, err := AblationWarming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
	// Without warming, small regions start on stale cache state: the CPI
	// error must not improve (and typically worsens clearly).
	withWarming := tab.Rows[0].Values[2]
	withoutWarming := tab.Rows[1].Values[2]
	if withoutWarming < withWarming*0.9 {
		t.Fatalf("disabling warming improved CPI error: %v -> %v", withWarming, withoutWarming)
	}
}

func TestAblationEarlyPoints(t *testing.T) {
	cfg := ablationConfig()
	tab, err := AblationEarlyPoints(cfg, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
	// A tolerant pick can only move points earlier.
	if tab.Rows[1].Values[0] > tab.Rows[0].Values[0]+1e-9 {
		t.Fatalf("early points moved later: %v -> %v", tab.Rows[0].Values[0], tab.Rows[1].Values[0])
	}
}
