package experiment

import (
	"testing"
)

// ablationConfig is an extra-small configuration so every ablation test
// stays fast.
func ablationConfig() Config {
	cfg := QuickConfig()
	cfg.Benchmarks = []string{"swim", "crafty"}
	cfg.TargetOps = 500_000
	cfg.IntervalSize = 8_000
	return cfg
}

func checkTable(t *testing.T, tab *AblationTable, rows int) {
	t.Helper()
	if len(tab.Rows) != rows {
		t.Fatalf("%s: %d rows, want %d", tab.Title, len(tab.Rows), rows)
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(tab.Columns) {
			t.Fatalf("%s/%s: %d values for %d columns", tab.Title, r.Label, len(r.Values), len(tab.Columns))
		}
		for i, v := range r.Values {
			if v < 0 {
				t.Fatalf("%s/%s: negative %s = %v", tab.Title, r.Label, tab.Columns[i], v)
			}
		}
	}
}

func TestAblationBICThreshold(t *testing.T) {
	tab, err := AblationBICThreshold(ablationConfig(), []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
	// A lower threshold accepts smaller k, so it cannot pick more points.
	if tab.Rows[0].Values[0] > tab.Rows[1].Values[0] {
		t.Fatalf("threshold 0.5 picked more points (%v) than 0.9 (%v)",
			tab.Rows[0].Values[0], tab.Rows[1].Values[0])
	}
}

func TestAblationProjectionDim(t *testing.T) {
	tab, err := AblationProjectionDim(ablationConfig(), []int{4, 15})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
}

func TestAblationMarkerGranularity(t *testing.T) {
	tab, err := AblationMarkerGranularity(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
	// Procedure-only boundaries are sparser, so intervals must be at
	// least as large as with the full marker vocabulary.
	procsOnly := tab.Rows[0].Values[1]
	full := tab.Rows[2].Values[1]
	if procsOnly < full {
		t.Fatalf("procs-only intervals (%vx) smaller than full vocabulary (%vx)", procsOnly, full)
	}
}

func TestAblationInlineHeuristic(t *testing.T) {
	tab, err := AblationInlineHeuristic(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2)
}

func TestAblationPrimaryBinary(t *testing.T) {
	cfg := ablationConfig()
	cfg.Benchmarks = []string{"swim"}
	tab, err := AblationPrimaryBinary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
	// Choosing an optimized (smaller) binary as primary makes its VLIs
	// >= target there, but mapped intervals EXPAND in the unoptimized
	// binaries; choosing the unoptimized primary shrinks them. So the
	// interval-size multiple must be larger with an optimized primary
	// (rows 1 and 3) than the 32u primary (row 0).
	if tab.Rows[1].Values[1] <= tab.Rows[0].Values[1] {
		t.Fatalf("optimized primary (%vx) did not expand intervals vs unoptimized (%vx)",
			tab.Rows[1].Values[1], tab.Rows[0].Values[1])
	}
}
