package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/pool"
	"xbsim/internal/xrand"
)

// RetryPolicy controls how transient pipeline-stage failures are
// retried: capped exponential backoff with deterministic jitter drawn
// from the experiment's seeded random stream, so reruns back off
// identically. The zero value disables retries.
type RetryPolicy struct {
	// MaxRetries is the number of extra attempts after the first failure
	// (0 = fail on the first error).
	MaxRetries int
	// BaseDelay is the backoff before the first retry (default 5ms when
	// retries are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		return p
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// delay returns the backoff before retry attempt (0-based): BaseDelay
// doubled per attempt, capped at MaxDelay, plus deterministic jitter in
// [0, delay/2) so colliding retries decorrelate without a wall-clock or
// global randomness dependency.
func (p RetryPolicy) delay(attempt int, rng *xrand.Stream) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if half := int64(d / 2); half > 0 {
		d += time.Duration(rng.Uint64n(uint64(half)))
	}
	return d
}

// transientError reports whether a stage failure is worth retrying: an
// injected fault (including one recovered from a panic, seen through
// pool.PanicError and errors.Join) or a stage deadline expiry. Everything
// else — a real bug, a cancelled parent context — fails the stage
// immediately, because a deterministic pipeline will fail the same way
// on every attempt.
func transientError(err error) bool {
	if faults.Injected(err) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// runStage runs one pipeline stage with the config's fault-tolerance
// envelope: a per-attempt deadline (Config.StageTimeout), panic
// isolation (a stage-level panic becomes a *pool.PanicError), the
// injector's stage hook, and retries with capped exponential backoff on
// transient failures. fn receives the attempt's context — the stage
// deadline, observer, and fault injector all travel on it — and must be
// idempotent: every attempt starts from scratch, so stages allocate
// their result slots inside fn.
//
// Every attempt is additionally accounted as a resource sample
// (stage.<name>.duration_us/alloc_bytes/gc_cycles/goroutines_peak, see
// obs.StageSample) and journaled in the flight recorder as
// stage.start/stage.finish/stage.retry/stage.fail events.
func runStage(ctx context.Context, cfg Config, bench, stage string, fn func(ctx context.Context) error) error {
	o := obs.From(ctx)
	// The submission's correlation ID rides the context from the serving
	// layer; stamping it here tags stage events even when the recorder is
	// shared (the CLI path) rather than per-job. Zero-cost when absent.
	trace := obs.TraceIDFrom(ctx)
	retry := cfg.Retry.withDefaults()
	var rng *xrand.Stream
	for attempt := 0; ; attempt++ {
		sctx := ctx
		cancel := context.CancelFunc(nil)
		if cfg.StageTimeout > 0 {
			sctx, cancel = context.WithTimeout(ctx, cfg.StageTimeout)
		}
		o.Emit(obs.PipelineEvent{Kind: "stage.start", Benchmark: bench, Stage: stage, Trace: trace})
		err := pool.Protect(func() error {
			if err := faults.Hit(sctx, stage); err != nil {
				return err
			}
			sample := o.StartStage(stage)
			defer sample.Done()
			return fn(sctx)
		})
		if cancel != nil {
			cancel()
		}
		if err == nil {
			o.Emit(obs.PipelineEvent{Kind: "stage.finish", Benchmark: bench, Stage: stage, Trace: trace})
			return nil
		}
		// Never retry when the caller is gone, out of attempts, or the
		// failure is deterministic.
		if ctx.Err() != nil || attempt >= retry.MaxRetries || !transientError(err) {
			// A panic carries its pool location so the trace timeline shows
			// exactly where the stage blew up, not just that it failed.
			var pe *pool.PanicError
			if errors.As(err, &pe) {
				o.Emit(obs.PipelineEvent{Kind: "panic", Benchmark: bench, Stage: stage, Trace: trace,
					Detail: fmt.Sprintf("pool task %d panicked: %v", pe.Index, pe.Value)})
			}
			o.Emit(obs.PipelineEvent{Kind: "stage.fail", Benchmark: bench, Stage: stage, Detail: err.Error(), Trace: trace})
			return err
		}
		o.Counter("pipeline.retries").Inc()
		o.Counter("pipeline.retries." + stage).Inc()
		o.Emit(obs.PipelineEvent{Kind: "stage.retry", Benchmark: bench, Stage: stage, Detail: err.Error(), Trace: trace})
		o.Report(obs.Event{Benchmark: bench, Stage: stage + " retry"})
		if rng == nil {
			rng = xrand.New(cfg.Seed + "/backoff/" + bench + "/" + stage)
		}
		if !sleepCtx(ctx, retry.delay(attempt, rng)) {
			return err
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
