package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"xbsim/internal/compiler"
	"xbsim/internal/fingerprint"
	"xbsim/internal/mapping"
	"xbsim/internal/sampler"
)

// Checkpoint/resume: RunCtx persists each completed benchmark's result
// as a small JSON file in Config.CheckpointDir so a killed suite can be
// rerun and skip the benchmarks it already finished. A checkpoint is
// trusted only when three things validate: the format version, the
// fingerprint of the configuration it was produced under, and the
// fingerprint of the payload itself (recomputed on load, so a corrupt
// or hand-edited file is detected and the benchmark recomputed).
//
// The payload is the reportable projection of a BenchmarkResult — names,
// totals, and the two MethodStats per binary — which is everything the
// report, figure, and export layers consume. Heavyweight fields that are
// only needed while the pipeline is in flight (the compiled program
// behind each Binary, the mapping's marker tables) are reduced to the
// parts downstream readers use: the binary name and the mappable point
// count.

// checkpointVersion gates the file format; bump on incompatible change.
// v2: MethodStats gained SimulatedInstructions, which participates in the
// payload fingerprint — a v1 file would reload with the field zeroed and
// fingerprint differently than a fresh run.
const checkpointVersion = 2

// errNoCheckpoint reports an absent (not invalid) checkpoint.
var errNoCheckpoint = errors.New("no checkpoint")

// nanFloats is a float slice whose JSON form renders NaN as null —
// encoding/json rejects NaN, and MethodStats.PointCPI uses NaN for
// phases without a simulation point.
type nanFloats []float64

func (f nanFloats) MarshalJSON() ([]byte, error) {
	ptrs := make([]*float64, len(f))
	for i := range f {
		if f[i] == f[i] {
			v := f[i]
			ptrs[i] = &v
		}
	}
	return json.Marshal(ptrs)
}

func (f *nanFloats) UnmarshalJSON(b []byte) error {
	var ptrs []*float64
	if err := json.Unmarshal(b, &ptrs); err != nil {
		return err
	}
	out := make(nanFloats, len(ptrs))
	for i, p := range ptrs {
		if p == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *p
		}
	}
	*f = out
	return nil
}

// methodCkpt mirrors MethodStats field-for-field with NaN-safe floats.
type methodCkpt struct {
	K                 int       `json:"k"`
	NumPoints         int       `json:"numPoints"`
	NumIntervals      int       `json:"numIntervals"`
	AvgIntervalInstrs float64   `json:"avgIntervalInstrs"`
	PhaseWeights      []float64 `json:"phaseWeights"`
	PhaseTrueCPI      nanFloats `json:"phaseTrueCPI"`
	PointCPI          nanFloats `json:"pointCPI"`
	PointInterval     []int     `json:"pointInterval"`
	PhaseOf           []int     `json:"phaseOf"`
	EstCPI            float64   `json:"estCPI"`
	CPIError          float64   `json:"cpiError"`
	EstCycles         float64   `json:"estCycles"`
	SimulatedInstrs   uint64    `json:"simulatedInstructions"`
}

func methodToCkpt(ms *MethodStats) methodCkpt {
	return methodCkpt{
		K:                 ms.K,
		NumPoints:         ms.NumPoints,
		NumIntervals:      ms.NumIntervals,
		AvgIntervalInstrs: ms.AvgIntervalInstrs,
		PhaseWeights:      ms.PhaseWeights,
		PhaseTrueCPI:      nanFloats(ms.PhaseTrueCPI),
		PointCPI:          nanFloats(ms.PointCPI),
		PointInterval:     ms.PointInterval,
		PhaseOf:           ms.PhaseOf,
		EstCPI:            ms.EstCPI,
		CPIError:          ms.CPIError,
		EstCycles:         ms.EstCycles,
		SimulatedInstrs:   ms.SimulatedInstructions,
	}
}

func (m *methodCkpt) toStats() MethodStats {
	return MethodStats{
		K:                     m.K,
		NumPoints:             m.NumPoints,
		NumIntervals:          m.NumIntervals,
		AvgIntervalInstrs:     m.AvgIntervalInstrs,
		PhaseWeights:          m.PhaseWeights,
		PhaseTrueCPI:          []float64(m.PhaseTrueCPI),
		PointCPI:              []float64(m.PointCPI),
		PointInterval:         m.PointInterval,
		PhaseOf:               m.PhaseOf,
		EstCPI:                m.EstCPI,
		CPIError:              m.CPIError,
		EstCycles:             m.EstCycles,
		SimulatedInstructions: m.SimulatedInstrs,
	}
}

// runCkpt is one binary's checkpointed results.
type runCkpt struct {
	Binary            string     `json:"binary"`
	TotalInstructions uint64     `json:"totalInstructions"`
	TrueCycles        uint64     `json:"trueCycles"`
	TrueCPI           float64    `json:"trueCPI"`
	FLI               methodCkpt `json:"fli"`
	VLI               methodCkpt `json:"vli"`
}

// benchmarkCkpt is a BenchmarkResult reduced to its reportable fields.
type benchmarkCkpt struct {
	Name           string    `json:"name"`
	Primary        int       `json:"primary"`
	MappablePoints int       `json:"mappablePoints"`
	Runs           []runCkpt `json:"runs"`
}

// checkpointFile is the on-disk format.
type checkpointFile struct {
	Version     int           `json:"version"`
	ConfigFP    string        `json:"configFingerprint"`
	Benchmark   benchmarkCkpt `json:"benchmark"`
	Fingerprint string        `json:"fingerprint"`
}

// fingerprint digests the result-affecting configuration. A checkpoint
// written under a different interval size, seed, hierarchy, etc. must
// not satisfy a resume — numbers would silently come from the wrong
// experiment. Two kinds of knobs are deliberately excluded: wall-clock
// ones (Parallelism, Workers, Retry, StageTimeout, CheckpointDir),
// which never change results, and the benchmark list itself — each
// benchmark's result is independent of which others ran, so a resume
// with a larger list still reuses the checkpoints it has.
func (c Config) fingerprint() string {
	h := fingerprint.New()
	h.Uint64(c.TargetOps)
	h.Uint64(c.IntervalSize)
	h.Int(c.MaxK)
	h.Int(c.Dim)
	h.Float64(c.BICThreshold)
	h.Int(c.Restarts)
	h.String(c.Seed)
	h.String(c.Input.Name)
	h.Uint64(uint64(c.Input.Seed))
	h.String(fmt.Sprintf("%+v", c.Hierarchy))
	h.String(fmt.Sprintf("%+v", c.Mapping))
	h.Int(c.Primary)
	if c.DisableWarming {
		h.Int(1)
	} else {
		h.Int(0)
	}
	h.Float64(c.EarlyTolerance)
	// Sampler knobs join the digest only off the default backend: the
	// default path's fingerprints stay a pure function of the original
	// knobs, and SamplerBudget/SamplerStrata — meaningless under SimPoint
	// — can never invalidate a SimPoint checkpoint.
	if c.Sampler != "" && c.Sampler != sampler.BackendSimPoint {
		h.String("sampler=" + c.Sampler)
		h.Int(c.SamplerBudget)
		h.Int(c.SamplerStrata)
	}
	return h.Sum()
}

// Fingerprint is the exported form of the configuration digest: defaults
// are applied first, so two Configs that resolve to the same effective
// experiment digest identically regardless of which knobs were spelled
// out. This is the value checkpoint scopes and serve's content-addressed
// job identities are keyed by. It fails only when the configuration
// itself is invalid (bad Primary index or unknown sampler backend).
func (c Config) Fingerprint() (string, error) {
	c, err := c.withDefaults()
	if err != nil {
		return "", err
	}
	return c.fingerprint(), nil
}

func hashMethod(h *fingerprint.Hasher, ms *MethodStats) {
	h.Int(ms.K)
	h.Int(ms.NumPoints)
	h.Int(ms.NumIntervals)
	h.Float64(ms.AvgIntervalInstrs)
	h.Float64s(ms.PhaseWeights)
	h.Float64s(ms.PhaseTrueCPI)
	h.Float64s(ms.PointCPI)
	h.Ints(ms.PointInterval)
	h.Ints(ms.PhaseOf)
	h.Float64(ms.EstCPI)
	h.Float64(ms.CPIError)
	h.Float64(ms.EstCycles)
	h.Uint64(ms.SimulatedInstructions)
}

// Fingerprint digests the result's reportable fields — exactly the set
// the checkpoint payload round-trips, so a freshly computed result and
// its reload from a checkpoint fingerprint identically. Floats are
// hashed by IEEE-754 bit pattern: "close" never passes for "equal".
func (r *BenchmarkResult) Fingerprint() string {
	h := fingerprint.New()
	h.String(r.Name)
	h.Int(r.Primary)
	h.Int(len(r.Mapping.Points))
	h.Int(len(r.Runs))
	for _, run := range r.Runs {
		h.String(run.Binary.Name)
		h.Uint64(run.TotalInstructions)
		h.Uint64(run.TrueCycles)
		h.Float64(run.TrueCPI)
		hashMethod(h, &run.FLI)
		hashMethod(h, &run.VLI)
	}
	return h.Sum()
}

// Fingerprint digests the whole suite: the completed results in order
// plus the names of any failures. Two suite runs are treated as
// bit-identical exactly when their digests match — the chaos harness
// compares faulted runs to a fault-free baseline this way.
func (s *Suite) Fingerprint() string {
	h := fingerprint.New()
	h.Int(len(s.Results))
	for _, r := range s.Results {
		h.String(r.Fingerprint())
	}
	h.Int(len(s.Failures))
	for _, f := range s.Failures {
		h.String(f.Name)
	}
	return h.Sum()
}

// checkpointScope names the configuration's subdirectory inside a
// checkpoint dir. Scoping checkpoints per config fingerprint is what
// makes a CheckpointDir safe to share between concurrent suites: two
// suites running under different configurations write into disjoint
// subdirectories, so neither can overwrite (and thereby invalidate) the
// other's checkpoint for the same benchmark; two suites under the same
// configuration write byte-identical payloads through atomic renames,
// which commute. Before this, a shared dir was a ping-pong: each suite's
// save replaced the other's file with one that fails the other's config
// validation, silently destroying resumability for both.
func checkpointScope(dir, cfgFP string) string {
	return filepath.Join(dir, "cfg-"+cfgFP)
}

// checkpointPath names the benchmark's checkpoint file inside its
// config scope. Benchmark and spec names are `[a-z0-9-]+`, so they are
// safe as file names.
func checkpointPath(dir, cfgFP, name string) string {
	return filepath.Join(checkpointScope(dir, cfgFP), name+".ckpt.json")
}

// saveCheckpoint atomically persists one completed benchmark. The write
// goes to a temp file in the same directory and is renamed into place,
// so a crash mid-write leaves either the old checkpoint or none — never
// a torn file that parses.
func saveCheckpoint(dir string, r *BenchmarkResult, cfgFP string) error {
	scope := checkpointScope(dir, cfgFP)
	if err := os.MkdirAll(scope, 0o755); err != nil {
		return err
	}
	ck := checkpointFile{
		Version:  checkpointVersion,
		ConfigFP: cfgFP,
		Benchmark: benchmarkCkpt{
			Name:           r.Name,
			Primary:        r.Primary,
			MappablePoints: len(r.Mapping.Points),
		},
		Fingerprint: r.Fingerprint(),
	}
	for _, run := range r.Runs {
		ck.Benchmark.Runs = append(ck.Benchmark.Runs, runCkpt{
			Binary:            run.Binary.Name,
			TotalInstructions: run.TotalInstructions,
			TrueCycles:        run.TrueCycles,
			TrueCPI:           run.TrueCPI,
			FLI:               methodToCkpt(&run.FLI),
			VLI:               methodToCkpt(&run.VLI),
		})
	}
	data, err := json.MarshalIndent(&ck, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(scope, "."+r.Name+".ckpt-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), checkpointPath(dir, cfgFP, r.Name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadCheckpoint loads and validates the benchmark's checkpoint,
// reconstructing a BenchmarkResult that reports identically to the one
// that was saved. It returns errNoCheckpoint when no file exists, and a
// descriptive error when a file exists but fails validation (version or
// config mismatch, unparseable JSON, or a payload whose recomputed
// fingerprint disagrees with the recorded one — i.e. corruption).
func loadCheckpoint(dir, name, cfgFP string) (*BenchmarkResult, error) {
	data, err := os.ReadFile(checkpointPath(dir, cfgFP, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, errNoCheckpoint
	}
	if err != nil {
		return nil, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("checkpoint %s: unparseable: %w", name, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", name, ck.Version, checkpointVersion)
	}
	if ck.ConfigFP != cfgFP {
		return nil, fmt.Errorf("checkpoint %s: written under a different configuration", name)
	}
	if ck.Benchmark.Name != name {
		return nil, fmt.Errorf("checkpoint %s: payload names %q", name, ck.Benchmark.Name)
	}
	r := &BenchmarkResult{
		Name:    ck.Benchmark.Name,
		Primary: ck.Benchmark.Primary,
		Mapping: &mapping.Result{Points: make([]mapping.Point, ck.Benchmark.MappablePoints)},
	}
	for i := range ck.Benchmark.Runs {
		rc := &ck.Benchmark.Runs[i]
		r.Runs = append(r.Runs, &BinaryRun{
			Binary:            &compiler.Binary{Name: rc.Binary},
			TotalInstructions: rc.TotalInstructions,
			TrueCycles:        rc.TrueCycles,
			TrueCPI:           rc.TrueCPI,
			FLI:               rc.FLI.toStats(),
			VLI:               rc.VLI.toStats(),
		})
	}
	if got := r.Fingerprint(); got != ck.Fingerprint {
		return nil, fmt.Errorf("checkpoint %s: fingerprint mismatch (%s != %s), corrupt", name, got, ck.Fingerprint)
	}
	return r, nil
}
