package experiment

import (
	"math"
	"testing"

	"xbsim/internal/compiler"
)

// testConfig is a tiny configuration for fast unit tests.
func testConfig(benchmarks ...string) Config {
	cfg := QuickConfig()
	cfg.Benchmarks = benchmarks
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	return cfg
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Benchmarks) != 21 {
		t.Fatalf("%d default benchmarks", len(cfg.Benchmarks))
	}
	if cfg.MaxK != 10 || cfg.Dim != 15 || cfg.BICThreshold != 0.9 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.Parallelism <= 0 {
		t.Fatal("no parallelism default")
	}
	bad := Config{Primary: 99}
	if _, err := bad.withDefaults(); err == nil {
		t.Fatal("bad primary accepted")
	}
}

func TestRunBenchmarkBasics(t *testing.T) {
	res, err := RunBenchmark("gzip", testConfig("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "gzip" || len(res.Runs) != 4 {
		t.Fatalf("result shape: %s, %d runs", res.Name, len(res.Runs))
	}
	for bi, run := range res.Runs {
		if run.Binary.Target != compiler.AllTargets[bi] {
			t.Fatalf("run %d target %v", bi, run.Binary.Target)
		}
		if run.TotalInstructions == 0 || run.TrueCycles < run.TotalInstructions {
			t.Fatalf("%s: instr=%d cycles=%d", run.Binary.Name, run.TotalInstructions, run.TrueCycles)
		}
		if run.TrueCPI < 1 {
			t.Fatalf("%s: CPI %v < 1 on in-order core", run.Binary.Name, run.TrueCPI)
		}
		for _, ms := range []*MethodStats{&run.FLI, &run.VLI} {
			if ms.NumPoints == 0 || ms.NumPoints > ms.K {
				t.Fatalf("%s: %d points for K=%d", run.Binary.Name, ms.NumPoints, ms.K)
			}
			if ms.EstCPI <= 0 {
				t.Fatalf("%s: estimate %v", run.Binary.Name, ms.EstCPI)
			}
			var wsum float64
			for _, w := range ms.PhaseWeights {
				if w < 0 || w > 1 {
					t.Fatalf("%s: weight %v", run.Binary.Name, w)
				}
				wsum += w
			}
			if math.Abs(wsum-1) > 0.02 {
				t.Fatalf("%s: weights sum to %v", run.Binary.Name, wsum)
			}
		}
	}
}

func TestVLIPointCountSharedAcrossBinaries(t *testing.T) {
	res, err := RunBenchmark("art", testConfig("art"))
	if err != nil {
		t.Fatal(err)
	}
	k := res.Runs[0].VLI.K
	n := res.Runs[0].VLI.NumPoints
	iv := res.Runs[0].VLI.NumIntervals
	for _, run := range res.Runs[1:] {
		if run.VLI.K != k || run.VLI.NumPoints != n || run.VLI.NumIntervals != iv {
			t.Fatalf("VLI selection differs across binaries: %d/%d/%d vs %d/%d/%d",
				k, n, iv, run.VLI.K, run.VLI.NumPoints, run.VLI.NumIntervals)
		}
		// Same representative intervals too.
		for p := range run.VLI.PointInterval {
			if run.VLI.PointInterval[p] != res.Runs[0].VLI.PointInterval[p] {
				t.Fatal("VLI representatives differ across binaries")
			}
		}
	}
}

func TestVLIWeightsRecalculatedPerBinary(t *testing.T) {
	// Weights must be recalculated per binary (§3.2.6): for at least one
	// benchmark/phase the weights should differ between 32u and 32o,
	// because optimization changes per-phase instruction expansion
	// non-uniformly.
	res, err := RunBenchmark("gcc", testConfig("gcc"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Runs[0].VLI.PhaseWeights, res.Runs[1].VLI.PhaseWeights
	differ := false
	for p := range a {
		if math.Abs(a[p]-b[p]) > 1e-6 {
			differ = true
		}
	}
	if !differ {
		t.Fatal("VLI weights identical across binaries; recalculation missing?")
	}
}

func TestEstimatesTrackTruth(t *testing.T) {
	// Sanity bound: estimates should be within 60% of truth even at this
	// tiny scale (they are typically within a few percent).
	for _, name := range []string{"swim", "art"} {
		res, err := RunBenchmark(name, testConfig(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range res.Runs {
			if run.FLI.CPIError > 0.6 || run.VLI.CPIError > 0.6 {
				t.Fatalf("%s %s: CPI errors FLI=%v VLI=%v implausibly large",
					name, run.Binary.Name, run.FLI.CPIError, run.VLI.CPIError)
			}
		}
	}
}

func TestRunSuiteAndFigures(t *testing.T) {
	cfg := testConfig("swim", "art")
	suite, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Results) != 2 {
		t.Fatalf("%d results", len(suite.Results))
	}
	if suite.ByName("swim") == nil || suite.ByName("nope") != nil {
		t.Fatal("ByName broken")
	}
	figs := suite.Figures()
	if len(figs) != 5 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, f := range figs {
		if len(f.RowLabels) != 3 { // 2 benchmarks + Avg
			t.Fatalf("%s: %d rows", f.ID, len(f.RowLabels))
		}
		if f.RowLabels[2] != "Avg" {
			t.Fatalf("%s: last row %q", f.ID, f.RowLabels[2])
		}
		for _, s := range f.Series {
			if len(s.Values) != len(f.RowLabels) {
				t.Fatalf("%s/%s: ragged series", f.ID, s.Name)
			}
			for i, v := range s.Values {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("%s/%s[%d] = %v", f.ID, s.Name, i, v)
				}
			}
		}
	}
	// Figure 2's VLI interval sizes must be positive and, for the
	// primary binary, at least the target size.
	for _, r := range suite.Results {
		if r.Runs[0].VLI.AvgIntervalInstrs < float64(cfg.IntervalSize) {
			t.Fatalf("%s primary VLI avg interval %v below target %d",
				r.Name, r.Runs[0].VLI.AvgIntervalInstrs, cfg.IntervalSize)
		}
	}
}

func TestSpeedupMetrics(t *testing.T) {
	suite, err := Run(testConfig("swim"))
	if err != nil {
		t.Fatal(err)
	}
	r := suite.Results[0]
	for _, p := range append(append([]Pair{}, SamePlatformPairs...), CrossPlatformPairs...) {
		ts := r.TrueSpeedup(p)
		if ts <= 0 {
			t.Fatalf("pair %s true speedup %v", p.Name, ts)
		}
		for _, vli := range []bool{false, true} {
			es := r.EstimatedSpeedup(p, vli)
			if es <= 0 {
				t.Fatalf("pair %s est speedup %v", p.Name, es)
			}
			if err := r.SpeedupError(p, vli); err < 0 || err > 2 {
				t.Fatalf("pair %s error %v", p.Name, err)
			}
		}
	}
	// Unoptimized -> optimized on the same platform must be a real
	// speedup (> 1.2x) in truth.
	for _, p := range SamePlatformPairs {
		if r.TrueSpeedup(p) < 1.2 {
			t.Fatalf("pair %s true speedup %v suspiciously low", p.Name, r.TrueSpeedup(p))
		}
	}
}

func TestPhaseBiasTables(t *testing.T) {
	suite, err := Run(testConfig("gcc"))
	if err != nil {
		t.Fatal(err)
	}
	tables, err := suite.PhaseBiasTables("gcc", Pair{Name: "32u64u", A: 0, B: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Method != "VLI" || tables[1].Method != "FLI" {
		t.Fatalf("table shape: %+v", tables)
	}
	for _, tb := range tables {
		if len(tb.RowsA) == 0 || len(tb.RowsA) > 3 || len(tb.RowsB) == 0 {
			t.Fatalf("%s rows: %d/%d", tb.Method, len(tb.RowsA), len(tb.RowsB))
		}
		for _, row := range tb.RowsA {
			if row.Weight <= 0 || row.TrueCPI <= 0 {
				t.Fatalf("%s row %+v", tb.Method, row)
			}
		}
		// VLI rows must be phase-aligned between the binaries.
		if tb.Method == "VLI" {
			for i := range tb.RowsA {
				if tb.RowsA[i].Phase != tb.RowsB[i].Phase {
					t.Fatal("VLI table rows not phase-aligned")
				}
			}
		}
	}
	if _, err := suite.PhaseBiasTables("nope", SamePlatformPairs[0], 3); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestHeadlineResult is the repository's reproduction gate: averaged over
// the quick suite, mappable (VLI) SimPoint must estimate cross-binary
// speedups more accurately than per-binary (FLI) SimPoint — the paper's
// central claim (Figures 4 and 5).
func TestHeadlineResult(t *testing.T) {
	if testing.Short() {
		t.Skip("headline reproduction needs the full quick suite")
	}
	suite, err := Run(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	check := func(fig *Figure) {
		n := len(fig.RowLabels) - 1 // Avg row
		for pi := 0; pi < len(fig.Series); pi += 2 {
			fli := fig.Series[pi].Values[n]
			vli := fig.Series[pi+1].Values[n]
			if vli >= fli {
				t.Errorf("%s %s: VLI error %.3f not below FLI %.3f",
					fig.ID, fig.Series[pi].Name, vli, fli)
			}
		}
	}
	check(suite.Figure4())
	check(suite.Figure5())

	// applu must be the Figure 2 outlier: its VLI intervals far above the
	// suite median.
	f2 := suite.Figure2()
	var appluVal, sum float64
	for i, l := range f2.RowLabels {
		if l == "applu" {
			appluVal = f2.Series[0].Values[i]
		} else if l != "Avg" {
			sum += f2.Series[0].Values[i]
		}
	}
	others := sum / float64(len(f2.RowLabels)-2)
	if appluVal < 2*others {
		t.Errorf("applu VLI interval %.0f not an outlier vs others' mean %.0f", appluVal, others)
	}
}
