package experiment

import (
	"math"
	"reflect"
	"testing"
)

// sameFloats compares float slices bit for bit, so NaN slots (phases
// without a simulation point) compare equal between identical runs
// where reflect.DeepEqual would report a spurious mismatch.
func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sameMethodStats is a NaN-tolerant deep equality over MethodStats.
func sameMethodStats(t *testing.T, label string, a, b MethodStats) {
	t.Helper()
	if a.K != b.K || a.NumPoints != b.NumPoints || a.NumIntervals != b.NumIntervals {
		t.Errorf("%s: shape differs: K %d/%d points %d/%d intervals %d/%d",
			label, a.K, b.K, a.NumPoints, b.NumPoints, a.NumIntervals, b.NumIntervals)
	}
	if math.Float64bits(a.AvgIntervalInstrs) != math.Float64bits(b.AvgIntervalInstrs) ||
		math.Float64bits(a.EstCPI) != math.Float64bits(b.EstCPI) ||
		math.Float64bits(a.CPIError) != math.Float64bits(b.CPIError) ||
		math.Float64bits(a.EstCycles) != math.Float64bits(b.EstCycles) {
		t.Errorf("%s: scalars differ: EstCPI %v/%v CPIError %v/%v",
			label, a.EstCPI, b.EstCPI, a.CPIError, b.CPIError)
	}
	if !sameFloats(a.PhaseWeights, b.PhaseWeights) {
		t.Errorf("%s: PhaseWeights differ:\n%v\n%v", label, a.PhaseWeights, b.PhaseWeights)
	}
	if !sameFloats(a.PhaseTrueCPI, b.PhaseTrueCPI) {
		t.Errorf("%s: PhaseTrueCPI differ:\n%v\n%v", label, a.PhaseTrueCPI, b.PhaseTrueCPI)
	}
	if !sameFloats(a.PointCPI, b.PointCPI) {
		t.Errorf("%s: PointCPI differ:\n%v\n%v", label, a.PointCPI, b.PointCPI)
	}
	if !reflect.DeepEqual(a.PointInterval, b.PointInterval) {
		t.Errorf("%s: PointInterval differ:\n%v\n%v", label, a.PointInterval, b.PointInterval)
	}
	if !reflect.DeepEqual(a.PhaseOf, b.PhaseOf) {
		t.Errorf("%s: PhaseOf differ", label)
	}
}

// TestWorkersDeterminism pins the parallelism contract: a Workers=1
// (fully serial) suite and a Workers=8 suite produce bit-identical
// results — same seeds, same clusterings, same estimates, deep-equal
// MethodStats for every binary of every benchmark. Run under -race in
// CI, this also shakes out data races in the fan-out.
func TestWorkersDeterminism(t *testing.T) {
	serialCfg := testConfig("gzip", "art")
	serialCfg.Workers = 1
	parallelCfg := testConfig("gzip", "art")
	parallelCfg.Workers = 8

	serial, err := Run(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i, sr := range serial.Results {
		pr := parallel.Results[i]
		if sr.Name != pr.Name || sr.Primary != pr.Primary {
			t.Fatalf("benchmark %d identity differs: %s/%d vs %s/%d",
				i, sr.Name, sr.Primary, pr.Name, pr.Primary)
		}
		if len(sr.Runs) != len(pr.Runs) {
			t.Fatalf("%s: run counts differ", sr.Name)
		}
		if len(sr.Mapping.Points) != len(pr.Mapping.Points) {
			t.Fatalf("%s: mappable point counts differ", sr.Name)
		}
		for bi, srun := range sr.Runs {
			prun := pr.Runs[bi]
			label := sr.Name + "/" + srun.Binary.Name
			if srun.TotalInstructions != prun.TotalInstructions ||
				srun.TrueCycles != prun.TrueCycles ||
				math.Float64bits(srun.TrueCPI) != math.Float64bits(prun.TrueCPI) {
				t.Errorf("%s: totals differ: %d/%d cycles %d/%d", label,
					srun.TotalInstructions, prun.TotalInstructions,
					srun.TrueCycles, prun.TrueCycles)
			}
			sameMethodStats(t, label+"/FLI", srun.FLI, prun.FLI)
			sameMethodStats(t, label+"/VLI", srun.VLI, prun.VLI)
		}
	}
}

// A single benchmark run through RunBenchmark (which builds its own
// pool) must match the serial path too.
func TestWorkersDeterminismSingleBenchmark(t *testing.T) {
	cfg1 := testConfig("swim")
	cfg1.Workers = 1
	cfgN := testConfig("swim")
	cfgN.Workers = 6

	serial, err := RunBenchmark("swim", cfg1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunBenchmark("swim", cfgN)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range serial.Runs {
		label := "swim/" + serial.Runs[bi].Binary.Name
		sameMethodStats(t, label+"/FLI", serial.Runs[bi].FLI, parallel.Runs[bi].FLI)
		sameMethodStats(t, label+"/VLI", serial.Runs[bi].VLI, parallel.Runs[bi].VLI)
	}
}
