package telemetry

import (
	"strings"
	"testing"

	"xbsim/internal/obs"
)

// The exposition format is a stable interface scraped by external
// tooling, so it is pinned byte-for-byte: sanitized xbsim_ names,
// _total counters, cumulative le buckets at power-of-two edges with a
// le="0" zeros bucket and +Inf, sorted within each kind.
func TestWritePrometheusGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("pipeline.retries").Add(3)
	r.Counter("blocks.total").Add(128)
	r.Gauge("simpoint.chosen_k").Set(4)
	h := r.Histogram("stage.mapping.duration_us")
	for _, v := range []uint64{0, 1, 3, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE xbsim_blocks_total_total counter
xbsim_blocks_total_total 128
# TYPE xbsim_pipeline_retries_total counter
xbsim_pipeline_retries_total 3
# TYPE xbsim_simpoint_chosen_k gauge
xbsim_simpoint_chosen_k 4
# TYPE xbsim_stage_mapping_duration_us histogram
xbsim_stage_mapping_duration_us_bucket{le="0"} 1
xbsim_stage_mapping_duration_us_bucket{le="1"} 2
xbsim_stage_mapping_duration_us_bucket{le="3"} 3
xbsim_stage_mapping_duration_us_bucket{le="127"} 4
xbsim_stage_mapping_duration_us_bucket{le="+Inf"} 4
xbsim_stage_mapping_duration_us_sum 104
xbsim_stage_mapping_duration_us_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Labeled metrics (obs.LabeledName) render as one series per label set
// under a single # TYPE line per family, with label-value escaping done
// at construction surviving verbatim — pinned byte-for-byte like the
// plain golden above.
func TestWritePrometheusLabeledGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", "acme")).Add(2)
	r.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", "beta")).Add(5)
	r.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", `ev"il\ten`)).Inc()
	r.Counter("serve.jobs.completed").Add(7)
	r.Gauge(obs.LabeledName("serve.queue.depth", "state", "pending")).Set(3)
	h := r.Histogram(obs.LabeledName("serve.run_ms", "tenant", "acme"))
	for _, v := range []uint64{0, 2, 900} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE xbsim_serve_jobs_completed_total counter
xbsim_serve_jobs_completed_total 7
# TYPE xbsim_serve_tenant_submissions_total counter
xbsim_serve_tenant_submissions_total{tenant="acme"} 2
xbsim_serve_tenant_submissions_total{tenant="beta"} 5
xbsim_serve_tenant_submissions_total{tenant="ev\"il\\ten"} 1
# TYPE xbsim_serve_queue_depth gauge
xbsim_serve_queue_depth{state="pending"} 3
# TYPE xbsim_serve_run_ms histogram
xbsim_serve_run_ms_bucket{tenant="acme",le="0"} 1
xbsim_serve_run_ms_bucket{tenant="acme",le="3"} 2
xbsim_serve_run_ms_bucket{tenant="acme",le="1023"} 3
xbsim_serve_run_ms_bucket{tenant="acme",le="+Inf"} 3
xbsim_serve_run_ms_sum{tenant="acme"} 902
xbsim_serve_run_ms_count{tenant="acme"} 3
`
	if got := b.String(); got != want {
		t.Errorf("labeled exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// One TYPE line per family even with three labeled variants.
	if n := strings.Count(b.String(), "# TYPE xbsim_serve_tenant_submissions_total"); n != 1 {
		t.Errorf("%d TYPE lines for the labeled counter family, want 1", n)
	}
}

// Rendering the same snapshot twice must produce identical bytes —
// the determinism contract behind the golden test above.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := obs.NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(name).Inc()
		r.Gauge("g." + name).Set(1)
		r.Histogram("h." + name).Observe(7)
	}
	snap := r.Snapshot()
	var a, b strings.Builder
	if err := WritePrometheus(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of one snapshot differ")
	}
	if !strings.Contains(a.String(), "xbsim_a_first_total") {
		t.Errorf("missing sanitized counter in:\n%s", a.String())
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"pool.queue_wait_us":  "xbsim_pool_queue_wait_us",
		"stage.vli.alloc":     "xbsim_stage_vli_alloc",
		"weird-name with:sep": "xbsim_weird_name_with:sep",
		"faults_injected.a.b": "xbsim_faults_injected_a_b",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// bucketBound must match the histogram's bucket semantics: bucket 0 is
// zeros, bucket i holds [2^(i-1), 2^i).
func TestBucketBound(t *testing.T) {
	for i, want := range map[int]uint64{
		0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 63: 1<<63 - 1,
	} {
		if got := bucketBound(i); got != want {
			t.Errorf("bucketBound(%d) = %d, want %d", i, got, want)
		}
	}
	if got := bucketBound(64); got != ^uint64(0) {
		t.Errorf("bucketBound(64) = %d, want MaxUint64", got)
	}
}
