package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbsim/internal/obs"
)

// startTestServer boots a server on a free port with a populated
// observer and tears it down with the test.
func startTestServer(t *testing.T) (*Server, *obs.Observer) {
	t.Helper()
	o := obs.New()
	o.Events = obs.NewRecorder(64)
	s, err := Start("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, o
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// /metrics must serve the registry's live state in the exposition
// format with the versioned content type.
func TestServerMetricsEndpoint(t *testing.T) {
	s, o := startTestServer(t)
	o.Counter("pipeline.retries").Add(2)
	o.Histogram("stage.mapping.duration_us").Observe(500)

	resp, body := get(t, "http://"+s.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"xbsim_pipeline_retries_total 2",
		"# TYPE xbsim_stage_mapping_duration_us histogram",
		`xbsim_stage_mapping_duration_us_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

// /progress must reflect the recorder's suite counts, per-benchmark
// states, and the tracer's spans.
func TestServerProgressEndpoint(t *testing.T) {
	s, o := startTestServer(t)
	o.Report(obs.Event{Benchmark: "gzip", Stage: "clustering", Done: 1, Total: 3})
	_, span := obs.StartSpan(obs.With(t.Context(), o), "stage.profile")
	span.End()

	_, body := get(t, "http://"+s.Addr()+"/progress")
	var view ProgressView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if view.Done != 1 || view.Total != 3 {
		t.Errorf("suite progress = %d/%d, want 1/3", view.Done, view.Total)
	}
	st, ok := view.Benchmarks["gzip"]
	if !ok || st.Stage != "clustering" {
		t.Errorf("benchmark state = %+v", view.Benchmarks)
	}
	if len(view.Spans) != 1 || view.Spans[0].Name != "stage.profile" {
		t.Errorf("spans = %+v", view.Spans)
	}
}

// /events must return the flight recorder's retained events with the
// dropped count.
func TestServerEventsEndpoint(t *testing.T) {
	s, o := startTestServer(t)
	o.Emit(obs.PipelineEvent{Kind: "stage.start", Benchmark: "mcf", Stage: "vli"})
	o.Emit(obs.PipelineEvent{Kind: "fault", Stage: "vli", Detail: "error fault at invocation 0"})

	_, body := get(t, "http://"+s.Addr()+"/events")
	var view EventsView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if view.Dropped != 0 || len(view.Events) != 2 {
		t.Fatalf("events view = %+v", view)
	}
	if view.Events[1].Kind != "fault" || view.Events[1].Seq != 2 {
		t.Errorf("event = %+v", view.Events[1])
	}
}

// An in-flight /events?stream=1 request must deliver events as JSONL
// while the server runs and terminate cleanly — stream closed, body
// readable to EOF — when the server shuts down, rather than hanging
// Shutdown or tearing the connection mid-line.
func TestServerEventsStreamTerminatesOnShutdown(t *testing.T) {
	o := obs.New()
	o.Events = obs.NewRecorder(64)
	s, err := Start("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	o.Emit(obs.PipelineEvent{Kind: "stage.start", Benchmark: "mcf", Stage: "vli"})

	resp, err := http.Get("http://" + s.Addr() + "/events?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	// Read the first streamed line, then emit another event and read it
	// too — proving the handler follows the ring, not just snapshots it.
	dec := json.NewDecoder(resp.Body)
	var ev obs.PipelineEvent
	if err := dec.Decode(&ev); err != nil || ev.Kind != "stage.start" {
		t.Fatalf("first streamed event = %+v, err %v", ev, err)
	}
	o.Emit(obs.PipelineEvent{Kind: "stage.end", Benchmark: "mcf", Stage: "vli"})
	if err := dec.Decode(&ev); err != nil || ev.Kind != "stage.end" {
		t.Fatalf("second streamed event = %+v, err %v", ev, err)
	}

	// Close must terminate the stream: the pending read returns EOF and
	// Close itself returns promptly without a shutdown timeout error.
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	if err := dec.Decode(&ev); err != io.EOF {
		t.Errorf("read after shutdown = %+v, err %v, want EOF", ev, err)
	}
	if err := <-closed; err != nil {
		t.Errorf("Close: %v", err)
	}
}

// The pprof endpoints must be mounted on the telemetry mux.
func TestServerPprofEndpoints(t *testing.T) {
	s, _ := startTestServer(t)
	resp, body := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, "http://"+s.Addr()+"/debug/pprof/heap?debug=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap: status %d", resp.StatusCode)
	}
}

// A server over a nil observer serves empty views, not panics, and the
// index page lists the endpoints.
func TestServerNilObserverAndIndex(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, body := get(t, "http://"+s.Addr()+"/metrics"); body != "" {
		t.Errorf("nil-observer /metrics = %q, want empty", body)
	}
	_, body := get(t, "http://"+s.Addr()+"/progress")
	var view ProgressView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, body := get(t, "http://"+s.Addr()+"/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index = %q", body)
	}
	resp, _ := get(t, "http://"+s.Addr()+"/nosuch")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d", resp.StatusCode)
	}
}

// StartProfiles/Stop must leave valid non-empty cpu.pprof and
// heap.pprof files; the empty-dir form and nil receiver are no-ops.
func TestProfilesCapture(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles")
	p, err := StartProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1<<20; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}

	if p, err := StartProfiles(""); err != nil || p != nil {
		t.Errorf("StartProfiles(\"\") = %v, %v", p, err)
	}
	var nilP *Profiles
	if err := nilP.Stop(); err != nil {
		t.Errorf("nil Stop: %v", err)
	}
}
