// Package telemetry serves the pipeline's observability state over HTTP
// while a run is in flight: Prometheus text exposition of the metrics
// registry, a JSON progress view of the stage tree, the flight recorder's
// recent structured events, and the standard pprof endpoints. It also
// captures CPU/heap profiles to disk for the -profile-dir flag.
//
// The server is read-only and lossless: every handler renders a
// point-in-time snapshot of state the pipeline already maintains through
// internal/obs, so attaching it changes nothing about the run.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"

	"xbsim/internal/obs"
)

// PrometheusContentType is the Content-Type of the text exposition
// format rendered by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name to Prometheus form: prefixed
// with "xbsim_" and with every byte outside [a-zA-Z0-9_:] replaced by
// an underscore (so "stage.mapping.duration_us" becomes
// "xbsim_stage_mapping_duration_us").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("xbsim_") + len(name))
	b.WriteString("xbsim_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitLabels splits a registry metric name into its base name and the
// optional {label} suffix produced by obs.LabeledName. Label values are
// escaped at construction time, so the suffix is already valid
// exposition syntax and is passed through verbatim; only the base name
// goes through promName sanitization.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// bucketBound returns the inclusive upper bound of power-of-two
// histogram bucket i as a le label value. Bucket 0 holds zeros, bucket
// i > 0 holds [2^(i-1), 2^i), so its largest member is 2^i - 1.
func bucketBound(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters gain the conventional
// _total suffix; histograms expand into cumulative _bucket series with
// le bounds at the power-of-two bucket edges, plus _sum and _count.
// Names built with obs.LabeledName render as one labeled series each;
// sorted iteration clusters a family's labeled variants together, so
// the # TYPE line is emitted once per family. Iteration follows the
// snapshot's sorted name lists, so the output is byte-for-byte
// deterministic for a given snapshot.
func WritePrometheus(w io.Writer, snap obs.Snapshot) error {
	ew := &errWriter{w: w}
	family := ""
	for _, name := range snap.CounterNames() {
		base, labels := splitLabels(name)
		pn := promName(base) + "_total"
		if pn != family {
			family = pn
			ew.printf("# TYPE %s counter\n", pn)
		}
		if labels != "" {
			ew.printf("%s{%s} %d\n", pn, labels, snap.Counters[name])
		} else {
			ew.printf("%s %d\n", pn, snap.Counters[name])
		}
	}
	family = ""
	for _, name := range snap.GaugeNames() {
		base, labels := splitLabels(name)
		pn := promName(base)
		if pn != family {
			family = pn
			ew.printf("# TYPE %s gauge\n", pn)
		}
		if labels != "" {
			ew.printf("%s{%s} %g\n", pn, labels, snap.Gauges[name])
		} else {
			ew.printf("%s %g\n", pn, snap.Gauges[name])
		}
	}
	family = ""
	for _, name := range snap.HistogramNames() {
		h := snap.Histograms[name]
		base, labels := splitLabels(name)
		pn := promName(base)
		if pn != family {
			family = pn
			ew.printf("# TYPE %s histogram\n", pn)
		}
		// A labeled histogram's le joins its label set.
		sep := ""
		if labels != "" {
			sep = labels + ","
		}
		var cum uint64
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			ew.printf("%s_bucket{%sle=\"%d\"} %d\n", pn, sep, bucketBound(i), cum)
		}
		ew.printf("%s_bucket{%sle=\"+Inf\"} %d\n", pn, sep, h.Count)
		if labels != "" {
			ew.printf("%s_sum{%s} %d\n", pn, labels, h.Sum)
			ew.printf("%s_count{%s} %d\n", pn, labels, h.Count)
		} else {
			ew.printf("%s_sum %d\n", pn, h.Sum)
			ew.printf("%s_count %d\n", pn, h.Count)
		}
	}
	return ew.err
}

// errWriter sticks on the first write error so exposition loops stay
// flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
