// Package telemetry serves the pipeline's observability state over HTTP
// while a run is in flight: Prometheus text exposition of the metrics
// registry, a JSON progress view of the stage tree, the flight recorder's
// recent structured events, and the standard pprof endpoints. It also
// captures CPU/heap profiles to disk for the -profile-dir flag.
//
// The server is read-only and lossless: every handler renders a
// point-in-time snapshot of state the pipeline already maintains through
// internal/obs, so attaching it changes nothing about the run.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"

	"xbsim/internal/obs"
)

// PrometheusContentType is the Content-Type of the text exposition
// format rendered by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name to Prometheus form: prefixed
// with "xbsim_" and with every byte outside [a-zA-Z0-9_:] replaced by
// an underscore (so "stage.mapping.duration_us" becomes
// "xbsim_stage_mapping_duration_us").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("xbsim_") + len(name))
	b.WriteString("xbsim_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// bucketBound returns the inclusive upper bound of power-of-two
// histogram bucket i as a le label value. Bucket 0 holds zeros, bucket
// i > 0 holds [2^(i-1), 2^i), so its largest member is 2^i - 1.
func bucketBound(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters gain the conventional
// _total suffix; histograms expand into cumulative _bucket series with
// le bounds at the power-of-two bucket edges, plus _sum and _count.
// Iteration follows the snapshot's sorted name lists, so the output is
// byte-for-byte deterministic for a given snapshot.
func WritePrometheus(w io.Writer, snap obs.Snapshot) error {
	ew := &errWriter{w: w}
	for _, name := range snap.CounterNames() {
		pn := promName(name) + "_total"
		ew.printf("# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}
	for _, name := range snap.GaugeNames() {
		pn := promName(name)
		ew.printf("# TYPE %s gauge\n%s %g\n", pn, pn, snap.Gauges[name])
	}
	for _, name := range snap.HistogramNames() {
		h := snap.Histograms[name]
		pn := promName(name)
		ew.printf("# TYPE %s histogram\n", pn)
		var cum uint64
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			ew.printf("%s_bucket{le=\"%d\"} %d\n", pn, bucketBound(i), cum)
		}
		ew.printf("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		ew.printf("%s_sum %d\n", pn, h.Sum)
		ew.printf("%s_count %d\n", pn, h.Count)
	}
	return ew.err
}

// errWriter sticks on the first write error so exposition loops stay
// flat.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
