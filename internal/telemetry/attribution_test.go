package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"xbsim/internal/obs"
)

// /attribution must serve the live cost-attribution snapshot as JSON.
func TestServerAttributionEndpoint(t *testing.T) {
	s, o := startTestServer(t)
	o.Attrib = obs.NewAttribution()
	o.Attrib.StartWalk("gcc", "gcc.32u", "full").Done(1000, 1500)
	o.Attrib.AddPoint("gcc", "gcc.32u", "fli", 4, 120, 180)
	o.Attrib.RecordEval("iv4/cfg", 120)
	o.Attrib.RecordEval("iv4/cfg", 120)

	resp, body := get(t, "http://"+s.Addr()+"/attribution")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap obs.AttribSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(snap.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2\n%s", len(snap.Nodes), body)
	}
	if snap.Nodes[0].Walk != "fli" || snap.Nodes[0].Point != 4 ||
		snap.Nodes[0].Value.Instructions != 120 {
		t.Errorf("point node = %+v", snap.Nodes[0])
	}
	if snap.Redundancy.Evaluations != 2 || snap.Redundancy.Duplicates != 1 {
		t.Errorf("redundancy = %+v", snap.Redundancy)
	}
}

// /attribution without a profiler (or observer) serves an empty
// snapshot with the same shape, never an error.
func TestServerAttributionEndpointEmpty(t *testing.T) {
	s, _ := startTestServer(t) // observer without Attrib
	_, body := get(t, "http://"+s.Addr()+"/attribution")
	var snap struct {
		Nodes []obs.AttribNode `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.Nodes == nil || len(snap.Nodes) != 0 {
		t.Errorf("empty attribution nodes = %v, want []", snap.Nodes)
	}

	nilSrv, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nilSrv.Close()
	if resp, _ := get(t, "http://"+nilSrv.Addr()+"/attribution"); resp.StatusCode != http.StatusOK {
		t.Errorf("nil observer /attribution status %d", resp.StatusCode)
	}
}

// /profile must serve a structurally valid speedscope document built
// from the attribution tree.
func TestServerProfileEndpoint(t *testing.T) {
	s, o := startTestServer(t)
	o.Attrib = obs.NewAttribution()
	o.Attrib.StartWalk("apsi", "apsi.64o", "vli").Done(500, 900)
	o.Attrib.AddPoint("apsi", "apsi.64o", "vli", 2, 300, 500)

	resp, body := get(t, "http://"+s.Addr()+"/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := obs.ValidateSpeedscope([]byte(body)); err != nil {
		t.Fatalf("/profile serves invalid speedscope: %v\n%s", err, body)
	}
	if !strings.Contains(body, "apsi.64o") || !strings.Contains(body, "walk:vli") {
		t.Errorf("flamegraph missing expected frames:\n%s", body)
	}

	// Without attribution it still serves a valid (empty) document.
	empty, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	_, body = get(t, "http://"+empty.Addr()+"/profile")
	if err := obs.ValidateSpeedscope([]byte(body)); err != nil {
		t.Errorf("empty /profile invalid: %v", err)
	}
}

// The index page must list the new endpoints.
func TestIndexListsAttributionEndpoints(t *testing.T) {
	s, _ := startTestServer(t)
	_, body := get(t, "http://"+s.Addr()+"/")
	for _, want := range []string{"/attribution", "/profile"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q:\n%s", want, body)
		}
	}
}

// The per-walk simulation counter families are scraped by external
// tooling, so their exposition is pinned byte-for-byte like the rest of
// the format: one golden covering the sim.full/sim.fli/sim.vli
// instruction counters and the per-level cache event counters.
func TestWritePrometheusSimFamiliesGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sim.full.instructions").Add(1_000_000)
	r.Counter("sim.fli.instructions").Add(250_000)
	r.Counter("sim.vli.instructions").Add(240_000)
	r.Counter("sim.full.cache.l1.evictions").Add(400)
	r.Counter("sim.full.cache.l1.writebacks").Add(150)
	r.Counter("sim.full.cache.l1.prefetch_fills").Add(0)
	r.Counter("sim.full.cache.l1.prefetch_evictions").Add(0)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE xbsim_sim_fli_instructions_total counter
xbsim_sim_fli_instructions_total 250000
# TYPE xbsim_sim_full_cache_l1_evictions_total counter
xbsim_sim_full_cache_l1_evictions_total 400
# TYPE xbsim_sim_full_cache_l1_prefetch_evictions_total counter
xbsim_sim_full_cache_l1_prefetch_evictions_total 0
# TYPE xbsim_sim_full_cache_l1_prefetch_fills_total counter
xbsim_sim_full_cache_l1_prefetch_fills_total 0
# TYPE xbsim_sim_full_cache_l1_writebacks_total counter
xbsim_sim_full_cache_l1_writebacks_total 150
# TYPE xbsim_sim_full_instructions_total counter
xbsim_sim_full_instructions_total 1000000
# TYPE xbsim_sim_vli_instructions_total counter
xbsim_sim_vli_instructions_total 240000
`
	if got := b.String(); got != want {
		t.Errorf("sim family exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
