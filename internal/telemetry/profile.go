package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Profiles captures CPU and heap profiles for a run (the -profile-dir
// flag): StartProfiles begins a CPU profile into <dir>/cpu.pprof, and
// Stop ends it and writes a post-GC heap snapshot to <dir>/heap.pprof.
// A nil *Profiles is a no-op, so callers can thread the value through
// unconditionally.
type Profiles struct {
	dir string
	cpu *os.File
}

// StartProfiles creates dir if needed and starts the CPU profile. An
// empty dir disables profiling and returns (nil, nil).
func StartProfiles(dir string) (*Profiles, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profile dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return &Profiles{dir: dir, cpu: f}, nil
}

// Stop ends the CPU profile and writes the heap profile. Call exactly
// once on the exit path; safe on nil.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	if err := p.cpu.Close(); err != nil {
		return fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	f, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the snapshot reflects live objects
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return nil
}
