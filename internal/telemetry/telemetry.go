package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"xbsim/internal/obs"
)

// Server exposes an Observer's live state over HTTP. Endpoints:
//
//	/metrics     Prometheus text exposition of the metrics registry
//	/progress    JSON: suite progress, per-benchmark state, span tree
//	/events      JSON: the flight recorder's recent structured events
//	/attribution JSON: the cost-attribution snapshot + redundancy summary
//	/profile     speedscope-compatible flamegraph of the attribution tree
//	/debug/pprof the standard runtime profiling endpoints
//
// Handlers snapshot state on every request; the pipeline never blocks
// on a slow scraper.
type Server struct {
	o    *obs.Observer
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Start listens on addr (e.g. "127.0.0.1:9090"; ":0" picks a free
// port) and serves the observer's state until Close. The observer and
// any of its fields may be nil — the corresponding endpoints serve
// empty views.
func Start(addr string, o *obs.Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{o: o, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/attribution", s.handleAttribution)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests.
// Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("xbsim telemetry\n\n" +
		"/metrics      Prometheus exposition\n" +
		"/progress     suite + per-benchmark progress (JSON)\n" +
		"/events       flight recorder events (JSON)\n" +
		"/attribution  cost attribution + redundancy summary (JSON)\n" +
		"/profile      speedscope flamegraph of the attribution tree\n" +
		"/debug/pprof  runtime profiles\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var snap obs.Snapshot
	if s.o != nil {
		snap = s.o.Metrics.Snapshot()
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	WritePrometheus(w, snap)
}

// ProgressView is the /progress response body.
type ProgressView struct {
	// Done and Total count finished vs scheduled benchmarks.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Benchmarks maps benchmark name to its latest recorded state.
	Benchmarks map[string]obs.BenchmarkState `json:"benchmarks,omitempty"`
	// Spans is the tracer's span tree in start order.
	Spans []obs.SpanView `json:"spans,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	var view ProgressView
	if s.o != nil {
		view.Done, view.Total = s.o.Events.SuiteProgress()
		view.Benchmarks = s.o.Events.BenchmarkStates()
		view.Spans = s.o.Tracer.Spans()
	}
	writeJSON(w, view)
}

// EventsView is the /events response body.
type EventsView struct {
	// Dropped counts events evicted from the bounded ring.
	Dropped uint64 `json:"dropped"`
	// Events holds the retained events, oldest first.
	Events []obs.PipelineEvent `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	view := EventsView{Events: []obs.PipelineEvent{}}
	if s.o != nil && s.o.Events != nil {
		view.Dropped = s.o.Events.Dropped()
		view.Events = s.o.Events.Events()
	}
	writeJSON(w, view)
}

// handleAttribution serves the live cost-attribution snapshot. With no
// attribution profiler attached it serves an empty snapshot, same shape.
func (s *Server) handleAttribution(w http.ResponseWriter, _ *http.Request) {
	var snap obs.AttribSnapshot
	if s.o != nil {
		snap = s.o.Attribution().Snapshot()
	}
	if snap.Nodes == nil {
		snap.Nodes = []obs.AttribNode{}
	}
	writeJSON(w, snap)
}

// handleProfile serves the attribution tree as a speedscope-compatible
// flamegraph JSON, loadable at https://www.speedscope.app.
func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	var snap obs.AttribSnapshot
	if s.o != nil {
		snap = s.o.Attribution().Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteSpeedscope(w, snap)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
