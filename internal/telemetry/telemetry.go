package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"xbsim/internal/obs"
)

// Handlers binds an Observer's live state to HTTP endpoints. It exists
// separately from Server so other servers (xbsim serve) can mount the
// same telemetry surface on their own mux. Close terminates in-flight
// streaming responses (/events?stream=1); plain snapshot handlers need
// no termination.
type Handlers struct {
	o    *obs.Observer
	stop chan struct{}
	once sync.Once
}

// NewHandlers wraps the observer (which, like any of its fields, may be
// nil — endpoints then serve empty views).
func NewHandlers(o *obs.Observer) *Handlers {
	return &Handlers{o: o, stop: make(chan struct{})}
}

// Register mounts every telemetry endpoint except "/" on mux (the
// index is left to the mux's owner, since a mux accepts only one "/"
// handler).
func (h *Handlers) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/progress", h.handleProgress)
	mux.HandleFunc("/events", h.handleEvents)
	mux.HandleFunc("/attribution", h.handleAttribution)
	mux.HandleFunc("/profile", h.handleProfile)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Close terminates in-flight streaming responses. Idempotent.
func (h *Handlers) Close() {
	h.once.Do(func() { close(h.stop) })
}

// Stop exposes the shutdown channel streaming handlers select on, so a
// host server can pass it to StreamEvents for its own streaming routes.
func (h *Handlers) Stop() <-chan struct{} { return h.stop }

// Server exposes an Observer's live state over HTTP. Endpoints:
//
//	/metrics     Prometheus text exposition of the metrics registry
//	/progress    JSON: suite progress, per-benchmark state, span tree
//	/events      JSON: the flight recorder's recent structured events
//	             (?stream=1 follows live as JSONL until shutdown)
//	/attribution JSON: the cost-attribution snapshot + redundancy summary
//	/profile     speedscope-compatible flamegraph of the attribution tree
//	/debug/pprof the standard runtime profiling endpoints
//
// Handlers snapshot state on every request; the pipeline never blocks
// on a slow scraper.
type Server struct {
	h    *Handlers
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Start listens on addr (e.g. "127.0.0.1:9090"; ":0" picks a free
// port) and serves the observer's state until Close. The observer and
// any of its fields may be nil — the corresponding endpoints serve
// empty views.
func Start(addr string, o *obs.Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{h: NewHandlers(o), ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	s.h.Register(mux)
	// Bounded read-side timeouts keep a stalled or malicious client from
	// pinning a connection; WriteTimeout stays 0 deliberately because
	// /events?stream=1 writes for as long as the client follows —
	// shutdown, not a write deadline, bounds streaming responses.
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully: in-flight event streams are
// terminated first (they would otherwise hold Shutdown open), then
// http.Server.Shutdown waits briefly for the remaining in-flight
// requests. Safe on nil.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}

// Shutdown is Close with a caller-controlled context: streams stop,
// then the HTTP server drains until ctx expires (with a 2s internal
// cap matching the old Close behavior when ctx has no deadline).
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.h.Close()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("xbsim telemetry\n\n" +
		"/metrics      Prometheus exposition\n" +
		"/progress     suite + per-benchmark progress (JSON)\n" +
		"/events       flight recorder events (JSON; ?stream=1 follows as JSONL)\n" +
		"/attribution  cost attribution + redundancy summary (JSON)\n" +
		"/profile      speedscope flamegraph of the attribution tree\n" +
		"/debug/pprof  runtime profiles\n"))
}

func (h *Handlers) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var snap obs.Snapshot
	if h.o != nil {
		snap = h.o.Metrics.Snapshot()
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	WritePrometheus(w, snap)
}

// ProgressView is the /progress response body.
type ProgressView struct {
	// Done and Total count finished vs scheduled benchmarks.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Benchmarks maps benchmark name to its latest recorded state.
	Benchmarks map[string]obs.BenchmarkState `json:"benchmarks,omitempty"`
	// Spans is the tracer's span tree in start order.
	Spans []obs.SpanView `json:"spans,omitempty"`
}

func (h *Handlers) handleProgress(w http.ResponseWriter, _ *http.Request) {
	var view ProgressView
	if h.o != nil {
		view.Done, view.Total = h.o.Events.SuiteProgress()
		view.Benchmarks = h.o.Events.BenchmarkStates()
		view.Spans = h.o.Tracer.Spans()
	}
	writeJSON(w, view)
}

// EventsView is the /events response body.
type EventsView struct {
	// Dropped counts events evicted from the bounded ring.
	Dropped uint64 `json:"dropped"`
	// Events holds the retained events, oldest first.
	Events []obs.PipelineEvent `json:"events"`
}

func (h *Handlers) handleEvents(w http.ResponseWriter, r *http.Request) {
	var rec *obs.Recorder
	if h.o != nil {
		rec = h.o.Events
	}
	if r.URL.Query().Get("stream") != "" {
		StreamEvents(w, r, rec, h.stop)
		return
	}
	view := EventsView{Events: []obs.PipelineEvent{}}
	if rec != nil {
		view.Dropped = rec.Dropped()
		view.Events = rec.Events()
	}
	writeJSON(w, view)
}

// streamPollInterval paces the follow-mode poll of the recorder ring.
var streamPollInterval = 100 * time.Millisecond

// StreamEvents serves a recorder as a live JSONL stream: every retained
// event with Seq > after (query parameter, default 0) is written as one
// JSON line, then the handler follows the ring — polling for new
// events, flushing each batch — until the client disconnects or stop is
// closed (server shutdown). The shared streaming core behind both the
// telemetry server's /events?stream=1 and serve's /jobs/{id}/events.
func StreamEvents(w http.ResponseWriter, r *http.Request, rec *obs.Recorder, stop <-chan struct{}) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	last, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)

	ticker := time.NewTicker(streamPollInterval)
	defer ticker.Stop()
	for {
		if rec != nil {
			for _, ev := range rec.Events() {
				if ev.Seq <= last {
					continue
				}
				if err := enc.Encode(ev); err != nil {
					return
				}
				last = ev.Seq
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-stop:
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// handleAttribution serves the live cost-attribution snapshot. With no
// attribution profiler attached it serves an empty snapshot, same shape.
func (h *Handlers) handleAttribution(w http.ResponseWriter, _ *http.Request) {
	var snap obs.AttribSnapshot
	if h.o != nil {
		snap = h.o.Attribution().Snapshot()
	}
	if snap.Nodes == nil {
		snap.Nodes = []obs.AttribNode{}
	}
	writeJSON(w, snap)
}

// handleProfile serves the attribution tree as a speedscope-compatible
// flamegraph JSON, loadable at https://www.speedscope.app.
func (h *Handlers) handleProfile(w http.ResponseWriter, _ *http.Request) {
	var snap obs.AttribSnapshot
	if h.o != nil {
		snap = h.o.Attribution().Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteSpeedscope(w, snap)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
