package trace

import (
	"bytes"
	"strings"
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/profile"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 555}

func testBinary(t testing.TB, name string, tg compiler.Target) *compiler.Binary {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	return compiler.MustCompile(p, tg)
}

// recorder captures the raw event stream for comparison.
type recorder struct {
	blocks  []int
	markers []int
}

func (r *recorder) OnBlock(b int)  { r.blocks = append(r.blocks, b) }
func (r *recorder) OnMarker(m int) { r.markers = append(r.markers, m) }

func TestRoundTripExactEventStream(t *testing.T) {
	bin := testBinary(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})

	var live recorder
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, exec.Multi{&live, tw}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed recorder
	hdr, err := Replay(&buf, bin, &replayed)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.BinaryName != bin.Name {
		t.Fatalf("header name %q", hdr.BinaryName)
	}
	if len(replayed.blocks) != len(live.blocks) {
		t.Fatalf("replayed %d blocks, recorded %d", len(replayed.blocks), len(live.blocks))
	}
	for i := range live.blocks {
		if live.blocks[i] != replayed.blocks[i] {
			t.Fatalf("block %d: %d vs %d", i, live.blocks[i], replayed.blocks[i])
		}
	}
	if len(replayed.markers) != len(live.markers) {
		t.Fatalf("replayed %d markers, recorded %d", len(replayed.markers), len(live.markers))
	}
	for i := range live.markers {
		if live.markers[i] != replayed.markers[i] {
			t.Fatalf("marker %d: %d vs %d", i, live.markers[i], replayed.markers[i])
		}
	}
}

func TestRecordHelperAndCompression(t *testing.T) {
	bin := testBinary(t, "swim", compiler.Target{Arch: compiler.Arch64, Opt: compiler.O0})
	var buf bytes.Buffer
	if err := Record(&buf, bin, refInput); err != nil {
		t.Fatal(err)
	}
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, ic); err != nil {
		t.Fatal(err)
	}
	// Delta + run-length coding should spend well under 2 bytes per block
	// event for loop-heavy code.
	bytesPerEvent := float64(buf.Len()) / float64(ic.BlockExecs)
	if bytesPerEvent > 2 {
		t.Fatalf("trace uses %.2f bytes/event (%d bytes for %d events)",
			bytesPerEvent, buf.Len(), ic.BlockExecs)
	}
}

func TestReplayDrivesProfileIdentically(t *testing.T) {
	// A trace replay must be a drop-in substitute for live execution:
	// collecting FLI BBVs from the replay gives identical intervals.
	bin := testBinary(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	var buf bytes.Buffer
	if err := Record(&buf, bin, refInput); err != nil {
		t.Fatal(err)
	}
	liveC, err := profile.NewFLICollector(bin, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, liveC); err != nil {
		t.Fatal(err)
	}
	liveRes := liveC.Finish()

	replayC, err := profile.NewFLICollector(bin, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&buf, bin, replayC); err != nil {
		t.Fatal(err)
	}
	replayRes := replayC.Finish()

	if liveRes.Dataset.Len() != replayRes.Dataset.Len() {
		t.Fatalf("interval counts differ: %d vs %d", liveRes.Dataset.Len(), replayRes.Dataset.Len())
	}
	for i, end := range liveRes.Ends {
		if replayRes.Ends[i] != end {
			t.Fatalf("interval %d end differs", i)
		}
	}
}

func TestReplayRejectsWrongBinary(t *testing.T) {
	bin := testBinary(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	other := testBinary(t, "art", compiler.Target{Arch: compiler.Arch64, Opt: compiler.O2})
	var buf bytes.Buffer
	if err := Record(&buf, bin, refInput); err != nil {
		t.Fatal(err)
	}
	var r recorder
	if _, err := Replay(&buf, other, &r); err == nil {
		t.Fatal("replay against wrong binary accepted")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	var r recorder
	bin := testBinary(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	if _, err := Replay(strings.NewReader("not a trace"), bin, &r); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream: valid header, no events.
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, bin)
	if err != nil {
		t.Fatal(err)
	}
	_ = tw // header written; stream never closed -> no opEnd
	if _, err := Replay(&buf, bin, &r); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestReadHeader(t *testing.T) {
	bin := testBinary(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	var buf bytes.Buffer
	if err := Record(&buf, bin, refInput); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.BinaryName != "gzip.32u" || hdr.NumBlocks != len(bin.Blocks) {
		t.Fatalf("header %+v", hdr)
	}
}

func TestWriterCloseTwice(t *testing.T) {
	bin := testBinary(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip %d -> %d", d, got)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	bin := testBinary(b, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Record(&buf, bin, refInput); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkReplay(b *testing.B) {
	bin := testBinary(b, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	var buf bytes.Buffer
	if err := Record(&buf, bin, refInput); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var r recorder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.blocks = r.blocks[:0]
		r.markers = r.markers[:0]
		if _, err := Replay(bytes.NewReader(data), bin, &r); err != nil {
			b.Fatal(err)
		}
	}
}
