// Package trace records a binary's dynamic execution — the block and
// marker event stream — to a compact binary format and replays it later
// into any exec.Visitor. This mirrors the trace-driven workflow around
// Pin: instrument once, analyze many times (collect BBVs with one
// configuration, re-cut intervals with another, re-simulate a different
// cache hierarchy) without re-running the program.
//
// Format: a small header (magic, version, binary name, block/marker
// table sizes) followed by a varint event stream. Block executions are
// delta-encoded against the previous block ID and run-length-compressed
// for immediate repeats (tight loops compress by orders of magnitude).
// Marker firings are implicit: the reader carries the binary's
// block-to-marker table, so markers are re-synthesized on replay exactly
// as the executor emits them.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

// magic identifies trace files; version gates format changes.
const (
	magic   = "XBTR"
	version = 1
)

// opcode space for the event stream. Each event starts with a uvarint
// tag: even tags encode a block-ID delta (zigzag), odd tags below are
// reserved control codes.
const (
	opRepeat = 1 // followed by uvarint count: repeat previous block count more times
	opEnd    = 3 // end of stream
)

// Writer records an execution as an exec.Visitor.
type Writer struct {
	w         *bufio.Writer
	bin       *compiler.Binary
	prevBlock int
	// pendingRepeats counts immediate re-executions of prevBlock not yet
	// flushed.
	pendingRepeats uint64
	started        bool
	closed         bool
	err            error

	// Blocks and Markers record how many events were written, for
	// diagnostics.
	Blocks uint64
}

// NewWriter starts a trace of the binary onto w. Call Close when the run
// finishes.
func NewWriter(w io.Writer, bin *compiler.Binary) (*Writer, error) {
	if bin == nil {
		return nil, fmt.Errorf("trace: nil binary")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &Writer{w: bw, bin: bin}
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var hdr [binary.MaxVarintLen64]byte
	for _, v := range []uint64{version, uint64(len(bin.Name)), uint64(len(bin.Blocks)), uint64(len(bin.Markers))} {
		n := binary.PutUvarint(hdr[:], v)
		if _, err := bw.Write(hdr[:n]); err != nil {
			return nil, err
		}
	}
	if _, err := bw.WriteString(bin.Name); err != nil {
		return nil, err
	}
	return tw, nil
}

func (t *Writer) putUvarint(v uint64) {
	if t.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, t.err = t.w.Write(buf[:n])
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// OnBlock implements exec.Visitor.
func (t *Writer) OnBlock(block int) {
	t.Blocks++
	if t.started && block == t.prevBlock {
		t.pendingRepeats++
		return
	}
	t.flushRepeats()
	delta := int64(block - t.prevBlock)
	if !t.started {
		delta = int64(block)
		t.started = true
	}
	// Even tags: 2*zigzag(delta) + 4 keeps 0..3 free for control codes.
	t.putUvarint(zigzag(delta)*2 + 4)
	t.prevBlock = block
}

// OnMarker implements exec.Visitor. Markers are derivable from blocks, so
// nothing is recorded.
func (t *Writer) OnMarker(int) {}

func (t *Writer) flushRepeats() {
	if t.pendingRepeats == 0 {
		return
	}
	t.putUvarint(opRepeat)
	t.putUvarint(t.pendingRepeats)
	t.pendingRepeats = 0
}

// Close flushes the trace. The Writer must not be used afterwards.
func (t *Writer) Close() error {
	if t.closed {
		return fmt.Errorf("trace: already closed")
	}
	t.closed = true
	t.flushRepeats()
	t.putUvarint(opEnd)
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Header describes a stored trace.
type Header struct {
	// BinaryName is the recorded binary's name ("gcc.32u").
	BinaryName string
	// NumBlocks and NumMarkers are the recorded table sizes, checked
	// against the binary supplied for replay.
	NumBlocks, NumMarkers int
}

// Replay streams a recorded trace into the visitor, re-synthesizing
// marker events from the binary's marker table. The binary must be the
// same compilation the trace was recorded from (checked by name and
// table sizes).
func Replay(r io.Reader, bin *compiler.Binary, v exec.Visitor) (*Header, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if bin == nil {
		return nil, fmt.Errorf("trace: nil binary")
	}
	if hdr.BinaryName != bin.Name || hdr.NumBlocks != len(bin.Blocks) || hdr.NumMarkers != len(bin.Markers) {
		return hdr, fmt.Errorf("trace: recorded for %s (%d blocks, %d markers), got %s (%d, %d)",
			hdr.BinaryName, hdr.NumBlocks, hdr.NumMarkers,
			bin.Name, len(bin.Blocks), len(bin.Markers))
	}

	markerOf := make([]int, len(bin.Blocks))
	for i := range markerOf {
		markerOf[i] = -1
	}
	for _, m := range bin.Markers {
		markerOf[m.Block] = m.ID
	}
	emit := func(block int) error {
		if block < 0 || block >= len(bin.Blocks) {
			return fmt.Errorf("trace: block %d out of range", block)
		}
		v.OnBlock(block)
		if m := markerOf[block]; m >= 0 {
			v.OnMarker(m)
		}
		return nil
	}

	prev := 0
	started := false
	for {
		tag, err := binary.ReadUvarint(br)
		if err != nil {
			return hdr, fmt.Errorf("trace: truncated stream: %w", err)
		}
		switch {
		case tag == opEnd:
			return hdr, nil
		case tag == opRepeat:
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return hdr, fmt.Errorf("trace: truncated repeat: %w", err)
			}
			if !started {
				return hdr, fmt.Errorf("trace: repeat before first block")
			}
			for i := uint64(0); i < count; i++ {
				if err := emit(prev); err != nil {
					return hdr, err
				}
			}
		case tag >= 4 && tag%2 == 0:
			delta := unzigzag((tag - 4) / 2)
			block := prev + int(delta)
			if !started {
				block = int(delta)
				started = true
			}
			if err := emit(block); err != nil {
				return hdr, err
			}
			prev = block
		default:
			return hdr, fmt.Errorf("trace: corrupt tag %d", tag)
		}
	}
}

// ReadHeader reads just the header, for inspection without replay.
func ReadHeader(r io.Reader) (*Header, error) {
	return readHeader(bufio.NewReader(r))
}

func readHeader(br *bufio.Reader) (*Header, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	numBlocks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	numMarkers, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	return &Header{
		BinaryName: string(name),
		NumBlocks:  int(numBlocks),
		NumMarkers: int(numMarkers),
	}, nil
}

// Record executes the binary on the input and writes its full trace to w.
func Record(w io.Writer, bin *compiler.Binary, in program.Input) error {
	tw, err := NewWriter(w, bin)
	if err != nil {
		return err
	}
	if err := exec.Run(bin, in, tw); err != nil {
		return err
	}
	return tw.Close()
}
