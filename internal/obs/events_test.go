package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// eventClock returns a deterministic recorder clock advancing 1s per
// reading, starting at the epoch.
func eventClock() func() time.Time {
	t := time.Unix(0, 0).UTC()
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestRecorderSequencesAndStamps(t *testing.T) {
	r := NewRecorder(8)
	r.SetClock(eventClock())
	r.Record(PipelineEvent{Kind: "stage.start", Benchmark: "gcc", Stage: "profile"})
	r.Record(PipelineEvent{Kind: "stage.finish", Benchmark: "gcc", Stage: "profile"})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d not timestamped", i)
		}
	}
	if evs[1].Time.Before(evs[0].Time) {
		t.Fatal("timestamps not monotone")
	}
}

// The ring must evict oldest-first: after overfilling, the buffer holds
// exactly the newest capacity events in order, and Dropped counts the
// rest.
func TestRecorderBoundedEvictionOrder(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(PipelineEvent{Kind: "stage.start", Detail: fmt.Sprintf("ev%d", i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events buffered, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i) // events 7,8,9,10 survive
		wantDetail := fmt.Sprintf("ev%d", 6+i)
		if ev.Seq != wantSeq || ev.Detail != wantDetail {
			t.Fatalf("slot %d = seq %d detail %q, want seq %d detail %q",
				i, ev.Seq, ev.Detail, wantSeq, wantDetail)
		}
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

// Concurrent writers (run under -race in CI) must each get a unique
// sequence number and never corrupt the ring.
func TestRecorderConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 200
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(PipelineEvent{Kind: "fault", Benchmark: fmt.Sprintf("b%d", w)})
				r.Events()
				r.BenchmarkStates()
			}
		}(w)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("%d events buffered, want capacity 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous sequence: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != writers*perWriter {
		t.Fatalf("last seq = %d, want %d", evs[len(evs)-1].Seq, writers*perWriter)
	}
}

// Events streamed as JSONL must decode back bit-identically, including
// eviction survivors: the file holds every event, the ring only the
// newest.
func TestRecorderJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(2)
	r.SetClock(eventClock())
	r.SetOutput(&buf)
	want := []PipelineEvent{
		{Kind: "stage.start", Benchmark: "gcc", Stage: "profile"},
		{Kind: "fault", Benchmark: "gcc", Stage: "profile.task", Detail: "panic"},
		{Kind: "stage.retry", Benchmark: "gcc", Stage: "profile"},
		{Kind: "progress", Benchmark: "gcc", Done: 1, Total: 5},
	}
	for _, ev := range want {
		r.Record(ev)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d (the JSONL stream must outlive ring eviction)", len(got), len(want))
	}
	for i, ev := range got {
		w := want[i]
		w.Seq = uint64(i + 1)
		if !ev.Time.Equal(time.Unix(int64(i+1), 0).UTC()) {
			t.Fatalf("event %d time = %v, want %v", i, ev.Time, time.Unix(int64(i+1), 0).UTC())
		}
		ev.Time, w.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(ev, w) {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, ev, w)
		}
	}
}

func TestRecorderBenchmarkStatesAndSuiteProgress(t *testing.T) {
	r := NewRecorder(8)
	r.Record(PipelineEvent{Kind: "stage.start", Benchmark: "gcc", Stage: "profile", Binary: "32u"})
	r.Record(PipelineEvent{Kind: "stage.start", Benchmark: "apsi", Stage: "compile"})
	r.Record(PipelineEvent{Kind: "progress", Benchmark: "gcc", Stage: "done", Done: 1, Total: 2})
	states := r.BenchmarkStates()
	if len(states) != 2 {
		t.Fatalf("%d benchmark states, want 2", len(states))
	}
	if st := states["gcc"]; st.Stage != "done" || st.Kind != "progress" || st.Seq != 3 {
		t.Fatalf("gcc state = %+v, want latest event (stage done, seq 3)", st)
	}
	if st := states["apsi"]; st.Stage != "compile" || st.Binary != "" {
		t.Fatalf("apsi state = %+v", st)
	}
	done, total := r.SuiteProgress()
	if done != 1 || total != 2 {
		t.Fatalf("suite progress = %d/%d, want 1/2", done, total)
	}
}

// A nil recorder — and an observer without one — must discard
// everything without panicking.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(PipelineEvent{Kind: "fault"})
	r.SetOutput(&bytes.Buffer{})
	r.SetClock(time.Now)
	if r.Events() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
	if r.BenchmarkStates() != nil {
		t.Fatal("nil recorder returned states")
	}
	if d, tot := r.SuiteProgress(); d != 0 || tot != 0 {
		t.Fatal("nil recorder returned progress")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	o := New() // no Events attached
	o.Emit(PipelineEvent{Kind: "fault"})
	o.Report(Event{Benchmark: "gcc", Stage: "profile"})
	var nilObs *Observer
	nilObs.Emit(PipelineEvent{Kind: "fault"})
}

// Observer.Report must mirror progress events into the recorder.
func TestObserverReportFeedsRecorder(t *testing.T) {
	o := New()
	o.Events = NewRecorder(8)
	o.Report(Event{Benchmark: "gcc", Binary: "32u", Stage: "profile"})
	evs := o.Events.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != "progress" || ev.Benchmark != "gcc" || ev.Binary != "32u" || ev.Stage != "profile" {
		t.Fatalf("recorded %+v", ev)
	}
}
