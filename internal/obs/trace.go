package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Trace correlation: a TraceID is an opaque string minted at admission
// (or supplied by the client) that identifies one end-to-end request
// through serve → jobqueue → pipeline. It travels on the context, is
// stamped onto flight-recorder events (see Recorder.SetTrace), and is
// persisted in the job spool so it survives crash recovery — the
// timeline reconstructor keys on it.

// traceKey keys the trace ID in a context.
type traceKey struct{}

// NewTraceID mints a fresh trace ID ("t-" + 16 hex chars). IDs are
// random, not content-derived: two submissions of identical work get
// distinct traces, which is what lets coalescing be observed.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return "t-" + hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID. An empty ID
// returns ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" when none is
// attached. The miss path performs no allocation — tracing must cost
// nothing when off.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// maxTraceIDLen bounds client-supplied trace IDs and tenant labels so
// hostile input can't bloat journals or metric names.
const maxTraceIDLen = 120

// SanitizeTraceID canonicalizes a client-supplied trace ID or tenant
// label: surrounding whitespace is trimmed, control and non-ASCII bytes
// become '_', and the result is capped at 120 bytes. Quotes and
// backslashes survive — the Prometheus label escaper handles them.
func SanitizeTraceID(id string) string {
	id = strings.TrimSpace(id)
	if len(id) > maxTraceIDLen {
		id = id[:maxTraceIDLen]
	}
	clean := func(r rune) rune {
		if r < 0x20 || r > 0x7e {
			return '_'
		}
		return r
	}
	return strings.Map(clean, id)
}

// LabeledName builds a registry metric name carrying a Prometheus-style
// label set: LabeledName("serve.tenant.jobs", "tenant", "acme") is
// `serve.tenant.jobs{tenant="acme"}`. Label values are escaped here
// (backslash, quote, newline), so the suffix is already valid exposition
// syntax and the telemetry renderer can pass it through verbatim while
// sanitizing only the base name. Odd trailing arguments are ignored.
func LabeledName(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16)
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies Prometheus label-value escaping: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
