package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestRecorderTraceStamping(t *testing.T) {
	r := NewRecorder(8)
	r.SetTrace("t-canonical")
	r.Record(PipelineEvent{Kind: "stage.start"})
	r.Record(PipelineEvent{Kind: "job.coalesce", Trace: "t-other"})
	evs := r.Events()
	if evs[0].Trace != "t-canonical" {
		t.Fatalf("unstamped event trace = %q, want recorder's t-canonical", evs[0].Trace)
	}
	if evs[1].Trace != "t-other" {
		t.Fatalf("explicit event trace = %q, want its own t-other", evs[1].Trace)
	}
	if r.Trace() != "t-canonical" {
		t.Fatalf("Trace() = %q", r.Trace())
	}
}

// The file journal must rotate at the cap: the live file renames to the
// .1 generation, a fresh file begins, the rotation counter ticks, and
// ReadJournal stitches both generations back in order.
func TestRecorderJournalRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	r := NewRecorder(4)
	r.SetClock(eventClock())
	rc := &Counter{}
	r.SetRotationCounter(rc)
	if err := r.SetOutputPath(path, 256); err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		r.Record(PipelineEvent{Kind: "stage.start", Detail: fmt.Sprintf("ev%02d", i)})
	}
	if err := r.CloseOutput(); err != nil {
		t.Fatal(err)
	}
	if r.Rotations() == 0 {
		t.Fatal("no rotation after 40 events at a 256-byte cap")
	}
	if rc.Value() != r.Rotations() {
		t.Fatalf("rotation counter = %d, recorder reports %d", rc.Value(), r.Rotations())
	}
	if _, err := os.Stat(RotatedPath(path)); err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	// Only the newest events survive (each rotation discards the prior
	// .1 generation), but the merged read must be in-order and contiguous
	// through the final event.
	evs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("merged journal is empty")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("merged journal seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if last := evs[len(evs)-1]; last.Seq != total || last.Detail != fmt.Sprintf("ev%02d", total-1) {
		t.Fatalf("last journal event = seq %d %q, want seq %d ev%02d", last.Seq, last.Detail, total, total-1)
	}
}

func TestRotatedPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"journal.jsonl", "journal.1.jsonl"},
		{"/a/b/j-1.jsonl", "/a/b/j-1.1.jsonl"},
		{"noext", "noext.1"},
	}
	for _, c := range cases {
		if got := RotatedPath(c.in); got != c.want {
			t.Fatalf("RotatedPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// A journal reopened across "restarts" must append, and ReadJournal of
// a never-written path must read as empty, not an error.
func TestRecorderJournalAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	for run := 0; run < 2; run++ {
		r := NewRecorder(4)
		if err := r.SetOutputPath(path, 0); err != nil {
			t.Fatal(err)
		}
		r.Record(PipelineEvent{Kind: "stage.start", Detail: fmt.Sprintf("run%d", run)})
		if err := r.CloseOutput(); err != nil {
			t.Fatal(err)
		}
	}
	evs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Detail != "run0" || evs[1].Detail != "run1" {
		t.Fatalf("reopened journal = %+v, want run0 then run1", evs)
	}
	if evs, err := ReadJournal(filepath.Join(dir, "absent.jsonl")); err != nil || len(evs) != 0 {
		t.Fatalf("absent journal = %d events, %v; want empty, nil", len(evs), err)
	}
}

// A torn tail — the partial line a crash leaves behind — must cost only
// itself: every whole line before (and after) it still decodes.
func TestReadEventsToleratesTornLines(t *testing.T) {
	in := `{"seq":1,"time":"2026-01-02T03:04:05Z","kind":"job.submit"}
{"seq":2,"time":"2026-01-02T03:04:06Z","kind":"job.sta
{"seq":3,"time":"2026-01-02T03:04:07Z","kind":"job.done"}
{"seq":4,"time":"2026-01-02T03:0`
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 3 {
		t.Fatalf("decoded %+v, want the two whole lines (seq 1, 3)", evs)
	}
}

// Satellite stress: many writers hammering a tiny ring while readers
// snapshot it. Under -race this doubles as the locking proof; the
// assertions pin the eviction accounting (Dropped + Len == Seq) and the
// ring's contiguous ordering at every snapshot.
func TestRecorderConcurrentWritersAtCapacityStress(t *testing.T) {
	const writers, perWriter, capacity = 16, 500, 8
	r := NewRecorder(capacity)
	r.SetTrace("t-stress")
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(PipelineEvent{Kind: "fault", Benchmark: fmt.Sprintf("b%d", w%4)})
				if i%25 == 0 {
					evs := r.Events()
					for k := 1; k < len(evs); k++ {
						if evs[k].Seq != evs[k-1].Seq+1 {
							t.Errorf("snapshot seq gap: %d then %d", evs[k-1].Seq, evs[k].Seq)
							return
						}
					}
					_ = r.Dropped()
				}
			}
		}(w)
	}
	wg.Wait()
	const total = writers * perWriter
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("ring holds %d, want capacity %d", len(evs), capacity)
	}
	if got := r.Dropped(); got != total-capacity {
		t.Fatalf("Dropped = %d, want %d", got, total-capacity)
	}
	if last := evs[len(evs)-1]; last.Seq != total {
		t.Fatalf("last seq = %d, want %d", last.Seq, total)
	}
	for _, ev := range evs {
		if ev.Trace != "t-stress" {
			t.Fatalf("event not trace-stamped: %+v", ev)
		}
	}
}
