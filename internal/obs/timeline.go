package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Timeline reconstruction: given one job's durable flight-recorder
// journal (spool state transitions and pipeline events, possibly
// spanning a crash and recovery) plus the current run's stage spans,
// BuildTimeline merges everything into one time-ordered view and
// derives the coarse phases an operator asks about first: how long the
// job waited for a slot, how long it ran, where a checkpoint resume or
// a cache lookup short-circuited work. The package deliberately takes
// plain inputs — obs sits below jobqueue, so the queue adapts its state
// into a TimelineInput rather than the other way around.

// TimelineInput is everything BuildTimeline merges.
type TimelineInput struct {
	// TraceID is the job's canonical trace; JobID, Tenant, State, and
	// Links annotate the view (Links are coalesced submissions' traces).
	TraceID string
	JobID   string
	Tenant  string
	State   string
	Links   []string
	// Events is the job's event history, journal order (merged rotated +
	// live generations; Seq may restart across process lifetimes, so
	// ordering is by Time first).
	Events []PipelineEvent
	// Spans are the current run's stage spans; SpanEpoch is their
	// tracer's time origin (SpanView.Start offsets are relative to it).
	Spans     []SpanView
	SpanEpoch time.Time
}

// TimelineEntry is one merged, time-ordered timeline row.
type TimelineEntry struct {
	Time time.Time `json:"time"`
	// Source is "event" (flight recorder) or "span" (tracer).
	Source string `json:"source"`
	// Kind is the event kind, or "span" for tracer rows.
	Kind      string `json:"kind"`
	Benchmark string `json:"benchmark,omitempty"`
	Stage     string `json:"stage,omitempty"`
	Detail    string `json:"detail,omitempty"`
	// DurUS is the span duration (span rows only).
	DurUS int64 `json:"durUs,omitempty"`
	// Trace is the row's correlation ID (a coalesced submission's rows
	// carry its own trace, linking back to the canonical one).
	Trace string `json:"trace,omitempty"`
	// Seq is the flight recorder's sequence number (event rows only; it
	// restarts across process lifetimes).
	Seq uint64 `json:"seq,omitempty"`
}

// TimelinePhase is one derived coarse phase of the job's life.
type TimelinePhase struct {
	// Name is "queue-wait", "run", "checkpoint-resume", or
	// "cache-lookup".
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurUS is the phase length; instantaneous markers
	// (checkpoint-resume, cache-lookup) report 0.
	DurUS  int64  `json:"durUs"`
	Detail string `json:"detail,omitempty"`
}

// Timeline is one job's reconstructed end-to-end view.
type Timeline struct {
	TraceID string          `json:"traceId"`
	JobID   string          `json:"jobId,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	State   string          `json:"state,omitempty"`
	Links   []string        `json:"links,omitempty"`
	Entries []TimelineEntry `json:"entries"`
	Phases  []TimelinePhase `json:"phases"`
}

// BuildTimeline merges events and spans into one ordered timeline and
// derives phases from the job lifecycle events:
//
//   - queue-wait: each enqueue (job.submit, job.resubmit, job.recover)
//     to the following job.start — a recovered job's wait is measured
//     from the recovery transition, not the original admission.
//   - run: each job.start to its terminal job.done / job.fail /
//     job.respool (an attempt interrupted by drain).
//   - checkpoint-resume: every checkpoint event whose Detail is
//     "loaded" — a benchmark answered from a previous attempt's state.
//   - cache-lookup: every job.cache event — a submission answered from
//     the content-addressed result cache without running.
func BuildTimeline(in TimelineInput) *Timeline {
	tl := &Timeline{
		TraceID: in.TraceID,
		JobID:   in.JobID,
		Tenant:  in.Tenant,
		State:   in.State,
		Links:   append([]string(nil), in.Links...),
	}

	tl.Entries = make([]TimelineEntry, 0, len(in.Events)+len(in.Spans))
	for _, ev := range in.Events {
		tl.Entries = append(tl.Entries, TimelineEntry{
			Time: ev.Time, Source: "event", Kind: ev.Kind,
			Benchmark: ev.Benchmark, Stage: ev.Stage, Detail: ev.Detail,
			Trace: ev.Trace, Seq: ev.Seq,
		})
	}
	for _, s := range in.Spans {
		tl.Entries = append(tl.Entries, TimelineEntry{
			Time: in.SpanEpoch.Add(s.Start), Source: "span", Kind: "span",
			Stage: s.Name, Detail: s.Detail, DurUS: s.Dur.Microseconds(),
			Trace: in.TraceID,
		})
	}
	sort.SliceStable(tl.Entries, func(i, k int) bool {
		if !tl.Entries[i].Time.Equal(tl.Entries[k].Time) {
			return tl.Entries[i].Time.Before(tl.Entries[k].Time)
		}
		return tl.Entries[i].Seq < tl.Entries[k].Seq
	})

	// Phase derivation walks the event stream in journal order (Seq ties
	// broken by time), which is also how the events were recorded.
	var waitStart, runStart time.Time
	attempt := 0
	for _, ev := range in.Events {
		switch ev.Kind {
		case "job.submit", "job.resubmit", "job.recover":
			waitStart = ev.Time
		case "job.start":
			if !waitStart.IsZero() {
				tl.Phases = append(tl.Phases, TimelinePhase{
					Name: "queue-wait", Start: waitStart,
					DurUS: ev.Time.Sub(waitStart).Microseconds(),
				})
				waitStart = time.Time{}
			}
			runStart = ev.Time
			attempt++
		case "job.done", "job.fail", "job.respool":
			if !runStart.IsZero() {
				tl.Phases = append(tl.Phases, TimelinePhase{
					Name: "run", Start: runStart,
					DurUS:  ev.Time.Sub(runStart).Microseconds(),
					Detail: fmt.Sprintf("attempt %d: %s", attempt, strings.TrimPrefix(ev.Kind, "job.")),
				})
				runStart = time.Time{}
			}
		case "checkpoint":
			if ev.Detail == "loaded" {
				tl.Phases = append(tl.Phases, TimelinePhase{
					Name: "checkpoint-resume", Start: ev.Time, Detail: ev.Benchmark,
				})
			}
		case "job.cache":
			tl.Phases = append(tl.Phases, TimelinePhase{
				Name: "cache-lookup", Start: ev.Time, Detail: ev.Detail,
			})
		}
	}
	return tl
}

// Phase returns the first phase with the given name, or nil.
func (t *Timeline) Phase(name string) *TimelinePhase {
	for i := range t.Phases {
		if t.Phases[i].Name == name {
			return &t.Phases[i]
		}
	}
	return nil
}

// WriteTable renders the timeline as a human-readable table: a header
// line, the derived phases, and every merged entry in time order.
func (t *Timeline) WriteTable(w io.Writer) error {
	ew := fmt.Fprintf
	if _, err := ew(w, "trace %s", t.TraceID); err != nil {
		return err
	}
	if t.JobID != "" {
		ew(w, "  job %s", t.JobID)
	}
	if t.Tenant != "" {
		ew(w, "  tenant %s", t.Tenant)
	}
	if t.State != "" {
		ew(w, "  state %s", t.State)
	}
	ew(w, "\n")
	if len(t.Links) > 0 {
		ew(w, "linked traces: %s\n", strings.Join(t.Links, ", "))
	}
	if len(t.Phases) > 0 {
		ew(w, "phases:\n")
		for _, p := range t.Phases {
			ew(w, "  %-18s %s %10.1fms  %s\n",
				p.Name, p.Start.Format(time.RFC3339Nano), float64(p.DurUS)/1000, p.Detail)
		}
	}
	ew(w, "entries:\n")
	for _, e := range t.Entries {
		loc := e.Benchmark
		if e.Stage != "" {
			if loc != "" {
				loc += "/"
			}
			loc += e.Stage
		}
		detail := e.Detail
		if e.Source == "span" {
			detail = fmt.Sprintf("%.1fms %s", float64(e.DurUS)/1000, detail)
		}
		if _, err := ew(w, "  %-30s %-6s %-14s %-28s %s\n",
			e.Time.Format(time.RFC3339Nano), e.Source, e.Kind, loc, strings.TrimSpace(detail)); err != nil {
			return err
		}
	}
	return nil
}
