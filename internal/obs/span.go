package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer records wall-time spans. Spans form a tree via the context
// returned by StartSpan; concurrent pipelines (one goroutine per
// benchmark) may record into one tracer simultaneously. A nil *Tracer
// records nothing.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
	spans []*Span
}

// NewTracer returns a tracer using the wall clock.
func NewTracer() *Tracer {
	return NewTracerWithClock(time.Now)
}

// NewTracerWithClock returns a tracer reading time from now — injectable
// for deterministic tests.
func NewTracerWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, epoch: now()}
}

// Epoch returns the tracer's time origin — SpanView.Start values are
// offsets from it, so epoch + Start is a span's absolute wall-clock
// start (the timeline reconstructor's conversion). A nil tracer returns
// the zero time.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Span is one timed region of the pipeline. End it exactly once; a nil
// *Span ignores all calls.
type Span struct {
	tracer *Tracer
	parent *Span

	// id is the 1-based span index in the tracer.
	id int
	// name identifies the stage ("stage.clustering", "exec.run", ...).
	name string
	// detail is an optional free-form annotation (binary name, k, ...).
	detail string
	start  time.Time
	dur    time.Duration
	ended  bool
}

// start opens and registers a new span.
func (t *Tracer) start(name string, parent *Span) *Span {
	s := &Span{tracer: t, parent: parent, name: name}
	t.mu.Lock()
	s.id = len(t.spans) + 1
	s.start = t.now()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes the span, recording its duration. Safe to call on nil and
// idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = t.now().Sub(s.start)
	}
	t.mu.Unlock()
}

// Annotate attaches a free-form detail string (e.g. the binary name).
func (s *Span) Annotate(detail string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.detail = detail
	s.tracer.mu.Unlock()
}

// SpanView is an exported copy of one recorded span.
type SpanView struct {
	// ID is the 1-based span index; Parent is the parent's ID (0 = root).
	ID, Parent int
	// Name and Detail identify the span.
	Name, Detail string
	// Start is the offset from the tracer's epoch; Dur the span length.
	Start, Dur time.Duration
	// Ended reports whether End was called.
	Ended bool
}

// Spans returns a copy of every recorded span, in start order. A nil
// tracer returns nil.
func (t *Tracer) Spans() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanView, len(t.spans))
	for i, s := range t.spans {
		v := SpanView{
			ID:     s.id,
			Name:   s.name,
			Detail: s.detail,
			Start:  s.start.Sub(t.epoch),
			Dur:    s.dur,
			Ended:  s.ended,
		}
		if s.parent != nil {
			v.Parent = s.parent.id
		}
		out[i] = v
	}
	return out
}

// chromeEvent is one Chrome trace_event entry ("X" = complete event).
// Field order is fixed so the JSON output is stable for golden tests.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Unit        string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the recorded spans as Chrome trace_event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev). Each root
// span and its subtree share one thread lane, so concurrent benchmarks
// render as parallel rows. Unended spans are written with their elapsed
// time so a trace dumped after a failure still loads.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	views := t.Spans()
	t.mu.Lock()
	nowDur := t.now().Sub(t.epoch)
	t.mu.Unlock()

	// Lane per root: a span's tid is its outermost ancestor's ID.
	lane := make(map[int]int, len(views))
	for _, v := range views {
		if v.Parent == 0 {
			lane[v.ID] = v.ID
		} else {
			lane[v.ID] = lane[v.Parent]
		}
	}
	trace := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(views)), Unit: "ms"}
	for _, v := range views {
		dur := v.Dur
		if !v.Ended {
			dur = nowDur - v.Start
		}
		ev := chromeEvent{
			Name: v.Name,
			Cat:  "xbsim",
			Ph:   "X",
			Ts:   v.Start.Microseconds(),
			Dur:  dur.Microseconds(),
			Pid:  1,
			Tid:  lane[v.ID],
		}
		if v.Detail != "" {
			ev.Args = map[string]string{"detail": v.Detail}
		}
		trace.TraceEvents = append(trace.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// AutoFlush arranges for the Chrome trace to be written to w exactly
// once: either when ctx is cancelled (a goroutine flushes immediately,
// so an interrupted run still leaves a complete, loadable JSON file —
// unended spans are emitted with their elapsed time) or when the
// returned flush function is called on the normal exit path, whichever
// happens first. The flush function is idempotent and returns the write
// error of whichever flush actually ran. A nil tracer returns a no-op
// flush.
func (t *Tracer) AutoFlush(ctx context.Context, w io.Writer) (flush func() error) {
	if t == nil {
		return func() error { return nil }
	}
	var once sync.Once
	var err error
	flush = func() error {
		once.Do(func() { err = t.WriteChromeTrace(w) })
		return err
	}
	go func() {
		<-ctx.Done()
		flush()
	}()
	return flush
}

// treeNode aggregates same-named sibling spans for the timing tree.
type treeNode struct {
	name     string
	count    int
	total    time.Duration
	details  []string
	children []int // span IDs folded into this node
}

// WriteTree renders a human-readable stage-timing tree. Same-named
// siblings are folded into one line with a count and total duration:
//
//	benchmark (gcc)                 812.4ms
//	  stage.compile                   3.1ms
//	  stage.profile ×4              210.9ms
//	    exec.run ×4                 208.2ms
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	views := t.Spans()
	if len(views) == 0 {
		return nil
	}
	byParent := map[int][]SpanView{}
	for _, v := range views {
		byParent[v.Parent] = append(byParent[v.Parent], v)
	}
	if _, err := fmt.Fprintln(w, "stage timings:"); err != nil {
		return err
	}
	return writeLevel(w, byParent, []SpanView{{ID: 0}}, 0)
}

// writeLevel prints the folded children of the given parent group, then
// recurses into each fold.
func writeLevel(w io.Writer, byParent map[int][]SpanView, parents []SpanView, depth int) error {
	// Collect children of every parent in the group, folding by name.
	var order []string
	folds := map[string]*treeNode{}
	for _, p := range parents {
		for _, c := range byParent[p.ID] {
			n := folds[c.Name]
			if n == nil {
				n = &treeNode{name: c.Name}
				folds[c.Name] = n
				order = append(order, c.Name)
			}
			n.count++
			n.total += c.Dur
			n.children = append(n.children, c.ID)
			if c.Detail != "" {
				n.details = append(n.details, c.Detail)
			}
		}
	}
	for _, name := range order {
		n := folds[name]
		label := n.name
		switch {
		case n.count == 1 && len(n.details) == 1:
			label = fmt.Sprintf("%s (%s)", n.name, n.details[0])
		case n.count > 1:
			label = fmt.Sprintf("%s ×%d", n.name, n.count)
		}
		if _, err := fmt.Fprintf(w, "  %s%-*s %12s\n",
			strings.Repeat("  ", depth), 46-2*depth, label, formatDur(n.total)); err != nil {
			return err
		}
		group := make([]SpanView, len(n.children))
		for i, id := range n.children {
			group[i] = SpanView{ID: id}
		}
		if err := writeLevel(w, byParent, group, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// formatDur renders a duration with millisecond precision.
func formatDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// StageNames returns the sorted set of distinct span names recorded so
// far — convenient for asserting stage coverage in tests.
func (t *Tracer) StageNames() []string {
	seen := map[string]bool{}
	for _, v := range t.Spans() {
		seen[v.Name] = true
	}
	return sortedKeys(seen)
}
