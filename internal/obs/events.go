package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// PipelineEvent is one structured entry in the pipeline's flight
// recorder: a stage starting, finishing, retrying, an injected fault
// firing, a checkpoint being loaded or saved, or a coarse progress
// update. Events are small, flat, and JSON-stable — the same struct is
// served live from the telemetry server's /events endpoint and
// persisted as one JSONL line per event.
type PipelineEvent struct {
	// Seq is the recorder-assigned sequence number, 1-based and strictly
	// increasing; gaps never occur, so Seq exposes eviction to readers.
	Seq uint64 `json:"seq"`
	// Time is the recorder-assigned wall-clock timestamp.
	Time time.Time `json:"time"`
	// Kind classifies the event: "stage.start", "stage.finish",
	// "stage.retry", "stage.fail", "fault", "checkpoint", "progress".
	Kind string `json:"kind"`
	// Benchmark, Binary, and Stage locate the event in the pipeline
	// (any may be empty).
	Benchmark string `json:"benchmark,omitempty"`
	Binary    string `json:"binary,omitempty"`
	Stage     string `json:"stage,omitempty"`
	// Detail is a free-form annotation (error text, fault kind, ...).
	Detail string `json:"detail,omitempty"`
	// Trace is the end-to-end correlation ID the event belongs to. Events
	// recorded without one inherit the recorder's trace (SetTrace); an
	// explicit value survives, which is how a coalesced submission's
	// trace is linked onto the canonical job's event stream.
	Trace string `json:"trace,omitempty"`
	// Done and Total, when Total > 0, carry suite-level completion.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// BenchmarkState is the most recent recorded state of one benchmark,
// maintained by the recorder for the live /progress view.
type BenchmarkState struct {
	// Kind and Stage are from the benchmark's latest event.
	Kind  string `json:"kind"`
	Stage string `json:"stage"`
	// Binary is the binary the latest event concerned, if any.
	Binary string `json:"binary,omitempty"`
	// Seq is the latest event's sequence number.
	Seq uint64 `json:"seq"`
	// Updated is the latest event's timestamp.
	Updated time.Time `json:"updated"`
}

// Recorder is a bounded in-memory flight recorder of pipeline events.
// It keeps the most recent capacity events in a ring buffer (older
// events are evicted in order), tracks per-benchmark latest state, and
// optionally streams every event as a JSONL line to a writer the moment
// it is recorded — so a crash leaves the already-written lines behind.
// A nil *Recorder discards events; all methods are safe for concurrent
// use.
type Recorder struct {
	mu  sync.Mutex
	now func() time.Time

	buf   []PipelineEvent // ring storage, len == capacity
	start int             // index of the oldest event
	n     int             // events currently buffered
	seq   uint64          // last assigned sequence number

	w *bufio.Writer // optional JSONL sink
	// werr remembers the first JSONL write failure so Flush can report it.
	werr error

	// trace, when set, stamps every recorded event that lacks one.
	trace string

	// File-backed rotating sink state (SetOutputPath). When f is non-nil
	// the recorder owns the file: every event is flushed through to disk
	// at record time (events are low-rate, and a crash must not lose the
	// admission record), and once size exceeds maxBytes the file is
	// atomically renamed to RotatedPath(path) and reopened fresh.
	f         *os.File
	path      string
	maxBytes  int64
	size      int64
	rotations uint64
	rotc      *Counter

	states map[string]BenchmarkState
	done   int
	total  int
}

// DefaultRecorderCapacity bounds the CLI's flight recorder: enough for
// every stage event of a full 21-benchmark suite with retries, small
// enough to be irrelevant in memory.
const DefaultRecorderCapacity = 4096

// NewRecorder returns a recorder holding at most capacity events
// (capacity <= 0 uses DefaultRecorderCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		buf:    make([]PipelineEvent, capacity),
		now:    time.Now,
		states: map[string]BenchmarkState{},
	}
}

// SetClock injects the time source — for deterministic tests.
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// SetTrace stamps every subsequently recorded event that carries no
// trace of its own with id — the per-job recorders use this so trace
// tagging is implicit for all pipeline events.
func (r *Recorder) SetTrace(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trace = id
	r.mu.Unlock()
}

// Trace returns the recorder's stamp trace ID ("" when unset).
func (r *Recorder) Trace() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// SetOutput streams every subsequently recorded event to w as one JSON
// line. Writes happen under the recorder's lock at record time, so the
// file tails the run live and survives a mid-run crash up to the last
// event. Pass nil to stop streaming. Call Flush before closing the
// underlying file. Attaching a writer detaches any SetOutputPath file.
func (r *Recorder) SetOutput(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeFileLocked()
	if w == nil {
		r.w = nil
		return
	}
	r.w = bufio.NewWriter(w)
}

// SetOutputPath attaches a size-capped rotating JSONL file sink: events
// append to path (created if absent, reopened across restarts so a
// journal accumulates a job's whole history), each event is flushed to
// disk as it is recorded, and when the file exceeds maxBytes it is
// atomically renamed to RotatedPath(path) — replacing any previous
// rotation — and a fresh file begins. maxBytes <= 0 uses
// DefaultJournalMaxBytes. The recorder owns the file; detach with
// CloseOutput (or SetOutput).
func (r *Recorder) SetOutputPath(path string, maxBytes int64) error {
	if r == nil {
		return nil
	}
	if maxBytes <= 0 {
		maxBytes = DefaultJournalMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeFileLocked()
	r.f = f
	r.path = path
	r.maxBytes = maxBytes
	r.size = st.Size()
	r.w = bufio.NewWriter(f)
	return nil
}

// SetRotationCounter wires a counter incremented on every journal
// rotation (nil detaches).
func (r *Recorder) SetRotationCounter(c *Counter) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rotc = c
	r.mu.Unlock()
}

// Rotations returns how many times the file sink has rotated.
func (r *Recorder) Rotations() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotations
}

// CloseOutput flushes and closes the SetOutputPath file (a no-op for
// plain SetOutput writers, which the caller owns), returning the first
// write error seen.
func (r *Recorder) CloseOutput() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil && r.f != nil {
		if err := r.w.Flush(); err != nil && r.werr == nil {
			r.werr = err
		}
		r.w = nil
	}
	r.closeFileLocked()
	return r.werr
}

// closeFileLocked closes the owned file sink, if any; callers hold r.mu.
func (r *Recorder) closeFileLocked() {
	if r.f == nil {
		return
	}
	if err := r.f.Close(); err != nil && r.werr == nil {
		r.werr = err
	}
	r.f = nil
	r.path = ""
	r.size = 0
}

// DefaultJournalMaxBytes caps a rotating journal file before rotation:
// generous for per-job event streams (hundreds of runs' worth of stage
// events), small enough that two of them per job stay irrelevant on
// disk.
const DefaultJournalMaxBytes = 1 << 20

// RotatedPath names the rotation target for a journal path: the ".1"
// generation inserted before the extension ("journal.jsonl" →
// "journal.1.jsonl").
func RotatedPath(path string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + ".1" + ext
}

// Flush flushes the JSONL sink and returns the first write error seen.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.werr == nil {
			r.werr = err
		}
	}
	return r.werr
}

// Record stamps the event with the next sequence number and the current
// time, appends it to the ring (evicting the oldest event when full),
// updates the per-benchmark state, and streams the JSONL line if a sink
// is attached.
func (r *Recorder) Record(ev PipelineEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	ev.Time = r.now()
	if ev.Trace == "" {
		ev.Trace = r.trace
	}

	if r.n == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.n--
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++

	if ev.Benchmark != "" {
		r.states[ev.Benchmark] = BenchmarkState{
			Kind: ev.Kind, Stage: ev.Stage, Binary: ev.Binary,
			Seq: ev.Seq, Updated: ev.Time,
		}
	}
	if ev.Total > 0 {
		r.done, r.total = ev.Done, ev.Total
	}

	if r.w != nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = r.w.Write(line)
		}
		if err == nil && r.f != nil {
			// File-backed journal: flush through so a crash keeps every
			// recorded event, then rotate at the line boundary if the cap
			// is exceeded (soft by at most one line).
			err = r.w.Flush()
			r.size += int64(len(line))
			if err == nil && r.size > r.maxBytes {
				err = r.rotateLocked()
			}
		}
		if err != nil && r.werr == nil {
			r.werr = err
		}
	}
}

// rotateLocked renames the journal to its ".1" generation and starts a
// fresh file; callers hold r.mu.
func (r *Recorder) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(r.path, RotatedPath(r.path)); err != nil {
		return err
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		r.f = nil
		r.w = nil
		return err
	}
	r.f = f
	r.w = bufio.NewWriter(f)
	r.size = 0
	r.rotations++
	r.rotc.Inc()
	return nil
}

// Events returns the buffered events oldest-first. A nil recorder
// returns nil.
func (r *Recorder) Events() []PipelineEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PipelineEvent, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events the ring has evicted so far.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(r.n)
}

// BenchmarkStates returns a copy of every benchmark's latest state.
func (r *Recorder) BenchmarkStates() map[string]BenchmarkState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]BenchmarkState, len(r.states))
	for k, v := range r.states {
		out[k] = v
	}
	return out
}

// SuiteProgress returns the most recent suite-level (done, total)
// completion counts, (0, 0) before any suite event.
func (r *Recorder) SuiteProgress() (done, total int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total
}

// ReadEvents decodes a JSONL event stream (as written via SetOutput or
// SetOutputPath) back into events — the round-trip inverse of the
// recorder's sink. Lines that fail to parse are skipped rather than
// fatal: a crash or a rotation observed mid-stream can tear a line, and
// the torn line must cost only itself, never the rest of the journal.
func ReadEvents(rd io.Reader) ([]PipelineEvent, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []PipelineEvent
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev PipelineEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// ReadJournal reads a rotating journal's events in order: the rotated
// ".1" generation first (if present), then the live file. Missing files
// are empty, not errors — a journal that never rotated, or never
// existed, reads as what it holds.
func ReadJournal(path string) ([]PipelineEvent, error) {
	var out []PipelineEvent
	for _, p := range []string{RotatedPath(path), path} {
		f, err := os.Open(p)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return out, err
		}
		evs, rerr := ReadEvents(f)
		f.Close()
		out = append(out, evs...)
		if rerr != nil {
			return out, rerr
		}
	}
	return out, nil
}
