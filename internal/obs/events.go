package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// PipelineEvent is one structured entry in the pipeline's flight
// recorder: a stage starting, finishing, retrying, an injected fault
// firing, a checkpoint being loaded or saved, or a coarse progress
// update. Events are small, flat, and JSON-stable — the same struct is
// served live from the telemetry server's /events endpoint and
// persisted as one JSONL line per event.
type PipelineEvent struct {
	// Seq is the recorder-assigned sequence number, 1-based and strictly
	// increasing; gaps never occur, so Seq exposes eviction to readers.
	Seq uint64 `json:"seq"`
	// Time is the recorder-assigned wall-clock timestamp.
	Time time.Time `json:"time"`
	// Kind classifies the event: "stage.start", "stage.finish",
	// "stage.retry", "stage.fail", "fault", "checkpoint", "progress".
	Kind string `json:"kind"`
	// Benchmark, Binary, and Stage locate the event in the pipeline
	// (any may be empty).
	Benchmark string `json:"benchmark,omitempty"`
	Binary    string `json:"binary,omitempty"`
	Stage     string `json:"stage,omitempty"`
	// Detail is a free-form annotation (error text, fault kind, ...).
	Detail string `json:"detail,omitempty"`
	// Done and Total, when Total > 0, carry suite-level completion.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// BenchmarkState is the most recent recorded state of one benchmark,
// maintained by the recorder for the live /progress view.
type BenchmarkState struct {
	// Kind and Stage are from the benchmark's latest event.
	Kind  string `json:"kind"`
	Stage string `json:"stage"`
	// Binary is the binary the latest event concerned, if any.
	Binary string `json:"binary,omitempty"`
	// Seq is the latest event's sequence number.
	Seq uint64 `json:"seq"`
	// Updated is the latest event's timestamp.
	Updated time.Time `json:"updated"`
}

// Recorder is a bounded in-memory flight recorder of pipeline events.
// It keeps the most recent capacity events in a ring buffer (older
// events are evicted in order), tracks per-benchmark latest state, and
// optionally streams every event as a JSONL line to a writer the moment
// it is recorded — so a crash leaves the already-written lines behind.
// A nil *Recorder discards events; all methods are safe for concurrent
// use.
type Recorder struct {
	mu  sync.Mutex
	now func() time.Time

	buf   []PipelineEvent // ring storage, len == capacity
	start int             // index of the oldest event
	n     int             // events currently buffered
	seq   uint64          // last assigned sequence number

	w *bufio.Writer // optional JSONL sink
	// werr remembers the first JSONL write failure so Flush can report it.
	werr error

	states map[string]BenchmarkState
	done   int
	total  int
}

// DefaultRecorderCapacity bounds the CLI's flight recorder: enough for
// every stage event of a full 21-benchmark suite with retries, small
// enough to be irrelevant in memory.
const DefaultRecorderCapacity = 4096

// NewRecorder returns a recorder holding at most capacity events
// (capacity <= 0 uses DefaultRecorderCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		buf:    make([]PipelineEvent, capacity),
		now:    time.Now,
		states: map[string]BenchmarkState{},
	}
}

// SetClock injects the time source — for deterministic tests.
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// SetOutput streams every subsequently recorded event to w as one JSON
// line. Writes happen under the recorder's lock at record time, so the
// file tails the run live and survives a mid-run crash up to the last
// event. Pass nil to stop streaming. Call Flush before closing the
// underlying file.
func (r *Recorder) SetOutput(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if w == nil {
		r.w = nil
		return
	}
	r.w = bufio.NewWriter(w)
}

// Flush flushes the JSONL sink and returns the first write error seen.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.werr == nil {
			r.werr = err
		}
	}
	return r.werr
}

// Record stamps the event with the next sequence number and the current
// time, appends it to the ring (evicting the oldest event when full),
// updates the per-benchmark state, and streams the JSONL line if a sink
// is attached.
func (r *Recorder) Record(ev PipelineEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	ev.Time = r.now()

	if r.n == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.n--
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++

	if ev.Benchmark != "" {
		r.states[ev.Benchmark] = BenchmarkState{
			Kind: ev.Kind, Stage: ev.Stage, Binary: ev.Binary,
			Seq: ev.Seq, Updated: ev.Time,
		}
	}
	if ev.Total > 0 {
		r.done, r.total = ev.Done, ev.Total
	}

	if r.w != nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = r.w.Write(line)
		}
		if err != nil && r.werr == nil {
			r.werr = err
		}
	}
}

// Events returns the buffered events oldest-first. A nil recorder
// returns nil.
func (r *Recorder) Events() []PipelineEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PipelineEvent, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events the ring has evicted so far.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(r.n)
}

// BenchmarkStates returns a copy of every benchmark's latest state.
func (r *Recorder) BenchmarkStates() map[string]BenchmarkState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]BenchmarkState, len(r.states))
	for k, v := range r.states {
		out[k] = v
	}
	return out
}

// SuiteProgress returns the most recent suite-level (done, total)
// completion counts, (0, 0) before any suite event.
func (r *Recorder) SuiteProgress() (done, total int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total
}

// ReadEvents decodes a JSONL event stream (as written via SetOutput)
// back into events — the round-trip inverse of the recorder's sink.
func ReadEvents(rd io.Reader) ([]PipelineEvent, error) {
	dec := json.NewDecoder(rd)
	var out []PipelineEvent
	for {
		var ev PipelineEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}
