package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Attribution is the evaluate-stage cost-attribution profiler: a
// hierarchical accumulator that charges wall time, allocations, simulated
// instructions, and simulated cycles to (benchmark, binary, walk, point)
// nodes, plus a redundancy analyzer that counts how many point
// evaluations were content-identical to one already simulated.
//
// Like the rest of this package, it costs nothing when off: a nil
// *Attribution is a valid no-op sink — StartWalk returns nil without
// reading the clock, and a nil *WalkSample's Done, AddPoint, and
// RecordEval return immediately without allocating (pinned by
// TestAttributionDisabledZeroAlloc). Enabled, the recording granularity
// is one sample per walk and one per simulation point, never per block,
// so the overhead stays small relative to the simulation itself.
type Attribution struct {
	mu    sync.Mutex
	nodes map[AttribKey]*AttribValue

	// Redundancy analysis: seen maps an evaluation key (interval
	// fingerprint + cache-config digest) to how many times a point with
	// that key has been evaluated.
	seen      map[string]uint64
	evals     uint64
	dupEvals  uint64
	evalInstr uint64
	dupInstr  uint64

	// Memoization accounting: point evaluations answered from the
	// content-addressed memo table instead of being simulated.
	memoHits       uint64
	memoMisses     uint64
	memoSavedInstr uint64

	// openWalks counts StartWalk samples not yet closed by Done or
	// Abort. It should be zero whenever the pipeline is quiescent; a
	// nonzero value means a walk sample leaked on some code path.
	openWalks int64
}

// NewAttribution returns an empty, enabled attribution profiler.
func NewAttribution() *Attribution {
	return &Attribution{
		nodes: map[AttribKey]*AttribValue{},
		seen:  map[string]uint64{},
	}
}

// Enabled reports whether the profiler records anything.
func (a *Attribution) Enabled() bool { return a != nil }

// AttribKey addresses one node of the attribution hierarchy. The tree
// reads benchmark → binary → walk → point; Point == WholeWalk addresses
// the walk-level node that carries wall time and allocation, while
// Point >= 0 addresses one simulation point's share of the walk.
type AttribKey struct {
	// Benchmark and Binary name the evaluated binary.
	Benchmark, Binary string
	// Walk identifies the evaluation walk: "full" (walk 3), "fli"
	// (walk 4), or "vli" (walk 5).
	Walk string
	// Point is the simulation point's interval index, or WholeWalk for
	// the walk-level node.
	Point int
}

// WholeWalk is the AttribKey.Point value of a walk-level node.
const WholeWalk = -1

// AttribValue is one node's accumulated cost.
type AttribValue struct {
	// WallNS is attributed wall time in nanoseconds (walk-level nodes
	// only; the gated walk interleaves points too finely to time them
	// individually without per-block clock reads).
	WallNS uint64 `json:"wall_ns"`
	// AllocBytes is bytes allocated during the walk (process-wide, so
	// exact only under serial execution — the bench and profile harness
	// configuration; see obs.StageSample for the same caveat).
	AllocBytes uint64 `json:"alloc_bytes"`
	// Instructions and Cycles are the simulated instruction and cycle
	// counts charged to this node.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// Evals counts point evaluations folded into this node.
	Evals uint64 `json:"evals"`
}

// add accumulates v into the node for key.
func (a *Attribution) add(key AttribKey, v AttribValue) {
	a.mu.Lock()
	n := a.nodes[key]
	if n == nil {
		n = &AttribValue{}
		a.nodes[key] = n
	}
	n.WallNS += v.WallNS
	n.AllocBytes += v.AllocBytes
	n.Instructions += v.Instructions
	n.Cycles += v.Cycles
	n.Evals += v.Evals
	a.mu.Unlock()
}

// WalkSample times one evaluation walk. Obtain one from StartWalk and
// close it exactly once with Done (success) or Abort (failure); extra
// closes are ignored, so `defer ws.Abort()` after a StartWalk is the
// safe idiom — a later Done wins and the deferred Abort is a no-op. A
// nil sample ignores both.
type WalkSample struct {
	a      *Attribution
	key    AttribKey
	start  time.Time
	alloc0 uint64
	closed bool
}

// StartWalk opens a walk-level sample. On a nil receiver it returns nil
// without reading the clock or the heap, keeping the disabled path free.
func (a *Attribution) StartWalk(benchmark, binary, walk string) *WalkSample {
	if a == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	a.mu.Lock()
	a.openWalks++
	a.mu.Unlock()
	return &WalkSample{
		a:      a,
		key:    AttribKey{Benchmark: benchmark, Binary: binary, Walk: walk, Point: WholeWalk},
		start:  time.Now(),
		alloc0: ms.TotalAlloc,
	}
}

// Done closes the sample, charging the walk's wall time and allocation
// plus the simulated instruction/cycle totals to its walk-level node.
func (s *WalkSample) Done(instructions, cycles uint64) {
	if s == nil || s.closed {
		return
	}
	s.closed = true
	elapsed := time.Since(s.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.a.add(s.key, AttribValue{
		WallNS:       uint64(elapsed.Nanoseconds()),
		AllocBytes:   ms.TotalAlloc - s.alloc0,
		Instructions: instructions,
		Cycles:       cycles,
	})
	s.a.mu.Lock()
	s.a.openWalks--
	s.a.mu.Unlock()
}

// Abort closes a sample whose walk failed, still charging the wall time
// and allocation spent before the failure (so faulted attempts are not
// invisible in the profile) but no simulated work. Calling Abort after
// Done — the deferred-Abort idiom — is a no-op.
func (s *WalkSample) Abort() {
	if s == nil || s.closed {
		return
	}
	s.Done(0, 0)
}

// OpenWalks returns the number of StartWalk samples not yet closed by
// Done or Abort. A quiescent pipeline must report zero; regression
// tests pin this to catch walk-sample leaks on error paths.
func (a *Attribution) OpenWalks() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.openWalks
}

// AddPoint charges one simulation point's simulated instructions and
// cycles to its point node.
func (a *Attribution) AddPoint(benchmark, binary, walk string, point int, instructions, cycles uint64) {
	if a == nil {
		return
	}
	a.add(AttribKey{Benchmark: benchmark, Binary: binary, Walk: walk, Point: point},
		AttribValue{Instructions: instructions, Cycles: cycles, Evals: 1})
}

// RecordEval feeds the redundancy analyzer: key identifies the
// evaluation's content (interval fingerprint + cache-config digest) and
// instructions its simulated instruction count. An evaluation whose key
// was already seen is a duplicate — work a content-addressed memoization
// layer would have skipped.
func (a *Attribution) RecordEval(key string, instructions uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.evals++
	a.evalInstr += instructions
	if a.seen[key] > 0 {
		a.dupEvals++
		a.dupInstr += instructions
	}
	a.seen[key]++
	a.mu.Unlock()
}

// RecordMemo feeds the memoization accounting: hits point evaluations
// were answered from the content-addressed memo table (instructionsSaved
// simulated instructions not re-simulated), misses had to simulate.
// Memoized evaluations never reach RecordEval — the redundancy analyzer
// measures only work that actually executed, so with memoization on the
// reported duplicate fraction is the post-memo residue (~0 expected).
func (a *Attribution) RecordMemo(hits, misses, instructionsSaved uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.memoHits += hits
	a.memoMisses += misses
	a.memoSavedInstr += instructionsSaved
	a.mu.Unlock()
}

// AttribNode is one exported node of the attribution tree.
type AttribNode struct {
	Benchmark string `json:"benchmark"`
	Binary    string `json:"binary"`
	Walk      string `json:"walk"`
	// Point is the simulation point's interval index; -1 (WholeWalk)
	// marks the walk-level node.
	Point int         `json:"point"`
	Value AttribValue `json:"value"`
}

// RedundancySummary is the redundancy analyzer's verdict: of Evaluations
// point evaluations, Duplicates had an (interval fingerprint,
// cache-config) key already evaluated — DuplicateInstructions of
// TotalInstructions simulated instructions were re-simulation of
// identical content.
type RedundancySummary struct {
	Evaluations           uint64 `json:"evaluations"`
	Unique                uint64 `json:"unique"`
	Duplicates            uint64 `json:"duplicates"`
	TotalInstructions     uint64 `json:"total_instructions"`
	DuplicateInstructions uint64 `json:"duplicate_instructions"`
	// MemoHits/MemoMisses count point evaluations answered from /
	// missed by the content-addressed memo table; MemoSavedInstructions
	// is the simulated-instruction volume the hits avoided. Memoized
	// evaluations are excluded from Evaluations above — the duplicate
	// fraction always describes work that actually ran.
	MemoHits              uint64 `json:"memo_hits"`
	MemoMisses            uint64 `json:"memo_misses"`
	MemoSavedInstructions uint64 `json:"memo_saved_instructions"`
}

// DuplicateFraction returns the fraction of evaluations that were
// duplicates (0 when nothing was evaluated).
func (r RedundancySummary) DuplicateFraction() float64 {
	if r.Evaluations == 0 {
		return 0
	}
	return float64(r.Duplicates) / float64(r.Evaluations)
}

// MemoHitRate returns the fraction of memo lookups that hit (0 when the
// memo table saw no traffic, e.g. memoization disabled).
func (r RedundancySummary) MemoHitRate() float64 {
	total := r.MemoHits + r.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(r.MemoHits) / float64(total)
}

// AttribSnapshot is a point-in-time copy of the attribution state.
type AttribSnapshot struct {
	// Nodes holds every attribution node, sorted by (benchmark, binary,
	// walk, point) so any rendering is deterministic.
	Nodes []AttribNode `json:"nodes"`
	// Redundancy is the duplicate-evaluation summary.
	Redundancy RedundancySummary `json:"redundancy"`
}

// Snapshot copies the current attribution state. A nil profiler yields
// an empty snapshot.
func (a *Attribution) Snapshot() AttribSnapshot {
	var snap AttribSnapshot
	if a == nil {
		return snap
	}
	a.mu.Lock()
	snap.Nodes = make([]AttribNode, 0, len(a.nodes))
	for k, v := range a.nodes {
		snap.Nodes = append(snap.Nodes, AttribNode{
			Benchmark: k.Benchmark, Binary: k.Binary, Walk: k.Walk, Point: k.Point,
			Value: *v,
		})
	}
	snap.Redundancy = RedundancySummary{
		Evaluations:           a.evals,
		Unique:                uint64(len(a.seen)),
		Duplicates:            a.dupEvals,
		TotalInstructions:     a.evalInstr,
		DuplicateInstructions: a.dupInstr,
		MemoHits:              a.memoHits,
		MemoMisses:            a.memoMisses,
		MemoSavedInstructions: a.memoSavedInstr,
	}
	a.mu.Unlock()
	sort.Slice(snap.Nodes, func(i, j int) bool {
		x, y := snap.Nodes[i], snap.Nodes[j]
		if x.Benchmark != y.Benchmark {
			return x.Benchmark < y.Benchmark
		}
		if x.Binary != y.Binary {
			return x.Binary < y.Binary
		}
		if x.Walk != y.Walk {
			return x.Walk < y.Walk
		}
		return x.Point < y.Point
	})
	return snap
}

// Walks returns the walk-level nodes only (Point == WholeWalk), in
// snapshot order — the rows of the profile command's cost table.
func (s AttribSnapshot) Walks() []AttribNode {
	var out []AttribNode
	for _, n := range s.Nodes {
		if n.Point == WholeWalk {
			out = append(out, n)
		}
	}
	return out
}

// TotalWallNS sums attributed wall time across walk-level nodes.
func (s AttribSnapshot) TotalWallNS() uint64 {
	var total uint64
	for _, n := range s.Nodes {
		if n.Point == WholeWalk {
			total += n.Value.WallNS
		}
	}
	return total
}
