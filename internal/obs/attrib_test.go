package obs

import (
	"testing"
	"time"
)

// TestAttributionAccumulates pins the accumulation semantics: walk
// samples charge wall time, allocation, and simulated totals to the
// walk-level node; AddPoint charges point nodes; repeated charges to one
// key accumulate instead of overwriting.
func TestAttributionAccumulates(t *testing.T) {
	a := NewAttribution()
	if !a.Enabled() {
		t.Fatal("fresh Attribution not enabled")
	}

	ws := a.StartWalk("gcc", "gcc.32u", "full")
	time.Sleep(time.Millisecond)
	ws.Done(1000, 2000)
	ws = a.StartWalk("gcc", "gcc.32u", "full")
	ws.Done(500, 700)
	a.AddPoint("gcc", "gcc.32u", "fli", 3, 100, 150)
	a.AddPoint("gcc", "gcc.32u", "fli", 3, 10, 15)
	a.AddPoint("gcc", "gcc.32u", "fli", 7, 40, 80)

	snap := a.Snapshot()
	if len(snap.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3 (1 walk + 2 points)", len(snap.Nodes))
	}
	walks := snap.Walks()
	if len(walks) != 1 {
		t.Fatalf("walk nodes = %d, want 1", len(walks))
	}
	w := walks[0]
	if w.Walk != "full" || w.Point != WholeWalk {
		t.Fatalf("walk node = %+v", w)
	}
	if w.Value.Instructions != 1500 || w.Value.Cycles != 2700 {
		t.Errorf("walk totals = %d instr / %d cycles, want 1500/2700",
			w.Value.Instructions, w.Value.Cycles)
	}
	if w.Value.WallNS == 0 {
		t.Error("walk wall time not charged")
	}
	if snap.TotalWallNS() != w.Value.WallNS {
		t.Errorf("TotalWallNS = %d, want %d", snap.TotalWallNS(), w.Value.WallNS)
	}

	var p3 *AttribNode
	for i := range snap.Nodes {
		if snap.Nodes[i].Point == 3 {
			p3 = &snap.Nodes[i]
		}
	}
	if p3 == nil {
		t.Fatal("point 3 node missing")
	}
	if p3.Value.Instructions != 110 || p3.Value.Cycles != 165 || p3.Value.Evals != 2 {
		t.Errorf("point 3 = %+v, want 110 instr, 165 cycles, 2 evals", p3.Value)
	}
}

// TestAttributionSnapshotOrder pins the deterministic node order:
// (benchmark, binary, walk, point) ascending, walk-level nodes (-1)
// before their points.
func TestAttributionSnapshotOrder(t *testing.T) {
	a := NewAttribution()
	a.AddPoint("b", "b.64o", "vli", 9, 1, 1)
	a.AddPoint("b", "b.64o", "vli", 2, 1, 1)
	a.AddPoint("b", "b.32u", "fli", 0, 1, 1)
	a.AddPoint("a", "a.32u", "fli", 5, 1, 1)
	a.StartWalk("b", "b.64o", "vli").Done(1, 1)

	var got []AttribKey
	for _, n := range a.Snapshot().Nodes {
		got = append(got, AttribKey{n.Benchmark, n.Binary, n.Walk, n.Point})
	}
	want := []AttribKey{
		{"a", "a.32u", "fli", 5},
		{"b", "b.32u", "fli", 0},
		{"b", "b.64o", "vli", WholeWalk},
		{"b", "b.64o", "vli", 2},
		{"b", "b.64o", "vli", 9},
	}
	if len(got) != len(want) {
		t.Fatalf("nodes = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAttributionRedundancy pins the redundancy analyzer: the first
// evaluation of a key is unique, every later one is a duplicate, and
// duplicate instructions count the re-simulated work.
func TestAttributionRedundancy(t *testing.T) {
	a := NewAttribution()
	a.RecordEval("iv0/cfgA", 100)
	a.RecordEval("iv0/cfgA", 50)
	a.RecordEval("iv0/cfgA", 25)
	a.RecordEval("iv1/cfgA", 10)

	r := a.Snapshot().Redundancy
	want := RedundancySummary{
		Evaluations: 4, Unique: 2, Duplicates: 2,
		TotalInstructions: 185, DuplicateInstructions: 75,
	}
	if r != want {
		t.Fatalf("redundancy = %+v, want %+v", r, want)
	}
	if got := r.DuplicateFraction(); got != 0.5 {
		t.Errorf("DuplicateFraction = %v, want 0.5", got)
	}
	if (RedundancySummary{}).DuplicateFraction() != 0 {
		t.Error("empty DuplicateFraction != 0")
	}
}

// TestAttributionNilSafe pins the package contract on the new type: a
// nil *Attribution and a nil *WalkSample are valid no-op sinks.
func TestAttributionNilSafe(t *testing.T) {
	var a *Attribution
	if a.Enabled() {
		t.Error("nil Attribution enabled")
	}
	ws := a.StartWalk("b", "x", "full")
	if ws != nil {
		t.Fatalf("nil StartWalk = %v, want nil", ws)
	}
	ws.Done(1, 2)
	a.AddPoint("b", "x", "full", 0, 1, 2)
	a.RecordEval("k", 1)
	snap := a.Snapshot()
	if len(snap.Nodes) != 0 || snap.Redundancy.Evaluations != 0 {
		t.Errorf("nil snapshot = %+v, want empty", snap)
	}

	var o *Observer
	if o.Attribution() != nil {
		t.Error("nil Observer.Attribution() != nil")
	}
	if (&Observer{}).Attribution() != nil {
		t.Error("Attribution() on observer without profiler != nil")
	}
}

// TestAttributionDisabledZeroAlloc pins the zero-cost-when-off contract
// the hot path relies on: the full disabled call sequence — StartWalk,
// Done, AddPoint, RecordEval — performs no allocations.
func TestAttributionDisabledZeroAlloc(t *testing.T) {
	var a *Attribution
	allocs := testing.AllocsPerRun(1000, func() {
		ws := a.StartWalk("gcc", "gcc.32u", "full")
		ws.Done(100, 200)
		a.AddPoint("gcc", "gcc.32u", "fli", 3, 10, 20)
		a.RecordEval("key", 10)
	})
	if allocs != 0 {
		t.Fatalf("disabled attribution path allocates %.1f bytes/op, want 0", allocs)
	}
}

// BenchmarkAttributionDisabled measures the disabled path so regressions
// in its cost show up in benchstat diffs.
func BenchmarkAttributionDisabled(b *testing.B) {
	var a *Attribution
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := a.StartWalk("gcc", "gcc.32u", "full")
		ws.Done(100, 200)
		a.AddPoint("gcc", "gcc.32u", "fli", 3, 10, 20)
	}
}

// BenchmarkAttributionEnabled measures the enabled recording cost at the
// real granularity (one walk sample + one point + one eval key).
func BenchmarkAttributionEnabled(b *testing.B) {
	a := NewAttribution()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := a.StartWalk("gcc", "gcc.32u", "full")
		ws.Done(100, 200)
		a.AddPoint("gcc", "gcc.32u", "fli", 3, 10, 20)
		a.RecordEval("key", 10)
	}
}
