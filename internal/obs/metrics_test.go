package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Counters must be safe for concurrent increments (run under -race) and
// lose no updates.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines fetch the handle fresh each time,
			// exercising the registry lock concurrently with updates.
			c := reg.Counter("shared")
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					reg.Counter("shared").Inc()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("counter handle not stable")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Error("gauge handle not stable")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Error("histogram handle not stable")
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("cpi")
	g.Set(1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("iters")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms["iters"]
	if snap.Count != 6 || snap.Sum != 1010 {
		t.Fatalf("count %d sum %d", snap.Count, snap.Sum)
	}
	if got := snap.Mean(); got != 1010.0/6 {
		t.Fatalf("mean %v", got)
	}
	// 1000 has bit length 10, so MaxBound is 2^10.
	if got := snap.MaxBound(); got != 1024 {
		t.Fatalf("max bound %d", got)
	}
	if snap.Buckets[0] != 1 { // the single zero
		t.Fatalf("zero bucket %d", snap.Buckets[0])
	}
}

func TestSnapshotWriteTextStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("m.gauge").Set(0.5)
	reg.Histogram("h.hist").Observe(4)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter a.count 1\n" +
		"counter z.count 2\n" +
		"gauge m.gauge 0.5\n" +
		"histogram h.hist count 1 sum 4 mean 4\n"
	if sb.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSnapshotSumPrefix(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.cache.l1.hits").Add(10)
	reg.Counter("sim.cache.l2.hits").Add(5)
	reg.Counter("other").Add(100)
	reg.Gauge("w.p00").Set(0.25)
	reg.Gauge("w.p01").Set(0.75)
	snap := reg.Snapshot()
	if got := snap.SumPrefix("sim.cache."); got != 15 {
		t.Fatalf("SumPrefix = %d", got)
	}
	if got := snap.SumGaugePrefix("w.p"); got != 1.0 {
		t.Fatalf("SumGaugePrefix = %v", got)
	}
}

// Every metric type must be a no-op on nil receivers.
func TestNilMetricsAreNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(1)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	if v := reg.Gauge("x").Value(); v != 0 {
		t.Fatalf("nil gauge value %v", v)
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// The default-off path must not allocate: that is the contract that lets
// the pipeline call metrics unconditionally in instrumented code.
func TestNoopZeroAllocations(t *testing.T) {
	var o *Observer
	if n := testing.AllocsPerRun(100, func() {
		o.Counter("sim.instructions").Add(1)
		o.Gauge("simpoint.chosen_k").Set(4)
		o.Histogram("kmeans.iterations_per_restart").Observe(9)
		o.Report(Event{Benchmark: "gcc", Stage: "profile"})
	}); n != 0 {
		t.Fatalf("nil observer allocates %v per call set", n)
	}
}

func BenchmarkNoopCounterAdd(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Counter("sim.instructions").Add(1)
	}
}

func BenchmarkLiveCounterAdd(b *testing.B) {
	o := New()
	c := o.Counter("sim.instructions")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNoopHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func TestGaugeAddAndSetMax(t *testing.T) {
	var g Gauge
	g.Add(2.5)
	g.Add(-1)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("after Add: %v", v)
	}
	g.SetMax(3)
	if v := g.Value(); v != 3 {
		t.Fatalf("after SetMax(3): %v", v)
	}
	g.SetMax(2) // lower: must not regress
	if v := g.Value(); v != 3 {
		t.Fatalf("SetMax lowered the gauge to %v", v)
	}
	var nilG *Gauge
	nilG.Add(1)
	nilG.SetMax(1)

	var wg sync.WaitGroup
	var busy Gauge
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				busy.Add(1)
				busy.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := busy.Value(); v != 0 {
		t.Fatalf("concurrent Add lost updates: %v", v)
	}
}

// Snapshot name listings are the deterministic iteration order every
// dump/exposition path uses; they must be sorted.
func TestSnapshotNamesSorted(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		reg.Counter("c." + n).Inc()
		reg.Gauge("g." + n).Set(1)
		reg.Histogram("h." + n).Observe(1)
	}
	snap := reg.Snapshot()
	if got, want := snap.CounterNames(), []string{"c.a", "c.m", "c.z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CounterNames = %v", got)
	}
	if got, want := snap.GaugeNames(), []string{"g.a", "g.m", "g.z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("GaugeNames = %v", got)
	}
	if got, want := snap.HistogramNames(), []string{"h.a", "h.m", "h.z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("HistogramNames = %v", got)
	}
}
