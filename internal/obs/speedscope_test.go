package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// speedscopeSnapshot builds a small populated attribution snapshot for
// the render tests.
func speedscopeSnapshot() AttribSnapshot {
	a := NewAttribution()
	a.StartWalk("gcc", "gcc.32u", "full").Done(1000, 1500)
	a.StartWalk("gcc", "gcc.32u", "fli").Done(200, 300)
	a.AddPoint("gcc", "gcc.32u", "fli", 2, 120, 170)
	a.AddPoint("gcc", "gcc.32u", "fli", 9, 80, 130)
	return a.Snapshot()
}

// TestWriteSpeedscopeValidates pins that the renderer's output passes
// the repo's own structural validator — the invariant the CI
// profile-smoke job checks on real output.
func TestWriteSpeedscopeValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpeedscope(&buf, speedscopeSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpeedscope(buf.Bytes()); err != nil {
		t.Fatalf("renderer output fails validation: %v\n%s", err, buf.String())
	}

	var f struct {
		Schema   string `json:"$schema"`
		Profiles []struct {
			Name     string   `json:"name"`
			Unit     string   `json:"unit"`
			Samples  [][]int  `json:"samples"`
			Weights  []uint64 `json:"weights"`
			EndValue uint64   `json:"endValue"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != SpeedscopeSchema {
		t.Errorf("$schema = %q", f.Schema)
	}
	if len(f.Profiles) != 2 || f.Profiles[0].Name != "wall" || f.Profiles[1].Name != "instructions" {
		t.Fatalf("profiles = %+v", f.Profiles)
	}
	// Two walk samples carry wall time; two points carry instructions.
	if len(f.Profiles[0].Samples) != 2 {
		t.Errorf("wall samples = %d, want 2", len(f.Profiles[0].Samples))
	}
	if len(f.Profiles[1].Samples) != 2 || f.Profiles[1].EndValue != 200 {
		t.Errorf("instructions profile = %+v, want 2 samples summing to 200", f.Profiles[1])
	}
	// Point stacks are one frame deeper than walk stacks.
	if len(f.Profiles[1].Samples[0]) != len(f.Profiles[0].Samples[0])+1 {
		t.Errorf("point stack depth %d, walk stack depth %d",
			len(f.Profiles[1].Samples[0]), len(f.Profiles[0].Samples[0]))
	}
}

// TestWriteSpeedscopeEmpty pins that an empty snapshot still renders a
// valid document (profiles present, zero samples) — the /profile
// endpoint serves this before any attribution exists.
func TestWriteSpeedscopeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpeedscope(&buf, AttribSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpeedscope(buf.Bytes()); err != nil {
		t.Fatalf("empty render fails validation: %v", err)
	}
}

// TestValidateSpeedscopeRejects drives the validator through each
// failure mode with handcrafted documents.
func TestValidateSpeedscopeRejects(t *testing.T) {
	valid := `{
		"$schema": "https://www.speedscope.app/file-format-schema.json",
		"shared": {"frames": [{"name": "a"}, {"name": "b"}]},
		"profiles": [{"type": "sampled", "name": "p", "unit": "nanoseconds",
			"startValue": 0, "endValue": 10, "samples": [[0, 1]], "weights": [10]}]
	}`
	if err := ValidateSpeedscope([]byte(valid)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	cases := []struct {
		name, doc, wantErr string
	}{
		{"not-json", `{`, "not JSON"},
		{"bad-schema", strings.Replace(valid, "file-format-schema.json", "other.json", 1), "$schema"},
		{"no-profiles", strings.Replace(valid, `"profiles": [{`, `"profiles": [], "x": [{`, 1), "no profiles"},
		{"bad-type", strings.Replace(valid, `"type": "sampled"`, `"type": "flame"`, 1), "type"},
		{"bad-unit", strings.Replace(valid, `"unit": "nanoseconds"`, `"unit": "fortnights"`, 1), "unit"},
		{"weights-mismatch", strings.Replace(valid, `"weights": [10]`, `"weights": [10, 3]`, 1), "weights"},
		{"empty-sample", strings.Replace(valid, `"samples": [[0, 1]]`, `"samples": [[]]`, 1), "empty"},
		{"frame-out-of-range", strings.Replace(valid, `"samples": [[0, 1]]`, `"samples": [[0, 7]]`, 1), "out of range"},
		{"sum-mismatch", strings.Replace(valid, `"endValue": 10`, `"endValue": 11`, 1), "endValue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSpeedscope([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}
