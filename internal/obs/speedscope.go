package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// speedscope file-format constants (https://www.speedscope.app — the
// schema is published at SpeedscopeSchema). The attribution flamegraph
// is emitted as a "sampled" profile: each attribution node becomes one
// sample whose stack is its path through the hierarchy and whose weight
// is the node's cost.
const (
	// SpeedscopeSchema is the $schema URL speedscope files carry.
	SpeedscopeSchema = "https://www.speedscope.app/file-format-schema.json"
	speedscopeType   = "sampled"
)

// speedscopeFile is the top-level speedscope JSON document.
type speedscopeFile struct {
	Schema   string              `json:"$schema"`
	Name     string              `json:"name"`
	Exporter string              `json:"exporter"`
	Shared   speedscopeShared    `json:"shared"`
	Profiles []speedscopeProfile `json:"profiles"`
}

type speedscopeShared struct {
	Frames []speedscopeFrame `json:"frames"`
}

type speedscopeFrame struct {
	Name string `json:"name"`
}

type speedscopeProfile struct {
	Type       string   `json:"type"`
	Name       string   `json:"name"`
	Unit       string   `json:"unit"`
	StartValue uint64   `json:"startValue"`
	EndValue   uint64   `json:"endValue"`
	Samples    [][]int  `json:"samples"`
	Weights    []uint64 `json:"weights"`
}

// WriteSpeedscope renders the attribution snapshot as a
// speedscope-compatible flamegraph JSON with two profiles: "wall"
// weights the walk-level stacks (benchmark → binary → walk) by
// attributed wall time in nanoseconds, and "instructions" weights the
// point-level stacks (benchmark → binary → walk → point N) by simulated
// instructions. Load the file at https://www.speedscope.app or with
// `speedscope <file>`.
func WriteSpeedscope(w io.Writer, snap AttribSnapshot) error {
	frames := []speedscopeFrame{}
	frameIdx := map[string]int{}
	frame := func(name string) int {
		if i, ok := frameIdx[name]; ok {
			return i
		}
		i := len(frames)
		frames = append(frames, speedscopeFrame{Name: name})
		frameIdx[name] = i
		return i
	}

	wall := speedscopeProfile{
		Type: speedscopeType, Name: "wall", Unit: "nanoseconds",
		Samples: [][]int{}, Weights: []uint64{},
	}
	instr := speedscopeProfile{
		Type: speedscopeType, Name: "instructions", Unit: "none",
		Samples: [][]int{}, Weights: []uint64{},
	}
	for _, n := range snap.Nodes {
		stack := []int{frame(n.Benchmark), frame(n.Binary), frame("walk:" + n.Walk)}
		if n.Point == WholeWalk {
			if n.Value.WallNS > 0 {
				wall.Samples = append(wall.Samples, stack)
				wall.Weights = append(wall.Weights, n.Value.WallNS)
				wall.EndValue += n.Value.WallNS
			}
			continue
		}
		if n.Value.Instructions == 0 {
			continue
		}
		stack = append(stack, frame(fmt.Sprintf("point:%d", n.Point)))
		instr.Samples = append(instr.Samples, stack)
		instr.Weights = append(instr.Weights, n.Value.Instructions)
		instr.EndValue += n.Value.Instructions
	}

	file := speedscopeFile{
		Schema:   SpeedscopeSchema,
		Name:     "xbsim evaluate attribution",
		Exporter: "xbsim",
		Shared:   speedscopeShared{Frames: frames},
		Profiles: []speedscopeProfile{wall, instr},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// ValidateSpeedscope checks that data is structurally valid against the
// speedscope file-format schema: the $schema URL, a shared frame table,
// and per profile a known type and unit, samples holding in-range frame
// indices, and weights parallel to samples. It is the library half of
// the CI profile-smoke job, so flamegraph output is validated without
// external tooling.
func ValidateSpeedscope(data []byte) error {
	var f speedscopeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("speedscope: not JSON: %w", err)
	}
	if f.Schema != SpeedscopeSchema {
		return fmt.Errorf("speedscope: $schema = %q, want %q", f.Schema, SpeedscopeSchema)
	}
	if len(f.Profiles) == 0 {
		return fmt.Errorf("speedscope: no profiles")
	}
	validUnits := map[string]bool{
		"none": true, "nanoseconds": true, "microseconds": true,
		"milliseconds": true, "seconds": true, "bytes": true,
	}
	for pi, p := range f.Profiles {
		if p.Type != speedscopeType && p.Type != "evented" {
			return fmt.Errorf("speedscope: profile %d: type %q", pi, p.Type)
		}
		if !validUnits[p.Unit] {
			return fmt.Errorf("speedscope: profile %d: unit %q", pi, p.Unit)
		}
		if len(p.Samples) != len(p.Weights) {
			return fmt.Errorf("speedscope: profile %d: %d samples but %d weights",
				pi, len(p.Samples), len(p.Weights))
		}
		var total uint64
		for si, stack := range p.Samples {
			if len(stack) == 0 {
				return fmt.Errorf("speedscope: profile %d: sample %d is empty", pi, si)
			}
			for _, fi := range stack {
				if fi < 0 || fi >= len(f.Shared.Frames) {
					return fmt.Errorf("speedscope: profile %d: sample %d: frame index %d out of range [0,%d)",
						pi, si, fi, len(f.Shared.Frames))
				}
			}
			total += p.Weights[si]
		}
		if span := p.EndValue - p.StartValue; span != total {
			return fmt.Errorf("speedscope: profile %d: weights sum %d but endValue-startValue = %d",
				pi, total, span)
		}
	}
	return nil
}
