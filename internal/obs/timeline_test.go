package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tlEvents builds a crash-spanning event history: submit → start →
// (crash) recover → start again with a checkpoint resume → done. Seq
// restarts at the recovery, as a real journal's would across process
// lifetimes.
func tlEvents(epoch time.Time) []PipelineEvent {
	at := func(sec int) time.Time { return epoch.Add(time.Duration(sec) * time.Second) }
	return []PipelineEvent{
		{Seq: 1, Time: at(0), Kind: "job.submit", Trace: "t-main", Detail: "submitted by default"},
		{Seq: 2, Time: at(1), Kind: "job.start", Trace: "t-main"},
		{Seq: 3, Time: at(2), Kind: "stage.start", Benchmark: "gcc", Stage: "profile", Trace: "t-main"},
		// process died here; next lifetime's recorder restarts Seq
		{Seq: 1, Time: at(10), Kind: "job.recover", Trace: "t-main"},
		{Seq: 2, Time: at(12), Kind: "job.start", Trace: "t-main"},
		{Seq: 3, Time: at(13), Kind: "checkpoint", Benchmark: "gcc", Detail: "loaded", Trace: "t-main"},
		{Seq: 4, Time: at(20), Kind: "job.done", Trace: "t-main"},
		{Seq: 5, Time: at(25), Kind: "job.cache", Trace: "t-late", Detail: "cache hit; canonical trace t-main"},
	}
}

func TestBuildTimelinePhases(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	tl := BuildTimeline(TimelineInput{
		TraceID: "t-main", JobID: "j-1", Tenant: "acme", State: "done",
		Links:  []string{"t-late"},
		Events: tlEvents(epoch),
	})

	var names []string
	for _, p := range tl.Phases {
		names = append(names, p.Name)
	}
	// Run #1 never terminates (the crash ate it), so it contributes no
	// "run" phase; the recovery opens a second queue-wait instead. Phases
	// appear in event order, so the mid-run checkpoint resume lands
	// before its run phase closes.
	want := []string{"queue-wait", "queue-wait", "checkpoint-resume", "run", "cache-lookup"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("phases = %v, want %v", names, want)
	}

	// First queue-wait: admission to first start = 1s.
	if p := tl.Phases[0]; p.DurUS != time.Second.Microseconds() {
		t.Fatalf("admission queue-wait = %dus, want 1s", p.DurUS)
	}
	// Recovery queue-wait is measured from the recovery transition: 2s.
	if p := tl.Phases[1]; p.DurUS != (2 * time.Second).Microseconds() {
		t.Fatalf("recovery queue-wait = %dus, want 2s", p.DurUS)
	}
	// The completed run is attempt 2 (the crash consumed attempt 1's
	// job.start) and spans start→done = 8s.
	run := tl.Phase("run")
	if run == nil || run.DurUS != (8*time.Second).Microseconds() || !strings.Contains(run.Detail, "attempt 2") {
		t.Fatalf("run phase = %+v, want 8s attempt 2", run)
	}
	if cp := tl.Phase("checkpoint-resume"); cp == nil || cp.Detail != "gcc" {
		t.Fatalf("checkpoint-resume = %+v", cp)
	}
	if cl := tl.Phase("cache-lookup"); cl == nil {
		t.Fatal("cache-lookup phase missing")
	}
}

func TestBuildTimelineMergesSpansInTimeOrder(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	tl := BuildTimeline(TimelineInput{
		TraceID: "t-main", JobID: "j-1",
		Events: tlEvents(epoch),
		Spans: []SpanView{
			{ID: 1, Name: "suite", Start: 12500 * time.Millisecond, Dur: 7 * time.Second, Ended: true},
		},
		SpanEpoch: epoch,
	})
	if len(tl.Entries) != len(tlEvents(epoch))+1 {
		t.Fatalf("%d entries, want events+span", len(tl.Entries))
	}
	for i := 1; i < len(tl.Entries); i++ {
		if tl.Entries[i].Time.Before(tl.Entries[i-1].Time) {
			t.Fatalf("entries out of time order at %d: %v then %v",
				i, tl.Entries[i-1].Time, tl.Entries[i].Time)
		}
	}
	var span *TimelineEntry
	for i := range tl.Entries {
		if tl.Entries[i].Source == "span" {
			span = &tl.Entries[i]
		}
	}
	if span == nil || span.Stage != "suite" || span.Trace != "t-main" ||
		span.DurUS != (7*time.Second).Microseconds() {
		t.Fatalf("span entry = %+v", span)
	}
	// 12.5s offset lands the span between job.start (12s) and the
	// checkpoint (13s).
	if !span.Time.Equal(epoch.Add(12500 * time.Millisecond)) {
		t.Fatalf("span absolute time = %v", span.Time)
	}

	// The coalesced submission's row keeps its own trace.
	var cache *TimelineEntry
	for i := range tl.Entries {
		if tl.Entries[i].Kind == "job.cache" {
			cache = &tl.Entries[i]
		}
	}
	if cache == nil || cache.Trace != "t-late" {
		t.Fatalf("cache entry = %+v, want trace t-late", cache)
	}
}

func TestTimelineWriteTable(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)
	tl := BuildTimeline(TimelineInput{
		TraceID: "t-main", JobID: "j-1", Tenant: "acme", State: "done",
		Links:  []string{"t-late"},
		Events: tlEvents(epoch),
	})
	var buf bytes.Buffer
	if err := tl.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace t-main", "job j-1", "tenant acme", "state done",
		"linked traces: t-late", "queue-wait", "run", "checkpoint-resume", "job.done"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}
