package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 with atomic updates. The
// zero value is ready to use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set to arbitrary values (last write
// wins). A nil *Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Add atomically adds delta to the gauge (CAS loop), for gauges used as
// up/down counters like the worker pool's busy count.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// SetMax atomically raises the gauge to v if v exceeds the current
// value, for high-water marks like peak goroutine counts.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zeros and bucket i (i > 0) holds [2^(i-1), 2^i).
const histBuckets = 65

// Histogram accumulates a distribution of uint64 observations in
// power-of-two buckets, with atomic hot-path updates. A nil *Histogram
// discards observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Count and Sum are the number and total of observations.
	Count, Sum uint64
	// Buckets[i] counts observations with bit length i (see histBuckets).
	Buckets [histBuckets]uint64
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// QuantileBucket returns the index of the power-of-two bucket holding
// the q-quantile observation (nearest-rank over bucket counts), -1 when
// the histogram is empty. Because buckets are log2-spaced, "within one
// power-of-two bucket" comparisons — e.g. a load test's client-observed
// p50 against the live histogram's — are index arithmetic.
func (s HistogramSnapshot) QuantileBucket(q float64) int {
	if s.Count == 0 {
		return -1
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return i
		}
	}
	return histBuckets - 1
}

// QuantileBound returns the inclusive upper bound of the q-quantile's
// bucket (2^i - 1 for bucket i, 0 for the zeros bucket and for an empty
// histogram).
func (s HistogramSnapshot) QuantileBound(q float64) uint64 {
	i := s.QuantileBucket(q)
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// MaxBound returns an upper bound (exclusive) on the largest observation:
// 2^i for the highest non-empty bucket i, 0 when empty.
func (s HistogramSnapshot) MaxBound() uint64 {
	for i := histBuckets - 1; i > 0; i-- {
		if s.Buckets[i] > 0 {
			if i >= 64 {
				return math.MaxUint64
			}
			return 1 << i
		}
	}
	return 0
}

// Registry is a concurrency-safe collection of named metrics. Metric
// handles are registered on first use and stable thereafter, so hot paths
// can hold a *Counter and update it lock-free. A nil *Registry hands out
// nil handles, making every downstream update a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	// Counters maps counter name to value.
	Counters map[string]uint64
	// Gauges maps gauge name to value.
	Gauges map[string]float64
	// Histograms maps histogram name to its snapshot.
	Histograms map[string]HistogramSnapshot
}

// CounterNames returns the counter names in sorted order. Every dump
// and exposition path iterates through these name lists, so any
// rendering of a snapshot is deterministic.
func (s Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the gauge names in sorted order.
func (s Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// HistogramNames returns the histogram names in sorted order.
func (s Snapshot) HistogramNames() []string { return sortedKeys(s.Histograms) }

// Snapshot copies the current value of every registered metric. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range hs.Buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteText dumps the registry in the stable plain-text format, one
// metric per line, sorted by name within each kind:
//
//	counter sim.instructions 1234567
//	gauge simpoint.chosen_k 4
//	histogram kmeans.iterations count 50 sum 421 mean 8.42
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	return snap.WriteText(w)
}

// WriteText renders the snapshot in the registry's text format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range s.CounterNames() {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range s.GaugeNames() {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count %d sum %d mean %.4g\n",
			name, h.Count, h.Sum, h.Mean()); err != nil {
			return err
		}
	}
	return nil
}

// SumPrefix totals every counter whose name starts with prefix.
func (s Snapshot) SumPrefix(prefix string) uint64 {
	var total uint64
	for name, v := range s.Counters {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			total += v
		}
	}
	return total
}

// SumGaugePrefix totals every gauge whose name starts with prefix.
func (s Snapshot) SumGaugePrefix(prefix string) float64 {
	var total float64
	for name, v := range s.Gauges {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			total += v
		}
	}
	return total
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
