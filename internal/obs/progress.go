package obs

import (
	"fmt"
	"io"
	"sync"
)

// Event is one coarse progress update from a long-running pipeline.
type Event struct {
	// Benchmark is the benchmark being processed.
	Benchmark string
	// Binary is the binary within the benchmark ("" for whole-benchmark
	// stages like mapping).
	Binary string
	// Stage is the pipeline stage ("profile", "gated simulation", ...).
	Stage string
	// Done and Total, when Total > 0, report suite-level completion
	// (benchmarks finished out of benchmarks requested).
	Done, Total int
}

// Progress renders progress events as lines on a writer, one per event.
// It is safe for concurrent use; a nil *Progress discards events.
type Progress struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgress returns a reporter writing to w.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w}
}

// Report renders one event, e.g.:
//
//	xbsim: gcc (32u) gated simulation
//	xbsim: [3/5] gcc done
func (p *Progress) Report(ev Event) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case ev.Total > 0 && ev.Binary == "":
		fmt.Fprintf(p.w, "xbsim: [%d/%d] %s %s\n", ev.Done, ev.Total, ev.Benchmark, ev.Stage)
	case ev.Binary != "":
		fmt.Fprintf(p.w, "xbsim: %s (%s) %s\n", ev.Benchmark, ev.Binary, ev.Stage)
	default:
		fmt.Fprintf(p.w, "xbsim: %s %s\n", ev.Benchmark, ev.Stage)
	}
}
