package obs

import (
	"runtime"
	"time"
)

// StageSample measures one pipeline-stage attempt's resource cost:
// wall time, bytes allocated, GC cycles completed, and the goroutine
// count observed at the stage's boundaries. Obtain one from
// Observer.StartStage and call Done exactly once; a nil *StageSample
// (from a nil observer) ignores Done, so instrumented code never
// branches on whether accounting is enabled.
//
// Allocation and GC deltas are process-wide: runtime.MemStats cannot
// attribute allocations to a goroutine, so stages that run concurrently
// (parallel benchmarks) each charge themselves the whole process's
// activity during their window. Within one benchmark the stages are
// sequential, so serial runs (Workers=1, Parallelism=1 — the bench
// harness configuration) attribute exactly.
type StageSample struct {
	o      *Observer
	stage  string
	start  time.Time
	g0     int
	alloc0 uint64
	numGC0 uint32
}

// StartStage begins a resource sample for the named stage. Returns nil
// (a no-op sample) when the observer or its registry is nil.
func (o *Observer) StartStage(stage string) *StageSample {
	if o == nil || o.Metrics == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &StageSample{
		o:      o,
		stage:  stage,
		start:  time.Now(),
		g0:     runtime.NumGoroutine(),
		alloc0: ms.TotalAlloc,
		numGC0: ms.NumGC,
	}
}

// Done closes the sample and publishes the stage's resource metrics:
//
//	stage.<name>.duration_us      histogram  attempt wall time (µs)
//	stage.<name>.alloc_bytes      counter    bytes allocated during the attempt
//	stage.<name>.gc_cycles        counter    GC cycles completed during the attempt
//	stage.<name>.goroutines_peak  gauge      max goroutine count seen at the boundaries
func (s *StageSample) Done() {
	if s == nil {
		return
	}
	elapsed := time.Since(s.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := runtime.NumGoroutine()
	if s.g0 > g {
		g = s.g0
	}
	prefix := "stage." + s.stage
	s.o.Histogram(prefix + ".duration_us").Observe(uint64(elapsed.Microseconds()))
	s.o.Counter(prefix + ".alloc_bytes").Add(ms.TotalAlloc - s.alloc0)
	s.o.Counter(prefix + ".gc_cycles").Add(uint64(ms.NumGC - s.numGC0))
	s.o.Gauge(prefix + ".goroutines_peak").SetMax(float64(g))
}
