package obs

import (
	"context"
	"strings"
	"testing"
)

func TestWithFrom(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("observer in empty context")
	}
	o := New()
	ctx := With(context.Background(), o)
	if From(ctx) != o {
		t.Fatal("observer not carried by context")
	}
	if got := With(context.Background(), nil); got != context.Background() {
		t.Fatal("With(nil) rewrapped the context")
	}
}

func TestNilObserverIsNoop(t *testing.T) {
	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x").Observe(1)
	o.Report(Event{Benchmark: "gcc"})
}

func TestObserverChannelsMayBeNil(t *testing.T) {
	// An observer with only a registry: spans and progress are no-ops.
	o := &Observer{Metrics: NewRegistry()}
	ctx := With(context.Background(), o)
	_, sp := StartSpan(ctx, "stage.compile")
	if sp != nil {
		t.Fatal("span without a tracer")
	}
	o.Report(Event{Benchmark: "gcc"})
	o.Counter("c").Inc()
	if o.Counter("c").Value() != 1 {
		t.Fatal("registry not live")
	}
}

func TestProgressFormats(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb)
	p.Report(Event{Benchmark: "gcc", Stage: "done", Done: 3, Total: 5})
	p.Report(Event{Benchmark: "gcc", Binary: "gcc.32u", Stage: "profile"})
	p.Report(Event{Benchmark: "gcc", Stage: "mapping"})
	want := "xbsim: [3/5] gcc done\n" +
		"xbsim: gcc (gcc.32u) profile\n" +
		"xbsim: gcc mapping\n"
	if sb.String() != want {
		t.Fatalf("progress output:\n%s\nwant:\n%s", sb.String(), want)
	}
	var np *Progress
	np.Report(Event{Benchmark: "gcc"}) // nil sink is a no-op
}
