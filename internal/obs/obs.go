// Package obs is the pipeline's observability subsystem: a metrics
// registry (counters, gauges, histograms), a span-based tracer, and a
// progress reporter, bundled into an Observer that travels through the
// pipeline on a context.Context.
//
// The design constraint is that observation must cost nothing when off.
// Every method on every type is nil-safe: a nil *Observer, *Registry,
// *Tracer, *Progress, *Counter, *Gauge, *Histogram, or *Span is a valid
// no-op sink, so instrumented code never branches on "is observability
// enabled" — it just calls through, and the nil receivers return
// immediately without allocating. Hot loops (per-block execution) are
// never instrumented per event; instrumentation tallies locally and
// flushes aggregate deltas into the registry at stage boundaries.
//
// Metric names are a stable interface; see the "Observability" section of
// README.md for the catalogue.
package obs

import "context"

// Observer bundles the three observation channels. Any field may be nil
// to disable that channel; a nil *Observer disables everything.
type Observer struct {
	// Metrics receives counter/gauge/histogram updates.
	Metrics *Registry
	// Tracer records wall-time spans per pipeline stage.
	Tracer *Tracer
	// Progress receives coarse per-stage progress events.
	Progress *Progress
	// Events is the structured-event flight recorder; progress events
	// and Emit calls land here when it is non-nil.
	Events *Recorder
	// Attrib is the evaluate-stage cost-attribution profiler; nil (the
	// default) disables attribution at zero cost.
	Attrib *Attribution
}

// New returns an Observer with a fresh registry and tracer (no progress
// sink; attach one to the Progress field if wanted).
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Tracer: NewTracer()}
}

// ctxKey keys the Observer in a context.
type ctxKey struct{}

// spanKey keys the current span in a context (for parent linkage).
type spanKey struct{}

// With returns a context carrying the observer. A nil observer returns
// ctx unchanged.
func With(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// From returns the context's observer, or nil when none is attached.
func From(ctx context.Context) *Observer {
	o, _ := ctx.Value(ctxKey{}).(*Observer)
	return o
}

// Counter returns the named counter, or nil when metrics are off.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil when metrics are off.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or nil when metrics are off.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Attribution returns the cost-attribution profiler, or nil when
// attribution is off (a nil *Attribution is a valid no-op sink).
func (o *Observer) Attribution() *Attribution {
	if o == nil {
		return nil
	}
	return o.Attrib
}

// Report forwards a progress event to the progress sink, if any, and
// mirrors it into the flight recorder as a "progress" event so the live
// /progress view tracks per-benchmark state.
func (o *Observer) Report(ev Event) {
	if o == nil {
		return
	}
	o.Progress.Report(ev)
	o.Events.Record(PipelineEvent{
		Kind: "progress", Benchmark: ev.Benchmark, Binary: ev.Binary,
		Stage: ev.Stage, Done: ev.Done, Total: ev.Total,
	})
}

// Emit records a structured event in the flight recorder, if one is
// attached. The recorder stamps Seq and Time.
func (o *Observer) Emit(ev PipelineEvent) {
	if o == nil {
		return
	}
	o.Events.Record(ev)
}

// StartSpan opens a span named name on the context's tracer. It returns a
// derived context (carrying the new span for parent linkage) and the span
// itself. Without an observer or tracer it returns (ctx, nil) — and a nil
// *Span's methods are no-ops — so callers never need to check.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	o := From(ctx)
	if o == nil || o.Tracer == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := o.Tracer.start(name, parent)
	return context.WithValue(ctx, spanKey{}, s), s
}
