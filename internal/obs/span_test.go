package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock returns a deterministic clock advancing 1ms per reading.
func fakeClock() func() time.Time {
	t := time.Unix(0, 0).UTC()
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// buildFixtureTrace records a small two-benchmark span tree with the fake
// clock — shared by the tree, ordering, and golden-file tests.
func buildFixtureTrace() *Tracer {
	tr := NewTracerWithClock(fakeClock())
	o := &Observer{Tracer: tr}
	ctx := With(context.Background(), o)

	bctx, bench := StartSpan(ctx, "benchmark")
	bench.Annotate("gcc")
	_, compile := StartSpan(bctx, "stage.compile")
	compile.End()
	pctx, prof := StartSpan(bctx, "stage.profile")
	for i := 0; i < 2; i++ {
		_, run := StartSpan(pctx, "exec.run")
		run.Annotate("gcc.32u")
		run.End()
	}
	prof.End()
	bench.End()

	b2ctx, bench2 := StartSpan(ctx, "benchmark")
	bench2.Annotate("apsi")
	_, c2 := StartSpan(b2ctx, "stage.compile")
	c2.End()
	bench2.End()
	return tr
}

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := buildFixtureTrace()
	views := tr.Spans()
	if len(views) != 7 {
		t.Fatalf("%d spans recorded, want 7", len(views))
	}
	// IDs are 1-based and assigned in start order.
	for i, v := range views {
		if v.ID != i+1 {
			t.Fatalf("span %d has ID %d", i, v.ID)
		}
	}
	// Parent linkage: compile and profile under benchmark 1; exec.runs
	// under profile; second compile under benchmark 2.
	wantParent := []int{0, 1, 1, 3, 3, 0, 6}
	for i, v := range views {
		if v.Parent != wantParent[i] {
			t.Errorf("span %d (%s) parent = %d, want %d", v.ID, v.Name, v.Parent, wantParent[i])
		}
	}
	for _, v := range views {
		if !v.Ended {
			t.Errorf("span %d (%s) not ended", v.ID, v.Name)
		}
		if v.Dur <= 0 {
			t.Errorf("span %d (%s) has non-positive duration %v", v.ID, v.Name, v.Dur)
		}
	}
	// Start offsets strictly increase with the fake clock.
	for i := 1; i < len(views); i++ {
		if views[i].Start <= views[i-1].Start {
			t.Errorf("span %d starts at %v, not after %v", views[i].ID, views[i].Start, views[i-1].Start)
		}
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	var s *Span
	s.End() // must not panic
	s.Annotate("x")

	tr := NewTracerWithClock(fakeClock())
	o := &Observer{Tracer: tr}
	_, sp := StartSpan(With(context.Background(), o), "stage.compile")
	sp.End()
	first := tr.Spans()[0].Dur
	sp.End() // second End must not extend the duration
	if got := tr.Spans()[0].Dur; got != first {
		t.Fatalf("duration changed on second End: %v -> %v", first, got)
	}
}

func TestStartSpanWithoutObserver(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "stage.compile")
	if sp != nil {
		t.Fatal("span created without observer")
	}
	if ctx != context.Background() {
		t.Fatal("context rewrapped without observer")
	}
	sp.End() // no-op
}

func TestStageNames(t *testing.T) {
	tr := buildFixtureTrace()
	got := tr.StageNames()
	want := []string{"benchmark", "exec.run", "stage.compile", "stage.profile"}
	if len(got) != len(want) {
		t.Fatalf("StageNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StageNames = %v, want %v", got, want)
		}
	}
}

func TestWriteTree(t *testing.T) {
	tr := buildFixtureTrace()
	var sb strings.Builder
	if err := tr.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"stage timings:",
		"benchmark ×2",
		"stage.compile ×2",
		"stage.profile",
		"exec.run ×2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	// Children are indented deeper than parents.
	lines := strings.Split(out, "\n")
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	var benchLine, execLine string
	for _, l := range lines {
		if strings.Contains(l, "benchmark") {
			benchLine = l
		}
		if strings.Contains(l, "exec.run") {
			execLine = l
		}
	}
	if indent(execLine) <= indent(benchLine) {
		t.Errorf("exec.run not nested under benchmark:\n%s", out)
	}
}

// The Chrome trace JSON is a stable interface: golden-file tested with a
// deterministic clock. Regenerate with: go test ./internal/obs -update
func TestChromeTraceGolden(t *testing.T) {
	tr := buildFixtureTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestChromeTraceLanes(t *testing.T) {
	tr := buildFixtureTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Spans 1-5 belong to the first benchmark (lane 1), spans 6-7 to the
	// second (lane 6).
	if strings.Count(out, `"tid": 1`) != 5 {
		t.Errorf("want 5 events in lane 1:\n%s", out)
	}
	if strings.Count(out, `"tid": 6`) != 2 {
		t.Errorf("want 2 events in lane 6:\n%s", out)
	}
}

// An unended span must still appear in the dump (with elapsed time), so a
// trace written after a failure loads in the viewer.
func TestChromeTraceUnendedSpan(t *testing.T) {
	tr := NewTracerWithClock(fakeClock())
	o := &Observer{Tracer: tr}
	_, sp := StartSpan(With(context.Background(), o), "benchmark")
	_ = sp // never ended
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name": "benchmark"`) {
		t.Fatalf("unended span missing:\n%s", buf.String())
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Spans() != nil {
		t.Error("nil tracer has spans")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if err := tr.WriteTree(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

// StartSpan on a context without an observer must not allocate — the
// default-off tracing contract.
func TestStartSpanNoopZeroAllocations(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "stage.compile")
		sp.Annotate("gcc.32u")
		sp.End()
	}); n != 0 {
		t.Fatalf("noop StartSpan allocates %v", n)
	}
}

func BenchmarkNoopStartSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "stage.compile")
		sp.End()
	}
}

// syncBuffer is a mutex-guarded buffer safe for the AutoFlush goroutine
// to write while the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Cancelling the context must flush a complete, parseable Chrome trace
// even though the run (and its spans) never finished — the mid-run-exit
// guarantee for -trace-out.
func TestAutoFlushOnCancel(t *testing.T) {
	tr := NewTracerWithClock(fakeClock())
	o := &Observer{Tracer: tr}
	ctx, cancel := context.WithCancel(With(context.Background(), o))
	_, sp := StartSpan(ctx, "benchmark")
	sp.Annotate("gcc")
	// sp deliberately never ended: the process is "mid-run".

	var buf syncBuffer
	flush := tr.AutoFlush(ctx, &buf)
	if buf.String() != "" {
		t.Fatal("flushed before cancellation")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for buf.String() == "" {
		if time.Now().After(deadline) {
			t.Fatal("trace not flushed after context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &trace); err != nil {
		t.Fatalf("cancellation flush is not complete JSON: %v\n%s", err, buf.String())
	}
	if len(trace.TraceEvents) != 1 || trace.TraceEvents[0]["name"] != "benchmark" {
		t.Fatalf("trace events = %+v", trace.TraceEvents)
	}
	// The normal-exit flush must now be a no-op, not a second copy.
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `"traceEvents"`); n != 1 {
		t.Fatalf("trace written %d times, want once", n)
	}
}

// On the normal exit path the returned flush writes the trace once,
// idempotently, and a nil tracer hands back a working no-op.
func TestAutoFlushNormalExit(t *testing.T) {
	tr := buildFixtureTrace()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	flush := tr.AutoFlush(ctx, &buf)
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `"traceEvents"`); n != 1 {
		t.Fatalf("trace written %d times, want once", n)
	}
	var nilTr *Tracer
	if err := nilTr.AutoFlush(ctx, &buf)(); err != nil {
		t.Fatal(err)
	}
}
