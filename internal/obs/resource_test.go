package obs

import (
	"strings"
	"testing"
)

// StartStage/Done must publish the full per-stage resource metric set
// under the stage.<name>.* names, and be inert without an observer.
func TestStageSamplePublishesResourceMetrics(t *testing.T) {
	o := New()
	s := o.StartStage("profile")
	// Allocate something attributable so alloc_bytes is non-zero.
	sink := make([]byte, 1<<20)
	_ = sink[0]
	s.Done()

	snap := o.Metrics.Snapshot()
	h, ok := snap.Histograms["stage.profile.duration_us"]
	if !ok || h.Count != 1 {
		t.Fatalf("duration histogram = %+v (ok=%v), want one observation", h, ok)
	}
	if v := snap.Counters["stage.profile.alloc_bytes"]; v < 1<<20 {
		t.Fatalf("alloc_bytes = %d, want >= 1MiB", v)
	}
	if _, ok := snap.Counters["stage.profile.gc_cycles"]; !ok {
		t.Fatal("gc_cycles counter missing")
	}
	if v := snap.Gauges["stage.profile.goroutines_peak"]; v < 1 {
		t.Fatalf("goroutines_peak = %v", v)
	}
	for _, name := range snap.CounterNames() {
		if strings.HasPrefix(name, "stage.") && !strings.HasPrefix(name, "stage.profile.") {
			t.Fatalf("unexpected stage metric %q", name)
		}
	}

	var nilObs *Observer
	nilObs.StartStage("x").Done() // must be a no-op, not a panic
	(*StageSample)(nil).Done()
}
