package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !strings.HasPrefix(id, "t-") || len(id) != 2+16 {
			t.Fatalf("trace ID %q, want t- + 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("trace ID %q minted twice", id)
		}
		seen[id] = true
	}
}

func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFrom(ctx); got != "" {
		t.Fatalf("bare context trace = %q, want empty", got)
	}
	ctx2 := WithTraceID(ctx, "t-abc")
	if got := TraceIDFrom(ctx2); got != "t-abc" {
		t.Fatalf("trace = %q, want t-abc", got)
	}
	// An empty ID must not wrap the context at all.
	if WithTraceID(ctx, "") != ctx {
		t.Fatal("WithTraceID(\"\") wrapped the context")
	}
}

func TestSanitizeTraceID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  t-abc  ", "t-abc"},
		{"plain", "plain"},
		{"tab\tand\nnewline", "tab_and_newline"},
		{"uniécode", "uni_code"}, // one non-ASCII rune → one '_'
		{strings.Repeat("x", 200), strings.Repeat("x", 120)},
		{"", ""},
	}
	for _, c := range cases {
		if got := SanitizeTraceID(c.in); got != c.want {
			t.Fatalf("SanitizeTraceID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabeledNameEscaping(t *testing.T) {
	cases := []struct {
		name string
		kv   []string
		want string
	}{
		{"serve.tenant.jobs", []string{"tenant", "acme"}, `serve.tenant.jobs{tenant="acme"}`},
		{"m", []string{"a", "1", "b", "2"}, `m{a="1",b="2"}`},
		{"m", []string{"k", `va"l\ue` + "\n"}, `m{k="va\"l\\ue\n"}`},
		{"bare", nil, "bare"},
		{"odd", []string{"k"}, "odd"}, // dangling key ignored
	}
	for _, c := range cases {
		if got := LabeledName(c.name, c.kv...); got != c.want {
			t.Fatalf("LabeledName(%q, %v) = %q, want %q", c.name, c.kv, got, c.want)
		}
	}
}

// The disabled path must cost nothing: reading a trace from a bare
// context, recording into a nil recorder, and emitting through a nil
// observer are the hot no-op paths every pipeline stage hits when
// tracing is off.
func TestTracingDisabledPathAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		if TraceIDFrom(ctx) != "" {
			t.Fatal("unexpected trace")
		}
	}); n != 0 {
		t.Fatalf("TraceIDFrom on a bare context allocates %.1f/op, want 0", n)
	}
	var r *Recorder
	if n := testing.AllocsPerRun(100, func() {
		r.Record(PipelineEvent{Kind: "stage.start", Trace: "t-x"})
	}); n != 0 {
		t.Fatalf("nil Recorder.Record allocates %.1f/op, want 0", n)
	}
	var o *Observer
	if n := testing.AllocsPerRun(100, func() {
		o.Emit(PipelineEvent{Kind: "stage.start", Trace: "t-x"})
	}); n != 0 {
		t.Fatalf("nil Observer.Emit allocates %.1f/op, want 0", n)
	}
}
