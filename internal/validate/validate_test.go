package validate

import (
	"strings"
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 404}

func binsFor(t *testing.T, name string) []*compiler.Binary {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 250_000})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := compiler.CompileAll(p)
	if err != nil {
		t.Fatal(err)
	}
	return bins
}

func TestCrossBinaryAllChecksPass(t *testing.T) {
	for _, name := range []string{"gzip", "applu", "gcc"} {
		bins := binsFor(t, name)
		rep, err := CrossBinary(bins, refInput, 8_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.OK() {
			for _, c := range rep.Checks {
				if !c.OK {
					t.Errorf("%s: check %s failed: %s", name, c.Name, c.Detail)
				}
			}
		}
		if rep.Program != name {
			t.Fatalf("report program %q", rep.Program)
		}
	}
}

func TestCrossBinaryCheckInventory(t *testing.T) {
	bins := binsFor(t, "art")
	rep, err := CrossBinary(bins, refInput, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range rep.Checks {
		names[c.Name] = true
		if c.Detail == "" {
			t.Errorf("check %s has no detail", c.Name)
		}
	}
	for _, want := range []string{
		"determinism", "symbol-counts", "mappable-counts", "vli-size", "vli-coverage",
	} {
		if !names[want] {
			t.Errorf("missing check %s", want)
		}
	}
	mappedChecks := 0
	for n := range names {
		if strings.HasPrefix(n, "mapped-coverage:") {
			mappedChecks++
		}
	}
	if mappedChecks != 3 {
		t.Fatalf("%d mapped-coverage checks, want 3 (non-primary binaries)", mappedChecks)
	}
}

func TestCrossBinaryValidation(t *testing.T) {
	bins := binsFor(t, "art")
	if _, err := CrossBinary(bins[:1], refInput, 8_000); err == nil {
		t.Error("single binary accepted")
	}
	if _, err := CrossBinary(bins, refInput, 0); err == nil {
		t.Error("zero interval size accepted")
	}
}
