// Package validate packages the cross-binary invariants the method
// depends on as a user-facing diagnostic: given a program's binaries and
// an input, it checks that the toolchain's assumptions actually hold for
// this workload before anyone trusts sampled numbers from it.
//
// The checks mirror the guarantees claimed in the paper:
//
//  1. execution is deterministic (two runs agree exactly);
//  2. symbols shared by all binaries have identical call counts;
//  3. every mappable point fires exactly its recorded count in every
//     binary (the (marker, count) region-delimiter guarantee);
//  4. the primary binary's variable length intervals are at least the
//     target size and cover its whole execution;
//  5. the mapped intervals cover every other binary's whole execution
//     with no empty intervals;
//  6. recalculated per-binary phase weights are a probability
//     distribution.
package validate

import (
	"fmt"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/mapping"
	"xbsim/internal/profile"
	"xbsim/internal/program"
)

// Check is one verified invariant.
type Check struct {
	// Name identifies the invariant.
	Name string
	// OK reports whether it held.
	OK bool
	// Detail explains the outcome (counts compared, first violation).
	Detail string
}

// Report is a completed validation.
type Report struct {
	// Program names the validated program.
	Program string
	// Checks lists every invariant in a fixed order.
	Checks []Check
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

func (r *Report) add(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// CrossBinary validates the binaries of one program on one input.
// intervalSize is the VLI target used for the coverage checks.
func CrossBinary(bins []*compiler.Binary, in program.Input, intervalSize uint64) (*Report, error) {
	if len(bins) < 2 {
		return nil, fmt.Errorf("validate: need at least 2 binaries")
	}
	if intervalSize == 0 {
		return nil, fmt.Errorf("validate: zero interval size")
	}
	r := &Report{Program: bins[0].Program.Name}

	// Collect per-binary profiles and totals twice for determinism.
	profiles := make([]*profile.Profile, len(bins))
	for bi, bin := range bins {
		p1, err := profile.Collect(bin, in)
		if err != nil {
			return nil, err
		}
		p2, err := profile.Collect(bin, in)
		if err != nil {
			return nil, err
		}
		if p1.TotalInstructions != p2.TotalInstructions {
			r.add("determinism", false, "%s: %d vs %d instructions across identical runs",
				bin.Name, p1.TotalInstructions, p2.TotalInstructions)
		}
		profiles[bi] = p1
	}
	if len(r.Checks) == 0 {
		r.add("determinism", true, "identical instruction counts across repeated runs of all %d binaries", len(bins))
	}

	// Shared symbols agree on counts.
	mismatches := 0
	shared := 0
	for _, pp := range profiles[0].Procs {
		count := pp.Count
		everywhere := true
		for _, p := range profiles[1:] {
			other := p.ProcBySymbol(pp.Symbol)
			if other == nil {
				everywhere = false
				break
			}
			if other.Count != count {
				mismatches++
			}
		}
		if everywhere {
			shared++
		}
	}
	r.add("symbol-counts", mismatches == 0,
		"%d shared symbols, %d count mismatches", shared, mismatches)

	// Mappable points fire their recorded count in every binary.
	mapped, err := mapping.Find(profiles, mapping.Options{})
	if err != nil {
		return nil, err
	}
	badFires := 0
	for bi, bin := range bins {
		mc := exec.NewMarkerCounter(bin)
		if err := exec.Run(bin, in, mc); err != nil {
			return nil, err
		}
		for _, pt := range mapped.Points {
			if mc.Counts[pt.Markers[bi]] != pt.Count {
				badFires++
			}
		}
	}
	r.add("mappable-counts", badFires == 0,
		"%d mappable points checked in %d binaries, %d count violations",
		len(mapped.Points), len(bins), badFires)

	// Primary VLI construction: size and coverage.
	const primary = 0
	vc, err := profile.NewVLICollector(bins[primary], intervalSize, mapped.MarkersFor(primary))
	if err != nil {
		return nil, err
	}
	if err := exec.Run(bins[primary], in, vc); err != nil {
		return nil, err
	}
	vli := vc.Finish()
	undersized := 0
	for i, l := range vli.Dataset.Lengths() {
		if i < vli.Dataset.Len()-1 && l < intervalSize {
			undersized++
		}
	}
	covered := vli.Dataset.TotalInstructions() == profiles[primary].TotalInstructions
	r.add("vli-size", undersized == 0,
		"%d intervals, %d below the %d-instruction target", vli.Dataset.Len(), undersized, intervalSize)
	r.add("vli-coverage", covered,
		"primary intervals cover %d of %d instructions",
		vli.Dataset.TotalInstructions(), profiles[primary].TotalInstructions)

	// Mapped coverage in every other binary.
	for bi := range bins {
		if bi == primary {
			continue
		}
		ends, err := mapped.TranslateEnds(primary, bi, vli.Ends)
		if err != nil {
			return nil, err
		}
		tr := profile.NewVLITracker(bins[bi], ends, nil)
		if err := exec.Run(bins[bi], in, tr); err != nil {
			return nil, err
		}
		var sum uint64
		empty := 0
		for _, n := range tr.Instructions {
			sum += n
			if n == 0 {
				empty++
			}
		}
		ok := sum == profiles[bi].TotalInstructions && empty == 0
		r.add("mapped-coverage:"+bins[bi].Name, ok,
			"mapped intervals cover %d of %d instructions, %d empty",
			sum, profiles[bi].TotalInstructions, empty)
	}
	return r, nil
}
