package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"xbsim/internal/vecmath"
	"xbsim/internal/xrand"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(rng *xrand.Stream, centers [][]float64, n int, spread float64) ([][]float64, []int) {
	var points [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + spread*rng.NormFloat64()
			}
			points = append(points, p)
			labels = append(labels, ci)
		}
	}
	return points, labels
}

func defaultCfg(seed string) Config {
	return Config{Rng: xrand.New(seed)}
}

func TestRecoverWellSeparatedClusters(t *testing.T) {
	rng := xrand.New("blobs")
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	points, labels := blobs(rng, centers, 30, 0.3)
	res, err := Run(points, nil, 3, defaultCfg("run"))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// Every true cluster must map to exactly one k-means cluster.
	mapping := map[int]int{}
	for i, lab := range labels {
		c := res.Assignments[i]
		if prev, ok := mapping[lab]; ok {
			if prev != c {
				t.Fatalf("true cluster %d split across k-means clusters %d and %d", lab, prev, c)
			}
		} else {
			mapping[lab] = c
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("true clusters merged: %v", mapping)
	}
}

func TestWeightsPullCentroid(t *testing.T) {
	// One cluster, two points; the heavy point should dominate the centroid.
	points := [][]float64{{0}, {10}}
	res, err := Run(points, []float64{9, 1}, 1, defaultCfg("w"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Centroids[0][0]; math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("weighted centroid = %v, want 1.0", got)
	}
	if res.ClusterWeights[0] != 10 {
		t.Fatalf("cluster weight = %v", res.ClusterWeights[0])
	}
	if res.ClusterSizes[0] != 2 {
		t.Fatalf("cluster size = %v", res.ClusterSizes[0])
	}
}

func TestKClampedToDistinctPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	res, err := Run(points, nil, 5, defaultCfg("clamp"))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Fatalf("K = %d > number of points", res.K)
	}
	if res.Distortion > 1e-9 {
		t.Fatalf("distortion %v for trivially separable data", res.Distortion)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(nil, nil, 2, defaultCfg("e")); err == nil {
		t.Error("no error for empty input")
	}
	if _, err := Run([][]float64{{1}}, nil, 0, defaultCfg("e")); err == nil {
		t.Error("no error for k=0")
	}
	if _, err := Run([][]float64{{1}}, nil, 1, Config{}); err == nil {
		t.Error("no error for missing rng")
	}
	if _, err := Run([][]float64{{1}, {1, 2}}, nil, 1, defaultCfg("e")); err == nil {
		t.Error("no error for ragged points")
	}
	if _, err := Run([][]float64{{1}}, []float64{0}, 1, defaultCfg("e")); err == nil {
		t.Error("no error for zero weight")
	}
	if _, err := Run([][]float64{{1}}, []float64{1, 2}, 1, defaultCfg("e")); err == nil {
		t.Error("no error for weight length mismatch")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := xrand.New("det-data")
	points, _ := blobs(rng, [][]float64{{0, 0}, {5, 5}}, 20, 0.5)
	a, err := Run(points, nil, 2, defaultCfg("det"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(points, nil, 2, defaultCfg("det"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignments differ at %d", i)
		}
	}
	if a.Distortion != b.Distortion {
		t.Fatal("distortions differ")
	}
}

func TestAssignmentsAreNearest(t *testing.T) {
	rng := xrand.New("nearest")
	points, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}, {-8, 8}}, 25, 1.0)
	res, err := Run(points, nil, 3, defaultCfg("nearest-run"))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		got := res.Assignments[i]
		for c := range res.Centroids {
			if vecmath.SquaredDistance(p, res.Centroids[c]) <
				vecmath.SquaredDistance(p, res.Centroids[got])-1e-9 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, got, c)
			}
		}
	}
}

func TestDistortionDecreasesWithK(t *testing.T) {
	rng := xrand.New("monotone")
	points, _ := blobs(rng, [][]float64{{0, 0}, {6, 0}, {0, 6}, {6, 6}}, 20, 0.8)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := Run(points, nil, k, Config{Rng: xrand.New("m"), Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Allow small non-monotonicity from local optima, but the trend
		// must be firmly downward for well-separated blobs.
		if res.Distortion > prev*1.10+1e-9 {
			t.Fatalf("distortion increased sharply at k=%d: %v -> %v", k, prev, res.Distortion)
		}
		prev = res.Distortion
	}
}

func TestInitRandomWorks(t *testing.T) {
	rng := xrand.New("init-random")
	points, _ := blobs(rng, [][]float64{{0}, {100}}, 10, 0.1)
	res, err := Run(points, nil, 2, Config{Rng: xrand.New("ir"), Init: InitRandom, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
	if res.Distortion > 1.0 {
		t.Fatalf("distortion %v too high for trivial data", res.Distortion)
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	rng := xrand.New("bic")
	points, _ := blobs(rng, [][]float64{{0, 0}, {20, 0}, {0, 20}}, 40, 0.5)
	scores := map[int]float64{}
	for k := 1; k <= 6; k++ {
		res, err := Run(points, nil, k, Config{Rng: xrand.New("bic-run"), Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		scores[k] = BIC(points, nil, res)
	}
	// The true k=3 must score better than underfit k=1,2.
	if scores[3] <= scores[1] || scores[3] <= scores[2] {
		t.Fatalf("BIC does not prefer true k: %v", scores)
	}
}

func TestBICWeightedMatchesReplicated(t *testing.T) {
	// A point with weight 3 should behave like 3 coincident points.
	base := [][]float64{{0, 0}, {1, 0}, {10, 10}}
	weights := []float64{3, 1, 2}
	var replicated [][]float64
	for i, p := range base {
		for j := 0; j < int(weights[i]); j++ {
			replicated = append(replicated, p)
		}
	}
	resW, err := Run(base, weights, 2, defaultCfg("bw"))
	if err != nil {
		t.Fatal(err)
	}
	resR, err := Run(replicated, nil, 2, defaultCfg("bw"))
	if err != nil {
		t.Fatal(err)
	}
	// Same total weight (6) and same geometry => same BIC up to numerics.
	bw := BIC(base, weights, resW)
	br := BIC(replicated, nil, resR)
	// The rescaling maps weighted n=3 to R=3, while replication has R=6;
	// so the scores differ by a deterministic function of R. We only check
	// the centroids match, which is the property clustering relies on.
	want := map[float64]bool{}
	for _, c := range resR.Centroids {
		want[c[0]+1000*c[1]] = true
	}
	for _, c := range resW.Centroids {
		key := c[0] + 1000*c[1]
		found := false
		for w := range want {
			if math.Abs(w-key) < 1e-6 {
				found = true
			}
		}
		if !found {
			t.Fatalf("weighted centroid %v not found in replicated run %v", resW.Centroids, resR.Centroids)
		}
	}
	_ = bw
	_ = br
}

func TestBICEmptyInput(t *testing.T) {
	if !math.IsInf(BIC(nil, nil, nil), -1) {
		t.Fatal("BIC of nothing should be -inf")
	}
}

func TestClusterAccountingProperty(t *testing.T) {
	rng := xrand.New("acct")
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 2
		k := int(kRaw%5) + 1
		points := make([][]float64, n)
		weights := make([]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			weights[i] = rng.Float64() + 0.1
		}
		res, err := Run(points, weights, k, Config{Rng: rng.SplitIndexed("q", int(nRaw)*7+int(kRaw)), Restarts: 2})
		if err != nil {
			return false
		}
		// Sizes sum to n, weights sum to total weight, assignments in range.
		var sizeSum int
		var wSum float64
		for c := 0; c < res.K; c++ {
			sizeSum += res.ClusterSizes[c]
			wSum += res.ClusterWeights[c]
		}
		if sizeSum != n {
			return false
		}
		var wantW float64
		for _, w := range weights {
			wantW += w
		}
		if math.Abs(wSum-wantW) > 1e-9 {
			return false
		}
		for _, a := range res.Assignments {
			if a < 0 || a >= res.K {
				return false
			}
		}
		return res.Distortion >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := xrand.New("bench-km")
	points, _ := blobs(rng, [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 250, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(points, nil, 4, Config{Rng: xrand.NewFromUint64(uint64(i)), Restarts: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
