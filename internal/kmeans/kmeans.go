// Package kmeans implements weighted k-means clustering with k-means++
// seeding, multiple restarts, and the Bayesian Information Criterion (BIC)
// score SimPoint uses to choose the number of clusters.
//
// SimPoint 3.0 clusters projected basic block vectors for a range of k and
// keeps the smallest k whose BIC is close to the best observed (Hamerly et
// al., JILP 2005). For variable length intervals each point carries a
// weight — its dynamic instruction count — and both the centroid updates
// and the BIC likelihood treat a point of weight w like w identical copies.
package kmeans

import (
	"fmt"
	"math"

	"xbsim/internal/obs"
	"xbsim/internal/pool"
	"xbsim/internal/vecmath"
	"xbsim/internal/xrand"
)

// InitMethod selects how initial centroids are chosen.
type InitMethod int

const (
	// InitPlusPlus is k-means++ seeding: iteratively pick centers with
	// probability proportional to squared distance from the nearest chosen
	// center (weighted by point weight). This is the default.
	InitPlusPlus InitMethod = iota
	// InitRandom picks k distinct points uniformly at random, matching the
	// original SimPoint implementation's sampled initialization.
	InitRandom
)

// Config controls a clustering run.
type Config struct {
	// MaxIters bounds Lloyd iterations per restart. <= 0 means 100.
	MaxIters int
	// Restarts is the number of random restarts; the lowest-distortion run
	// wins. <= 0 means 5.
	Restarts int
	// Init selects the seeding method.
	Init InitMethod
	// Rng supplies all randomness. Required.
	Rng *xrand.Stream
	// Obs, when non-nil, receives clustering metrics (restart and Lloyd
	// iteration counters, iteration histograms). Nil records nothing.
	Obs *obs.Observer
	// Pool, when non-nil, runs the restarts concurrently. Each restart
	// draws from its own SplitIndexed stream and lands in an
	// index-addressed slot, so the result is identical to a serial run.
	Pool *pool.Pool
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 100
	}
	if c.Restarts <= 0 {
		c.Restarts = 5
	}
	return c
}

// Result is a completed clustering.
type Result struct {
	// K is the number of clusters actually produced (== requested k unless
	// there were fewer distinct points).
	K int
	// Assignments maps each point index to a cluster in [0, K).
	Assignments []int
	// Centroids holds the K cluster centers.
	Centroids [][]float64
	// Distortion is the weighted sum of squared distances of points to
	// their assigned centroid.
	Distortion float64
	// ClusterWeights[c] is the total weight assigned to cluster c.
	ClusterWeights []float64
	// ClusterSizes[c] is the number of points assigned to cluster c.
	ClusterSizes []int
}

// Run clusters points into (at most) k clusters. weights may be nil for
// unweighted clustering; otherwise it must be the same length as points
// with positive entries. It returns an error for invalid inputs.
func Run(points [][]float64, weights []float64, k int, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: k = %d", k)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("kmeans: Config.Rng is required")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if weights != nil {
		if len(weights) != len(points) {
			return nil, fmt.Errorf("kmeans: %d weights for %d points", len(weights), len(points))
		}
		for i, w := range weights {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("kmeans: weight %d = %v must be positive and finite", i, w)
			}
		}
	}
	if k > len(points) {
		k = len(points)
	}
	cfg = cfg.withDefaults()

	// Restarts run concurrently (when a pool is configured) into
	// index-addressed slots; the reduction below scans them in restart
	// order, so the winner — including tie-breaks on equal distortion —
	// is exactly the one the serial loop would keep.
	results := make([]*Result, cfg.Restarts)
	iters := make([]uint64, cfg.Restarts)
	_ = cfg.Pool.Run(cfg.Restarts, func(r int) error {
		results[r], iters[r] = runOnce(points, weights, k, cfg, cfg.Rng.SplitIndexed("restart", r))
		return nil
	})
	var best *Result
	var totalIters uint64
	for r, res := range results {
		totalIters += iters[r]
		cfg.Obs.Histogram("kmeans.iterations_per_restart").Observe(iters[r])
		if best == nil || res.Distortion < best.Distortion {
			best = res
		}
	}
	cfg.Obs.Counter("kmeans.runs").Inc()
	cfg.Obs.Counter("kmeans.restarts").Add(uint64(cfg.Restarts))
	cfg.Obs.Counter("kmeans.iterations").Add(totalIters)
	return best, nil
}

// runOnce performs one seeded clustering, returning the result and the
// number of Lloyd iterations it took.
func runOnce(points [][]float64, weights []float64, k int, cfg Config, rng *xrand.Stream) (*Result, uint64) {
	dim := len(points[0])
	centroids := initCentroids(points, weights, k, cfg.Init, rng)
	k = len(centroids) // may shrink if fewer distinct points
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}

	var iters uint64
	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters++
		changed := assignAll(points, centroids, assign)
		recomputeCentroids(points, weights, assign, centroids, dim, rng)
		if !changed && iter > 0 {
			break
		}
	}
	// Final assignment against the final centroids.
	assignAll(points, centroids, assign)

	res := &Result{
		K:              k,
		Assignments:    assign,
		Centroids:      centroids,
		ClusterWeights: make([]float64, k),
		ClusterSizes:   make([]int, k),
	}
	for i, c := range assign {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		res.ClusterWeights[c] += w
		res.ClusterSizes[c]++
		res.Distortion += w * vecmath.SquaredDistance(points[i], centroids[c])
	}
	return res, iters
}

// assignAll assigns each point to its nearest centroid, returning whether
// any assignment changed.
func assignAll(points [][]float64, centroids [][]float64, assign []int) bool {
	changed := false
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for c, ctr := range centroids {
			if d := vecmath.SquaredDistance(p, ctr); d < bestD {
				bestC, bestD = c, d
			}
		}
		if assign[i] != bestC {
			assign[i] = bestC
			changed = true
		}
	}
	return changed
}

// recomputeCentroids sets each centroid to the weighted mean of its points.
// An empty cluster is re-seeded with the point farthest from its centroid.
func recomputeCentroids(points [][]float64, weights []float64, assign []int, centroids [][]float64, dim int, rng *xrand.Stream) {
	sums := make([][]float64, len(centroids))
	totals := make([]float64, len(centroids))
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for i, c := range assign {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		vecmath.AddScaled(sums[c], points[i], w)
		totals[c] += w
	}
	var empty []int
	for c := range centroids {
		if totals[c] > 0 {
			vecmath.Scale(sums[c], 1/totals[c])
			centroids[c] = sums[c]
		} else {
			empty = append(empty, c)
		}
	}
	// Empty clusters are re-seeded with the point farthest from its
	// assigned centroid, which splits the most spread-out cluster. The
	// re-seeding is iterative: each pick sees the centroids refreshed by
	// earlier picks and excludes already-used points, so two clusters
	// emptied in the same pass never adopt the same point.
	used := make(map[int]bool, len(empty))
	for _, c := range empty {
		farthest, farD := -1, -1.0
		for i, p := range points {
			if used[i] {
				continue
			}
			d := vecmath.SquaredDistance(p, centroids[assign[i]])
			if d > farD {
				farthest, farD = i, d
			}
		}
		if farthest < 0 {
			// More empty clusters than points left; k <= len(points)
			// makes this unreachable, but degrade gracefully anyway.
			farthest = 0
		}
		used[farthest] = true
		centroids[c] = append([]float64(nil), points[farthest]...)
	}
	_ = rng // reserved for randomized tie-breaking strategies
}

func initCentroids(points [][]float64, weights []float64, k int, method InitMethod, rng *xrand.Stream) [][]float64 {
	switch method {
	case InitRandom:
		return initRandom(points, k, rng)
	default:
		return initPlusPlus(points, weights, k, rng)
	}
}

func initRandom(points [][]float64, k int, rng *xrand.Stream) [][]float64 {
	perm := rng.Perm(len(points))
	centroids := make([][]float64, 0, k)
	for _, i := range perm {
		if containsVec(centroids, points[i]) {
			continue
		}
		centroids = append(centroids, append([]float64(nil), points[i]...))
		if len(centroids) == k {
			break
		}
	}
	return centroids
}

// sameVec reports whether two vectors are numerically identical. IEEE
// equality deliberately treats -0 and 0 as the same coordinate, unlike
// their printed forms.
func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsVec reports whether vs contains a vector equal to p.
func containsVec(vs [][]float64, p []float64) bool {
	for _, v := range vs {
		if sameVec(v, p) {
			return true
		}
	}
	return false
}

func initPlusPlus(points [][]float64, weights []float64, k int, rng *xrand.Stream) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))

	// minDist[i] is the squared distance from point i to its nearest
	// chosen centroid so far.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = vecmath.SquaredDistance(points[i], centroids[0])
	}
	probs := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i := range probs {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			probs[i] = w * minDist[i]
			total += probs[i]
		}
		if total == 0 {
			// All remaining points coincide with chosen centers: fewer
			// distinct points than k.
			break
		}
		next := rng.Pick(probs)
		centroids = append(centroids, append([]float64(nil), points[next]...))
		for i := range minDist {
			if d := vecmath.SquaredDistance(points[i], centroids[len(centroids)-1]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return centroids
}

// BIC returns the Bayesian Information Criterion score of a clustering, in
// the X-means formulation (Pelleg & Moore, ICML 2000), generalized to
// weighted points: a point of weight w contributes like w copies. Higher is
// better. Weights are rescaled so their total equals the point count, which
// keeps scores comparable across weighting schemes.
func BIC(points [][]float64, weights []float64, res *Result) float64 {
	n := len(points)
	if n == 0 || res == nil {
		return math.Inf(-1)
	}
	d := float64(len(points[0]))
	k := float64(res.K)

	// Effective (rescaled) weights.
	scale := 1.0
	if weights != nil {
		var total float64
		for _, w := range weights {
			total += w
		}
		scale = float64(n) / total
	}
	eff := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i] * scale
	}

	// Pooled spherical variance estimate.
	var distortion float64
	clusterW := make([]float64, res.K)
	for i, c := range res.Assignments {
		w := eff(i)
		distortion += w * vecmath.SquaredDistance(points[i], res.Centroids[c])
		clusterW[c] += w
	}
	R := float64(n)
	denom := d * (R - k)
	if denom <= 0 {
		denom = d // degenerate: as many clusters as points
	}
	sigma2 := distortion / denom
	if sigma2 <= 0 {
		sigma2 = 1e-12 // perfect fit; avoid log(0)
	}

	var loglik float64
	for _, Ri := range clusterW {
		if Ri <= 0 {
			continue
		}
		loglik += Ri*math.Log(Ri) - Ri*math.Log(R) -
			Ri*d/2*math.Log(2*math.Pi*sigma2) - (Ri-1)*d/2
	}
	params := (k - 1) + k*d + 1
	return loglik - params/2*math.Log(R)
}
