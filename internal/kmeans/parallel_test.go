package kmeans

import (
	"math"
	"reflect"
	"testing"

	"xbsim/internal/pool"
	"xbsim/internal/xrand"
)

// Parallel restarts must reproduce the serial result bit for bit: every
// restart draws from its own indexed stream and the winner is reduced
// in restart order.
func TestParallelRestartsMatchSerial(t *testing.T) {
	rng := xrand.New("parallel-restarts")
	centers := [][]float64{{0, 0}, {8, 0}, {0, 8}, {8, 8}}
	points, _ := blobs(rng, centers, 25, 0.5)

	serial, err := Run(points, nil, 4, Config{Rng: xrand.New("pr"), Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(points, nil, 4, Config{Rng: xrand.New("pr"), Restarts: 8, Pool: pool.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel result differs from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// Two clusters emptied in the same recomputeCentroids pass must be
// re-seeded with two distinct points: the second pick excludes the
// first pick's point and sees the refreshed centroids.
func TestEmptyClustersReseedDistinctPoints(t *testing.T) {
	points := [][]float64{{0}, {1}, {10}, {11}}
	assign := []int{0, 0, 0, 0} // clusters 1 and 2 both empty
	centroids := [][]float64{{5.5}, {100}, {100}}
	recomputeCentroids(points, nil, assign, centroids, 1, xrand.New("reseed"))

	if got := centroids[0][0]; got != 5.5 {
		t.Fatalf("non-empty cluster mean = %v, want 5.5", got)
	}
	if sameVec(centroids[1], centroids[2]) {
		t.Fatalf("both empty clusters re-seeded with the same point %v", centroids[1])
	}
	for c := 1; c <= 2; c++ {
		if !containsVec(points, centroids[c]) {
			t.Fatalf("re-seeded centroid %v is not a dataset point", centroids[c])
		}
	}
}

// Weighted re-seeding must also pick distinct points, and the run as a
// whole must still satisfy the basic invariants.
func TestEmptyClusterReseedEndToEnd(t *testing.T) {
	// Points crowded at the origin plus two outliers: high k forces
	// empty clusters during Lloyd iterations.
	points := [][]float64{
		{0, 0}, {0.01, 0}, {0, 0.01}, {0.01, 0.01},
		{50, 50}, {-50, 50},
	}
	res, err := Run(points, nil, 6, Config{Rng: xrand.New("reseed-e2e"), Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c, size := range res.ClusterSizes {
		if size == 0 {
			continue // an empty final cluster is legal, just unrepresented
		}
		if res.ClusterWeights[c] <= 0 {
			t.Fatalf("cluster %d has size %d but weight %v", c, size, res.ClusterWeights[c])
		}
	}
	if len(res.Assignments) != len(points) {
		t.Fatalf("%d assignments", len(res.Assignments))
	}
}

// initRandom must dedup by numeric vector equality: -0 equals 0, and
// true duplicates collapse, shrinking k.
func TestInitRandomDedupsExactVectors(t *testing.T) {
	negZero := math.Copysign(0, -1)
	points := [][]float64{{0, 1}, {negZero, 1}, {2, 3}, {2, 3}, {4, 5}}
	centroids := initRandom(points, 5, xrand.New("dedup"))
	if len(centroids) != 3 {
		t.Fatalf("%d distinct centroids, want 3 (0/-0 and duplicate rows must collapse): %v",
			len(centroids), centroids)
	}
	for i := 0; i < len(centroids); i++ {
		for j := i + 1; j < len(centroids); j++ {
			if sameVec(centroids[i], centroids[j]) {
				t.Fatalf("duplicate centroids %v", centroids[i])
			}
		}
	}
}

func TestSameVec(t *testing.T) {
	negZero := math.Copysign(0, -1)
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2}, []float64{1, 2}, true},
		{[]float64{0}, []float64{negZero}, true},
		{[]float64{1, 2}, []float64{1, 3}, false},
		{[]float64{1}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := sameVec(c.a, c.b); got != c.want {
			t.Errorf("sameVec(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
