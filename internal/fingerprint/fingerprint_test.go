package fingerprint

import (
	"math"
	"testing"
)

func TestDeterministicAndOrderSensitive(t *testing.T) {
	digest := func(feed func(*Hasher)) string {
		h := New()
		feed(h)
		return h.Sum()
	}
	a := digest(func(h *Hasher) { h.Int(1); h.Int(2); h.String("x") })
	b := digest(func(h *Hasher) { h.Int(1); h.Int(2); h.String("x") })
	if a != b {
		t.Fatalf("same fields, different digests: %s vs %s", a, b)
	}
	c := digest(func(h *Hasher) { h.Int(2); h.Int(1); h.String("x") })
	if a == c {
		t.Fatal("field order did not change the digest")
	}
}

func TestFloatBitExactness(t *testing.T) {
	digest := func(v float64) string {
		h := New()
		h.Float64(v)
		return h.Sum()
	}
	if digest(1.0) == digest(1.0+1e-9) {
		t.Fatal("nearby floats collided")
	}
	// All NaN payloads hash alike; +0 and -0 do not.
	if digest(math.NaN()) != digest(math.Float64frombits(0x7FF8000000000001)) {
		t.Fatal("NaN payloads hash differently")
	}
	if digest(0.0) == digest(math.Copysign(0, -1)) {
		t.Fatal("+0 and -0 collided")
	}
}

func TestSliceLengthPrefixed(t *testing.T) {
	h1 := New()
	h1.Ints([]int{1, 2})
	h1.Ints(nil)
	h2 := New()
	h2.Ints([]int{1})
	h2.Ints([]int{2})
	if h1.Sum() == h2.Sum() {
		t.Fatal("slice boundaries not captured")
	}
}
