// Package fingerprint builds short deterministic digests of structured
// results. The self-check harness (internal/invariant) compares pipeline
// outputs across metamorphic variants — permuted binary order, different
// worker-pool sizes — by fingerprint: two results are treated as
// bit-identical exactly when their digests match, with float fields
// hashed by their IEEE-754 bit patterns so "close" never passes for
// "equal".
package fingerprint

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
)

// Hasher accumulates typed fields into an FNV-1a digest. Field order
// matters; writers must feed fields in a fixed documented order. The
// zero value is not usable — call New.
type Hasher struct {
	h   hash.Hash64
	buf [8]byte
}

// New returns an empty hasher.
func New() *Hasher {
	return &Hasher{h: fnv.New64a()}
}

// Uint64 mixes one 64-bit value.
func (h *Hasher) Uint64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	_, _ = h.h.Write(h.buf[:])
}

// Int mixes one signed integer.
func (h *Hasher) Int(v int) { h.Uint64(uint64(int64(v))) }

// Float64 mixes one float by its exact bit pattern (NaNs collapse to a
// single canonical pattern so a NaN-producing bug still fingerprints
// deterministically).
func (h *Hasher) Float64(v float64) {
	bits := math.Float64bits(v)
	if v != v {
		bits = math.Float64bits(math.NaN())
	}
	h.Uint64(bits)
}

// String mixes a length-prefixed string.
func (h *Hasher) String(s string) {
	h.Int(len(s))
	_, _ = h.h.Write([]byte(s))
}

// Ints mixes a length-prefixed int slice.
func (h *Hasher) Ints(vs []int) {
	h.Int(len(vs))
	for _, v := range vs {
		h.Int(v)
	}
}

// Float64s mixes a length-prefixed float slice.
func (h *Hasher) Float64s(vs []float64) {
	h.Int(len(vs))
	for _, v := range vs {
		h.Float64(v)
	}
}

// Sum returns the digest as a fixed-width hex string.
func (h *Hasher) Sum() string {
	return fmt.Sprintf("%016x", h.h.Sum64())
}
