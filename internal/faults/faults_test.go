package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsFree(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Fatal("empty context returned an injector")
	}
	for i := 0; i < 100; i++ {
		if err := Hit(ctx, "profile"); err != nil {
			t.Fatalf("nil injector injected: %v", err)
		}
	}
	var in *Injector
	if in.Injected() != 0 || in.Rules() != nil {
		t.Fatal("nil injector reported state")
	}
}

func TestErrorFaultFiresOnExactInvocation(t *testing.T) {
	in := NewInjector(Rule{Stage: "profile", Index: 2, Kind: KindError})
	ctx := With(context.Background(), in)
	for i := 0; i < 5; i++ {
		err := Hit(ctx, "profile")
		if i == 2 {
			var ie *InjectedError
			if !errors.As(err, &ie) {
				t.Fatalf("invocation 2: got %v, want *InjectedError", err)
			}
			if ie.Stage != "profile" || ie.Index != 2 || ie.Kind != KindError {
				t.Fatalf("wrong attribution: %+v", ie)
			}
			continue
		}
		if err != nil {
			t.Fatalf("invocation %d injected: %v", i, err)
		}
	}
	// Other stages share nothing with the addressed one.
	if err := Hit(ctx, "mapping"); err != nil {
		t.Fatalf("unaddressed stage injected: %v", err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestPanicFaultPanicsWithInjectedError(t *testing.T) {
	in := NewInjector(Rule{Stage: "clustering.task", Index: 0, Kind: KindPanic})
	ctx := With(context.Background(), in)
	defer func() {
		r := recover()
		ie, ok := r.(*InjectedError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *InjectedError", r, r)
		}
		if ie.Kind != KindPanic || !Injected(ie) {
			t.Fatalf("wrong panic value: %+v", ie)
		}
	}()
	_ = Hit(ctx, "clustering.task")
	t.Fatal("panic fault did not panic")
}

func TestHangFaultWaitsForContext(t *testing.T) {
	in := NewInjector(Rule{Stage: "vli", Index: 0, Kind: KindHang})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := Hit(With(ctx, in), "vli")
	if !Injected(err) {
		t.Fatalf("hang returned %v, want injected error", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang error %v does not wrap the context error", err)
	}
}

func TestDelayFaultSucceedsAfterStall(t *testing.T) {
	in := NewInjector(Rule{Stage: "compile", Index: 0, Kind: KindDelay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := Hit(With(context.Background(), in), "compile"); err != nil {
		t.Fatalf("delay fault errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delay fault returned after %v, want >= 5ms", elapsed)
	}
}

func TestRandomPlanIsDeterministicAndCollisionFree(t *testing.T) {
	stages := []string{"compile", "profile", "profile.task", "mapping", "clustering"}
	a := RandomPlan("chaos/1/0", stages, 12)
	b := RandomPlan("chaos/1/0", stages, 12)
	if len(a) != 12 {
		t.Fatalf("plan has %d rules, want 12", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %v vs %v", i, a[i], b[i])
		}
		key := slotKey(a[i].Stage, a[i].Index)
		if seen[key] {
			t.Fatalf("duplicate slot %v", a[i])
		}
		seen[key] = true
	}
	if c := RandomPlan("chaos/1/1", stages, 12); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different keys produced the same plan prefix")
	}
}

func TestParseRulesRoundTrip(t *testing.T) {
	rules, err := ParseRules("profile@0:error, clustering.task@2:panic,vli@1:delay:25ms,evaluate@0:hang")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Stage: "profile", Index: 0, Kind: KindError},
		{Stage: "clustering.task", Index: 2, Kind: KindPanic},
		{Stage: "vli", Index: 1, Kind: KindDelay, Delay: 25 * time.Millisecond},
		{Stage: "evaluate", Index: 0, Kind: KindHang},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %v, want %v", i, rules[i], want[i])
		}
		back, err := ParseRules(want[i].String())
		if err != nil || len(back) != 1 || back[0] != want[i] {
			t.Fatalf("rule %v does not round-trip through String(): %v %v", want[i], back, err)
		}
	}
	for _, bad := range []string{"profile", "@0:error", "profile@x:error", "profile@0:boom", "profile@0:error:5ms", "profile@-1:error"} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) succeeded, want error", bad)
		}
	}
}
