// Package faults is a deterministic fault injector for exercising the
// pipeline's failure paths. An Injector carries a schedule of rules —
// each addressed to one invocation of one named stage hook — through a
// context.Context; instrumented code calls Hit(ctx, stage) at stage
// boundaries and the injector decides whether that invocation fails,
// panics, stalls, or hangs.
//
// The design mirrors internal/obs: everything is nil-safe, so a context
// without an injector pays one context lookup and nothing else — the
// production path has no build tags, no globals, and no cost beyond that
// lookup. Schedules are deterministic: RandomPlan derives the whole plan
// from a string key via internal/xrand, so the same key always injects
// the same faults, which is what lets `xbsim chaos` assert that a
// faulted-and-retried run is bit-identical to a fault-free one.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xbsim/internal/obs"
	"xbsim/internal/xrand"
)

// Kind is the failure mode a rule injects.
type Kind int

const (
	// KindError makes the hook return a transient *InjectedError.
	KindError Kind = iota
	// KindPanic makes the hook panic with a *InjectedError value; the
	// worker pool's panic isolation converts it into a *pool.PanicError
	// attributed to the panicking task.
	KindPanic
	// KindDelay makes the hook sleep for the rule's Delay, then succeed.
	KindDelay
	// KindHang makes the hook block until the context is done — the way
	// to exercise per-stage deadlines (experiment.Config.StageTimeout).
	KindHang
)

// String returns the kind's flag-syntax name.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindHang:
		return "hang"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// parseKind is the inverse of Kind.String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return KindError, nil
	case "panic":
		return KindPanic, nil
	case "delay":
		return KindDelay, nil
	case "hang":
		return KindHang, nil
	}
	return 0, fmt.Errorf("faults: unknown kind %q (want error, panic, delay, or hang)", s)
}

// Rule injects one fault: the Index-th invocation (0-based) of the named
// stage hook fires with the given kind. A rule fires at most once.
type Rule struct {
	// Stage names the hook (e.g. "profile", "clustering.task").
	Stage string
	// Index is the invocation of that hook the fault fires on.
	Index int
	// Kind is the failure mode.
	Kind Kind
	// Delay is the stall duration for KindDelay rules.
	Delay time.Duration
}

// String renders the rule in ParseRules syntax.
func (r Rule) String() string {
	s := fmt.Sprintf("%s@%d:%s", r.Stage, r.Index, r.Kind)
	if r.Kind == KindDelay {
		s += ":" + r.Delay.String()
	}
	return s
}

// InjectedError is the typed error every injected fault surfaces as.
// Error-kind rules return it, panic-kind rules panic with it, and
// hang-kind rules wrap the context error in it — so one errors.As check
// identifies "this failure was injected" across all kinds, including
// through a pool.PanicError and errors.Join.
type InjectedError struct {
	// Stage and Index address the invocation that fired.
	Stage string
	Index int
	// Kind is the injected failure mode.
	Kind Kind
	// err is the underlying cause for hang faults (the context error).
	err error
}

// Error implements error.
func (e *InjectedError) Error() string {
	msg := fmt.Sprintf("injected %s fault at %s invocation %d", e.Kind, e.Stage, e.Index)
	if e.err != nil {
		msg += ": " + e.err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause (hang faults wrap ctx.Err()).
func (e *InjectedError) Unwrap() error { return e.err }

// Injected reports whether an injected fault is anywhere in err's tree.
func Injected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// Injector holds a fault schedule and the per-stage invocation counters
// that address it. A nil *Injector is valid and injects nothing.
type Injector struct {
	mu sync.Mutex
	// rules maps "stage\x00index" to the scheduled rule.
	rules map[string]Rule
	// hits counts invocations per stage hook.
	hits map[string]int
	// injected counts rules that fired.
	injected int
}

// NewInjector builds an injector from a schedule. Later rules on the
// same (stage, index) slot override earlier ones.
func NewInjector(rules ...Rule) *Injector {
	in := &Injector{rules: make(map[string]Rule, len(rules)), hits: map[string]int{}}
	for _, r := range rules {
		in.rules[slotKey(r.Stage, r.Index)] = r
	}
	return in
}

func slotKey(stage string, index int) string {
	return stage + "\x00" + strconv.Itoa(index)
}

// Injected returns the number of rules that have fired so far.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Rules returns the schedule sorted by (stage, index), for reporting.
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := make([]Rule, 0, len(in.rules))
	for _, r := range in.rules {
		out = append(out, r)
	}
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// ctxKey keys the Injector in a context.
type ctxKey struct{}

// With returns a context carrying the injector. A nil injector returns
// ctx unchanged.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// From returns the context's injector, or nil when none is attached.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Hit marks one invocation of the named stage hook on the context's
// injector. Without an injector it costs one context lookup and returns
// nil. With one, it advances the stage's invocation counter and fires
// the matching rule, if any: error faults return a *InjectedError, panic
// faults panic with one, delay faults stall and then succeed, and hang
// faults block until ctx is done and return its error wrapped in a
// *InjectedError.
func Hit(ctx context.Context, stage string) error {
	return From(ctx).hit(ctx, stage)
}

func (in *Injector) hit(ctx context.Context, stage string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	idx := in.hits[stage]
	in.hits[stage] = idx + 1
	rule, ok := in.rules[slotKey(stage, idx)]
	if ok {
		in.injected++
	}
	in.mu.Unlock()
	if !ok {
		return nil
	}
	// Fired faults are observable per stage hook (so chaos runs show
	// where the schedule landed) and as a flight-recorder event.
	o := obs.From(ctx)
	o.Counter("pipeline.faults_injected").Inc()
	o.Counter("pipeline.faults_injected." + stage).Inc()
	o.Emit(obs.PipelineEvent{
		Kind: "fault", Stage: stage,
		Detail: fmt.Sprintf("%s fault at invocation %d", rule.Kind, idx),
	})
	ie := &InjectedError{Stage: stage, Index: idx, Kind: rule.Kind}
	switch rule.Kind {
	case KindPanic:
		panic(ie)
	case KindDelay:
		t := time.NewTimer(rule.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			ie.err = ctx.Err()
			return ie
		}
	case KindHang:
		<-ctx.Done()
		ie.err = ctx.Err()
		return ie
	}
	return ie
}

// RandomPlan derives a deterministic schedule of n faults from a string
// key: the same (key, stages, n) always yields the same plan. Kinds are
// weighted toward errors and panics (the retryable modes); delays are
// short and hangs rare, since a hang costs a full stage deadline of wall
// clock. Slot collisions resolve to the next free invocation index, so
// the plan always holds exactly n rules.
func RandomPlan(key string, stages []string, n int) []Rule {
	rng := xrand.New("faults/" + key)
	taken := map[string]bool{}
	plan := make([]Rule, 0, n)
	weights := []float64{0.45, 0.25, 0.2, 0.1} // error, panic, delay, hang
	for i := 0; i < n; i++ {
		stage := stages[rng.Intn(len(stages))]
		idx := rng.Intn(4)
		for taken[slotKey(stage, idx)] {
			idx++
		}
		taken[slotKey(stage, idx)] = true
		r := Rule{Stage: stage, Index: idx, Kind: Kind(rng.Pick(weights))}
		if r.Kind == KindDelay {
			r.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		}
		plan = append(plan, r)
	}
	return plan
}

// ParseRules parses a comma-separated explicit schedule, each element
// "stage@index:kind" with an optional ":duration" for delay faults, e.g.
// "profile@0:error,clustering.task@2:panic,vli@0:delay:25ms".
func ParseRules(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at := strings.IndexByte(part, '@')
		if at < 1 {
			return nil, fmt.Errorf("faults: rule %q: want stage@index:kind", part)
		}
		rest := strings.SplitN(part[at+1:], ":", 3)
		if len(rest) < 2 {
			return nil, fmt.Errorf("faults: rule %q: want stage@index:kind", part)
		}
		idx, err := strconv.Atoi(rest[0])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("faults: rule %q: bad invocation index %q", part, rest[0])
		}
		kind, err := parseKind(rest[1])
		if err != nil {
			return nil, err
		}
		r := Rule{Stage: part[:at], Index: idx, Kind: kind}
		if kind == KindDelay {
			r.Delay = 5 * time.Millisecond
			if len(rest) == 3 {
				d, err := time.ParseDuration(rest[2])
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: rule %q: bad delay %q", part, rest[2])
				}
				r.Delay = d
			}
		} else if len(rest) == 3 {
			return nil, fmt.Errorf("faults: rule %q: duration only applies to delay faults", part)
		}
		rules = append(rules, r)
	}
	return rules, nil
}
