package mapping

import (
	"strings"
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/profile"
	"xbsim/internal/program"
)

var refInput = program.Input{Name: "ref", Seed: 31337}

// profileAll compiles all four targets and profiles each.
func profileAll(t testing.TB, name string, targetOps uint64) []*profile.Profile {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: targetOps})
	if err != nil {
		t.Fatal(err)
	}
	bins, err := compiler.CompileAll(p)
	if err != nil {
		t.Fatal(err)
	}
	profiles := make([]*profile.Profile, len(bins))
	for i, b := range bins {
		profiles[i], err = profile.Collect(b, refInput)
		if err != nil {
			t.Fatal(err)
		}
	}
	return profiles
}

func findAll(t testing.TB, name string) *Result {
	t.Helper()
	r, err := Find(profileAll(t, name, 200_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFindValidation(t *testing.T) {
	profiles := profileAll(t, "gzip", 150_000)
	if _, err := Find(profiles[:1], Options{}); err == nil {
		t.Error("single profile accepted")
	}
	other := profileAll(t, "art", 150_000)
	if _, err := Find([]*profile.Profile{profiles[0], other[0]}, Options{}); err == nil {
		t.Error("mixed programs accepted")
	}
	bad, err := profile.Collect(profiles[1].Binary, program.Input{Name: "other", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Find([]*profile.Profile{profiles[0], bad}, Options{}); err == nil {
		t.Error("mixed inputs accepted")
	}
}

func TestSurvivingSymbolsAreMappable(t *testing.T) {
	r := findAll(t, "gzip")
	// Every symbol present in all four binaries must be a mappable point.
	common := map[string]bool{}
	for _, s := range r.Binaries[0].Symbols {
		common[s.Symbol] = true
	}
	for _, b := range r.Binaries[1:] {
		next := map[string]bool{}
		for _, s := range b.Symbols {
			if common[s.Symbol] {
				next[s.Symbol] = true
			}
		}
		common = next
	}
	mapped := map[string]bool{}
	for _, pt := range r.Points {
		if pt.Kind == compiler.MarkerProcEntry {
			mapped[pt.Name] = true
		}
	}
	for sym := range common {
		if !mapped[sym] {
			t.Errorf("symbol %s present everywhere but not mapped", sym)
		}
	}
	if !mapped["main"] {
		t.Error("main not mapped")
	}
}

func TestInlinedProcsNotMappableAsProcs(t *testing.T) {
	r := findAll(t, "gcc")
	for _, pt := range r.Points {
		if pt.Kind == compiler.MarkerProcEntry && strings.HasPrefix(pt.Name, "helper_") {
			t.Errorf("inlined helper %s mapped as procedure entry", pt.Name)
		}
	}
	if r.Diag.ProcsUnmatched == 0 {
		t.Error("expected unmatched procs (inlined helpers)")
	}
}

// TestMappedPointsAreSemanticallyCorrect uses ground truth (SourceLoopID)
// to verify that every mapped loop point refers to the same source loop in
// every binary — the property the whole method stands on.
func TestMappedPointsAreSemanticallyCorrect(t *testing.T) {
	for _, name := range []string{"gzip", "gcc", "applu", "swim"} {
		r := findAll(t, name)
		for _, pt := range r.Points {
			if pt.Kind == compiler.MarkerProcEntry {
				continue
			}
			want := r.Binaries[0].Markers[pt.Markers[0]].SourceLoopID
			for bi := 1; bi < len(r.Binaries); bi++ {
				got := r.Binaries[bi].Markers[pt.Markers[bi]].SourceLoopID
				if got != want {
					t.Fatalf("%s: point %s maps source loop %d in %s but %d in %s",
						name, pt.Name, want, r.Binaries[0].Name, got, r.Binaries[bi].Name)
				}
			}
		}
	}
}

func TestMappedPointKindsConsistent(t *testing.T) {
	r := findAll(t, "vortex")
	for _, pt := range r.Points {
		for bi, m := range pt.Markers {
			if r.Binaries[bi].Markers[m].Kind != pt.Kind {
				t.Fatalf("point %s: marker kind mismatch in binary %d", pt.Name, bi)
			}
		}
	}
}

func TestUnrolledLoopBodiesNotMappableButEntriesAre(t *testing.T) {
	// swim's hot inner loops are unrolled at O2: their back edges must not
	// be mappable, but their entries must be.
	r := findAll(t, "swim")
	entries, bodies := 0, 0
	for _, pt := range r.Points {
		switch pt.Kind {
		case compiler.MarkerLoopEntry:
			entries++
		case compiler.MarkerLoopBody:
			bodies++
		}
	}
	if entries == 0 {
		t.Fatal("no loop entries mapped")
	}
	if bodies >= entries {
		t.Fatalf("expected fewer mappable bodies (%d) than entries (%d) due to unrolling",
			bodies, entries)
	}
	// Specifically: no mapped body point may correspond to an unrolled
	// loop (latch count at O2 is ~T/4, which cannot equal O0's T).
	for _, pt := range r.Points {
		if pt.Kind != compiler.MarkerLoopBody {
			continue
		}
		for bi, b := range r.Binaries {
			if b.Target.Opt != compiler.O2 {
				continue
			}
			_ = bi
		}
	}
}

func TestInlineHeuristicMapsHelperLoops(t *testing.T) {
	// crafty has 3 helpers (single call site each, distinct trip counts,
	// no ambiguous pair): their loops lose line info at O2 but must be
	// recovered by the count heuristic.
	r := findAll(t, "crafty")
	if r.Diag.HeuristicMatched == 0 {
		t.Fatal("heuristic mapped nothing in crafty")
	}
	heuristicPoints := 0
	for _, pt := range r.Points {
		if pt.ViaHeuristic {
			heuristicPoints++
			if pt.Kind != compiler.MarkerLoopEntry {
				t.Fatalf("heuristic mapped a %v point", pt.Kind)
			}
		}
	}
	if heuristicPoints != r.Diag.HeuristicMatched {
		t.Fatalf("diag says %d heuristic matches, points say %d",
			r.Diag.HeuristicMatched, heuristicPoints)
	}
}

func TestAmbiguousPairStaysUnmapped(t *testing.T) {
	// gcc's helper_0/helper_1 share trip counts and call counts (N == M):
	// the heuristic must refuse to map them.
	r := findAll(t, "gcc")
	if r.Diag.HeuristicAmbiguous == 0 {
		t.Fatal("expected ambiguous heuristic cases in gcc")
	}
	// Find the source loop IDs of the ambiguous helpers.
	prog := r.Binaries[0].Program
	ambiguousLoops := map[int]bool{}
	for _, pname := range []string{"helper_0", "helper_1"} {
		proc := prog.ProcByName(pname)
		if proc == nil {
			t.Fatalf("gcc lacks %s", pname)
		}
		l, ok := proc.Body[0].(*program.Loop)
		if !ok {
			t.Fatalf("%s body is not a loop", pname)
		}
		ambiguousLoops[l.ID] = true
	}
	for _, pt := range r.Points {
		if pt.Kind == compiler.MarkerProcEntry {
			continue
		}
		if ambiguousLoops[r.Binaries[0].Markers[pt.Markers[0]].SourceLoopID] {
			t.Fatalf("ambiguous helper loop mapped via point %s", pt.Name)
		}
	}
}

func TestAppluHasPoorLoopCoverage(t *testing.T) {
	// applu's solvers are inlined + distributed and its behavior loops
	// restructured: the optimized binaries must have a large fraction of
	// unmappable loops, far worse than a well-behaved benchmark.
	applu := findAll(t, "applu")
	gzip := findAll(t, "gzip")
	frac := func(r *Result) float64 {
		// Look at the O2 binaries (indices 1 and 3 in AllTargets order).
		un := r.Diag.UnmappedLoopsPerBinary[1] + r.Diag.UnmappedLoopsPerBinary[3]
		tot := r.Diag.LoopsPerBinary[1] + r.Diag.LoopsPerBinary[3]
		return float64(un) / float64(tot)
	}
	fa, fg := frac(applu), frac(gzip)
	if fa <= fg {
		t.Fatalf("applu unmapped fraction %.2f not worse than gzip %.2f", fa, fg)
	}
	if fa < 0.5 {
		t.Fatalf("applu unmapped fraction %.2f too low for the Figure-2 story", fa)
	}
}

func TestPointsDeterministicallyOrdered(t *testing.T) {
	a := findAll(t, "twolf")
	b := findAll(t, "twolf")
	if len(a.Points) != len(b.Points) {
		t.Fatal("point counts differ across runs")
	}
	for i := range a.Points {
		if a.Points[i].Name != b.Points[i].Name || a.Points[i].Kind != b.Points[i].Kind {
			t.Fatalf("point %d differs across runs", i)
		}
	}
}

func TestMarkersForAndPointOfMarker(t *testing.T) {
	r := findAll(t, "art")
	for bi := range r.Binaries {
		markers := r.MarkersFor(bi)
		if len(markers) != len(r.Points) {
			t.Fatalf("binary %d: %d markers for %d points", bi, len(markers), len(r.Points))
		}
		for pi, m := range markers {
			got, ok := r.PointOfMarker(bi, m)
			if !ok || got != pi {
				t.Fatalf("binary %d marker %d: PointOfMarker = %d,%v want %d", bi, m, got, ok, pi)
			}
		}
	}
	if _, ok := r.PointOfMarker(0, -5); ok {
		t.Fatal("resolved nonexistent marker")
	}
}

func TestTranslateBoundaryRoundTrip(t *testing.T) {
	r := findAll(t, "eon")
	bd := profile.Boundary{Marker: r.Points[3].Markers[0], Count: 17}
	for to := 1; to < len(r.Binaries); to++ {
		tr, err := r.TranslateBoundary(0, to, bd)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Count != bd.Count {
			t.Fatal("count changed in translation")
		}
		back, err := r.TranslateBoundary(to, 0, tr)
		if err != nil {
			t.Fatal(err)
		}
		if back != bd {
			t.Fatalf("round trip changed boundary: %+v -> %+v", bd, back)
		}
	}
	// Sentinels pass through.
	for _, s := range []profile.Boundary{profile.BoundaryStart, profile.BoundaryEnd} {
		got, err := r.TranslateBoundary(0, 1, s)
		if err != nil || got != s {
			t.Fatalf("sentinel %+v mis-translated to %+v (%v)", s, got, err)
		}
	}
	// Non-mappable marker must error.
	nonMappable := -1
	for m := range r.Binaries[0].Markers {
		if _, ok := r.PointOfMarker(0, m); !ok {
			nonMappable = m
			break
		}
	}
	if nonMappable >= 0 {
		if _, err := r.TranslateBoundary(0, 1, profile.Boundary{Marker: nonMappable, Count: 1}); err == nil {
			t.Fatal("non-mappable marker translated")
		}
	}
	if _, err := r.TranslateEnds(0, 1, []profile.Boundary{bd, profile.BoundaryEnd}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDisableMatchers(t *testing.T) {
	profiles := profileAll(t, "gzip", 150_000)
	full, err := Find(profiles, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noBodies, err := Find(profiles, Options{DisableLoopBodies: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range noBodies.Points {
		if pt.Kind == compiler.MarkerLoopBody {
			t.Fatal("body point despite DisableLoopBodies")
		}
	}
	procsOnly, err := Find(profiles, Options{
		DisableLoopBodies: true, DisableLoopEntries: true, DisableInlineHeuristic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range procsOnly.Points {
		if pt.Kind != compiler.MarkerProcEntry {
			t.Fatal("non-proc point despite all loop matchers disabled")
		}
	}
	if len(procsOnly.Points) >= len(noBodies.Points) || len(noBodies.Points) >= len(full.Points) {
		t.Fatalf("point counts not strictly growing: %d, %d, %d",
			len(procsOnly.Points), len(noBodies.Points), len(full.Points))
	}
	noHeur, err := Find(profiles, Options{DisableInlineHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range noHeur.Points {
		if pt.ViaHeuristic {
			t.Fatal("heuristic point despite DisableInlineHeuristic")
		}
	}
}

// TestMappableMarkersFireEqually runs every binary and verifies each
// mapped point fires exactly Count times in each binary — the guarantee
// that lets (marker, count) pairs delimit regions across binaries.
func TestMappableMarkersFireEqually(t *testing.T) {
	r := findAll(t, "perlbmk")
	for bi, bin := range r.Binaries {
		mc := exec.NewMarkerCounter(bin)
		if err := exec.Run(bin, refInput, mc); err != nil {
			t.Fatal(err)
		}
		for _, pt := range r.Points {
			if got := mc.Counts[pt.Markers[bi]]; got != pt.Count {
				t.Fatalf("point %s fired %d times in %s, recorded count %d",
					pt.Name, got, bin.Name, pt.Count)
			}
		}
	}
}
