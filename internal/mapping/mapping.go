// Package mapping implements the paper's core contribution: finding
// mappable points — instructions that mark the exact same point of
// execution in every binary compiled from one source program (§3.2.2).
//
// Mappable points come from three matchers, in decreasing strength:
//
//   - Procedure entries, matched by symbol name. The execution count must
//     be identical in all binaries (it is, when the symbol survived —
//     inlining both removes symbols and changes residual counts).
//   - Loop entries and loop bodies (back edges), matched by debug line
//     number, requiring a unique loop at that line per binary and equal
//     execution counts everywhere. Optimizations break this selectively:
//     unrolling changes back-edge counts (the entry stays mappable);
//     restructuring and inlining destroy line info outright.
//   - The inlined-loop heuristic (§3.3): a still-unmatched loop with line
//     info is matched against line-less loops in the other binaries by its
//     entry (call) count, and only when that count identifies exactly one
//     candidate. The paper's N == M case — two inlined loops with equal
//     counts — is reported as ambiguous and left unmapped.
//
// The result is an ordered list of Points, each carrying the binary-local
// marker ID per binary, plus translation helpers for moving interval
// boundaries between binaries (§3.2.5: a simulation point is a
// (marker ID, execution count) pair valid in every binary).
package mapping

import (
	"context"
	"fmt"
	"sort"

	"xbsim/internal/compiler"
	"xbsim/internal/fingerprint"
	"xbsim/internal/obs"
	"xbsim/internal/profile"
)

// Point is one mappable point: the same semantic event locatable in every
// binary.
type Point struct {
	// Kind is the marker kind (procedure entry, loop entry, loop body).
	Kind compiler.MarkerKind
	// Name describes the point: the procedure symbol, "L<line>" for loops
	// matched by line, or "inlined(L<line>)" for heuristic matches.
	Name string
	// Count is the point's execution count, identical in all binaries.
	Count uint64
	// Markers[b] is the binary-local marker ID in binary b.
	Markers []int
	// ViaHeuristic is true when the match came from the inlined-loop
	// count heuristic rather than symbol/line matching.
	ViaHeuristic bool
}

// Diagnostics summarizes what could and could not be mapped.
type Diagnostics struct {
	// LoopsPerBinary is the number of loop pieces profiled per binary.
	LoopsPerBinary []int
	// UnmappedLoopsPerBinary counts loop pieces with no mappable entry
	// marker per binary.
	UnmappedLoopsPerBinary []int
	// HeuristicMatched counts loops mapped by the inlined-loop heuristic.
	HeuristicMatched int
	// HeuristicAmbiguous counts loops the heuristic had to give up on
	// because multiple candidates shared the count (the N == M case).
	HeuristicAmbiguous int
	// ProcsUnmatched counts symbols absent from at least one binary.
	ProcsUnmatched int
}

// Options tunes the matcher; the zero value enables everything (the
// paper's configuration).
type Options struct {
	// DisableLoopEntries excludes loop-entry markers.
	DisableLoopEntries bool
	// DisableLoopBodies excludes loop back-edge markers.
	DisableLoopBodies bool
	// DisableInlineHeuristic turns off §3.3 inlined-loop matching.
	DisableInlineHeuristic bool
}

// Result is the mappable point set across a list of binaries.
type Result struct {
	// Binaries are the compared binaries, in input order.
	Binaries []*compiler.Binary
	// Points is the mappable point list, deterministically ordered.
	Points []Point
	// Diag summarizes mapping coverage.
	Diag Diagnostics

	// markerToPoint[b] maps binary b's local marker ID to point index.
	markerToPoint []map[int]int
}

// Find computes the mappable points across the profiled binaries. All
// profiles must be of binaries of the same program on the same input.
func Find(profiles []*profile.Profile, opts Options) (*Result, error) {
	return FindCtx(context.Background(), profiles, opts)
}

// FindCtx is Find with observability: with an observer on the context it
// records a "stage.mapping" span and publishes mappable-marker counters
// (mapping.points, mapping.heuristic_matched, mapping.heuristic_ambiguous,
// mapping.procs_unmatched).
func FindCtx(ctx context.Context, profiles []*profile.Profile, opts Options) (*Result, error) {
	_, span := obs.StartSpan(ctx, "stage.mapping")
	defer span.End()
	if len(profiles) < 2 {
		return nil, fmt.Errorf("mapping: need at least 2 binaries, got %d", len(profiles))
	}
	name := profiles[0].Binary.Program.Name
	input := profiles[0].Input
	for _, p := range profiles[1:] {
		if p.Binary.Program.Name != name {
			return nil, fmt.Errorf("mapping: binaries of different programs (%s vs %s)",
				name, p.Binary.Program.Name)
		}
		if p.Input != input {
			return nil, fmt.Errorf("mapping: profiles use different inputs")
		}
	}

	r := &Result{}
	for _, p := range profiles {
		r.Binaries = append(r.Binaries, p.Binary)
	}

	matchProcs(profiles, r)
	loopMatched := matchLoopsByLine(profiles, r, opts)
	if !opts.DisableInlineHeuristic && !opts.DisableLoopEntries {
		matchInlinedLoops(profiles, r, loopMatched)
	}
	fillDiagnostics(profiles, r, loopMatched)
	sortPoints(r)
	r.buildIndex()
	if o := obs.From(ctx); o != nil {
		span.Annotate(profiles[0].Binary.Program.Name)
		o.Counter("mapping.points").Add(uint64(len(r.Points)))
		o.Counter("mapping.heuristic_matched").Add(uint64(r.Diag.HeuristicMatched))
		o.Counter("mapping.heuristic_ambiguous").Add(uint64(r.Diag.HeuristicAmbiguous))
		o.Counter("mapping.procs_unmatched").Add(uint64(r.Diag.ProcsUnmatched))
	}
	return r, nil
}

// matchProcs adds procedure-entry points for symbols present in every
// binary with identical counts.
func matchProcs(profiles []*profile.Profile, r *Result) {
	ref := profiles[0]
	for _, rp := range ref.Procs {
		markers := make([]int, len(profiles))
		markers[0] = rp.Marker
		ok := true
		for bi := 1; bi < len(profiles); bi++ {
			pp := profiles[bi].ProcBySymbol(rp.Symbol)
			if pp == nil || pp.Count != rp.Count {
				ok = false
				break
			}
			markers[bi] = pp.Marker
		}
		if !ok {
			r.Diag.ProcsUnmatched++
			continue
		}
		r.Points = append(r.Points, Point{
			Kind:    compiler.MarkerProcEntry,
			Name:    rp.Symbol,
			Count:   rp.Count,
			Markers: markers,
		})
	}
}

// lineKey indexes loops by debug line; only loops whose line is unique in
// their binary are eligible for line matching.
func lineIndex(p *profile.Profile) map[int]*profile.LoopProfile {
	byLine := map[int]*profile.LoopProfile{}
	dup := map[int]bool{}
	for i := range p.Loops {
		l := &p.Loops[i]
		if l.Line == 0 {
			continue
		}
		if _, seen := byLine[l.Line]; seen {
			dup[l.Line] = true
			continue
		}
		byLine[l.Line] = l
	}
	for line := range dup {
		delete(byLine, line)
	}
	return byLine
}

// matchLoopsByLine adds loop-entry and loop-body points matched by (line,
// count) across all binaries. It returns, per binary, the set of loop
// pieces (by entry marker) that obtained a mappable entry point.
func matchLoopsByLine(profiles []*profile.Profile, r *Result, opts Options) []map[int]bool {
	matched := make([]map[int]bool, len(profiles))
	for i := range matched {
		matched[i] = map[int]bool{}
	}
	indices := make([]map[int]*profile.LoopProfile, len(profiles))
	for i, p := range profiles {
		indices[i] = lineIndex(p)
	}
	// Iterate the reference binary's lines in sorted order for
	// determinism.
	var lines []int
	for line := range indices[0] {
		lines = append(lines, line)
	}
	sort.Ints(lines)

	for _, line := range lines {
		refLoop := indices[0][line]
		loops := make([]*profile.LoopProfile, len(profiles))
		loops[0] = refLoop
		present := true
		for bi := 1; bi < len(profiles); bi++ {
			l, ok := indices[bi][line]
			if !ok {
				present = false
				break
			}
			loops[bi] = l
		}
		if !present {
			continue
		}
		// Entry markers: counts must agree everywhere.
		if !opts.DisableLoopEntries {
			ok := true
			for _, l := range loops {
				if l.EntryCount != refLoop.EntryCount {
					ok = false
					break
				}
			}
			if ok {
				markers := make([]int, len(loops))
				for bi, l := range loops {
					markers[bi] = l.EntryMarker
					matched[bi][l.EntryMarker] = true
				}
				r.Points = append(r.Points, Point{
					Kind:    compiler.MarkerLoopEntry,
					Name:    fmt.Sprintf("L%d", line),
					Count:   refLoop.EntryCount,
					Markers: markers,
				})
			}
		}
		// Body markers: unrolling changes counts, which this check
		// rejects — precisely the paper's reason to track entries and
		// bodies separately.
		if !opts.DisableLoopBodies {
			ok := true
			for _, l := range loops {
				if l.BodyCount != refLoop.BodyCount {
					ok = false
					break
				}
			}
			if ok {
				markers := make([]int, len(loops))
				for bi, l := range loops {
					markers[bi] = l.BodyMarker
				}
				r.Points = append(r.Points, Point{
					Kind:    compiler.MarkerLoopBody,
					Name:    fmt.Sprintf("L%d", line),
					Count:   refLoop.BodyCount,
					Markers: markers,
				})
			}
		}
	}
	return matched
}

// matchInlinedLoops applies the §3.3 heuristic: a reference loop with line
// info but no line match in some binary is located there among line-less
// loops by entry (call) count, requiring a unique candidate. Only the
// entry marker is mapped (back-edge counts change under unrolling of the
// clone).
func matchInlinedLoops(profiles []*profile.Profile, r *Result, matched []map[int]bool) {
	ref := profiles[0]
	// Consider reference loops with line info whose entry marker is not
	// yet mappable.
	for i := range ref.Loops {
		refLoop := &ref.Loops[i]
		if refLoop.Line == 0 || matched[0][refLoop.EntryMarker] {
			continue
		}
		markers := make([]int, len(profiles))
		markers[0] = refLoop.EntryMarker
		ok := true
		ambiguous := false
		candidates := make([]*profile.LoopProfile, len(profiles))
		for bi := 1; bi < len(profiles); bi++ {
			p := profiles[bi]
			// Prefer an exact line+count match (e.g. the sibling
			// unoptimized binary on the other architecture).
			var found *profile.LoopProfile
			for j := range p.Loops {
				l := &p.Loops[j]
				if l.Line == refLoop.Line && l.EntryCount == refLoop.EntryCount &&
					!matched[bi][l.EntryMarker] {
					found = l
					break
				}
			}
			if found == nil {
				// Count-based search among line-less, unmatched loops.
				var hits []*profile.LoopProfile
				for j := range p.Loops {
					l := &p.Loops[j]
					if l.Line == 0 && l.EntryCount == refLoop.EntryCount &&
						!matched[bi][l.EntryMarker] {
						hits = append(hits, l)
					}
				}
				switch len(hits) {
				case 1:
					found = hits[0]
				case 0:
					ok = false
				default:
					ok = false
					ambiguous = true
				}
			}
			if !ok {
				break
			}
			candidates[bi] = found
			markers[bi] = found.EntryMarker
		}
		if !ok {
			if ambiguous {
				r.Diag.HeuristicAmbiguous++
			}
			continue
		}
		for bi := 1; bi < len(profiles); bi++ {
			matched[bi][candidates[bi].EntryMarker] = true
		}
		matched[0][refLoop.EntryMarker] = true
		r.Diag.HeuristicMatched++
		r.Points = append(r.Points, Point{
			Kind:         compiler.MarkerLoopEntry,
			Name:         fmt.Sprintf("inlined(L%d)", refLoop.Line),
			Count:        refLoop.EntryCount,
			Markers:      markers,
			ViaHeuristic: true,
		})
	}
}

func fillDiagnostics(profiles []*profile.Profile, r *Result, matched []map[int]bool) {
	r.Diag.LoopsPerBinary = make([]int, len(profiles))
	r.Diag.UnmappedLoopsPerBinary = make([]int, len(profiles))
	for bi, p := range profiles {
		r.Diag.LoopsPerBinary[bi] = len(p.Loops)
		for i := range p.Loops {
			if !matched[bi][p.Loops[i].EntryMarker] {
				r.Diag.UnmappedLoopsPerBinary[bi]++
			}
		}
	}
}

// sortPoints orders points deterministically: procedures first (by name),
// then loops by name and kind.
func sortPoints(r *Result) {
	sort.Slice(r.Points, func(i, j int) bool {
		a, b := r.Points[i], r.Points[j]
		if (a.Kind == compiler.MarkerProcEntry) != (b.Kind == compiler.MarkerProcEntry) {
			return a.Kind == compiler.MarkerProcEntry
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Kind < b.Kind
	})
}

func (r *Result) buildIndex() {
	r.markerToPoint = make([]map[int]int, len(r.Binaries))
	for bi := range r.Binaries {
		r.markerToPoint[bi] = map[int]int{}
	}
	for pi, pt := range r.Points {
		for bi, m := range pt.Markers {
			r.markerToPoint[bi][m] = pi
		}
	}
}

// MarkersFor returns the mappable binary-local marker IDs for binary b,
// usable as profile.VLICollector boundaries.
func (r *Result) MarkersFor(b int) []int {
	out := make([]int, 0, len(r.Points))
	for _, pt := range r.Points {
		out = append(out, pt.Markers[b])
	}
	return out
}

// PointOfMarker resolves binary b's local marker to a point index.
func (r *Result) PointOfMarker(b, marker int) (int, bool) {
	pi, ok := r.markerToPoint[b][marker]
	return pi, ok
}

// TranslateBoundary rewrites a boundary recorded in binary `from` into the
// marker space of binary `to`. Counts carry over unchanged because
// mappable markers fire identically in every binary. Sentinel boundaries
// (start / end of execution) pass through.
func (r *Result) TranslateBoundary(from, to int, bd profile.Boundary) (profile.Boundary, error) {
	if bd.Marker < 0 {
		return bd, nil
	}
	pi, ok := r.PointOfMarker(from, bd.Marker)
	if !ok {
		return profile.Boundary{}, fmt.Errorf(
			"mapping: marker %d of binary %s is not a mappable point", bd.Marker, r.Binaries[from].Name)
	}
	return profile.Boundary{Marker: r.Points[pi].Markers[to], Count: bd.Count}, nil
}

// FingerprintFor digests the point list as seen from binary b: each
// point's kind, name, count, heuristic flag, and b's local marker ID,
// in point order. The point order is deterministic and independent of
// the binary list order, so the self-check harness compares this digest
// across metamorphic runs that permute the non-primary binaries.
func (r *Result) FingerprintFor(b int) string {
	h := fingerprint.New()
	h.Int(len(r.Points))
	for _, pt := range r.Points {
		h.Int(int(pt.Kind))
		h.String(pt.Name)
		h.Uint64(pt.Count)
		h.Int(pt.Markers[b])
		if pt.ViaHeuristic {
			h.Int(1)
		} else {
			h.Int(0)
		}
	}
	return h.Sum()
}

// TranslateEnds rewrites a whole boundary list between binaries.
func (r *Result) TranslateEnds(from, to int, ends []profile.Boundary) ([]profile.Boundary, error) {
	out := make([]profile.Boundary, len(ends))
	for i, bd := range ends {
		t, err := r.TranslateBoundary(from, to, bd)
		if err != nil {
			return nil, fmt.Errorf("boundary %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}
