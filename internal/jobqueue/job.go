// Package jobqueue is the durable, crash-safe job queue behind `xbsim
// serve`: submitted analysis requests become content-addressed jobs
// journaled to a spool directory, scheduled over a bounded worker
// budget, and resumable across process deaths.
//
// Durability model (see DESIGN.md §17): every job state transition is
// write-ahead — the job file is atomically written into the new state's
// spool subdirectory before the old state's file is removed, so a crash
// at any instant leaves at least one valid journal entry per job, and
// recovery resolves duplicates by state precedence (done > failed >
// running > pending). A job found in running/ at startup was in flight
// when the process died; it is re-enqueued, and the per-job checkpoint
// directory makes the re-run skip every benchmark the dead run
// completed — at-least-once execution with bit-identical results, by
// the pipeline's determinism.
//
// Identity model: a job's ID is derived from the experiment
// configuration's fingerprint and the content-derived identity of the
// work (benchmark names, or program.Spec digests via Spec.Name()).
// Results are therefore content-addressed: resubmitting completed work
// is a cache hit served from the spool's results directory, across
// restarts, without running the pipeline.
package jobqueue

import (
	"fmt"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/fingerprint"
	"xbsim/internal/program"
)

// State is a job's lifecycle state; each state is one spool
// subdirectory.
type State string

const (
	// StatePending: journaled, admitted, waiting for a scheduler slot.
	StatePending State = "pending"
	// StateRunning: claimed by a scheduler slot; the pipeline is (or was,
	// if the process died) executing it.
	StateRunning State = "running"
	// StateDone: completed successfully; the result JSON is in the
	// spool's results directory and the job is a permanent cache entry.
	StateDone State = "done"
	// StateFailed: the pipeline failed (or the job's deadline expired).
	// Failed jobs are not cache entries: resubmitting the same work
	// re-enqueues it.
	StateFailed State = "failed"
)

// states in recovery-precedence order: when a crash leaves one job
// journaled in two directories, the earlier state here wins.
var states = []State{StateDone, StateFailed, StateRunning, StatePending}

// Request is the work one job carries: either named benchmarks or
// synthesized program specs (exactly one kind must be non-empty), plus
// the experiment configuration to run them under.
type Request struct {
	// Benchmarks are named benchmarks (program.Benchmarks() subset).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Specs are synthesized program specs (normalized on submit).
	Specs []program.Spec `json:"specs,omitempty"`
	// Config is the experiment configuration. Wall-clock knobs
	// (Workers, Parallelism, CheckpointDir) are overridden by the queue;
	// result-affecting knobs participate in the job's identity.
	Config experiment.Config `json:"config"`
	// TimeoutSec, when > 0, bounds the job's execution wall clock; an
	// expired job fails with the deadline error.
	TimeoutSec int `json:"timeoutSec,omitempty"`
}

// Validate rejects structurally invalid requests before they are
// admitted or journaled.
func (r *Request) Validate() error {
	if len(r.Benchmarks) == 0 && len(r.Specs) == 0 {
		return fmt.Errorf("request names no work: benchmarks and specs both empty")
	}
	if len(r.Benchmarks) > 0 && len(r.Specs) > 0 {
		return fmt.Errorf("request mixes benchmarks and specs; submit one kind per job")
	}
	if _, err := r.Config.Fingerprint(); err != nil {
		return err
	}
	return nil
}

// normalize canonicalizes the request in place: specs are normalized
// (so identity is content-derived) and the config's benchmark list is
// rewritten to the request's work, keeping the journaled config honest.
func (r *Request) normalize() {
	for i := range r.Specs {
		r.Specs[i] = r.Specs[i].Normalize()
	}
	if len(r.Benchmarks) > 0 {
		r.Config.Benchmarks = r.Benchmarks
	}
}

// ID derives the job's content-addressed identity: the experiment
// config fingerprint (defaults applied — two spellings of the same
// effective experiment coincide) crossed with the work's content
// identity. Benchmark names are identities by definition; spec
// identities are their content-derived Name() digests. Duplicate
// submissions of the same work therefore map to the same job, which is
// what makes done jobs a result cache.
func (r *Request) ID() (string, error) {
	cfgFP, err := r.Config.Fingerprint()
	if err != nil {
		return "", err
	}
	h := fingerprint.New()
	h.String(cfgFP)
	h.Int(len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		h.String(b)
	}
	h.Int(len(r.Specs))
	for _, s := range r.Specs {
		h.String(s.Name())
	}
	return "j-" + h.Sum(), nil
}

// Job is one journaled unit of work. The struct is the on-disk payload;
// State is implied by which spool subdirectory the file lives in and is
// filled in at load time.
type Job struct {
	// ID is the content-addressed job identity ("j-" + 16 hex chars).
	ID string `json:"id"`
	// Request is the submitted work, canonicalized.
	Request Request `json:"request"`
	// Submitted is the first submission's wall-clock time.
	Submitted time.Time `json:"submitted"`
	// Started/Finished bracket the (latest) execution attempt.
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Attempts counts execution attempts (recovery re-runs included).
	Attempts int `json:"attempts,omitempty"`
	// Error is the failure rendered as text (failed jobs only).
	Error string `json:"error,omitempty"`
	// SuiteFingerprint is the completed suite's digest (done jobs only) —
	// the value the chaos harness compares across crash/resume runs.
	SuiteFingerprint string `json:"suiteFingerprint,omitempty"`
	// TraceID is the end-to-end correlation ID minted (or accepted from
	// the client) at the first admission — the canonical trace every
	// event, span, and timeline row of this job hangs off. Persisted in
	// the spool record so it survives crash recovery. It does NOT
	// participate in the job's content-addressed identity: identity is
	// what the work is, a trace is who asked for it.
	TraceID string `json:"traceId,omitempty"`
	// Tenant labels the submitting tenant for per-tenant accounting
	// ("default" when the client names none).
	Tenant string `json:"tenant,omitempty"`
	// CoalescedTraces are the trace IDs of later submissions that
	// coalesced onto this job (duplicate in flight) or hit its cached
	// result — each links back to TraceID as the canonical trace.
	CoalescedTraces []string `json:"coalescedTraces,omitempty"`
	// State is the job's current lifecycle state (not serialized; the
	// spool subdirectory is the authority).
	State State `json:"-"`
}

// clone returns a copy — what the queue hands out so callers can't
// mutate journaled state (the coalesced-trace slice is copied too).
func (j *Job) clone() *Job {
	c := *j
	c.CoalescedTraces = append([]string(nil), j.CoalescedTraces...)
	return &c
}

// Submission carries per-submission metadata that does not participate
// in the job's content-addressed identity: two submissions of the same
// work share one job but keep distinct traces.
type Submission struct {
	// TraceID correlates this submission end to end; empty mints a fresh
	// obs.NewTraceID. Client-supplied values are sanitized.
	TraceID string
	// Tenant labels the submitter for per-tenant accounting (empty =
	// "default").
	Tenant string
}
