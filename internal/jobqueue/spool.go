package jobqueue

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xbsim/internal/fingerprint"
)

// Spool is the on-disk job journal: one subdirectory per lifecycle
// state holding one fingerprinted JSON file per job, a results
// directory holding completed suites' exact report JSON bytes, and a
// per-job checkpoint directory tree. All writes are atomic
// (temp + rename in the same directory), mirroring the checkpoint
// machinery, so a crash at any instant leaves whole files or no files —
// never torn ones.
//
//	<dir>/jobs/pending/<id>.json
//	<dir>/jobs/running/<id>.json
//	<dir>/jobs/done/<id>.json
//	<dir>/jobs/failed/<id>.json
//	<dir>/results/<id>.json
//	<dir>/ckpt/<id>/...
//	<dir>/journal/<id>.jsonl        per-job flight-recorder journal
//	<dir>/journal/<id>.1.jsonl      its rotated predecessor, if any
type Spool struct {
	dir string
}

// spoolVersion gates the job-file format; bump on incompatible change.
const spoolVersion = 1

// jobFile is the on-disk job record: the payload plus a recomputed-on-
// load fingerprint, so a corrupt or hand-edited record is detected and
// quarantined rather than trusted.
type jobFile struct {
	Version     int    `json:"version"`
	Job         Job    `json:"job"`
	Fingerprint string `json:"fingerprint"`
}

// OpenSpool opens (creating if needed) the spool rooted at dir.
func OpenSpool(dir string) (*Spool, error) {
	s := &Spool{dir: dir}
	for _, st := range states {
		if err := os.MkdirAll(s.stateDir(st), 0o755); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "ckpt"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "journal"), 0o755); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the spool's root directory.
func (s *Spool) Dir() string { return s.dir }

func (s *Spool) stateDir(st State) string {
	return filepath.Join(s.dir, "jobs", string(st))
}

func (s *Spool) jobPath(st State, id string) string {
	return filepath.Join(s.stateDir(st), id+".json")
}

// CheckpointDir names the job's private checkpoint directory. Per-job
// directories (on top of the experiment layer's per-config scoping)
// keep one job's checkpoint lifecycle — created on first run, reused on
// recovery — independent of every other job's.
func (s *Spool) CheckpointDir(id string) string {
	return filepath.Join(s.dir, "ckpt", id)
}

// ResultPath names the job's result file.
func (s *Spool) ResultPath(id string) string {
	return filepath.Join(s.dir, "results", id+".json")
}

// JournalPath names the job's durable flight-recorder journal — the
// JSONL event stream the per-job recorder appends to across process
// lifetimes, and the timeline reconstructor reads back. Read it with
// obs.ReadJournal, which merges the rotated generation.
func (s *Spool) JournalPath(id string) string {
	return filepath.Join(s.dir, "journal", id+".jsonl")
}

// jobFingerprint digests the job payload via its canonical JSON form.
func jobFingerprint(j *Job) (string, error) {
	data, err := json.Marshal(j)
	if err != nil {
		return "", err
	}
	h := fingerprint.New()
	h.String(string(data))
	return h.Sum(), nil
}

// writeAtomic writes data to path via a temp file in the same directory
// and an atomic rename.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Write journals the job into st's directory (atomically, leaving any
// other state's file for the job untouched — Move handles transitions).
func (s *Spool) Write(st State, j *Job) error {
	fp, err := jobFingerprint(j)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(&jobFile{Version: spoolVersion, Job: *j, Fingerprint: fp}, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(s.jobPath(st, j.ID), append(data, '\n'))
}

// Move transitions the job from one state to another, write-ahead: the
// new state's file is durably in place before the old one is removed. A
// crash between the two leaves the job journaled in both directories;
// recovery precedence (states order) resolves it in favor of the newer
// state, because transitions only ever move toward higher precedence
// (pending→running→done/failed) or re-spool running→pending, where
// running's stale presence is exactly the "re-enqueue me" signal.
func (s *Spool) Move(j *Job, from, to State) error {
	if err := s.Write(to, j); err != nil {
		return err
	}
	if err := os.Remove(s.jobPath(from, j.ID)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// Remove deletes the job's file in st, tolerating absence.
func (s *Spool) Remove(st State, id string) error {
	err := os.Remove(s.jobPath(st, id))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// load reads and validates one job file.
func (s *Spool) load(st State, path string) (*Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jf jobFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("job file %s: unparseable: %w", filepath.Base(path), err)
	}
	if jf.Version != spoolVersion {
		return nil, fmt.Errorf("job file %s: version %d, want %d", filepath.Base(path), jf.Version, spoolVersion)
	}
	fp, err := jobFingerprint(&jf.Job)
	if err != nil {
		return nil, err
	}
	if fp != jf.Fingerprint {
		return nil, fmt.Errorf("job file %s: fingerprint mismatch, corrupt", filepath.Base(path))
	}
	j := jf.Job
	j.State = st
	return &j, nil
}

// Load scans every state directory and returns one Job per ID, resolved
// by state precedence: a job journaled in done/ and running/ (crash
// during the done commit) loads as done; one in running/ and pending/
// (crash during a drain re-spool) loads as the one precedence favors.
// Files that fail validation are skipped (and reported in the second
// return) — a corrupt journal entry costs that job, never the spool.
// For every resolved job, lower-precedence leftovers are cleaned up so
// the journal converges back to one file per job.
func (s *Spool) Load() ([]*Job, []error) {
	var errs []error
	jobs := map[string]*Job{}
	for _, st := range states { // precedence order: first hit wins
		entries, err := os.ReadDir(s.stateDir(st))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
				continue
			}
			id := strings.TrimSuffix(name, ".json")
			if _, seen := jobs[id]; seen {
				// A lower-precedence leftover from an interrupted Move.
				if err := s.Remove(st, id); err != nil {
					errs = append(errs, err)
				}
				continue
			}
			j, err := s.load(st, filepath.Join(s.stateDir(st), name))
			if err != nil {
				errs = append(errs, err)
				continue
			}
			if j.ID != id {
				errs = append(errs, fmt.Errorf("job file %s: payload names %q", name, j.ID))
				continue
			}
			jobs[id] = j
		}
	}
	out := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j)
	}
	return out, errs
}

// WriteResult atomically persists the job's result bytes — the exact
// Suite.WriteJSON output, stored verbatim so serving it back is
// byte-identical to what a direct pipeline run prints.
func (s *Spool) WriteResult(id string, data []byte) error {
	return writeAtomic(s.ResultPath(id), data)
}

// ReadResult returns the job's stored result bytes.
func (s *Spool) ReadResult(id string) ([]byte, error) {
	return os.ReadFile(s.ResultPath(id))
}
