package jobqueue

import (
	"context"
	"errors"
	"testing"
	"time"

	"xbsim/internal/faults"
	"xbsim/internal/obs"
)

// An explicit trace must ride admission → spool → recovery: after a
// mid-run kill and a restart on the same spool, the recovered job keeps
// the original trace, and one timeline holds the original admission,
// the recovery transition, and the completed run's stage events — all
// under that trace.
func TestTraceSurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	// Two benchmarks: the first's checkpoint signals mid-run, the second
	// is still in flight when Kill strikes.
	req := benchRequest("mcf", "gzip")
	const trace = "t-client-supplied"

	q := openQueue(t, context.Background(), dir, obs.New())
	j, cached, err := q.SubmitTraced(req, Submission{TraceID: trace, Tenant: "acme"})
	if err != nil || cached {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	if j.TraceID != trace || j.Tenant != "acme" {
		t.Fatalf("admitted job trace=%q tenant=%q", j.TraceID, j.Tenant)
	}
	// Kill once the run is in flight (first checkpoint exists).
	scope := q.Spool().CheckpointDir(j.ID)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if countCheckpoints(t, scope) >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	q.Kill()

	q2 := openQueue(t, context.Background(), dir, obs.New())
	defer q2.Close()
	done := waitState(t, q2, j.ID, StateDone)
	if done.TraceID != trace {
		t.Fatalf("recovered job trace = %q, want %q (trace must survive the spool)", done.TraceID, trace)
	}
	if done.Tenant != "acme" {
		t.Fatalf("recovered job tenant = %q", done.Tenant)
	}

	// One timeline, resolvable by job ID or by trace, spanning the crash.
	tl, err := q2.Timeline(trace)
	if err != nil {
		t.Fatal(err)
	}
	if tl.JobID != j.ID || tl.TraceID != trace {
		t.Fatalf("timeline ids = job %q trace %q", tl.JobID, tl.TraceID)
	}
	kinds := map[string]int{}
	for _, e := range tl.Entries {
		kinds[e.Kind]++
		if e.Source == "event" && e.Trace != trace {
			t.Fatalf("journal entry %q carries trace %q, want %q", e.Kind, e.Trace, trace)
		}
	}
	for _, k := range []string{"job.submit", "job.recover", "job.start", "job.done", "stage.start"} {
		if kinds[k] == 0 {
			t.Fatalf("timeline missing %s entries; kinds = %v", k, kinds)
		}
	}
	// Both lifetimes' job.start survive in the journal: the killed
	// attempt's and the recovery's.
	if kinds["job.start"] < 2 {
		t.Fatalf("timeline has %d job.start entries, want both lifetimes'", kinds["job.start"])
	}
	if kinds["span"] == 0 {
		t.Fatal("timeline has no stage spans from the recovering process")
	}
	// Phases: the recovery opens a second queue-wait; the completed run
	// closes a run phase.
	var waits int
	for _, p := range tl.Phases {
		if p.Name == "queue-wait" {
			waits++
		}
	}
	if waits < 2 {
		t.Fatalf("%d queue-wait phases, want admission + recovery", waits)
	}
	if tl.Phase("run") == nil {
		t.Fatal("no run phase")
	}
}

// Duplicate submissions must link their traces onto the canonical job —
// durably — and the timeline must resolve by any linked trace.
func TestCoalescedAndCachedTracesLink(t *testing.T) {
	o := obs.New()
	q := openQueue(t, context.Background(), t.TempDir(), o)
	defer q.Close()

	req := benchRequest("mcf")
	j, _, err := q.SubmitTraced(req, Submission{TraceID: "t-first"})
	if err != nil {
		t.Fatal(err)
	}
	// Same work again while pending/running: coalesce, not a new job.
	j2, cached, err := q.SubmitTraced(req, Submission{TraceID: "t-second", Tenant: "beta"})
	if err != nil || cached {
		t.Fatalf("coalesce submit: cached=%v err=%v", cached, err)
	}
	if j2.ID != j.ID || j2.TraceID != "t-first" {
		t.Fatalf("coalesced job = %s trace %q, want canonical %s t-first", j2.ID, j2.TraceID, j.ID)
	}
	if len(j2.CoalescedTraces) != 1 || j2.CoalescedTraces[0] != "t-second" {
		t.Fatalf("CoalescedTraces = %v", j2.CoalescedTraces)
	}

	waitState(t, q, j.ID, StateDone)
	// Cache hit after done links too.
	j3, cached, err := q.SubmitTraced(req, Submission{TraceID: "t-third"})
	if err != nil || !cached {
		t.Fatalf("cache submit: cached=%v err=%v", cached, err)
	}
	if j3.TraceID != "t-first" {
		t.Fatalf("cached response trace = %q", j3.TraceID)
	}

	// Any linked trace resolves to the one job's timeline.
	for _, key := range []string{j.ID, "t-first", "t-second", "t-third"} {
		tl, err := q.Timeline(key)
		if err != nil {
			t.Fatalf("Timeline(%q): %v", key, err)
		}
		if tl.JobID != j.ID {
			t.Fatalf("Timeline(%q) resolved job %q", key, tl.JobID)
		}
	}
	tl, _ := q.Timeline(j.ID)
	links := map[string]bool{}
	for _, l := range tl.Links {
		links[l] = true
	}
	if !links["t-second"] || !links["t-third"] {
		t.Fatalf("timeline links = %v, want t-second and t-third", tl.Links)
	}
	if tl.Phase("cache-lookup") == nil {
		t.Fatal("cache hit left no cache-lookup phase")
	}
	// The coalesce and cache events keep the submitting trace.
	var sawCoalesce, sawCache bool
	for _, e := range tl.Entries {
		switch e.Kind {
		case "job.coalesce":
			sawCoalesce = e.Trace == "t-second"
		case "job.cache":
			sawCache = e.Trace == "t-third"
		}
	}
	if !sawCoalesce || !sawCache {
		t.Fatalf("coalesce/cache rows mis-traced (coalesce=%v cache=%v)", sawCoalesce, sawCache)
	}

	if _, err := q.Timeline("t-unknown"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown key error = %v, want ErrNotFound", err)
	}

	// Per-tenant accounting saw all three submissions.
	snap := o.Metrics.Snapshot()
	def := snap.Counters[obs.LabeledName("serve.tenant.submissions", "tenant", "default")]
	beta := snap.Counters[obs.LabeledName("serve.tenant.submissions", "tenant", "beta")]
	if def != 2 || beta != 1 {
		t.Fatalf("tenant submissions default=%d beta=%d, want 2 and 1", def, beta)
	}
	if got := snap.Counters[obs.LabeledName("serve.tenant.completed", "tenant", "default")]; got != 1 {
		t.Fatalf("tenant completed = %d, want 1", got)
	}
}

// A completed job must populate the SLO latency histograms and the
// queue-health gauges.
func TestSLOHistogramsAndQueueGauges(t *testing.T) {
	o := obs.New()
	q := openQueue(t, context.Background(), t.TempDir(), o)
	defer q.Close()

	j, _, err := q.Submit(benchRequest("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceID == "" {
		t.Fatal("Submit minted no trace")
	}
	waitState(t, q, j.ID, StateDone)

	snap := o.Metrics.Snapshot()
	for _, name := range []string{"serve.queue_wait_ms", "serve.run_ms", "serve.submit_to_result_ms"} {
		h := snap.Histograms[name]
		if h.Count != 1 {
			t.Fatalf("%s count = %d, want 1", name, h.Count)
		}
	}
	// run <= submit-to-result, always.
	run := snap.Histograms["serve.run_ms"]
	e2e := snap.Histograms["serve.submit_to_result_ms"]
	if run.Sum > e2e.Sum {
		t.Fatalf("run %dms > submit-to-result %dms", run.Sum, e2e.Sum)
	}
	for _, g := range []string{"serve.queue.pending", "serve.queue.running", "serve.queue.retry_after_sec",
		"serve.queue.slots", "serve.queue.max_pending"} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %s not published", g)
		}
	}
	if snap.Gauges["serve.queue.retry_after_sec"] < 1 {
		t.Fatalf("retry_after gauge = %v, want >= 1", snap.Gauges["serve.queue.retry_after_sec"])
	}

	// The cache-lookup histogram ticks on a hit.
	if _, cached, err := q.Submit(benchRequest("mcf")); err != nil || !cached {
		t.Fatalf("cache: %v %v", cached, err)
	}
	if h := o.Metrics.Snapshot().Histograms["serve.cache_lookup_ms"]; h.Count != 1 {
		t.Fatalf("serve.cache_lookup_ms count = %d, want 1", h.Count)
	}
}

// A serve.crash fault firing inside the durability window must still
// leave a coherent trace: recovery re-runs under the same trace and the
// timeline's checkpoint-resume phases show the short-circuit.
func TestTraceThroughDurabilityWindowCrash(t *testing.T) {
	dir := t.TempDir()
	rules, err := faults.ParseRules("serve.crash@1:error")
	if err != nil {
		t.Fatal(err)
	}
	fctx := faults.With(context.Background(), faults.NewInjector(rules...))
	q := openQueue(t, fctx, dir, obs.New())
	req := benchRequest("mcf")
	j, _, err := q.SubmitTraced(req, Submission{TraceID: "t-window"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !q.Killed() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !q.Killed() {
		t.Fatal("serve.crash fault never fired")
	}
	q.Kill()

	q2 := openQueue(t, context.Background(), dir, obs.New())
	defer q2.Close()
	done := waitState(t, q2, j.ID, StateDone)
	if done.TraceID != "t-window" {
		t.Fatalf("trace after durability-window crash = %q", done.TraceID)
	}
	tl, err := q2.Timeline("t-window")
	if err != nil {
		t.Fatal(err)
	}
	if tl.Phase("checkpoint-resume") == nil {
		t.Fatal("recovery re-run resumed nothing from checkpoints")
	}
	if tl.Phase("run") == nil || tl.Phase("queue-wait") == nil {
		t.Fatalf("timeline phases incomplete: %+v", tl.Phases)
	}
}
