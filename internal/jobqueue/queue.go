package jobqueue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/pool"
)

// Admission and lifecycle errors.
var (
	// ErrQueueFull rejects a submission when the pending queue is at its
	// depth cap — the server maps it to 429 + Retry-After.
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining rejects submissions while the queue is shutting down.
	ErrDraining = errors.New("job queue draining")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("no such job")
	// ErrNoResult reports a job that has no result (not done yet, or
	// failed).
	ErrNoResult = errors.New("job has no result")
)

// Options configures a Queue.
type Options struct {
	// Dir is the spool directory (required).
	Dir string
	// Concurrency is the number of jobs executed in parallel (default 2).
	Concurrency int
	// MaxPending caps the pending queue depth; submissions beyond it are
	// rejected with ErrQueueFull (default 64).
	MaxPending int
	// Workers sizes the worker pool shared by every concurrent job's
	// pipeline (default GOMAXPROCS). One pool for the whole queue keeps
	// the process's compute bounded no matter how many suites run.
	Workers int
	// EventsCapacity bounds each job's flight recorder (default
	// obs.DefaultRecorderCapacity).
	EventsCapacity int
	// JournalMaxBytes caps each job's durable event journal before
	// rotation (default obs.DefaultJournalMaxBytes).
	JournalMaxBytes int64
	// Observer receives queue- and pipeline-level metrics (shared
	// registry across all jobs); may be nil.
	Observer *obs.Observer
}

// tracked is one job plus its in-process scheduling state.
type tracked struct {
	job      *Job
	events   *obs.Recorder      // per-job flight recorder, journaled to the spool
	tracer   *obs.Tracer        // per-job stage spans (this process's runs)
	enqueued time.Time          // when the job last entered pending (queue-wait)
	cancel   context.CancelFunc // non-nil while running
}

// Queue is the durable bounded job scheduler. Open recovers journaled
// state from the spool; Submit admits content-addressed jobs; a fixed
// set of scheduler slots executes them over one shared worker pool;
// Drain stops admission and re-spools interrupted work; Kill simulates
// a crash for tests.
type Queue struct {
	opts   Options
	spool  *Spool
	o      *obs.Observer
	shared *pool.Pool
	base   context.Context // base context: faults injector, cancellation

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*tracked
	traces   map[string]string // trace ID (canonical or coalesced) → job ID
	pending  []*tracked        // FIFO of jobs awaiting a slot
	running  int
	draining bool
	killed   bool
	stopped  bool
	// lastDurMs is a crude EWMA of job wall clock, feeding Retry-After.
	lastDurMs float64

	wg sync.WaitGroup
}

// Open opens the spool, recovers journaled jobs (running → pending,
// counted in serve.jobs.recovered), and starts the scheduler. ctx is
// the base context every job runs under: cancel it to abort all work;
// attach a faults.Injector to it to exercise the serve.crash hooks.
func Open(ctx context.Context, opts Options) (*Queue, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobqueue: Options.Dir required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 2
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	sp, err := OpenSpool(opts.Dir)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		opts:   opts,
		spool:  sp,
		o:      opts.Observer,
		shared: pool.New(opts.Workers),
		base:   ctx,
		jobs:   map[string]*tracked{},
		traces: map[string]string{},
	}
	q.cond = sync.NewCond(&q.mu)
	if q.o != nil {
		q.shared.Instrument(pool.Metrics{
			Tasks:     q.o.Counter("pool.tasks"),
			Busy:      q.o.Gauge("pool.busy_workers"),
			BusyPeak:  q.o.Gauge("pool.busy_peak"),
			QueueWait: q.o.Histogram("pool.queue_wait_us"),
		})
	}

	jobs, loadErrs := sp.Load()
	for _, e := range loadErrs {
		q.emitQueue("recovery: " + e.Error())
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Submitted.Before(jobs[k].Submitted) })
	for _, j := range jobs {
		t := q.track(j)
		switch j.State {
		case StateRunning:
			// In flight when the process died: re-enqueue. The per-job
			// checkpoint dir makes the re-run skip completed benchmarks.
			j.State = StatePending
			if err := sp.Move(j, StateRunning, StatePending); err != nil {
				return nil, err
			}
			q.o.Counter("serve.jobs.recovered").Inc()
			t.events.Record(obs.PipelineEvent{Kind: "job.recover", Detail: "recovered: re-enqueued after crash"})
			t.enqueued = time.Now()
			q.pending = append(q.pending, t)
		case StatePending:
			t.enqueued = time.Now()
			q.pending = append(q.pending, t)
		case StateDone:
			// A done job without its result file cannot serve cache hits;
			// re-run it (defensive — the commit order makes this unreachable
			// without manual spool surgery).
			if _, err := os.Stat(sp.ResultPath(j.ID)); err != nil {
				j.State = StatePending
				if err := sp.Move(j, StateDone, StatePending); err != nil {
					return nil, err
				}
				t.enqueued = time.Now()
				q.pending = append(q.pending, t)
			}
		}
	}
	q.o.Gauge("serve.queue.slots").Set(float64(opts.Concurrency))
	q.o.Gauge("serve.queue.max_pending").Set(float64(opts.MaxPending))
	q.syncGauges()

	q.wg.Add(opts.Concurrency)
	for i := 0; i < opts.Concurrency; i++ {
		go func() {
			defer q.wg.Done()
			q.worker()
		}()
	}
	return q, nil
}

// Spool exposes the queue's spool (read-only use: result paths, dirs).
func (q *Queue) Spool() *Spool { return q.spool }

// track wires a job's in-process state: a private flight recorder
// stamped with the job's canonical trace and durably journaled to the
// spool (appending across restarts, so a timeline spans crashes), and a
// private tracer for this process's stage spans. A journal that fails
// to open costs durability of the event view, never the job.
func (q *Queue) track(j *Job) *tracked {
	t := &tracked{job: j, events: obs.NewRecorder(q.opts.EventsCapacity), tracer: obs.NewTracer()}
	t.events.SetTrace(j.TraceID)
	t.events.SetRotationCounter(q.o.Counter("serve.journal.rotations"))
	if err := t.events.SetOutputPath(q.spool.JournalPath(j.ID), q.opts.JournalMaxBytes); err != nil {
		q.emitQueue("journal open failed: " + err.Error())
	}
	q.jobs[j.ID] = t
	if j.TraceID != "" {
		q.traces[j.TraceID] = j.ID
	}
	for _, tr := range j.CoalescedTraces {
		q.traces[tr] = j.ID
	}
	return t
}

// emitQueue records a queue-level event on the shared observer.
func (q *Queue) emitQueue(detail string) {
	q.o.Emit(obs.PipelineEvent{Kind: "serve", Detail: detail})
}

// syncGauges publishes queue health — depths plus the EWMA-derived
// Retry-After estimate, so backlog pressure is visible on /metrics
// before admission starts returning 429s; callers hold q.mu.
func (q *Queue) syncGauges() {
	q.o.Gauge("serve.queue.pending").Set(float64(len(q.pending)))
	q.o.Gauge("serve.queue.running").Set(float64(q.running))
	q.o.Gauge("serve.queue.retry_after_sec").Set(float64(q.retryAfterLocked()))
}

// Submit admits a request. The request is validated, canonicalized, and
// content-addressed; the returned Job reflects the resulting state:
//
//   - new work: journaled pending, scheduled; cached == false.
//   - already pending/running: coalesced onto the existing job
//     (serve.cache.coalesced); cached == false.
//   - already done: a cache hit (serve.cache.hits) — the stored result
//     is served without running anything; cached == true.
//   - previously failed: re-enqueued for another attempt.
//
// ErrQueueFull (pending depth cap) and ErrDraining reject admission.
//
// Submit mints a fresh trace for the submission; SubmitTraced accepts
// caller-supplied trace correlation metadata.
func (q *Queue) Submit(req Request) (*Job, bool, error) {
	return q.SubmitTraced(req, Submission{})
}

// SubmitTraced is Submit with explicit per-submission metadata: a trace
// ID (minted when empty) and a tenant label. Neither participates in
// the job's content-addressed identity. When the submission lands on an
// existing job (coalesce or cache hit), the incoming trace is linked
// onto the canonical job — durably, in the spool record — and the
// canonical job is returned; the caller reads Job.TraceID for the
// canonical trace.
func (q *Queue) SubmitTraced(req Request, sub Submission) (*Job, bool, error) {
	lookup := time.Now()
	if err := req.Validate(); err != nil {
		return nil, false, err
	}
	req.normalize()
	id, err := req.ID()
	if err != nil {
		return nil, false, err
	}
	sub.TraceID = obs.SanitizeTraceID(sub.TraceID)
	if sub.TraceID == "" {
		sub.TraceID = obs.NewTraceID()
	}
	sub.Tenant = obs.SanitizeTraceID(sub.Tenant)
	if sub.Tenant == "" {
		sub.Tenant = "default"
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining || q.stopped || q.killed {
		q.o.Counter("serve.rejected").Inc()
		return nil, false, ErrDraining
	}
	if t, ok := q.jobs[id]; ok {
		switch t.job.State {
		case StateDone:
			q.o.Counter("serve.cache.hits").Inc()
			q.o.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", sub.Tenant)).Inc()
			q.o.Histogram("serve.cache_lookup_ms").Observe(uint64(time.Since(lookup).Milliseconds()))
			q.linkTrace(t, sub.TraceID)
			t.events.Record(obs.PipelineEvent{Kind: "job.cache", Trace: sub.TraceID,
				Detail: "cache hit; canonical trace " + t.job.TraceID})
			return t.job.clone(), true, nil
		case StatePending, StateRunning:
			q.o.Counter("serve.cache.coalesced").Inc()
			q.o.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", sub.Tenant)).Inc()
			q.linkTrace(t, sub.TraceID)
			t.events.Record(obs.PipelineEvent{Kind: "job.coalesce", Trace: sub.TraceID,
				Detail: "coalesced onto in-flight job; canonical trace " + t.job.TraceID})
			return t.job.clone(), false, nil
		case StateFailed:
			// Re-enqueue for another attempt under the same identity. The
			// canonical trace stays with the job; the resubmission's trace
			// is linked.
			if len(q.pending) >= q.opts.MaxPending {
				q.o.Counter("serve.rejected").Inc()
				return nil, false, ErrQueueFull
			}
			t.job.State = StatePending
			t.job.Error = ""
			q.linkTraceNoJournal(t, sub.TraceID)
			if err := q.spool.Move(t.job, StateFailed, StatePending); err != nil {
				return nil, false, err
			}
			q.o.Counter("serve.jobs.submitted").Inc()
			q.o.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", sub.Tenant)).Inc()
			t.events.Record(obs.PipelineEvent{Kind: "job.resubmit", Trace: sub.TraceID, Detail: "resubmitted after failure"})
			t.enqueued = time.Now()
			q.pending = append(q.pending, t)
			q.syncGauges()
			q.cond.Signal()
			return t.job.clone(), false, nil
		}
	}
	if len(q.pending) >= q.opts.MaxPending {
		q.o.Counter("serve.rejected").Inc()
		return nil, false, ErrQueueFull
	}
	j := &Job{ID: id, Request: req, Submitted: time.Now(), State: StatePending,
		TraceID: sub.TraceID, Tenant: sub.Tenant}
	if err := q.spool.Write(StatePending, j); err != nil {
		return nil, false, err
	}
	t := q.track(j)
	t.enqueued = time.Now()
	q.pending = append(q.pending, t)
	q.o.Counter("serve.jobs.submitted").Inc()
	q.o.Counter(obs.LabeledName("serve.tenant.submissions", "tenant", sub.Tenant)).Inc()
	t.events.Record(obs.PipelineEvent{Kind: "job.submit", Detail: "submitted by " + sub.Tenant})
	q.syncGauges()
	q.cond.Signal()
	return j.clone(), false, nil
}

// linkTraceNoJournal records a coalesced submission's trace on the
// canonical job in memory only; callers hold q.mu and are about to
// journal the job themselves.
func (q *Queue) linkTraceNoJournal(t *tracked, traceID string) bool {
	if traceID == "" || traceID == t.job.TraceID {
		return false
	}
	for _, tr := range t.job.CoalescedTraces {
		if tr == traceID {
			return false
		}
	}
	// Cap the link list so a hostile client can't grow the spool record
	// without bound; the event journal still records every submission.
	if len(t.job.CoalescedTraces) >= 64 {
		return false
	}
	t.job.CoalescedTraces = append(t.job.CoalescedTraces, traceID)
	q.traces[traceID] = t.job.ID
	return true
}

// linkTrace links a coalesced submission's trace onto the canonical job
// and re-journals the job in its current state so the link survives a
// restart; callers hold q.mu.
func (q *Queue) linkTrace(t *tracked, traceID string) {
	if !q.linkTraceNoJournal(t, traceID) {
		return
	}
	if err := q.spool.Write(t.job.State, t.job); err != nil {
		q.emitQueue("trace link journal failed: " + err.Error())
	}
}

// next blocks until a pending job is available or the queue is
// stopping; nil means "worker, exit".
func (q *Queue) next() *tracked {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.stopped || q.killed || q.draining {
			return nil
		}
		if len(q.pending) > 0 {
			t := q.pending[0]
			q.pending = q.pending[1:]
			q.running++
			q.syncGauges()
			return t
		}
		q.cond.Wait()
	}
}

func (q *Queue) worker() {
	for {
		t := q.next()
		if t == nil {
			return
		}
		q.runJob(t)
		q.mu.Lock()
		q.running--
		q.syncGauges()
		q.mu.Unlock()
	}
}

// crashed reports whether the queue has been killed (by Kill or a
// serve.crash fault) — after which no journal write may happen, exactly
// as if the process had died.
func (q *Queue) crashed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.killed
}

// runJob executes one job end to end: journal pending→running, run the
// pipeline suite with the job's private observer and checkpoint dir,
// persist the result, journal running→done (or →failed / re-spool
// →pending on drain). The serve.crash fault stage fires at two
// crash-simulation points: before the run starts, and inside the
// durability window after the result is written but before the done
// commit — recovery must get both right.
func (q *Queue) runJob(t *tracked) {
	j := t.job
	if err := faults.Hit(q.base, "serve.crash"); err != nil {
		// Simulated process death before the run: leave the journal
		// untouched (job stays pending on disk) and stop the world.
		q.kill()
		return
	}

	start := time.Now()
	q.mu.Lock()
	j.State = StateRunning
	j.Started = start
	j.Attempts++
	attempts := j.Attempts
	queueWait := time.Duration(0)
	if !t.enqueued.IsZero() {
		queueWait = start.Sub(t.enqueued)
	}
	// Journal writes below marshal a mu-consistent clone: Submit may
	// concurrently link a coalesced trace onto the shared Job under
	// q.mu, and marshaling the live struct outside the lock would race.
	snap := j.clone()
	q.mu.Unlock()
	if err := q.spool.Move(snap, StatePending, StateRunning); err != nil {
		q.failJob(t, start, fmt.Errorf("journal: %w", err), StatePending)
		return
	}
	q.o.Histogram("serve.queue_wait_ms").Observe(uint64(queueWait.Milliseconds()))
	t.events.Record(obs.PipelineEvent{Kind: "job.start",
		Detail: fmt.Sprintf("started (attempt %d) after %dms queue wait", attempts, queueWait.Milliseconds())})

	// Per-job observer: the metrics registry is shared queue-wide (the
	// /metrics view aggregates all jobs), while the flight recorder and
	// tracer are private so /jobs/{id}/events and the timeline carry
	// only this job's pipeline. The job's canonical trace rides the
	// context into the experiment layer.
	var jo *obs.Observer
	if q.o != nil {
		jo = &obs.Observer{Metrics: q.o.Metrics, Events: t.events, Tracer: t.tracer}
	} else {
		jo = &obs.Observer{Events: t.events, Tracer: t.tracer}
	}
	jctx, cancel := context.WithCancel(obs.WithTraceID(obs.With(q.base, jo), j.TraceID))
	defer cancel()
	if sec := j.Request.TimeoutSec; sec > 0 {
		var tcancel context.CancelFunc
		jctx, tcancel = context.WithTimeout(jctx, time.Duration(sec)*time.Second)
		defer tcancel()
	}
	// Drain and Kill cancel through the parent; the deadline (if any)
	// expires through the child — jctx.Err() tells the two apart.
	q.mu.Lock()
	t.cancel = cancel
	q.mu.Unlock()

	cfg := j.Request.Config
	cfg.CheckpointDir = q.spool.CheckpointDir(j.ID)
	cfg.SharedPool = q.shared
	var suite *experiment.Suite
	// Protect isolates a panicking pipeline into a *pool.PanicError: one
	// broken job fails, the queue survives.
	err := pool.Protect(func() error {
		var rerr error
		if len(j.Request.Specs) > 0 {
			suite, rerr = experiment.RunSpecsCtx(jctx, j.Request.Specs, cfg)
		} else {
			suite, rerr = experiment.RunCtx(jctx, cfg)
		}
		return rerr
	})
	q.mu.Lock()
	t.cancel = nil
	q.mu.Unlock()

	if q.crashed() {
		// Kill semantics: the process is "dead" — no journal writes. The
		// running/ entry stays behind for the next Open to recover.
		return
	}
	if err != nil && jctx.Err() == context.Canceled && q.isDraining() {
		// Drain interrupted the run. Completed benchmarks are already
		// checkpointed; re-spool so the next Open resumes from them.
		q.mu.Lock()
		j.State = StatePending
		snap = j.clone()
		q.mu.Unlock()
		if merr := q.spool.Move(snap, StateRunning, StatePending); merr != nil {
			q.emitQueue("drain re-spool failed: " + merr.Error())
		}
		q.o.Counter("serve.jobs.respooled").Inc()
		t.events.Record(obs.PipelineEvent{Kind: "job.respool", Detail: "interrupted by drain: re-spooled"})
		return
	}
	if err != nil {
		q.failJob(t, start, err, StateRunning)
		return
	}

	var buf bytes.Buffer
	if werr := suite.WriteJSON(&buf); werr != nil {
		q.failJob(t, start, fmt.Errorf("rendering result: %w", werr), StateRunning)
		return
	}
	if werr := q.spool.WriteResult(j.ID, buf.Bytes()); werr != nil {
		q.failJob(t, start, fmt.Errorf("persisting result: %w", werr), StateRunning)
		return
	}
	// The durability window: the result is on disk but the job is still
	// journaled running. A crash here must recover to a done-equivalent
	// state by re-running (cheap: every benchmark checkpoint hits).
	if ferr := faults.Hit(q.base, "serve.crash"); ferr != nil {
		q.kill()
		return
	}
	q.mu.Lock()
	j.State = StateDone
	j.Finished = time.Now()
	j.SuiteFingerprint = suite.Fingerprint()
	q.observeDuration(j.Finished.Sub(start))
	snap = j.clone()
	q.mu.Unlock()
	if merr := q.spool.Move(snap, StateRunning, StateDone); merr != nil {
		q.emitQueue("done commit failed: " + merr.Error())
	}
	q.o.Counter("serve.jobs.completed").Inc()
	q.o.Counter(obs.LabeledName("serve.tenant.completed", "tenant", snap.Tenant)).Inc()
	q.o.Histogram("serve.job_duration_ms").Observe(uint64(time.Since(start).Milliseconds()))
	// SLO latency histograms: run is this (final) attempt's execution;
	// submit-to-result is end to end from the first admission — across
	// crash recovery, it includes the dead process's time, which is
	// exactly what a waiting client experienced.
	q.o.Histogram("serve.run_ms").Observe(uint64(snap.Finished.Sub(snap.Started).Milliseconds()))
	q.o.Histogram("serve.submit_to_result_ms").Observe(uint64(snap.Finished.Sub(snap.Submitted).Milliseconds()))
	t.events.Record(obs.PipelineEvent{Kind: "job.done", Detail: "done: " + snap.SuiteFingerprint})
}

// failJob journals a terminal failure from whichever state the job was
// journaled in.
func (q *Queue) failJob(t *tracked, start time.Time, err error, from State) {
	j := t.job
	q.mu.Lock()
	j.State = StateFailed
	j.Finished = time.Now()
	j.Error = err.Error()
	q.observeDuration(j.Finished.Sub(start))
	snap := j.clone()
	q.mu.Unlock()
	if merr := q.spool.Move(snap, from, StateFailed); merr != nil {
		q.emitQueue("fail commit failed: " + merr.Error())
	}
	q.o.Counter("serve.jobs.failed").Inc()
	q.o.Counter(obs.LabeledName("serve.tenant.failed", "tenant", snap.Tenant)).Inc()
	// A panicking pipeline task is worth its own trace-stamped event:
	// the timeline should show where in the pool the job blew up.
	var pe *pool.PanicError
	if errors.As(err, &pe) {
		t.events.Record(obs.PipelineEvent{Kind: "panic",
			Detail: fmt.Sprintf("pool task %d panicked: %v", pe.Index, pe.Value)})
	}
	t.events.Record(obs.PipelineEvent{Kind: "job.fail", Detail: "failed: " + err.Error()})
}

// observeDuration updates the EWMA job duration; callers hold q.mu.
func (q *Queue) observeDuration(d time.Duration) {
	ms := float64(d.Milliseconds())
	if q.lastDurMs == 0 {
		q.lastDurMs = ms
	} else {
		q.lastDurMs = 0.7*q.lastDurMs + 0.3*ms
	}
}

func (q *Queue) isDraining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Get returns a snapshot of the job, or ErrNotFound.
func (q *Queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t.job.clone(), nil
}

// List returns snapshots of every known job, oldest submission first
// (ties broken by ID for determinism).
func (q *Queue) List() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.jobs))
	for _, t := range q.jobs {
		out = append(out, t.job.clone())
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Submitted.Equal(out[k].Submitted) {
			return out[i].Submitted.Before(out[k].Submitted)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Events returns the job's flight recorder — the live, per-job event
// stream /jobs/{id}/events serves — or ErrNotFound.
func (q *Queue) Events(id string) (*obs.Recorder, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return t.events, nil
}

// Timeline reconstructs one job's end-to-end view: the durable journal
// (merged rotated + live generations, so it spans crash recovery) plus
// this process's stage spans, merged and phase-annotated by
// obs.BuildTimeline. key is a job ID, the job's canonical trace ID, or
// any coalesced submission's trace ID. ErrNotFound for unknown keys.
func (q *Queue) Timeline(key string) (*obs.Timeline, error) {
	q.mu.Lock()
	t, ok := q.jobs[key]
	if !ok {
		if id, traced := q.traces[key]; traced {
			t, ok = q.jobs[id]
		}
	}
	if !ok {
		q.mu.Unlock()
		return nil, ErrNotFound
	}
	job := t.job.clone()
	q.mu.Unlock()

	t.events.Flush()
	evs, err := obs.ReadJournal(q.spool.JournalPath(job.ID))
	if err != nil {
		q.emitQueue("journal read failed: " + err.Error())
	}
	if len(evs) == 0 {
		// Journal never opened (open failure at track time): the in-memory
		// ring is the best remaining record.
		evs = t.events.Events()
	}
	return obs.BuildTimeline(obs.TimelineInput{
		TraceID:   job.TraceID,
		JobID:     job.ID,
		Tenant:    job.Tenant,
		State:     string(job.State),
		Links:     job.CoalescedTraces,
		Events:    evs,
		Spans:     t.tracer.Spans(),
		SpanEpoch: t.tracer.Epoch(),
	}), nil
}

// Result returns the job's stored result bytes — the exact
// Suite.WriteJSON output persisted at completion. ErrNotFound for
// unknown jobs; ErrNoResult for jobs that are not done.
func (q *Queue) Result(id string) ([]byte, error) {
	q.mu.Lock()
	t, ok := q.jobs[id]
	var st State
	if ok {
		st = t.job.State
	}
	q.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if st != StateDone {
		return nil, fmt.Errorf("%w (state %s)", ErrNoResult, st)
	}
	return q.spool.ReadResult(id)
}

// Stats is a point-in-time queue summary.
type Stats struct {
	Pending   int     `json:"pending"`
	Running   int     `json:"running"`
	Done      int     `json:"done"`
	Failed    int     `json:"failed"`
	Draining  bool    `json:"draining"`
	AvgJobMs  float64 `json:"avgJobMs"`
	MaxQueue  int     `json:"maxQueue"`
	Slots     int     `json:"slots"`
	CacheHits uint64  `json:"cacheHits"`
}

// Stats snapshots queue state (for /healthz and Retry-After).
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Pending:  len(q.pending),
		Running:  q.running,
		Draining: q.draining || q.stopped,
		AvgJobMs: q.lastDurMs,
		MaxQueue: q.opts.MaxPending,
		Slots:    q.opts.Concurrency,
	}
	for _, t := range q.jobs {
		switch t.job.State {
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		}
	}
	if q.o != nil {
		s.CacheHits = q.o.Counter("serve.cache.hits").Value()
	}
	return s
}

// RetryAfter estimates, in whole seconds (>= 1), how long a rejected
// client should wait before resubmitting: the time for the current
// backlog to drain through the scheduler slots at the observed average
// job duration (or a flat default before any job has finished).
func (q *Queue) RetryAfter() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retryAfterLocked()
}

// retryAfterLocked computes the Retry-After estimate; callers hold
// q.mu. The same value feeds the serve.queue.retry_after_sec gauge on
// every queue transition.
func (q *Queue) retryAfterLocked() int {
	avg := q.lastDurMs
	if avg <= 0 {
		avg = 2000
	}
	backlog := float64(len(q.pending)+q.running) / float64(q.opts.Concurrency)
	sec := int(backlog * avg / 1000)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// Drain gracefully shuts the queue down: admission closes immediately
// (Submit returns ErrDraining), idle workers exit, running jobs are
// canceled — their completed benchmarks are already checkpointed — and
// re-spooled to pending so the next Open resumes them. Drain returns
// when every worker has exited, or with ctx's error if it expires
// first.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if q.stopped || q.killed {
		q.mu.Unlock()
		return nil
	}
	q.draining = true
	for _, t := range q.jobs {
		if t.cancel != nil {
			t.cancel()
		}
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	q.emitQueue("draining: admission closed")

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		q.mu.Lock()
		q.stopped = true
		ts := make([]*tracked, 0, len(q.jobs))
		for _, t := range q.jobs {
			ts = append(ts, t)
		}
		q.mu.Unlock()
		// Graceful shutdown closes every job journal; Kill deliberately
		// does not (a dead process closes nothing).
		for _, t := range ts {
			t.events.CloseOutput()
		}
		q.emitQueue("drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// kill flips the killed flag and aborts running work without waiting —
// callable from inside a worker (the serve.crash fault path).
func (q *Queue) kill() {
	q.mu.Lock()
	if q.killed {
		q.mu.Unlock()
		return
	}
	q.killed = true
	for _, t := range q.jobs {
		if t.cancel != nil {
			t.cancel()
		}
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Kill simulates `kill -9`: every worker stops where it is and no
// further journal or result write happens, leaving the spool exactly as
// a process death would. The in-memory queue is unusable afterward; a
// new Open on the same spool performs recovery. Test hook — a real
// crash needs no call. Kill returns once every worker has exited.
func (q *Queue) Kill() {
	q.kill()
	q.wg.Wait()
}

// Killed reports whether the queue has died (Kill, or a serve.crash
// fault firing).
func (q *Queue) Killed() bool {
	return q.crashed()
}

// Close is Drain with a generous deadline — the normal shutdown path.
func (q *Queue) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return q.Drain(ctx)
}
