package jobqueue

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xbsim/internal/experiment"
	"xbsim/internal/faults"
	"xbsim/internal/obs"
	"xbsim/internal/program"
)

// testConfig is a small, fast experiment configuration.
func testConfig() experiment.Config {
	cfg := experiment.QuickConfig()
	cfg.TargetOps = 600_000
	cfg.IntervalSize = 8_000
	cfg.Parallelism = 2
	cfg.Workers = 2
	return cfg
}

func benchRequest(benchmarks ...string) Request {
	return Request{Benchmarks: benchmarks, Config: testConfig()}
}

// waitState polls until the job reaches a terminal state (done/failed)
// or the deadline expires.
func waitState(t *testing.T, q *Queue, id string, want State) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, err := q.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, j.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

func openQueue(t *testing.T, ctx context.Context, dir string, o *obs.Observer) *Queue {
	t.Helper()
	q, err := Open(ctx, Options{Dir: dir, Concurrency: 1, Workers: 2, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// A submitted job must run to done, store the exact Suite.WriteJSON
// bytes, and serve duplicate submissions as cache hits without another
// pipeline run.
func TestSubmitCompleteAndCacheHit(t *testing.T) {
	o := obs.New()
	q := openQueue(t, context.Background(), t.TempDir(), o)
	defer q.Close()

	req := benchRequest("mcf")
	j, cached, err := q.Submit(req)
	if err != nil || cached {
		t.Fatalf("submit: cached=%v err=%v", cached, err)
	}
	done := waitState(t, q, j.ID, StateDone)
	if done.SuiteFingerprint == "" {
		t.Fatal("done job has no suite fingerprint")
	}

	// The stored result must be byte-identical to a direct pipeline run.
	got, err := q.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Benchmarks = []string{"mcf"}
	suite, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := suite.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served result differs from direct run:\n--- served ---\n%.300s\n--- direct ---\n%.300s", got, want.Bytes())
	}
	if fp := suite.Fingerprint(); fp != done.SuiteFingerprint {
		t.Fatalf("suite fingerprint %s != job's %s", fp, done.SuiteFingerprint)
	}

	// Duplicate submission: a cache hit, no new pipeline work.
	before := o.Counter("pipeline.benchmarks_completed").Value()
	j2, cached, err := q.Submit(req)
	if err != nil || !cached {
		t.Fatalf("duplicate submit: cached=%v err=%v", cached, err)
	}
	if j2.ID != j.ID {
		t.Fatalf("duplicate got different ID: %s != %s", j2.ID, j.ID)
	}
	if n := o.Counter("serve.cache.hits").Value(); n != 1 {
		t.Fatalf("serve.cache.hits = %d, want 1", n)
	}
	if after := o.Counter("pipeline.benchmarks_completed").Value(); after != before {
		t.Fatalf("cache hit ran the pipeline: %d -> %d benchmarks", before, after)
	}
}

// Job identity must be content-addressed: the same work spelled with
// defaults explicit coincides, different work differs.
func TestJobIdentity(t *testing.T) {
	a := benchRequest("mcf")
	b := benchRequest("mcf")
	b.Config.Workers = 13 // wall-clock knob: same identity
	idA, err := a.ID()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := b.ID()
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB {
		t.Fatalf("wall-clock knob changed identity: %s != %s", idA, idB)
	}
	c := benchRequest("gzip")
	idC, _ := c.ID()
	if idC == idA {
		t.Fatal("different benchmarks share an identity")
	}
	d := benchRequest("mcf")
	d.Config.Seed = "other"
	idD, _ := d.ID()
	if idD == idA {
		t.Fatal("different seeds share an identity")
	}
	s1 := Request{Specs: []program.Spec{program.RandomSpec(1, 0)}, Config: testConfig()}
	s2 := Request{Specs: []program.Spec{program.RandomSpec(1, 0)}, Config: testConfig()}
	id1, err := s1.ID()
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := s2.ID()
	if id1 != id2 {
		t.Fatal("identical specs got different identities")
	}
}

// Admission control: pending depth beyond MaxPending must reject with
// ErrQueueFull while earlier jobs are preserved.
func TestAdmissionControl(t *testing.T) {
	o := obs.New()
	q, err := Open(context.Background(), Options{
		Dir: t.TempDir(), Concurrency: 1, MaxPending: 2, Workers: 2, Observer: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// One long-ish job occupies the slot; two more fill pending.
	names := [][]string{{"mcf"}, {"gzip"}, {"swim"}, {"apsi"}}
	var lastErr error
	rejected := 0
	for _, bm := range names {
		_, _, err := q.Submit(benchRequest(bm...))
		if errors.Is(err, ErrQueueFull) {
			rejected++
			lastErr = err
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Fatalf("no submission rejected with MaxPending=2 (last err %v)", lastErr)
	}
	if n := o.Counter("serve.rejected").Value(); uint64(rejected) != n {
		t.Fatalf("serve.rejected = %d, want %d", n, rejected)
	}
	if q.RetryAfter() < 1 {
		t.Fatalf("RetryAfter = %d, want >= 1", q.RetryAfter())
	}
}

// A failed job must journal its error and be re-enqueued on
// resubmission.
func TestFailedJobResubmit(t *testing.T) {
	q := openQueue(t, context.Background(), t.TempDir(), obs.New())
	defer q.Close()

	req := benchRequest("nosuch-benchmark")
	j, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("failed job carries no error")
	}
	if _, err := q.Result(j.ID); !errors.Is(err, ErrNoResult) {
		t.Fatalf("failed job result: %v, want ErrNoResult", err)
	}
	j2, cached, err := q.Submit(req)
	if err != nil || cached {
		t.Fatalf("resubmit: cached=%v err=%v", cached, err)
	}
	if j2.State != StatePending {
		t.Fatalf("resubmitted job state %s, want pending", j2.State)
	}
	waitState(t, q, j.ID, StateFailed)
}

// A job deadline must fail the job, not wedge the queue.
func TestJobDeadline(t *testing.T) {
	q := openQueue(t, context.Background(), t.TempDir(), obs.New())
	defer q.Close()
	req := benchRequest("gcc", "apsi", "applu", "mcf", "swim")
	req.TimeoutSec = 1
	req.Config.TargetOps = 4_000_000 // comfortably > 1s of work
	j, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, q, j.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("deadline failure carries no error")
	}
}

// Drain must close admission, cancel the running job, and re-spool it
// pending so a reopened queue resumes and finishes it.
func TestDrainRespoolsAndResumes(t *testing.T) {
	dir := t.TempDir()
	o := obs.New()
	q := openQueue(t, context.Background(), dir, o)

	req := benchRequest("gcc", "apsi", "applu", "mcf", "swim")
	j, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one benchmark checkpoint land, then drain.
	ckptScope := q.Spool().CheckpointDir(j.ID)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if n := countCheckpoints(t, ckptScope); n >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(benchRequest("gzip")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}

	// Reopen: the interrupted job must resume from its checkpoints and
	// complete. (If the job finished before the drain canceled it, the
	// reopened queue simply loads it done — also correct.)
	o2 := obs.New()
	q2 := openQueue(t, context.Background(), dir, o2)
	defer q2.Close()
	done := waitState(t, q2, j.ID, StateDone)
	if done.SuiteFingerprint == "" {
		t.Fatal("resumed job has no fingerprint")
	}
}

func countCheckpoints(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "cfg-*", "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// The serve chaos acceptance test: crash the server at both
// serve.crash points and via a raw mid-run Kill; in every case a
// restart against the same spool completes the job with a result
// fingerprint identical to a never-interrupted run.
func TestCrashRecoveryFingerprintIdentical(t *testing.T) {
	// Uninterrupted baseline.
	baseQ := openQueue(t, context.Background(), t.TempDir(), obs.New())
	req := benchRequest("mcf", "gzip")
	bj, _, err := baseQ.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	baseline := waitState(t, baseQ, bj.ID, StateDone)
	baseResult, err := baseQ.Result(bj.ID)
	if err != nil {
		t.Fatal(err)
	}
	baseQ.Close()

	crashAt := func(t *testing.T, invocation int, wantCkptHits bool) {
		dir := t.TempDir()
		rules, err := faults.ParseRules(formatCrashRule(invocation))
		if err != nil {
			t.Fatal(err)
		}
		fctx := faults.With(context.Background(), faults.NewInjector(rules...))
		q := openQueue(t, fctx, dir, obs.New())
		if _, _, err := q.Submit(req); err != nil {
			t.Fatal(err)
		}
		// The fault kills the queue; wait for the workers to die.
		deadline := time.Now().Add(60 * time.Second)
		for !q.Killed() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if !q.Killed() {
			t.Fatal("serve.crash fault never fired")
		}
		q.Kill() // join workers

		// Restart against the same spool: recovery must finish the job.
		o2 := obs.New()
		q2 := openQueue(t, context.Background(), dir, o2)
		defer q2.Close()
		done := waitState(t, q2, bj.ID, StateDone)
		if done.SuiteFingerprint != baseline.SuiteFingerprint {
			t.Fatalf("resumed fingerprint %s != uninterrupted %s",
				done.SuiteFingerprint, baseline.SuiteFingerprint)
		}
		result, err := q2.Result(bj.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(result, baseResult) {
			t.Fatal("resumed result bytes differ from uninterrupted run")
		}
		if wantCkptHits {
			if n := o2.Counter("pipeline.checkpoints_loaded").Value(); n == 0 {
				t.Fatal("durability-window recovery recomputed everything (no checkpoint hits)")
			}
		}
	}

	// Invocation 0: crash before the run starts — the job is still
	// journaled pending and recovery runs it from scratch.
	t.Run("before-run", func(t *testing.T) { crashAt(t, 0, false) })
	// Invocation 1: crash inside the durability window (result written,
	// done not committed) — recovery re-runs with every benchmark
	// answered from its checkpoint.
	t.Run("durability-window", func(t *testing.T) { crashAt(t, 1, true) })

	// Raw mid-run kill: no fault plumbing, just Kill once the first
	// benchmark checkpoint exists.
	t.Run("kill-mid-run", func(t *testing.T) {
		dir := t.TempDir()
		q := openQueue(t, context.Background(), dir, obs.New())
		j, _, err := q.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		scope := q.Spool().CheckpointDir(j.ID)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if countCheckpoints(t, scope) >= 1 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		q.Kill()

		q2 := openQueue(t, context.Background(), dir, obs.New())
		defer q2.Close()
		done := waitState(t, q2, j.ID, StateDone)
		if done.SuiteFingerprint != baseline.SuiteFingerprint {
			t.Fatalf("post-kill fingerprint %s != uninterrupted %s",
				done.SuiteFingerprint, baseline.SuiteFingerprint)
		}
		result, err := q2.Result(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(result, baseResult) {
			t.Fatal("post-kill result bytes differ from uninterrupted run")
		}
	})
}

func formatCrashRule(invocation int) string {
	return "serve.crash@" + string(rune('0'+invocation)) + ":error"
}

// Done jobs must survive restarts as cache entries: a reopened queue
// serves them without re-running.
func TestDoneJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	q := openQueue(t, context.Background(), dir, obs.New())
	req := benchRequest("mcf")
	j, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, j.ID, StateDone)
	result1, err := q.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	q.Close()

	o2 := obs.New()
	q2 := openQueue(t, context.Background(), dir, o2)
	defer q2.Close()
	j2, cached, err := q2.Submit(req)
	if err != nil || !cached {
		t.Fatalf("post-restart submit: cached=%v err=%v", cached, err)
	}
	if j2.State != StateDone {
		t.Fatalf("restarted job state %s, want done", j2.State)
	}
	if n := o2.Counter("serve.cache.hits").Value(); n != 1 {
		t.Fatalf("serve.cache.hits after restart = %d, want 1", n)
	}
	if n := o2.Counter("pipeline.benchmarks_completed").Value(); n != 0 {
		t.Fatalf("restart re-ran the pipeline (%d benchmarks)", n)
	}
	result2, err := q2.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result1, result2) {
		t.Fatal("restarted result bytes differ")
	}
}

// Spec jobs run through RunSpecsCtx and are content-addressed by spec
// digest.
func TestSpecJob(t *testing.T) {
	o := obs.New()
	q := openQueue(t, context.Background(), t.TempDir(), o)
	defer q.Close()
	cfg := testConfig()
	req := Request{Specs: []program.Spec{program.RandomSpec(42, 0)}, Config: cfg}
	j, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, q, j.ID, StateDone)
	if done.SuiteFingerprint == "" {
		t.Fatal("spec job has no fingerprint")
	}
	// Identical spec content resubmitted: cache hit.
	_, cached, err := q.Submit(Request{Specs: []program.Spec{program.RandomSpec(42, 0)}, Config: cfg})
	if err != nil || !cached {
		t.Fatalf("spec duplicate: cached=%v err=%v", cached, err)
	}
}

// Corrupt journal entries must be quarantined, not trusted or fatal.
func TestCorruptJobFileSkipped(t *testing.T) {
	dir := t.TempDir()
	q := openQueue(t, context.Background(), dir, obs.New())
	j, _, err := q.Submit(benchRequest("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, j.ID, StateDone)
	q.Close()

	// Tamper with the done record's payload.
	path := filepath.Join(dir, "jobs", "done", j.ID+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(data, []byte(`"attempts": 1`), []byte(`"attempts": 9`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	q2 := openQueue(t, context.Background(), dir, obs.New())
	defer q2.Close()
	if _, err := q2.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt job loaded: %v, want ErrNotFound", err)
	}
}

// Validation errors must be rejected before journaling.
func TestRequestValidation(t *testing.T) {
	q := openQueue(t, context.Background(), t.TempDir(), obs.New())
	defer q.Close()
	if _, _, err := q.Submit(Request{Config: testConfig()}); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, _, err := q.Submit(Request{
		Benchmarks: []string{"mcf"},
		Specs:      []program.Spec{program.RandomSpec(1, 0)},
		Config:     testConfig(),
	}); err == nil {
		t.Fatal("mixed request accepted")
	}
	bad := testConfig()
	bad.Sampler = "nope"
	if _, _, err := q.Submit(Request{Benchmarks: []string{"mcf"}, Config: bad}); err == nil {
		t.Fatal("invalid sampler accepted")
	}
}
