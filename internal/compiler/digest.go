package compiler

import (
	"xbsim/internal/fingerprint"
)

// Digest returns a deterministic content digest of everything that
// determines this binary's dynamic behavior under a given input: the
// static block table (instruction mix, memory traffic, spill traffic,
// memory patterns, source attribution), the marker table, the symbol
// table, every lowered procedure body including inline clones, the
// stack/spill region, the source program's loop trip specifications, the
// program name (which seeds synthetic address generation — see
// cmpsim.addressGen), and the compilation target.
//
// Two binaries with equal digests execute byte-identical block streams
// and touch byte-identical addresses for any input, so the digest is a
// sound binary component of a content-addressed simulation-result key.
// The digest is computed once and cached; Binary is immutable after
// compilation.
func (b *Binary) Digest() string {
	b.digestOnce.Do(func() { b.digest = b.computeDigest() })
	return b.digest
}

func (b *Binary) computeDigest() string {
	h := fingerprint.New()
	h.String("xbsim/binary/v1")
	h.String(b.Program.Name)
	h.String(b.Name)
	h.Int(int(b.Target.Arch))
	h.Int(int(b.Target.Opt))
	h.Int(b.StackRegion)

	// Loop trip specifications: the realized trip counts are a pure
	// function of (input seed, loop ID, entry ordinal, spec), so the specs
	// pin the dynamic iteration structure.
	loops := b.Program.Loops()
	h.Int(len(loops))
	for _, l := range loops {
		h.Int(l.ID)
		h.Int(l.Trip.Base)
		h.Int(l.Trip.Jitter)
	}

	h.Int(len(b.Blocks))
	for i := range b.Blocks {
		blk := &b.Blocks[i]
		h.Int(blk.Instrs)
		h.Int(blk.FPInstrs)
		h.Int(blk.Loads)
		h.Int(blk.Stores)
		h.Int(blk.SpillLoads)
		h.Int(blk.SpillStores)
		h.Int(blk.Mem.Region)
		h.Uint64(blk.Mem.WorkingSet)
		h.Uint64(blk.Mem.Stride)
		h.Int(int(blk.Mem.Class))
		h.Int(blk.SrcProc)
		h.Int(blk.SrcLine)
	}

	h.Int(len(b.Markers))
	for i := range b.Markers {
		m := &b.Markers[i]
		h.Int(int(m.Kind))
		h.Int(m.Block)
		h.String(m.Symbol)
		h.Int(m.Line)
		h.String(m.EnclosingSymbol)
		h.Int(m.SourceLoopID)
		h.Int(m.Piece)
	}

	h.Int(len(b.Symbols))
	for i := range b.Symbols {
		s := &b.Symbols[i]
		h.String(s.Symbol)
		h.Int(s.ProcIndex)
		h.Int(s.EntryBlock)
	}

	h.Int(len(b.Procs))
	for _, body := range b.Procs {
		hashBody(h, body)
	}
	return h.Sum()
}

// hashBody folds one lowered body (or nil) into the hash, recursing
// through loops and inline clones. Distinct node kinds are tagged so
// structurally different trees never collide by concatenation.
func hashBody(h *fingerprint.Hasher, body *LBody) {
	if body == nil {
		h.Int(-1)
		return
	}
	h.Int(0)
	h.Int(body.ProcIndex)
	h.Int(body.EntryBlock)
	hashStmts(h, body.Stmts)
}

func hashStmts(h *fingerprint.Hasher, stmts []LStmt) {
	h.Int(len(stmts))
	for _, st := range stmts {
		switch s := st.(type) {
		case *LBlock:
			h.Int(1)
			h.Int(s.Block)
		case *LLoop:
			h.Int(2)
			h.Int(s.SourceID)
			h.Int(s.Unroll)
			h.Int(len(s.Pieces))
			for _, p := range s.Pieces {
				h.Int(p.EntryBlock)
				h.Int(p.LatchBlock)
				hashStmts(h, p.Body)
			}
		case *LCall:
			h.Int(3)
			h.Int(s.SiteBlock)
			h.Int(s.Callee)
			hashBody(h, s.Inlined)
		default:
			h.Int(4)
		}
	}
}
