// Package compiler lowers a source program (internal/program) to a
// "binary" for one of four targets: {32-bit, 64-bit} × {unoptimized,
// optimized}. It stands in for the paper's Intel compiler 9.0 builds of
// SPEC2000 with -g.
//
// A Binary carries everything the rest of the pipeline observes about a
// real binary:
//
//   - static basic blocks with per-execution instruction counts and memory
//     behavior (consumed by the CMP$im-like simulator and BBV profilers);
//   - a symbol table of procedure entry points (procedures fully inlined at
//     O2 lose their symbol, exactly the failure mode in the paper §3.3);
//   - debug line numbers on loop branches (the -g information the mapping
//     step matches on; optimized transformations degrade it);
//   - markers: instrumentation points at procedure entries, loop entries,
//     and loop back edges — the candidate mappable points.
//
// The O2 pipeline applies four transformations that reproduce the paper's
// mapping hazards:
//
//   - inlining of small procedures (symbol + entry point disappear; cloned
//     loops keep their semantics but lose line info);
//   - loop distribution of inlined loops with >= 3 body statements (the
//     applu case: one source loop becomes two pieces whose counts are
//     ambiguous);
//   - restructuring of loops that directly contain >= 2 inlined calls
//     (post-inline fusion/rotation; the loop's own entry/latch markers lose
//     line info and the latch count changes);
//   - unrolling (factor 4) of innermost single-compute loops: the back
//     edge executes ceil(T/4) times, so its count no longer matches the
//     unoptimized binaries, while the loop entry stays mappable — the
//     reason the paper tracks loop entries and bodies separately.
//
// Instruction expansion differs per target and is deliberately non-uniform
// per block (deterministic jitter keyed by source line), so fixed-length
// intervals cut at different semantic positions in different binaries.
package compiler

import (
	"fmt"
	"math"
	"sync"

	"xbsim/internal/program"
	"xbsim/internal/xrand"
)

// Arch is the target architecture word width.
type Arch int

const (
	// Arch32 models 32-bit x86 (IA32).
	Arch32 Arch = iota
	// Arch64 models 64-bit x86 (Intel64).
	Arch64
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	if a == Arch64 {
		return "64"
	}
	return "32"
}

// OptLevel is the optimization level.
type OptLevel int

const (
	// O0 is unoptimized: no inlining or loop transformations, heavy
	// instruction expansion, register spills to the stack.
	O0 OptLevel = iota
	// O2 is optimized: inlining, loop distribution, restructuring,
	// unrolling, tight instruction selection.
	O2
)

// String implements fmt.Stringer.
func (o OptLevel) String() string {
	if o == O2 {
		return "o"
	}
	return "u"
}

// Target is one compilation configuration.
type Target struct {
	Arch Arch
	Opt  OptLevel
}

// String returns the paper's configuration shorthand: 32u, 32o, 64u, 64o.
func (t Target) String() string { return t.Arch.String() + t.Opt.String() }

// AllTargets lists the paper's four configurations in a fixed order:
// 32u, 32o, 64u, 64o.
var AllTargets = []Target{
	{Arch32, O0}, {Arch32, O2}, {Arch64, O0}, {Arch64, O2},
}

// MarkerKind classifies an instrumentation marker.
type MarkerKind int

const (
	// MarkerProcEntry fires once per call of a symbolled procedure.
	MarkerProcEntry MarkerKind = iota
	// MarkerLoopEntry fires once each time a loop is entered, regardless
	// of how many iterations follow.
	MarkerLoopEntry
	// MarkerLoopBody fires on the loop back edge — once per iteration
	// group (per iteration when not unrolled).
	MarkerLoopBody
)

// String implements fmt.Stringer.
func (k MarkerKind) String() string {
	switch k {
	case MarkerProcEntry:
		return "proc"
	case MarkerLoopEntry:
		return "loop-entry"
	case MarkerLoopBody:
		return "loop-body"
	default:
		return fmt.Sprintf("MarkerKind(%d)", int(k))
	}
}

// Marker is a static instrumentation point attached to a basic block. A
// marker "fires" whenever its block executes.
type Marker struct {
	// ID indexes Binary.Markers.
	ID int
	// Kind classifies the marker.
	Kind MarkerKind
	// Block is the basic block the marker is attached to.
	Block int
	// Symbol is the procedure symbol for MarkerProcEntry markers, ""
	// otherwise.
	Symbol string
	// Line is the debug line number; 0 means the optimizer destroyed or
	// never emitted line info (inlined clones, restructured loops).
	Line int
	// EnclosingSymbol is the symbol of the innermost symbolled procedure
	// containing this marker after inlining; the inlined-loop mapping
	// heuristic groups candidates by it.
	EnclosingSymbol string
	// SourceLoopID is the originating source loop for loop markers, -1
	// for procedure markers. It is ground truth for tests and is NOT
	// consulted by the mapping algorithm (real tools do not have it).
	SourceLoopID int
	// Piece distinguishes the pieces of a distributed loop (0 for the
	// first or only piece).
	Piece int
}

// Block is a static basic block.
type Block struct {
	// ID indexes Binary.Blocks.
	ID int
	// Instrs is the number of instructions executed per entry.
	Instrs int
	// FPInstrs is the floating-point subset of Instrs (latency model).
	FPInstrs int
	// Loads and Stores are data accesses per execution following Mem.
	Loads, Stores int
	// SpillLoads and SpillStores are register-spill accesses per execution
	// hitting the stack region (unoptimized binaries only).
	SpillLoads, SpillStores int
	// Mem is the access pattern for Loads/Stores (working set already
	// scaled for the target). Zero-valued when Loads == Stores == 0.
	Mem program.MemPattern
	// SrcProc is the source procedure index the block was lowered from.
	SrcProc int
	// SrcLine is the source line, 0 if synthetic.
	SrcLine int
}

// ProcSym is a symbol-table entry.
type ProcSym struct {
	// Symbol is the procedure name.
	Symbol string
	// ProcIndex is the source procedure index.
	ProcIndex int
	// EntryBlock is the block executed on entry (carries the proc marker).
	EntryBlock int
}

// LStmt is a node of the lowered, executable form of a procedure body.
type LStmt interface{ lstmt() }

// LBlock executes one basic block.
type LBlock struct {
	Block int
}

func (*LBlock) lstmt() {}

// LoopPiece is one lowered copy of (part of) a source loop body. Ordinary
// loops have one piece; distributed loops have several, each iterated the
// same number of times in sequence.
type LoopPiece struct {
	// EntryBlock executes once per loop entry and carries the loop-entry
	// marker.
	EntryBlock int
	// LatchBlock executes once per iteration group (ceil(T/Unroll) times
	// per entry) and carries the loop-body marker.
	LatchBlock int
	// Body executes once per iteration.
	Body []LStmt
}

// LLoop is a lowered loop. The executor draws the trip count T once per
// entry (keyed by SourceID so every binary sees identical counts) and runs
// each piece T times.
type LLoop struct {
	// SourceID is the source loop ID driving trip-count determination.
	SourceID int
	// Unroll is the latch grouping factor (1 = latch per iteration).
	Unroll int
	// Pieces holds the lowered bodies; len > 1 after loop distribution.
	Pieces []LoopPiece
}

func (*LLoop) lstmt() {}

// LCall is a lowered call site.
type LCall struct {
	// SiteBlock is the call-overhead block, -1 when the call was inlined.
	SiteBlock int
	// Callee is the source procedure index.
	Callee int
	// Inlined, when non-nil, is the private inlined clone of the callee
	// body executed in place of a call.
	Inlined *LBody
}

func (*LCall) lstmt() {}

// LBody is a lowered procedure body (shared procedure or inline clone).
type LBody struct {
	// ProcIndex is the source procedure.
	ProcIndex int
	// EntryBlock is the prologue block, -1 for inline clones (inlining
	// removes the prologue along with the entry point).
	EntryBlock int
	// Stmts is the lowered statement list.
	Stmts []LStmt
}

// Binary is a compiled program for one target.
type Binary struct {
	// Program is the source.
	Program *program.Program
	// Target is the compilation configuration.
	Target Target
	// Name is "<program>.<target>", e.g. "gcc.32u".
	Name string
	// Blocks is the static basic block table.
	Blocks []Block
	// Markers is the instrumentation point table.
	Markers []Marker
	// Symbols is the symbol table (procedures that kept their entry
	// points; fully inlined procedures are absent).
	Symbols []ProcSym
	// Procs maps source procedure index to its lowered body; nil for
	// procedures fully inlined everywhere.
	Procs []*LBody
	// StackRegion is the distinct region ID used for spill traffic.
	StackRegion int

	// digestOnce/digest back the cached content digest (see Digest).
	digestOnce sync.Once
	digest     string
}

// Entry returns the lowered entry procedure (main).
func (b *Binary) Entry() *LBody { return b.Procs[0] }

// SymbolByName returns the symbol entry with the given name, or nil.
func (b *Binary) SymbolByName(name string) *ProcSym {
	for i := range b.Symbols {
		if b.Symbols[i].Symbol == name {
			return &b.Symbols[i]
		}
	}
	return nil
}

// coefficients is the per-target instruction expansion model.
type coefficients struct {
	cInt, cFP, cLoad, cStore float64
	overhead                 float64 // per-block fixed expansion
	spillFrac                float64 // spill accesses per ALU op (O0 only)
	latchInstrs              int
	entryInstrs              int // loop entry block
	prologInstrs             int
	callInstrs               int
	// wsScaleRandom scales random-access working sets (pointer-heavy data
	// grows under 64-bit pointers).
	wsScaleRandom float64
}

func targetCoefficients(t Target) coefficients {
	var c coefficients
	if t.Opt == O0 {
		c = coefficients{
			cInt: 2.6, cFP: 2.2, cLoad: 2.0, cStore: 2.0,
			overhead: 2.0, spillFrac: 0.8,
			latchInstrs: 4, entryInstrs: 4, prologInstrs: 8, callInstrs: 6,
		}
	} else {
		c = coefficients{
			cInt: 1.0, cFP: 1.0, cLoad: 1.0, cStore: 1.0,
			overhead: 0.5, spillFrac: 0,
			latchInstrs: 2, entryInstrs: 2, prologInstrs: 3, callInstrs: 2,
		}
	}
	switch t.Arch {
	case Arch32:
		// 32-bit mode: fewer registers, wider arithmetic sequences.
		c.cInt *= 1.2
		c.cFP *= 1.1
		c.wsScaleRandom = 1.0
	case Arch64:
		// 64-bit mode: tighter code but 8-byte pointers inflate
		// pointer-chasing working sets.
		c.wsScaleRandom = 1.25
	}
	return c
}

// inlineThreshold is the static size (abstract ops) below which O2 inlines
// a procedure at every call site.
const inlineThreshold = 64

// UnrollFactor is the O2 unroll factor for innermost single-compute loops.
const UnrollFactor = 4

// RestructureLatchDiv is the latch-count divisor applied by O2 loop
// restructuring.
const RestructureLatchDiv = 2

// Compile lowers the program for the target. Compilation is deterministic:
// the same (program, target) always yields the identical binary.
func Compile(p *program.Program, t Target) (*Binary, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	lw := &lowerer{
		prog: p,
		t:    t,
		coef: targetCoefficients(t),
		bin: &Binary{
			Program: p,
			Target:  t,
			Name:    p.Name + "." + t.String(),
			Procs:   make([]*LBody, len(p.Procs)),
		},
	}
	// The stack region must not collide with program data regions.
	maxRegion := 0
	for _, proc := range p.Procs {
		walkComputes(proc.Body, func(c *program.Compute) {
			if c.Mem.Region > maxRegion {
				maxRegion = c.Mem.Region
			}
		})
	}
	lw.bin.StackRegion = maxRegion + 1
	lw.stackMem = program.MemPattern{
		Region:     lw.bin.StackRegion,
		WorkingSet: 4 << 10,
		Stride:     8,
		Class:      program.MemStride,
	}

	// Decide inlining: at O2, procedures under the threshold are inlined
	// at every call site and lose their symbol.
	lw.inlined = make([]bool, len(p.Procs))
	if t.Opt == O2 {
		for i, proc := range p.Procs {
			if i == 0 {
				continue // never inline main
			}
			if program.StaticOps(proc.Body) < inlineThreshold {
				lw.inlined[i] = true
			}
		}
	}

	// Lower procedures that keep their symbols (in index order so block
	// and marker IDs are deterministic).
	for i, proc := range p.Procs {
		if lw.inlined[i] {
			continue
		}
		lw.bin.Procs[i] = lw.lowerProc(proc)
	}
	return lw.bin, nil
}

// MustCompile is Compile for known-valid inputs; it panics on error.
func MustCompile(p *program.Program, t Target) *Binary {
	b, err := Compile(p, t)
	if err != nil {
		panic(err)
	}
	return b
}

// CompileAll compiles the program for all four paper targets, in
// AllTargets order.
func CompileAll(p *program.Program) ([]*Binary, error) {
	out := make([]*Binary, len(AllTargets))
	for i, t := range AllTargets {
		b, err := Compile(p, t)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

type lowerer struct {
	prog     *program.Program
	t        Target
	coef     coefficients
	bin      *Binary
	inlined  []bool
	stackMem program.MemPattern
}

func (lw *lowerer) newBlock(b Block) int {
	b.ID = len(lw.bin.Blocks)
	lw.bin.Blocks = append(lw.bin.Blocks, b)
	return b.ID
}

func (lw *lowerer) newMarker(m Marker) int {
	m.ID = len(lw.bin.Markers)
	lw.bin.Markers = append(lw.bin.Markers, m)
	return m.ID
}

// lowerProc lowers a symbolled procedure: prologue block with a proc-entry
// marker, then the body.
func (lw *lowerer) lowerProc(proc *program.Proc) *LBody {
	entry := lw.newBlock(Block{
		Instrs:  lw.coef.prologInstrs,
		SrcProc: proc.Index,
		SrcLine: proc.Line,
	})
	lw.newMarker(Marker{
		Kind:            MarkerProcEntry,
		Block:           entry,
		Symbol:          proc.Name,
		Line:            proc.Line,
		EnclosingSymbol: proc.Name,
		SourceLoopID:    -1,
	})
	lw.bin.Symbols = append(lw.bin.Symbols, ProcSym{
		Symbol:     proc.Name,
		ProcIndex:  proc.Index,
		EntryBlock: entry,
	})
	body := &LBody{
		ProcIndex:  proc.Index,
		EntryBlock: entry,
		Stmts:      lw.lowerStmts(proc.Body, ctx{enclosing: proc.Name, proc: proc.Index}),
	}
	return body
}

// ctx carries lowering context down the statement tree.
type ctx struct {
	// enclosing is the innermost symbolled procedure's name.
	enclosing string
	// proc is the source proc whose statements are being lowered (differs
	// from the enclosing symbol's proc inside inline clones).
	proc int
	// inClone is true inside an inlined clone: line info is degraded.
	inClone bool
}

func (lw *lowerer) lowerStmts(stmts []program.Stmt, c ctx) []LStmt {
	var out []LStmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *program.Compute:
			out = append(out, &LBlock{Block: lw.lowerCompute(s, c)})
		case *program.Loop:
			out = append(out, lw.lowerLoop(s, c))
		case *program.Call:
			out = append(out, lw.lowerCall(s, c))
		}
	}
	return out
}

// lowerCompute expands an op mix into a basic block for this target.
func (lw *lowerer) lowerCompute(s *program.Compute, c ctx) int {
	co := lw.coef
	ops := s.Ops
	raw := float64(ops.IntOps)*co.cInt + float64(ops.FPOps)*co.cFP +
		float64(ops.Loads)*co.cLoad + float64(ops.Stores)*co.cStore + co.overhead

	// Non-uniform expansion: deterministic +-12% jitter keyed by target
	// and source line, so different binaries stretch different parts of
	// the program differently (this is what makes fixed-length interval
	// boundaries drift across binaries).
	h := xrand.New(fmt.Sprintf("expand/%s/%s/%d", lw.prog.Name, lw.t, s.Line))
	jitter := 1 + 0.24*(h.Float64()-0.5)
	instrs := int(math.Max(1, math.Round(raw*jitter)))

	spills := 0
	if co.spillFrac > 0 {
		spills = int(co.spillFrac * float64(ops.IntOps+ops.FPOps))
	}
	spillLoads := spills * 2 / 3
	spillStores := spills - spillLoads
	instrs += spills // spill traffic is real instructions too

	fp := int(math.Round(float64(ops.FPOps) * co.cFP * jitter))
	if fp > instrs {
		fp = instrs
	}

	mem := s.Mem
	if ops.Loads > 0 || ops.Stores > 0 {
		if mem.Class == program.MemRandom {
			mem.WorkingSet = uint64(float64(mem.WorkingSet) * co.wsScaleRandom)
		}
	}

	return lw.newBlock(Block{
		Instrs:      instrs,
		FPInstrs:    fp,
		Loads:       ops.Loads,
		Stores:      ops.Stores,
		SpillLoads:  spillLoads,
		SpillStores: spillStores,
		Mem:         mem,
		SrcProc:     c.proc,
		SrcLine:     s.Line,
	})
}

// lowerLoop lowers a loop, applying O2 transformations:
// distribution (inlined clones, >= 3 body statements), restructuring
// (>= 2 directly inlined calls), and unrolling (single compute body).
func (lw *lowerer) lowerLoop(s *program.Loop, c ctx) *LLoop {
	o2 := lw.t.Opt == O2

	// Lower the body first to know which calls got inlined.
	lowerPiece := func(body []program.Stmt, line int, piece int) LoopPiece {
		stmts := lw.lowerStmts(body, c)
		entry := lw.newBlock(Block{
			Instrs: lw.coef.entryInstrs, SrcProc: c.proc, SrcLine: line,
		})
		latch := lw.newBlock(Block{
			Instrs: lw.coef.latchInstrs, SrcProc: c.proc, SrcLine: line,
		})
		lw.newMarker(Marker{
			Kind: MarkerLoopEntry, Block: entry, Line: line,
			EnclosingSymbol: c.enclosing, SourceLoopID: s.ID, Piece: piece,
		})
		lw.newMarker(Marker{
			Kind: MarkerLoopBody, Block: latch, Line: line,
			EnclosingSymbol: c.enclosing, SourceLoopID: s.ID, Piece: piece,
		})
		return LoopPiece{EntryBlock: entry, LatchBlock: latch, Body: stmts}
	}

	line := s.Line
	if c.inClone {
		// Inlined code loses reliable line info (the paper's premise for
		// needing the count-based heuristic).
		line = 0
	}

	// Loop distribution: inside an inline clone at O2, a loop body with
	// >= 3 statements is distributed into two pieces.
	if o2 && c.inClone && len(s.Body) >= 3 {
		p0 := lowerPiece(s.Body[:1], 0, 0)
		p1 := lowerPiece(s.Body[1:], 0, 1)
		return &LLoop{SourceID: s.ID, Unroll: 1, Pieces: []LoopPiece{p0, p1}}
	}

	// Unrolling: innermost loops whose whole body is a single compute.
	unroll := 1
	if o2 && len(s.Body) == 1 {
		if _, isCompute := s.Body[0].(*program.Compute); isCompute {
			unroll = UnrollFactor
		}
	}

	piece := lowerPiece(s.Body, line, 0)

	// Restructuring: at O2 a loop that directly contains >= 2 inlined
	// calls is rewritten after inlining; its own markers lose line info
	// and the latch count changes.
	if o2 && !c.inClone {
		inlinedCalls := 0
		for _, ls := range piece.Body {
			if call, ok := ls.(*LCall); ok && call.Inlined != nil {
				inlinedCalls++
			}
		}
		if inlinedCalls >= 2 {
			lw.bin.Markers[lw.markerOfBlock(piece.EntryBlock)].Line = 0
			lw.bin.Markers[lw.markerOfBlock(piece.LatchBlock)].Line = 0
			unroll = RestructureLatchDiv
		}
	}

	return &LLoop{SourceID: s.ID, Unroll: unroll, Pieces: []LoopPiece{piece}}
}

// markerOfBlock returns the marker index attached to the block. Blocks
// carry at most one marker by construction.
func (lw *lowerer) markerOfBlock(block int) int {
	for i := range lw.bin.Markers {
		if lw.bin.Markers[i].Block == block {
			return i
		}
	}
	panic(fmt.Sprintf("compiler: block %d has no marker", block))
}

func (lw *lowerer) lowerCall(s *program.Call, c ctx) *LCall {
	callee := lw.prog.Procs[s.Callee]
	if lw.inlined[s.Callee] {
		clone := &LBody{
			ProcIndex:  s.Callee,
			EntryBlock: -1,
			Stmts: lw.lowerStmts(callee.Body, ctx{
				enclosing: c.enclosing,
				proc:      s.Callee,
				inClone:   true,
			}),
		}
		return &LCall{SiteBlock: -1, Callee: s.Callee, Inlined: clone}
	}
	site := lw.newBlock(Block{
		Instrs:  lw.coef.callInstrs,
		SrcProc: c.proc,
		SrcLine: s.Line,
	})
	if lw.t.Opt == O0 {
		// Unoptimized calls push arguments through the stack.
		b := &lw.bin.Blocks[site]
		b.SpillStores = 2
		b.SpillLoads = 1
		b.Instrs += 3
	}
	return &LCall{SiteBlock: site, Callee: s.Callee}
}

// walkComputes visits every Compute in a statement tree.
func walkComputes(stmts []program.Stmt, fn func(*program.Compute)) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *program.Compute:
			fn(s)
		case *program.Loop:
			walkComputes(s.Body, fn)
		}
	}
}

// StackMem returns the memory pattern used for spill traffic in this
// binary.
func (b *Binary) StackMem() program.MemPattern {
	return program.MemPattern{
		Region:     b.StackRegion,
		WorkingSet: 4 << 10,
		Stride:     8,
		Class:      program.MemStride,
	}
}

// MarkerCountByKind returns how many markers of each kind the binary has,
// for diagnostics.
func (b *Binary) MarkerCountByKind() map[MarkerKind]int {
	out := map[MarkerKind]int{}
	for _, m := range b.Markers {
		out[m.Kind]++
	}
	return out
}
