package compiler

import (
	"reflect"
	"strings"
	"testing"

	"xbsim/internal/program"
)

func genProg(t *testing.T, name string) *program.Program {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileAllBenchmarksAllTargets(t *testing.T) {
	for _, name := range program.Benchmarks() {
		p := genProg(t, name)
		bins, err := CompileAll(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(bins) != 4 {
			t.Fatalf("%s: %d binaries", name, len(bins))
		}
		for _, b := range bins {
			if len(b.Blocks) == 0 || len(b.Markers) == 0 {
				t.Fatalf("%s %s: empty binary", name, b.Target)
			}
			if b.Entry() == nil {
				t.Fatalf("%s %s: no entry", name, b.Target)
			}
		}
	}
}

func TestTargetStrings(t *testing.T) {
	want := []string{"32u", "32o", "64u", "64o"}
	for i, tg := range AllTargets {
		if tg.String() != want[i] {
			t.Errorf("target %d = %q, want %q", i, tg, want[i])
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	p := genProg(t, "gcc")
	a := MustCompile(p, Target{Arch32, O2})
	b := MustCompile(p, Target{Arch32, O2})
	if !reflect.DeepEqual(a.Blocks, b.Blocks) || !reflect.DeepEqual(a.Markers, b.Markers) {
		t.Fatal("compilation not deterministic")
	}
}

func TestO0KeepsAllSymbols(t *testing.T) {
	p := genProg(t, "gcc")
	b := MustCompile(p, Target{Arch32, O0})
	if len(b.Symbols) != len(p.Procs) {
		t.Fatalf("O0 has %d symbols for %d procs", len(b.Symbols), len(p.Procs))
	}
	for _, proc := range p.Procs {
		if b.SymbolByName(proc.Name) == nil {
			t.Errorf("O0 missing symbol %q", proc.Name)
		}
	}
}

func TestO2InlinesSmallProcs(t *testing.T) {
	p := genProg(t, "gcc")
	b := MustCompile(p, Target{Arch64, O2})
	// Helpers are below the threshold and must lose their symbols.
	for _, proc := range p.Procs {
		isSmall := program.StaticOps(proc.Body) < inlineThreshold && proc.Index != 0
		sym := b.SymbolByName(proc.Name)
		if isSmall && sym != nil {
			t.Errorf("O2 kept symbol for small proc %q", proc.Name)
		}
		if !isSmall && sym == nil {
			t.Errorf("O2 dropped symbol for large proc %q", proc.Name)
		}
	}
	// gcc has helpers, so at least one symbol must disappear.
	if len(b.Symbols) >= len(p.Procs) {
		t.Fatal("O2 inlined nothing in gcc")
	}
}

func TestO2UnrollsInnermostComputeLoops(t *testing.T) {
	p := genProg(t, "swim")
	o0 := MustCompile(p, Target{Arch32, O0})
	o2 := MustCompile(p, Target{Arch32, O2})
	if countUnrolled(o0) != 0 {
		t.Fatal("O0 unrolled loops")
	}
	if countUnrolled(o2) == 0 {
		t.Fatal("O2 unrolled nothing")
	}
}

func countUnrolled(b *Binary) int {
	n := 0
	var walk func(stmts []LStmt)
	walk = func(stmts []LStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *LLoop:
				if s.Unroll == UnrollFactor {
					n++
				}
				for _, p := range s.Pieces {
					walk(p.Body)
				}
			case *LCall:
				if s.Inlined != nil {
					walk(s.Inlined.Stmts)
				}
			}
		}
	}
	for _, proc := range b.Procs {
		if proc != nil {
			walk(proc.Stmts)
		}
	}
	return n
}

// collectLoops gathers every LLoop in the binary (including inline clones).
func collectLoops(b *Binary) []*LLoop {
	var out []*LLoop
	var walk func(stmts []LStmt)
	walk = func(stmts []LStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *LLoop:
				out = append(out, s)
				for _, p := range s.Pieces {
					walk(p.Body)
				}
			case *LCall:
				if s.Inlined != nil {
					walk(s.Inlined.Stmts)
				}
			}
		}
	}
	for _, proc := range b.Procs {
		if proc != nil {
			walk(proc.Stmts)
		}
	}
	return out
}

func TestAppluO2DistributesSolverLoops(t *testing.T) {
	p := genProg(t, "applu")
	o2 := MustCompile(p, Target{Arch32, O2})
	distributed := 0
	for _, l := range collectLoops(o2) {
		if len(l.Pieces) == 2 {
			distributed++
		}
	}
	if distributed == 0 {
		t.Fatal("applu O2 distributed no loops")
	}
	o0 := MustCompile(p, Target{Arch32, O0})
	for _, l := range collectLoops(o0) {
		if len(l.Pieces) != 1 {
			t.Fatal("O0 distributed a loop")
		}
	}
}

func TestAppluO2RestructuresLoopsWithInlinedCalls(t *testing.T) {
	p := genProg(t, "applu")
	o2 := MustCompile(p, Target{Arch32, O2})
	restructured := 0
	for _, l := range collectLoops(o2) {
		if l.Unroll == RestructureLatchDiv && len(l.Pieces) == 1 {
			// Verify its markers lost line info.
			for _, m := range o2.Markers {
				if m.Block == l.Pieces[0].EntryBlock && m.Line == 0 {
					restructured++
				}
			}
		}
	}
	if restructured == 0 {
		t.Fatal("applu O2 restructured no loops")
	}
}

func TestInlinedCloneLoopsLoseLineInfo(t *testing.T) {
	p := genProg(t, "gcc")
	o2 := MustCompile(p, Target{Arch32, O2})
	cloneLoopMarkers := 0
	for _, m := range o2.Markers {
		if m.Kind == MarkerLoopEntry && m.Line == 0 {
			cloneLoopMarkers++
		}
	}
	if cloneLoopMarkers == 0 {
		t.Fatal("no line-stripped loop markers at O2 despite inlining")
	}
	o0 := MustCompile(p, Target{Arch32, O0})
	for _, m := range o0.Markers {
		if m.Kind != MarkerProcEntry && m.Line == 0 {
			t.Fatal("O0 loop marker lost line info")
		}
	}
}

func TestO0ExpandsMoreThanO2(t *testing.T) {
	// Compare the lowering of the same source compute statement (matched
	// by source line): O0 must emit clearly more instructions. Static
	// binary totals are not comparable because O2 inline clones duplicate
	// blocks.
	p := genProg(t, "crafty")
	o0 := MustCompile(p, Target{Arch32, O0})
	o2 := MustCompile(p, Target{Arch32, O2})
	perLine := func(b *Binary) map[int]int {
		out := map[int]int{}
		for _, blk := range b.Blocks {
			if blk.SrcLine > 0 && blk.Loads+blk.Stores > 0 {
				if _, ok := out[blk.SrcLine]; !ok {
					out[blk.SrcLine] = blk.Instrs
				}
			}
		}
		return out
	}
	m0, m2 := perLine(o0), perLine(o2)
	compared := 0
	for line, i0 := range m0 {
		i2, ok := m2[line]
		if !ok {
			continue
		}
		compared++
		if float64(i0) < 1.4*float64(i2) {
			t.Fatalf("line %d: O0 %d instrs not clearly larger than O2 %d", line, i0, i2)
		}
	}
	if compared < 5 {
		t.Fatalf("only %d compute blocks comparable", compared)
	}
}

func TestO0HasSpillsO2DoesNot(t *testing.T) {
	p := genProg(t, "crafty")
	o0 := MustCompile(p, Target{Arch32, O0})
	o2 := MustCompile(p, Target{Arch32, O2})
	spills := func(b *Binary) int {
		n := 0
		for _, blk := range b.Blocks {
			n += blk.SpillLoads + blk.SpillStores
		}
		return n
	}
	if spills(o0) == 0 {
		t.Fatal("O0 has no spill traffic")
	}
	if spills(o2) != 0 {
		t.Fatal("O2 has spill traffic")
	}
}

func Test64BitScalesRandomWorkingSets(t *testing.T) {
	p := genProg(t, "mcf") // mcf is pointer-chasing heavy
	b32 := MustCompile(p, Target{Arch32, O0})
	b64 := MustCompile(p, Target{Arch64, O0})
	grew := false
	for i := range b32.Blocks {
		m32, m64 := b32.Blocks[i].Mem, b64.Blocks[i].Mem
		if m32.Class == program.MemRandom && (b32.Blocks[i].Loads > 0 || b32.Blocks[i].Stores > 0) {
			if m64.WorkingSet <= m32.WorkingSet {
				t.Fatalf("block %d: 64-bit random WS %d not larger than 32-bit %d",
					i, m64.WorkingSet, m32.WorkingSet)
			}
			grew = true
		}
		if m32.Class == program.MemStride && m64.WorkingSet != m32.WorkingSet {
			t.Fatalf("block %d: strided WS changed across arch", i)
		}
	}
	if !grew {
		t.Fatal("mcf has no random-access blocks")
	}
}

func TestStackRegionDistinct(t *testing.T) {
	p := genProg(t, "gzip")
	b := MustCompile(p, Target{Arch32, O0})
	for _, blk := range b.Blocks {
		if (blk.Loads > 0 || blk.Stores > 0) && blk.Mem.Region == b.StackRegion {
			t.Fatal("program data region collides with stack region")
		}
	}
	sm := b.StackMem()
	if sm.Region != b.StackRegion || sm.WorkingSet == 0 {
		t.Fatalf("bad stack mem pattern %+v", sm)
	}
}

func TestMarkersWellFormed(t *testing.T) {
	p := genProg(t, "vortex")
	for _, tg := range AllTargets {
		b := MustCompile(p, tg)
		blockSeen := map[int]bool{}
		for i, m := range b.Markers {
			if m.ID != i {
				t.Fatalf("%s: marker %d has ID %d", tg, i, m.ID)
			}
			if m.Block < 0 || m.Block >= len(b.Blocks) {
				t.Fatalf("%s: marker %d block out of range", tg, i)
			}
			if blockSeen[m.Block] {
				t.Fatalf("%s: block %d carries two markers", tg, m.Block)
			}
			blockSeen[m.Block] = true
			switch m.Kind {
			case MarkerProcEntry:
				if m.Symbol == "" || m.SourceLoopID != -1 {
					t.Fatalf("%s: bad proc marker %+v", tg, m)
				}
			case MarkerLoopEntry, MarkerLoopBody:
				if m.SourceLoopID < 0 {
					t.Fatalf("%s: loop marker without source loop %+v", tg, m)
				}
			}
		}
		counts := b.MarkerCountByKind()
		if counts[MarkerProcEntry] != len(b.Symbols) {
			t.Fatalf("%s: %d proc markers for %d symbols", tg, counts[MarkerProcEntry], len(b.Symbols))
		}
		if counts[MarkerLoopEntry] != counts[MarkerLoopBody] {
			t.Fatalf("%s: loop entry/body marker counts differ", tg)
		}
	}
}

func TestBlockIDsConsistent(t *testing.T) {
	p := genProg(t, "eon")
	b := MustCompile(p, Target{Arch64, O2})
	for i, blk := range b.Blocks {
		if blk.ID != i {
			t.Fatalf("block %d has ID %d", i, blk.ID)
		}
		if blk.Instrs <= 0 {
			t.Fatalf("block %d has %d instrs", i, blk.Instrs)
		}
		if blk.FPInstrs > blk.Instrs {
			t.Fatalf("block %d: FP %d > total %d", i, blk.FPInstrs, blk.Instrs)
		}
	}
}

func TestBinaryNames(t *testing.T) {
	p := genProg(t, "art")
	b := MustCompile(p, Target{Arch64, O2})
	if b.Name != "art.64o" {
		t.Fatalf("Name = %q", b.Name)
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	bad := &program.Program{Name: "bad"}
	if _, err := Compile(bad, Target{Arch32, O0}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []MarkerKind{MarkerProcEntry, MarkerLoopEntry, MarkerLoopBody} {
		if k.String() == "" || strings.HasPrefix(k.String(), "MarkerKind") {
			t.Errorf("kind %d has bad string %q", int(k), k)
		}
	}
}

func TestSameOptSameStructureAcrossArch(t *testing.T) {
	// 32o and 64o make identical optimization decisions: same marker
	// structure (kinds, lines, symbols), different instruction counts.
	p := genProg(t, "apsi")
	a := MustCompile(p, Target{Arch32, O2})
	b := MustCompile(p, Target{Arch64, O2})
	if len(a.Markers) != len(b.Markers) {
		t.Fatalf("marker counts differ across arch: %d vs %d", len(a.Markers), len(b.Markers))
	}
	for i := range a.Markers {
		ma, mb := a.Markers[i], b.Markers[i]
		if ma.Kind != mb.Kind || ma.Line != mb.Line || ma.Symbol != mb.Symbol ||
			ma.SourceLoopID != mb.SourceLoopID || ma.Piece != mb.Piece {
			t.Fatalf("marker %d differs across arch: %+v vs %+v", i, ma, mb)
		}
	}
}
