package compiler

import (
	"testing"

	"xbsim/internal/program"
)

func TestBinaryDigest(t *testing.T) {
	gen := func(name string) *program.Program {
		p, err := program.Generate(name, program.GenConfig{TargetOps: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := gen("gzip")
	bins, err := CompileAll(p)
	if err != nil {
		t.Fatal(err)
	}
	// Stable: recompiling the same program yields the same digests.
	again, err := CompileAll(gen("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		if bins[i].Digest() != again[i].Digest() {
			t.Fatalf("%s digest not stable across recompiles", bins[i].Name)
		}
		if bins[i].Digest() != bins[i].Digest() {
			t.Fatal("digest not cached consistently")
		}
	}
	// Distinct across targets: different codegen, different content.
	seen := map[string]string{}
	for _, b := range bins {
		if prev, dup := seen[b.Digest()]; dup {
			t.Fatalf("targets %s and %s share a digest", prev, b.Name)
		}
		seen[b.Digest()] = b.Name
	}
	// Distinct across programs.
	other := MustCompile(gen("mcf"), AllTargets[0])
	if other.Digest() == bins[0].Digest() {
		t.Fatal("different programs share a digest")
	}
}
