package compiler

import (
	"testing"

	"xbsim/internal/program"
)

// walkBodies visits every LBody in the binary, including inline clones.
func walkBodies(b *Binary, fn func(*LBody, bool)) {
	var walkStmts func(stmts []LStmt)
	walkStmts = func(stmts []LStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *LLoop:
				for _, p := range s.Pieces {
					walkStmts(p.Body)
				}
			case *LCall:
				if s.Inlined != nil {
					fn(s.Inlined, true)
					walkStmts(s.Inlined.Stmts)
				}
			}
		}
	}
	for _, proc := range b.Procs {
		if proc != nil {
			fn(proc, false)
			walkStmts(proc.Stmts)
		}
	}
}

// TestLoweredStructureInvariants walks every binary of every benchmark and
// checks structural well-formedness of the lowered form.
func TestLoweredStructureInvariants(t *testing.T) {
	for _, name := range program.Benchmarks() {
		p, err := program.Generate(name, program.GenConfig{TargetOps: 150_000})
		if err != nil {
			t.Fatal(err)
		}
		for _, tg := range AllTargets {
			b := MustCompile(p, tg)
			checkBinaryStructure(t, b)
		}
	}
}

func checkBinaryStructure(t *testing.T, b *Binary) {
	t.Helper()
	validBlock := func(id int) bool { return id >= 0 && id < len(b.Blocks) }

	walkBodies(b, func(body *LBody, inlined bool) {
		if inlined && body.EntryBlock != -1 {
			t.Fatalf("%s: inline clone of proc %d has an entry block", b.Name, body.ProcIndex)
		}
		if !inlined && !validBlock(body.EntryBlock) {
			t.Fatalf("%s: proc %d entry block %d invalid", b.Name, body.ProcIndex, body.EntryBlock)
		}
	})

	var walkStmts func(stmts []LStmt)
	walkStmts = func(stmts []LStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *LBlock:
				if !validBlock(s.Block) {
					t.Fatalf("%s: LBlock with invalid block %d", b.Name, s.Block)
				}
			case *LLoop:
				if s.Unroll < 1 {
					t.Fatalf("%s: loop %d unroll %d", b.Name, s.SourceID, s.Unroll)
				}
				if len(s.Pieces) < 1 || len(s.Pieces) > 2 {
					t.Fatalf("%s: loop %d has %d pieces", b.Name, s.SourceID, len(s.Pieces))
				}
				for _, p := range s.Pieces {
					if !validBlock(p.EntryBlock) || !validBlock(p.LatchBlock) {
						t.Fatalf("%s: loop %d piece blocks invalid", b.Name, s.SourceID)
					}
					walkStmts(p.Body)
				}
			case *LCall:
				if s.Inlined == nil && !validBlock(s.SiteBlock) {
					t.Fatalf("%s: call to %d with invalid site block", b.Name, s.Callee)
				}
				if s.Inlined != nil && s.SiteBlock != -1 {
					t.Fatalf("%s: inlined call to %d kept a site block", b.Name, s.Callee)
				}
				if s.Inlined != nil {
					walkStmts(s.Inlined.Stmts)
				}
			}
		}
	}
	for _, proc := range b.Procs {
		if proc != nil {
			walkStmts(proc.Stmts)
		}
	}

	// Inline clones must never carry procedure-entry markers, and every
	// marker's enclosing symbol (when set) must exist in the symbol
	// table.
	for _, m := range b.Markers {
		if m.Kind == compiler_MarkerProcEntry_alias && b.SymbolByName(m.Symbol) == nil {
			t.Fatalf("%s: proc marker for unknown symbol %q", b.Name, m.Symbol)
		}
		if m.EnclosingSymbol != "" && b.SymbolByName(m.EnclosingSymbol) == nil {
			t.Fatalf("%s: marker %d enclosed by unknown symbol %q", b.Name, m.ID, m.EnclosingSymbol)
		}
	}
}

// alias keeps the check readable inside the package.
const compiler_MarkerProcEntry_alias = MarkerProcEntry

// TestEveryExecutedBlockReachable cross-checks that all blocks referenced
// by the lowered tree exist and that no block is orphaned from both the
// tree and the marker table in unoptimized binaries (optimized binaries
// may drop inlined procs' standalone lowering entirely).
func TestEveryExecutedBlockReachable(t *testing.T) {
	p, err := program.Generate("vortex", program.GenConfig{TargetOps: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	b := MustCompile(p, Target{Arch32, O0})
	reached := make([]bool, len(b.Blocks))
	mark := func(id int) {
		if id >= 0 {
			reached[id] = true
		}
	}
	var walkStmts func(stmts []LStmt)
	walkStmts = func(stmts []LStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *LBlock:
				mark(s.Block)
			case *LLoop:
				for _, piece := range s.Pieces {
					mark(piece.EntryBlock)
					mark(piece.LatchBlock)
					walkStmts(piece.Body)
				}
			case *LCall:
				mark(s.SiteBlock)
				if s.Inlined != nil {
					walkStmts(s.Inlined.Stmts)
				}
			}
		}
	}
	for _, proc := range b.Procs {
		if proc != nil {
			mark(proc.EntryBlock)
			walkStmts(proc.Stmts)
		}
	}
	for id, ok := range reached {
		if !ok {
			t.Fatalf("block %d unreachable from the lowered tree", id)
		}
	}
}
