package cmpsim

import (
	"strings"
	"testing"
)

// TestNewCacheRejectsDegenerateConfigs pins that degenerate geometries
// are rejected with an error instead of corrupting the set math. The
// zero-set case used to underflow the index mask and panic on the
// first Access.
func TestNewCacheRejectsDegenerateConfigs(t *testing.T) {
	cases := []struct {
		name    string
		cfg     CacheConfig
		wantErr string
	}{
		{"zero-sets", CacheConfig{CapacityBytes: 32, Associativity: 1, LineSize: 64}, "not divisible"},
		{"capacity-below-one-set", CacheConfig{CapacityBytes: 192, Associativity: 4, LineSize: 64}, "not divisible"},
		{"non-power-of-two-sets", CacheConfig{CapacityBytes: 192, Associativity: 1, LineSize: 64}, "not a power of two"},
		{"zero-line-size", CacheConfig{CapacityBytes: 128, Associativity: 2, LineSize: 0}, "line size"},
		{"non-power-of-two-line", CacheConfig{CapacityBytes: 128, Associativity: 2, LineSize: 60}, "line size"},
		{"zero-associativity", CacheConfig{CapacityBytes: 128, Associativity: 0, LineSize: 64}, "associativity"},
		{"negative-associativity", CacheConfig{CapacityBytes: 128, Associativity: -2, LineSize: 64}, "associativity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewCache(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewCache err = %v, want %q", err, tc.wantErr)
			}
			if c != nil {
				t.Fatal("NewCache returned a cache with an error")
			}
		})
	}
}

// TestMinimumCacheWorks pins the smallest legal geometry: one set, one
// way. It must construct and behave as a single-line cache.
func TestMinimumCacheWorks(t *testing.T) {
	c := mustCache(CacheConfig{CapacityBytes: 64, Associativity: 1, LineSize: 64, HitLatency: 1})
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("resident line missed")
	}
	if c.Access(64) { // conflicts: only one line of storage
		t.Fatal("conflicting line hit")
	}
	if c.Access(0) {
		t.Fatal("evicted line still resident")
	}
}

// TestHierarchyRejectsDegenerateLevel pins that a bad level surfaces
// as an error from NewHierarchy, naming the level.
func TestHierarchyRejectsDegenerateLevel(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Levels[1].CapacityBytes = 32 // below one line
	h, err := NewHierarchy(cfg)
	if err == nil || !strings.Contains(err.Error(), "level 1") {
		t.Fatalf("NewHierarchy err = %v, want level 1 error", err)
	}
	if h != nil {
		t.Fatal("NewHierarchy returned a hierarchy with an error")
	}
}

// TestPrefetchNeverEvictsDemandLine pins the prefetch-thrash fix: in a
// single-line cache, the next-line prefetch used to evict the line the
// triggering access had just filled, so nothing ever stayed resident.
func TestPrefetchNeverEvictsDemandLine(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, Random} {
		t.Run(p.String(), func(t *testing.T) {
			c := mustCache(CacheConfig{
				Name: "1line", CapacityBytes: 64, Associativity: 1, LineSize: 64,
				HitLatency: 1, Replacement: p, NextLinePrefetch: true,
			})
			if c.Access(0) {
				t.Fatal("cold access hit")
			}
			if !c.Access(0) {
				t.Fatal("prefetch evicted the just-filled demand line")
			}
			if c.PrefetchFills != 0 {
				t.Fatalf("prefetch filled %d lines with nowhere safe to put them", c.PrefetchFills)
			}
		})
	}
}

// TestPrefetchSingleSetKeepsDemandLine is the associativity-2 variant:
// the prefetched line must land in the free way, never displace the
// demand line, and the sweep behavior stays pinned.
func TestPrefetchSingleSetKeepsDemandLine(t *testing.T) {
	c := mustCache(CacheConfig{
		Name: "1set", CapacityBytes: 128, Associativity: 2, LineSize: 64,
		HitLatency: 1, NextLinePrefetch: true,
	})
	c.Access(0) // fills line 0, prefetches line 1 into the other way
	if !c.Access(0) {
		t.Fatal("demand line gone after prefetch")
	}
	if !c.Access(64) {
		t.Fatal("prefetched line not resident")
	}
	if c.PrefetchFills != 1 {
		t.Fatalf("PrefetchFills = %d, want 1", c.PrefetchFills)
	}
	// Sweep onward: each miss of line N prefetches N+1, and that
	// prefetch must evict the older line, not line N itself.
	for addr := uint64(128); addr < 1024; addr += 64 {
		if c.Access(addr) {
			continue // prefetched by the previous miss
		}
		if !c.Access(addr) {
			t.Fatalf("line %#x evicted by its own prefetch", addr)
		}
	}
}

// TestPrefetchSweepRegression pins the miss counts of a strided sweep
// over a direct-mapped cache with next-line prefetch: a working set
// that fits must behave exactly like the 4-way case (miss every other
// line on the first pass, all hits on the second).
func TestPrefetchSweepRegression(t *testing.T) {
	c := mustCache(CacheConfig{
		Name: "dm", CapacityBytes: 4 << 10, Associativity: 1, LineSize: 64,
		HitLatency: 1, NextLinePrefetch: true,
	})
	lines := uint64(4<<10) / 64
	for addr := uint64(0); addr < 4<<10; addr += 64 {
		c.Access(addr)
	}
	if c.Misses != lines/2 {
		t.Fatalf("first pass missed %d of %d lines, want every other line", c.Misses, lines)
	}
	c.Hits = 0
	for addr := uint64(0); addr < 4<<10; addr += 64 {
		c.Access(addr)
	}
	if c.Hits != lines {
		t.Fatalf("second pass hit %d of %d lines, want all", c.Hits, lines)
	}
}

// TestSingleWayPolicies drives each replacement policy through a 1-way
// (direct-mapped) cache, where victim selection degenerates to "the
// resident line": all policies must agree.
func TestSingleWayPolicies(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, Random} {
		t.Run(p.String(), func(t *testing.T) {
			c := mustCache(CacheConfig{
				Name: "dm1", CapacityBytes: 256, Associativity: 1, LineSize: 64,
				HitLatency: 1, Replacement: p,
			})
			// Lines 0 and 4 conflict (4 sets); 1 does not.
			c.Access(0 << 6)
			c.Access(1 << 6)
			c.Access(4 << 6) // evicts line 0
			if c.Access(0 << 6) {
				t.Fatal("conflicting line survived in a 1-way set")
			}
			if !c.Access(1 << 6) {
				t.Fatal("non-conflicting line evicted")
			}
		})
	}
}
