// Package cmpsim is the repository's stand-in for CMP$im (Jaleel et al.,
// Intel TR 2006): an in-order core with a three-level non-inclusive data
// cache hierarchy, configured exactly as the paper's Table 1:
//
//	L1D  32KB  2-way   64B lines   3-cycle hit    writeback
//	L2  512KB  8-way   64B lines  14-cycle hit    writeback
//	L3 1024KB 16-way   64B lines  35-cycle hit    writeback
//	DRAM                          250-cycle access
//
// The simulator consumes the dynamic block stream from internal/exec,
// synthesizes each block's data addresses from its memory pattern
// (strided sweeps or uniform-random touches over the block's working
// set), and charges an in-order cycle model: one cycle per instruction,
// an extra cycle per floating-point instruction, the hierarchy latency
// for loads, and a quarter-latency penalty for (buffered) stores.
//
// A Simulator can be gated on and off mid-run, which is how simulation
// points are measured: the harness runs the full program but only
// accumulates simulation state inside the chosen regions, exactly like
// fast-forwarding to a PinPoint.
package cmpsim

import (
	"fmt"
	"unsafe"

	"xbsim/internal/fingerprint"
	"xbsim/internal/xrand"
)

// Policy selects a cache level's replacement policy. The paper's
// configuration uses LRU at every level; the others support replacement-
// policy studies.
type Policy int

const (
	// LRU evicts the least recently used way.
	LRU Policy = iota
	// FIFO evicts the oldest-filled way regardless of reuse.
	FIFO
	// Random evicts a (deterministically) random way.
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Name is a display label ("L1D", "L2D", "L3D").
	Name string
	// CapacityBytes is the total capacity.
	CapacityBytes uint64
	// Associativity is the number of ways per set.
	Associativity int
	// LineSize is the cache line size in bytes.
	LineSize uint64
	// HitLatency is the access latency in cycles on a hit at this level.
	HitLatency int
	// Replacement selects the victim policy (zero value = LRU, the
	// paper's setting).
	Replacement Policy
	// NextLinePrefetch, when true, fills line N+1 into this level on a
	// miss of line N (a simple sequential prefetcher, off in the paper's
	// Table 1 configuration).
	NextLinePrefetch bool
}

// HierarchyConfig describes the full memory system.
type HierarchyConfig struct {
	// Levels is ordered nearest-first (L1 ... LLC).
	Levels []CacheConfig
	// MemoryLatency is the DRAM access latency in cycles.
	MemoryLatency int
}

// DefaultHierarchyConfig returns the paper's Table 1 configuration.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		Levels: []CacheConfig{
			{Name: "FLC(L1D)", CapacityBytes: 32 << 10, Associativity: 2, LineSize: 64, HitLatency: 3},
			{Name: "MLC(L2D)", CapacityBytes: 512 << 10, Associativity: 8, LineSize: 64, HitLatency: 14},
			{Name: "LLC(L3D)", CapacityBytes: 1024 << 10, Associativity: 16, LineSize: 64, HitLatency: 35},
		},
		MemoryLatency: 250,
	}
}

// Validate checks a single level's geometry is usable: without it the
// set math degenerates (zero sets underflows the index mask, a
// non-power-of-two set count aliases distinct sets).
func (c CacheConfig) Validate() error {
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cmpsim: line size %d not a power of two", c.LineSize)
	}
	if c.Associativity <= 0 {
		return fmt.Errorf("cmpsim: associativity %d", c.Associativity)
	}
	lines := c.CapacityBytes / c.LineSize
	if lines == 0 || lines%uint64(c.Associativity) != 0 {
		return fmt.Errorf("cmpsim: capacity %d not divisible into %d-way sets",
			c.CapacityBytes, c.Associativity)
	}
	sets := lines / uint64(c.Associativity)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cmpsim: set count %d not a power of two", sets)
	}
	return nil
}

// Validate checks the configuration is usable.
func (c HierarchyConfig) Validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("cmpsim: no cache levels")
	}
	for i, l := range c.Levels {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("level %d: %w", i, err)
		}
	}
	if c.MemoryLatency <= 0 {
		return fmt.Errorf("cmpsim: memory latency %d", c.MemoryLatency)
	}
	return nil
}

// Digest returns a short deterministic digest of the full hierarchy
// configuration — every level's geometry, latency, policy, and
// prefetcher plus the memory latency. Two configurations share a digest
// exactly when a simulation under one is interchangeable with a
// simulation under the other, which makes the digest the cache-config
// half of the redundancy analyzer's evaluation key (interval
// fingerprint + config digest) and the natural memoization key for
// content-addressed result reuse.
func (c HierarchyConfig) Digest() string {
	h := fingerprint.New()
	h.Int(len(c.Levels))
	for _, l := range c.Levels {
		h.String(l.Name)
		h.Uint64(l.CapacityBytes)
		h.Int(l.Associativity)
		h.Uint64(l.LineSize)
		h.Int(l.HitLatency)
		h.Int(int(l.Replacement))
		if l.NextLinePrefetch {
			h.Int(1)
		} else {
			h.Int(0)
		}
	}
	h.Int(c.MemoryLatency)
	return h.Sum()
}

// StateBytes estimates the resident cache-state footprint of one
// simulated hierarchy: the line arrays every level allocates plus the
// per-set slice headers. It is the per-walk figure the pipeline's
// pipeline.memo.bytes_saved counter charges for each simulation the memo
// table avoided, and the per-reuse figure the state pool recycles.
func (c HierarchyConfig) StateBytes() uint64 {
	const sliceHeader = 24 // ptr + len + cap on 64-bit
	var total uint64
	lineSize := uint64(unsafe.Sizeof(cacheLine{}))
	for _, l := range c.Levels {
		if l.LineSize == 0 || l.Associativity <= 0 {
			continue
		}
		lines := l.CapacityBytes / l.LineSize
		sets := lines / uint64(l.Associativity)
		total += lines*lineSize + sets*sliceHeader
	}
	return total
}

// cacheLine is one way of one set.
type cacheLine struct {
	tag   uint64
	valid bool
	// dirty marks a line written since fill; evicting it counts as a
	// writeback (these are write-back caches).
	dirty bool
	// use is the LRU timestamp (bigger = more recent).
	use uint64
}

// Cache is one set-associative, write-allocate cache level.
//
// The exported fields are event counters, incremented on every access —
// demand or prefetch, gated or warming — so they attribute the cache's
// actual activity, not just the statistics window. They are a stable
// interface: the per-walk sim.<walk>.cache.* metric families publish
// them (see Simulator.PublishMetrics).
type Cache struct {
	cfg       CacheConfig
	sets      [][]cacheLine
	setMask   uint64
	lineShift uint
	clock     uint64
	rng       *xrand.Stream // Random policy only

	// Hits and Misses count accesses at this level.
	Hits, Misses uint64
	// Evictions counts valid lines displaced by demand fills.
	Evictions uint64
	// Writebacks counts dirty lines displaced (by demand fills or
	// prefetches) — the write-back traffic this level generates.
	Writebacks uint64
	// PrefetchFills counts next-line prefetch insertions.
	PrefetchFills uint64
	// PrefetchEvictions counts valid lines displaced by prefetch fills.
	PrefetchEvictions uint64
}

// NewCache builds a cache from its configuration. The configuration
// must validate; degenerate geometries (capacity not divisible into
// sets, zero sets) are rejected here instead of corrupting the index
// math later.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.CapacityBytes / cfg.LineSize
	numSets := lines / uint64(cfg.Associativity)
	sets := make([][]cacheLine, numSets)
	backing := make([]cacheLine, lines)
	for i := range sets {
		sets[i] = backing[uint64(i)*uint64(cfg.Associativity) : (uint64(i)+1)*uint64(cfg.Associativity)]
	}
	shift := uint(0)
	for sz := cfg.LineSize; sz > 1; sz >>= 1 {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   numSets - 1,
		lineShift: shift,
	}
	if cfg.Replacement == Random {
		c.rng = xrand.New("cmpsim/random-replacement/" + cfg.Name)
	}
	return c, nil
}

// Access looks up the address, filling the line on a miss (LRU victim).
// It returns whether the access hit. Reads only — a write goes through
// AccessRW so the filled or reused line is marked dirty for writeback
// accounting.
func (c *Cache) Access(addr uint64) bool { return c.AccessRW(addr, false) }

// AccessRW is Access with the access direction: write == true marks the
// line dirty, so its later eviction counts as a writeback. The direction
// changes only the event counters, never the fill or victim decisions,
// so hit/miss behavior is identical to Access.
func (c *Cache) AccessRW(addr uint64, write bool) bool {
	c.clock++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr // the full line address is trivially injective per set
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if c.cfg.Replacement != FIFO {
				// FIFO ranks by fill time only; reuse does not refresh.
				set[i].use = c.clock
			}
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Fill: prefer an invalid way, otherwise the policy's victim.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].use < set[victim].use {
			victim = i
		}
	}
	if victim >= 0 && set[victim].valid && c.cfg.Replacement == Random {
		victim = c.rng.Intn(len(set))
	}
	if set[victim].valid {
		c.Evictions++
		if set[victim].dirty {
			c.Writebacks++
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, dirty: write, use: c.clock}
	if c.cfg.NextLinePrefetch {
		c.prefetch(addr + c.cfg.LineSize)
	}
	return false
}

// prefetch inserts a line without touching the demand hit/miss counters.
func (c *Cache) prefetch(addr uint64) {
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return // already resident
		}
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].use < set[victim].use {
			victim = i
		}
	}
	if victim >= 0 && set[victim].valid && c.cfg.Replacement == Random {
		victim = c.rng.Intn(len(set))
	}
	// Never evict the line the triggering demand access just filled
	// (it is the only line with use == clock, since clock advances once
	// per Access). In 1-way or single-set caches it is the sole victim
	// candidate, and evicting it would make every prefetch undo its own
	// demand fill — a thrash that turns sequential sweeps into 100% misses.
	if set[victim].valid && set[victim].use == c.clock {
		return
	}
	if set[victim].valid {
		c.PrefetchEvictions++
		if set[victim].dirty {
			c.Writebacks++
		}
	}
	// Insert at LRU-adjacent priority (use = clock, like a demand fill;
	// simple and adequate for a next-line prefetcher). Prefetched lines
	// arrive clean.
	set[victim] = cacheLine{tag: tag, valid: true, use: c.clock}
	c.PrefetchFills++
}

// Reset clears all cache contents and statistics, returning the cache to
// its exact just-constructed state: the Random policy's replacement
// stream is re-seeded too, so a reused cache makes bit-identical victim
// choices to a fresh one — the invariant the state pool relies on.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
	c.clock, c.Hits, c.Misses, c.PrefetchFills = 0, 0, 0, 0
	c.Evictions, c.Writebacks, c.PrefetchEvictions = 0, 0, 0
	if c.cfg.Replacement == Random {
		c.rng = xrand.New("cmpsim/random-replacement/" + c.cfg.Name)
	}
}

// Config returns the level's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Hierarchy is the multi-level memory system.
type Hierarchy struct {
	levels []*Cache
	memLat int
	// digest is the builder configuration's Digest(), recorded so a
	// StatePool can file a returned hierarchy under the right free list.
	digest string
}

// NewHierarchy builds the hierarchy; the config must validate.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{memLat: cfg.MemoryLatency, digest: cfg.Digest()}
	for i, l := range cfg.Levels {
		c, err := NewCache(l)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// Access performs a data access and returns its latency in cycles: the hit
// latency of the nearest level that holds the line, or the DRAM latency.
// Misses allocate the line at every level on the way down (non-inclusive
// fill-on-miss).
func (h *Hierarchy) Access(addr uint64) int { return h.AccessRW(addr, false) }

// AccessRW is Access carrying the access direction for writeback
// accounting (see Cache.AccessRW); latency and fill behavior are
// identical to Access.
func (h *Hierarchy) AccessRW(addr uint64, write bool) int {
	for _, c := range h.levels {
		if c.AccessRW(addr, write) {
			return c.cfg.HitLatency
		}
	}
	return h.memLat
}

// Levels exposes the cache levels for statistics reporting.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
}

// Random-access locality mixture: real pointer-chasing code keeps a hot
// core (node headers, free lists) that dominates accesses. A fraction
// hotFraction of random accesses land in the first hotSetBytes of the
// working set; the rest are uniform over the whole set. Without this,
// multi-megabyte random working sets would miss on essentially every
// access and produce CPIs far beyond anything the paper's machines show.
const (
	hotSetBytes = 16 << 10
	hotFraction = 0.9
)

// addressGen synthesizes the address stream for one *source* compute
// statement's memory pattern. Strided patterns sweep a cursor across the
// working set; random patterns touch hash-derived lines with a hot/cold
// locality mixture.
//
// Generators are shared per source statement (keyed by source line), not
// per static block, and the random addresses are a pure function of
// (seed, line, access ordinal). Because every binary of a program executes
// the same semantic access sequence, the i-th access of a statement hits
// the same address in every binary — as real data-dependent access
// patterns do. Without this, sampled regions would see independent
// address noise per binary, which breaks the cross-binary bias
// consistency the paper measures.
type addressGen struct {
	base    uint64
	ws      uint64
	stride  uint64
	random  bool
	cursor  uint64
	seed    uint64
	line    uint64
	counter uint64
}

func (g *addressGen) next() uint64 {
	if g.random {
		h := xrand.Hash3(g.seed, g.line, g.counter)
		g.counter++
		span := g.ws
		// Top byte decides hot vs cold; the rest picks the line.
		if span > hotSetBytes && float64(h>>56)/256 < hotFraction {
			span = hotSetBytes
		}
		return g.base + ((h % span) &^ 63)
	}
	a := g.base + g.cursor
	g.cursor += g.stride
	if g.cursor >= g.ws {
		g.cursor -= g.ws
	}
	return a
}
