package cmpsim

import (
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

func TestPolicyStrings(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

// twoWaySet builds a 2-way, single-set cache with the given policy.
func twoWaySet(p Policy) *Cache {
	return mustCache(CacheConfig{
		Name: "t", CapacityBytes: 128, Associativity: 2, LineSize: 64,
		HitLatency: 1, Replacement: p,
	})
}

func TestFIFOIgnoresReuse(t *testing.T) {
	c := twoWaySet(FIFO)
	a, b, cc := uint64(0<<6), uint64(1<<6), uint64(2<<6)
	c.Access(a) // fill a (oldest)
	c.Access(b) // fill b
	c.Access(a) // touch a — FIFO must NOT refresh it
	c.Access(cc)
	// FIFO evicts a (oldest fill) despite the recent touch.
	if c.Access(b) == false {
		t.Fatal("FIFO evicted b, want a")
	}
	if c.Access(a) {
		t.Fatal("a survived FIFO eviction despite being oldest fill")
	}
}

func TestLRUHonorsReuseWhereFIFODoesNot(t *testing.T) {
	// Same access pattern as the FIFO test, under LRU: a survives.
	c := twoWaySet(LRU)
	a, b, cc := uint64(0<<6), uint64(1<<6), uint64(2<<6)
	c.Access(a)
	c.Access(b)
	c.Access(a)
	c.Access(cc)
	if !c.Access(a) {
		t.Fatal("LRU evicted the most recently used line")
	}
}

func TestRandomPolicyEventuallyEvictsEitherWay(t *testing.T) {
	// Fill a 2-way set, then repeatedly miss; both resident lines must be
	// chosen as victims at some point.
	c := twoWaySet(Random)
	c.Access(0 << 6)
	c.Access(1 << 6)
	evictedA, evictedB := false, false
	next := uint64(2)
	for i := 0; i < 64 && !(evictedA && evictedB); i++ {
		c.Access(next << 6)
		// Probe which original line is gone without disturbing much: a
		// probe is itself an access, so instead track via re-access cost.
		// Simpler: refill the set with the originals and observe misses.
		hitsBefore := c.Hits
		c.Access(0 << 6)
		if c.Hits == hitsBefore {
			evictedA = true
		}
		hitsBefore = c.Hits
		c.Access(1 << 6)
		if c.Hits == hitsBefore {
			evictedB = true
		}
		next++
	}
	if !evictedA || !evictedB {
		t.Fatalf("random policy never evicted both ways (a=%v b=%v)", evictedA, evictedB)
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		c := mustCache(CacheConfig{
			Name: "d", CapacityBytes: 4 << 10, Associativity: 4, LineSize: 64,
			HitLatency: 1, Replacement: Random,
		})
		for i := uint64(0); i < 10_000; i++ {
			c.Access((i * 2654435761) & 0xFFFFF &^ 63)
		}
		return c.Hits, c.Misses
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("random replacement not deterministic: %d/%d vs %d/%d", h1, m1, h2, m2)
	}
}

func TestPolicyAffectsMissRate(t *testing.T) {
	// A cyclic sweep slightly larger than capacity is the classic LRU
	// pathology: LRU gets zero hits, Random keeps some fraction resident.
	sweep := func(p Policy) (hits uint64) {
		c := mustCache(CacheConfig{
			Name: "s", CapacityBytes: 4 << 10, Associativity: 4, LineSize: 64,
			HitLatency: 1, Replacement: p,
		})
		for pass := 0; pass < 8; pass++ {
			for addr := uint64(0); addr < 5<<10; addr += 64 {
				c.Access(addr)
			}
		}
		return c.Hits
	}
	if lru := sweep(LRU); lru != 0 {
		t.Fatalf("LRU cyclic sweep produced %d hits, want 0", lru)
	}
	if rnd := sweep(Random); rnd == 0 {
		t.Fatal("Random cyclic sweep produced no hits; should beat LRU here")
	}
}

func TestNextLinePrefetchHalvesStridedMisses(t *testing.T) {
	sweep := func(prefetch bool) (misses, fills uint64) {
		c := mustCache(CacheConfig{
			Name: "p", CapacityBytes: 64 << 10, Associativity: 4, LineSize: 64,
			HitLatency: 1, NextLinePrefetch: prefetch,
		})
		for addr := uint64(0); addr < 32<<10; addr += 64 {
			c.Access(addr)
		}
		return c.Misses, c.PrefetchFills
	}
	base, fills0 := sweep(false)
	pref, fills1 := sweep(true)
	if fills0 != 0 {
		t.Fatal("prefetch fills without prefetcher")
	}
	if fills1 == 0 {
		t.Fatal("prefetcher never filled")
	}
	// Next-line on miss exactly halves misses of a unit-line-stride sweep.
	if pref < base/2-1 || pref > base/2+1 {
		t.Fatalf("prefetched sweep missed %d of %d baseline (want ~half)", pref, base)
	}
}

func TestPrefetchDoesNotCountAsDemand(t *testing.T) {
	c := mustCache(CacheConfig{
		Name: "p2", CapacityBytes: 1 << 10, Associativity: 2, LineSize: 64,
		HitLatency: 1, NextLinePrefetch: true,
	})
	c.Access(0) // miss; prefetches line 1
	if c.Hits != 0 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d after one access", c.Hits, c.Misses)
	}
	if !c.Access(64) {
		t.Fatal("prefetched line did not hit")
	}
	c.Reset()
	if c.PrefetchFills != 0 {
		t.Fatal("Reset kept prefetch fills")
	}
}

func TestPrefetchIdempotentWhenResident(t *testing.T) {
	c := mustCache(CacheConfig{
		Name: "p3", CapacityBytes: 1 << 10, Associativity: 2, LineSize: 64,
		HitLatency: 1, NextLinePrefetch: true,
	})
	c.Access(64) // fill line 1 (prefetches line 2)
	before := c.PrefetchFills
	c.Access(0) // miss; next-line (line 1) already resident
	if c.PrefetchFills != before {
		t.Fatal("prefetch refilled a resident line")
	}
}

func TestCoreConfigValidate(t *testing.T) {
	if err := DefaultCoreConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CoreConfig{
		{IssueWidth: 0, FPExtraCycles: 1, StoreLatencyShare: 4},
		{IssueWidth: 1, FPExtraCycles: -1, StoreLatencyShare: 4},
		{IssueWidth: 1, FPExtraCycles: 1, StoreLatencyShare: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad core %d validated", i)
		}
	}
}

func TestWiderCoreLowersCPI(t *testing.T) {
	p, err := program.Generate("crafty", program.GenConfig{TargetOps: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	cpiFor := func(width int) float64 {
		core := DefaultCoreConfig()
		core.IssueWidth = width
		sim, err := NewSimulatorWithCore(bin, DefaultHierarchyConfig(), core)
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(bin, refInput, sim); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().CPI()
	}
	narrow, wide := cpiFor(1), cpiFor(2)
	if wide >= narrow {
		t.Fatalf("width 2 CPI %.3f not below width 1 CPI %.3f", wide, narrow)
	}
	// Memory stalls are unaffected, so doubling width cannot halve CPI.
	if wide < narrow/2 {
		t.Fatalf("width 2 CPI %.3f implausibly below half of %.3f", wide, narrow)
	}
}

func TestNewSimulatorWithCoreRejectsBadCore(t *testing.T) {
	p, err := program.Generate("art", program.GenConfig{TargetOps: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O0})
	if _, err := NewSimulatorWithCore(bin, DefaultHierarchyConfig(), CoreConfig{}); err == nil {
		t.Fatal("zero core config accepted")
	}
}
