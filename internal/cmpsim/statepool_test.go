package cmpsim

import (
	"testing"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
)

// randomHierarchy is a small hierarchy using the Random replacement
// policy — the one stateful policy whose reuse depends on Cache.Reset
// re-seeding the replacement stream.
func randomHierarchy() HierarchyConfig {
	return HierarchyConfig{
		Levels: []CacheConfig{
			{Name: "L1R", CapacityBytes: 4 << 10, Associativity: 4, LineSize: 64, HitLatency: 3, Replacement: Random},
		},
		MemoryLatency: 100,
	}
}

// levelCounters flattens a hierarchy's event counters for comparison.
func levelCounters(h *Hierarchy) []uint64 {
	var out []uint64
	for _, c := range h.Levels() {
		out = append(out, c.Hits, c.Misses, c.Evictions, c.Writebacks,
			c.PrefetchFills, c.PrefetchEvictions)
	}
	return out
}

func TestCacheResetReseedsRandomStream(t *testing.T) {
	c := mustCache(CacheConfig{CapacityBytes: 256, Associativity: 4, LineSize: 64,
		HitLatency: 1, Replacement: Random})
	drive := func() (hits, misses uint64) {
		// A 2x-capacity sweep repeated: hit/miss outcomes depend entirely
		// on the random victim choices.
		for pass := 0; pass < 4; pass++ {
			for addr := uint64(0); addr < 512; addr += 64 {
				c.Access(addr)
			}
		}
		return c.Hits, c.Misses
	}
	h1, m1 := drive()
	c.Reset()
	h2, m2 := drive()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("Random-policy cache not bit-identical after Reset: %d/%d vs %d/%d",
			h1, m1, h2, m2)
	}
}

func TestStatePoolReuseBitIdentical(t *testing.T) {
	bin := compileFor(t, "mcf", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	for _, cfg := range []HierarchyConfig{DefaultHierarchyConfig(), randomHierarchy()} {
		fresh, err := NewSimulator(bin, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(bin, refInput, fresh); err != nil {
			t.Fatal(err)
		}
		wantStats := fresh.TakeStats()
		wantEvents := levelCounters(fresh.Hierarchy())

		pool := NewStatePool()
		// First pooled run dirties a hierarchy and returns it; the second
		// must recycle it and still match the fresh run exactly.
		for round := 0; round < 2; round++ {
			sim, err := NewSimulatorPooled(bin, cfg, pool)
			if err != nil {
				t.Fatal(err)
			}
			if err := exec.Run(bin, refInput, sim); err != nil {
				t.Fatal(err)
			}
			got := sim.TakeStats()
			gotEvents := levelCounters(sim.Hierarchy())
			sim.Release()
			if got.Instructions != wantStats.Instructions || got.Cycles != wantStats.Cycles ||
				got.Loads != wantStats.Loads || got.Stores != wantStats.Stores ||
				got.MemoryAccesses != wantStats.MemoryAccesses {
				t.Fatalf("round %d: pooled stats %+v != fresh %+v", round, got, wantStats)
			}
			for i := range wantEvents {
				if gotEvents[i] != wantEvents[i] {
					t.Fatalf("round %d: event counter %d = %d, fresh %d",
						round, i, gotEvents[i], wantEvents[i])
				}
			}
		}
		if gets, reuses := pool.Stats(); gets != 2 || reuses != 1 {
			t.Fatalf("pool stats gets=%d reuses=%d, want 2/1", gets, reuses)
		}
	}
}

func TestStatePoolKeysByConfigDigest(t *testing.T) {
	pool := NewStatePool()
	a, err := pool.Get(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	// A different geometry must not receive the recycled default state.
	b, err := pool.Get(randomHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("pool recycled a hierarchy across different configs")
	}
	if _, reuses := pool.Stats(); reuses != 0 {
		t.Fatalf("reuses = %d, want 0", reuses)
	}
	// Same config does.
	c, err := pool.Get(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("pool did not recycle matching state")
	}
}

func TestStatePoolNilSafe(t *testing.T) {
	var pool *StatePool
	h, err := pool.Get(DefaultHierarchyConfig())
	if err != nil || h == nil {
		t.Fatalf("nil pool Get: %v %v", h, err)
	}
	pool.Put(h) // must not panic
	if g, r := pool.Stats(); g != 0 || r != 0 {
		t.Fatal("nil pool reported stats")
	}
	bin := compileFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	sim, err := NewSimulatorPooled(bin, DefaultHierarchyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.Release()
	sim.Release() // idempotent
}

// TestStatePoolCutsAllocs pins the reuse win: constructing a simulator
// from recycled pool state must allocate far less than building one from
// scratch, since the hierarchy's line arrays — the dominant allocation —
// are recycled rather than reallocated.
func TestStatePoolCutsAllocs(t *testing.T) {
	bin := compileFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	cfg := DefaultHierarchyConfig()
	fresh := testing.AllocsPerRun(20, func() {
		if _, err := NewSimulator(bin, cfg); err != nil {
			t.Fatal(err)
		}
	})
	pool := NewStatePool()
	warm, err := NewSimulatorPooled(bin, cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()
	pooled := testing.AllocsPerRun(20, func() {
		sim, err := NewSimulatorPooled(bin, cfg, pool)
		if err != nil {
			t.Fatal(err)
		}
		sim.Release()
	})
	if pooled >= fresh {
		t.Fatalf("pooled construction allocs/op %.0f not below fresh %.0f", pooled, fresh)
	}
}
