package cmpsim

import "sync"

// StatePool recycles cache-hierarchy state across simulations. A
// hierarchy's dominant allocation is its line arrays (~1.5MB of
// cacheLine structs for the paper's Table 1 geometry); the evaluate
// stage builds one hierarchy per walk per binary, so reallocating per
// evaluation dominated the pipeline's allocation profile. Get returns a
// recycled hierarchy when one with the same configuration digest is
// free, and Put resets a hierarchy (contents, counters, and the Random
// policy's replacement stream — see Cache.Reset) and files it for reuse,
// making a recycled hierarchy bit-identical in behavior to a fresh one.
//
// The pool is safe for concurrent use and nil-safe: a nil *StatePool
// builds fresh state on Get and drops it on Put, so callers thread one
// pointer without caring whether pooling is on.
type StatePool struct {
	mu   sync.Mutex
	free map[string][]*Hierarchy

	gets   uint64
	reuses uint64
}

// NewStatePool returns an empty pool.
func NewStatePool() *StatePool {
	return &StatePool{free: map[string][]*Hierarchy{}}
}

// Get returns a hierarchy for cfg: a recycled one when available (already
// reset by Put), otherwise freshly built. The config must validate.
func (p *StatePool) Get(cfg HierarchyConfig) (*Hierarchy, error) {
	if p == nil {
		return NewHierarchy(cfg)
	}
	key := cfg.Digest()
	p.mu.Lock()
	p.gets++
	if list := p.free[key]; len(list) > 0 {
		h := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.reuses++
		p.mu.Unlock()
		return h, nil
	}
	p.mu.Unlock()
	return NewHierarchy(cfg)
}

// Put resets h and files it for reuse. A nil pool or nil hierarchy is a
// no-op — the state is simply left to the garbage collector.
func (p *StatePool) Put(h *Hierarchy) {
	if p == nil || h == nil {
		return
	}
	h.Reset()
	p.mu.Lock()
	p.free[h.digest] = append(p.free[h.digest], h)
	p.mu.Unlock()
}

// Stats reports how many Gets the pool served and how many of those were
// satisfied by recycled state.
func (p *StatePool) Stats() (gets, reuses uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.reuses
}
