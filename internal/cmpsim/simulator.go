package cmpsim

import (
	"fmt"

	"xbsim/internal/compiler"
	"xbsim/internal/obs"
	"xbsim/internal/program"
	"xbsim/internal/xrand"
)

// CoreConfig models the in-order core's execution parameters. The paper's
// CMP$im configuration corresponds to DefaultCoreConfig (single-issue,
// 2-cycle FP, quarter-latency buffered stores).
type CoreConfig struct {
	// IssueWidth is how many non-memory instructions retire per cycle.
	IssueWidth int
	// FPExtraCycles is added per floating-point instruction.
	FPExtraCycles int
	// StoreLatencyShare divides the miss latency charged to (buffered)
	// stores; 4 means stores cost a quarter of a load's stall.
	StoreLatencyShare int
}

// DefaultCoreConfig returns the paper's in-order core.
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{IssueWidth: 1, FPExtraCycles: 1, StoreLatencyShare: 4}
}

// Validate checks the core parameters.
func (c CoreConfig) Validate() error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("cmpsim: issue width %d", c.IssueWidth)
	}
	if c.FPExtraCycles < 0 {
		return fmt.Errorf("cmpsim: negative FP latency")
	}
	if c.StoreLatencyShare <= 0 {
		return fmt.Errorf("cmpsim: store latency share %d", c.StoreLatencyShare)
	}
	return nil
}

// Stats accumulates simulation results over the enabled portion of a run.
type Stats struct {
	// Instructions is the number of instructions simulated.
	Instructions uint64
	// Cycles is the number of cycles charged.
	Cycles uint64
	// Loads and Stores count simulated data accesses.
	Loads, Stores uint64
	// LevelHits[i] / LevelMisses[i] are per-cache-level access outcomes.
	LevelHits, LevelMisses []uint64
	// MemoryAccesses counts accesses that went all the way to DRAM.
	MemoryAccesses uint64
}

// CPI returns cycles per instruction, or 0 when nothing was simulated.
func (s *Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// MissRate returns the miss rate at cache level i, or 0 with no accesses.
func (s *Stats) MissRate(i int) float64 {
	total := s.LevelHits[i] + s.LevelMisses[i]
	if total == 0 {
		return 0
	}
	return float64(s.LevelMisses[i]) / float64(total)
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Instructions += other.Instructions
	s.Cycles += other.Cycles
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.MemoryAccesses += other.MemoryAccesses
	for i := range s.LevelHits {
		s.LevelHits[i] += other.LevelHits[i]
		s.LevelMisses[i] += other.LevelMisses[i]
	}
}

// Simulator is an exec.Visitor that performs timing simulation of the
// block stream. It can be gated: while disabled it ignores events
// entirely, modeling fast-forwarding to a simulation region.
type Simulator struct {
	bin  *compiler.Binary
	hier *Hierarchy

	// gens holds per-block address generator state (index = block ID; nil
	// for blocks without memory traffic).
	gens []*addressGen
	// stackGen is the shared spill-address generator.
	stackGen *addressGen

	core    CoreConfig
	enabled bool
	warming bool
	stats   Stats
	// pool, when non-nil, receives the hierarchy back on Release.
	pool *StatePool
}

// NewSimulator builds a simulator for the binary with the given memory
// system and the paper's default core. It starts enabled.
func NewSimulator(bin *compiler.Binary, cfg HierarchyConfig) (*Simulator, error) {
	return newSimulator(bin, cfg, DefaultCoreConfig(), nil)
}

// NewSimulatorWithCore builds a simulator with an explicit core model,
// for architecture-exploration studies that vary the core as well as the
// memory system.
func NewSimulatorWithCore(bin *compiler.Binary, cfg HierarchyConfig, core CoreConfig) (*Simulator, error) {
	return newSimulator(bin, cfg, core, nil)
}

// NewSimulatorPooled is NewSimulator drawing its cache-hierarchy state
// from a StatePool instead of allocating it. Call Release when the walk
// is done to return the state for reuse; a recycled hierarchy behaves
// bit-identically to a fresh one (see StatePool). A nil pool degrades to
// NewSimulator with a no-op Release.
func NewSimulatorPooled(bin *compiler.Binary, cfg HierarchyConfig, pool *StatePool) (*Simulator, error) {
	return newSimulator(bin, cfg, DefaultCoreConfig(), pool)
}

func newSimulator(bin *compiler.Binary, cfg HierarchyConfig, core CoreConfig, pool *StatePool) (*Simulator, error) {
	if bin == nil {
		return nil, fmt.Errorf("cmpsim: nil binary")
	}
	if err := core.Validate(); err != nil {
		return nil, err
	}
	hier, err := pool.Get(cfg)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		bin:     bin,
		hier:    hier,
		gens:    make([]*addressGen, len(bin.Blocks)),
		core:    core,
		enabled: true,
		warming: true,
		pool:    pool,
	}
	s.stats.LevelHits = make([]uint64, len(hier.levels))
	s.stats.LevelMisses = make([]uint64, len(hier.levels))
	// The address seed is keyed by the PROGRAM, not the binary: the same
	// source statement touches the same addresses in every binary of the
	// program (see addressGen).
	seed := xrand.New("cmpsim/mem/" + bin.Program.Name).Uint64()
	// Generator state lives in one arena sized by an upper-bound count of
	// blocks with memory traffic (plus the stack generator), so building a
	// simulator costs two slice allocations instead of one per block. The
	// arena never outgrows its capacity, so the handed-out pointers stay
	// valid.
	memBlocks := 0
	for i := range bin.Blocks {
		if bin.Blocks[i].Loads+bin.Blocks[i].Stores > 0 {
			memBlocks++
		}
	}
	arena := make([]addressGen, 0, memBlocks+1)
	alloc := func(g addressGen) *addressGen {
		arena = append(arena, g)
		return &arena[len(arena)-1]
	}
	// Generators are shared across blocks lowered from the same source
	// statement (inline clones), keyed by source line.
	byLine := map[int]*addressGen{}
	for i := range bin.Blocks {
		b := &bin.Blocks[i]
		if b.Loads+b.Stores == 0 {
			continue
		}
		if g, ok := byLine[b.SrcLine]; ok && b.SrcLine > 0 {
			s.gens[i] = g
			continue
		}
		ws := b.Mem.WorkingSet &^ 63
		if ws < 64 {
			ws = 64
		}
		g := alloc(addressGen{
			base:   uint64(b.Mem.Region+1) << 36,
			ws:     ws,
			stride: b.Mem.Stride,
			random: b.Mem.Class == program.MemRandom,
			seed:   seed,
			line:   uint64(b.SrcLine),
		})
		if g.stride == 0 && !g.random {
			g.stride = 8
		}
		s.gens[i] = g
		if b.SrcLine > 0 {
			byLine[b.SrcLine] = g
		}
	}
	stack := bin.StackMem()
	s.stackGen = alloc(addressGen{
		base:   uint64(stack.Region+1) << 36,
		ws:     stack.WorkingSet,
		stride: stack.Stride,
	})
	return s, nil
}

// Release returns the simulator's hierarchy state to the pool it was
// drawn from (a no-op for unpooled simulators). The simulator must not
// be used afterwards: its cache state now belongs to the pool and may be
// handed to another walk. Release is idempotent; the accumulated Stats
// value remains readable, but level statistics (Hierarchy, event
// counters) are gone.
func (s *Simulator) Release() {
	if s.pool != nil && s.hier != nil {
		s.pool.Put(s.hier)
	}
	s.hier = nil
	s.pool = nil
}

// SetEnabled gates statistics accumulation on or off. While disabled the
// simulator by default still performs every cache access (functional
// warming, as CMP$im does while fast-forwarding to a PinPoint) so regions
// start with realistically warm caches; only the timing statistics are
// suppressed. See SetFunctionalWarming.
func (s *Simulator) SetEnabled(v bool) { s.enabled = v }

// SetFunctionalWarming controls whether cache accesses are performed
// while statistics are gated off. It defaults to true; turning it off
// models a fast-forwarding simulator with no warming, so every region
// starts with whatever stale cache state the previous region left — the
// cold-start bias the warming ablation quantifies.
func (s *Simulator) SetFunctionalWarming(v bool) { s.warming = v }

// FunctionalWarming reports the warming mode.
func (s *Simulator) FunctionalWarming() bool { return s.warming }

// Enabled reports the current gate state.
func (s *Simulator) Enabled() bool { return s.enabled }

// Stats returns the accumulated statistics.
func (s *Simulator) Stats() *Stats { return &s.stats }

// TakeStats returns the accumulated statistics and resets the counters
// (cache contents are preserved). Used to collect per-region results.
func (s *Simulator) TakeStats() Stats {
	out := s.stats
	out.LevelHits = append([]uint64(nil), s.stats.LevelHits...)
	out.LevelMisses = append([]uint64(nil), s.stats.LevelMisses...)
	s.stats.Instructions, s.stats.Cycles = 0, 0
	s.stats.Loads, s.stats.Stores = 0, 0
	s.stats.MemoryAccesses = 0
	for i := range s.stats.LevelHits {
		s.stats.LevelHits[i] = 0
		s.stats.LevelMisses[i] = 0
	}
	return out
}

// Hierarchy exposes the memory system (for reporting Table 1 and level
// statistics).
func (s *Simulator) Hierarchy() *Hierarchy { return s.hier }

// PublishMetrics adds the accumulated statistics to the registry as
// counters under the given prefix ("sim" → sim.instructions, sim.cycles,
// sim.cache.l1.hits, ...). The pipeline publishes one family per
// evaluation walk — "sim.full" (walk 3), "sim.fli" (walk 4), "sim.vli"
// (walk 5) — alongside the legacy aggregate names "sim" (full-run) and
// "sim.gated" (both gated walks combined). Cache levels are numbered
// outward from the core: l1 is the first-level cache regardless of its
// display name. A nil registry is a no-op. The metric names are a stable
// interface (see README.md).
//
// Hits/misses come from the gated Stats window; the eviction, writeback,
// and prefetch families come from the Cache event counters, which count
// every access including functional warming — they attribute the cache's
// real activity during the walk, which is what a cost profile needs.
func (s *Simulator) PublishMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	st := &s.stats
	reg.Counter(prefix + ".instructions").Add(st.Instructions)
	reg.Counter(prefix + ".cycles").Add(st.Cycles)
	reg.Counter(prefix + ".loads").Add(st.Loads)
	reg.Counter(prefix + ".stores").Add(st.Stores)
	reg.Counter(prefix + ".dram_accesses").Add(st.MemoryAccesses)
	for i := range st.LevelHits {
		reg.Counter(fmt.Sprintf("%s.cache.l%d.hits", prefix, i+1)).Add(st.LevelHits[i])
		reg.Counter(fmt.Sprintf("%s.cache.l%d.misses", prefix, i+1)).Add(st.LevelMisses[i])
	}
	for i, c := range s.hier.levels {
		reg.Counter(fmt.Sprintf("%s.cache.l%d.evictions", prefix, i+1)).Add(c.Evictions)
		reg.Counter(fmt.Sprintf("%s.cache.l%d.writebacks", prefix, i+1)).Add(c.Writebacks)
		reg.Counter(fmt.Sprintf("%s.cache.l%d.prefetch_fills", prefix, i+1)).Add(c.PrefetchFills)
		reg.Counter(fmt.Sprintf("%s.cache.l%d.prefetch_evictions", prefix, i+1)).Add(c.PrefetchEvictions)
	}
}

// OnBlock implements exec.Visitor: charge the block's instructions and
// simulate its data accesses. While disabled, accesses still update cache
// state (warming) but nothing is charged.
func (s *Simulator) OnBlock(block int) {
	enabled := s.enabled
	if !enabled && !s.warming {
		return
	}
	b := &s.bin.Blocks[block]
	base := uint64(b.Instrs)
	if w := uint64(s.core.IssueWidth); w > 1 {
		base = (base + w - 1) / w
	}
	cycles := base + uint64(b.FPInstrs)*uint64(s.core.FPExtraCycles)
	storeShare := uint64(s.core.StoreLatencyShare)

	if g := s.gens[block]; g != nil {
		for i := 0; i < b.Loads; i++ {
			lat := s.access(g.next(), false, enabled)
			cycles += uint64(lat - 1)
		}
		for i := 0; i < b.Stores; i++ {
			lat := s.access(g.next(), true, enabled)
			// Stores retire through a store buffer; charge a fraction of
			// the miss latency.
			cycles += uint64(lat-1) / storeShare
		}
	}
	if b.SpillLoads+b.SpillStores > 0 {
		for i := 0; i < b.SpillLoads; i++ {
			lat := s.access(s.stackGen.next(), false, enabled)
			cycles += uint64(lat - 1)
		}
		for i := 0; i < b.SpillStores; i++ {
			lat := s.access(s.stackGen.next(), true, enabled)
			cycles += uint64(lat-1) / storeShare
		}
	}
	if enabled {
		s.stats.Instructions += uint64(b.Instrs)
		s.stats.Cycles += cycles
		s.stats.Loads += uint64(b.Loads) + uint64(b.SpillLoads)
		s.stats.Stores += uint64(b.Stores) + uint64(b.SpillStores)
	}
}

// OnMarker implements exec.Visitor.
func (s *Simulator) OnMarker(int) {}

// access performs one hierarchy access, recording per-level outcomes only
// when stats recording is on. write marks the touched line dirty for
// writeback accounting; it never changes latency or fill decisions.
func (s *Simulator) access(addr uint64, write, record bool) int {
	for li, c := range s.hier.levels {
		if c.AccessRW(addr, write) {
			if record {
				s.stats.LevelHits[li]++
			}
			return c.cfg.HitLatency
		}
		if record {
			s.stats.LevelMisses[li]++
		}
	}
	if record {
		s.stats.MemoryAccesses++
	}
	return s.hier.memLat
}
