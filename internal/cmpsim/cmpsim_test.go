package cmpsim

import (
	"math"
	"testing"
	"testing/quick"

	"xbsim/internal/compiler"
	"xbsim/internal/exec"
	"xbsim/internal/program"
)

// mustCache builds a cache from a config the test knows is valid.
func mustCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Levels) != 3 {
		t.Fatalf("%d levels", len(cfg.Levels))
	}
	wantCap := []uint64{32 << 10, 512 << 10, 1024 << 10}
	wantAssoc := []int{2, 8, 16}
	wantLat := []int{3, 14, 35}
	for i, l := range cfg.Levels {
		if l.CapacityBytes != wantCap[i] || l.Associativity != wantAssoc[i] ||
			l.HitLatency != wantLat[i] || l.LineSize != 64 {
			t.Fatalf("level %d = %+v", i, l)
		}
	}
	if cfg.MemoryLatency != 250 {
		t.Fatalf("DRAM latency %d", cfg.MemoryLatency)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []HierarchyConfig{
		{},
		{Levels: []CacheConfig{{CapacityBytes: 100, Associativity: 2, LineSize: 60}}, MemoryLatency: 1},
		{Levels: []CacheConfig{{CapacityBytes: 128, Associativity: 0, LineSize: 64}}, MemoryLatency: 1},
		{Levels: []CacheConfig{{CapacityBytes: 64 * 3, Associativity: 1, LineSize: 64}}, MemoryLatency: 1},
		{Levels: []CacheConfig{{CapacityBytes: 128, Associativity: 2, LineSize: 64}}, MemoryLatency: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := mustCache(CacheConfig{CapacityBytes: 1 << 10, Associativity: 2, LineSize: 64, HitLatency: 1})
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1038) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 1 set (128B cache): lines A, B fill the set; touching A then
	// adding C must evict B.
	c := mustCache(CacheConfig{CapacityBytes: 128, Associativity: 2, LineSize: 64, HitLatency: 1})
	a, b, cc := uint64(0<<6), uint64(1<<6), uint64(2<<6)
	c.Access(a)
	c.Access(b)
	c.Access(a)  // A is MRU
	c.Access(cc) // evicts B
	if !c.Access(a) {
		t.Fatal("A evicted despite being MRU")
	}
	if c.Access(b) {
		t.Fatal("B survived despite being LRU")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// Sweeping a working set smaller than capacity twice: second sweep
	// must be all hits.
	c := mustCache(CacheConfig{CapacityBytes: 32 << 10, Associativity: 2, LineSize: 64, HitLatency: 3})
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 16<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Misses != (16<<10)/64 {
		t.Fatalf("misses = %d, want one per line", c.Misses)
	}
}

func TestCacheWorkingSetThrashes(t *testing.T) {
	// Sweeping 2x capacity repeatedly with LRU: every access misses.
	c := mustCache(CacheConfig{CapacityBytes: 4 << 10, Associativity: 2, LineSize: 64, HitLatency: 3})
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 8<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Hits != 0 {
		t.Fatalf("LRU sweep of 2x capacity produced %d hits", c.Hits)
	}
}

func TestCacheResetClears(t *testing.T) {
	c := mustCache(CacheConfig{CapacityBytes: 128, Associativity: 2, LineSize: 64, HitLatency: 1})
	c.Access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("stats survived Reset")
	}
	if c.Access(0) {
		t.Fatal("contents survived Reset")
	}
}

func TestCacheNoPhantomHitsProperty(t *testing.T) {
	// Property: an address never accessed before cannot hit.
	c := mustCache(CacheConfig{CapacityBytes: 1 << 10, Associativity: 4, LineSize: 64, HitLatency: 1})
	seen := map[uint64]bool{}
	f := func(raw uint16) bool {
		addr := uint64(raw) << 6
		line := addr >> 6
		hit := c.Access(addr)
		if hit && !seen[line] {
			return false
		}
		seen[line] = true
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x123440)
	if lat := h.Access(addr); lat != 250 {
		t.Fatalf("cold access latency %d, want 250", lat)
	}
	if lat := h.Access(addr); lat != 3 {
		t.Fatalf("warm access latency %d, want 3 (L1 hit)", lat)
	}
	if len(h.Levels()) != 3 {
		t.Fatal("level count")
	}
	h.Reset()
	if lat := h.Access(addr); lat != 250 {
		t.Fatalf("post-reset latency %d, want 250", lat)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fill L1 (32KB) with a 64KB sweep twice; early lines fall out of L1
	// but stay in L2 (512KB), so re-touching address 0 is an L2 hit.
	for addr := uint64(0); addr < 64<<10; addr += 64 {
		h.Access(addr)
	}
	if lat := h.Access(0); lat != 14 {
		t.Fatalf("expected L2 hit (14 cycles), got %d", lat)
	}
}

func compileFor(t testing.TB, name string, tg compiler.Target) *compiler.Binary {
	t.Helper()
	p, err := program.Generate(name, program.GenConfig{TargetOps: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	return compiler.MustCompile(p, tg)
}

var refInput = program.Input{Name: "ref", Seed: 7}

func TestSimulatorFullRun(t *testing.T) {
	bin := compileFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	sim, err := NewSimulator(bin, DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ic := exec.NewInstructionCounter(bin)
	if err := exec.Run(bin, refInput, exec.Multi{sim, ic}); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Instructions != ic.Instructions {
		t.Fatalf("simulator instrs %d != counter %d", st.Instructions, ic.Instructions)
	}
	if st.Cycles < st.Instructions {
		t.Fatalf("cycles %d < instructions %d (in-order core cannot beat CPI 1)", st.Cycles, st.Instructions)
	}
	cpi := st.CPI()
	if cpi < 1.0 || cpi > 20 {
		t.Fatalf("implausible CPI %v", cpi)
	}
	if st.Loads == 0 || st.Stores == 0 {
		t.Fatal("no memory traffic simulated")
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	bin := compileFor(t, "mcf", compiler.Target{Arch: compiler.Arch64, Opt: compiler.O2})
	run := func() Stats {
		sim, err := NewSimulator(bin, DefaultHierarchyConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(bin, refInput, sim); err != nil {
			t.Fatal(err)
		}
		return sim.TakeStats()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSimulatorGating(t *testing.T) {
	bin := compileFor(t, "gzip", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	sim, err := NewSimulator(bin, DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetEnabled(false)
	if sim.Enabled() {
		t.Fatal("gate did not disable")
	}
	if err := exec.Run(bin, refInput, sim); err != nil {
		t.Fatal(err)
	}
	if st := sim.Stats(); st.Instructions != 0 || st.Cycles != 0 {
		t.Fatalf("disabled simulator accumulated %+v", st)
	}
}

func TestMemoryBoundBenchmarkHasHigherCPI(t *testing.T) {
	// mcf (random access, multi-MB working sets) must show clearly higher
	// CPI than crafty (small working sets) — the phase-contrast the
	// paper's figures depend on.
	tg := compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2}
	cpi := func(name string) float64 {
		bin := compileFor(t, name, tg)
		sim, err := NewSimulator(bin, DefaultHierarchyConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := exec.Run(bin, refInput, sim); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().CPI()
	}
	mcf, crafty := cpi("mcf"), cpi("crafty")
	if mcf < crafty*1.5 {
		t.Fatalf("mcf CPI %.2f not clearly above crafty %.2f", mcf, crafty)
	}
}

func TestTakeStatsResetsCounters(t *testing.T) {
	bin := compileFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	sim, err := NewSimulator(bin, DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.Run(bin, refInput, sim); err != nil {
		t.Fatal(err)
	}
	first := sim.TakeStats()
	if first.Instructions == 0 {
		t.Fatal("nothing simulated")
	}
	if st := sim.Stats(); st.Instructions != 0 || st.Cycles != 0 {
		t.Fatal("TakeStats did not reset")
	}
}

func TestStatsAddAndRates(t *testing.T) {
	a := Stats{Instructions: 10, Cycles: 30, LevelHits: []uint64{8}, LevelMisses: []uint64{2}}
	b := Stats{Instructions: 10, Cycles: 10, LevelHits: []uint64{1}, LevelMisses: []uint64{1}}
	a.Add(&b)
	if a.Instructions != 20 || a.Cycles != 40 {
		t.Fatalf("Add result %+v", a)
	}
	if got := a.CPI(); got != 2.0 {
		t.Fatalf("CPI = %v", got)
	}
	if got := a.MissRate(0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("MissRate = %v", got)
	}
	var empty Stats
	if empty.CPI() != 0 {
		t.Fatal("empty CPI should be 0")
	}
	empty.LevelHits = []uint64{0}
	empty.LevelMisses = []uint64{0}
	if empty.MissRate(0) != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestNewSimulatorErrors(t *testing.T) {
	if _, err := NewSimulator(nil, DefaultHierarchyConfig()); err == nil {
		t.Fatal("nil binary accepted")
	}
	bin := compileFor(t, "art", compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	if _, err := NewSimulator(bin, HierarchyConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAddressGenStride(t *testing.T) {
	g := &addressGen{base: 1 << 36, ws: 256, stride: 64}
	want := []uint64{1 << 36, 1<<36 + 64, 1<<36 + 128, 1<<36 + 192, 1 << 36}
	for i, w := range want {
		if got := g.next(); got != w {
			t.Fatalf("step %d: %#x want %#x", i, got, w)
		}
	}
}

func BenchmarkSimulatorFullRun(b *testing.B) {
	p, err := program.Generate("gzip", program.GenConfig{TargetOps: 150_000})
	if err != nil {
		b.Fatal(err)
	}
	bin := compiler.MustCompile(p, compiler.Target{Arch: compiler.Arch32, Opt: compiler.O2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(bin, DefaultHierarchyConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := exec.Run(bin, refInput, sim); err != nil {
			b.Fatal(err)
		}
	}
}
